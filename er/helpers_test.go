package er_test

import (
	"testing"

	"entityres/er"
)

// The error-returning read API (a poisoned journal surfaces as
// er.ErrBroken) makes every reconciling read two-valued on every resolver
// form; these interface-typed helpers keep test bodies on the happy path.

func mustStats(t testing.TB, r interface {
	Stats() (er.StreamingStats, error)
}) er.StreamingStats {
	t.Helper()
	st, err := r.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	return st
}

func mustMatches(t testing.TB, r interface {
	Matches() (*er.Matches, error)
}) *er.Matches {
	t.Helper()
	m, err := r.Matches()
	if err != nil {
		t.Fatalf("Matches: %v", err)
	}
	return m
}

func mustSnapshot(t testing.TB, r interface {
	Snapshot() (*er.Collection, *er.Matches, error)
}) (*er.Collection, *er.Matches) {
	t.Helper()
	coll, m, err := r.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	return coll, m
}

func mustRestructuredBlocks(t testing.TB, r interface {
	RestructuredBlocks() (*er.Blocks, error)
}) *er.Blocks {
	t.Helper()
	bl, err := r.RestructuredBlocks()
	if err != nil {
		t.Fatalf("RestructuredBlocks: %v", err)
	}
	return bl
}
