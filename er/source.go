package er

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"entityres/internal/entity"
	"entityres/internal/rdf"
	"entityres/internal/tabular"
)

// SourceFormat names a source file format for Source / Open preloading.
type SourceFormat string

const (
	// FormatAuto infers the format from the file extension: .nt/.ntriples
	// → RDF, .csv → CSV, .jsonl/.ndjson → JSON-lines.
	FormatAuto SourceFormat = ""
	// FormatRDF is N-Triples.
	FormatRDF SourceFormat = "rdf"
	// FormatCSV is headered (or Tabular.Columns-schema'd) CSV.
	FormatCSV SourceFormat = "csv"
	// FormatJSONL is JSON-lines, one record object per line.
	FormatJSONL SourceFormat = "jsonl"
)

// Source declares one input file of a deployment: Open(cfg) preloads
// every cfg.Sources entry — streaming, format-selected, source-tagged —
// before returning the resolver, so RDF dumps, CSV exports and JSON-lines
// feeds enter the same engine through one config surface.
type Source struct {
	// Path locates the file.
	Path string
	// Format selects the parser; FormatAuto infers it from the extension.
	Format SourceFormat
	// Index is the source index records are tagged with (0 or 1; the
	// second KB of a clean-clean deployment uses 1).
	Index int
	// Tabular configures column mapping for CSV and JSON-lines sources
	// (ID column, per-source renames, headerless schema, delimiter).
	Tabular TabularOptions
}

// format resolves FormatAuto against the path's extension.
func (s Source) format() (SourceFormat, error) {
	if s.Format != FormatAuto {
		switch s.Format {
		case FormatRDF, FormatCSV, FormatJSONL:
			return s.Format, nil
		}
		return "", fmt.Errorf("er: source %s: unknown format %q (want rdf, csv or jsonl)", s.Path, s.Format)
	}
	switch strings.ToLower(filepath.Ext(s.Path)) {
	case ".nt", ".ntriples":
		return FormatRDF, nil
	case ".csv":
		return FormatCSV, nil
	case ".jsonl", ".ndjson":
		return FormatJSONL, nil
	}
	return "", fmt.Errorf("er: source %s: cannot infer format from extension (set Format to rdf, csv or jsonl)", s.Path)
}

// open returns a streaming record reader for the source. The caller owns
// closing the returned file.
func (s Source) open() (io.Closer, tabular.Reader, error) {
	format, err := s.format()
	if err != nil {
		return nil, nil, err
	}
	f, err := os.Open(s.Path)
	if err != nil {
		return nil, nil, fmt.Errorf("er: source: %w", err)
	}
	var rr tabular.Reader
	switch format {
	case FormatRDF:
		rr = rdf.NewReader(f)
	case FormatCSV:
		cr, err := tabular.NewCSVReader(f, s.Tabular)
		if err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("er: source %s: %w", s.Path, err)
		}
		rr = cr
	case FormatJSONL:
		rr = tabular.NewJSONLReader(f, s.Tabular)
	}
	return f, rr, nil
}

// ReadSource streams one source file into a collection, tagging records
// with the source's index — the batch-pipeline counterpart of the Open
// preload. RDF subjects are grouped per consecutive run, exactly like the
// streaming deployments ingest them.
func ReadSource(c *Collection, src Source) error {
	f, rr, err := src.open()
	if err != nil {
		return err
	}
	defer f.Close()
	for {
		d, err := rr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("er: source %s: %w", src.Path, err)
		}
		d.Source = src.Index
		if _, err := c.Add(d); err != nil {
			return fmt.Errorf("er: source %s: %w", src.Path, err)
		}
	}
}

// SourceRecords counts the records the given sources hold, by streaming
// them. Ops-log consumers use it to translate a durable resolver's
// applied-operation count into an ops-log resume position: the sources'
// records are always the first operations applied.
func SourceRecords(sources []Source) (int, error) {
	total := 0
	for _, src := range sources {
		f, rr, err := src.open()
		if err != nil {
			return 0, err
		}
		for {
			_, err := rr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				f.Close()
				return 0, fmt.Errorf("er: source %s: %w", src.Path, err)
			}
			total++
		}
		f.Close()
	}
	return total, nil
}

// preloadBatch bounds one ApplyBatch of source records: large enough to
// amortize the per-batch journal append, small enough to keep preload
// memory flat.
const preloadBatch = 256

// preloadSources streams cfg.Sources into a freshly opened resolver. A
// durable deployment that already applied operations skips that many
// leading records instead of re-inserting them: the sources are the
// deployment's operation prefix, so `applied` past the end of the sources
// means an ops log continued the stream and everything here is loaded.
func preloadSources(ctx context.Context, r Resolver, sources []Source) error {
	st, err := r.Stats()
	if err != nil {
		return err
	}
	skip := int(st.Inserts + st.Updates + st.Deletes)
	idx := 0
	batch := make([]StreamOp, 0, preloadBatch)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := r.ApplyBatch(ctx, batch); err != nil {
			return err
		}
		batch = batch[:0]
		return nil
	}
	for _, src := range sources {
		f, rr, err := src.open()
		if err != nil {
			return err
		}
		for {
			d, err := rr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				f.Close()
				return fmt.Errorf("er: source %s: %w", src.Path, err)
			}
			if idx < skip {
				idx++
				continue
			}
			idx++
			batch = append(batch, StreamOp{
				Kind: StreamInsert, URI: d.URI, Source: src.Index,
				Attrs: append([]entity.Attribute(nil), d.Attrs...),
			})
			if len(batch) == preloadBatch {
				if err := flush(); err != nil {
					f.Close()
					return fmt.Errorf("er: source %s: %w", src.Path, err)
				}
			}
		}
		f.Close()
	}
	if err := flush(); err != nil {
		return fmt.Errorf("er: sources: %w", err)
	}
	return r.Flush(ctx)
}
