package er

import (
	"context"
	"fmt"

	"entityres/internal/entity"
	"entityres/internal/incremental"
	"entityres/internal/sharded"
	"entityres/internal/transport"
)

// This file is the v2 resolver API: one Open call returning one Resolver
// interface, with durability, sharding and networking selected by Config
// instead of by constructor. The v1 constructors (NewStreamingResolver,
// PersistentResolver, NewShardedResolver, PersistentShardedResolver)
// remain as deprecated aliases for one release; see the migration note in
// the README.

// Config selects and parameterizes a resolver deployment for Open.
//
// The zero-value axes compose: leave everything optional unset for an
// in-memory single-node resolver; set Dir for durability; set Shards for
// in-process sharding; set Addrs to drive remote shard servers over the
// wire. Durability and sharding combine freely; Addrs subsumes Shards.
type Config struct {
	// Kind is the collection kind (Dirty or CleanClean).
	Kind Kind
	// Blocker derives blocking keys per description (required).
	Blocker StreamableBlocker
	// Matcher decides candidate pairs (required).
	Matcher *Matcher
	// Workers bounds delta-matching concurrency (0 = sequential).
	Workers int
	// Meta enables live meta-blocking (WEP/WNP over CBS/ECBS/JS).
	Meta *MetaBlocker

	// Dir makes the deployment durable: single-node and in-process sharded
	// resolvers journal under it, and the networked coordinator keeps its
	// own journal there. Empty means fully in-memory.
	Dir string
	// Durable tunes the write-ahead log when Dir is set.
	Durable StreamingDurable

	// Shards > 1 partitions the blocking-key space across in-process shard
	// resolvers.
	Shards int

	// Addrs selects the networked deployment: one shard server address per
	// shard (see NewShardServer / the erctl shard command). Shards, when
	// set, must agree with len(Addrs).
	Addrs []string
	// Transport tunes the shard connections (timeouts, retry attempts).
	Transport TransportOptions

	// Sources are input files — N-Triples, CSV or JSON-lines — preloaded
	// into the deployment before Open returns, in order, each tagged with
	// its source index. On a durable deployment that already applied
	// operations, already-loaded leading records are skipped rather than
	// re-inserted (the sources are the operation-stream prefix).
	Sources []Source
}

// sharded renders the config in the internal deployment form shared by the
// in-process and networked coordinators.
func (cfg Config) sharded() sharded.Config {
	return sharded.Config{
		Kind: cfg.Kind, Blocker: cfg.Blocker, Matcher: cfg.Matcher,
		Workers: cfg.Workers, Meta: cfg.Meta, Shards: cfg.Shards,
		Durable: cfg.Durable,
	}
}

// Query selects a description — by URI, or by handle when URI is empty —
// and what to resolve about it.
type Query struct {
	// URI addresses the description by its identifier.
	URI string
	// ID addresses it by resolver handle when URI is empty.
	ID ID
	// Cluster additionally materializes the full entity cluster.
	Cluster bool
}

// Result answers a Query.
type Result struct {
	// ID is the resolver handle of the selected description.
	ID ID
	// Description is a copy of its current state.
	Description *Description
	// SameAs lists the handles currently matched to it, ascending.
	SameAs []ID
	// Cluster lists its full entity cluster (itself included) when the
	// query asked for it; nil otherwise.
	Cluster []ID
}

// ErrNotFound reports a Query that selected no live description.
// ErrBroken marks a resolver whose journal has diverged from its in-memory
// state: a WAL append failed mid-operation and the rollback could not
// restore the pre-operation picture. Every subsequent mutation AND every
// reconciling read (Stats, Flush, Query under meta-blocking) fails with an
// error wrapping it — match with errors.Is(err, er.ErrBroken). The journal
// itself is still the durable truth: reopening the directory recovers the
// last consistent state.
var ErrBroken = incremental.ErrBroken

type ErrNotFound struct {
	URI string
	ID  ID
}

func (e *ErrNotFound) Error() string {
	if e.URI != "" {
		return fmt.Sprintf("er: no live description with URI %q", e.URI)
	}
	return fmt.Sprintf("er: no live description with handle %d", e.ID)
}

// Resolver is the v2 entity-resolution surface: a live store of entity
// descriptions that maintains blocks, matches and clusters under
// insert/update/delete traffic. All deployment forms returned by Open —
// single-node, durable, sharded, networked — satisfy it with bit-identical
// observable behavior.
type Resolver interface {
	// Insert adds a new description and returns its handle.
	Insert(ctx context.Context, d *Description) (ID, error)
	// Update replaces a live description's attributes.
	Update(ctx context.Context, id ID, attrs []Attribute) error
	// Delete removes a live description.
	Delete(ctx context.Context, id ID) error
	// ApplyBatch accepts a batch of URI-addressed operations as one
	// sequential unit: validated up front against the state the batch
	// itself builds (a batch may insert a description and then update or
	// delete it), rejected whole on any invalid record, and — on the
	// durable forms — journaled as ONE append that replays atomically
	// after a crash. The resulting state is bit-identical to applying the
	// operations one by one; what changes is the cost: one lock
	// acquisition, one journal append, one shard fan-out and (networked)
	// one wire round trip per shard for the whole batch.
	ApplyBatch(ctx context.Context, ops []StreamOp) error
	// Query resolves one description: current state, match partners and
	// optionally its full cluster. Returns *ErrNotFound when nothing live
	// answers the selection.
	Query(ctx context.Context, q Query) (Result, error)
	// Stats reports operation counters and current blocking/matching sizes,
	// reconciling deferred meta-blocking work first. A resolver whose
	// journal has diverged fails with an error wrapping ErrBroken.
	Stats() (StreamingStats, error)
	// Flush settles any deferred (meta-blocking) work.
	Flush(ctx context.Context) error
	// Close releases the deployment (seals journals, drops connections).
	Close() error
}

// ShardRejoiner is implemented by the networked Resolver: after a shard
// server restarts, RejoinShard reconnects it and closes whatever gap its
// absence left (journal catch-up or snapshot shipping over the wire).
type ShardRejoiner interface {
	RejoinShard(ctx context.Context, shard int) error
	// TransportStats reports routed-delivery counters and down shards.
	TransportStats() TransportStats
}

// DurableReporter is implemented by the local deployment forms (no Addrs):
// Recovery reports what each journal's open restored — one entry per
// shard, one for single-node — and Abandon hard-stops without sealing the
// journal, simulating a crash for tests and benchmarks.
type DurableReporter interface {
	Recovery() []StreamingRecovery
	Abandon()
}

// PerfReporter is implemented by every deployment form: Perf reports the
// cumulative machine-independent work counters without reconciling or
// otherwise mutating state — summed over shards for the in-process sharded
// form; coordinator-process counters only (replica plus fan-out/round-trip
// tallies, not the remote shards' journals) for the networked form.
type PerfReporter interface {
	Perf() StreamingPerf
}

// Networked transport surface.
type (
	// TransportOptions tunes shard connections (Config.Transport).
	TransportOptions = transport.ClientOptions
	// TransportStats are routed-delivery counters (ShardRejoiner).
	TransportStats = transport.TransportStats
	// ShardServer serves one shard's resolver over the wire protocol.
	ShardServer = transport.ShardServer
	// ShardUnavailableError reports shards unreachable during a mutation;
	// the operation itself was accepted and completes on rejoin.
	ShardUnavailableError = transport.ShardUnavailableError
)

// NewShardServer opens shard index of the deployment described by cfg —
// durable under dir, in-memory when dir is empty — ready to Serve the wire
// protocol a networked Open drives. cfg must carry the same Kind, Blocker,
// Matcher, Meta and Shards on every shard and every coordinator of one
// deployment.
func NewShardServer(dir string, cfg Config, index int) (*ShardServer, error) {
	scfg := cfg.sharded()
	if scfg.Shards == 0 {
		scfg.Shards = len(cfg.Addrs)
	}
	return transport.NewShardServer(dir, scfg, index)
}

// Open validates cfg and connects the selected deployment:
//
//   - no Addrs, Shards <= 1: a single-node streaming resolver, durable
//     under Dir when set;
//   - no Addrs, Shards > 1: the in-process sharded resolver;
//   - Addrs set: the networked coordinator, one shard server per address,
//     with Dir as the coordinator's own journal directory.
//
// The returned Resolver is bit-exact across these forms for the same
// operation stream; pick by operational need, not by semantics.
func Open(ctx context.Context, cfg Config) (Resolver, error) {
	var r Resolver
	switch {
	case len(cfg.Addrs) > 0:
		co, err := transport.OpenCoordinator(ctx, cfg.Dir, cfg.sharded(), cfg.Addrs, cfg.Transport)
		if err != nil {
			return nil, err
		}
		r = &networkedResolver{co: co}
	case cfg.Shards > 1:
		var sh *ShardedResolver
		var err error
		if cfg.Dir != "" {
			sh, err = sharded.Open(cfg.Dir, cfg.sharded())
		} else {
			sh, err = sharded.New(cfg.sharded())
		}
		if err != nil {
			return nil, err
		}
		r = &shardedAdapter{sh: sh}
	default:
		icfg := incremental.Config{
			Kind: cfg.Kind, Blocker: cfg.Blocker, Matcher: cfg.Matcher,
			Workers: cfg.Workers, Meta: cfg.Meta, Durable: cfg.Durable,
		}
		var sr *StreamingResolver
		var err error
		if cfg.Dir != "" {
			sr, err = incremental.OpenResolver(cfg.Dir, icfg)
		} else {
			sr, err = incremental.New(icfg)
		}
		if err != nil {
			return nil, err
		}
		r = &singleAdapter{sr: sr}
	}
	if len(cfg.Sources) > 0 {
		if err := preloadSources(ctx, r, cfg.Sources); err != nil {
			r.Close()
			return nil, err
		}
	}
	return r, nil
}

// queryBackend is the read surface the three adapters share. The
// reconciling reads (MatchedWith, Clusters) return the reconcile's error —
// a poisoned journal surfaces as ErrBroken instead of a panic.
type queryBackend interface {
	Lookup(uri string) (ID, bool)
	Get(id ID) (*Description, bool)
	MatchedWith(id ID) ([]ID, error)
	Clusters() ([][]ID, error)
}

// runQuery answers q against any backend.
func runQuery(b queryBackend, q Query) (Result, error) {
	var id ID
	if q.URI != "" {
		var ok bool
		if id, ok = b.Lookup(q.URI); !ok {
			return Result{}, &ErrNotFound{URI: q.URI}
		}
	} else {
		id = q.ID
	}
	d, ok := b.Get(id)
	if !ok {
		return Result{}, &ErrNotFound{URI: q.URI, ID: id}
	}
	sameAs, err := b.MatchedWith(id)
	if err != nil {
		return Result{}, err
	}
	res := Result{ID: id, Description: d, SameAs: sameAs}
	if q.Cluster {
		clusters, err := b.Clusters()
		if err != nil {
			return Result{}, err
		}
		res.Cluster = clusterOf(clusters, id)
	}
	return res, nil
}

// batchRecords renders URI-addressed stream operations in the internal
// batch-record form all deployment forms plan against. Updates and deletes
// set ID to -1 explicitly: the zero value would address handle 0.
func batchRecords(ops []StreamOp) []incremental.Record {
	recs := make([]incremental.Record, len(ops))
	for i, op := range ops {
		recs[i] = incremental.Record{Kind: op.Kind, ID: -1, URI: op.URI, Source: op.Source, Attrs: op.Attrs}
	}
	return recs
}

// clusterOf finds id's cluster; a description matched to nothing forms a
// singleton.
func clusterOf(clusters [][]ID, id ID) []ID {
	for _, c := range clusters {
		for _, m := range c {
			if m == id {
				return c
			}
		}
	}
	return []ID{id}
}

// singleAdapter adapts the single-node streaming resolver.
type singleAdapter struct{ sr *StreamingResolver }

func (a *singleAdapter) Insert(ctx context.Context, d *Description) (ID, error) {
	return a.sr.Insert(ctx, d)
}
func (a *singleAdapter) Update(ctx context.Context, id ID, attrs []Attribute) error {
	return a.sr.Update(ctx, id, attrs)
}
func (a *singleAdapter) Delete(ctx context.Context, id ID) error { return a.sr.Delete(id) }
func (a *singleAdapter) ApplyBatch(ctx context.Context, ops []StreamOp) error {
	return a.sr.ApplyBatch(ctx, batchRecords(ops))
}
func (a *singleAdapter) Query(ctx context.Context, q Query) (Result, error) {
	return runQuery(a.sr, q)
}
func (a *singleAdapter) Stats() (StreamingStats, error)  { return a.sr.Stats() }
func (a *singleAdapter) Flush(ctx context.Context) error { return a.sr.Flush(ctx) }
func (a *singleAdapter) Close() error                    { return a.sr.Close() }
func (a *singleAdapter) Recovery() []StreamingRecovery   { return []StreamingRecovery{a.sr.Recovery()} }
func (a *singleAdapter) Abandon()                        { a.sr.Abandon() }
func (a *singleAdapter) Perf() StreamingPerf             { return a.sr.Perf() }

// shardedAdapter adapts the in-process sharded resolver.
type shardedAdapter struct{ sh *ShardedResolver }

func (a *shardedAdapter) Insert(ctx context.Context, d *Description) (ID, error) {
	return a.sh.Insert(ctx, d)
}
func (a *shardedAdapter) Update(ctx context.Context, id ID, attrs []Attribute) error {
	return a.sh.Update(ctx, id, attrs)
}
func (a *shardedAdapter) Delete(ctx context.Context, id ID) error { return a.sh.Delete(id) }
func (a *shardedAdapter) ApplyBatch(ctx context.Context, ops []StreamOp) error {
	return a.sh.ApplyBatch(ctx, batchRecords(ops))
}
func (a *shardedAdapter) Query(ctx context.Context, q Query) (Result, error) {
	return runQuery(a.sh, q)
}
func (a *shardedAdapter) Stats() (StreamingStats, error)  { return a.sh.Stats() }
func (a *shardedAdapter) Flush(ctx context.Context) error { return a.sh.Flush(ctx) }
func (a *shardedAdapter) Close() error                    { return a.sh.Close() }
func (a *shardedAdapter) Recovery() []StreamingRecovery   { return a.sh.Recovery() }
func (a *shardedAdapter) Abandon()                        { a.sh.Abandon() }
func (a *shardedAdapter) Perf() StreamingPerf             { return a.sh.Perf() }

// networkedResolver adapts the transport coordinator; it additionally
// implements ShardRejoiner.
type networkedResolver struct{ co *transport.Coordinator }

func (a *networkedResolver) Insert(ctx context.Context, d *Description) (ID, error) {
	return a.co.Insert(ctx, d)
}
func (a *networkedResolver) Update(ctx context.Context, id ID, attrs []Attribute) error {
	return a.co.Update(ctx, id, attrs)
}
func (a *networkedResolver) Delete(ctx context.Context, id ID) error { return a.co.Delete(ctx, id) }
func (a *networkedResolver) ApplyBatch(ctx context.Context, ops []StreamOp) error {
	return a.co.ApplyBatch(ctx, batchRecords(ops))
}
func (a *networkedResolver) Query(ctx context.Context, q Query) (Result, error) {
	return runQuery(a.co, q)
}
func (a *networkedResolver) Stats() (StreamingStats, error)  { return a.co.Stats() }
func (a *networkedResolver) Flush(ctx context.Context) error { return a.co.Flush(ctx) }
func (a *networkedResolver) Close() error                    { return a.co.Close() }
func (a *networkedResolver) RejoinShard(ctx context.Context, shard int) error {
	return a.co.RejoinShard(ctx, shard)
}
func (a *networkedResolver) TransportStats() TransportStats { return a.co.TransportStats() }
func (a *networkedResolver) Perf() StreamingPerf            { return a.co.Perf() }

// compile-time conformance
var (
	_ Resolver        = (*singleAdapter)(nil)
	_ Resolver        = (*shardedAdapter)(nil)
	_ Resolver        = (*networkedResolver)(nil)
	_ ShardRejoiner   = (*networkedResolver)(nil)
	_ DurableReporter = (*singleAdapter)(nil)
	_ DurableReporter = (*shardedAdapter)(nil)
	_ PerfReporter    = (*singleAdapter)(nil)
	_ PerfReporter    = (*shardedAdapter)(nil)
	_ PerfReporter    = (*networkedResolver)(nil)
	_ queryBackend    = (*incremental.Resolver)(nil)
	_ queryBackend    = (*sharded.Resolver)(nil)
	_ queryBackend    = (*transport.Coordinator)(nil)
	_                 = entity.Description{}
)
