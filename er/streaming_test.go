package er_test

import (
	"bytes"
	"context"
	"testing"

	"entityres/er"
)

// TestFacadeStreamingResolver exercises the public streaming surface end to
// end: build an op log, replay it through a StreamingResolver, and check
// the maintained state equals a batch pipeline over the survivors.
func TestFacadeStreamingResolver(t *testing.T) {
	attrs := func(name, city string) []er.Attribute {
		return []er.Attribute{{Name: "name", Value: name}, {Name: "city", Value: city}}
	}
	ops := []er.StreamOp{
		{Kind: er.StreamInsert, URI: "u:a", Attrs: attrs("alice smith", "berlin")},
		{Kind: er.StreamInsert, URI: "u:b", Attrs: attrs("alice smith", "berlin")},
		{Kind: er.StreamInsert, URI: "u:c", Attrs: attrs("carol jones", "paris")},
		{Kind: er.StreamUpdate, URI: "u:c", Attrs: attrs("alice smith", "berlin")},
		{Kind: er.StreamDelete, URI: "u:b"},
	}

	// Round-trip through the op-log wire format first.
	var buf bytes.Buffer
	if err := er.WriteStreamOps(&buf, ops); err != nil {
		t.Fatal(err)
	}
	decoded, err := er.ReadStreamOps(&buf)
	if err != nil {
		t.Fatal(err)
	}

	r, err := er.NewStreamingResolver(er.StreamingConfig{
		Kind:    er.Dirty,
		Blocker: &er.TokenBlocking{},
		Matcher: &er.Matcher{Sim: &er.TokenJaccard{}, Threshold: 0.5},
		Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i, op := range decoded {
		if err := r.Apply(ctx, op); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}

	// Survivors: a and (updated) c, now identical — one match, one cluster.
	a, ok := r.Lookup("u:a")
	if !ok {
		t.Fatal("u:a not live")
	}
	c, ok := r.Lookup("u:c")
	if !ok {
		t.Fatal("u:c not live")
	}
	if m := mustMatches(t, r); m.Len() != 1 || !m.Contains(a, c) {
		t.Fatalf("matches = %v, want {%d,%d}", m.Pairs(), a, c)
	}

	// Differential check through the public snapshot + batch pipeline.
	snap, matches := mustSnapshot(t, r)
	batch := &er.Pipeline{
		Blocker: &er.TokenBlocking{},
		Matcher: &er.Matcher{Sim: &er.TokenJaccard{}, Threshold: 0.5},
	}
	res, err := batch.Run(snap)
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches.Len() != matches.Len() {
		t.Fatalf("batch over snapshot found %d matches, streaming %d", res.Matches.Len(), matches.Len())
	}
	res.Matches.Each(func(p er.Pair) bool {
		if !matches.Contains(p.A, p.B) {
			t.Fatalf("batch match %v missing from streaming state", p)
		}
		return true
	})
	if st := mustStats(t, r); st.Live != 2 || st.Clusters != 1 {
		t.Fatalf("stats = %s", st)
	}
}

// TestFacadeStreamingMode checks the Streaming pipeline mode is exported
// and produces the batch result on a static collection.
func TestFacadeStreamingMode(t *testing.T) {
	c, _, err := er.GenerateDirty(er.GenConfig{Seed: 3, Entities: 50})
	if err != nil {
		t.Fatal(err)
	}
	m := &er.Matcher{Sim: &er.TokenJaccard{}, Threshold: 0.5}
	batch, err := (&er.Pipeline{Blocker: &er.TokenBlocking{}, Matcher: m, Mode: er.Batch}).Run(c)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := (&er.Pipeline{Blocker: &er.TokenBlocking{}, Matcher: m, Mode: er.StreamingMode}).Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if batch.Matches.Len() != stream.Matches.Len() || batch.Comparisons != stream.Comparisons {
		t.Fatalf("streaming (%d matches, %d comparisons) != batch (%d matches, %d comparisons)",
			stream.Matches.Len(), stream.Comparisons, batch.Matches.Len(), batch.Comparisons)
	}
}

// TestFacadeStreamingMetaBlocking exercises the public live meta-blocking
// surface: a StreamingResolver with a stream-safe MetaBlocker equals the
// batch meta pipeline on a static replay, reports its pruning counters,
// and renders the same restructured block collection.
func TestFacadeStreamingMetaBlocking(t *testing.T) {
	c, _, err := er.GenerateDirty(er.GenConfig{Seed: 13, Entities: 60, DupRatio: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	meta := &er.MetaBlocker{Weight: er.ECBS, Prune: er.WEP}
	matcher := &er.Matcher{Sim: &er.TokenJaccard{}, Threshold: 0.5}

	batch := &er.Pipeline{Blocker: &er.TokenBlocking{}, Meta: meta, Matcher: matcher, Mode: er.Batch}
	want, err := batch.Run(c)
	if err != nil {
		t.Fatal(err)
	}

	r, err := er.NewStreamingResolver(er.StreamingConfig{
		Kind:    er.Dirty,
		Blocker: &er.TokenBlocking{},
		Matcher: matcher,
		Meta:    meta,
		Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, d := range c.All() {
		if _, err := r.Insert(ctx, d); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	st := mustStats(t, r)
	if st.Comparisons != want.Comparisons {
		t.Fatalf("streaming comparisons = %d, batch = %d", st.Comparisons, want.Comparisons)
	}
	if st.Matches != want.Matches.Len() {
		t.Fatalf("streaming matches = %d, batch = %d", st.Matches, want.Matches.Len())
	}
	if st.KeptPairs <= 0 || st.CandidatePairs < st.KeptPairs {
		t.Fatalf("pruning counters kept=%d candidates=%d", st.KeptPairs, st.CandidatePairs)
	}
	if got := mustRestructuredBlocks(t, r); got.Len() != want.Blocks.Len() {
		t.Fatalf("restructured blocks = %d, batch = %d", got.Len(), want.Blocks.Len())
	}
	// The incremental statistics core is exported too: batch-accumulated
	// and stream-maintained graphs weigh identically.
	wg := er.WeightedGraphFromBlocks(want.Blocks)
	if wg.NumBlocks() != want.Blocks.Len() {
		t.Fatalf("WeightedGraphFromBlocks.NumBlocks = %d, want %d", wg.NumBlocks(), want.Blocks.Len())
	}
	if nw := er.NewWeightedBlockingGraph(er.Dirty); nw.NumPairs() != 0 {
		t.Fatalf("NewWeightedBlockingGraph not empty")
	}
	// A batch-only scheme is rejected with its specific reason.
	if _, err := er.NewStreamingResolver(er.StreamingConfig{
		Kind:    er.Dirty,
		Blocker: &er.TokenBlocking{},
		Matcher: matcher,
		Meta:    &er.MetaBlocker{Weight: er.ARCS, Prune: er.WEP},
	}); err == nil {
		t.Fatal("ARCS-weighted streaming resolver accepted")
	}
}

// TestFacadePersistentResolver exercises the durable storage layer through
// the public API: journal an op stream into a WAL directory, hard-stop
// without closing, reopen with PersistentResolver, and keep resolving —
// the recovered state must match an in-memory resolver fed the same ops.
func TestFacadePersistentResolver(t *testing.T) {
	attrs := func(name string) []er.Attribute {
		return []er.Attribute{{Name: "name", Value: name}}
	}
	cfg := er.StreamingConfig{
		Kind:    er.Dirty,
		Blocker: &er.TokenBlocking{},
		Matcher: &er.Matcher{Sim: &er.TokenJaccard{}, Threshold: 0.5},
		Durable: er.StreamingDurable{NoSync: true, SnapshotEvery: 3},
	}
	dir := t.TempDir()
	r, err := er.PersistentResolver(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := er.NewStreamingResolver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ops := []er.StreamOp{
		{Kind: er.StreamInsert, URI: "u:a", Attrs: attrs("alice smith")},
		{Kind: er.StreamInsert, URI: "u:b", Attrs: attrs("alice smith")},
		{Kind: er.StreamInsert, URI: "u:c", Attrs: attrs("carol jones")},
		{Kind: er.StreamUpdate, URI: "u:c", Attrs: attrs("alice smith")},
		{Kind: er.StreamInsert, URI: "u:d", Attrs: attrs("dave brown")},
		{Kind: er.StreamDelete, URI: "u:b"},
	}
	ctx := context.Background()
	for i, op := range ops {
		if err := r.Apply(ctx, op); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if err := mem.Apply(ctx, op); err != nil {
			t.Fatalf("mem op %d: %v", i, err)
		}
	}
	// Seal the journal and reopen; the crash-path equivalents (hard stop,
	// torn tail) are enforced by internal/incremental's crash suite.
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := er.PersistentResolver(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	rec := got.Recovery()
	if !rec.Recovered || rec.SnapshotSegment == 0 {
		t.Fatalf("recovery = %+v, want recovered with a snapshot anchor", rec)
	}
	// 6 ops at a cadence of 3: the tail beyond the last snapshot is empty.
	if rec.ReplayedRecords != 0 {
		t.Fatalf("replayed %d records, want 0 (snapshot covers all 6 ops)", rec.ReplayedRecords)
	}
	if g, w := mustStats(t, got), mustStats(t, mem); g != w {
		t.Fatalf("recovered stats %+v, want %+v", g, w)
	}
	if g, w := mustMatches(t, got).Len(), mustMatches(t, mem).Len(); g != w {
		t.Fatalf("recovered %d matches, want %d", g, w)
	}
	// The recovered resolver keeps accepting the stream.
	more := er.StreamOp{Kind: er.StreamInsert, URI: "u:e", Attrs: attrs("carol jones")}
	if err := got.Apply(ctx, more); err != nil {
		t.Fatal(err)
	}
	if err := mem.Apply(ctx, more); err != nil {
		t.Fatal(err)
	}
	if g, w := mustStats(t, got), mustStats(t, mem); g != w {
		t.Fatalf("post-recovery stats %+v, want %+v", g, w)
	}
}

// TestFacadeShardedResolver exercises the public sharded surface end to
// end: the same op stream through a single-node and a sharded resolver,
// bit-equal state; a durable sharded run with a shard hard-stopped and
// rejoined; and the Pipeline's StreamShards knob.
func TestFacadeShardedResolver(t *testing.T) {
	c, _, err := er.GenerateDirty(er.GenConfig{Seed: 9, Entities: 60})
	if err != nil {
		t.Fatal(err)
	}
	m := &er.Matcher{Sim: &er.TokenJaccard{}, Threshold: 0.5}
	single, err := er.NewStreamingResolver(er.StreamingConfig{
		Kind: er.Dirty, Blocker: &er.TokenBlocking{}, Matcher: m, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := er.NewShardedResolver(er.ShardedConfig{
		Kind: er.Dirty, Blocker: &er.TokenBlocking{}, Matcher: m, Workers: 2, Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, d := range c.All() {
		if _, err := single.Insert(ctx, d); err != nil {
			t.Fatal(err)
		}
		if _, err := sh.Insert(ctx, d); err != nil {
			t.Fatal(err)
		}
	}
	ss, hs := mustStats(t, single), mustStats(t, sh)
	if ss != hs {
		t.Fatalf("sharded stats %+v diverge from single-node %+v", hs, ss)
	}
	mustMatches(t, single).Each(func(p er.Pair) bool {
		if !mustMatches(t, sh).Contains(p.A, p.B) {
			t.Fatalf("sharded state misses match %v", p)
		}
		return true
	})

	// Durable: journal into per-shard WALs, hard-stop a shard, rejoin it.
	dir := t.TempDir()
	pr, err := er.PersistentShardedResolver(dir, er.ShardedConfig{
		Kind: er.Dirty, Blocker: &er.TokenBlocking{}, Matcher: m, Workers: 2, Shards: 3,
		Durable: er.StreamingDurable{NoSync: true, SnapshotEvery: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Close()
	for _, d := range c.All() {
		if _, err := pr.Insert(ctx, d); err != nil {
			t.Fatal(err)
		}
	}
	if err := pr.StopShard(1); err != nil {
		t.Fatal(err)
	}
	rec, err := pr.RejoinShard(1)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Recovered {
		t.Fatal("rejoined shard found no state")
	}
	if st := mustStats(t, pr); st != ss {
		t.Fatalf("durable sharded stats %+v diverge from single-node %+v after rejoin", st, ss)
	}

	// Pipeline knob: StreamShards replays through the sharded resolver.
	res, err := (&er.Pipeline{Blocker: &er.TokenBlocking{}, Matcher: m, Mode: er.StreamingMode, StreamShards: 4}).Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches.Len() != ss.Matches || res.Comparisons != ss.Comparisons {
		t.Fatalf("StreamShards pipeline (%d matches, %d comparisons) != resolver (%d matches, %d comparisons)",
			res.Matches.Len(), res.Comparisons, ss.Matches, ss.Comparisons)
	}
}
