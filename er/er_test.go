package er_test

import (
	"bytes"
	"context"
	"testing"

	"entityres/er"
)

// TestEndToEndFacade exercises the whole public surface the way the README
// quickstart does: generate, block, plan, match, evaluate.
func TestEndToEndFacade(t *testing.T) {
	c, gt, err := er.GenerateCleanClean(er.GenConfig{Seed: 2, Entities: 80, DupRatio: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	pipe := &er.Pipeline{
		Blocker:    &er.TokenBlocking{},
		Processors: []er.BlockProcessor{&er.AutoPurge{}},
		Meta:       &er.MetaBlocker{Weight: er.ARCS, Prune: er.WNP},
		Matcher:    &er.Matcher{Sim: &er.TokenJaccard{}, Threshold: 0.4},
	}
	res, err := pipe.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	prf := er.ComparePairs(res.Matches, gt)
	if prf.Recall < 0.5 || prf.Precision < 0.5 {
		t.Fatalf("end-to-end quality too low: %v", prf)
	}
}

func TestFacadeProgressive(t *testing.T) {
	c, gt, err := er.GenerateDirty(er.GenConfig{Seed: 4, Entities: 60, DupRatio: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	m := &er.Matcher{Sim: &er.TokenJaccard{}, Threshold: 0.5}
	sched := er.NewPSNM(c, er.SortedTokensKey(nil), true, 0)
	res := er.RunProgressive(c, sched, m, gt, 150)
	if res.Comparisons > 150 {
		t.Fatalf("budget violated: %d", res.Comparisons)
	}
	if err := res.Curve.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeRSwooshAndIterativeBlocking(t *testing.T) {
	c, _, err := er.GenerateDirty(er.GenConfig{Seed: 5, Entities: 40, DupRatio: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	m := &er.Matcher{Sim: &er.TokenContainment{}, Threshold: 0.75}
	sw := er.RSwoosh(c, m)
	if sw.Comparisons == 0 || len(sw.Resolved) == 0 {
		t.Fatal("swoosh produced nothing")
	}
	bs, err := (&er.TokenBlocking{}).Block(c)
	if err != nil {
		t.Fatal(err)
	}
	ib := er.IterativeBlocking(c, bs, m)
	if ib.Matches.Len() == 0 {
		t.Fatal("iterative blocking found nothing")
	}
}

func TestFacadeNTriplesRoundTrip(t *testing.T) {
	c := er.NewCollection(er.Dirty)
	c.MustAdd(er.NewDescription("http://kb/x").Add("name", "alice"))
	var buf bytes.Buffer
	if err := er.WriteNTriples(&buf, c); err != nil {
		t.Fatal(err)
	}
	c2 := er.NewCollection(er.Dirty)
	if err := er.ReadNTriples(c2, &buf, 0); err != nil {
		t.Fatal(err)
	}
	if c2.Len() != 1 {
		t.Fatalf("round trip lost descriptions: %d", c2.Len())
	}
	if v, _ := c2.Get(0).Value("name"); v != "alice" {
		t.Fatalf("value = %q", v)
	}
}

func TestFacadeTruthTSVRoundTrip(t *testing.T) {
	c := er.NewCollection(er.Dirty)
	c.MustAdd(er.NewDescription("http://kb/a"))
	c.MustAdd(er.NewDescription("http://kb/b"))
	m := er.NewMatches()
	m.Add(0, 1)
	var buf bytes.Buffer
	if err := er.WriteTruthTSV(&buf, c, m); err != nil {
		t.Fatal(err)
	}
	back, err := er.ReadTruthTSV(c, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 1 || !back.Contains(0, 1) {
		t.Fatalf("round trip = %v", back.Pairs())
	}
}

func TestFacadeClusterMetrics(t *testing.T) {
	c, gt, err := er.GenerateDirty(er.GenConfig{Seed: 3, Entities: 40, DupRatio: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	pipe := &er.Pipeline{
		Blocker: &er.TokenBlocking{},
		Matcher: &er.Matcher{Sim: &er.TokenContainment{}, Threshold: 0.75},
		Mode:    er.IterativeBlocks,
	}
	res, err := pipe.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	cm := er.EvaluateClusters(c, res.Matches, gt)
	if cm.RandIndex < 0.9 {
		t.Fatalf("rand index = %v", cm.RandIndex)
	}
	if cm.F1 <= 0 {
		t.Fatalf("cluster F1 = %v", cm.F1)
	}
}

func TestFacadeExtendedQGrams(t *testing.T) {
	c := er.NewCollection(er.Dirty)
	c.MustAdd(er.NewDescription("").Add("n", "katherine"))
	c.MustAdd(er.NewDescription("").Add("n", "katherina"))
	bs, err := (&er.ExtendedQGrams{Q: 2, T: 0.6}).Block(c)
	if err != nil {
		t.Fatal(err)
	}
	if bs.DistinctPairs().Len() == 0 {
		t.Fatal("extended q-grams found no candidate")
	}
}

func TestFacadeBlockingMetrics(t *testing.T) {
	c, gt, err := er.GenerateDirty(er.GenConfig{Seed: 6, Entities: 50, DupRatio: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	bs, err := (&er.TokenBlocking{}).Block(c)
	if err != nil {
		t.Fatal(err)
	}
	m := er.EvaluateBlocking(c, bs, gt)
	if m.PC < 0.9 {
		t.Fatalf("token blocking PC = %v", m.PC)
	}
	if m.RR <= 0 {
		t.Fatalf("RR = %v", m.RR)
	}
}

// TestFacadeParallelPipeline exercises the concurrent engine through the
// public surface and checks it agrees with the sequential pipeline.
func TestFacadeParallelPipeline(t *testing.T) {
	c, gt, err := er.GenerateDirty(er.GenConfig{Seed: 6, Entities: 150})
	if err != nil {
		t.Fatal(err)
	}
	cfg := er.Pipeline{
		Blocker:    &er.TokenBlocking{},
		Processors: []er.BlockProcessor{&er.BlockFiltering{}},
		Meta:       &er.MetaBlocker{Weight: er.ECBS, Prune: er.WEP},
		Matcher:    &er.Matcher{Sim: &er.TokenJaccard{}, Threshold: 0.5},
	}
	seq := cfg
	want, err := seq.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	got, err := er.NewParallelPipeline(cfg, er.ParallelOptions{Workers: 4, Shards: 4}).Run(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if got.Matches.Len() != want.Matches.Len() || got.Comparisons != want.Comparisons {
		t.Fatalf("parallel: %d matches / %d comparisons, sequential: %d / %d",
			got.Matches.Len(), got.Comparisons, want.Matches.Len(), want.Comparisons)
	}
	want.Matches.Each(func(p er.Pair) bool {
		if !got.Matches.Contains(p.A, p.B) {
			t.Fatalf("parallel result missing match %v", p)
		}
		return true
	})
	if prf := er.ComparePairs(got.Matches, gt); prf.Recall == 0 {
		t.Fatal("parallel pipeline found none of the ground truth")
	}
}

// TestFacadeShardedBlocking covers the sharded build + streaming iterator
// public helpers.
func TestFacadeShardedBlocking(t *testing.T) {
	c, _, err := er.GenerateDirty(er.GenConfig{Seed: 6, Entities: 100})
	if err != nil {
		t.Fatal(err)
	}
	bs, err := er.BuildShardedBlocks(context.Background(), c, &er.TokenBlocking{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	it := er.NewCompareIterator(bs)
	n := 0
	for {
		if _, ok := it.Next(); !ok {
			break
		}
		n++
	}
	if int64(n) != bs.ComputeStats(true).DistinctComparison {
		t.Fatalf("iterator emitted %d pairs, stats say %d", n, bs.ComputeStats(true).DistinctComparison)
	}
}
