package er_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"reflect"
	"strings"
	"testing"

	"entityres/er"
)

// The v2 API conformance suite: er.Open must hand back interchangeable
// Resolvers for every deployment form, with identical Query answers and
// Stats for the same operation stream.

func v2Config() er.Config {
	return er.Config{
		Kind:    er.Dirty,
		Blocker: &er.TokenBlocking{},
		Matcher: &er.Matcher{Sim: &er.TokenJaccard{}, Threshold: 0.5},
	}
}

// startShardServers boots n in-memory shard servers for cfg and returns
// their addresses.
func startShardServers(t *testing.T, cfg er.Config, n int) []string {
	t.Helper()
	cfg.Shards = n
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		srv, err := er.NewShardServer("", cfg, i)
		if err != nil {
			t.Fatal(err)
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(lis)
		t.Cleanup(func() { srv.Close() })
		addrs[i] = lis.Addr().String()
	}
	return addrs
}

// openAll opens every deployment form of the same logical configuration.
func openAll(t *testing.T, ctx context.Context) map[string]er.Resolver {
	t.Helper()
	forms := map[string]er.Resolver{}

	single, err := er.Open(ctx, v2Config())
	if err != nil {
		t.Fatal(err)
	}
	forms["single"] = single

	durable := v2Config()
	durable.Dir = t.TempDir()
	durable.Durable = er.StreamingDurable{NoSync: true, SnapshotEvery: 8}
	dr, err := er.Open(ctx, durable)
	if err != nil {
		t.Fatal(err)
	}
	forms["durable"] = dr

	shardedCfg := v2Config()
	shardedCfg.Shards = 3
	sh, err := er.Open(ctx, shardedCfg)
	if err != nil {
		t.Fatal(err)
	}
	forms["sharded"] = sh

	netCfg := v2Config()
	netCfg.Addrs = startShardServers(t, v2Config(), 2)
	netCfg.Dir = t.TempDir()
	nr, err := er.Open(ctx, netCfg)
	if err != nil {
		t.Fatal(err)
	}
	forms["networked"] = nr

	t.Cleanup(func() {
		for _, r := range forms {
			r.Close()
		}
	})
	return forms
}

func TestOpenConformance(t *testing.T) {
	ctx := context.Background()
	forms := openAll(t, ctx)

	attrs := func(name, city string) []er.Attribute {
		return []er.Attribute{{Name: "name", Value: name}, {Name: "city", Value: city}}
	}
	// A small churny script: duplicates, an update that creates a match, a
	// delete that breaks one.
	type rec struct {
		uri  string
		a    []er.Attribute
		ids  map[string]er.ID
		gone bool
	}
	script := []rec{
		{uri: "u:a", a: attrs("alice smith", "berlin")},
		{uri: "u:b", a: attrs("alice smith", "berlin de")},
		{uri: "u:c", a: attrs("carol jones", "paris")},
		{uri: "u:d", a: attrs("dave brown", "oslo")},
	}
	for i := range script {
		script[i].ids = map[string]er.ID{}
		for name, r := range forms {
			id, err := r.Insert(ctx, &er.Description{URI: script[i].uri, Attrs: script[i].a})
			if err != nil {
				t.Fatalf("%s: insert %s: %v", name, script[i].uri, err)
			}
			script[i].ids[name] = id
		}
	}
	// Handles are assigned identically across forms.
	for _, rec := range script {
		for name, id := range rec.ids {
			if id != rec.ids["single"] {
				t.Fatalf("%s assigned %s handle %d, single %d", name, rec.uri, id, rec.ids["single"])
			}
		}
	}
	// Update u:c into the alice cluster; delete u:b out of it.
	for name, r := range forms {
		if err := r.Update(ctx, script[2].ids[name], attrs("alice smith", "berlin")); err != nil {
			t.Fatalf("%s: update: %v", name, err)
		}
		if err := r.Delete(ctx, script[1].ids[name]); err != nil {
			t.Fatalf("%s: delete: %v", name, err)
		}
		if err := r.Flush(ctx); err != nil {
			t.Fatalf("%s: flush: %v", name, err)
		}
	}
	script[1].gone = true

	// Every form answers every query identically.
	want := map[string]er.Result{}
	for _, rec := range script {
		for name, r := range forms {
			res, err := r.Query(ctx, er.Query{URI: rec.uri, Cluster: true})
			if rec.gone {
				var nf *er.ErrNotFound
				if !errors.As(err, &nf) {
					t.Fatalf("%s: query deleted %s: %v, want ErrNotFound", name, rec.uri, err)
				}
				continue
			}
			if err != nil {
				t.Fatalf("%s: query %s: %v", name, rec.uri, err)
			}
			if w, ok := want[rec.uri]; ok {
				if !reflect.DeepEqual(res, w) {
					t.Fatalf("%s answered %s with %+v, earlier form %+v", name, rec.uri, res, w)
				}
			} else {
				want[rec.uri] = res
			}
		}
	}
	// a and (updated) c match: SameAs and Cluster agree on that.
	ra := want["u:a"]
	if len(ra.SameAs) != 1 || ra.SameAs[0] != script[2].ids["single"] {
		t.Fatalf("u:a SameAs = %v, want [%d]", ra.SameAs, script[2].ids["single"])
	}
	if len(ra.Cluster) != 2 {
		t.Fatalf("u:a Cluster = %v, want both alices", ra.Cluster)
	}
	rd := want["u:d"]
	if len(rd.SameAs) != 0 || !reflect.DeepEqual(rd.Cluster, []er.ID{rd.ID}) {
		t.Fatalf("u:d = %+v, want unmatched singleton", rd)
	}

	// Stats agree bit-exactly.
	base := mustStats(t, forms["single"])
	for name, r := range forms {
		if st := mustStats(t, r); st != base {
			t.Fatalf("%s stats %+v diverge from single %+v", name, st, base)
		}
	}

	// The networked form exposes its transport surface through the optional
	// interface, and routing was in effect.
	rj, ok := forms["networked"].(er.ShardRejoiner)
	if !ok {
		t.Fatal("networked resolver does not implement ShardRejoiner")
	}
	ts := rj.TransportStats()
	if ts.FullOps+ts.AdvanceOps != 6*2 || ts.AdvanceOps == 0 {
		t.Fatalf("transport stats %+v: want 6 ops routed across 2 shards with some advances", ts)
	}
}

func TestQueryValidation(t *testing.T) {
	ctx := context.Background()
	r, err := er.Open(ctx, v2Config())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	id, err := r.Insert(ctx, &er.Description{URI: "u:x", Attrs: []er.Attribute{{Name: "n", Value: "x"}}})
	if err != nil {
		t.Fatal(err)
	}

	// ErrNotFound carries the failing selector.
	var nf *er.ErrNotFound
	if _, err := r.Query(ctx, er.Query{URI: "u:nope"}); !errors.As(err, &nf) || nf.URI != "u:nope" {
		t.Fatalf("query by unknown URI: %v", err)
	}
	if _, err := r.Query(ctx, er.Query{ID: id + 100}); !errors.As(err, &nf) || nf.ID != id+100 {
		t.Fatalf("query by unknown handle: %v", err)
	}
	// Without Cluster the result leaves it nil.
	res, err := r.Query(ctx, er.Query{URI: "u:x"})
	if err != nil || res.Cluster != nil {
		t.Fatalf("non-cluster query answered %+v (%v)", res, err)
	}
	// Descriptions are copies: mutating the result must not reach the store.
	res.Description.Attrs[0].Value = "tampered"
	again, err := r.Query(ctx, er.Query{URI: "u:x"})
	if err != nil || again.Description.Attrs[0].Value != "x" {
		t.Fatalf("query result aliases live state: %+v (%v)", again, err)
	}
}

// TestOpenValidation: configuration errors surface at Open, not later.
func TestOpenValidation(t *testing.T) {
	ctx := context.Background()
	bad := v2Config()
	bad.Blocker = nil
	if _, err := er.Open(ctx, bad); err == nil {
		t.Error("Open accepted a config with no blocker")
	}
	mismatch := v2Config()
	mismatch.Shards = 3
	mismatch.Addrs = []string{"127.0.0.1:1", "127.0.0.1:2"}
	if _, err := er.Open(ctx, mismatch); err == nil {
		t.Error("Open accepted Shards=3 with 2 addresses")
	}
}

// TestDeprecatedAliases: the v1 constructors still work during the
// deprecation window.
func TestDeprecatedAliases(t *testing.T) {
	ctx := context.Background()
	r, err := er.NewStreamingResolver(er.StreamingConfig{
		Kind:    er.Dirty,
		Blocker: &er.TokenBlocking{},
		Matcher: &er.Matcher{Sim: &er.TokenJaccard{}, Threshold: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Insert(ctx, &er.Description{URI: "u:v1", Attrs: []er.Attribute{{Name: "n", Value: "v"}}}); err != nil {
		t.Fatal(err)
	}
	sh, err := er.NewShardedResolver(er.ShardedConfig{
		Kind: er.Dirty, Blocker: &er.TokenBlocking{},
		Matcher: &er.Matcher{Sim: &er.TokenJaccard{}, Threshold: 0.5}, Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestServeConformance drives the networked query path end to end at the
// er level: Open over shard servers answers the same queries as single.
func TestNetworkedQueryAfterRejoin(t *testing.T) {
	ctx := context.Background()
	cfg := v2Config()
	cfg.Addrs = startShardServers(t, v2Config(), 2)
	cfg.Dir = t.TempDir()
	r, err := er.Open(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; i < 6; i++ {
		uri := fmt.Sprintf("u:%d", i)
		if _, err := r.Insert(ctx, &er.Description{URI: uri, Attrs: []er.Attribute{{Name: "name", Value: fmt.Sprintf("person %d", i%3)}}}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := r.Query(ctx, er.Query{URI: "u:0", Cluster: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SameAs) != 1 {
		t.Fatalf("u:0 SameAs = %v, want its one duplicate", res.SameAs)
	}
	// Rejoining a healthy shard is a no-op handshake; queries keep working.
	if err := r.(er.ShardRejoiner).RejoinShard(ctx, 1); err != nil {
		t.Fatalf("RejoinShard of a healthy shard: %v", err)
	}
	if _, err := r.Query(ctx, er.Query{URI: "u:0"}); err != nil {
		t.Fatalf("query after rejoin: %v", err)
	}
}

// TestCapabilityInterfaces exercises the optional capability surfaces of
// the v2 adapters: DurableReporter on the local forms, ShardRejoiner's
// rejoin of a healthy shard, and the not-found error rendering.
func TestCapabilityInterfaces(t *testing.T) {
	ctx := context.Background()
	cfg := v2Config()
	cfg.Dir = t.TempDir()
	cfg.Durable = er.StreamingDurable{NoSync: true}
	single, err := er.Open(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rec := single.(er.DurableReporter).Recovery(); len(rec) != 1 {
		t.Fatalf("single Recovery = %v", rec)
	}
	single.(er.DurableReporter).Abandon()

	shCfg := v2Config()
	shCfg.Dir = t.TempDir()
	shCfg.Durable = er.StreamingDurable{NoSync: true}
	shCfg.Shards = 2
	sh, err := er.Open(ctx, shCfg)
	if err != nil {
		t.Fatal(err)
	}
	if rec := sh.(er.DurableReporter).Recovery(); len(rec) != 2 {
		t.Fatalf("sharded Recovery = %v", rec)
	}
	sh.(er.DurableReporter).Abandon()

	if msg := (&er.ErrNotFound{URI: "u:x"}).Error(); !strings.Contains(msg, "u:x") {
		t.Fatalf("ErrNotFound by URI = %q", msg)
	}
	if msg := (&er.ErrNotFound{ID: 7}).Error(); !strings.Contains(msg, "7") {
		t.Fatalf("ErrNotFound by handle = %q", msg)
	}
}
