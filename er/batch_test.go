package er_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"entityres/er"
)

// ApplyBatch conformance: every deployment form applies a whole batch of
// URI-addressed stream operations through its amortized path — one lock,
// one journal append, one fan-out, one wire round trip per shard — and
// stays answer-identical to the per-op path and to every other form.
func TestApplyBatchConformance(t *testing.T) {
	ctx := context.Background()
	forms := openAll(t, ctx)

	attrs := func(vals ...string) []er.Attribute {
		out := make([]er.Attribute, 0, len(vals)/2)
		for i := 0; i+1 < len(vals); i += 2 {
			out = append(out, er.Attribute{Name: vals[i], Value: vals[i+1]})
		}
		return out
	}
	batches := [][]er.StreamOp{
		{
			{Kind: er.StreamInsert, URI: "u:a", Attrs: attrs("name", "alice smith", "city", "berlin")},
			{Kind: er.StreamInsert, URI: "u:b", Attrs: attrs("name", "alice smith", "city", "berlin de")},
			{Kind: er.StreamInsert, URI: "u:c", Attrs: attrs("name", "carol jones", "city", "paris")},
		},
		{
			// Later records see earlier ones: u:d is inserted and updated
			// into the alice cluster inside ONE batch; u:c leaves.
			{Kind: er.StreamInsert, URI: "u:d", Attrs: attrs("name", "dave brown", "city", "oslo")},
			{Kind: er.StreamUpdate, URI: "u:d", Attrs: attrs("name", "alice smith", "city", "berlin")},
			{Kind: er.StreamDelete, URI: "u:c"},
		},
	}
	// The per-op reference: the same stream, one operation per batch — the
	// degenerate chunking the amortized path must be bit-exact with.
	ref, err := er.Open(ctx, v2Config())
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	for _, batch := range batches {
		for _, op := range batch {
			if err := ref.ApplyBatch(ctx, []er.StreamOp{op}); err != nil {
				t.Fatalf("reference %s %s: %v", op.Kind, op.URI, err)
			}
		}
		for name, r := range forms {
			if err := r.ApplyBatch(ctx, batch); err != nil {
				t.Fatalf("%s: ApplyBatch: %v", name, err)
			}
		}
	}
	base := mustStats(t, ref)
	for name, r := range forms {
		if st := mustStats(t, r); st != base {
			t.Fatalf("%s stats %+v diverge from per-op reference %+v", name, st, base)
		}
		for _, uri := range []string{"u:a", "u:b", "u:d"} {
			w, err := ref.Query(ctx, er.Query{URI: uri, Cluster: true})
			if err != nil {
				t.Fatal(err)
			}
			g, err := r.Query(ctx, er.Query{URI: uri, Cluster: true})
			if err != nil {
				t.Fatalf("%s: query %s: %v", name, uri, err)
			}
			if !reflect.DeepEqual(g, w) {
				t.Fatalf("%s answered %s with %+v, per-op reference %+v", name, uri, g, w)
			}
		}
		var nf *er.ErrNotFound
		if _, err := r.Query(ctx, er.Query{URI: "u:c"}); !errors.As(err, &nf) {
			t.Fatalf("%s: batch-deleted u:c still answers (%v)", name, err)
		}
		// A batch is admitted whole or not at all, on every form: the valid
		// insert ahead of the bad update must not land.
		bad := []er.StreamOp{
			{Kind: er.StreamInsert, URI: "u:x", Attrs: attrs("name", "erin flores")},
			{Kind: er.StreamUpdate, URI: "u:ghost", Attrs: attrs("name", "y")},
		}
		if err := r.ApplyBatch(ctx, bad); err == nil {
			t.Fatalf("%s admitted a batch with an unknown update target", name)
		}
		if _, err := r.Query(ctx, er.Query{URI: "u:x"}); !errors.As(err, &nf) {
			t.Fatalf("%s applied the valid prefix of a rejected batch (%v)", name, err)
		}
		if st := mustStats(t, r); st != base {
			t.Fatalf("%s: rejected batch moved counters %+v -> %+v", name, base, st)
		}
		// An empty batch is a universal no-op.
		if err := r.ApplyBatch(ctx, nil); err != nil {
			t.Fatalf("%s: empty batch: %v", name, err)
		}
	}
	// The amortization shows through PerfReporter on every form: two
	// appends for two batches on the single-node form (the per-op reference
	// paid one per op), one fan-out per batch on the fanning-out forms.
	if p := forms["single"].(er.PerfReporter).Perf(); p.JournalAppends != 2 {
		t.Fatalf("single form made %d journal appends for 2 batches", p.JournalAppends)
	}
	if p := ref.(er.PerfReporter).Perf(); p.JournalAppends != 6 {
		t.Fatalf("per-op reference made %d journal appends for 6 ops", p.JournalAppends)
	}
	for _, name := range []string{"sharded", "networked"} {
		if p := forms[name].(er.PerfReporter).Perf(); p.FanOuts != 2 {
			t.Fatalf("%s form fanned out %d times for 2 batches", name, p.FanOuts)
		}
	}
	if p := forms["networked"].(er.PerfReporter).Perf(); p.TransportRoundTrips != 4 {
		t.Fatalf("networked form spent %d round trips for 2 batches on 2 shards", p.TransportRoundTrips)
	}
}
