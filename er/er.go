// Package er is the public API of the entity-resolution framework: a
// faithful, production-oriented implementation of the ER framework for the
// Web of data presented in "Web-scale Blocking, Iterative and Progressive
// Entity Resolution" (Stefanidis, Christophides, Efthymiou; ICDE 2017).
//
// The package re-exports the supported surface of the internal subsystem
// packages as stable aliases, organized by framework phase:
//
//   - data model: Description, Collection, Pair, Matches (entity model of
//     Web-of-data descriptions);
//   - blocking: TokenBlocking, StandardBlocking, AttributeClustering,
//     SortedNeighborhood, QGramsBlocking, SuffixArrayBlocking, Canopy,
//     PrefixInfixSuffix, SimJoinBlocking, FrequentItemsetBlocking,
//     MultiBlock;
//   - block cleaning: AutoPurge, MaxComparisonsPurge, BlockFiltering;
//   - meta-blocking: MetaBlocker with CBS/ECBS/JS/EJS/ARCS weighting and
//     WEP/CEP/WNP/CNP pruning;
//   - matching: TokenJaccard, TokenContainment, TFIDFCosine, BestValueJW,
//     Weighted, Matcher;
//   - iterative resolution: RSwoosh, Collective, IterativeBlocking;
//   - progressive resolution: PSNM, SlidingWindow, Hierarchy, BenefitCost
//     schedulers and the budgeted runner;
//   - streaming resolution: StreamingResolver maintaining blocks, matches
//     and clusters under live insert/update/delete traffic, with an op-log
//     exchange format (ReadStreamOps/WriteStreamOps), optional live
//     meta-blocking (StreamingConfig.Meta: WEP/WNP pruning of CBS/ECBS/JS
//     weights over the incrementally-maintained WeightedBlockingGraph),
//     and a durable storage layer (PersistentResolver: every operation
//     journaled to fsync'd CRC-framed WAL segments, compacted into
//     snapshots, crash-recovered by snapshot restore plus bounded tail
//     replay), and a sharded deployment form (ShardedResolver: the
//     blocking-key space hash-partitioned across N shard resolvers with
//     coordinator-merged reads, bit-exact with the single-node resolver
//     for every shard count, per-shard group-committed WALs, and
//     crash-tested shard stop/rejoin bootstrap);
//   - the Pipeline tying the phases together (Fig. 1 of the paper);
//   - synthetic data generation, N-Triples I/O and evaluation metrics.
//
// The quickstart in examples/quickstart shows an end-to-end run in ~40
// lines.
package er

import (
	"context"
	"io"

	"entityres/internal/blocking"
	"entityres/internal/blockproc"
	"entityres/internal/core"
	"entityres/internal/datagen"
	"entityres/internal/entity"
	"entityres/internal/evaluation"
	"entityres/internal/freqmine"
	"entityres/internal/graph"
	"entityres/internal/incremental"
	"entityres/internal/iterative"
	"entityres/internal/iterblock"
	"entityres/internal/matching"
	"entityres/internal/metablocking"
	"entityres/internal/multiblock"
	"entityres/internal/pipeline"
	"entityres/internal/progressive"
	"entityres/internal/rdf"
	"entityres/internal/sharded"
	"entityres/internal/simjoin"
	"entityres/internal/tabular"
	"entityres/internal/token"
)

// Data model.
type (
	// Description is one entity description: URI plus schema-free
	// attribute-value pairs.
	Description = entity.Description
	// Attribute is one attribute-value pair.
	Attribute = entity.Attribute
	// Collection is an ordered set of descriptions (dirty or clean-clean).
	Collection = entity.Collection
	// Kind distinguishes dirty from clean-clean collections.
	Kind = entity.Kind
	// ID is a dense description identifier within a collection.
	ID = entity.ID
	// Pair is an unordered description pair in canonical form.
	Pair = entity.Pair
	// Matches is a set of matching pairs (ground truth or output).
	Matches = entity.Matches
)

// Collection kinds.
const (
	Dirty      = entity.Dirty
	CleanClean = entity.CleanClean
)

// NewDescription returns a description with the given URI.
func NewDescription(uri string) *Description { return entity.NewDescription(uri) }

// NewCollection returns an empty collection of the given kind.
func NewCollection(kind Kind) *Collection { return entity.NewCollection(kind) }

// NewMatches returns an empty match set.
func NewMatches() *Matches { return entity.NewMatches() }

// NewPair returns the canonical pair {a, b}.
func NewPair(a, b ID) Pair { return entity.NewPair(a, b) }

// Tokenization.
type (
	// Profiler converts descriptions to tokens (see Scheme).
	Profiler = token.Profiler
	// Stopwords is a token exclusion set.
	Stopwords = token.Stopwords
)

// Tokenization schemes.
const (
	SchemaAgnostic = token.SchemaAgnostic
	SchemaAware    = token.SchemaAware
)

// DefaultProfiler returns the schema-agnostic profiler with default
// stopwords.
func DefaultProfiler() *Profiler { return token.DefaultProfiler() }

// Blocking.
type (
	// Blocker builds a block collection from an entity collection.
	Blocker = blocking.Blocker
	// Block is one blocking unit.
	Block = blocking.Block
	// Blocks is a blocking collection.
	Blocks = blocking.Blocks
	// KeyFunc derives blocking keys from a description.
	KeyFunc = blocking.KeyFunc
	// ScalarKeyFunc derives a single sortable key per description.
	ScalarKeyFunc = blocking.ScalarKeyFunc

	// TokenBlocking is schema-agnostic token blocking.
	TokenBlocking = blocking.TokenBlocking
	// StandardBlocking is classic key-based blocking.
	StandardBlocking = blocking.StandardBlocking
	// AttributeClustering is attribute-clustering token blocking.
	AttributeClustering = blocking.AttributeClustering
	// SortedNeighborhood is (multi-pass) sorted neighborhood blocking.
	SortedNeighborhood = blocking.SortedNeighborhood
	// QGramsBlocking blocks on padded character q-grams.
	QGramsBlocking = blocking.QGramsBlocking
	// ExtendedQGrams blocks on q-gram combination sub-keys.
	ExtendedQGrams = blocking.ExtendedQGrams
	// SuffixArrayBlocking blocks on bounded-frequency key suffixes.
	SuffixArrayBlocking = blocking.SuffixArrayBlocking
	// Canopy is canopy clustering with cheap TF-IDF distances.
	Canopy = blocking.Canopy
	// PrefixInfixSuffix is URI-aware blocking for Linked Data.
	PrefixInfixSuffix = blocking.PrefixInfixSuffix
	// SimJoinBlocking blocks through a threshold similarity join (PPJoin).
	SimJoinBlocking = simjoin.Blocking
	// FrequentItemsetBlocking blocks on frequent token co-occurrence.
	FrequentItemsetBlocking = freqmine.Blocking
	// MultiBlock aggregates several blockers into one multidimensional
	// collection.
	MultiBlock = multiblock.Aggregator
)

// Key helpers.
var (
	// WholeValueKeys derives one key per attribute value.
	WholeValueKeys = blocking.WholeValueKeys
	// AttributeValueKey concatenates the named attributes into a sort key.
	AttributeValueKey = blocking.AttributeValueKey
	// SortedTokensKey is the schema-agnostic sort key.
	SortedTokensKey = blocking.SortedTokensKey
)

// Block cleaning.
type (
	// BlockProcessor transforms a blocking collection.
	BlockProcessor = blockproc.Processor
	// MaxComparisonsPurge drops blocks above a comparison bound.
	MaxComparisonsPurge = blockproc.MaxComparisonsPurge
	// AutoPurge derives the purge bound from the collection itself.
	AutoPurge = blockproc.AutoPurge
	// SizePurge drops blocks covering a large fraction of the collection.
	SizePurge = blockproc.SizePurge
	// BlockFiltering keeps each description in its most selective blocks.
	BlockFiltering = blockproc.BlockFiltering
)

// Meta-blocking.
type (
	// MetaBlocker restructures blocks through the weighted blocking graph.
	MetaBlocker = metablocking.MetaBlocker
	// WeightScheme selects the edge weighting.
	WeightScheme = metablocking.WeightScheme
	// PruneScheme selects the graph pruning.
	PruneScheme = metablocking.PruneScheme
	// BlockingGraph is the weighted graph meta-blocking operates on.
	BlockingGraph = graph.Graph
	// WeightedBlockingGraph is the incrementally-maintained co-occurrence
	// statistics core behind every weighting scheme: build it from a
	// finished block collection (WeightedGraphFromBlocks) or keep it
	// current under a stream of per-document deltas by registering it as
	// an observer of a BlockIndex (it implements the membership-observer
	// interface). Materialize weights with its Graph method.
	WeightedBlockingGraph = metablocking.WeightedGraph
)

// Meta-blocking schemes.
const (
	CBS  = metablocking.CBS
	ECBS = metablocking.ECBS
	JS   = metablocking.JS
	EJS  = metablocking.EJS
	ARCS = metablocking.ARCS

	WEP = metablocking.WEP
	CEP = metablocking.CEP
	WNP = metablocking.WNP
	CNP = metablocking.CNP
)

// BuildBlockingGraph constructs the weighted blocking graph of a block
// collection.
func BuildBlockingGraph(bs *Blocks, w WeightScheme) *BlockingGraph {
	return metablocking.BuildGraph(bs, w)
}

// NewWeightedBlockingGraph returns an empty weighted blocking graph for
// incremental (per-document delta) maintenance.
func NewWeightedBlockingGraph(kind Kind) *WeightedBlockingGraph {
	return metablocking.NewWeightedGraph(kind)
}

// WeightedGraphFromBlocks accumulates the co-occurrence statistics of a
// whole block collection.
func WeightedGraphFromBlocks(bs *Blocks) *WeightedBlockingGraph {
	return metablocking.FromBlocks(bs)
}

// Matching.
type (
	// ProfileSimilarity scores description pairs in [0,1].
	ProfileSimilarity = matching.ProfileSimilarity
	// TokenJaccard is schema-agnostic token Jaccard similarity.
	TokenJaccard = matching.TokenJaccard
	// TokenContainment is the merge-friendly overlap coefficient.
	TokenContainment = matching.TokenContainment
	// TFIDFCosine is TF-IDF weighted cosine similarity.
	TFIDFCosine = matching.TFIDFCosine
	// BestValueJW is the best Jaro-Winkler over value pairs.
	BestValueJW = matching.BestValueJW
	// Weighted combines measures with weights.
	Weighted = matching.Weighted
	// WeightedPart is one component of Weighted.
	WeightedPart = matching.WeightedPart
	// Matcher is a thresholded similarity decision.
	Matcher = matching.Matcher
	// MatchResult is the outcome of executing a matcher over candidates.
	MatchResult = matching.Result
)

// NewTFIDFCosine indexes the collection for TF-IDF cosine matching.
func NewTFIDFCosine(c *Collection, p *Profiler) *TFIDFCosine {
	return matching.NewTFIDFCosine(c, p)
}

// ResolveBlocks executes a matcher over a block collection's distinct
// comparisons.
func ResolveBlocks(c *Collection, bs *Blocks, m *Matcher) MatchResult {
	return matching.ResolveBlocks(c, bs, m)
}

// Iterative resolution.
type (
	// SwooshResult is the outcome of merging-based resolution.
	SwooshResult = iterative.SwooshResult
	// CollectiveResolver is relationship-based iterative resolution.
	CollectiveResolver = iterative.Collective
	// IterBlockResult is the outcome of iterative blocking.
	IterBlockResult = iterblock.Result
)

// RSwoosh runs merging-based resolution over the collection.
func RSwoosh(c *Collection, m *Matcher) SwooshResult { return iterative.RSwoosh(c, m) }

// IterativeBlocking runs block-at-a-time resolution with merge propagation.
func IterativeBlocking(c *Collection, bs *Blocks, m *Matcher) IterBlockResult {
	return iterblock.Resolve(c, bs, m)
}

// Progressive resolution.
type (
	// Scheduler orders candidate comparisons and accepts match feedback.
	Scheduler = progressive.Scheduler
	// ProgressiveResult is the outcome of a budgeted run.
	ProgressiveResult = progressive.RunResult
)

// Progressive scheduler constructors.
var (
	NewStaticOrder   = progressive.NewStaticOrder
	NewRandomOrder   = progressive.NewRandomOrder
	NewSlidingWindow = progressive.NewSlidingWindow
	NewHierarchy     = progressive.NewHierarchy
	NewPSNM          = progressive.NewPSNM
	NewBenefitCost   = progressive.NewBenefitCost
)

// RunProgressive executes comparisons from the scheduler within the
// budget, recording the recall curve against gt (pass an empty Matches
// when no ground truth is available).
func RunProgressive(c *Collection, s Scheduler, m *Matcher, gt *Matches, budget int64) ProgressiveResult {
	return progressive.Run(c, s, m, gt, budget)
}

// Framework pipeline (Fig. 1).
type (
	// Pipeline wires the framework phases.
	Pipeline = core.Pipeline
	// PipelineResult is the outcome of a pipeline run.
	PipelineResult = core.Result
	// Mode selects the pipeline execution strategy.
	Mode = core.Mode
	// SchedulerFactory builds a progressive scheduler from the blocks.
	SchedulerFactory = core.SchedulerFactory
)

// Pipeline modes.
const (
	Batch            = core.Batch
	MergingIterative = core.MergingIterative
	IterativeBlocks  = core.IterativeBlocks
	CollectiveMode   = core.Collective
	ProgressiveMode  = core.Progressive
	StreamingMode    = core.Streaming
)

// Streaming resolution.
type (
	// StreamingResolver is a long-lived incremental resolver: it accepts a
	// stream of insert/update/delete operations and maintains blocks,
	// matches and entity clusters under them, with the differential
	// guarantee that its state always equals a from-scratch batch run over
	// the surviving descriptions — including, when StreamingConfig.Meta is
	// set, a batch run with the same meta-blocking configuration.
	StreamingResolver = incremental.Resolver
	// StreamingConfig parameterizes a StreamingResolver.
	StreamingConfig = incremental.Config
	// StreamingStats summarizes a resolver's work.
	StreamingStats = incremental.Stats
	// StreamingPerf is a resolver's cumulative per-op work counters:
	// reconcile effort (delta-proportional pruning-fate derivations,
	// matcher evaluations) and checkpoint compaction cost (full vs delta
	// snapshots, slots and pairs serialized). Machine-independent — the
	// same op stream yields the same counters on any host (PerfReporter).
	StreamingPerf = incremental.PerfCounters
	// StreamOp is one URI-addressed streaming operation (the op-log form).
	StreamOp = incremental.Op
	// StreamOpKind enumerates streaming operations.
	StreamOpKind = incremental.OpKind
	// StreamableBlocker is a blocker whose keys depend only on the
	// description itself, as streaming requires (token, standard and
	// q-grams blocking qualify).
	StreamableBlocker = blocking.StreamableBlocker
	// BlockIndex is the incrementally maintained key → block mapping.
	BlockIndex = blocking.BlockIndex
	// DynamicGraph maintains match-graph connected components under edge
	// insertion and node removal.
	DynamicGraph = graph.Dynamic
)

// Streaming operation kinds.
const (
	StreamInsert = incremental.OpInsert
	StreamUpdate = incremental.OpUpdate
	StreamDelete = incremental.OpDelete
)

// Durable streaming resolution: the WAL-backed storage layer.
type (
	// StreamingDurable tunes a persistent resolver's write-ahead log:
	// segment rotation size, snapshot-compaction cadence and fsync policy
	// (StreamingConfig.Durable).
	StreamingDurable = incremental.DurableOptions
	// StreamingRecovery reports what PersistentResolver restored: whether
	// state was found, the snapshot anchor, and how many WAL records the
	// bounded tail replay touched (StreamingResolver.Recovery).
	StreamingRecovery = incremental.RecoveryInfo
	// StreamJournal is the pluggable journal a resolver writes every
	// operation through before applying it; the in-memory resolver uses a
	// no-op implementation, PersistentResolver the WAL-backed one.
	StreamJournal = incremental.Journal
	// StreamRecord is one journaled operation in replayable form.
	StreamRecord = incremental.Record
)

// NewStreamingResolver validates the configuration and returns an empty
// in-memory streaming resolver (nothing is persisted).
//
// Deprecated: use Open with a Config carrying the same fields; it returns
// the unified Resolver interface. This constructor remains for one release.
func NewStreamingResolver(cfg StreamingConfig) (*StreamingResolver, error) {
	return incremental.New(cfg)
}

// PersistentResolver opens a durable streaming resolver backed by a
// write-ahead log in dir, creating it on first use. Every operation is
// journaled (fsync'd, CRC-framed segment files) before it is applied and
// periodically compacted into a snapshot of the full resolver state —
// surviving descriptions, blocks, match graph, weighted blocking graph and
// counters — so reopening the directory after a crash restores the
// snapshot and replays only the WAL tail. The recovered resolver is
// bit-identical to one that processed the acknowledged operations without
// interruption; use StreamingResolver.Recovery to inspect what was
// restored, Compact to checkpoint on demand, Snapshot to materialize the
// live state, and Close to seal the journal.
//
// Deprecated: use Open with Config.Dir set. This constructor remains for
// one release.
func PersistentResolver(dir string, cfg StreamingConfig) (*StreamingResolver, error) {
	return incremental.OpenResolver(dir, cfg)
}

// Sharded streaming resolution: the key-partitioned deployment form.
type (
	// ShardedResolver distributes the streaming resolver across the
	// blocking-key space: a coordinator hash-partitions keys over N shard
	// resolvers, fans every operation out in parallel, and merges the
	// shard-local match edges so reads are globally consistent — and
	// bit-exact with the single-node StreamingResolver (and batch) for
	// every shard count, including comparison counts and restructured
	// blocks. Shards journal to their own WALs (group-commit fsync
	// batching) and can be hard-stopped and rejoined from their own
	// snapshot + WAL tail (StopShard / RejoinShard) without global replay.
	ShardedResolver = sharded.Resolver
	// ShardedConfig parameterizes a ShardedResolver: the StreamingConfig
	// fields plus the shard count and per-shard durability options.
	ShardedConfig = sharded.Config
)

// NewShardedResolver validates the configuration and returns an empty
// in-memory sharded streaming resolver.
//
// Deprecated: use Open with Config.Shards > 1. This constructor remains
// for one release.
func NewShardedResolver(cfg ShardedConfig) (*ShardedResolver, error) {
	return sharded.New(cfg)
}

// PersistentShardedResolver opens a durable sharded resolver rooted at
// dir: shard i journals every operation to its own write-ahead log under
// dir/shard-%03d, and an existing directory is recovered shard by shard
// with the coordinator's replica rebuilt from the shards. The shard count
// is pinned in a manifest on first use.
//
// Deprecated: use Open with Config.Dir and Config.Shards set. This
// constructor remains for one release.
func PersistentShardedResolver(dir string, cfg ShardedConfig) (*ShardedResolver, error) {
	return sharded.Open(dir, cfg)
}

// NewBlockIndex returns an empty incremental block index.
func NewBlockIndex(kind Kind) *BlockIndex { return blocking.NewBlockIndex(kind) }

// NewDynamicGraph returns an empty dynamic match graph.
func NewDynamicGraph() *DynamicGraph { return graph.NewDynamic() }

// Op-log I/O: JSON-lines encoding of streaming operations.
var (
	// ReadStreamOps parses a JSON-lines operation log.
	ReadStreamOps = incremental.ReadOps
	// WriteStreamOps serializes operations as JSON lines.
	WriteStreamOps = incremental.WriteOps
)

// Concurrent execution engine.
type (
	// ParallelPipeline executes a Pipeline configuration with sharded
	// worker pools: sharded blocking index build, parallel meta-blocking
	// edge weighting, a worker-pool matcher fed by a streaming comparison
	// iterator, and wave-parallel budgeted progressive runs. Results are
	// deterministic across worker/shard counts (ARCS-weighted
	// meta-blocking excepted — see the pipeline package docs).
	ParallelPipeline = pipeline.Engine
	// ParallelOptions sets the engine's worker and shard counts.
	ParallelOptions = pipeline.Options
	// KeyedBlocker is implemented by blockers whose index build can be
	// sharded across the collection (token, standard, q-grams,
	// suffix-array, prefix-infix-suffix blocking).
	KeyedBlocker = blocking.KeyedBlocker
	// CompareIterator streams the distinct comparisons of a block
	// collection without materializing the pair list.
	CompareIterator = blocking.CompareIterator
)

// NewParallelPipeline returns the concurrent engine for a pipeline
// configuration; run it with Run(ctx, c).
func NewParallelPipeline(cfg Pipeline, opt ParallelOptions) *ParallelPipeline {
	return pipeline.New(cfg, opt)
}

// NewCompareIterator returns a streaming iterator over the distinct
// comparisons of bs, in deterministic block order.
func NewCompareIterator(bs *Blocks) *CompareIterator { return blocking.NewCompareIterator(bs) }

// BuildShardedBlocks builds kb's block collection with the entity
// collection sharded across concurrent workers; the result is identical to
// kb.Block(c) for any shard count.
func BuildShardedBlocks(ctx context.Context, c *Collection, kb KeyedBlocker, shards int) (*Blocks, error) {
	return blocking.BuildSharded(ctx, c, kb, shards)
}

// ResolveBlocksParallel executes a matcher over a block collection's
// distinct comparisons with a pool of concurrent workers; the match output
// equals ResolveBlocks for any worker count.
func ResolveBlocksParallel(ctx context.Context, c *Collection, bs *Blocks, m *Matcher, workers int) (MatchResult, error) {
	return matching.ResolveBlocksParallel(ctx, c, bs, m, workers)
}

// RunProgressiveParallel is RunProgressive with matcher execution fanned
// out to workers in fixed-size waves; it stops exactly at the comparison
// budget and its result does not depend on the worker count.
func RunProgressiveParallel(ctx context.Context, c *Collection, s Scheduler, m *Matcher, gt *Matches, budget int64, workers int) (ProgressiveResult, error) {
	return progressive.RunParallel(ctx, c, s, m, gt, budget, workers)
}

// Synthetic data generation.
type (
	// GenConfig parameterizes synthetic KB generation.
	GenConfig = datagen.Config
	// Corruption sets duplicate noise levels.
	Corruption = datagen.Corruption
	// Domain selects the generated vocabulary profile.
	Domain = datagen.Domain
)

// Generator domains.
const (
	People        = datagen.People
	Movies        = datagen.Movies
	Bibliographic = datagen.Bibliographic
)

// Generators and corruption presets.
var (
	GenerateDirty         = datagen.GenerateDirty
	GenerateCleanClean    = datagen.GenerateCleanClean
	GenerateBibliographic = datagen.GenerateBibliographic
	LightCorruption       = datagen.LightCorruption
	HeavyCorruption       = datagen.HeavyCorruption
)

// Streaming generation: million-record corpora without materializing them.
type (
	// GenRecord is one streamed generated description (URI, source,
	// attributes, and — for duplicates — the matched original's URI).
	GenRecord = datagen.Record
	// GenStream emits generated records one at a time in flat memory,
	// bit-identical to the materializing generators.
	GenStream = datagen.Stream
)

var (
	// StreamDirty streams GenerateDirty's corpus record by record.
	StreamDirty = datagen.StreamDirty
	// StreamCleanClean streams GenerateCleanClean's corpus, all KB0
	// records before the KB1 counterparts.
	StreamCleanClean = datagen.StreamCleanClean
	// GenColumns reports the attribute columns a streamed corpus can
	// carry, for CSV renderings.
	GenColumns = datagen.StreamColumns
)

// Evaluation.
type (
	// BlockingMetrics is PC/PQ/RR of a blocking collection.
	BlockingMetrics = evaluation.BlockingMetrics
	// PRF is precision/recall/F1 of a match output.
	PRF = evaluation.PRF
	// ClusterMetrics is entity-level (cluster) quality plus Rand index.
	ClusterMetrics = evaluation.ClusterMetrics
	// Curve is a progressive recall curve.
	Curve = evaluation.Curve
)

// Evaluation functions.
var (
	EvaluateBlocking = evaluation.EvaluateBlocking
	ComparePairs     = evaluation.ComparePairs
	EvaluateClusters = evaluation.EvaluateClusters
)

// ReadTruthTSV parses tab-separated URI pairs into a match set over c.
func ReadTruthTSV(c *Collection, r io.Reader) (*Matches, error) {
	return entity.ReadURIMatches(c, r)
}

// WriteTruthTSV serializes a match set as tab-separated URI pairs.
func WriteTruthTSV(w io.Writer, c *Collection, m *Matches) error {
	return entity.WriteURIMatches(w, c, m)
}

// RDF I/O.

// ReadNTriples parses an N-Triples document into the collection, tagging
// descriptions with the source index.
func ReadNTriples(c *Collection, r io.Reader, source int) error {
	return rdf.AddToCollection(c, r, source)
}

// WriteNTriples serializes the collection as N-Triples.
func WriteNTriples(w io.Writer, c *Collection) error {
	return rdf.WriteCollection(w, c)
}

// Tabular I/O: CSV and JSON-lines sources, schema-agnostic like the RDF
// path (package tabular). Every blocker and matcher sees tabular records
// exactly as it sees triples.

// TabularOptions configures tabular column mapping: ID column, per-source
// attribute renames, headerless schemas and the CSV delimiter.
type TabularOptions = tabular.Options

// ReadCSV parses a CSV document into the collection (one row per
// description), tagging descriptions with the source index.
func ReadCSV(c *Collection, r io.Reader, source int, opt TabularOptions) error {
	return tabular.AddCSV(c, r, source, opt)
}

// ReadJSONL parses a JSON-lines document into the collection (one object
// per description), tagging descriptions with the source index.
func ReadJSONL(c *Collection, r io.Reader, source int, opt TabularOptions) error {
	return tabular.AddJSONL(c, r, source, opt)
}

// WriteCSV serializes descriptions as headered CSV; the column order
// defaults to first-appearance attribute order (see TabularColumns).
func WriteCSV(w io.Writer, descs []*Description, opt TabularOptions) error {
	return tabular.WriteCSV(w, descs, opt)
}

// WriteJSONL serializes descriptions as JSON-lines, multi-valued
// attributes as arrays.
func WriteJSONL(w io.Writer, descs []*Description, opt TabularOptions) error {
	return tabular.WriteJSONL(w, descs, opt)
}

// TabularColumns reports the distinct attribute names of descs in
// first-appearance order — the derived CSV header.
func TabularColumns(descs []*Description) []string {
	return tabular.Columns(descs)
}

// WriteSourceMatches exports one source's view of a match set: one line
// per matched description of that source — its URI, then the sorted URIs
// of its partners — the per-source result export of a clean-clean
// interlinking run.
func WriteSourceMatches(w io.Writer, c *Collection, m *Matches, source int) error {
	return entity.WriteSourceMatches(w, c, m, source)
}
