package er_test

import (
	"context"
	"testing"

	"entityres/er"
)

// TestPerfReporter: both local deployment forms surface the
// machine-independent work counters through er.PerfReporter.
func TestPerfReporter(t *testing.T) {
	ctx := context.Background()
	open := func(shards int) er.Resolver {
		t.Helper()
		r, err := er.Open(ctx, er.Config{
			Kind:    er.Dirty,
			Blocker: &er.TokenBlocking{},
			Matcher: &er.Matcher{Sim: &er.TokenJaccard{}, Threshold: 0.5},
			Meta:    &er.MetaBlocker{Weight: er.CBS, Prune: er.WEP},
			Shards:  shards,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { r.Close() })
		for _, uri := range []string{"u:a", "u:b", "u:c"} {
			d := &er.Description{URI: uri, Attrs: []er.Attribute{{Name: "name", Value: "alice smith"}}}
			if _, err := r.Insert(ctx, d); err != nil {
				t.Fatal(err)
			}
		}
		if err := r.Flush(ctx); err != nil {
			t.Fatal(err)
		}
		return r
	}
	single := open(1).(er.PerfReporter).Perf()
	if single.Reconciles <= 0 || single.ReconcileExamined <= 0 {
		t.Fatalf("single-node Perf reports no reconcile work: %+v", single)
	}
	// 3 inserts plus the journaled reconcile the Flush ran.
	if single.JournalAppends != 4 {
		t.Fatalf("single-node Perf counts %d journal appends for 3 inserts + 1 reconcile", single.JournalAppends)
	}
	// The sharded form reconciles at the coordinator, so its shard-summed
	// reconcile and snapshot counters stay zero for an in-memory deployment;
	// what it DOES report is the write-amortization evidence — per-shard
	// journal appends (3 ops × 3 shards) and one fan-out per operation.
	sharded := open(3).(er.PerfReporter).Perf()
	if sharded.Reconciles != 0 || sharded.ReconcileExamined != 0 || sharded.FullSnapshots != 0 || sharded.DeltaSnapshots != 0 {
		t.Fatalf("in-memory sharded deployment reports shard-local reconcile/snapshot work: %+v", sharded)
	}
	if sharded.JournalAppends != 9 || sharded.FanOuts != 3 {
		t.Fatalf("sharded Perf counts appends=%d fanouts=%d for 3 ops on 3 shards", sharded.JournalAppends, sharded.FanOuts)
	}
}
