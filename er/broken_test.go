package er_test

import (
	"errors"
	"testing"

	"entityres/er"
	"entityres/internal/incremental"
)

// The re-exported sentinel must be the same value callers see from the
// streaming layer, so errors.Is works no matter which package produced
// the error.
func TestErrBrokenIdentity(t *testing.T) {
	if !errors.Is(er.ErrBroken, incremental.ErrBroken) {
		t.Fatal("er.ErrBroken does not match incremental.ErrBroken")
	}
	wrapped := errors.Join(errors.New("context"), incremental.ErrBroken)
	if !errors.Is(wrapped, er.ErrBroken) {
		t.Fatal("wrapped incremental.ErrBroken not matched by er.ErrBroken")
	}
}
