package er_test

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"entityres/er"
)

// The tabular differential suite: the same logical records rendered as
// CSV, JSON-lines and round-tripped N-Triples must resolve bit-identically
// — matches, comparison counts, restructured blocks — through batch,
// streaming and 2-shard deployments. This extends the PR 2/PR 5
// differential harness with a source-format axis: the three parsers may
// order attributes differently (CSV column order, JSONL key order, RDF
// sorted), but every token-based stage must be blind to that.

// tabularScenario renders one clean-clean corpus in all three formats,
// split per source. Index 0/1 of each slice is the source file.
type tabularScenario struct {
	collection *er.Collection
	truth      *er.Matches
	csv        [2][]byte
	jsonl      [2][]byte
	nt         [2][]byte
}

func makeTabularScenario(t *testing.T, cfg er.GenConfig) *tabularScenario {
	t.Helper()
	c, truth, err := er.GenerateCleanClean(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var perSource [2][]*er.Description
	for _, d := range c.All() {
		perSource[d.Source] = append(perSource[d.Source], d)
	}
	sc := &tabularScenario{collection: c, truth: truth}
	for s := 0; s < 2; s++ {
		var csvBuf, jsonlBuf, ntBuf bytes.Buffer
		if err := er.WriteCSV(&csvBuf, perSource[s], er.TabularOptions{}); err != nil {
			t.Fatalf("render csv source %d: %v", s, err)
		}
		if err := er.WriteJSONL(&jsonlBuf, perSource[s], er.TabularOptions{}); err != nil {
			t.Fatalf("render jsonl source %d: %v", s, err)
		}
		sub := er.NewCollection(er.Dirty)
		for _, d := range perSource[s] {
			clone := d.Clone()
			clone.Source = 0
			if _, err := sub.Add(clone); err != nil {
				t.Fatal(err)
			}
		}
		if err := er.WriteNTriples(&ntBuf, sub); err != nil {
			t.Fatalf("render nt source %d: %v", s, err)
		}
		sc.csv[s] = csvBuf.Bytes()
		sc.jsonl[s] = jsonlBuf.Bytes()
		sc.nt[s] = ntBuf.Bytes()
	}
	return sc
}

// parse ingests the scenario's rendering of the given format back into a
// fresh clean-clean collection.
func (sc *tabularScenario) parse(t *testing.T, format string) *er.Collection {
	t.Helper()
	c := er.NewCollection(er.CleanClean)
	for s := 0; s < 2; s++ {
		var err error
		switch format {
		case "csv":
			err = er.ReadCSV(c, bytes.NewReader(sc.csv[s]), s, er.TabularOptions{})
		case "jsonl":
			err = er.ReadJSONL(c, bytes.NewReader(sc.jsonl[s]), s, er.TabularOptions{})
		case "nt":
			err = er.ReadNTriples(c, bytes.NewReader(sc.nt[s]), s)
		default:
			t.Fatalf("unknown format %q", format)
		}
		if err != nil {
			t.Fatalf("parse %s source %d: %v", format, s, err)
		}
	}
	return c
}

// files writes the format's per-source renderings to disk and returns
// er.Source entries for Open preloading.
func (sc *tabularScenario) files(t *testing.T, format string) []er.Source {
	t.Helper()
	dir := t.TempDir()
	docs := map[string][2][]byte{"csv": sc.csv, "jsonl": sc.jsonl, "nt": sc.nt}[format]
	sources := make([]er.Source, 2)
	for s := 0; s < 2; s++ {
		path := filepath.Join(dir, fmt.Sprintf("kb%d.%s", s, format))
		if err := os.WriteFile(path, docs[s], 0o644); err != nil {
			t.Fatal(err)
		}
		sources[s] = er.Source{Path: path, Index: s}
	}
	return sources
}

// matchDigest renders a match set as its deterministic truth-TSV bytes.
func matchDigest(t *testing.T, c *er.Collection, m *er.Matches) string {
	t.Helper()
	var buf bytes.Buffer
	if err := er.WriteTruthTSV(&buf, c, m); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// blockDigest canonicalizes a blocking collection: one line per block —
// key, sorted member URIs per side — sorted, so formats that discover
// tokens in different orders still digest identically iff the blocks are
// identical.
func blockDigest(t *testing.T, c *er.Collection, blocks *er.Blocks) string {
	t.Helper()
	uris := func(ids []er.ID) string {
		out := make([]string, len(ids))
		for i, id := range ids {
			out[i] = c.Get(id).URI
		}
		sort.Strings(out)
		return strings.Join(out, ",")
	}
	var lines []string
	for _, b := range blocks.All() {
		lines = append(lines, b.Key+"|"+uris(b.S0)+"|"+uris(b.S1))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

func tabularPipelines() map[string]func() *er.Pipeline {
	return map[string]func() *er.Pipeline{
		"plain": func() *er.Pipeline {
			return &er.Pipeline{
				Blocker: &er.TokenBlocking{},
				Matcher: &er.Matcher{Sim: &er.TokenJaccard{}, Threshold: 0.5},
			}
		},
		"meta": func() *er.Pipeline {
			return &er.Pipeline{
				Blocker: &er.TokenBlocking{},
				Meta:    &er.MetaBlocker{Weight: er.CBS, Prune: er.WEP},
				Matcher: &er.Matcher{Sim: &er.TokenJaccard{}, Threshold: 0.5},
			}
		},
	}
}

// TestTabularDifferentialParity is the batch leg: identical matches,
// comparison counts and (restructured) blocks across the three formats,
// with and without meta-blocking.
func TestTabularDifferentialParity(t *testing.T) {
	sc := makeTabularScenario(t, er.GenConfig{Seed: 77, Entities: 150, DupRatio: 0.6})
	formats := []string{"csv", "jsonl", "nt"}
	for pipeName, mk := range tabularPipelines() {
		var wantMatches, wantBlocks string
		var wantComparisons int64
		for i, format := range formats {
			c := sc.parse(t, format)
			if c.Len() != sc.collection.Len() {
				t.Fatalf("%s parsed %d descriptions, generated %d", format, c.Len(), sc.collection.Len())
			}
			res, err := mk().Run(c)
			if err != nil {
				t.Fatalf("%s/%s: %v", pipeName, format, err)
			}
			gotMatches := matchDigest(t, c, res.Matches)
			gotBlocks := blockDigest(t, c, res.Blocks)
			if i == 0 {
				wantMatches, wantBlocks, wantComparisons = gotMatches, gotBlocks, res.Comparisons
				if res.Matches.Len() == 0 {
					t.Fatalf("%s/%s: scenario produced no matches, parity is vacuous", pipeName, format)
				}
				// The scenario must actually resolve: most truth pairs found.
				prf := er.ComparePairs(res.Matches, sc.truth)
				if prf.Recall < 0.5 {
					t.Fatalf("%s/%s: recall %.3f too low for a meaningful scenario", pipeName, format, prf.Recall)
				}
				continue
			}
			if gotMatches != wantMatches {
				t.Fatalf("%s: %s matches diverge from %s", pipeName, format, formats[0])
			}
			if res.Comparisons != wantComparisons {
				t.Fatalf("%s: %s made %d comparisons, %s made %d", pipeName, format, res.Comparisons, formats[0], wantComparisons)
			}
			if gotBlocks != wantBlocks {
				t.Fatalf("%s: %s blocks diverge from %s", pipeName, format, formats[0])
			}
		}
	}
}

// TestTabularDeploymentParity is the deployment leg: the same per-source
// files preloaded through er.Open's Sources config resolve to bit-equal
// stats and per-URI match partners on the single-node streaming and the
// 2-shard deployments, for every format.
func TestTabularDeploymentParity(t *testing.T) {
	sc := makeTabularScenario(t, er.GenConfig{Seed: 77, Entities: 120, DupRatio: 0.6})
	ctx := context.Background()

	baseCfg := func() er.Config {
		return er.Config{
			Kind:    er.CleanClean,
			Blocker: &er.TokenBlocking{},
			Matcher: &er.Matcher{Sim: &er.TokenJaccard{}, Threshold: 0.5},
			Meta:    &er.MetaBlocker{Weight: er.CBS, Prune: er.WEP},
		}
	}

	// Every live URI, in insertion order, for the SameAs sweep.
	var uris []string
	for _, d := range sc.collection.All() {
		uris = append(uris, d.URI)
	}

	var wantStats er.StreamingStats
	var wantSameAs string
	first := ""
	for _, format := range []string{"csv", "jsonl", "nt"} {
		for _, shards := range []int{1, 2} {
			name := fmt.Sprintf("%s/shards=%d", format, shards)
			cfg := baseCfg()
			cfg.Sources = sc.files(t, format)
			if shards > 1 {
				cfg.Shards = shards
			}
			r, err := er.Open(ctx, cfg)
			if err != nil {
				t.Fatalf("%s: open: %v", name, err)
			}
			st := mustStats(t, r)
			if int(st.Inserts) != sc.collection.Len() || st.Live != sc.collection.Len() {
				t.Fatalf("%s: preloaded %d inserts (%d live), want %d", name, st.Inserts, st.Live, sc.collection.Len())
			}
			var sb strings.Builder
			for _, uri := range uris {
				res, err := r.Query(ctx, er.Query{URI: uri})
				if err != nil {
					t.Fatalf("%s: query %s: %v", name, uri, err)
				}
				fmt.Fprintf(&sb, "%s %v\n", uri, res.SameAs)
			}
			r.Close()
			if first == "" {
				first = name
				wantStats, wantSameAs = st, sb.String()
				if st.Matches == 0 {
					t.Fatalf("%s: no matches, parity is vacuous", name)
				}
				continue
			}
			if st != wantStats {
				t.Fatalf("%s stats %+v diverge from %s %+v", name, st, first, wantStats)
			}
			if sb.String() != wantSameAs {
				t.Fatalf("%s per-URI match partners diverge from %s", name, first)
			}
		}
	}
}

// TestSourcePreloadDurableResume checks the ops-log arithmetic around
// Sources: reopening a durable deployment with the same Sources must not
// double-insert (the journal already holds the records), and the resumed
// resolver accepts further operations.
func TestSourcePreloadDurableResume(t *testing.T) {
	sc := makeTabularScenario(t, er.GenConfig{Seed: 5, Entities: 60})
	ctx := context.Background()
	dir := t.TempDir()
	sources := sc.files(t, "csv")

	cfg := er.Config{
		Kind:    er.CleanClean,
		Blocker: &er.TokenBlocking{},
		Matcher: &er.Matcher{Sim: &er.TokenJaccard{}, Threshold: 0.5},
		Dir:     dir,
		Durable: er.StreamingDurable{NoSync: true},
		Sources: sources,
	}
	r, err := er.Open(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := mustStats(t, r)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	r2, err := er.Open(ctx, cfg)
	if err != nil {
		t.Fatalf("reopen with sources: %v", err)
	}
	defer r2.Close()
	st2 := mustStats(t, r2)
	if st2 != st {
		t.Fatalf("reopen changed stats: %+v -> %+v (sources double-inserted?)", st, st2)
	}
	// The stream continues past the sources.
	d := &er.Description{URI: "http://kb1.example.org/late", Source: 1,
		Attrs: []er.Attribute{{Name: "name", Value: "late arrival"}}}
	if _, err := r2.Insert(ctx, d); err != nil {
		t.Fatalf("insert after resumed preload: %v", err)
	}
	if st3 := mustStats(t, r2); st3.Inserts != st.Inserts+1 {
		t.Fatalf("inserts = %d, want %d", st3.Inserts, st.Inserts+1)
	}
}

// TestSourceFormatInference pins the extension table and its failure mode.
func TestSourceFormatInference(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "a.csv")
	if err := os.WriteFile(csvPath, []byte("id,name\nu1,Alice\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := er.NewCollection(er.Dirty)
	if err := er.ReadSource(c, er.Source{Path: csvPath}); err != nil {
		t.Fatalf("csv inference: %v", err)
	}
	if c.Len() != 1 || c.Get(0).URI != "u1" {
		t.Fatalf("csv source parsed to %+v", c.Get(0))
	}
	if err := er.ReadSource(c, er.Source{Path: filepath.Join(dir, "a.xlsx")}); err == nil ||
		!strings.Contains(err.Error(), "cannot infer format") {
		t.Fatalf("unknown extension error = %v", err)
	}
	if err := er.ReadSource(c, er.Source{Path: csvPath, Format: "parquet"}); err == nil ||
		!strings.Contains(err.Error(), "unknown format") {
		t.Fatalf("unknown format error = %v", err)
	}
	if err := er.ReadSource(c, er.Source{Path: filepath.Join(dir, "missing.csv")}); err == nil {
		t.Fatal("missing file must error")
	}
	n, err := er.SourceRecords([]er.Source{{Path: csvPath}})
	if err != nil || n != 1 {
		t.Fatalf("SourceRecords = %d, %v", n, err)
	}
}
