// Live resolver: the v2 er.Open API end to end. One Config selects the
// deployment — in-memory here; add Dir for durability, Shards for
// in-process sharding, or Addrs for a networked cluster — and the returned
// er.Resolver behaves identically in every form: insert, update and delete
// entity descriptions while querying who resolves to whom, live.
//
// Run with: go run ./examples/liveresolver
package main

import (
	"context"
	"fmt"
	"log"

	"entityres/er"
)

func main() {
	ctx := context.Background()
	r, err := er.Open(ctx, er.Config{
		Kind:    er.Dirty,
		Blocker: &er.TokenBlocking{},
		Matcher: &er.Matcher{Sim: &er.TokenJaccard{}, Threshold: 0.5},
		// Dir:    "/var/lib/er",                         // durable journal
		// Shards: 4,                                     // in-process shards
		// Addrs:  []string{"10.0.0.1:7701", ...},        // networked shards
	})
	if err != nil {
		log.Fatal(err)
	}
	defer r.Close()

	attrs := func(kv ...string) []er.Attribute {
		out := make([]er.Attribute, 0, len(kv)/2)
		for i := 0; i+1 < len(kv); i += 2 {
			out = append(out, er.Attribute{Name: kv[i], Value: kv[i+1]})
		}
		return out
	}

	// Descriptions stream in from different knowledge bases.
	for _, d := range []*er.Description{
		{URI: "http://kb1/alan", Attrs: attrs("name", "Alan Turing", "field", "computer science")},
		{URI: "http://kb2/a_turing", Attrs: attrs("label", "Alan Turing", "knownFor", "computer science")},
		{URI: "http://kb1/ada", Attrs: attrs("name", "Ada Lovelace", "field", "mathematics")},
	} {
		if _, err := r.Insert(ctx, d); err != nil {
			log.Fatal(err)
		}
	}

	// Who does kb1's Alan resolve to right now?
	res, err := r.Query(ctx, er.Query{URI: "http://kb1/alan", Cluster: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s is one of %d descriptions of the same entity\n",
		res.Description.URI, len(res.Cluster))
	for _, id := range res.SameAs {
		same, err := r.Query(ctx, er.Query{ID: id})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  same as %s\n", same.Description.URI)
	}

	// The stream keeps moving: an update re-resolves the description.
	if err := r.Update(ctx, res.ID, attrs("name", "A. M. Turing", "field", "cryptanalysis")); err != nil {
		log.Fatal(err)
	}
	st, err := r.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after the update: %d live descriptions, %d matched pairs, %d clusters\n",
		st.Live, st.Matches, st.Clusters)
}
