// Iterative deduplication: a dirty person dataset with multi-copy
// duplicates, resolved three ways — naive pairwise, merging-based
// R-Swoosh, and iterative blocking — showing how merging saves
// comparisons and how merge propagation across blocks finds matches no
// single profile pair supports.
//
// Run with: go run ./examples/iterativededup
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"entityres/er"
)

func main() {
	c, gt, err := er.GenerateDirty(er.GenConfig{
		Seed:          3,
		Entities:      300,
		DupRatio:      0.9,
		MaxDuplicates: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("descriptions: %d, true duplicate pairs: %d\n\n", c.Len(), gt.Len())

	// Merging-based resolution wants a merge-compatible similarity.
	matcher := &er.Matcher{Sim: &er.TokenContainment{}, Threshold: 0.75}

	bs, err := (&er.TokenBlocking{}).Block(c)
	if err != nil {
		log.Fatal(err)
	}

	type row struct {
		name        string
		matches     *er.Matches
		comparisons int64
	}
	var rows []row

	batch := er.ResolveBlocks(c, bs, matcher)
	rows = append(rows, row{"blocked batch (pairwise)", batch.Matches, batch.Comparisons})
	// Entity output requires an equivalence relation; closing the pairwise
	// decisions chains false positives into giant clusters — precision
	// collapses. The merging-based methods below close as they go, each
	// merge re-verified against the accumulated profile.
	rows = append(rows, row{"blocked batch (closed)", batch.Matches.Closure(), batch.Comparisons})

	sw := er.RSwoosh(c, matcher)
	rows = append(rows, row{"r-swoosh", sw.Matches, sw.Comparisons})

	ib := er.IterativeBlocking(c, bs, matcher)
	rows = append(rows, row{"iterative blocking", ib.Matches, ib.Comparisons})

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "method\tcomparisons\tprecision\trecall\tF1")
	for _, r := range rows {
		prf := er.ComparePairs(r.matches, gt)
		fmt.Fprintf(tw, "%s\t%d\t%.3f\t%.3f\t%.3f\n",
			r.name, r.comparisons, prf.Precision, prf.Recall, prf.F1)
	}
	tw.Flush()
	fmt.Printf("\nexhaustive comparisons would be %d\n", c.TotalComparisons())
}
