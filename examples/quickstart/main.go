// Quickstart: resolve a handful of heterogeneous entity descriptions
// end-to-end — token blocking, meta-blocking, matching — and print the
// discovered entity clusters.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"entityres/er"
)

func main() {
	// A dirty collection: the same people described with different
	// schemas, as in the Web of data.
	c := er.NewCollection(er.Dirty)
	c.MustAdd(er.NewDescription("http://kb1/alan").
		Add("name", "Alan Turing").
		Add("field", "computer science logic"))
	c.MustAdd(er.NewDescription("http://kb2/a_turing").
		Add("label", "A. Turing").
		Add("knownFor", "computer science enigma"))
	c.MustAdd(er.NewDescription("http://kb1/ada").
		Add("name", "Ada Lovelace").
		Add("field", "mathematics computing"))
	c.MustAdd(er.NewDescription("http://kb3/lovelace").
		Add("title", "Ada Lovelace").
		Add("occupation", "mathematician"))
	c.MustAdd(er.NewDescription("http://kb1/grace").
		Add("name", "Grace Hopper").
		Add("field", "compilers"))

	// The framework of Fig. 1: Blocking → planning → Matching.
	pipe := &er.Pipeline{
		Blocker:    &er.TokenBlocking{},
		Processors: []er.BlockProcessor{&er.AutoPurge{}},
		Meta:       &er.MetaBlocker{Weight: er.ARCS, Prune: er.WNP},
		Matcher:    &er.Matcher{Sim: &er.TokenJaccard{}, Threshold: 0.25},
	}
	res, err := pipe.Run(c)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("blocks: %d, comparisons executed: %d (exhaustive would be %d)\n",
		res.Blocks.Len(), res.Comparisons, c.TotalComparisons())
	for i, cluster := range res.Clusters() {
		fmt.Printf("entity %d:\n", i+1)
		for _, id := range cluster {
			fmt.Printf("  %s\n", c.Get(id).URI)
		}
	}
	for _, ph := range res.Phases {
		fmt.Printf("phase %-14s %v\n", ph.Name, ph.Duration.Round(1000))
	}
}
