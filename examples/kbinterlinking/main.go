// KB interlinking: clean-clean resolution across two synthetic movie KBs
// with proprietary schemas (the periphery-of-the-LOD-cloud scenario the
// paper motivates). Compares schema-aware standard blocking — which
// collapses under schema heterogeneity — against schema-agnostic token
// blocking and attribute-clustering blocking, then runs the full pipeline
// on the best collection and reports linkage quality.
//
// Run with: go run ./examples/kbinterlinking
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"entityres/er"
)

func main() {
	heavy := er.HeavyCorruption()
	c, gt, err := er.GenerateCleanClean(er.GenConfig{
		Seed:        7,
		Entities:    400,
		DupRatio:    0.6,
		Domain:      er.Movies,
		SchemaNoise: 0.9, // KB1 renames most attributes
		Corruption:  &heavy,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("KB0: %d movies, KB1: %d movies, true links: %d\n\n",
		c.SourceLen(0), c.SourceLen(1), gt.Len())

	blockers := []er.Blocker{
		&er.StandardBlocking{},
		&er.TokenBlocking{},
		&er.AttributeClustering{},
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "blocking\tPC\tPQ\tRR\tcomparisons")
	for _, b := range blockers {
		bs, err := b.Block(c)
		if err != nil {
			log.Fatal(err)
		}
		m := er.EvaluateBlocking(c, bs, gt)
		fmt.Fprintf(tw, "%s\t%.3f\t%.4f\t%.3f\t%d\n", b.Name(), m.PC, m.PQ, m.RR, m.Distinct)
	}
	tw.Flush()

	pipe := &er.Pipeline{
		Blocker:    &er.TokenBlocking{},
		Processors: []er.BlockProcessor{&er.AutoPurge{}, &er.BlockFiltering{Ratio: 0.8}},
		Meta:       &er.MetaBlocker{Weight: er.ARCS, Prune: er.WNP},
		Matcher:    &er.Matcher{Sim: &er.TokenJaccard{}, Threshold: 0.35},
	}
	res, err := pipe.Run(c)
	if err != nil {
		log.Fatal(err)
	}
	prf := er.ComparePairs(res.Matches, gt)
	fmt.Printf("\nfull pipeline: %d comparisons (exhaustive %d)\n",
		res.Comparisons, c.TotalComparisons())
	fmt.Printf("linkage quality: %v\n", prf)
}
