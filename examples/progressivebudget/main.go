// Progressive resolution under a budget: when only a fraction of the
// comparisons can be afforded, the scheduling heuristics of §IV report far
// more matches early than a batch (static) or random order. Prints the
// recall each scheduler reaches at increasing budget fractions.
//
// Run with: go run ./examples/progressivebudget
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"entityres/er"
)

func main() {
	c, gt, err := er.GenerateDirty(er.GenConfig{Seed: 11, Entities: 800, DupRatio: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	bs, err := (&er.TokenBlocking{}).Block(c)
	if err != nil {
		log.Fatal(err)
	}
	total := int64(bs.DistinctPairs().Len())
	matcher := &er.Matcher{Sim: &er.TokenJaccard{}, Threshold: 0.5}
	key := er.SortedTokensKey(nil)

	schedulers := map[string]func() er.Scheduler{
		"random":         func() er.Scheduler { return er.NewRandomOrder(bs, 1) },
		"static":         func() er.Scheduler { return er.NewStaticOrder(bs) },
		"slidingwindow":  func() er.Scheduler { return er.NewSlidingWindow(c, key, 0) },
		"hierarchy":      func() er.Scheduler { return er.NewHierarchy(c, key, nil) },
		"psnm+lookahead": func() er.Scheduler { return er.NewPSNM(c, key, true, 0) },
		"benefitcost": func() er.Scheduler {
			return er.NewBenefitCost(er.BuildBlockingGraph(bs, er.ARCS), 64, 1)
		},
	}
	fractions := []float64{0.01, 0.05, 0.10, 0.25, 0.50, 1.00}

	fmt.Printf("descriptions: %d, candidate comparisons: %d, true matches: %d\n\n",
		c.Len(), total, gt.Len())
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "scheduler")
	for _, f := range fractions {
		fmt.Fprintf(tw, "\t%.0f%%", f*100)
	}
	fmt.Fprintln(tw)
	for _, name := range []string{"random", "static", "slidingwindow", "hierarchy", "psnm+lookahead", "benefitcost"} {
		res := er.RunProgressive(c, schedulers[name](), matcher, gt, total)
		fmt.Fprint(tw, name)
		for _, f := range fractions {
			fmt.Fprintf(tw, "\t%.3f", res.Curve.RecallAt(int64(f*float64(total))))
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Println("\nrows show ground-truth recall reached within each budget fraction")
}
