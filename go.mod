module entityres

go 1.24
