// Command kbgen generates synthetic knowledge bases with exact ground
// truth for use with erctl, erbench or external tools.
//
// Usage:
//
//	kbgen -out DIR [-kind dirty|cleanclean|biblio] [-entities N]
//	      [-formats nt,csv,jsonl] [-dup RATIO] [-domain people|movies]
//	      [-corruption light|heavy] [-schemanoise P] [-vocabscale N]
//	      [-seed N]
//
// It writes kb0.<ext> (and kb1.<ext> for clean-clean kinds) per requested
// format plus truth.tsv with one matching URI pair per line. All formats
// of one run come from a single generator pass, so the same ground truth
// scores every format. The dirty and clean-clean kinds stream: a
// million-record corpus generates in flat memory. Raise -vocabscale when
// scaling -entities so token frequencies stay realistic.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"entityres/er"
	"entityres/internal/rdf"
	"entityres/internal/tabular"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole command behind the process wrapper: parse flags,
// generate, write every requested format. The returned value is the exit
// code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("kbgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out         = fs.String("out", "", "output directory (required)")
		kind        = fs.String("kind", "cleanclean", "dirty, cleanclean or biblio")
		entities    = fs.Int("entities", 1000, "number of distinct real-world entities")
		formats     = fs.String("formats", "nt", "comma-separated output formats: nt, csv, jsonl")
		dup         = fs.Float64("dup", 0.5, "duplication / overlap ratio")
		domain      = fs.String("domain", "people", "people or movies")
		corruption  = fs.String("corruption", "light", "light or heavy")
		schemaNoise = fs.Float64("schemanoise", 0.5, "attribute-rename probability for source 1")
		vocabScale  = fs.Int("vocabscale", 1, "vocabulary scale factor (grow with -entities)")
		seed        = fs.Int64("seed", 1, "generation seed")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *out == "" {
		fmt.Fprintln(stderr, "kbgen: -out is required")
		return 2
	}
	want, err := parseFormats(*formats)
	if err != nil {
		fmt.Fprintln(stderr, "kbgen:", err)
		return 2
	}
	cfg := er.GenConfig{
		Seed:        *seed,
		Entities:    *entities,
		DupRatio:    *dup,
		SchemaNoise: *schemaNoise,
		VocabScale:  *vocabScale,
	}
	switch strings.ToLower(*domain) {
	case "people":
		cfg.Domain = er.People
	case "movies":
		cfg.Domain = er.Movies
	default:
		fmt.Fprintf(stderr, "kbgen: unknown domain %q\n", *domain)
		return 2
	}
	switch strings.ToLower(*corruption) {
	case "light":
		c := er.LightCorruption()
		cfg.Corruption = &c
	case "heavy":
		c := er.HeavyCorruption()
		cfg.Corruption = &c
	default:
		fmt.Fprintf(stderr, "kbgen: unknown corruption %q\n", *corruption)
		return 2
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(stderr, "kbgen:", err)
		return 1
	}

	switch strings.ToLower(*kind) {
	case "dirty", "cleanclean":
		if err := streamCorpus(stdout, *out, strings.ToLower(*kind), cfg, want); err != nil {
			fmt.Fprintln(stderr, "kbgen:", err)
			return 1
		}
		return 0
	case "biblio":
		if err := writeBiblio(stdout, *out, cfg, want); err != nil {
			fmt.Fprintln(stderr, "kbgen:", err)
			if strings.Contains(err.Error(), "csv cannot") {
				return 2
			}
			return 1
		}
		return 0
	default:
		fmt.Fprintf(stderr, "kbgen: unknown kind %q\n", *kind)
		return 2
	}
}

// parseFormats validates and dedups the -formats list, preserving order.
func parseFormats(s string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	for _, f := range strings.Split(s, ",") {
		f = strings.ToLower(strings.TrimSpace(f))
		if f == "" {
			continue
		}
		switch f {
		case "nt", "csv", "jsonl":
		default:
			return nil, fmt.Errorf("unknown format %q (want nt, csv or jsonl)", f)
		}
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-formats selects no format")
	}
	return out, nil
}

// kbWriters holds one source file's sinks, one per requested format.
type kbWriters struct {
	files []*os.File
	bufs  []*bufio.Writer
	nt    *bufio.Writer
	csv   *tabular.CSVWriter
	jsonl *bufio.Writer
}

func newKBWriters(dir string, source int, formats []string, columns []string) (*kbWriters, error) {
	kw := &kbWriters{}
	for _, format := range formats {
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("kb%d.%s", source, format)))
		if err != nil {
			kw.close()
			return nil, err
		}
		kw.files = append(kw.files, f)
		bw := bufio.NewWriterSize(f, 1<<16)
		kw.bufs = append(kw.bufs, bw)
		switch format {
		case "nt":
			kw.nt = bw
		case "csv":
			cw, err := tabular.NewCSVWriter(bw, columns, tabular.Options{})
			if err != nil {
				kw.close()
				return nil, err
			}
			kw.csv = cw
		case "jsonl":
			kw.jsonl = bw
		}
	}
	return kw, nil
}

// write renders one record into every open format sink.
func (kw *kbWriters) write(d *er.Description) error {
	if kw.nt != nil {
		if err := rdf.WriteDescription(kw.nt, d); err != nil {
			return err
		}
	}
	if kw.csv != nil {
		if err := kw.csv.Write(d); err != nil {
			return err
		}
	}
	if kw.jsonl != nil {
		if err := tabular.WriteJSONLRecord(kw.jsonl, d, tabular.Options{}); err != nil {
			return err
		}
	}
	return nil
}

func (kw *kbWriters) finish() error {
	if kw.csv != nil {
		if err := kw.csv.Flush(); err != nil {
			return err
		}
	}
	for _, bw := range kw.bufs {
		if err := bw.Flush(); err != nil {
			return err
		}
	}
	for _, f := range kw.files {
		if err := f.Close(); err != nil {
			return err
		}
	}
	kw.files = nil
	return nil
}

func (kw *kbWriters) close() {
	for _, f := range kw.files {
		f.Close()
	}
}

// streamCorpus generates a dirty or clean-clean corpus record by record,
// fanning each record into every requested format and streaming the truth
// pairs alongside — memory stays flat in the corpus size, and every
// format of one run scores against the same truth.tsv.
func streamCorpus(stdout io.Writer, dir, kind string, cfg er.GenConfig, formats []string) error {
	var (
		stream  *er.GenStream
		sources int
		err     error
	)
	if kind == "dirty" {
		stream, err = er.StreamDirty(cfg)
		sources = 1
	} else {
		stream, err = er.StreamCleanClean(cfg)
		sources = 2
	}
	if err != nil {
		return err
	}

	kbs := make([]*kbWriters, sources)
	defer func() {
		for _, kw := range kbs {
			if kw != nil {
				kw.close()
			}
		}
	}()
	for s := 0; s < sources; s++ {
		// Renamed synonym columns appear wherever corrupted copies land:
		// the single dirty file, and the second clean-clean KB.
		renamed := kind == "dirty" || s == 1
		columns, err := er.GenColumns(cfg, renamed)
		if err != nil {
			return err
		}
		if kbs[s], err = newKBWriters(dir, s, formats, columns); err != nil {
			return err
		}
	}
	tf, err := os.Create(filepath.Join(dir, "truth.tsv"))
	if err != nil {
		return err
	}
	defer tf.Close()
	tw := bufio.NewWriter(tf)

	records, pairs := 0, 0
	// Dirty truth is per-cluster: all pairs among an original and its
	// immediately following duplicates, emitted in ID order — byte-
	// identical to the materialized WriteTruthTSV rendering.
	var cluster []string
	flushCluster := func() error {
		for i := 0; i < len(cluster); i++ {
			for j := i + 1; j < len(cluster); j++ {
				if _, err := fmt.Fprintf(tw, "%s\t%s\n", cluster[i], cluster[j]); err != nil {
					return err
				}
				pairs++
			}
		}
		cluster = cluster[:0]
		return nil
	}
	for {
		rec, ok := stream.Next()
		if !ok {
			break
		}
		records++
		d := &er.Description{URI: rec.URI, Attrs: rec.Attrs}
		if err := kbs[rec.Source].write(d); err != nil {
			return err
		}
		if kind == "dirty" {
			if rec.MatchOf == "" {
				if err := flushCluster(); err != nil {
					return err
				}
			}
			cluster = append(cluster, rec.URI)
		} else if rec.MatchOf != "" {
			// Clean-clean pairs arrive with ascending KB0 partners, so the
			// stream order is already the sorted truth order.
			if _, err := fmt.Fprintf(tw, "%s\t%s\n", rec.MatchOf, rec.URI); err != nil {
				return err
			}
			pairs++
		}
	}
	if kind == "dirty" {
		if err := flushCluster(); err != nil {
			return err
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if err := tf.Close(); err != nil {
		return err
	}
	for s := 0; s < sources; s++ {
		if err := kbs[s].finish(); err != nil {
			return err
		}
	}
	fmt.Fprintf(stdout, "kbgen: wrote %d descriptions, %d truth pairs to %s\n", records, pairs, dir)
	return nil
}

// writeBiblio materializes the bibliographic corpus (its generator is not
// streamed) and splits it per source into every requested format. CSV is
// refused: bibliographic records carry multi-valued author attributes a
// CSV cell cannot represent.
func writeBiblio(stdout io.Writer, dir string, cfg er.GenConfig, formats []string) error {
	for _, f := range formats {
		if f == "csv" {
			return fmt.Errorf("biblio records are multi-valued; csv cannot represent them (use nt or jsonl)")
		}
	}
	cfg.Domain = er.Bibliographic
	c, gt, err := er.GenerateBibliographic(cfg)
	if err != nil {
		return err
	}
	for s := 0; s < 2; s++ {
		var perSource []*er.Description
		for _, d := range c.All() {
			if d.Source != s {
				continue
			}
			cp := d.Clone()
			cp.Source = 0
			perSource = append(perSource, cp)
		}
		for _, format := range formats {
			f, err := os.Create(filepath.Join(dir, fmt.Sprintf("kb%d.%s", s, format)))
			if err != nil {
				return err
			}
			bw := bufio.NewWriterSize(f, 1<<16)
			switch format {
			case "nt":
				sub := er.NewCollection(er.Dirty)
				for _, d := range perSource {
					sub.MustAdd(d.Clone())
				}
				err = er.WriteNTriples(bw, sub)
			case "jsonl":
				err = er.WriteJSONL(bw, perSource, er.TabularOptions{})
			}
			if err == nil {
				err = bw.Flush()
			}
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return err
			}
		}
	}
	tf, err := os.Create(filepath.Join(dir, "truth.tsv"))
	if err != nil {
		return err
	}
	defer tf.Close()
	if err := er.WriteTruthTSV(tf, c, gt); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "kbgen: wrote %d descriptions, %d truth pairs to %s\n", c.Len(), gt.Len(), dir)
	return nil
}
