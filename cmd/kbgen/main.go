// Command kbgen generates synthetic knowledge bases with exact ground
// truth, in N-Triples format, for use with erctl or external tools.
//
// Usage:
//
//	kbgen -out DIR [-kind dirty|cleanclean|biblio] [-entities N]
//	      [-dup RATIO] [-domain people|movies] [-corruption light|heavy]
//	      [-schemanoise P] [-seed N]
//
// It writes kb0.nt (and kb1.nt for clean-clean kinds) plus truth.tsv with
// one matching URI pair per line.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"entityres/er"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole command behind the process wrapper: parse flags,
// generate, split by source, write. The returned value is the exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("kbgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out         = fs.String("out", "", "output directory (required)")
		kind        = fs.String("kind", "cleanclean", "dirty, cleanclean or biblio")
		entities    = fs.Int("entities", 1000, "number of distinct real-world entities")
		dup         = fs.Float64("dup", 0.5, "duplication / overlap ratio")
		domain      = fs.String("domain", "people", "people or movies")
		corruption  = fs.String("corruption", "light", "light or heavy")
		schemaNoise = fs.Float64("schemanoise", 0.5, "attribute-rename probability for source 1")
		seed        = fs.Int64("seed", 1, "generation seed")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *out == "" {
		fmt.Fprintln(stderr, "kbgen: -out is required")
		return 2
	}
	cfg := er.GenConfig{
		Seed:        *seed,
		Entities:    *entities,
		DupRatio:    *dup,
		SchemaNoise: *schemaNoise,
	}
	switch strings.ToLower(*domain) {
	case "people":
		cfg.Domain = er.People
	case "movies":
		cfg.Domain = er.Movies
	default:
		fmt.Fprintf(stderr, "kbgen: unknown domain %q\n", *domain)
		return 2
	}
	switch strings.ToLower(*corruption) {
	case "light":
		c := er.LightCorruption()
		cfg.Corruption = &c
	case "heavy":
		c := er.HeavyCorruption()
		cfg.Corruption = &c
	default:
		fmt.Fprintf(stderr, "kbgen: unknown corruption %q\n", *corruption)
		return 2
	}

	var (
		c   *er.Collection
		gt  *er.Matches
		err error
	)
	switch strings.ToLower(*kind) {
	case "dirty":
		c, gt, err = er.GenerateDirty(cfg)
	case "cleanclean":
		c, gt, err = er.GenerateCleanClean(cfg)
	case "biblio":
		cfg.Domain = er.Bibliographic
		c, gt, err = er.GenerateBibliographic(cfg)
	default:
		fmt.Fprintf(stderr, "kbgen: unknown kind %q\n", *kind)
		return 2
	}
	if err != nil {
		fmt.Fprintln(stderr, "kbgen:", err)
		return 1
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(stderr, "kbgen:", err)
		return 1
	}

	// Split the collection by source into per-KB files.
	write := func(name string, source int) error {
		sub := er.NewCollection(er.Dirty)
		for _, d := range c.All() {
			if d.Source != source {
				continue
			}
			cp := d.Clone()
			cp.Source = 0
			sub.MustAdd(cp)
		}
		f, err := os.Create(filepath.Join(*out, name))
		if err != nil {
			return err
		}
		defer f.Close()
		w := bufio.NewWriter(f)
		if err := er.WriteNTriples(w, sub); err != nil {
			return err
		}
		return w.Flush()
	}
	if err := write("kb0.nt", 0); err != nil {
		fmt.Fprintln(stderr, "kbgen:", err)
		return 1
	}
	if c.Kind() == er.CleanClean {
		if err := write("kb1.nt", 1); err != nil {
			fmt.Fprintln(stderr, "kbgen:", err)
			return 1
		}
	}
	tf, err := os.Create(filepath.Join(*out, "truth.tsv"))
	if err != nil {
		fmt.Fprintln(stderr, "kbgen:", err)
		return 1
	}
	defer tf.Close()
	if err := er.WriteTruthTSV(tf, c, gt); err != nil {
		fmt.Fprintln(stderr, "kbgen:", err)
		return 1
	}
	fmt.Fprintf(stdout, "kbgen: wrote %d descriptions, %d truth pairs to %s\n", c.Len(), gt.Len(), *out)
	return 0
}
