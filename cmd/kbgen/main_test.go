package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"entityres/er"
)

// TestRunKinds generates each KB kind into a temp directory and loads the
// files back through the er readers, round-tripping the generated truth.
func TestRunKinds(t *testing.T) {
	for _, tc := range []struct {
		kind   string
		extra  []string
		files  []string
		atMost int // kb1.nt only for clean-clean splits
	}{
		{kind: "dirty", files: []string{"kb0.nt", "truth.tsv"}},
		{kind: "cleanclean", extra: []string{"-domain", "movies", "-corruption", "heavy"},
			files: []string{"kb0.nt", "kb1.nt", "truth.tsv"}},
		{kind: "biblio", files: []string{"kb0.nt", "kb1.nt", "truth.tsv"}},
	} {
		t.Run(tc.kind, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "out")
			args := append([]string{"-out", dir, "-kind", tc.kind, "-entities", "40"}, tc.extra...)
			var stdout, stderr bytes.Buffer
			if code := run(args, &stdout, &stderr); code != 0 {
				t.Fatalf("run = %d, stderr: %s", code, stderr.String())
			}
			if !strings.Contains(stdout.String(), "kbgen: wrote") {
				t.Fatalf("summary line missing: %q", stdout.String())
			}
			for _, f := range tc.files {
				if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
					t.Errorf("expected output %s: %v", f, err)
				}
			}
			c := er.NewCollection(er.Dirty)
			f, err := os.Open(filepath.Join(dir, "kb0.nt"))
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if err := er.ReadNTriples(c, f, 0); err != nil {
				t.Fatalf("generated kb0.nt unreadable: %v", err)
			}
			if c.Len() == 0 {
				t.Fatal("generated KB is empty")
			}
		})
	}
}

// TestRunFlagValidation checks every refused-flag exit path.
func TestRunFlagValidation(t *testing.T) {
	dir := t.TempDir()
	for _, bad := range [][]string{
		{},                            // -out missing
		{"-bogusflag"},                // unknown flag
		{"-out", dir, "-kind", "x"},   // unknown kind
		{"-out", dir, "-domain", "x"}, // unknown domain
		{"-out", dir, "-corruption", "x"},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(bad, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) = %d, want 2 (stderr %q)", bad, code, stderr.String())
		}
	}
}

// TestRunFormats generates both streamed kinds in every format at once
// and checks the renderings agree: same URIs from each parser, and a
// truth.tsv byte-identical to the materialized generator's rendering.
func TestRunFormats(t *testing.T) {
	for _, kind := range []string{"dirty", "cleanclean"} {
		t.Run(kind, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "out")
			args := []string{"-out", dir, "-kind", kind, "-entities", "40", "-formats", "nt,csv,jsonl"}
			var stdout, stderr bytes.Buffer
			if code := run(args, &stdout, &stderr); code != 0 {
				t.Fatalf("run = %d, stderr: %s", code, stderr.String())
			}
			sources := 1
			if kind == "cleanclean" {
				sources = 2
			}
			uriList := func(c *er.Collection) []string {
				var out []string
				for _, d := range c.All() {
					out = append(out, d.URI)
				}
				return out
			}
			for s := 0; s < sources; s++ {
				perFormat := map[string][]string{}
				for _, format := range []string{"nt", "csv", "jsonl"} {
					c := er.NewCollection(er.Dirty)
					if err := er.ReadSource(c, er.Source{Path: filepath.Join(dir, fmt.Sprintf("kb%d.%s", s, format))}); err != nil {
						t.Fatalf("kb%d.%s: %v", s, format, err)
					}
					if c.Len() == 0 {
						t.Fatalf("kb%d.%s is empty", s, format)
					}
					perFormat[format] = uriList(c)
				}
				if !reflect.DeepEqual(perFormat["nt"], perFormat["csv"]) ||
					!reflect.DeepEqual(perFormat["nt"], perFormat["jsonl"]) {
					t.Fatalf("kb%d URI sequences differ across formats", s)
				}
			}

			// The streamed truth must be byte-identical to what the
			// materialized generator writes for the same config.
			cfg := er.GenConfig{Seed: 1, Entities: 40, DupRatio: 0.5, SchemaNoise: 0.5}
			lc := er.LightCorruption()
			cfg.Corruption = &lc
			var c *er.Collection
			var gt *er.Matches
			var err error
			if kind == "dirty" {
				c, gt, err = er.GenerateDirty(cfg)
			} else {
				c, gt, err = er.GenerateCleanClean(cfg)
			}
			if err != nil {
				t.Fatal(err)
			}
			var want bytes.Buffer
			if err := er.WriteTruthTSV(&want, c, gt); err != nil {
				t.Fatal(err)
			}
			got, err := os.ReadFile(filepath.Join(dir, "truth.tsv"))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want.Bytes()) {
				t.Fatalf("streamed truth.tsv differs from materialized rendering:\ngot:\n%s\nwant:\n%s", got, want.String())
			}
		})
	}
}

// TestRunFormatRefusals pins the format-flag exit paths: invalid names
// and the biblio/CSV clash (multi-valued authors) are usage errors.
func TestRunFormatRefusals(t *testing.T) {
	dir := t.TempDir()
	for _, bad := range [][]string{
		{"-out", dir, "-formats", "xml"},
		{"-out", dir, "-formats", ","},
		{"-out", dir, "-kind", "biblio", "-formats", "nt,csv"},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(bad, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) = %d, want 2 (stderr %q)", bad, code, stderr.String())
		}
	}
	// biblio still writes nt and jsonl.
	out := filepath.Join(t.TempDir(), "bib")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-out", out, "-kind", "biblio", "-entities", "30", "-formats", "jsonl,nt"}, &stdout, &stderr); code != 0 {
		t.Fatalf("biblio jsonl run = %d, stderr: %s", code, stderr.String())
	}
	for _, f := range []string{"kb0.nt", "kb1.nt", "kb0.jsonl", "kb1.jsonl", "truth.tsv"} {
		if _, err := os.Stat(filepath.Join(out, f)); err != nil {
			t.Errorf("expected output %s: %v", f, err)
		}
	}
}
