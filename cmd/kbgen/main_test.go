package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"entityres/er"
)

// TestRunKinds generates each KB kind into a temp directory and loads the
// files back through the er readers, round-tripping the generated truth.
func TestRunKinds(t *testing.T) {
	for _, tc := range []struct {
		kind   string
		extra  []string
		files  []string
		atMost int // kb1.nt only for clean-clean splits
	}{
		{kind: "dirty", files: []string{"kb0.nt", "truth.tsv"}},
		{kind: "cleanclean", extra: []string{"-domain", "movies", "-corruption", "heavy"},
			files: []string{"kb0.nt", "kb1.nt", "truth.tsv"}},
		{kind: "biblio", files: []string{"kb0.nt", "kb1.nt", "truth.tsv"}},
	} {
		t.Run(tc.kind, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "out")
			args := append([]string{"-out", dir, "-kind", tc.kind, "-entities", "40"}, tc.extra...)
			var stdout, stderr bytes.Buffer
			if code := run(args, &stdout, &stderr); code != 0 {
				t.Fatalf("run = %d, stderr: %s", code, stderr.String())
			}
			if !strings.Contains(stdout.String(), "kbgen: wrote") {
				t.Fatalf("summary line missing: %q", stdout.String())
			}
			for _, f := range tc.files {
				if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
					t.Errorf("expected output %s: %v", f, err)
				}
			}
			c := er.NewCollection(er.Dirty)
			f, err := os.Open(filepath.Join(dir, "kb0.nt"))
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if err := er.ReadNTriples(c, f, 0); err != nil {
				t.Fatalf("generated kb0.nt unreadable: %v", err)
			}
			if c.Len() == 0 {
				t.Fatal("generated KB is empty")
			}
		})
	}
}

// TestRunFlagValidation checks every refused-flag exit path.
func TestRunFlagValidation(t *testing.T) {
	dir := t.TempDir()
	for _, bad := range [][]string{
		{},                            // -out missing
		{"-bogusflag"},                // unknown flag
		{"-out", dir, "-kind", "x"},   // unknown kind
		{"-out", dir, "-domain", "x"}, // unknown domain
		{"-out", dir, "-corruption", "x"},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(bad, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) = %d, want 2 (stderr %q)", bad, code, stderr.String())
		}
	}
}
