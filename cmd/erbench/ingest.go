// The -ingest benchmark: one streamed generator pass fans a clean-clean
// corpus into N-Triples, CSV and JSON-lines files, then each format is
// parsed and resolved end-to-end through the same batch pipeline. The
// three formats must produce bit-identical matches, comparison counts and
// restructured blocks (asserted via canonical sha256 digests); the
// reported difference between them is purely parse cost. The full run is
// a million-record corpus; -short shrinks it to the CI regression scale.
package main

import (
	"bufio"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"entityres/er"
	"entityres/internal/rdf"
	"entityres/internal/tabular"
)

// Scenario constants. Entities scale with VocabScale so per-token block
// density — and therefore the purge decision and the match quality — is
// the same at every scale; the purge budget is part of the scenario
// identity recorded in the payload.
const (
	ingestEntitiesFull  = 680_000 // ~1.02M records at DupRatio 0.5
	ingestEntitiesShort = 1_334   // ~2k records, the CI gate scale
	ingestPurgeMax      = 2000    // per-block comparison budget
)

// benchIngestPortableJSON identifies the -ingest scenario and carries the
// machine-independent results. Every field is identical across the three
// formats by assertion, so they appear once.
type benchIngestPortableJSON struct {
	Records     int     `json:"records"`
	Entities    int     `json:"entities"`
	Seed        int64   `json:"seed"`
	VocabScale  int     `json:"vocab_scale"`
	PurgeMax    int     `json:"purge_max"`
	TruthPairs  int     `json:"truth_pairs"`
	Blocks      int     `json:"blocks"`
	Comparisons int64   `json:"comparisons"`
	Matches     int     `json:"matches"`
	Identical   bool    `json:"identical"`
	Precision   float64 `json:"precision"`
	Recall      float64 `json:"recall"`
	F1          float64 `json:"f1"`
	MatchDigest string  `json:"match_digest"`
	BlockDigest string  `json:"block_digest"`
}

// benchIngestLegTimingJSON is one format's wall-clock cost: streamed
// parse (count-only, flat memory), collection load, and pipeline resolve.
type benchIngestLegTimingJSON struct {
	Parse   benchTimingJSON `json:"parse"`
	Load    benchTimingJSON `json:"load"`
	Resolve benchTimingJSON `json:"resolve"`
}

// benchIngestTimingJSON is the -ingest wall-clock section.
type benchIngestTimingJSON struct {
	Workers            int                      `json:"workers"`
	GenerateWallNS     int64                    `json:"generate_wall_ns"`
	NT                 benchIngestLegTimingJSON `json:"nt"`
	CSV                benchIngestLegTimingJSON `json:"csv"`
	JSONL              benchIngestLegTimingJSON `json:"jsonl"`
	ParseLiveHeapBytes uint64                   `json:"parse_live_heap_bytes"`
	PeakHeapBytes      uint64                   `json:"peak_heap_bytes"`
}

type benchIngestJSON struct {
	Schema   int                     `json:"schema"`
	Name     string                  `json:"name"`
	Portable benchIngestPortableJSON `json:"portable"`
	Timing   benchIngestTimingJSON   `json:"timing"`
}

// ingestResolved is one format's resolve-leg outcome, compared across
// formats for bit-equality.
type ingestResolved struct {
	comparisons int64
	matches     int
	blocks      int
	matchDigest string
	blockDigest string
	prf         er.PRF
}

func runIngestBench(short bool, seed int64, workers int, out benchOutput) error {
	entities := ingestEntitiesFull
	if short {
		entities = ingestEntitiesShort
	}
	vocabScale := entities / 2000
	if vocabScale < 1 {
		vocabScale = 1
	}
	light := er.LightCorruption()
	cfg := er.GenConfig{
		Seed:        seed,
		Entities:    entities,
		DupRatio:    0.5,
		SchemaNoise: 0.5,
		VocabScale:  vocabScale,
		Domain:      er.People,
		Corruption:  &light,
	}
	dir, err := os.MkdirTemp("", "erbench-ingest-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	peak := trackHeapPeak()
	defer peak.stopTracking()

	t0 := time.Now()
	records, truthPairs, err := writeIngestCorpus(dir, cfg)
	if err != nil {
		return err
	}
	genWall := time.Since(t0)
	if !short && records < 1_000_000 {
		return fmt.Errorf("full ingest scenario produced %d records, want >= 1000000 — raise ingestEntitiesFull", records)
	}
	fmt.Printf("ingest bench: %d records over 2 sources (%d entities, dup %.2f), seed %d, vocab scale %d, purge max %d\n",
		records, entities, cfg.DupRatio, seed, vocabScale, ingestPurgeMax)
	fmt.Printf("generate (nt+csv+jsonl + truth, one streamed pass): %v\n\n", genWall.Round(time.Millisecond))

	formats := []string{"nt", "csv", "jsonl"}
	sources := func(format string) []er.Source {
		return []er.Source{
			{Path: filepath.Join(dir, "kb0."+format)},
			{Path: filepath.Join(dir, "kb1."+format), Index: 1},
		}
	}

	// Parse leg: stream every format through the source reader without
	// retaining records — parse throughput alone, memory flat in the
	// corpus size.
	legs := map[string]*benchIngestLegTimingJSON{}
	for _, f := range formats {
		legs[f] = &benchIngestLegTimingJSON{}
		t0 := time.Now()
		n, err := er.SourceRecords(sources(f))
		if err != nil {
			return fmt.Errorf("%s parse: %w", f, err)
		}
		if n != records {
			return fmt.Errorf("%s parse saw %d records, generator wrote %d", f, n, records)
		}
		legs[f].Parse = timingOver(time.Since(t0), records)
	}
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	parseLiveHeap := ms.HeapAlloc

	// Resolve leg: load each format into a fresh collection and run the
	// identical batch pipeline; canonical digests prove the three formats
	// resolve bit-identically.
	resolved := map[string]*ingestResolved{}
	for _, f := range formats {
		r, err := resolveIngestFormat(dir, f, sources(f), legs[f], records)
		if err != nil {
			return err
		}
		resolved[f] = r
		peak.sample()
	}
	for _, f := range formats[1:] {
		a, b := resolved[formats[0]], resolved[f]
		if a.matchDigest != b.matchDigest || a.blockDigest != b.blockDigest ||
			a.comparisons != b.comparisons || a.matches != b.matches || a.blocks != b.blocks {
			return fmt.Errorf("formats diverge: %s resolved (matches=%d comparisons=%d blocks=%d) but %s resolved (matches=%d comparisons=%d blocks=%d)",
				formats[0], a.matches, a.comparisons, a.blocks, f, b.matches, b.comparisons, b.blocks)
		}
	}
	ref := resolved[formats[0]]
	if ref.matches == 0 {
		return fmt.Errorf("resolve produced no matches — the scenario is vacuous")
	}
	peakHeap := peak.stopTracking()

	fmt.Printf("%-8s %14s %14s %14s %16s\n", "format", "parse", "load", "resolve", "parse rec/s")
	for _, f := range formats {
		l := legs[f]
		perSec := int64(0)
		if l.Parse.WallNS > 0 {
			perSec = int64(float64(records) / (float64(l.Parse.WallNS) / float64(time.Second)))
		}
		fmt.Printf("%-8s %14v %14v %14v %16d\n", f,
			time.Duration(l.Parse.WallNS).Round(time.Millisecond),
			time.Duration(l.Load.WallNS).Round(time.Millisecond),
			time.Duration(l.Resolve.WallNS).Round(time.Millisecond), perSec)
	}
	fmt.Printf("\nidentical=true matches=%d comparisons=%d blocks=%d truth=%d precision=%.3f recall=%.3f f1=%.3f\n",
		ref.matches, ref.comparisons, ref.blocks, truthPairs, ref.prf.Precision, ref.prf.Recall, ref.prf.F1)
	fmt.Printf("live heap after streamed parse: %.1f MiB, peak heap: %.1f MiB\n",
		float64(parseLiveHeap)/(1<<20), float64(peakHeap)/(1<<20))

	payload := benchIngestJSON{
		Schema: benchSchema,
		Name:   "ingest",
		Portable: benchIngestPortableJSON{
			Records:     records,
			Entities:    entities,
			Seed:        seed,
			VocabScale:  vocabScale,
			PurgeMax:    ingestPurgeMax,
			TruthPairs:  truthPairs,
			Blocks:      ref.blocks,
			Comparisons: ref.comparisons,
			Matches:     ref.matches,
			Identical:   true,
			Precision:   ref.prf.Precision,
			Recall:      ref.prf.Recall,
			F1:          ref.prf.F1,
			MatchDigest: ref.matchDigest,
			BlockDigest: ref.blockDigest,
		},
		Timing: benchIngestTimingJSON{
			Workers:            workers,
			GenerateWallNS:     genWall.Nanoseconds(),
			NT:                 *legs["nt"],
			CSV:                *legs["csv"],
			JSONL:              *legs["jsonl"],
			ParseLiveHeapBytes: parseLiveHeap,
			PeakHeapBytes:      peakHeap,
		},
	}
	return out.emit(payload)
}

// resolveIngestFormat loads one format's two source files into a fresh
// clean-clean collection, runs the shared batch pipeline, and renders the
// canonical digests plus quality against the streamed truth file.
func resolveIngestFormat(dir, format string, srcs []er.Source, leg *benchIngestLegTimingJSON, records int) (*ingestResolved, error) {
	c := er.NewCollection(er.CleanClean)
	t0 := time.Now()
	for _, s := range srcs {
		if err := er.ReadSource(c, s); err != nil {
			return nil, fmt.Errorf("%s load: %w", format, err)
		}
	}
	leg.Load = timingOver(time.Since(t0), records)
	if c.Len() != records {
		return nil, fmt.Errorf("%s load built %d descriptions, want %d", format, c.Len(), records)
	}

	pipe := er.Pipeline{
		Blocker:    &er.TokenBlocking{},
		Processors: []er.BlockProcessor{&er.MaxComparisonsPurge{Max: ingestPurgeMax}},
		Matcher:    &er.Matcher{Sim: &er.TokenJaccard{}, Threshold: 0.5},
	}
	t0 = time.Now()
	res, err := pipe.Run(c)
	if err != nil {
		return nil, fmt.Errorf("%s resolve: %w", format, err)
	}
	leg.Resolve = timingOver(time.Since(t0), records)

	mh := sha256.New()
	if err := er.WriteTruthTSV(mh, c, res.Matches); err != nil {
		return nil, err
	}
	bh := sha256.New()
	uris := func(ids []er.ID) string {
		out := make([]string, len(ids))
		for i, id := range ids {
			out[i] = c.Get(id).URI
		}
		sort.Strings(out)
		return strings.Join(out, ",")
	}
	lines := make([]string, 0, 1024)
	for _, b := range res.Blocks.All() {
		lines = append(lines, b.Key+"|"+uris(b.S0)+"|"+uris(b.S1))
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Fprintln(bh, l)
	}

	tf, err := os.Open(filepath.Join(dir, "truth.tsv"))
	if err != nil {
		return nil, err
	}
	defer tf.Close()
	truth, err := er.ReadTruthTSV(c, bufio.NewReader(tf))
	if err != nil {
		return nil, err
	}
	return &ingestResolved{
		comparisons: res.Comparisons,
		matches:     res.Matches.Len(),
		blocks:      res.Blocks.Len(),
		matchDigest: fmt.Sprintf("%x", mh.Sum(nil)),
		blockDigest: fmt.Sprintf("%x", bh.Sum(nil)),
		prf:         er.ComparePairs(res.Matches, truth),
	}, nil
}

// writeIngestCorpus streams one clean-clean generator pass into kb0/kb1
// in all three formats plus truth.tsv — the same fan-out kbgen performs,
// so memory stays flat in the corpus size and every format scores against
// the same ground truth.
func writeIngestCorpus(dir string, cfg er.GenConfig) (records, pairs int, err error) {
	stream, err := er.StreamCleanClean(cfg)
	if err != nil {
		return 0, 0, err
	}
	type sink struct {
		files []*os.File
		bufs  []*bufio.Writer
		nt    *bufio.Writer
		csv   *tabular.CSVWriter
		jsonl *bufio.Writer
	}
	sinks := make([]*sink, 2)
	defer func() {
		for _, sk := range sinks {
			if sk != nil {
				for _, f := range sk.files {
					f.Close()
				}
			}
		}
	}()
	for s := 0; s < 2; s++ {
		columns, cerr := er.GenColumns(cfg, s == 1)
		if cerr != nil {
			return 0, 0, cerr
		}
		sk := &sink{}
		for _, format := range []string{"nt", "csv", "jsonl"} {
			f, ferr := os.Create(filepath.Join(dir, fmt.Sprintf("kb%d.%s", s, format)))
			if ferr != nil {
				return 0, 0, ferr
			}
			sk.files = append(sk.files, f)
			bw := bufio.NewWriterSize(f, 1<<16)
			sk.bufs = append(sk.bufs, bw)
			switch format {
			case "nt":
				sk.nt = bw
			case "csv":
				if sk.csv, err = tabular.NewCSVWriter(bw, columns, tabular.Options{}); err != nil {
					return 0, 0, err
				}
			case "jsonl":
				sk.jsonl = bw
			}
		}
		sinks[s] = sk
	}
	tf, err := os.Create(filepath.Join(dir, "truth.tsv"))
	if err != nil {
		return 0, 0, err
	}
	defer tf.Close()
	tw := bufio.NewWriter(tf)

	for {
		rec, ok := stream.Next()
		if !ok {
			break
		}
		records++
		d := &er.Description{URI: rec.URI, Attrs: rec.Attrs}
		sk := sinks[rec.Source]
		if err := rdf.WriteDescription(sk.nt, d); err != nil {
			return 0, 0, err
		}
		if err := sk.csv.Write(d); err != nil {
			return 0, 0, err
		}
		if err := tabular.WriteJSONLRecord(sk.jsonl, d, tabular.Options{}); err != nil {
			return 0, 0, err
		}
		if rec.MatchOf != "" {
			// Clean-clean pairs arrive with ascending KB0 partners: the
			// stream order is already the sorted truth order.
			if _, err := fmt.Fprintf(tw, "%s\t%s\n", rec.MatchOf, rec.URI); err != nil {
				return 0, 0, err
			}
			pairs++
		}
	}
	if err := tw.Flush(); err != nil {
		return 0, 0, err
	}
	if err := tf.Close(); err != nil {
		return 0, 0, err
	}
	for _, sk := range sinks {
		if err := sk.csv.Flush(); err != nil {
			return 0, 0, err
		}
		for _, bw := range sk.bufs {
			if err := bw.Flush(); err != nil {
				return 0, 0, err
			}
		}
		for _, f := range sk.files {
			if err := f.Close(); err != nil {
				return 0, 0, err
			}
		}
		sk.files = nil
	}
	return records, pairs, nil
}

// timingOver renders a wall time as the shared timing shape, per-record.
func timingOver(wall time.Duration, records int) benchTimingJSON {
	t := benchTimingJSON{WallNS: wall.Nanoseconds()}
	if records > 0 {
		t.NSPerOp = t.WallNS / int64(records)
	}
	return t
}

// heapPeak samples the live heap on a coarse ticker (plus explicit
// sample() calls at leg boundaries) and keeps the maximum observed.
type heapPeak struct {
	stop chan struct{}
	done chan struct{}
	mu   chan struct{} // 1-slot token guarding max
	max  uint64
}

func trackHeapPeak() *heapPeak {
	h := &heapPeak{stop: make(chan struct{}), done: make(chan struct{}), mu: make(chan struct{}, 1)}
	h.mu <- struct{}{}
	h.sample()
	go func() {
		defer close(h.done)
		tick := time.NewTicker(200 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-h.stop:
				return
			case <-tick.C:
				h.sample()
			}
		}
	}()
	return h
}

func (h *heapPeak) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	<-h.mu
	if ms.HeapAlloc > h.max {
		h.max = ms.HeapAlloc
	}
	h.mu <- struct{}{}
}

// stopTracking ends the sampler and returns the peak; safe to call twice.
func (h *heapPeak) stopTracking() uint64 {
	select {
	case <-h.done:
	default:
		close(h.stop)
		<-h.done
	}
	h.sample()
	<-h.mu
	m := h.max
	h.mu <- struct{}{}
	return m
}
