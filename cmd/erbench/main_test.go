package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"entityres/er"
	"entityres/internal/core"
	"entityres/internal/experiments"
)

// TestRunStreamingMeta drives the -streaming-meta comparison end to end on
// a small stream — including the durable persist/recovery leg, the
// machine-readable -json output and the -baseline regression gate — plus
// the stream-safety flag validation.
func TestRunStreamingMeta(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "BENCH_streaming.json")
	if err := runStreamingMeta(120, 7, 2, "CBS", "WEP", benchOutput{jsonPath: jsonPath}); err != nil {
		t.Fatalf("runStreamingMeta: %v", err)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("-json wrote nothing: %v", err)
	}
	var out benchJSON
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("-json output is not valid JSON: %v", err)
	}
	if out.Schema != benchSchema || out.Name != "streaming" || out.Portable.Entities == 0 {
		t.Fatalf("-json header malformed: %+v", out)
	}
	if out.Timing.Frontier.NSPerOp <= 0 || out.Timing.Pruned.NSPerOp <= 0 {
		t.Fatalf("-json ns/op not measured: %+v", out)
	}
	p := out.Portable
	if p.Frontier.Comparisons <= p.Pruned.Comparisons && p.ComparisonsSavedRatio > 0 {
		t.Fatalf("-json comparisons-saved inconsistent: %+v", out)
	}
	if p.Recovery.Ops != int64(p.Entities) || out.Timing.RecoveryWallNS <= 0 {
		t.Fatalf("-json recovery leg not measured: %+v", out)
	}
	if p.Recovery.SnapshotSegment == 0 {
		t.Fatalf("-json recovery did not anchor on a snapshot: %+v", out)
	}
	if p.PrunedPerf.Reconciles <= 0 || p.PrunedPerf.ReconcileExamined <= 0 {
		t.Fatalf("-json reconcile counters unmeasured: %+v", p.PrunedPerf)
	}
	if p.Recovery.Perf.FullSnapshots+p.Recovery.Perf.DeltaSnapshots <= 0 {
		t.Fatalf("-json snapshot counters unmeasured: %+v", p.Recovery.Perf)
	}
	// The regression gate: an identical rerun matches its own baseline,
	// and a different scale is refused rather than diffed.
	if err := runStreamingMeta(120, 7, 2, "CBS", "WEP", benchOutput{baseline: jsonPath, tolerance: 0.01}); err != nil {
		t.Fatalf("identical rerun drifted from its own baseline: %v", err)
	}
	if err := runStreamingMeta(100, 7, 2, "CBS", "WEP", benchOutput{baseline: jsonPath, tolerance: 0.01}); err == nil {
		t.Fatal("baseline gate diffed a different scale instead of refusing")
	}
	// Without -json the run still succeeds and writes nothing.
	if err := runStreamingMeta(120, 7, 2, "CBS", "WEP", benchOutput{}); err != nil {
		t.Fatalf("runStreamingMeta without json: %v", err)
	}
	if err := runStreamingMeta(120, 7, 0, "ARCS", "WEP", benchOutput{}); err == nil {
		t.Fatal("batch-only weight accepted")
	}
	if err := runStreamingMeta(120, 7, 0, "CBS", "CEP", benchOutput{}); err == nil {
		t.Fatal("batch-only prune accepted")
	}
}

// TestDiffBaseline exercises the gate's decision table on synthetic
// payloads: schema refusal, scenario refusal, tolerated drift, flagged
// drift, and schema-shape divergence in either direction.
func TestDiffBaseline(t *testing.T) {
	write := func(s string) string {
		t.Helper()
		p := filepath.Join(t.TempDir(), "baseline.json")
		if err := os.WriteFile(p, []byte(s), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	fresh := []byte(`{"schema":2,"name":"streaming","portable":{"entities":400,"seed":42,"frontier":{"comparisons":1000},"identical":true}}`)

	if err := diffBaseline(fresh, write(`{"schema":1,"name":"streaming","portable":{}}`), 0.01); err == nil {
		t.Fatal("schema 1 baseline accepted")
	}
	if err := diffBaseline(fresh, write(`{"schema":2,"name":"serve","portable":{}}`), 0.01); err == nil {
		t.Fatal("cross-benchmark baseline accepted")
	}
	if err := diffBaseline(fresh, write(`{"schema":2,"name":"streaming","portable":{"entities":1500,"seed":42,"frontier":{"comparisons":1000},"identical":true}}`), 0.01); err == nil {
		t.Fatal("scale mismatch diffed instead of refused")
	}
	// 0.5% drift passes a 1% tolerance and fails a 0.1% one.
	near := write(`{"schema":2,"name":"streaming","portable":{"entities":400,"seed":42,"frontier":{"comparisons":1005},"identical":true}}`)
	if err := diffBaseline(fresh, near, 0.01); err != nil {
		t.Fatalf("0.5%% drift rejected at 1%% tolerance: %v", err)
	}
	if err := diffBaseline(fresh, near, 0.001); err == nil {
		t.Fatal("0.5% drift passed a 0.1% tolerance")
	}
	// Non-numeric portable fields compare exactly.
	if err := diffBaseline(fresh, write(`{"schema":2,"name":"streaming","portable":{"entities":400,"seed":42,"frontier":{"comparisons":1000},"identical":false}}`), 0.01); err == nil {
		t.Fatal("boolean divergence tolerated")
	}
	// Field-set drift in either direction demands regeneration.
	if err := diffBaseline(fresh, write(`{"schema":2,"name":"streaming","portable":{"entities":400,"seed":42,"frontier":{"comparisons":1000},"identical":true,"extinct":1}}`), 0.01); err == nil {
		t.Fatal("baseline-only field ignored")
	}
	if err := diffBaseline(fresh, write(`{"schema":2,"name":"streaming","portable":{"entities":400,"seed":42,"identical":true}}`), 0.01); err == nil {
		t.Fatal("fresh-only field ignored")
	}
}

// TestResultHelpers covers the comparison plumbing shared by the
// benchmark modes.
func TestResultHelpers(t *testing.T) {
	a, b := er.NewMatches(), er.NewMatches()
	a.Add(1, 2)
	b.Add(2, 1)
	if !sameMatches(a, b) {
		t.Fatal("equal match sets reported different")
	}
	b.Add(3, 4)
	if sameMatches(a, b) {
		t.Fatal("different lengths reported same")
	}
	a.Add(5, 6)
	if sameMatches(a, b) {
		t.Fatal("disjoint same-length sets reported same")
	}
	res := &er.PipelineResult{Phases: []core.PhaseStat{{Name: "blocking", Duration: time.Second}}}
	if idx := phaseIndex(res); idx["blocking"] != time.Second {
		t.Fatalf("phaseIndex = %v", idx)
	}
}

// TestRunStreamingShards drives the sharded-streaming benchmark mode end
// to end at a tiny scale, including the BENCH_sharded.json output.
func TestRunStreamingShards(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "BENCH_sharded.json")
	if err := runStreamingShards(120, 7, 2, 3, benchOutput{jsonPath: jsonPath}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var out benchShardedJSON
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	p := out.Portable
	if out.Schema != benchSchema || out.Name != "sharded-streaming" || p.Shards != 3 || !p.Identical {
		t.Fatalf("benchmark payload = %+v", out)
	}
	if p.Single.Comparisons != p.Sharded.Comparisons || p.Single.Matches != p.Sharded.Matches {
		t.Fatalf("benchmark payload not bit-identical: %+v", out)
	}
	if out.Timing.PersistWallNS <= 0 || out.Timing.RecoveryWallNS <= 0 {
		t.Fatalf("recovery leg unmeasured: %+v", out.Timing)
	}
	if p.Recovery.Perf.FullSnapshots+p.Recovery.Perf.DeltaSnapshots <= 0 {
		t.Fatalf("per-shard snapshot counters unmeasured: %+v", p.Recovery.Perf)
	}
	// The gate holds across the sharded mode too: rerun vs own baseline.
	if err := runStreamingShards(120, 7, 2, 3, benchOutput{baseline: jsonPath, tolerance: 0.01}); err != nil {
		t.Fatalf("identical sharded rerun drifted from its own baseline: %v", err)
	}
	if err := runStreamingShards(120, 7, 2, 2, benchOutput{baseline: jsonPath, tolerance: 0.01}); err == nil {
		t.Fatal("baseline gate diffed a different shard count instead of refusing")
	}
}

// TestRunServeBench measures the HTTP query service over the loopback at a
// tiny scale and checks the BENCH_serve.json payload shape.
func TestRunServeBench(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "BENCH_serve.json")
	if err := runServeBench(60, 7, 2, benchOutput{jsonPath: jsonPath}); err != nil {
		t.Fatalf("runServeBench: %v", err)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var out benchServeJSON
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Schema != benchSchema || out.Name != "serve" || out.Portable.Entities == 0 {
		t.Fatalf("serve payload = %+v", out)
	}
	if out.Portable.RequestsPerEndpoint != serveRequests || out.Portable.Comparisons <= 0 {
		t.Fatalf("serve portable section malformed: %+v", out.Portable)
	}
	if len(out.Timing.Endpoints) != 6 {
		t.Fatalf("serve payload = %+v", out)
	}
	wantRequests := map[string]int{
		"lookup": serveRequests, "same-as": serveRequests, "cluster": serveRequests, "stats": serveRequests,
		"ingest-per-op": ingestRequests, "ingest-batch": ingestRequests / 4,
	}
	for ep, lat := range out.Timing.Endpoints {
		if lat.Requests != wantRequests[ep] || lat.P50NS <= 0 || lat.P99NS < lat.P50NS {
			t.Fatalf("endpoint %s latency malformed: %+v", ep, lat)
		}
	}
	if out.Portable.IngestRequests != ingestRequests || out.Portable.IngestBatch != ingestBatch {
		t.Fatalf("serve portable ingest identity malformed: %+v", out.Portable)
	}
}

// TestRunBurstyIngest drives the -bursty amortization mode end to end at a
// tiny scale: the mode itself asserts every batch size resolves identical
// state and that the batch=64 amortization holds the floor; the test then
// checks the BENCH_bursty.json payload shape.
func TestRunBurstyIngest(t *testing.T) {
	if testing.Short() {
		t.Skip("bursty replay is seconds long")
	}
	jsonPath := filepath.Join(t.TempDir(), "BENCH_bursty.json")
	if err := runBurstyIngest(60, 7, 2, benchOutput{jsonPath: jsonPath}); err != nil {
		t.Fatalf("runBurstyIngest: %v", err)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var out benchBurstyJSON
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Schema != benchSchema || out.Name != "bursty-ingest" || !out.Portable.Identical {
		t.Fatalf("bursty payload = %+v", out)
	}
	if out.Portable.Shards != burstyShards || out.Portable.Ops == 0 || out.Portable.Counters.Matches == 0 {
		t.Fatalf("bursty portable section malformed: %+v", out.Portable)
	}
	for _, leg := range []map[string]benchPerfJSON{out.Portable.Durable, out.Portable.Networked} {
		if len(leg) != len(burstySizes) {
			t.Fatalf("bursty legs incomplete: %+v", out.Portable)
		}
	}
	ops := int64(out.Portable.Ops)
	if got := out.Portable.Durable["b1"].JournalAppends; got != ops {
		t.Fatalf("per-op durable leg made %d journal appends for %d ops", got, ops)
	}
	if got := out.Portable.Networked["b1"].TransportRoundTrips; got != ops*burstyShards {
		t.Fatalf("per-op networked leg spent %d round trips for %d ops on %d shards", got, ops, burstyShards)
	}
	if out.Portable.AppendAmortization64 < burstyAmortizationFloor ||
		out.Portable.RoundTripAmortization64 < burstyAmortizationFloor {
		t.Fatalf("amortization below floor: %+v", out.Portable)
	}
	if out.Timing.Durable["b64"].NSPerOp <= 0 || out.Timing.Networked["b64"].NSPerOp <= 0 {
		t.Fatalf("bursty timing not measured: %+v", out.Timing)
	}
}

// TestRunParallelComparison drives the batch-pipeline comparison mode once
// at the small scale; the mode itself asserts sequential/parallel match
// sets are identical and fails if they diverge.
func TestRunParallelComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("batch comparison pass is seconds long")
	}
	if err := runParallelComparison(experiments.Small, 7, 2, 2); err != nil {
		t.Fatalf("runParallelComparison: %v", err)
	}
}

// TestSameSameAs covers the pairwise query-equality check, including the
// divergence branches a healthy run never takes.
func TestSameSameAs(t *testing.T) {
	ctx := context.Background()
	open := func() er.Resolver {
		r, err := er.Open(ctx, er.Config{
			Kind:    er.Dirty,
			Blocker: &er.TokenBlocking{},
			Matcher: &er.Matcher{Sim: &er.TokenJaccard{}, Threshold: 0.5},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { r.Close() })
		return r
	}
	a, b := open(), open()
	c := er.NewCollection(er.Dirty)
	for _, uri := range []string{"u:x", "u:y"} {
		d := &er.Description{URI: uri, Attrs: []er.Attribute{{Name: "name", Value: "alice smith"}}}
		c.MustAdd(d.Clone())
		for _, r := range []er.Resolver{a, b} {
			if _, err := r.Insert(ctx, d.Clone()); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !sameSameAs(ctx, a, b, c) {
		t.Fatal("identical deployments reported different")
	}
	// Delete u:y from b only: one side errors the query, the other answers.
	res, err := b.Query(ctx, er.Query{URI: "u:y"})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Delete(ctx, res.ID); err != nil {
		t.Fatal(err)
	}
	if sameSameAs(ctx, a, b, c) {
		t.Fatal("diverged deployments reported same")
	}
}

// TestRunConcurrentBench drives the -concurrent mode end to end on a small
// stream: every reader fleet runs against a live writer, the mode itself
// asserts each run resolved to the sequential baseline, and the payload
// carries the scaling evidence. The baseline gate round-trips on the
// portable counters (deterministic for a seed — latency and QPS live in
// the never-compared timing section).
func TestRunConcurrentBench(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "BENCH_concurrent.json")
	if err := runConcurrentBench(100, 7, 2, benchOutput{jsonPath: jsonPath}); err != nil {
		t.Fatalf("runConcurrentBench: %v", err)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var out benchConcurrentJSON
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Schema != benchSchema || out.Name != "concurrent" || !out.Portable.Identical {
		t.Fatalf("concurrent payload = %+v", out)
	}
	p := out.Portable
	if p.Entities == 0 || p.PreloadOps == 0 || p.LiveOps == 0 || p.Counters.Matches == 0 {
		t.Fatalf("concurrent portable section malformed: %+v", p)
	}
	if p.ReadsPerReader != concurrentReads || p.Readers != "1,4,16" {
		t.Fatalf("concurrent scenario identity malformed: %+v", p)
	}
	if len(out.Timing.Runs) != len(concurrentReaderFleets) {
		t.Fatalf("concurrent runs incomplete: %+v", out.Timing)
	}
	for _, n := range concurrentReaderFleets {
		run := out.Timing.Runs[fmt.Sprintf("r%d", n)]
		if run.Readers != n || run.Reads != n*concurrentReads {
			t.Fatalf("fleet %d ran %d reads across %d readers: %+v", n, run.Reads, run.Readers, run)
		}
		if run.QPS <= 0 || run.P99NS < run.P50NS || run.WallNS <= 0 || run.WriteWallNS <= 0 {
			t.Fatalf("fleet %d timing unmeasured: %+v", n, run)
		}
	}
	if out.Timing.Speedup <= 0 || out.Timing.GOMAXPROCS != runtime.GOMAXPROCS(0) {
		t.Fatalf("scaling summary malformed: %+v", out.Timing)
	}
	if out.Timing.ScalingAsserted != (runtime.GOMAXPROCS(0) >= 4) {
		t.Fatalf("scaling_asserted = %v on %d cores", out.Timing.ScalingAsserted, runtime.GOMAXPROCS(0))
	}
	// The regression gate: an identical rerun matches its own baseline, and
	// a different scale is refused rather than diffed.
	if err := runConcurrentBench(100, 7, 2, benchOutput{baseline: jsonPath, tolerance: 0.01}); err != nil {
		t.Fatalf("identical rerun drifted from its own baseline: %v", err)
	}
	if err := runConcurrentBench(80, 7, 2, benchOutput{baseline: jsonPath, tolerance: 0.01}); err == nil {
		t.Fatal("baseline gate diffed a different scale instead of refusing")
	}
}

func TestRunIngestBench(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "BENCH_ingest.json")
	if err := runIngestBench(true, 7, 1, benchOutput{jsonPath: jsonPath}); err != nil {
		t.Fatalf("runIngestBench: %v", err)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var out benchIngestJSON
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Schema != benchSchema || out.Name != "ingest" || !out.Portable.Identical {
		t.Fatalf("ingest payload = %+v", out)
	}
	p := out.Portable
	if p.Records == 0 || p.Entities != ingestEntitiesShort || p.TruthPairs == 0 ||
		p.Matches == 0 || p.Comparisons == 0 || p.Blocks == 0 {
		t.Fatalf("ingest portable section malformed: %+v", p)
	}
	if p.PurgeMax != ingestPurgeMax || p.VocabScale != 1 {
		t.Fatalf("ingest scenario identity malformed: %+v", p)
	}
	if len(p.MatchDigest) != 64 || len(p.BlockDigest) != 64 {
		t.Fatalf("canonical digests malformed: %q %q", p.MatchDigest, p.BlockDigest)
	}
	if p.Recall <= 0 || p.F1 <= 0 {
		t.Fatalf("quality unmeasured: %+v", p)
	}
	for name, leg := range map[string]benchIngestLegTimingJSON{
		"nt": out.Timing.NT, "csv": out.Timing.CSV, "jsonl": out.Timing.JSONL,
	} {
		if leg.Parse.WallNS <= 0 || leg.Load.WallNS <= 0 || leg.Resolve.WallNS <= 0 {
			t.Fatalf("%s leg unmeasured: %+v", name, leg)
		}
	}
	if out.Timing.GenerateWallNS <= 0 || out.Timing.PeakHeapBytes == 0 {
		t.Fatalf("ingest timing malformed: %+v", out.Timing)
	}
	// The regression gate: an identical rerun matches its own baseline, and
	// a different seed (different record count and digests) is refused.
	if err := runIngestBench(true, 7, 1, benchOutput{baseline: jsonPath, tolerance: 0.01}); err != nil {
		t.Fatalf("identical rerun drifted from its own baseline: %v", err)
	}
	if err := runIngestBench(true, 8, 1, benchOutput{baseline: jsonPath, tolerance: 0.01}); err == nil {
		t.Fatal("baseline gate diffed a different seed instead of refusing")
	}
}
