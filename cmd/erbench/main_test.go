package main

import (
	"testing"
	"time"

	"entityres/er"
	"entityres/internal/core"
)

// TestRunStreamingMeta drives the -streaming-meta comparison end to end on
// a small stream, including the stream-safety flag validation.
func TestRunStreamingMeta(t *testing.T) {
	if err := runStreamingMeta(120, 7, 2, "CBS", "WEP"); err != nil {
		t.Fatalf("runStreamingMeta: %v", err)
	}
	if err := runStreamingMeta(120, 7, 0, "ARCS", "WEP"); err == nil {
		t.Fatal("batch-only weight accepted")
	}
	if err := runStreamingMeta(120, 7, 0, "CBS", "CEP"); err == nil {
		t.Fatal("batch-only prune accepted")
	}
}

// TestResultHelpers covers the comparison plumbing shared by the
// benchmark modes.
func TestResultHelpers(t *testing.T) {
	a, b := er.NewMatches(), er.NewMatches()
	a.Add(1, 2)
	b.Add(2, 1)
	if !sameMatches(a, b) {
		t.Fatal("equal match sets reported different")
	}
	b.Add(3, 4)
	if sameMatches(a, b) {
		t.Fatal("different lengths reported same")
	}
	a.Add(5, 6)
	if sameMatches(a, b) {
		t.Fatal("disjoint same-length sets reported same")
	}
	res := &er.PipelineResult{Phases: []core.PhaseStat{{Name: "blocking", Duration: time.Second}}}
	if idx := phaseIndex(res); idx["blocking"] != time.Second {
		t.Fatalf("phaseIndex = %v", idx)
	}
}
