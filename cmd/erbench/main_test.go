package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"entityres/er"
	"entityres/internal/core"
	"entityres/internal/experiments"
)

// TestRunStreamingMeta drives the -streaming-meta comparison end to end on
// a small stream — including the durable persist/recovery leg and the
// machine-readable -json output — plus the stream-safety flag validation.
func TestRunStreamingMeta(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "BENCH_streaming.json")
	if err := runStreamingMeta(120, 7, 2, "CBS", "WEP", jsonPath); err != nil {
		t.Fatalf("runStreamingMeta: %v", err)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("-json wrote nothing: %v", err)
	}
	var out benchJSON
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("-json output is not valid JSON: %v", err)
	}
	if out.Name != "streaming" || out.Entities == 0 {
		t.Fatalf("-json header malformed: %+v", out)
	}
	if out.Frontier.NSPerOp <= 0 || out.Pruned.NSPerOp <= 0 {
		t.Fatalf("-json ns/op not measured: %+v", out)
	}
	if out.Frontier.Comparisons <= out.Pruned.Comparisons && out.ComparisonsSavedRatio > 0 {
		t.Fatalf("-json comparisons-saved inconsistent: %+v", out)
	}
	if out.Recovery.Ops != int64(out.Entities) || out.Recovery.RecoveryWallNS <= 0 {
		t.Fatalf("-json recovery leg not measured: %+v", out)
	}
	if out.Recovery.SnapshotSegment == 0 {
		t.Fatalf("-json recovery did not anchor on a snapshot: %+v", out)
	}
	// Without -json the run still succeeds and writes nothing.
	if err := runStreamingMeta(120, 7, 2, "CBS", "WEP", ""); err != nil {
		t.Fatalf("runStreamingMeta without json: %v", err)
	}
	if err := runStreamingMeta(120, 7, 0, "ARCS", "WEP", ""); err == nil {
		t.Fatal("batch-only weight accepted")
	}
	if err := runStreamingMeta(120, 7, 0, "CBS", "CEP", ""); err == nil {
		t.Fatal("batch-only prune accepted")
	}
}

// TestResultHelpers covers the comparison plumbing shared by the
// benchmark modes.
func TestResultHelpers(t *testing.T) {
	a, b := er.NewMatches(), er.NewMatches()
	a.Add(1, 2)
	b.Add(2, 1)
	if !sameMatches(a, b) {
		t.Fatal("equal match sets reported different")
	}
	b.Add(3, 4)
	if sameMatches(a, b) {
		t.Fatal("different lengths reported same")
	}
	a.Add(5, 6)
	if sameMatches(a, b) {
		t.Fatal("disjoint same-length sets reported same")
	}
	res := &er.PipelineResult{Phases: []core.PhaseStat{{Name: "blocking", Duration: time.Second}}}
	if idx := phaseIndex(res); idx["blocking"] != time.Second {
		t.Fatalf("phaseIndex = %v", idx)
	}
}

// TestRunStreamingShards drives the sharded-streaming benchmark mode end
// to end at a tiny scale, including the BENCH_sharded.json output.
func TestRunStreamingShards(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "BENCH_sharded.json")
	if err := runStreamingShards(120, 7, 2, 3, jsonPath); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var out benchShardedJSON
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Name != "sharded-streaming" || out.Shards != 3 || !out.Identical {
		t.Fatalf("benchmark payload = %+v", out)
	}
	if out.Single.Comparisons != out.Sharded.Comparisons || out.Single.Matches != out.Sharded.Matches {
		t.Fatalf("benchmark payload not bit-identical: %+v", out)
	}
	if out.Recovery.PersistWallNS <= 0 || out.Recovery.RecoveryWallNS <= 0 {
		t.Fatalf("recovery leg unmeasured: %+v", out.Recovery)
	}
}

// TestRunServeBench measures the HTTP query service over the loopback at a
// tiny scale and checks the BENCH_serve.json payload shape.
func TestRunServeBench(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "BENCH_serve.json")
	if err := runServeBench(60, 7, 2, jsonPath); err != nil {
		t.Fatalf("runServeBench: %v", err)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var out benchServeJSON
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Name != "serve" || out.Entities == 0 || len(out.Endpoints) != 4 {
		t.Fatalf("serve payload = %+v", out)
	}
	for ep, lat := range out.Endpoints {
		if lat.Requests != serveRequests || lat.P50NS <= 0 || lat.P99NS < lat.P50NS {
			t.Fatalf("endpoint %s latency malformed: %+v", ep, lat)
		}
	}
}

// TestRunParallelComparison drives the batch-pipeline comparison mode once
// at the small scale; the mode itself asserts sequential/parallel match
// sets are identical and fails if they diverge.
func TestRunParallelComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("batch comparison pass is seconds long")
	}
	if err := runParallelComparison(experiments.Small, 7, 2, 2); err != nil {
		t.Fatalf("runParallelComparison: %v", err)
	}
}

// TestSameSameAs covers the pairwise query-equality check, including the
// divergence branches a healthy run never takes.
func TestSameSameAs(t *testing.T) {
	ctx := context.Background()
	open := func() er.Resolver {
		r, err := er.Open(ctx, er.Config{
			Kind:    er.Dirty,
			Blocker: &er.TokenBlocking{},
			Matcher: &er.Matcher{Sim: &er.TokenJaccard{}, Threshold: 0.5},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { r.Close() })
		return r
	}
	a, b := open(), open()
	c := er.NewCollection(er.Dirty)
	for _, uri := range []string{"u:x", "u:y"} {
		d := &er.Description{URI: uri, Attrs: []er.Attribute{{Name: "name", Value: "alice smith"}}}
		c.MustAdd(d.Clone())
		for _, r := range []er.Resolver{a, b} {
			if _, err := r.Insert(ctx, d.Clone()); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !sameSameAs(ctx, a, b, c) {
		t.Fatal("identical deployments reported different")
	}
	// Delete u:y from b only: one side errors the query, the other answers.
	res, err := b.Query(ctx, er.Query{URI: "u:y"})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Delete(ctx, res.ID); err != nil {
		t.Fatal(err)
	}
	if sameSameAs(ctx, a, b, c) {
		t.Fatal("diverged deployments reported same")
	}
}
