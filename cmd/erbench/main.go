// Command erbench runs the reproduction experiment suite E1–E12 (see
// DESIGN.md §3) and prints the result tables that EXPERIMENTS.md records.
//
// Usage:
//
//	erbench [-experiment E1|E2|...|all] [-scale small|medium] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"entityres/internal/experiments"
)

func main() {
	var (
		which = flag.String("experiment", "all", "experiment id (E1..E12) or 'all'")
		scale = flag.String("scale", "small", "experiment scale: small or medium")
		seed  = flag.Int64("seed", 42, "deterministic data-generation seed")
	)
	flag.Parse()
	var sc experiments.Scale
	switch strings.ToLower(*scale) {
	case "small":
		sc = experiments.Small
	case "medium":
		sc = experiments.Medium
	default:
		fmt.Fprintf(os.Stderr, "erbench: unknown scale %q (want small or medium)\n", *scale)
		os.Exit(2)
	}
	ran := 0
	for _, e := range experiments.All() {
		if *which != "all" && !strings.EqualFold(*which, e.ID) {
			continue
		}
		ran++
		t0 := time.Now()
		res, err := e.Run(sc, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "erbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if err := res.Table.Fprint(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "erbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(t0).Round(time.Millisecond))
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "erbench: unknown experiment %q\n", *which)
		os.Exit(2)
	}
}
