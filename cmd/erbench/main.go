// Command erbench runs the reproduction experiment suite E1–E12 (see
// DESIGN.md §3) and prints the result tables that EXPERIMENTS.md records.
// With -parallel it instead benchmarks the concurrent pipeline engine
// against the sequential pipeline on a synthetic workload and prints the
// per-phase comparison.
//
// Usage:
//
//	erbench [-experiment E1|E2|...|all] [-scale small|medium] [-seed N]
//	erbench -parallel [-shards N] [-workers N] [-scale small|medium] [-seed N]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"entityres/er"
	"entityres/internal/experiments"
)

func main() {
	var (
		which    = flag.String("experiment", "all", "experiment id (E1..E12) or 'all'")
		scale    = flag.String("scale", "small", "experiment scale: small or medium")
		seed     = flag.Int64("seed", 42, "deterministic data-generation seed")
		parallel = flag.Bool("parallel", false, "benchmark the concurrent pipeline engine against the sequential pipeline")
		shards   = flag.Int("shards", 0, "blocking shards for -parallel (0 = GOMAXPROCS)")
		workers  = flag.Int("workers", 0, "matcher/weighting workers for -parallel (0 = GOMAXPROCS)")
	)
	flag.Parse()
	var sc experiments.Scale
	switch strings.ToLower(*scale) {
	case "small":
		sc = experiments.Small
	case "medium":
		sc = experiments.Medium
	default:
		fmt.Fprintf(os.Stderr, "erbench: unknown scale %q (want small or medium)\n", *scale)
		os.Exit(2)
	}
	if *parallel {
		if err := runParallelComparison(sc, *seed, *shards, *workers); err != nil {
			fmt.Fprintf(os.Stderr, "erbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	ran := 0
	for _, e := range experiments.All() {
		if *which != "all" && !strings.EqualFold(*which, e.ID) {
			continue
		}
		ran++
		t0 := time.Now()
		res, err := e.Run(sc, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "erbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if err := res.Table.Fprint(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "erbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(t0).Round(time.Millisecond))
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "erbench: unknown experiment %q\n", *which)
		os.Exit(2)
	}
}

// runParallelComparison runs the same pipeline configuration through the
// sequential core pipeline and the concurrent engine, asserts the match
// sets are identical, and prints per-phase wall times with the speedup.
func runParallelComparison(sc experiments.Scale, seed int64, shards, workers int) error {
	entities := 1500
	if sc == experiments.Medium {
		entities = 6000
	}
	c, gt, err := er.GenerateDirty(er.GenConfig{Seed: seed, Entities: entities, MaxDuplicates: 2})
	if err != nil {
		return err
	}
	cfg := er.Pipeline{
		Blocker:    &er.TokenBlocking{},
		Processors: []er.BlockProcessor{&er.BlockFiltering{}},
		Meta:       &er.MetaBlocker{Weight: er.ECBS, Prune: er.WEP},
		Matcher:    &er.Matcher{Sim: &er.TokenJaccard{}, Threshold: 0.5},
	}
	// Report the resolved parallelism, not the raw flags, so recorded
	// output says what the measured run actually used.
	opt := er.ParallelOptions{Workers: workers, Shards: shards}.Resolve()
	fmt.Printf("pipeline comparison: %d descriptions, seed %d, GOMAXPROCS %d, shards %d, workers %d\n",
		c.Len(), seed, runtime.GOMAXPROCS(0), opt.Shards, opt.Workers)

	// Discarded warm-up pass: the first run through the data pays allocator
	// growth and cache warm-up that whichever run goes second would
	// otherwise inherit for free, biasing the reported speedup.
	warmCfg := cfg
	if _, err := warmCfg.Run(c); err != nil {
		return fmt.Errorf("warm-up: %w", err)
	}

	seqCfg := cfg
	t0 := time.Now()
	seqRes, err := seqCfg.Run(c)
	if err != nil {
		return fmt.Errorf("sequential: %w", err)
	}
	seqTotal := time.Since(t0)

	eng := er.NewParallelPipeline(cfg, opt)
	t0 = time.Now()
	parRes, err := eng.Run(context.Background(), c)
	if err != nil {
		return fmt.Errorf("parallel: %w", err)
	}
	parTotal := time.Since(t0)

	if !sameMatches(seqRes.Matches, parRes.Matches) {
		return fmt.Errorf("match sets differ: sequential %d, parallel %d", seqRes.Matches.Len(), parRes.Matches.Len())
	}

	fmt.Printf("\n%-16s %14s %14s\n", "phase", "sequential", "parallel")
	par := phaseIndex(parRes)
	for _, ph := range seqRes.Phases {
		fmt.Printf("%-16s %14v %14v\n", ph.Name, ph.Duration.Round(time.Microsecond), par[ph.Name].Round(time.Microsecond))
	}
	fmt.Printf("%-16s %14v %14v\n", "total", seqTotal.Round(time.Microsecond), parTotal.Round(time.Microsecond))
	fmt.Printf("\nmatches=%d comparisons=%d identical=true speedup=%.2fx recall=%.3f\n",
		parRes.Matches.Len(), parRes.Comparisons,
		float64(seqTotal)/float64(parTotal),
		er.ComparePairs(parRes.Matches, gt).Recall)
	return nil
}

func phaseIndex(res *er.PipelineResult) map[string]time.Duration {
	m := make(map[string]time.Duration, len(res.Phases))
	for _, ph := range res.Phases {
		m[ph.Name] = ph.Duration
	}
	return m
}

func sameMatches(a, b *er.Matches) bool {
	if a.Len() != b.Len() {
		return false
	}
	same := true
	a.Each(func(p er.Pair) bool {
		same = b.Contains(p.A, p.B)
		return same
	})
	return same
}
