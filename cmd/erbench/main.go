// Command erbench runs the reproduction experiment suite E1–E12 (see
// DESIGN.md §3) and prints the result tables that EXPERIMENTS.md records.
// With -parallel it instead benchmarks the concurrent pipeline engine
// against the sequential pipeline on a synthetic workload and prints the
// per-phase comparison. With -streaming-meta it replays a synthetic insert
// stream through the streaming resolver with and without live
// meta-blocking and reports throughput, the pruning ratio (comparisons
// saved by the live weighted blocking graph), and the durable leg: WAL
// persistence throughput plus crash-recovery time (snapshot restore + tail
// replay). Adding -json FILE also writes the -streaming-meta measurement as
// machine-readable JSON (e.g. BENCH_streaming.json) so the perf trajectory
// accumulates data points.
//
// The JSON payloads are schema 2: a "portable" section of
// machine-independent counters (comparisons, matches, kept pairs,
// reconcile work, snapshot compaction cost, replay lengths — identical for
// the same seed and scale on any host) and a "timing" section of
// machine-dependent wall-clock measurements. -baseline FILE diffs a fresh
// run's portable section against a committed payload, refusing mismatched
// scenarios (different entities/seed/meta/shards) and failing when any
// counter drifts beyond -tolerance — the CI regression gate. -short
// shrinks the bench modes to a ~400-entity scenario cheap enough to run on
// every push.
//
// With -streaming-shards N it replays the same insert stream through the
// single-node and the N-shard sharded streaming resolver, asserts the two
// are bit-identical, and reports throughput plus the durable leg
// (per-shard group-committed WAL persistence and shard-wise recovery);
// -json then writes BENCH_sharded.json.
//
// With -serve it loads the generated collection into an er.Open resolver,
// fronts it with the HTTP/JSON query service, and measures per-endpoint
// request latency (p50/p99/mean over loopback) including bulk ingest
// through POST /v1/ops, per-op vs batched; -json then writes
// BENCH_serve.json.
//
// With -bursty it replays the synthetic insert stream through the durable
// single-node and the networked deployments at batch sizes 1/16/64/256
// via the amortized ApplyBatch path, asserts the resolved state is
// identical at every size, and reports the amortization: journal appends,
// fan-outs and wire round trips per batch size, with the batch=64 ratio
// over per-op required to stay >= 8x. -json then writes BENCH_bursty.json.
//
// With -concurrent it preloads 70% of the synthetic stream, then runs a
// mixed workload — a writer streaming the remaining ops while reader
// fleets of 1, 4 and 16 goroutines hammer the query surface — reporting
// per-fleet read latency (p50/p99) and aggregate read QPS. Every run must
// resolve to the state of a sequential replay (asserted), and on a
// multi-core host (GOMAXPROCS >= 4) the 16-reader fleet's aggregate read
// throughput must be >= 3x the single reader's — the concurrent-read
// scaling assertion. -json then writes BENCH_concurrent.json.
//
// With -ingest it streams one clean-clean generator pass into N-Triples,
// CSV and JSON-lines files (a million-record corpus without -short), then
// parses and resolves each format end-to-end through the same batch
// pipeline, asserting the three produce bit-identical matches, comparison
// counts and blocks (canonical sha256 digests) — the measured difference
// is parse cost alone. The streamed parse leg's live heap is reported to
// show ingestion memory stays flat in the corpus size; -json then writes
// BENCH_ingest.json.
//
// Usage:
//
//	erbench [-experiment E1|E2|...|all] [-scale small|medium] [-seed N]
//	erbench -parallel [-shards N] [-workers N] [-scale small|medium] [-seed N]
//	erbench -streaming-meta [-meta-weight CBS|ECBS|JS] [-meta-prune WEP|WNP]
//	        [-workers N] [-scale small|medium] [-short] [-seed N]
//	        [-json FILE] [-baseline FILE [-tolerance F]]
//	erbench -streaming-shards N [-workers N] [-scale small|medium] [-short]
//	        [-seed N] [-json FILE] [-baseline FILE [-tolerance F]]
//	erbench -serve [-workers N] [-scale small|medium] [-short] [-seed N]
//	        [-json FILE] [-baseline FILE [-tolerance F]]
//	erbench -bursty [-workers N] [-scale small|medium] [-short] [-seed N]
//	        [-json FILE] [-baseline FILE [-tolerance F]]
//	erbench -concurrent [-workers N] [-scale small|medium] [-short] [-seed N]
//	        [-json FILE] [-baseline FILE [-tolerance F]]
//	erbench -ingest [-short] [-seed N]
//	        [-json FILE] [-baseline FILE [-tolerance F]]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/url"
	"os"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"entityres/er"
	"entityres/internal/experiments"
	"entityres/internal/serve"
)

func main() {
	var (
		which    = flag.String("experiment", "all", "experiment id (E1..E12) or 'all'")
		scale    = flag.String("scale", "small", "experiment scale: small or medium")
		seed     = flag.Int64("seed", 42, "deterministic data-generation seed")
		parallel = flag.Bool("parallel", false, "benchmark the concurrent pipeline engine against the sequential pipeline")
		shards   = flag.Int("shards", 0, "blocking shards for -parallel (0 = GOMAXPROCS)")
		workers  = flag.Int("workers", 0, "matcher/weighting workers for -parallel (0 = GOMAXPROCS)")

		streamMeta = flag.Bool("streaming-meta", false, "benchmark the streaming resolver with and without live meta-blocking and report the pruning ratio")
		metaWeight = flag.String("meta-weight", "CBS", "stream-safe weight scheme for -streaming-meta: CBS, ECBS or JS")
		metaPrune  = flag.String("meta-prune", "WEP", "stream-safe prune scheme for -streaming-meta: WEP or WNP")

		streamShards = flag.Int("streaming-shards", 0, "benchmark the sharded streaming resolver with N key-hash shards against the single-node resolver (bit-equality asserted)")
		serveBench   = flag.Bool("serve", false, "benchmark the HTTP/JSON query service: per-endpoint latency (p50/p99) over a loaded resolver")
		bursty       = flag.Bool("bursty", false, "benchmark bursty ingestion: replay the synthetic stream through the durable and networked deployments at batch sizes 1/16/64/256 and report the amortization (journal appends, fan-outs, wire round trips)")
		concurrent   = flag.Bool("concurrent", false, "benchmark the concurrent read path: reader fleets of 1/4/16 goroutines racing a live writer, reporting read p50/p99 and aggregate QPS (scaling asserted on multi-core)")
		ingest       = flag.Bool("ingest", false, "benchmark tabular ingestion: one streamed generator pass fans a clean-clean corpus into nt/csv/jsonl, each format is parsed and resolved end-to-end, and the three must be bit-identical (a million records without -short)")
		jsonPath     = flag.String("json", "", "with a bench mode: also write the machine-readable benchmark result to this file, e.g. BENCH_streaming.json / BENCH_sharded.json / BENCH_serve.json / BENCH_bursty.json")
		short        = flag.Bool("short", false, "bench modes: shrink the scenario to ~400 entities (the CI regression-gate scale)")
		baseline     = flag.String("baseline", "", "with a bench mode: diff the fresh run's portable counters against this committed JSON payload and fail on drift beyond -tolerance")
		tolerance    = flag.Float64("tolerance", 0.01, "relative drift allowed per portable counter when diffing against -baseline")
	)
	flag.Parse()
	var sc experiments.Scale
	switch strings.ToLower(*scale) {
	case "small":
		sc = experiments.Small
	case "medium":
		sc = experiments.Medium
	default:
		fmt.Fprintf(os.Stderr, "erbench: unknown scale %q (want small or medium)\n", *scale)
		os.Exit(2)
	}
	benchMode := *streamMeta || *streamShards > 0 || *serveBench || *bursty || *concurrent || *ingest
	if (*jsonPath != "" || *baseline != "") && !benchMode {
		fmt.Fprintln(os.Stderr, "erbench: -json/-baseline require -streaming-meta, -streaming-shards, -serve, -bursty, -concurrent or -ingest")
		os.Exit(2)
	}
	out := benchOutput{jsonPath: *jsonPath, baseline: *baseline, tolerance: *tolerance}
	entities := 1500
	if sc == experiments.Medium {
		entities = 6000
	}
	if *short {
		entities = 400
	}
	if *parallel {
		if err := runParallelComparison(sc, *seed, *shards, *workers); err != nil {
			fmt.Fprintf(os.Stderr, "erbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *streamMeta {
		if err := runStreamingMeta(entities, *seed, *workers, *metaWeight, *metaPrune, out); err != nil {
			fmt.Fprintf(os.Stderr, "erbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *streamShards > 0 {
		if err := runStreamingShards(entities, *seed, *workers, *streamShards, out); err != nil {
			fmt.Fprintf(os.Stderr, "erbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *serveBench {
		if err := runServeBench(entities, *seed, *workers, out); err != nil {
			fmt.Fprintf(os.Stderr, "erbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *bursty {
		if err := runBurstyIngest(entities, *seed, *workers, out); err != nil {
			fmt.Fprintf(os.Stderr, "erbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *concurrent {
		if err := runConcurrentBench(entities, *seed, *workers, out); err != nil {
			fmt.Fprintf(os.Stderr, "erbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *ingest {
		if err := runIngestBench(*short, *seed, *workers, out); err != nil {
			fmt.Fprintf(os.Stderr, "erbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	ran := 0
	for _, e := range experiments.All() {
		if *which != "all" && !strings.EqualFold(*which, e.ID) {
			continue
		}
		ran++
		t0 := time.Now()
		res, err := e.Run(sc, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "erbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if err := res.Table.Fprint(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "erbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(t0).Round(time.Millisecond))
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "erbench: unknown experiment %q\n", *which)
		os.Exit(2)
	}
}

// runParallelComparison runs the same pipeline configuration through the
// sequential core pipeline and the concurrent engine, asserts the match
// sets are identical, and prints per-phase wall times with the speedup.
func runParallelComparison(sc experiments.Scale, seed int64, shards, workers int) error {
	entities := 1500
	if sc == experiments.Medium {
		entities = 6000
	}
	c, gt, err := er.GenerateDirty(er.GenConfig{Seed: seed, Entities: entities, MaxDuplicates: 2})
	if err != nil {
		return err
	}
	cfg := er.Pipeline{
		Blocker:    &er.TokenBlocking{},
		Processors: []er.BlockProcessor{&er.BlockFiltering{}},
		Meta:       &er.MetaBlocker{Weight: er.ECBS, Prune: er.WEP},
		Matcher:    &er.Matcher{Sim: &er.TokenJaccard{}, Threshold: 0.5},
	}
	// Report the resolved parallelism, not the raw flags, so recorded
	// output says what the measured run actually used.
	opt := er.ParallelOptions{Workers: workers, Shards: shards}.Resolve()
	fmt.Printf("pipeline comparison: %d descriptions, seed %d, GOMAXPROCS %d, shards %d, workers %d\n",
		c.Len(), seed, runtime.GOMAXPROCS(0), opt.Shards, opt.Workers)

	// Discarded warm-up pass: the first run through the data pays allocator
	// growth and cache warm-up that whichever run goes second would
	// otherwise inherit for free, biasing the reported speedup.
	warmCfg := cfg
	if _, err := warmCfg.Run(c); err != nil {
		return fmt.Errorf("warm-up: %w", err)
	}

	seqCfg := cfg
	t0 := time.Now()
	seqRes, err := seqCfg.Run(c)
	if err != nil {
		return fmt.Errorf("sequential: %w", err)
	}
	seqTotal := time.Since(t0)

	eng := er.NewParallelPipeline(cfg, opt)
	t0 = time.Now()
	parRes, err := eng.Run(context.Background(), c)
	if err != nil {
		return fmt.Errorf("parallel: %w", err)
	}
	parTotal := time.Since(t0)

	if !sameMatches(seqRes.Matches, parRes.Matches) {
		return fmt.Errorf("match sets differ: sequential %d, parallel %d", seqRes.Matches.Len(), parRes.Matches.Len())
	}

	fmt.Printf("\n%-16s %14s %14s\n", "phase", "sequential", "parallel")
	par := phaseIndex(parRes)
	for _, ph := range seqRes.Phases {
		fmt.Printf("%-16s %14v %14v\n", ph.Name, ph.Duration.Round(time.Microsecond), par[ph.Name].Round(time.Microsecond))
	}
	fmt.Printf("%-16s %14v %14v\n", "total", seqTotal.Round(time.Microsecond), parTotal.Round(time.Microsecond))
	fmt.Printf("\nmatches=%d comparisons=%d identical=true speedup=%.2fx recall=%.3f\n",
		parRes.Matches.Len(), parRes.Comparisons,
		float64(seqTotal)/float64(parTotal),
		er.ComparePairs(parRes.Matches, gt).Recall)
	return nil
}

// The -json payloads are schema 2, split into two sections:
//
//   - "portable": machine-independent counters. For a fixed scenario
//     (entities, seed, meta/shard configuration) every field is identical
//     on any host — they measure the algorithm, not the machine — so a
//     committed payload is a regression baseline any CI runner can check.
//   - "timing": wall-clock measurements (and the resolved worker count
//     that shaped them). Never compared across machines.
//
// benchSchema is bumped whenever the payload shape changes incompatibly;
// the -baseline differ refuses other schemas.
const benchSchema = 2

// benchCountersJSON is one measured replay's portable result.
type benchCountersJSON struct {
	Comparisons int64 `json:"comparisons"`
	Matches     int   `json:"matches"`
}

// benchTimingJSON is one measured replay's wall-clock cost.
type benchTimingJSON struct {
	WallNS  int64 `json:"wall_ns"`
	NSPerOp int64 `json:"ns_per_op"`
}

// benchPerfJSON mirrors er.StreamingPerf: reconcile effort, snapshot
// compaction cost, and the amortization counters (journal appends,
// fan-outs, wire round trips), all machine-independent.
type benchPerfJSON struct {
	Reconciles          int64 `json:"reconciles"`
	ReconcileExamined   int64 `json:"reconcile_examined"`
	ReconcileEvaluated  int64 `json:"reconcile_evaluated"`
	FullSnapshots       int64 `json:"full_snapshots"`
	DeltaSnapshots      int64 `json:"delta_snapshots"`
	SnapshotSlots       int64 `json:"snapshot_slots"`
	SnapshotPairs       int64 `json:"snapshot_pairs"`
	JournalAppends      int64 `json:"journal_appends"`
	FanOuts             int64 `json:"fan_outs"`
	TransportRoundTrips int64 `json:"transport_round_trips"`
}

func perfJSON(p er.StreamingPerf) benchPerfJSON {
	return benchPerfJSON{
		Reconciles:          p.Reconciles,
		ReconcileExamined:   p.ReconcileExamined,
		ReconcileEvaluated:  p.ReconcileEvaluated,
		FullSnapshots:       p.FullSnapshots,
		DeltaSnapshots:      p.DeltaSnapshots,
		SnapshotSlots:       p.SnapshotSlots,
		SnapshotPairs:       p.SnapshotPairs,
		JournalAppends:      p.JournalAppends,
		FanOuts:             p.FanOuts,
		TransportRoundTrips: p.TransportRoundTrips,
	}
}

// benchRecoveryPortableJSON is the durable leg's portable half: the
// journal geometry the persist run produced and what the reopen replayed.
type benchRecoveryPortableJSON struct {
	Ops             int64         `json:"ops"`
	SnapshotEvery   int           `json:"snapshot_every"`
	SnapshotSegment uint64        `json:"snapshot_segment"`
	ReplayedRecords int           `json:"replayed_records"`
	Perf            benchPerfJSON `json:"perf"`
}

// benchStreamingPortableJSON identifies the -streaming-meta scenario and
// carries its machine-independent results.
type benchStreamingPortableJSON struct {
	Entities              int                       `json:"entities"`
	Seed                  int64                     `json:"seed"`
	Meta                  string                    `json:"meta"`
	Frontier              benchCountersJSON         `json:"frontier"`
	Pruned                benchCountersJSON         `json:"pruned"`
	KeptPairs             int                       `json:"kept_pairs"`
	CandidatePairs        int                       `json:"candidate_pairs"`
	ComparisonsSavedRatio float64                   `json:"comparisons_saved_ratio"`
	PrunedPerf            benchPerfJSON             `json:"pruned_perf"`
	Recovery              benchRecoveryPortableJSON `json:"recovery"`
}

// benchStreamingTimingJSON is the -streaming-meta wall-clock section.
type benchStreamingTimingJSON struct {
	Workers        int             `json:"workers"`
	Frontier       benchTimingJSON `json:"frontier"`
	Pruned         benchTimingJSON `json:"pruned"`
	PersistWallNS  int64           `json:"persist_wall_ns"`
	PersistNSPerOp int64           `json:"persist_ns_per_op"`
	RecoveryWallNS int64           `json:"recovery_wall_ns"`
}

// benchJSON is the machine-readable -json payload (BENCH_streaming.json).
type benchJSON struct {
	Schema   int                        `json:"schema"`
	Name     string                     `json:"name"`
	Portable benchStreamingPortableJSON `json:"portable"`
	Timing   benchStreamingTimingJSON   `json:"timing"`
}

// benchOutput carries the -json / -baseline / -tolerance flags into the
// bench modes.
type benchOutput struct {
	jsonPath  string
	baseline  string
	tolerance float64
}

// emit marshals payload, diffs it against the committed baseline when one
// was named (failing the run on drift), and writes it when -json was set.
func (o benchOutput) emit(payload any) error {
	data, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if o.baseline != "" {
		if err := diffBaseline(data, o.baseline, o.tolerance); err != nil {
			return err
		}
		fmt.Printf("baseline %s: portable counters within tolerance %.3f\n", o.baseline, o.tolerance)
	}
	if o.jsonPath != "" {
		if err := os.WriteFile(o.jsonPath, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", o.jsonPath)
	}
	return nil
}

// benchIdentityFields are portable fields that define the scenario rather
// than measure it: a baseline with different values is a different
// benchmark, and diffing against it would be meaningless — the gate
// refuses instead of reporting drift.
var benchIdentityFields = map[string]bool{
	"entities":                true,
	"seed":                    true,
	"meta":                    true,
	"shards":                  true,
	"requests_per_endpoint":   true,
	"ingest_requests":         true,
	"ingest_batch":            true,
	"ops":                     true,
	"recovery.ops":            true,
	"recovery.snapshot_every": true,
	"preload_ops":             true,
	"live_ops":                true,
	"reads_per_reader":        true,
	"readers":                 true,
	"records":                 true,
	"vocab_scale":             true,
	"purge_max":               true,
}

// diffBaseline compares the fresh payload's portable section against the
// committed baseline's, field by field. Identity fields must match
// exactly; every other numeric field may drift at most tol relative to
// the baseline value. The timing section is never compared.
func diffBaseline(fresh []byte, baselinePath string, tol float64) error {
	var head struct {
		Schema   int            `json:"schema"`
		Name     string         `json:"name"`
		Portable map[string]any `json:"portable"`
	}
	if err := json.Unmarshal(fresh, &head); err != nil {
		return err
	}
	baseData, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base struct {
		Schema   int            `json:"schema"`
		Name     string         `json:"name"`
		Portable map[string]any `json:"portable"`
	}
	if err := json.Unmarshal(baseData, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", baselinePath, err)
	}
	if base.Schema != benchSchema {
		return fmt.Errorf("baseline %s has schema %d, this erbench writes %d — regenerate it with -json", baselinePath, base.Schema, benchSchema)
	}
	if base.Name != head.Name {
		return fmt.Errorf("baseline %s records benchmark %q, this run is %q", baselinePath, base.Name, head.Name)
	}
	got, want := flattenJSON("", head.Portable), flattenJSON("", base.Portable)
	keys := make([]string, 0, len(want))
	for k := range want {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var drift []string
	for _, k := range keys {
		gv, ok := got[k]
		if !ok {
			return fmt.Errorf("baseline %s has portable field %q this erbench no longer writes — regenerate the baseline", baselinePath, k)
		}
		if benchIdentityFields[k] {
			if gv != want[k] {
				return fmt.Errorf("scenario mismatch: %s is %v here but %v in baseline %s — refusing to diff different scales/seeds/configurations", k, gv, want[k], baselinePath)
			}
			continue
		}
		gn, gNum := gv.(float64)
		wn, wNum := want[k].(float64)
		switch {
		case gNum && wNum:
			if diff := math.Abs(gn - wn); diff > tol*math.Max(math.Abs(wn), 1) {
				drift = append(drift, fmt.Sprintf("  %s: %v (baseline %v)", k, gn, wn))
			}
		default: // bools and strings compare exactly
			if gv != want[k] {
				drift = append(drift, fmt.Sprintf("  %s: %v (baseline %v)", k, gv, want[k]))
			}
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			return fmt.Errorf("this erbench writes portable field %q missing from baseline %s — regenerate the baseline", k, baselinePath)
		}
	}
	if len(drift) > 0 {
		return fmt.Errorf("portable counters drifted beyond tolerance %.3f vs %s:\n%s\nif the change is intended, regenerate the committed baselines with -json",
			tol, baselinePath, strings.Join(drift, "\n"))
	}
	return nil
}

// flattenJSON renders a decoded JSON object as dotted-path → leaf value.
func flattenJSON(prefix string, v any) map[string]any {
	out := map[string]any{}
	m, ok := v.(map[string]any)
	if !ok {
		out[prefix] = v
		return out
	}
	for k, sub := range m {
		p := k
		if prefix != "" {
			p = prefix + "." + k
		}
		for kk, vv := range flattenJSON(p, sub) {
			out[kk] = vv
		}
	}
	return out
}

// runStreamingMeta replays one synthetic insert stream through two
// streaming resolvers — frontier matching vs. live meta-blocking — and
// reports throughput plus the pruning ratio: the share of matcher
// comparisons the live weighted blocking graph saved. It then persists the
// stream through a WAL-backed resolver and measures crash recovery
// (reopen = snapshot restore + tail replay). The measurement is emitted
// per the -json/-baseline flags in out.
func runStreamingMeta(entities int, seed int64, workers int, weightNm, pruneNm string, out benchOutput) error {
	var weight er.WeightScheme
	switch strings.ToUpper(weightNm) {
	case "CBS":
		weight = er.CBS
	case "ECBS":
		weight = er.ECBS
	case "JS":
		weight = er.JS
	default:
		return fmt.Errorf("-meta-weight %q is not stream-safe (want CBS, ECBS or JS)", weightNm)
	}
	var prune er.PruneScheme
	switch strings.ToUpper(pruneNm) {
	case "WEP":
		prune = er.WEP
	case "WNP":
		prune = er.WNP
	default:
		return fmt.Errorf("-meta-prune %q is not stream-safe (want WEP or WNP)", pruneNm)
	}
	c, _, err := er.GenerateDirty(er.GenConfig{Seed: seed, Entities: entities, MaxDuplicates: 2})
	if err != nil {
		return err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	meta := &er.MetaBlocker{Weight: weight, Prune: prune}
	fmt.Printf("streaming meta-blocking: %d descriptions, seed %d, workers %d, %s\n",
		c.Len(), seed, workers, meta.Name())

	replay := func(meta *er.MetaBlocker) (er.StreamingStats, er.StreamingPerf, time.Duration, error) {
		ctx := context.Background()
		r, err := er.Open(ctx, er.Config{
			Kind:    er.Dirty,
			Blocker: &er.TokenBlocking{},
			Matcher: &er.Matcher{Sim: &er.TokenJaccard{}, Threshold: 0.5},
			Workers: workers,
			Meta:    meta,
		})
		if err != nil {
			return er.StreamingStats{}, er.StreamingPerf{}, 0, err
		}
		defer r.Close()
		t0 := time.Now()
		for _, d := range c.All() {
			if _, err := r.Insert(ctx, d); err != nil {
				return er.StreamingStats{}, er.StreamingPerf{}, 0, err
			}
		}
		if meta != nil {
			if err := r.Flush(ctx); err != nil {
				return er.StreamingStats{}, er.StreamingPerf{}, 0, err
			}
		}
		st, err := r.Stats()
		if err != nil {
			return er.StreamingStats{}, er.StreamingPerf{}, 0, err
		}
		return st, r.(er.PerfReporter).Perf(), time.Since(t0), nil
	}

	base, _, baseDur, err := replay(nil)
	if err != nil {
		return fmt.Errorf("without meta: %w", err)
	}
	pruned, prunedPerf, prunedDur, err := replay(meta)
	if err != nil {
		return fmt.Errorf("with meta: %w", err)
	}

	fmt.Printf("\n%-14s %14s %14s %12s %10s\n", "run", "comparisons", "matches", "wall", "ops/sec")
	opsPerSec := func(d time.Duration) float64 { return float64(c.Len()) / d.Seconds() }
	fmt.Printf("%-14s %14d %14d %12v %10.0f\n", "frontier", base.Comparisons, base.Matches, baseDur.Round(time.Microsecond), opsPerSec(baseDur))
	fmt.Printf("%-14s %14d %14d %12v %10.0f\n", meta.Name(), pruned.Comparisons, pruned.Matches, prunedDur.Round(time.Microsecond), opsPerSec(prunedDur))
	saved := 0.0
	if base.Comparisons > 0 {
		saved = 1 - float64(pruned.Comparisons)/float64(base.Comparisons)
	}
	keptRatio := 0.0
	if pruned.CandidatePairs > 0 {
		keptRatio = float64(pruned.KeptPairs) / float64(pruned.CandidatePairs)
	}
	fmt.Printf("\npruning ratio: %.3f comparisons saved (kept %d of %d candidate pairs, %.3f)\n",
		saved, pruned.KeptPairs, pruned.CandidatePairs, keptRatio)

	// Durable leg: persist the same stream through the WAL-backed resolver,
	// hard-close, and measure recovery. A quarter-stream snapshot cadence
	// leaves a real tail for the reopen to replay.
	walDir, err := os.MkdirTemp("", "erbench-wal-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(walDir)
	durable := er.StreamingDurable{SnapshotEvery: entities / 4, NoSync: true}
	durableCfg := er.Config{
		Kind:    er.Dirty,
		Blocker: &er.TokenBlocking{},
		Matcher: &er.Matcher{Sim: &er.TokenJaccard{}, Threshold: 0.5},
		Workers: workers,
		Dir:     walDir,
		Durable: durable,
	}
	ctx := context.Background()
	pr, err := er.Open(ctx, durableCfg)
	if err != nil {
		return fmt.Errorf("persistent: %w", err)
	}
	t0 := time.Now()
	for _, d := range c.All() {
		if _, err := pr.Insert(ctx, d); err != nil {
			return fmt.Errorf("persistent: %w", err)
		}
	}
	persistDur := time.Since(t0)
	if err := pr.Close(); err != nil {
		return err
	}
	persistPerf := pr.(er.PerfReporter).Perf()
	t0 = time.Now()
	re, err := er.Open(ctx, durableCfg)
	if err != nil {
		return fmt.Errorf("recovery: %w", err)
	}
	recoveryDur := time.Since(t0)
	rec := re.(er.DurableReporter).Recovery()[0]
	if st, err := re.Stats(); err != nil {
		return fmt.Errorf("recovery: %w", err)
	} else if st.Live != c.Len() {
		return fmt.Errorf("recovery restored %d live descriptions, want %d", st.Live, c.Len())
	}
	if err := re.Close(); err != nil {
		return err
	}
	fmt.Printf("durable:       persist %v (%.0f ops/sec, unsynced), recovery %v (snapshot at segment %d + %d wal records)\n",
		persistDur.Round(time.Microsecond), opsPerSec(persistDur),
		recoveryDur.Round(time.Microsecond), rec.SnapshotSegment, rec.ReplayedRecords)

	if out.jsonPath == "" && out.baseline == "" {
		return nil
	}
	nsPerOp := func(d time.Duration) int64 { return d.Nanoseconds() / int64(c.Len()) }
	payload := benchJSON{
		Schema: benchSchema,
		Name:   "streaming",
		Portable: benchStreamingPortableJSON{
			Entities:              c.Len(),
			Seed:                  seed,
			Meta:                  meta.Name(),
			Frontier:              benchCountersJSON{Comparisons: base.Comparisons, Matches: base.Matches},
			Pruned:                benchCountersJSON{Comparisons: pruned.Comparisons, Matches: pruned.Matches},
			KeptPairs:             pruned.KeptPairs,
			CandidatePairs:        pruned.CandidatePairs,
			ComparisonsSavedRatio: saved,
			PrunedPerf:            perfJSON(prunedPerf),
			Recovery: benchRecoveryPortableJSON{
				Ops:             int64(c.Len()),
				SnapshotEvery:   durable.SnapshotEvery,
				SnapshotSegment: rec.SnapshotSegment,
				ReplayedRecords: rec.ReplayedRecords,
				Perf:            perfJSON(persistPerf),
			},
		},
		Timing: benchStreamingTimingJSON{
			Workers:        workers,
			Frontier:       benchTimingJSON{WallNS: baseDur.Nanoseconds(), NSPerOp: nsPerOp(baseDur)},
			Pruned:         benchTimingJSON{WallNS: prunedDur.Nanoseconds(), NSPerOp: nsPerOp(prunedDur)},
			PersistWallNS:  persistDur.Nanoseconds(),
			PersistNSPerOp: nsPerOp(persistDur),
			RecoveryWallNS: recoveryDur.Nanoseconds(),
		},
	}
	return out.emit(&payload)
}

// benchShardRecoveryPortableJSON is the sharded durable leg's portable
// half: per-shard group-committed WAL persistence plus a full reopen
// (every shard restored from its own snapshot chain + tail).
type benchShardRecoveryPortableJSON struct {
	Ops                int64         `json:"ops"`
	SnapshotEvery      int           `json:"snapshot_every"`
	ReplayedRecordsMax int           `json:"replayed_records_max"`
	Perf               benchPerfJSON `json:"perf"`
}

// benchShardedPortableJSON identifies the -streaming-shards scenario and
// carries its machine-independent results.
type benchShardedPortableJSON struct {
	Entities  int                            `json:"entities"`
	Seed      int64                          `json:"seed"`
	Shards    int                            `json:"shards"`
	Single    benchCountersJSON              `json:"single"`
	Sharded   benchCountersJSON              `json:"sharded"`
	Identical bool                           `json:"identical"`
	Recovery  benchShardRecoveryPortableJSON `json:"recovery"`
}

// benchShardedTimingJSON is the -streaming-shards wall-clock section.
type benchShardedTimingJSON struct {
	Workers        int             `json:"workers"`
	Single         benchTimingJSON `json:"single"`
	Sharded        benchTimingJSON `json:"sharded"`
	Speedup        float64         `json:"speedup"`
	PersistWallNS  int64           `json:"persist_wall_ns"`
	PersistNSPerOp int64           `json:"persist_ns_per_op"`
	RecoveryWallNS int64           `json:"recovery_wall_ns"`
}

// benchShardedJSON is the machine-readable -json payload of the
// sharded-streaming mode (BENCH_sharded.json).
type benchShardedJSON struct {
	Schema   int                      `json:"schema"`
	Name     string                   `json:"name"`
	Portable benchShardedPortableJSON `json:"portable"`
	Timing   benchShardedTimingJSON   `json:"timing"`
}

// runStreamingShards replays one synthetic insert stream through the
// single-node and the N-shard sharded streaming resolver, asserts their
// matches AND comparison counts are identical (the cross-shard
// differential contract), and reports throughput plus the sharded durable
// leg: per-shard group-committed WAL persistence and whole-deployment
// recovery. The measurement is emitted per the -json/-baseline flags.
func runStreamingShards(entities int, seed int64, workers, shards int, out benchOutput) error {
	c, _, err := er.GenerateDirty(er.GenConfig{Seed: seed, Entities: entities, MaxDuplicates: 2})
	if err != nil {
		return err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("sharded streaming: %d descriptions, seed %d, %d shards, %d workers/shard\n",
		c.Len(), seed, shards, workers)
	ctx := context.Background()
	matcher := func() *er.Matcher { return &er.Matcher{Sim: &er.TokenJaccard{}, Threshold: 0.5} }

	single, err := er.Open(ctx, er.Config{
		Kind: er.Dirty, Blocker: &er.TokenBlocking{}, Matcher: matcher(), Workers: workers,
	})
	if err != nil {
		return err
	}
	defer single.Close()
	t0 := time.Now()
	for _, d := range c.All() {
		if _, err := single.Insert(ctx, d); err != nil {
			return fmt.Errorf("single-node: %w", err)
		}
	}
	singleDur := time.Since(t0)
	singleStats, err := single.Stats()
	if err != nil {
		return fmt.Errorf("single-node: %w", err)
	}

	sh, err := er.Open(ctx, er.Config{
		Kind: er.Dirty, Blocker: &er.TokenBlocking{}, Matcher: matcher(), Workers: workers, Shards: shards,
	})
	if err != nil {
		return err
	}
	defer sh.Close()
	t0 = time.Now()
	for _, d := range c.All() {
		if _, err := sh.Insert(ctx, d); err != nil {
			return fmt.Errorf("sharded: %w", err)
		}
	}
	shardedDur := time.Since(t0)
	shardedStats, err := sh.Stats()
	if err != nil {
		return fmt.Errorf("sharded: %w", err)
	}

	identical := singleStats == shardedStats && sameSameAs(ctx, single, sh, c)
	if !identical {
		return fmt.Errorf("sharded state diverges from single-node: %+v vs %+v", shardedStats, singleStats)
	}
	opsPerSec := func(d time.Duration) float64 { return float64(c.Len()) / d.Seconds() }
	fmt.Printf("\n%-14s %14s %14s %12s %10s\n", "run", "comparisons", "matches", "wall", "ops/sec")
	fmt.Printf("%-14s %14d %14d %12v %10.0f\n", "single-node", singleStats.Comparisons, singleStats.Matches,
		singleDur.Round(time.Microsecond), opsPerSec(singleDur))
	fmt.Printf("%-14s %14d %14d %12v %10.0f\n", fmt.Sprintf("sharded n=%d", shards), shardedStats.Comparisons,
		shardedStats.Matches, shardedDur.Round(time.Microsecond), opsPerSec(shardedDur))
	speedup := float64(singleDur) / float64(shardedDur)
	fmt.Printf("\nidentical=true speedup=%.2fx\n", speedup)

	// Durable leg: persist through per-shard group-committed WALs, abandon
	// (hard stop), and measure the whole-deployment reopen — each shard
	// restores from its own snapshot + tail.
	walDir, err := os.MkdirTemp("", "erbench-sharded-wal-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(walDir)
	durable := er.StreamingDurable{SnapshotEvery: entities / 4, NoSync: true}
	shardedCfg := er.Config{
		Kind: er.Dirty, Blocker: &er.TokenBlocking{}, Matcher: matcher(), Workers: workers,
		Shards: shards, Dir: walDir, Durable: durable,
	}
	pr, err := er.Open(ctx, shardedCfg)
	if err != nil {
		return fmt.Errorf("persistent sharded: %w", err)
	}
	t0 = time.Now()
	for _, d := range c.All() {
		if _, err := pr.Insert(ctx, d); err != nil {
			return fmt.Errorf("persistent sharded: %w", err)
		}
	}
	persistDur := time.Since(t0)
	persistPerf := pr.(er.PerfReporter).Perf()
	pr.(er.DurableReporter).Abandon()
	t0 = time.Now()
	re, err := er.Open(ctx, shardedCfg)
	if err != nil {
		return fmt.Errorf("sharded recovery: %w", err)
	}
	recoveryDur := time.Since(t0)
	replayedMax := 0
	for _, rec := range re.(er.DurableReporter).Recovery() {
		if rec.ReplayedRecords > replayedMax {
			replayedMax = rec.ReplayedRecords
		}
	}
	if st, err := re.Stats(); err != nil {
		return fmt.Errorf("sharded recovery: %w", err)
	} else if st.Live != c.Len() {
		return fmt.Errorf("sharded recovery restored %d live descriptions, want %d", st.Live, c.Len())
	}
	if err := re.Close(); err != nil {
		return err
	}
	fmt.Printf("durable:       persist %v (%.0f ops/sec, group-committed, unsynced), recovery %v (max %d wal records per shard)\n",
		persistDur.Round(time.Microsecond), opsPerSec(persistDur),
		recoveryDur.Round(time.Microsecond), replayedMax)

	if out.jsonPath == "" && out.baseline == "" {
		return nil
	}
	nsPerOp := func(d time.Duration) int64 { return d.Nanoseconds() / int64(c.Len()) }
	payload := benchShardedJSON{
		Schema: benchSchema,
		Name:   "sharded-streaming",
		Portable: benchShardedPortableJSON{
			Entities:  c.Len(),
			Seed:      seed,
			Shards:    shards,
			Single:    benchCountersJSON{Comparisons: singleStats.Comparisons, Matches: singleStats.Matches},
			Sharded:   benchCountersJSON{Comparisons: shardedStats.Comparisons, Matches: shardedStats.Matches},
			Identical: identical,
			Recovery: benchShardRecoveryPortableJSON{
				Ops:                int64(c.Len()),
				SnapshotEvery:      durable.SnapshotEvery,
				ReplayedRecordsMax: replayedMax,
				Perf:               perfJSON(persistPerf),
			},
		},
		Timing: benchShardedTimingJSON{
			Workers:        workers,
			Single:         benchTimingJSON{WallNS: singleDur.Nanoseconds(), NSPerOp: nsPerOp(singleDur)},
			Sharded:        benchTimingJSON{WallNS: shardedDur.Nanoseconds(), NSPerOp: nsPerOp(shardedDur)},
			Speedup:        speedup,
			PersistWallNS:  persistDur.Nanoseconds(),
			PersistNSPerOp: nsPerOp(persistDur),
			RecoveryWallNS: recoveryDur.Nanoseconds(),
		},
	}
	return out.emit(&payload)
}

func phaseIndex(res *er.PipelineResult) map[string]time.Duration {
	m := make(map[string]time.Duration, len(res.Phases))
	for _, ph := range res.Phases {
		m[ph.Name] = ph.Duration
	}
	return m
}

// sameSameAs asserts two deployments answer identical SameAs sets for
// every description — a pairwise bit-equality check through the v2 query
// interface (handles are assigned identically across forms).
func sameSameAs(ctx context.Context, a, b er.Resolver, c *er.Collection) bool {
	for _, d := range c.All() {
		ra, errA := a.Query(ctx, er.Query{URI: d.URI})
		rb, errB := b.Query(ctx, er.Query{URI: d.URI})
		if (errA != nil) != (errB != nil) {
			return false
		}
		if errA != nil {
			continue
		}
		if ra.ID != rb.ID || !reflect.DeepEqual(ra.SameAs, rb.SameAs) {
			return false
		}
	}
	return true
}

// benchLatencyJSON is one endpoint's measured latency distribution.
type benchLatencyJSON struct {
	Requests int   `json:"requests"`
	P50NS    int64 `json:"p50_ns"`
	P99NS    int64 `json:"p99_ns"`
	MeanNS   int64 `json:"mean_ns"`
}

// benchServePortableJSON identifies the -serve scenario. Latency is
// inherently machine-dependent, so the portable half carries only the
// scenario identity and the loaded resolver's machine-independent sizes.
type benchServePortableJSON struct {
	Entities            int   `json:"entities"`
	Seed                int64 `json:"seed"`
	RequestsPerEndpoint int   `json:"requests_per_endpoint"`
	IngestRequests      int   `json:"ingest_requests"`
	IngestBatch         int   `json:"ingest_batch"`
	Comparisons         int64 `json:"comparisons"`
	Matches             int   `json:"matches"`
}

// benchServeTimingJSON is the -serve wall-clock section: per-endpoint
// latency distributions.
type benchServeTimingJSON struct {
	Workers   int                         `json:"workers"`
	Endpoints map[string]benchLatencyJSON `json:"endpoints"`
}

// benchServeJSON is the machine-readable -serve payload (BENCH_serve.json).
type benchServeJSON struct {
	Schema   int                    `json:"schema"`
	Name     string                 `json:"name"`
	Portable benchServePortableJSON `json:"portable"`
	Timing   benchServeTimingJSON   `json:"timing"`
}

// runServeBench loads a generated collection into an er.Open resolver,
// fronts it with the HTTP/JSON query service, and measures per-endpoint
// request latency (p50/p99) over the loopback.
func runServeBench(entities int, seed int64, workers int, out benchOutput) error {
	c, _, err := er.GenerateDirty(er.GenConfig{Seed: seed, Entities: entities, MaxDuplicates: 2})
	if err != nil {
		return err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ctx := context.Background()
	r, err := er.Open(ctx, er.Config{
		Kind: er.Dirty, Blocker: &er.TokenBlocking{},
		Matcher: &er.Matcher{Sim: &er.TokenJaccard{}, Threshold: 0.5}, Workers: workers,
	})
	if err != nil {
		return err
	}
	defer r.Close()
	uris := make([]string, 0, c.Len())
	for _, d := range c.All() {
		if _, err := r.Insert(ctx, d); err != nil {
			return err
		}
		uris = append(uris, d.URI)
	}
	// The portable section describes the loaded resolver; read it before
	// the ingest probes mutate the state.
	loaded, err := r.Stats()
	if err != nil {
		return err
	}

	srv := serve.NewServer(r, serve.Options{})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(lis) }()
	base := "http://" + lis.Addr().String()
	client := &http.Client{Timeout: 10 * time.Second}
	fmt.Printf("query service latency: %d descriptions, seed %d, %d requests/endpoint over loopback\n",
		c.Len(), seed, serveRequests)

	measure := func(path func(i int) string) (benchLatencyJSON, error) {
		// Warm-up: connection pool, first-hit allocations. The body must be
		// drained before Close or the connection is torn down instead of
		// returned to the pool, and the measured loop re-pays the dials the
		// warm-up was supposed to absorb.
		for i := 0; i < 32; i++ {
			resp, err := client.Get(base + path(i))
			if err != nil {
				return benchLatencyJSON{}, err
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		lat := make([]time.Duration, serveRequests)
		for i := range lat {
			t0 := time.Now()
			resp, err := client.Get(base + path(i))
			if err != nil {
				return benchLatencyJSON{}, err
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			lat[i] = time.Since(t0)
			if resp.StatusCode != http.StatusOK {
				return benchLatencyJSON{}, fmt.Errorf("%s answered %d", path(i), resp.StatusCode)
			}
		}
		return summarizeLatency(lat), nil
	}

	uri := func(i int) string { return url.QueryEscape(uris[i%len(uris)]) }
	endpoints := map[string]func(i int) string{
		"lookup":  func(i int) string { return "/v1/lookup?uri=" + uri(i) },
		"same-as": func(i int) string { return "/v1/same-as?uri=" + uri(i) },
		"cluster": func(i int) string { return "/v1/cluster?uri=" + uri(i) },
		"stats":   func(i int) string { return "/v1/stats" },
	}
	results := map[string]benchLatencyJSON{}
	fmt.Printf("\n%-10s %10s %10s %10s\n", "endpoint", "p50", "p99", "mean")
	for _, name := range []string{"lookup", "same-as", "cluster", "stats"} {
		m, err := measure(endpoints[name])
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		results[name] = m
		fmt.Printf("%-10s %10v %10v %10v\n", name,
			time.Duration(m.P50NS).Round(time.Microsecond),
			time.Duration(m.P99NS).Round(time.Microsecond),
			time.Duration(m.MeanNS).Round(time.Microsecond))
	}

	// Bulk-ingest latency through POST /v1/ops: the same probe stream one
	// operation per request vs. ingestBatch operations per request. Every
	// probe description is deleted again (per-op: by the next request;
	// batched: inside the same batch), so the resolver keeps the size the
	// query endpoints above were measured at.
	measurePost := func(n int, body func(i int) string) (benchLatencyJSON, error) {
		lat := make([]time.Duration, n)
		for i := range lat {
			b := body(i)
			t0 := time.Now()
			resp, err := client.Post(base+"/v1/ops", "application/json", strings.NewReader(b))
			if err != nil {
				return benchLatencyJSON{}, err
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			lat[i] = time.Since(t0)
			if resp.StatusCode != http.StatusOK {
				return benchLatencyJSON{}, fmt.Errorf("/v1/ops answered %d", resp.StatusCode)
			}
		}
		return summarizeLatency(lat), nil
	}
	insertOp := func(uri string) string {
		return fmt.Sprintf(`{"op":"insert","uri":%q,"attrs":[{"name":"name","value":"ingest probe %s"}]}`, uri, uri)
	}
	perOp, err := measurePost(ingestRequests, func(i int) string {
		if i%2 == 1 {
			return fmt.Sprintf(`{"ops":[{"op":"delete","uri":"urn:ingest-one-%d"}]}`, i-1)
		}
		return `{"ops":[` + insertOp(fmt.Sprintf("urn:ingest-one-%d", i)) + `]}`
	})
	if err != nil {
		return fmt.Errorf("ingest-per-op: %w", err)
	}
	batched, err := measurePost(ingestRequests/4, func(i int) string {
		ops := make([]string, 0, ingestBatch)
		for j := 0; j < ingestBatch/2; j++ {
			ops = append(ops, insertOp(fmt.Sprintf("urn:ingest-b-%d-%d", i, j)))
		}
		for j := 0; j < ingestBatch/2; j++ {
			ops = append(ops, fmt.Sprintf(`{"op":"delete","uri":"urn:ingest-b-%d-%d"}`, i, j))
		}
		return `{"ops":[` + strings.Join(ops, ",") + `]}`
	})
	if err != nil {
		return fmt.Errorf("ingest-batch: %w", err)
	}
	results["ingest-per-op"] = perOp
	results["ingest-batch"] = batched
	fmt.Printf("\n%-14s %10s %10s %10s %12s\n", "ingest", "p50", "p99", "mean", "ns/op")
	for _, row := range []struct {
		name string
		m    benchLatencyJSON
		per  int
	}{{"per-op", perOp, 1}, {fmt.Sprintf("batch=%d", ingestBatch), batched, ingestBatch}} {
		fmt.Printf("%-14s %10v %10v %10v %12d\n", row.name,
			time.Duration(row.m.P50NS).Round(time.Microsecond),
			time.Duration(row.m.P99NS).Round(time.Microsecond),
			time.Duration(row.m.MeanNS).Round(time.Microsecond),
			row.m.MeanNS/int64(row.per))
	}

	dctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		return err
	}
	if err := <-served; err != nil {
		return err
	}

	if out.jsonPath == "" && out.baseline == "" {
		return nil
	}
	payload := benchServeJSON{
		Schema: benchSchema,
		Name:   "serve",
		Portable: benchServePortableJSON{
			Entities:            c.Len(),
			Seed:                seed,
			RequestsPerEndpoint: serveRequests,
			IngestRequests:      ingestRequests,
			IngestBatch:         ingestBatch,
			Comparisons:         loaded.Comparisons,
			Matches:             loaded.Matches,
		},
		Timing: benchServeTimingJSON{Workers: workers, Endpoints: results},
	}
	return out.emit(&payload)
}

// serveRequests is the measured request count per endpoint for -serve;
// ingestRequests and ingestBatch shape the bulk-ingest legs (the batched
// leg sends ingestRequests/4 requests of ingestBatch ops each).
const (
	serveRequests  = 800
	ingestRequests = 200
	ingestBatch    = 32
)

// summarizeLatency renders a measured latency sample as its distribution.
func summarizeLatency(lat []time.Duration) benchLatencyJSON {
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	var sum time.Duration
	for _, l := range lat {
		sum += l
	}
	return benchLatencyJSON{
		Requests: len(lat),
		P50NS:    lat[len(lat)/2].Nanoseconds(),
		P99NS:    lat[len(lat)*99/100].Nanoseconds(),
		MeanNS:   (sum / time.Duration(len(lat))).Nanoseconds(),
	}
}

func sameMatches(a, b *er.Matches) bool {
	if a.Len() != b.Len() {
		return false
	}
	same := true
	a.Each(func(p er.Pair) bool {
		same = b.Contains(p.A, p.B)
		return same
	})
	return same
}

// burstySizes are the -bursty ingest batch sizes; burstyShards is the
// networked leg's shard count. Batch size 1 is the per-op reference the
// amortization ratios are taken against.
var burstySizes = []int{1, 16, 64, 256}

const (
	burstyShards = 2
	// burstyAmortizationFloor is the minimum batch=64 amortization (journal
	// appends and wire round trips saved vs. per-op) the run asserts; a
	// collapse below it means the batched path stopped batching.
	burstyAmortizationFloor = 8.0
)

// benchBurstyPortableJSON identifies the -bursty scenario and carries its
// machine-independent results: the resolved counters (identical at every
// batch size — asserted) and each leg's per-batch-size perf counters.
type benchBurstyPortableJSON struct {
	Entities  int                      `json:"entities"`
	Seed      int64                    `json:"seed"`
	Shards    int                      `json:"shards"`
	Ops       int                      `json:"ops"`
	Counters  benchCountersJSON        `json:"counters"`
	Identical bool                     `json:"identical"`
	Durable   map[string]benchPerfJSON `json:"durable"`
	Networked map[string]benchPerfJSON `json:"networked"`
	// The asserted ratios: per-op cost over batch=64 cost.
	AppendAmortization64    float64 `json:"append_amortization_64"`
	RoundTripAmortization64 float64 `json:"round_trip_amortization_64"`
}

// benchBurstyTimingJSON is the -bursty wall-clock section.
type benchBurstyTimingJSON struct {
	Workers   int                        `json:"workers"`
	Durable   map[string]benchTimingJSON `json:"durable"`
	Networked map[string]benchTimingJSON `json:"networked"`
}

// benchBurstyJSON is the machine-readable -bursty payload
// (BENCH_bursty.json).
type benchBurstyJSON struct {
	Schema   int                     `json:"schema"`
	Name     string                  `json:"name"`
	Portable benchBurstyPortableJSON `json:"portable"`
	Timing   benchBurstyTimingJSON   `json:"timing"`
}

// runBurstyIngest replays one synthetic insert stream through the durable
// single-node resolver and the networked coordinator, once per batch size,
// chunked through the amortized ApplyBatch path. Every run must resolve to
// the identical state; what changes is the amortized cost — journal
// appends on the durable leg, wire round trips on the networked leg — and
// the batch=64 amortization over per-op must hold the >= 8x floor.
func runBurstyIngest(entities int, seed int64, workers int, out benchOutput) error {
	c, _, err := er.GenerateDirty(er.GenConfig{Seed: seed, Entities: entities, MaxDuplicates: 2})
	if err != nil {
		return err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ops := make([]er.StreamOp, 0, c.Len())
	for _, d := range c.All() {
		ops = append(ops, er.StreamOp{Kind: er.StreamInsert, URI: d.URI, Source: d.Source, Attrs: d.Attrs})
	}
	ctx := context.Background()
	matcher := func() *er.Matcher { return &er.Matcher{Sim: &er.TokenJaccard{}, Threshold: 0.5} }
	fmt.Printf("bursty ingestion: %d insert ops, seed %d, batch sizes %v, %d workers, %d shards networked\n",
		len(ops), seed, burstySizes, workers, burstyShards)

	apply := func(r er.Resolver, size int) (time.Duration, error) {
		t0 := time.Now()
		for at := 0; at < len(ops); at += size {
			if err := r.ApplyBatch(ctx, ops[at:min(at+size, len(ops))]); err != nil {
				return 0, err
			}
		}
		return time.Since(t0), nil
	}

	runDurable := func(size int) (er.StreamingStats, er.StreamingPerf, time.Duration, error) {
		walDir, err := os.MkdirTemp("", "erbench-bursty-wal-")
		if err != nil {
			return er.StreamingStats{}, er.StreamingPerf{}, 0, err
		}
		defer os.RemoveAll(walDir)
		r, err := er.Open(ctx, er.Config{
			Kind: er.Dirty, Blocker: &er.TokenBlocking{}, Matcher: matcher(), Workers: workers,
			Dir: walDir, Durable: er.StreamingDurable{SnapshotEvery: entities / 4, NoSync: true},
		})
		if err != nil {
			return er.StreamingStats{}, er.StreamingPerf{}, 0, err
		}
		defer r.Close()
		wall, err := apply(r, size)
		if err != nil {
			return er.StreamingStats{}, er.StreamingPerf{}, 0, err
		}
		st, err := r.Stats()
		if err != nil {
			return er.StreamingStats{}, er.StreamingPerf{}, 0, err
		}
		return st, r.(er.PerfReporter).Perf(), wall, nil
	}

	runNetworked := func(size int) (er.StreamingStats, er.StreamingPerf, time.Duration, error) {
		fail := func(err error) (er.StreamingStats, er.StreamingPerf, time.Duration, error) {
			return er.StreamingStats{}, er.StreamingPerf{}, 0, err
		}
		shardCfg := er.Config{
			Kind: er.Dirty, Blocker: &er.TokenBlocking{}, Matcher: matcher(), Workers: workers,
			Shards: burstyShards,
		}
		var servers []*er.ShardServer
		defer func() {
			for _, s := range servers {
				s.Close()
			}
		}()
		addrs := make([]string, burstyShards)
		for i := range addrs {
			srv, err := er.NewShardServer("", shardCfg, i)
			if err != nil {
				return fail(err)
			}
			servers = append(servers, srv)
			lis, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return fail(err)
			}
			go srv.Serve(lis)
			addrs[i] = lis.Addr().String()
		}
		coDir, err := os.MkdirTemp("", "erbench-bursty-co-")
		if err != nil {
			return fail(err)
		}
		defer os.RemoveAll(coDir)
		coCfg := shardCfg
		coCfg.Shards = 0
		coCfg.Addrs = addrs
		coCfg.Dir = coDir
		co, err := er.Open(ctx, coCfg)
		if err != nil {
			return fail(err)
		}
		defer co.Close()
		wall, err := apply(co, size)
		if err != nil {
			return fail(err)
		}
		st, err := co.Stats()
		if err != nil {
			return fail(err)
		}
		return st, co.(er.PerfReporter).Perf(), wall, nil
	}

	key := func(size int) string { return fmt.Sprintf("b%d", size) }
	nsPerOp := func(d time.Duration) int64 { return d.Nanoseconds() / int64(len(ops)) }
	var want er.StreamingStats
	identical := true
	legs := []struct {
		name string
		run  func(int) (er.StreamingStats, er.StreamingPerf, time.Duration, error)
		cost func(benchPerfJSON) int64
		unit string
	}{
		{"durable", runDurable, func(p benchPerfJSON) int64 { return p.JournalAppends }, "journal appends"},
		{"networked", runNetworked, func(p benchPerfJSON) int64 { return p.TransportRoundTrips }, "round trips"},
	}
	perf := map[string]map[string]benchPerfJSON{}
	timing := map[string]map[string]benchTimingJSON{}
	for _, leg := range legs {
		perf[leg.name] = map[string]benchPerfJSON{}
		timing[leg.name] = map[string]benchTimingJSON{}
		fmt.Printf("\n%-12s %12s %10s %16s %14s\n", leg.name, "wall", "ops/sec", leg.unit, "amortization")
		for _, size := range burstySizes {
			st, p, wall, err := leg.run(size)
			if err != nil {
				return fmt.Errorf("%s batch=%d: %w", leg.name, size, err)
			}
			if want == (er.StreamingStats{}) {
				want = st
			} else if st != want {
				identical = false
			}
			pj := perfJSON(p)
			perf[leg.name][key(size)] = pj
			timing[leg.name][key(size)] = benchTimingJSON{WallNS: wall.Nanoseconds(), NSPerOp: nsPerOp(wall)}
			ratio := float64(leg.cost(perf[leg.name][key(1)])) / float64(leg.cost(pj))
			fmt.Printf("batch=%-6d %12v %10.0f %16d %13.1fx\n", size, wall.Round(time.Microsecond),
				float64(len(ops))/wall.Seconds(), leg.cost(pj), ratio)
		}
	}
	if !identical {
		return fmt.Errorf("batched replays diverged: the resolved state must be identical at every batch size")
	}
	appendRatio := float64(perf["durable"][key(1)].JournalAppends) / float64(perf["durable"][key(64)].JournalAppends)
	rtRatio := float64(perf["networked"][key(1)].TransportRoundTrips) / float64(perf["networked"][key(64)].TransportRoundTrips)
	fmt.Printf("\nidentical=true append_amortization_64=%.1fx round_trip_amortization_64=%.1fx\n", appendRatio, rtRatio)
	if appendRatio < burstyAmortizationFloor || rtRatio < burstyAmortizationFloor {
		return fmt.Errorf("batch=64 amortization collapsed: journal appends %.1fx, round trips %.1fx (floor %.0fx)",
			appendRatio, rtRatio, burstyAmortizationFloor)
	}

	if out.jsonPath == "" && out.baseline == "" {
		return nil
	}
	payload := benchBurstyJSON{
		Schema: benchSchema,
		Name:   "bursty-ingest",
		Portable: benchBurstyPortableJSON{
			Entities:                c.Len(),
			Seed:                    seed,
			Shards:                  burstyShards,
			Ops:                     len(ops),
			Counters:                benchCountersJSON{Comparisons: want.Comparisons, Matches: want.Matches},
			Identical:               identical,
			Durable:                 perf["durable"],
			Networked:               perf["networked"],
			AppendAmortization64:    appendRatio,
			RoundTripAmortization64: rtRatio,
		},
		Timing: benchBurstyTimingJSON{
			Workers:   workers,
			Durable:   timing["durable"],
			Networked: timing["networked"],
		},
	}
	return out.emit(&payload)
}

// concurrentReaderFleets are the -concurrent reader counts; the scaling
// assertion compares the largest fleet's aggregate read QPS against the
// single reader's. concurrentReads is the fixed per-reader read count, so
// aggregate work grows with the fleet and QPS measures lock sharing, not
// queue depth.
var concurrentReaderFleets = []int{1, 4, 16}

const (
	concurrentReads = 2000
	// concurrentPreloadShare of the stream is applied before the measured
	// run; the writer streams the rest while the readers hammer.
	concurrentPreloadShare = 0.7
	// concurrentScalingFloor is the in-run assertion: on a multi-core host
	// the largest fleet's aggregate read throughput must be at least this
	// multiple of the single reader's.
	concurrentScalingFloor = 3.0
)

// benchConcurrentPortableJSON identifies the -concurrent scenario and
// carries its machine-independent results. Readers is the fleet list as a
// string so the identity check compares it exactly (the read-lock counters
// themselves are scheduling-dependent and deliberately absent — see
// er.StreamingPerf.ReadLocks).
type benchConcurrentPortableJSON struct {
	Entities       int               `json:"entities"`
	Seed           int64             `json:"seed"`
	PreloadOps     int               `json:"preload_ops"`
	LiveOps        int               `json:"live_ops"`
	ReadsPerReader int               `json:"reads_per_reader"`
	Readers        string            `json:"readers"`
	Counters       benchCountersJSON `json:"counters"`
	Identical      bool              `json:"identical"`
}

// benchConcurrentRunJSON is one reader fleet's measured run.
type benchConcurrentRunJSON struct {
	Readers     int     `json:"readers"`
	Reads       int     `json:"reads"`
	WallNS      int64   `json:"wall_ns"`
	QPS         float64 `json:"qps"`
	P50NS       int64   `json:"p50_ns"`
	P99NS       int64   `json:"p99_ns"`
	WriteOps    int     `json:"write_ops"`
	WriteWallNS int64   `json:"write_wall_ns"`
}

// benchConcurrentTimingJSON is the -concurrent wall-clock section.
type benchConcurrentTimingJSON struct {
	Workers         int                               `json:"workers"`
	GOMAXPROCS      int                               `json:"gomaxprocs"`
	Runs            map[string]benchConcurrentRunJSON `json:"runs"`
	Speedup         float64                           `json:"speedup"`
	ScalingAsserted bool                              `json:"scaling_asserted"`
}

// benchConcurrentJSON is the machine-readable -concurrent payload
// (BENCH_concurrent.json).
type benchConcurrentJSON struct {
	Schema   int                         `json:"schema"`
	Name     string                      `json:"name"`
	Portable benchConcurrentPortableJSON `json:"portable"`
	Timing   benchConcurrentTimingJSON   `json:"timing"`
}

// runConcurrentBench measures how the read path scales across cores: for
// each reader fleet it opens a fresh resolver, preloads 70% of the
// synthetic stream through the amortized batch path, then races a writer
// streaming the remaining ops against R reader goroutines each executing a
// fixed mixed read script (lookup/same-as via Query, plus stats).
// Aggregate read QPS across fleets is the scaling measure; every run must
// finish in the state a sequential replay produces (asserted — concurrent
// readers must not perturb resolution), and on a multi-core host the
// largest fleet must clear the >= 3x scaling floor over the single reader.
func runConcurrentBench(entities int, seed int64, workers int, out benchOutput) error {
	c, _, err := er.GenerateDirty(er.GenConfig{Seed: seed, Entities: entities, MaxDuplicates: 2})
	if err != nil {
		return err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	all := c.All()
	preN := int(float64(len(all)) * concurrentPreloadShare)
	liveN := len(all) - preN
	uris := make([]string, preN)
	for i, d := range all[:preN] {
		uris[i] = d.URI
	}
	ctx := context.Background()
	open := func() (er.Resolver, error) {
		return er.Open(ctx, er.Config{
			Kind: er.Dirty, Blocker: &er.TokenBlocking{},
			Matcher: &er.Matcher{Sim: &er.TokenJaccard{}, Threshold: 0.5}, Workers: workers,
		})
	}
	preload := func(r er.Resolver) error {
		ops := make([]er.StreamOp, preN)
		for i, d := range all[:preN] {
			ops[i] = er.StreamOp{Kind: er.StreamInsert, URI: d.URI, Source: d.Source, Attrs: d.Attrs}
		}
		for at := 0; at < len(ops); at += 256 {
			if err := r.ApplyBatch(ctx, ops[at:min(at+256, len(ops))]); err != nil {
				return err
			}
		}
		return nil
	}
	fmt.Printf("concurrent read path: %d descriptions (%d preloaded, %d streamed live), seed %d, %d workers, GOMAXPROCS %d, %d reads/reader\n",
		len(all), preN, liveN, seed, workers, runtime.GOMAXPROCS(0), concurrentReads)

	// The sequential baseline every concurrent run must resolve to.
	ref, err := open()
	if err != nil {
		return err
	}
	if err := preload(ref); err != nil {
		ref.Close()
		return fmt.Errorf("baseline preload: %w", err)
	}
	for _, d := range all[preN:] {
		if _, err := ref.Insert(ctx, d); err != nil {
			ref.Close()
			return fmt.Errorf("baseline: %w", err)
		}
	}
	want, err := ref.Stats()
	ref.Close()
	if err != nil {
		return err
	}

	runFleet := func(readers int) (benchConcurrentRunJSON, error) {
		r, err := open()
		if err != nil {
			return benchConcurrentRunJSON{}, err
		}
		defer r.Close()
		if err := preload(r); err != nil {
			return benchConcurrentRunJSON{}, fmt.Errorf("preload: %w", err)
		}
		var (
			writeWall time.Duration
			writeErr  error
			writerWG  sync.WaitGroup
		)
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			t0 := time.Now()
			for _, d := range all[preN:] {
				if _, err := r.Insert(ctx, d); err != nil {
					writeErr = err
					return
				}
			}
			writeWall = time.Since(t0)
		}()
		lats := make([][]time.Duration, readers)
		errs := make([]error, readers)
		var readerWG sync.WaitGroup
		t0 := time.Now()
		for g := 0; g < readers; g++ {
			readerWG.Add(1)
			go func(g int) {
				defer readerWG.Done()
				lat := make([]time.Duration, concurrentReads)
				for i := range lat {
					s := time.Now()
					// 3:1 point reads (lookup + same-as through Query, over
					// the preloaded URIs, always live) to aggregate stats.
					var rerr error
					if i%4 == 3 {
						_, rerr = r.Stats()
					} else {
						_, rerr = r.Query(ctx, er.Query{URI: uris[(g*concurrentReads+i*7)%len(uris)]})
					}
					if rerr != nil {
						errs[g] = rerr
						return
					}
					lat[i] = time.Since(s)
				}
				lats[g] = lat
			}(g)
		}
		readerWG.Wait()
		readWall := time.Since(t0)
		writerWG.Wait()
		if writeErr != nil {
			return benchConcurrentRunJSON{}, fmt.Errorf("writer: %w", writeErr)
		}
		var flat []time.Duration
		for g := range lats {
			if errs[g] != nil {
				return benchConcurrentRunJSON{}, fmt.Errorf("reader %d: %w", g, errs[g])
			}
			flat = append(flat, lats[g]...)
		}
		st, err := r.Stats()
		if err != nil {
			return benchConcurrentRunJSON{}, err
		}
		if st != want {
			return benchConcurrentRunJSON{}, fmt.Errorf("%d-reader run resolved to %+v, sequential baseline %+v — concurrent reads perturbed resolution", readers, st, want)
		}
		sum := summarizeLatency(flat)
		return benchConcurrentRunJSON{
			Readers:     readers,
			Reads:       len(flat),
			WallNS:      readWall.Nanoseconds(),
			QPS:         float64(len(flat)) / readWall.Seconds(),
			P50NS:       sum.P50NS,
			P99NS:       sum.P99NS,
			WriteOps:    liveN,
			WriteWallNS: writeWall.Nanoseconds(),
		}, nil
	}

	runs := map[string]benchConcurrentRunJSON{}
	fmt.Printf("\n%-10s %10s %12s %10s %10s %12s\n", "readers", "reads", "read QPS", "p50", "p99", "write wall")
	fleetNames := make([]string, 0, len(concurrentReaderFleets))
	for _, n := range concurrentReaderFleets {
		run, err := runFleet(n)
		if err != nil {
			return err
		}
		name := fmt.Sprintf("r%d", n)
		fleetNames = append(fleetNames, fmt.Sprint(n))
		runs[name] = run
		fmt.Printf("%-10d %10d %12.0f %10v %10v %12v\n", n, run.Reads, run.QPS,
			time.Duration(run.P50NS).Round(time.Microsecond),
			time.Duration(run.P99NS).Round(time.Microsecond),
			time.Duration(run.WriteWallNS).Round(time.Microsecond))
	}
	single := runs[fmt.Sprintf("r%d", concurrentReaderFleets[0])]
	largest := runs[fmt.Sprintf("r%d", concurrentReaderFleets[len(concurrentReaderFleets)-1])]
	speedup := largest.QPS / single.QPS
	multicore := runtime.GOMAXPROCS(0) >= 4
	fmt.Printf("\nidentical=true read_scaling=%.2fx (%d readers vs 1)\n", speedup, largest.Readers)
	if multicore {
		if speedup < concurrentScalingFloor {
			return fmt.Errorf("read throughput at %d readers is %.2fx the single reader (floor %.1fx on %d cores) — the read path stopped sharing",
				largest.Readers, speedup, concurrentScalingFloor, runtime.GOMAXPROCS(0))
		}
		fmt.Printf("scaling floor %.1fx asserted on %d cores\n", concurrentScalingFloor, runtime.GOMAXPROCS(0))
	} else {
		fmt.Printf("scaling floor not asserted: GOMAXPROCS %d < 4 (single-core hosts cannot show read parallelism)\n", runtime.GOMAXPROCS(0))
	}

	if out.jsonPath == "" && out.baseline == "" {
		return nil
	}
	payload := benchConcurrentJSON{
		Schema: benchSchema,
		Name:   "concurrent",
		Portable: benchConcurrentPortableJSON{
			Entities:       c.Len(),
			Seed:           seed,
			PreloadOps:     preN,
			LiveOps:        liveN,
			ReadsPerReader: concurrentReads,
			Readers:        strings.Join(fleetNames, ","),
			Counters:       benchCountersJSON{Comparisons: want.Comparisons, Matches: want.Matches},
			Identical:      true,
		},
		Timing: benchConcurrentTimingJSON{
			Workers:         workers,
			GOMAXPROCS:      runtime.GOMAXPROCS(0),
			Runs:            runs,
			Speedup:         speedup,
			ScalingAsserted: multicore,
		},
	}
	return out.emit(&payload)
}
