// Command erbench runs the reproduction experiment suite E1–E12 (see
// DESIGN.md §3) and prints the result tables that EXPERIMENTS.md records.
// With -parallel it instead benchmarks the concurrent pipeline engine
// against the sequential pipeline on a synthetic workload and prints the
// per-phase comparison. With -streaming-meta it replays a synthetic insert
// stream through the streaming resolver with and without live
// meta-blocking and reports throughput, the pruning ratio (comparisons
// saved by the live weighted blocking graph), and the durable leg: WAL
// persistence throughput plus crash-recovery time (snapshot restore + tail
// replay). Adding -json FILE also writes the -streaming-meta measurement as
// machine-readable JSON (e.g. BENCH_streaming.json) so the perf trajectory
// accumulates data points.
//
// With -streaming-shards N it replays the same insert stream through the
// single-node and the N-shard sharded streaming resolver, asserts the two
// are bit-identical, and reports throughput plus the durable leg
// (per-shard group-committed WAL persistence and shard-wise recovery);
// -json then writes BENCH_sharded.json.
//
// With -serve it loads the generated collection into an er.Open resolver,
// fronts it with the HTTP/JSON query service, and measures per-endpoint
// request latency (p50/p99/mean over loopback); -json then writes
// BENCH_serve.json.
//
// Usage:
//
//	erbench [-experiment E1|E2|...|all] [-scale small|medium] [-seed N]
//	erbench -parallel [-shards N] [-workers N] [-scale small|medium] [-seed N]
//	erbench -streaming-meta [-meta-weight CBS|ECBS|JS] [-meta-prune WEP|WNP]
//	        [-workers N] [-scale small|medium] [-seed N] [-json FILE]
//	erbench -streaming-shards N [-workers N] [-scale small|medium] [-seed N]
//	        [-json FILE]
//	erbench -serve [-workers N] [-scale small|medium] [-seed N] [-json FILE]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"time"

	"entityres/er"
	"entityres/internal/experiments"
	"entityres/internal/serve"
)

func main() {
	var (
		which    = flag.String("experiment", "all", "experiment id (E1..E12) or 'all'")
		scale    = flag.String("scale", "small", "experiment scale: small or medium")
		seed     = flag.Int64("seed", 42, "deterministic data-generation seed")
		parallel = flag.Bool("parallel", false, "benchmark the concurrent pipeline engine against the sequential pipeline")
		shards   = flag.Int("shards", 0, "blocking shards for -parallel (0 = GOMAXPROCS)")
		workers  = flag.Int("workers", 0, "matcher/weighting workers for -parallel (0 = GOMAXPROCS)")

		streamMeta = flag.Bool("streaming-meta", false, "benchmark the streaming resolver with and without live meta-blocking and report the pruning ratio")
		metaWeight = flag.String("meta-weight", "CBS", "stream-safe weight scheme for -streaming-meta: CBS, ECBS or JS")
		metaPrune  = flag.String("meta-prune", "WEP", "stream-safe prune scheme for -streaming-meta: WEP or WNP")

		streamShards = flag.Int("streaming-shards", 0, "benchmark the sharded streaming resolver with N key-hash shards against the single-node resolver (bit-equality asserted)")
		serveBench   = flag.Bool("serve", false, "benchmark the HTTP/JSON query service: per-endpoint latency (p50/p99) over a loaded resolver")
		jsonPath     = flag.String("json", "", "with -streaming-meta, -streaming-shards or -serve: also write the machine-readable benchmark result to this file, e.g. BENCH_streaming.json / BENCH_sharded.json / BENCH_serve.json")
	)
	flag.Parse()
	var sc experiments.Scale
	switch strings.ToLower(*scale) {
	case "small":
		sc = experiments.Small
	case "medium":
		sc = experiments.Medium
	default:
		fmt.Fprintf(os.Stderr, "erbench: unknown scale %q (want small or medium)\n", *scale)
		os.Exit(2)
	}
	if *jsonPath != "" && !*streamMeta && *streamShards <= 0 && !*serveBench {
		fmt.Fprintln(os.Stderr, "erbench: -json requires -streaming-meta, -streaming-shards or -serve")
		os.Exit(2)
	}
	if *parallel {
		if err := runParallelComparison(sc, *seed, *shards, *workers); err != nil {
			fmt.Fprintf(os.Stderr, "erbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *streamMeta {
		entities := 1500
		if sc == experiments.Medium {
			entities = 6000
		}
		if err := runStreamingMeta(entities, *seed, *workers, *metaWeight, *metaPrune, *jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "erbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *streamShards > 0 {
		entities := 1500
		if sc == experiments.Medium {
			entities = 6000
		}
		if err := runStreamingShards(entities, *seed, *workers, *streamShards, *jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "erbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *serveBench {
		entities := 1500
		if sc == experiments.Medium {
			entities = 6000
		}
		if err := runServeBench(entities, *seed, *workers, *jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "erbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	ran := 0
	for _, e := range experiments.All() {
		if *which != "all" && !strings.EqualFold(*which, e.ID) {
			continue
		}
		ran++
		t0 := time.Now()
		res, err := e.Run(sc, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "erbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if err := res.Table.Fprint(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "erbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(t0).Round(time.Millisecond))
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "erbench: unknown experiment %q\n", *which)
		os.Exit(2)
	}
}

// runParallelComparison runs the same pipeline configuration through the
// sequential core pipeline and the concurrent engine, asserts the match
// sets are identical, and prints per-phase wall times with the speedup.
func runParallelComparison(sc experiments.Scale, seed int64, shards, workers int) error {
	entities := 1500
	if sc == experiments.Medium {
		entities = 6000
	}
	c, gt, err := er.GenerateDirty(er.GenConfig{Seed: seed, Entities: entities, MaxDuplicates: 2})
	if err != nil {
		return err
	}
	cfg := er.Pipeline{
		Blocker:    &er.TokenBlocking{},
		Processors: []er.BlockProcessor{&er.BlockFiltering{}},
		Meta:       &er.MetaBlocker{Weight: er.ECBS, Prune: er.WEP},
		Matcher:    &er.Matcher{Sim: &er.TokenJaccard{}, Threshold: 0.5},
	}
	// Report the resolved parallelism, not the raw flags, so recorded
	// output says what the measured run actually used.
	opt := er.ParallelOptions{Workers: workers, Shards: shards}.Resolve()
	fmt.Printf("pipeline comparison: %d descriptions, seed %d, GOMAXPROCS %d, shards %d, workers %d\n",
		c.Len(), seed, runtime.GOMAXPROCS(0), opt.Shards, opt.Workers)

	// Discarded warm-up pass: the first run through the data pays allocator
	// growth and cache warm-up that whichever run goes second would
	// otherwise inherit for free, biasing the reported speedup.
	warmCfg := cfg
	if _, err := warmCfg.Run(c); err != nil {
		return fmt.Errorf("warm-up: %w", err)
	}

	seqCfg := cfg
	t0 := time.Now()
	seqRes, err := seqCfg.Run(c)
	if err != nil {
		return fmt.Errorf("sequential: %w", err)
	}
	seqTotal := time.Since(t0)

	eng := er.NewParallelPipeline(cfg, opt)
	t0 = time.Now()
	parRes, err := eng.Run(context.Background(), c)
	if err != nil {
		return fmt.Errorf("parallel: %w", err)
	}
	parTotal := time.Since(t0)

	if !sameMatches(seqRes.Matches, parRes.Matches) {
		return fmt.Errorf("match sets differ: sequential %d, parallel %d", seqRes.Matches.Len(), parRes.Matches.Len())
	}

	fmt.Printf("\n%-16s %14s %14s\n", "phase", "sequential", "parallel")
	par := phaseIndex(parRes)
	for _, ph := range seqRes.Phases {
		fmt.Printf("%-16s %14v %14v\n", ph.Name, ph.Duration.Round(time.Microsecond), par[ph.Name].Round(time.Microsecond))
	}
	fmt.Printf("%-16s %14v %14v\n", "total", seqTotal.Round(time.Microsecond), parTotal.Round(time.Microsecond))
	fmt.Printf("\nmatches=%d comparisons=%d identical=true speedup=%.2fx recall=%.3f\n",
		parRes.Matches.Len(), parRes.Comparisons,
		float64(seqTotal)/float64(parTotal),
		er.ComparePairs(parRes.Matches, gt).Recall)
	return nil
}

// benchRunJSON is one measured replay in the machine-readable output.
type benchRunJSON struct {
	Comparisons int64 `json:"comparisons"`
	Matches     int   `json:"matches"`
	WallNS      int64 `json:"wall_ns"`
	NSPerOp     int64 `json:"ns_per_op"`
}

// benchRecoveryJSON measures the durable leg: persist the stream through
// the WAL, then reopen the directory (snapshot restore + tail replay).
type benchRecoveryJSON struct {
	Ops             int64  `json:"ops"`
	SnapshotEvery   int    `json:"snapshot_every"`
	SnapshotSegment uint64 `json:"snapshot_segment"`
	ReplayedRecords int    `json:"replayed_records"`
	PersistWallNS   int64  `json:"persist_wall_ns"`
	PersistNSPerOp  int64  `json:"persist_ns_per_op"`
	RecoveryWallNS  int64  `json:"recovery_wall_ns"`
}

// benchJSON is the machine-readable -json payload (BENCH_streaming.json):
// the perf trajectory's data points for the streaming resolver.
type benchJSON struct {
	Name                  string            `json:"name"`
	Entities              int               `json:"entities"`
	Seed                  int64             `json:"seed"`
	Workers               int               `json:"workers"`
	Meta                  string            `json:"meta"`
	Frontier              benchRunJSON      `json:"frontier"`
	Pruned                benchRunJSON      `json:"pruned"`
	ComparisonsSavedRatio float64           `json:"comparisons_saved_ratio"`
	Recovery              benchRecoveryJSON `json:"recovery"`
}

// runStreamingMeta replays one synthetic insert stream through two
// streaming resolvers — frontier matching vs. live meta-blocking — and
// reports throughput plus the pruning ratio: the share of matcher
// comparisons the live weighted blocking graph saved. It then persists the
// stream through a WAL-backed resolver and measures crash recovery
// (reopen = snapshot restore + tail replay). With jsonPath set the whole
// measurement is also written as machine-readable JSON.
func runStreamingMeta(entities int, seed int64, workers int, weightNm, pruneNm, jsonPath string) error {
	var weight er.WeightScheme
	switch strings.ToUpper(weightNm) {
	case "CBS":
		weight = er.CBS
	case "ECBS":
		weight = er.ECBS
	case "JS":
		weight = er.JS
	default:
		return fmt.Errorf("-meta-weight %q is not stream-safe (want CBS, ECBS or JS)", weightNm)
	}
	var prune er.PruneScheme
	switch strings.ToUpper(pruneNm) {
	case "WEP":
		prune = er.WEP
	case "WNP":
		prune = er.WNP
	default:
		return fmt.Errorf("-meta-prune %q is not stream-safe (want WEP or WNP)", pruneNm)
	}
	c, _, err := er.GenerateDirty(er.GenConfig{Seed: seed, Entities: entities, MaxDuplicates: 2})
	if err != nil {
		return err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	meta := &er.MetaBlocker{Weight: weight, Prune: prune}
	fmt.Printf("streaming meta-blocking: %d descriptions, seed %d, workers %d, %s\n",
		c.Len(), seed, workers, meta.Name())

	replay := func(meta *er.MetaBlocker) (er.StreamingStats, time.Duration, error) {
		ctx := context.Background()
		r, err := er.Open(ctx, er.Config{
			Kind:    er.Dirty,
			Blocker: &er.TokenBlocking{},
			Matcher: &er.Matcher{Sim: &er.TokenJaccard{}, Threshold: 0.5},
			Workers: workers,
			Meta:    meta,
		})
		if err != nil {
			return er.StreamingStats{}, 0, err
		}
		defer r.Close()
		t0 := time.Now()
		for _, d := range c.All() {
			if _, err := r.Insert(ctx, d); err != nil {
				return er.StreamingStats{}, 0, err
			}
		}
		if meta != nil {
			if err := r.Flush(ctx); err != nil {
				return er.StreamingStats{}, 0, err
			}
		}
		return r.Stats(), time.Since(t0), nil
	}

	base, baseDur, err := replay(nil)
	if err != nil {
		return fmt.Errorf("without meta: %w", err)
	}
	pruned, prunedDur, err := replay(meta)
	if err != nil {
		return fmt.Errorf("with meta: %w", err)
	}

	fmt.Printf("\n%-14s %14s %14s %12s %10s\n", "run", "comparisons", "matches", "wall", "ops/sec")
	opsPerSec := func(d time.Duration) float64 { return float64(c.Len()) / d.Seconds() }
	fmt.Printf("%-14s %14d %14d %12v %10.0f\n", "frontier", base.Comparisons, base.Matches, baseDur.Round(time.Microsecond), opsPerSec(baseDur))
	fmt.Printf("%-14s %14d %14d %12v %10.0f\n", meta.Name(), pruned.Comparisons, pruned.Matches, prunedDur.Round(time.Microsecond), opsPerSec(prunedDur))
	saved := 0.0
	if base.Comparisons > 0 {
		saved = 1 - float64(pruned.Comparisons)/float64(base.Comparisons)
	}
	keptRatio := 0.0
	if pruned.CandidatePairs > 0 {
		keptRatio = float64(pruned.KeptPairs) / float64(pruned.CandidatePairs)
	}
	fmt.Printf("\npruning ratio: %.3f comparisons saved (kept %d of %d candidate pairs, %.3f)\n",
		saved, pruned.KeptPairs, pruned.CandidatePairs, keptRatio)

	// Durable leg: persist the same stream through the WAL-backed resolver,
	// hard-close, and measure recovery. A quarter-stream snapshot cadence
	// leaves a real tail for the reopen to replay.
	walDir, err := os.MkdirTemp("", "erbench-wal-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(walDir)
	durable := er.StreamingDurable{SnapshotEvery: entities / 4, NoSync: true}
	durableCfg := er.Config{
		Kind:    er.Dirty,
		Blocker: &er.TokenBlocking{},
		Matcher: &er.Matcher{Sim: &er.TokenJaccard{}, Threshold: 0.5},
		Workers: workers,
		Dir:     walDir,
		Durable: durable,
	}
	ctx := context.Background()
	pr, err := er.Open(ctx, durableCfg)
	if err != nil {
		return fmt.Errorf("persistent: %w", err)
	}
	t0 := time.Now()
	for _, d := range c.All() {
		if _, err := pr.Insert(ctx, d); err != nil {
			return fmt.Errorf("persistent: %w", err)
		}
	}
	persistDur := time.Since(t0)
	if err := pr.Close(); err != nil {
		return err
	}
	t0 = time.Now()
	re, err := er.Open(ctx, durableCfg)
	if err != nil {
		return fmt.Errorf("recovery: %w", err)
	}
	recoveryDur := time.Since(t0)
	rec := re.(er.DurableReporter).Recovery()[0]
	if st := re.Stats(); st.Live != c.Len() {
		return fmt.Errorf("recovery restored %d live descriptions, want %d", st.Live, c.Len())
	}
	if err := re.Close(); err != nil {
		return err
	}
	fmt.Printf("durable:       persist %v (%.0f ops/sec, unsynced), recovery %v (snapshot at segment %d + %d wal records)\n",
		persistDur.Round(time.Microsecond), opsPerSec(persistDur),
		recoveryDur.Round(time.Microsecond), rec.SnapshotSegment, rec.ReplayedRecords)

	if jsonPath == "" {
		return nil
	}
	nsPerOp := func(d time.Duration) int64 { return d.Nanoseconds() / int64(c.Len()) }
	out := benchJSON{
		Name:     "streaming",
		Entities: c.Len(),
		Seed:     seed,
		Workers:  workers,
		Meta:     meta.Name(),
		Frontier: benchRunJSON{Comparisons: base.Comparisons, Matches: base.Matches,
			WallNS: baseDur.Nanoseconds(), NSPerOp: nsPerOp(baseDur)},
		Pruned: benchRunJSON{Comparisons: pruned.Comparisons, Matches: pruned.Matches,
			WallNS: prunedDur.Nanoseconds(), NSPerOp: nsPerOp(prunedDur)},
		ComparisonsSavedRatio: saved,
		Recovery: benchRecoveryJSON{
			Ops:             int64(c.Len()),
			SnapshotEvery:   durable.SnapshotEvery,
			SnapshotSegment: rec.SnapshotSegment,
			ReplayedRecords: rec.ReplayedRecords,
			PersistWallNS:   persistDur.Nanoseconds(),
			PersistNSPerOp:  nsPerOp(persistDur),
			RecoveryWallNS:  recoveryDur.Nanoseconds(),
		},
	}
	payload, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(payload, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", jsonPath)
	return nil
}

// benchShardRecoveryJSON measures the sharded durable leg: per-shard
// group-committed WAL persistence plus a full reopen (every shard
// restored from its own snapshot + tail).
type benchShardRecoveryJSON struct {
	Ops                int64 `json:"ops"`
	SnapshotEvery      int   `json:"snapshot_every"`
	ReplayedRecordsMax int   `json:"replayed_records_max"`
	PersistWallNS      int64 `json:"persist_wall_ns"`
	PersistNSPerOp     int64 `json:"persist_ns_per_op"`
	RecoveryWallNS     int64 `json:"recovery_wall_ns"`
}

// benchShardedJSON is the machine-readable -json payload of the
// sharded-streaming mode (BENCH_sharded.json).
type benchShardedJSON struct {
	Name      string                 `json:"name"`
	Entities  int                    `json:"entities"`
	Seed      int64                  `json:"seed"`
	Workers   int                    `json:"workers"`
	Shards    int                    `json:"shards"`
	Single    benchRunJSON           `json:"single"`
	Sharded   benchRunJSON           `json:"sharded"`
	Identical bool                   `json:"identical"`
	Speedup   float64                `json:"speedup"`
	Recovery  benchShardRecoveryJSON `json:"recovery"`
}

// runStreamingShards replays one synthetic insert stream through the
// single-node and the N-shard sharded streaming resolver, asserts their
// matches AND comparison counts are identical (the cross-shard
// differential contract), and reports throughput plus the sharded durable
// leg: per-shard group-committed WAL persistence and whole-deployment
// recovery. With jsonPath set the measurement is written as JSON.
func runStreamingShards(entities int, seed int64, workers, shards int, jsonPath string) error {
	c, _, err := er.GenerateDirty(er.GenConfig{Seed: seed, Entities: entities, MaxDuplicates: 2})
	if err != nil {
		return err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("sharded streaming: %d descriptions, seed %d, %d shards, %d workers/shard\n",
		c.Len(), seed, shards, workers)
	ctx := context.Background()
	matcher := func() *er.Matcher { return &er.Matcher{Sim: &er.TokenJaccard{}, Threshold: 0.5} }

	single, err := er.Open(ctx, er.Config{
		Kind: er.Dirty, Blocker: &er.TokenBlocking{}, Matcher: matcher(), Workers: workers,
	})
	if err != nil {
		return err
	}
	defer single.Close()
	t0 := time.Now()
	for _, d := range c.All() {
		if _, err := single.Insert(ctx, d); err != nil {
			return fmt.Errorf("single-node: %w", err)
		}
	}
	singleDur := time.Since(t0)
	singleStats := single.Stats()

	sh, err := er.Open(ctx, er.Config{
		Kind: er.Dirty, Blocker: &er.TokenBlocking{}, Matcher: matcher(), Workers: workers, Shards: shards,
	})
	if err != nil {
		return err
	}
	defer sh.Close()
	t0 = time.Now()
	for _, d := range c.All() {
		if _, err := sh.Insert(ctx, d); err != nil {
			return fmt.Errorf("sharded: %w", err)
		}
	}
	shardedDur := time.Since(t0)
	shardedStats := sh.Stats()

	identical := singleStats == shardedStats && sameSameAs(ctx, single, sh, c)
	if !identical {
		return fmt.Errorf("sharded state diverges from single-node: %+v vs %+v", shardedStats, singleStats)
	}
	opsPerSec := func(d time.Duration) float64 { return float64(c.Len()) / d.Seconds() }
	fmt.Printf("\n%-14s %14s %14s %12s %10s\n", "run", "comparisons", "matches", "wall", "ops/sec")
	fmt.Printf("%-14s %14d %14d %12v %10.0f\n", "single-node", singleStats.Comparisons, singleStats.Matches,
		singleDur.Round(time.Microsecond), opsPerSec(singleDur))
	fmt.Printf("%-14s %14d %14d %12v %10.0f\n", fmt.Sprintf("sharded n=%d", shards), shardedStats.Comparisons,
		shardedStats.Matches, shardedDur.Round(time.Microsecond), opsPerSec(shardedDur))
	speedup := float64(singleDur) / float64(shardedDur)
	fmt.Printf("\nidentical=true speedup=%.2fx\n", speedup)

	// Durable leg: persist through per-shard group-committed WALs, abandon
	// (hard stop), and measure the whole-deployment reopen — each shard
	// restores from its own snapshot + tail.
	walDir, err := os.MkdirTemp("", "erbench-sharded-wal-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(walDir)
	durable := er.StreamingDurable{SnapshotEvery: entities / 4, NoSync: true}
	shardedCfg := er.Config{
		Kind: er.Dirty, Blocker: &er.TokenBlocking{}, Matcher: matcher(), Workers: workers,
		Shards: shards, Dir: walDir, Durable: durable,
	}
	pr, err := er.Open(ctx, shardedCfg)
	if err != nil {
		return fmt.Errorf("persistent sharded: %w", err)
	}
	t0 = time.Now()
	for _, d := range c.All() {
		if _, err := pr.Insert(ctx, d); err != nil {
			return fmt.Errorf("persistent sharded: %w", err)
		}
	}
	persistDur := time.Since(t0)
	pr.(er.DurableReporter).Abandon()
	t0 = time.Now()
	re, err := er.Open(ctx, shardedCfg)
	if err != nil {
		return fmt.Errorf("sharded recovery: %w", err)
	}
	recoveryDur := time.Since(t0)
	replayedMax := 0
	for _, rec := range re.(er.DurableReporter).Recovery() {
		if rec.ReplayedRecords > replayedMax {
			replayedMax = rec.ReplayedRecords
		}
	}
	if st := re.Stats(); st.Live != c.Len() {
		return fmt.Errorf("sharded recovery restored %d live descriptions, want %d", st.Live, c.Len())
	}
	if err := re.Close(); err != nil {
		return err
	}
	fmt.Printf("durable:       persist %v (%.0f ops/sec, group-committed, unsynced), recovery %v (max %d wal records per shard)\n",
		persistDur.Round(time.Microsecond), opsPerSec(persistDur),
		recoveryDur.Round(time.Microsecond), replayedMax)

	if jsonPath == "" {
		return nil
	}
	nsPerOp := func(d time.Duration) int64 { return d.Nanoseconds() / int64(c.Len()) }
	out := benchShardedJSON{
		Name:     "sharded-streaming",
		Entities: c.Len(),
		Seed:     seed,
		Workers:  workers,
		Shards:   shards,
		Single: benchRunJSON{Comparisons: singleStats.Comparisons, Matches: singleStats.Matches,
			WallNS: singleDur.Nanoseconds(), NSPerOp: nsPerOp(singleDur)},
		Sharded: benchRunJSON{Comparisons: shardedStats.Comparisons, Matches: shardedStats.Matches,
			WallNS: shardedDur.Nanoseconds(), NSPerOp: nsPerOp(shardedDur)},
		Identical: identical,
		Speedup:   speedup,
		Recovery: benchShardRecoveryJSON{
			Ops:                int64(c.Len()),
			SnapshotEvery:      durable.SnapshotEvery,
			ReplayedRecordsMax: replayedMax,
			PersistWallNS:      persistDur.Nanoseconds(),
			PersistNSPerOp:     nsPerOp(persistDur),
			RecoveryWallNS:     recoveryDur.Nanoseconds(),
		},
	}
	payload, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(payload, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", jsonPath)
	return nil
}

func phaseIndex(res *er.PipelineResult) map[string]time.Duration {
	m := make(map[string]time.Duration, len(res.Phases))
	for _, ph := range res.Phases {
		m[ph.Name] = ph.Duration
	}
	return m
}

// sameSameAs asserts two deployments answer identical SameAs sets for
// every description — a pairwise bit-equality check through the v2 query
// interface (handles are assigned identically across forms).
func sameSameAs(ctx context.Context, a, b er.Resolver, c *er.Collection) bool {
	for _, d := range c.All() {
		ra, errA := a.Query(ctx, er.Query{URI: d.URI})
		rb, errB := b.Query(ctx, er.Query{URI: d.URI})
		if (errA != nil) != (errB != nil) {
			return false
		}
		if errA != nil {
			continue
		}
		if ra.ID != rb.ID || !reflect.DeepEqual(ra.SameAs, rb.SameAs) {
			return false
		}
	}
	return true
}

// benchLatencyJSON is one endpoint's measured latency distribution.
type benchLatencyJSON struct {
	Requests int   `json:"requests"`
	P50NS    int64 `json:"p50_ns"`
	P99NS    int64 `json:"p99_ns"`
	MeanNS   int64 `json:"mean_ns"`
}

// benchServeJSON is the machine-readable -serve payload (BENCH_serve.json).
type benchServeJSON struct {
	Name      string                      `json:"name"`
	Entities  int                         `json:"entities"`
	Seed      int64                       `json:"seed"`
	Workers   int                         `json:"workers"`
	Endpoints map[string]benchLatencyJSON `json:"endpoints"`
}

// runServeBench loads a generated collection into an er.Open resolver,
// fronts it with the HTTP/JSON query service, and measures per-endpoint
// request latency (p50/p99) over the loopback.
func runServeBench(entities int, seed int64, workers int, jsonPath string) error {
	c, _, err := er.GenerateDirty(er.GenConfig{Seed: seed, Entities: entities, MaxDuplicates: 2})
	if err != nil {
		return err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ctx := context.Background()
	r, err := er.Open(ctx, er.Config{
		Kind: er.Dirty, Blocker: &er.TokenBlocking{},
		Matcher: &er.Matcher{Sim: &er.TokenJaccard{}, Threshold: 0.5}, Workers: workers,
	})
	if err != nil {
		return err
	}
	defer r.Close()
	uris := make([]string, 0, c.Len())
	for _, d := range c.All() {
		if _, err := r.Insert(ctx, d); err != nil {
			return err
		}
		uris = append(uris, d.URI)
	}

	srv := serve.NewServer(r, serve.Options{})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(lis) }()
	base := "http://" + lis.Addr().String()
	client := &http.Client{Timeout: 10 * time.Second}
	fmt.Printf("query service latency: %d descriptions, seed %d, %d requests/endpoint over loopback\n",
		c.Len(), seed, serveRequests)

	measure := func(path func(i int) string) (benchLatencyJSON, error) {
		// Warm-up: connection pool, first-hit allocations.
		for i := 0; i < 32; i++ {
			resp, err := client.Get(base + path(i))
			if err != nil {
				return benchLatencyJSON{}, err
			}
			resp.Body.Close()
		}
		lat := make([]time.Duration, serveRequests)
		for i := range lat {
			t0 := time.Now()
			resp, err := client.Get(base + path(i))
			if err != nil {
				return benchLatencyJSON{}, err
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			lat[i] = time.Since(t0)
			if resp.StatusCode != http.StatusOK {
				return benchLatencyJSON{}, fmt.Errorf("%s answered %d", path(i), resp.StatusCode)
			}
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		var sum time.Duration
		for _, l := range lat {
			sum += l
		}
		return benchLatencyJSON{
			Requests: len(lat),
			P50NS:    lat[len(lat)/2].Nanoseconds(),
			P99NS:    lat[len(lat)*99/100].Nanoseconds(),
			MeanNS:   (sum / time.Duration(len(lat))).Nanoseconds(),
		}, nil
	}

	uri := func(i int) string { return url.QueryEscape(uris[i%len(uris)]) }
	endpoints := map[string]func(i int) string{
		"lookup":  func(i int) string { return "/v1/lookup?uri=" + uri(i) },
		"same-as": func(i int) string { return "/v1/same-as?uri=" + uri(i) },
		"cluster": func(i int) string { return "/v1/cluster?uri=" + uri(i) },
		"stats":   func(i int) string { return "/v1/stats" },
	}
	results := map[string]benchLatencyJSON{}
	fmt.Printf("\n%-10s %10s %10s %10s\n", "endpoint", "p50", "p99", "mean")
	for _, name := range []string{"lookup", "same-as", "cluster", "stats"} {
		m, err := measure(endpoints[name])
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		results[name] = m
		fmt.Printf("%-10s %10v %10v %10v\n", name,
			time.Duration(m.P50NS).Round(time.Microsecond),
			time.Duration(m.P99NS).Round(time.Microsecond),
			time.Duration(m.MeanNS).Round(time.Microsecond))
	}

	dctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		return err
	}
	if err := <-served; err != nil {
		return err
	}

	if jsonPath == "" {
		return nil
	}
	out := benchServeJSON{
		Name: "serve", Entities: c.Len(), Seed: seed, Workers: workers,
		Endpoints: results,
	}
	payload, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(payload, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", jsonPath)
	return nil
}

// serveRequests is the measured request count per endpoint for -serve.
const serveRequests = 800

func sameMatches(a, b *er.Matches) bool {
	if a.Len() != b.Len() {
		return false
	}
	same := true
	a.Each(func(p er.Pair) bool {
		same = b.Contains(p.A, p.B)
		return same
	})
	return same
}
