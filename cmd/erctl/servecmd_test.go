package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"entityres/er"
)

func parseDeploy(t *testing.T, args ...string) (*deployFlags, error) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	df := registerDeployFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return df, nil
}

func TestDeployFlagsConfig(t *testing.T) {
	df, _ := parseDeploy(t)
	cfg, err := df.config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Kind != er.Dirty || cfg.Blocker == nil || cfg.Matcher == nil || cfg.Meta != nil {
		t.Fatalf("default config = %+v", cfg)
	}

	df, _ = parseDeploy(t, "-kind", "clean-clean", "-blocker", "qgrams",
		"-weight", "ECBS", "-prune", "WEP", "-threshold", "0.6", "-workers", "4")
	cfg, err = df.config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Kind != er.CleanClean || cfg.Meta == nil || cfg.Workers != 4 || cfg.Matcher.Threshold != 0.6 {
		t.Fatalf("tuned config = %+v", cfg)
	}

	for _, bad := range [][]string{
		{"-kind", "nope"},
		{"-blocker", "sortednbhd"}, // not streamable
		{"-weight", "bogus"},
		{"-weight", "CBS", "-prune", "bogus"},
	} {
		df, _ = parseDeploy(t, bad...)
		if _, err := df.config(); err == nil {
			t.Errorf("config accepted %v", bad)
		}
	}
}

func TestDeploymentName(t *testing.T) {
	for want, cfg := range map[string]er.Config{
		"single-node":          {},
		"single-node, durable": {Dir: "x"},
		"sharded, 3 shards":    {Shards: 3},
		"networked, 2 shards":  {Addrs: []string{"a", "b"}},
	} {
		if got := deploymentName(cfg); got != want {
			t.Errorf("deploymentName = %q, want %q", got, want)
		}
	}
}

// freePort reserves an ephemeral loopback address and releases it for the
// subcommand under test to bind.
func freePort(t *testing.T) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	lis.Close()
	return addr
}

// TestServeNetworkedEndToEnd boots the full two-process topology in one
// test process: two `erctl shard` servers, then `erctl serve` preloading an
// op log over them, queried over HTTP, shut down by the same SIGINT a
// production deployment would receive. The subcommands install their own
// signal handlers, so raising the signal here exercises the real drain
// path without killing the test binary.
func TestServeNetworkedEndToEnd(t *testing.T) {
	ops := []er.StreamOp{
		{Kind: er.StreamInsert, URI: "u:a", Attrs: []er.Attribute{{Name: "name", Value: "alice smith"}}},
		{Kind: er.StreamInsert, URI: "u:b", Attrs: []er.Attribute{{Name: "name", Value: "alice smith"}}},
		{Kind: er.StreamInsert, URI: "u:c", Attrs: []er.Attribute{{Name: "name", Value: "carol jones"}}},
	}
	var buf bytes.Buffer
	if err := er.WriteStreamOps(&buf, ops); err != nil {
		t.Fatal(err)
	}
	opsPath := filepath.Join(t.TempDir(), "ops.jsonl")
	if err := os.WriteFile(opsPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	shardAddrs := []string{freePort(t), freePort(t)}
	httpAddr := freePort(t)
	var wg sync.WaitGroup
	for i, addr := range shardAddrs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			shardCmd([]string{"-addr", addr, "-index", strconv.Itoa(i), "-shards", "2"})
		}()
	}
	for _, addr := range shardAddrs {
		waitListening(t, addr)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		serveCmd([]string{"-addr", httpAddr, "-ops", opsPath,
			"-shard-addrs", strings.Join(shardAddrs, ","), "-request-timeout", "5s"})
	}()
	waitListening(t, httpAddr)

	var res struct {
		URI    string `json:"uri"`
		SameAs []struct {
			URI string `json:"uri"`
		} `json:"same_as"`
	}
	getJSON(t, "http://"+httpAddr+"/v1/same-as?uri=u:a", &res)
	if res.URI != "u:a" || len(res.SameAs) != 1 {
		t.Fatalf("same-as over the networked deployment = %+v", res)
	}
	var st struct {
		Inserts int64 `json:"inserts"`
		Live    int   `json:"live"`
	}
	getJSON(t, "http://"+httpAddr+"/v1/stats", &st)
	if st.Inserts != 3 || st.Live != 3 {
		t.Fatalf("stats over the networked deployment = %+v", st)
	}

	// One SIGINT reaches every subcommand, exactly like ^C on a process
	// group: the HTTP service drains, the shards close, everyone returns.
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("subcommands did not shut down on SIGINT")
	}
}

func waitListening(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		conn, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err == nil {
			conn.Close()
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("nothing listening on %s", addr)
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatal(err)
	}
}

// TestDeployFlagsSources checks -src0/-src1 render into cfg.Sources with
// the right indices, and that -src1 alone is refused.
func TestDeployFlagsSources(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	df := registerDeployFlags(fs)
	if err := fs.Parse([]string{"-src0", "a.csv", "-src1", "b.jsonl", "-idcol", "key"}); err != nil {
		t.Fatal(err)
	}
	cfg, err := df.config()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Sources) != 2 ||
		cfg.Sources[0].Path != "a.csv" || cfg.Sources[0].Index != 0 ||
		cfg.Sources[1].Path != "b.jsonl" || cfg.Sources[1].Index != 1 ||
		cfg.Sources[0].Tabular.IDColumn != "key" {
		t.Fatalf("sources = %+v", cfg.Sources)
	}

	fs2 := flag.NewFlagSet("test", flag.ContinueOnError)
	df2 := registerDeployFlags(fs2)
	if err := fs2.Parse([]string{"-src1", "b.jsonl"}); err != nil {
		t.Fatal(err)
	}
	if _, err := df2.config(); err == nil {
		t.Fatal("-src1 without -src0 accepted")
	}
}
