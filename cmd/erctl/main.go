// Command erctl runs a configurable end-to-end resolution pipeline over
// N-Triples, CSV or JSON-lines knowledge bases and reports the matches
// and, when a truth file is given, the output quality.
//
// Usage:
//
//	erctl -kb0 FILE [-kb1 FILE] [-truth FILE]
//	      [-format rdf|csv|jsonl] [-idcol NAME] [-export DIR]
//	      [-blocker token|attrclustering|standard|qgrams|sortednbhd]
//	      [-weight ARCS|CBS|ECBS|JS|EJS] [-prune WNP|WEP|CEP|CNP]
//	      [-threshold T] [-mode batch|swoosh|iterblock|progressive|streaming]
//	      [-budget N] [-print-matches]
//
//	erctl watch -ops FILE [-kind dirty|cleanclean]
//	      [-src0 FILE [-src1 FILE] [-idcol NAME]]
//	      [-blocker token|standard|qgrams] [-threshold T] [-workers N]
//	      [-weight CBS|ECBS|JS] [-prune WEP|WNP]
//	      [-stats-every N] [-print-matches]
//	      [-batch N] [-stream-shards N]
//	      [-wal DIR [-snapshot-every N] [-wal-nosync]]
//
//	erctl shard -addr HOST:PORT -index I -shards N [-dir DIR]
//	      [-kind ...] [-blocker ...] [-threshold T] [-workers N]
//	      [-weight ...] [-prune ...] [-snapshot-every N] [-wal-nosync]
//
//	erctl serve -addr HOST:PORT [-ops FILE]
//	      [-src0 FILE [-src1 FILE] [-idcol NAME]]
//	      [-stream-shards N | -shard-addrs A,B,...] [-wal DIR]
//	      [-max-inflight N] [-request-timeout D] [-drain-timeout D]
//	      [-max-batch-ops N] [-max-queued-ops N]
//	      [-kind ...] [-blocker ...] [-threshold T] [-workers N]
//	      [-weight ...] [-prune ...] [-snapshot-every N] [-wal-nosync]
//
// With one -kb0 the collection is dirty (deduplication); with -kb1 it is
// clean-clean (interlinking). KB files may be N-Triples (.nt), CSV (.csv)
// or JSON-lines (.jsonl/.ndjson) — the format is inferred from the
// extension unless -format overrides it, and -idcol names the tabular ID
// column when it is not "id". The truth file holds one tab-separated URI
// pair per line. With -export DIR a clean-clean run also writes one
// interlinking export per source (matches.source0.tsv, matches.source1.tsv:
// each line a source URI and its comma-joined partner URIs).
//
// The watch and serve subcommands accept the same source files via -src0
// and -src1: the sources are preloaded through the deployment's batch
// ingest path before the ops log replays, and a durable restart skips the
// already-loaded prefix exactly like ops-log resumption.
//
// The watch subcommand replays a JSON-lines operation log (one
// {"op":"insert|update|delete","uri":...,"source":...,"attrs":[...]}
// object per line) through the streaming resolver, maintaining matches and
// clusters incrementally and reporting state as the stream advances. With
// -batch N the log is applied in chunks of N operations through the
// amortized batch path (one lock, one journal append, one fan-out per
// chunk) — results are bit-exact with the per-op replay. With
// -stream-shards N the blocking-key space is hash-partitioned across N
// shard resolvers with coordinator-merged reads — results are bit-exact
// with the single-node replay for every N. With -wal DIR the resolver is
// durable: every op is journaled to a write-ahead log in DIR (one
// shard-%03d WAL directory per shard when sharded, group-commit fsync
// batching) before it is applied and compacted into snapshots, and
// restarting the same command resumes the replay where the previous run
// stopped — crash recovery restores the journaled state and the
// already-applied prefix of the ops log is skipped.
//
// The shard subcommand runs one shard server of a networked deployment:
// it owns a partition of the blocking-key space and answers the routed op
// stream a coordinator drives over the wire protocol. The serve subcommand
// opens any deployment form — single-node, sharded, or a networked
// coordinator over -shard-addrs — optionally preloads an ops log, and
// exposes it as the HTTP/JSON query service (lookup, same-as, cluster,
// stats) with admission control and graceful drain on SIGINT/SIGTERM.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"entityres/er"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "watch":
			watch(os.Args[2:])
			return
		case "serve":
			serveCmd(os.Args[2:])
			return
		case "shard":
			shardCmd(os.Args[2:])
			return
		}
	}
	var (
		kb0       = flag.String("kb0", "", "first KB: N-Triples, CSV or JSON-lines (required)")
		kb1       = flag.String("kb1", "", "second KB for clean-clean resolution")
		format    = flag.String("format", "", "KB format: rdf, csv or jsonl ('' = infer from extension)")
		idcol     = flag.String("idcol", "", "ID column of tabular KBs ('' = \"id\")")
		export    = flag.String("export", "", "directory for per-source interlinking exports (clean-clean only)")
		truth     = flag.String("truth", "", "tab-separated URI pairs for evaluation")
		blockerNm = flag.String("blocker", "token", "blocking method")
		weightNm  = flag.String("weight", "ARCS", "meta-blocking weight scheme ('' disables)")
		pruneNm   = flag.String("prune", "WNP", "meta-blocking prune scheme")
		threshold = flag.Float64("threshold", 0.4, "match similarity threshold")
		mode      = flag.String("mode", "batch", "batch, swoosh, iterblock or progressive")
		budget    = flag.Int64("budget", 0, "progressive comparison budget (0 = unlimited)")
		printAll  = flag.Bool("print-matches", false, "print matched URI pairs")
	)
	flag.Parse()
	if *kb0 == "" {
		fmt.Fprintln(os.Stderr, "erctl: -kb0 is required")
		os.Exit(2)
	}
	kind := er.Dirty
	if *kb1 != "" {
		kind = er.CleanClean
	}
	c := er.NewCollection(kind)
	if err := load(c, *kb0, 0, *format, *idcol); err != nil {
		fail(err)
	}
	if *kb1 != "" {
		if err := load(c, *kb1, 1, *format, *idcol); err != nil {
			fail(err)
		}
	}
	if *export != "" && kind != er.CleanClean {
		fail(fmt.Errorf("-export needs a clean-clean run (pass -kb1)"))
	}

	pipe := &er.Pipeline{
		Processors: []er.BlockProcessor{&er.SizePurge{}},
		Matcher:    &er.Matcher{Sim: &er.TokenJaccard{}, Threshold: *threshold},
	}
	switch strings.ToLower(*blockerNm) {
	case "token":
		pipe.Blocker = &er.TokenBlocking{}
	case "attrclustering":
		pipe.Blocker = &er.AttributeClustering{}
	case "standard":
		pipe.Blocker = &er.StandardBlocking{}
	case "qgrams":
		pipe.Blocker = &er.QGramsBlocking{}
	case "sortednbhd":
		pipe.Blocker = &er.SortedNeighborhood{}
	default:
		fail(fmt.Errorf("unknown blocker %q", *blockerNm))
	}
	if *weightNm != "" {
		w, err := parseWeight(*weightNm)
		if err != nil {
			fail(err)
		}
		p, err := parsePrune(*pruneNm)
		if err != nil {
			fail(err)
		}
		pipe.Meta = &er.MetaBlocker{Weight: w, Prune: p}
	}
	switch strings.ToLower(*mode) {
	case "batch":
		pipe.Mode = er.Batch
	case "swoosh":
		pipe.Mode = er.MergingIterative
		pipe.Matcher.Sim = &er.TokenContainment{}
	case "iterblock":
		pipe.Mode = er.IterativeBlocks
		pipe.Matcher.Sim = &er.TokenContainment{}
	case "progressive":
		pipe.Mode = er.ProgressiveMode
		pipe.Budget = *budget
	case "streaming":
		// Streaming replays the loaded collection through the incremental
		// resolver. Block cleaning is collection-global and dropped.
		// Meta-blocking streams for the stream-safe subset (WEP/WNP ×
		// CBS/ECBS/JS): an explicitly chosen configuration is passed
		// through — a batch-only scheme fails with its specific validation
		// error — while the implicit batch default (ARCS/WNP) is dropped
		// so plain streaming runs keep working.
		pipe.Mode = er.StreamingMode
		if len(pipe.Processors) > 0 {
			fmt.Fprintln(os.Stderr, "erctl: streaming mode ignores block cleaning")
		}
		pipe.Processors = nil
		// Only -weight opts in: like the watch subcommand, a lone -prune
		// leaves the batch-default (ARCS) weight in place, which would turn
		// a previously working streaming run into a validation failure the
		// user never asked for.
		explicitMeta := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "weight" {
				explicitMeta = true
			}
		})
		if pipe.Meta != nil && !explicitMeta {
			fmt.Fprintln(os.Stderr, "erctl: streaming mode drops the default batch-only meta-blocking; pass -weight CBS|ECBS|JS -prune WEP|WNP to prune the live frontier")
			pipe.Meta = nil
		}
	default:
		fail(fmt.Errorf("unknown mode %q", *mode))
	}

	res, err := pipe.Run(c)
	if err != nil {
		fail(err)
	}
	fmt.Printf("descriptions: %d, blocks: %d, comparisons: %d (exhaustive %d)\n",
		c.Len(), res.Blocks.Len(), res.Comparisons, c.TotalComparisons())
	fmt.Printf("matches: %d pairs, %d clusters\n", res.Matches.Len(), len(res.Clusters()))
	for _, ph := range res.Phases {
		fmt.Printf("phase %-16s %v\n", ph.Name, ph.Duration)
	}
	if *printAll {
		res.Matches.Each(func(p er.Pair) bool {
			fmt.Printf("%s\t%s\n", c.Get(p.A).URI, c.Get(p.B).URI)
			return true
		})
	}
	if *truth != "" {
		gt, err := loadTruth(c, *truth)
		if err != nil {
			fail(err)
		}
		fmt.Println("pair quality:   ", er.ComparePairs(res.Matches, gt))
		fmt.Println("cluster quality:", er.EvaluateClusters(c, res.Matches, gt))
	}
	if *export != "" {
		if err := exportSourceMatches(*export, c, res.Matches); err != nil {
			fail(err)
		}
	}
}

// exportSourceMatches writes each source's view of the interlinking
// result: one matches.sourceN.tsv per source, each line a URI of that
// source and the comma-joined sorted URIs of its partners.
func exportSourceMatches(dir string, c *er.Collection, m *er.Matches) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for s := 0; s < 2; s++ {
		path := filepath.Join(dir, fmt.Sprintf("matches.source%d.tsv", s))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		err = er.WriteSourceMatches(f, c, m, s)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("exported %s\n", path)
	}
	return nil
}

// watch replays an operation log through an er.Open deployment.
func watch(args []string) {
	fs := flag.NewFlagSet("erctl watch", flag.ExitOnError)
	df := registerDeployFlags(fs)
	var (
		opsPath    = fs.String("ops", "", "JSON-lines operation log (required)")
		batchN     = fs.Int("batch", 1, "apply the log in chunks of N ops through the amortized batch path (1 = per-op; results are bit-exact for every N)")
		statsEvery = fs.Int("stats-every", 0, "print resolver stats every N ops (0 = only at end)")
		printAll   = fs.Bool("print-matches", false, "print final matched URI pairs")
		shardsN    = fs.Int("stream-shards", 0, "shard the blocking-key space across N resolvers (0 or 1 = single-node; results are bit-exact for every N)")
		walDir     = fs.String("wal", "", "durable WAL directory: journal every op, compact into snapshots, and resume an interrupted replay of the same -ops log after restart (per-shard subdirectories with -stream-shards)")
	)
	_ = fs.Parse(args)
	if *opsPath == "" {
		fmt.Fprintln(os.Stderr, "erctl watch: -ops is required")
		os.Exit(2)
	}

	f, err := os.Open(*opsPath)
	if err != nil {
		fail(err)
	}
	ops, err := er.ReadStreamOps(bufio.NewReader(f))
	f.Close()
	if err != nil {
		fail(err)
	}

	cfg, err := df.config()
	if err != nil {
		fail(err)
	}
	cfg.Dir = *walDir
	cfg.Shards = *shardsN
	r, err := er.Open(context.Background(), cfg)
	if err != nil {
		fail(err)
	}
	// Durable replay: every applied op is journaled under -wal, and a
	// restart resumes where the previous run stopped — recovery restores
	// the journal's state, and the ops it already covers are skipped.
	// Resumption assumes the same -ops log; the skip count is the number
	// of operations the recovered state acknowledges beyond the -src0/-src1
	// records, which Open preloads as the stream's fixed prefix.
	srcRecords := 0
	if len(cfg.Sources) > 0 {
		n, err := er.SourceRecords(cfg.Sources)
		if err != nil {
			fail(err)
		}
		srcRecords = n
		fmt.Printf("preloaded %d source records\n", srcRecords)
	}
	skipped := 0
	stats := func() er.StreamingStats {
		st, err := r.Stats()
		if err != nil {
			fail(err)
		}
		return st
	}
	if st := stats(); int(st.Inserts+st.Updates+st.Deletes) > srcRecords {
		applied := int(st.Inserts+st.Updates+st.Deletes) - srcRecords
		if applied > len(ops) {
			fail(fmt.Errorf("wal %s holds %d applied ops but %s has only %d — resuming a different log?", *walDir, applied, *opsPath, len(ops)))
		}
		skipped = applied
		detail := ""
		if dr, ok := r.(er.DurableReporter); ok {
			replayed := 0
			for _, rec := range dr.Recovery() {
				replayed += rec.ReplayedRecords
			}
			detail = fmt.Sprintf(" (%d wal records replayed)", replayed)
		}
		fmt.Printf("resumed from %s: %d ops already applied%s\n", *walDir, applied, detail)
	}
	ctx := context.Background()
	if *batchN > 1 {
		// Amortized replay: the pending suffix goes through ApplyBatch in
		// chunks, each admitted whole (one journal append, one fan-out).
		// Stats are reported at chunk boundaries.
		for at := skipped; at < len(ops); at += *batchN {
			chunk := ops[at:min(at+*batchN, len(ops))]
			if err := r.ApplyBatch(ctx, chunk); err != nil {
				fail(fmt.Errorf("batch at op %d (%d ops): %w", at+1, len(chunk), err))
			}
			if n := at + len(chunk); *statsEvery > 0 && n < len(ops) && n/(*statsEvery) > at/(*statsEvery) {
				fmt.Printf("after %4d ops: %s\n", n, statsLine(stats(), cfg.Meta != nil))
			}
		}
	} else {
		for i, op := range ops[skipped:] {
			n := skipped + i + 1
			if err := applyStreamOp(ctx, r, op); err != nil {
				fail(fmt.Errorf("op %d (%s %s): %w", n, op.Kind, op.URI, err))
			}
			if *statsEvery > 0 && n%*statsEvery == 0 {
				fmt.Printf("after %4d ops: %s\n", n, statsLine(stats(), cfg.Meta != nil))
			}
		}
	}
	fmt.Printf("final: %s\n", statsLine(stats(), cfg.Meta != nil))
	if *printAll {
		printMatches(ctx, r, ops)
	}
	if err := r.Close(); err != nil {
		fail(err)
	}
}

// applyStreamOp executes one URI-addressed operation through the v2
// Resolver interface: updates and deletes select their handle by URI.
func applyStreamOp(ctx context.Context, r er.Resolver, op er.StreamOp) error {
	switch op.Kind {
	case er.StreamInsert:
		_, err := r.Insert(ctx, &er.Description{URI: op.URI, Source: op.Source, Attrs: op.Attrs})
		return err
	case er.StreamUpdate:
		res, err := r.Query(ctx, er.Query{URI: op.URI})
		if err != nil {
			return err
		}
		return r.Update(ctx, res.ID, op.Attrs)
	case er.StreamDelete:
		res, err := r.Query(ctx, er.Query{URI: op.URI})
		if err != nil {
			return err
		}
		return r.Delete(ctx, res.ID)
	}
	return fmt.Errorf("unknown op kind %v", op.Kind)
}

// printMatches lists each matched URI pair once, walking the stream's
// insert URIs in order and querying their current match partners.
func printMatches(ctx context.Context, r er.Resolver, ops []er.StreamOp) {
	seen := map[string]bool{}
	for _, op := range ops {
		if op.Kind != er.StreamInsert || seen[op.URI] {
			continue
		}
		seen[op.URI] = true
		res, err := r.Query(ctx, er.Query{URI: op.URI})
		if err != nil {
			continue // deleted later in the stream
		}
		for _, partner := range res.SameAs {
			if partner <= res.ID {
				continue // the lower handle prints the pair
			}
			p, err := r.Query(ctx, er.Query{ID: partner})
			if err != nil {
				continue
			}
			fmt.Printf("%s\t%s\n", res.Description.URI, p.Description.URI)
		}
	}
}

// statsLine renders resolver stats, extending them with the live pruning
// counters when meta-blocking is active.
func statsLine(st er.StreamingStats, meta bool) string {
	if !meta {
		return st.String()
	}
	return fmt.Sprintf("%s kept=%d/%d candidate pairs", st, st.KeptPairs, st.CandidatePairs)
}

// load streams one KB file into the collection, inferring the parser from
// the extension unless format overrides it.
func load(c *er.Collection, path string, source int, format, idcol string) error {
	return er.ReadSource(c, er.Source{
		Path:    path,
		Format:  er.SourceFormat(strings.ToLower(format)),
		Index:   source,
		Tabular: er.TabularOptions{IDColumn: idcol},
	})
}

func loadTruth(c *er.Collection, path string) (*er.Matches, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return er.ReadTruthTSV(c, bufio.NewReader(f))
}

func parseWeight(s string) (er.WeightScheme, error) {
	switch strings.ToUpper(s) {
	case "CBS":
		return er.CBS, nil
	case "ECBS":
		return er.ECBS, nil
	case "JS":
		return er.JS, nil
	case "EJS":
		return er.EJS, nil
	case "ARCS":
		return er.ARCS, nil
	}
	return 0, fmt.Errorf("unknown weight scheme %q", s)
}

func parsePrune(s string) (er.PruneScheme, error) {
	switch strings.ToUpper(s) {
	case "WEP":
		return er.WEP, nil
	case "CEP":
		return er.CEP, nil
	case "WNP":
		return er.WNP, nil
	case "CNP":
		return er.CNP, nil
	}
	return 0, fmt.Errorf("unknown prune scheme %q", s)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "erctl:", err)
	os.Exit(1)
}
