// Command erctl runs a configurable end-to-end resolution pipeline over
// N-Triples knowledge bases and reports the matches and, when a truth file
// is given, the output quality.
//
// Usage:
//
//	erctl -kb0 FILE [-kb1 FILE] [-truth FILE]
//	      [-blocker token|attrclustering|standard|qgrams|sortednbhd]
//	      [-weight ARCS|CBS|ECBS|JS|EJS] [-prune WNP|WEP|CEP|CNP]
//	      [-threshold T] [-mode batch|swoosh|iterblock|progressive]
//	      [-budget N] [-print-matches]
//
// With one -kb0 the collection is dirty (deduplication); with -kb1 it is
// clean-clean (interlinking). The truth file holds one tab-separated URI
// pair per line.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"entityres/er"
)

func main() {
	var (
		kb0       = flag.String("kb0", "", "first KB, N-Triples (required)")
		kb1       = flag.String("kb1", "", "second KB for clean-clean resolution")
		truth     = flag.String("truth", "", "tab-separated URI pairs for evaluation")
		blockerNm = flag.String("blocker", "token", "blocking method")
		weightNm  = flag.String("weight", "ARCS", "meta-blocking weight scheme ('' disables)")
		pruneNm   = flag.String("prune", "WNP", "meta-blocking prune scheme")
		threshold = flag.Float64("threshold", 0.4, "match similarity threshold")
		mode      = flag.String("mode", "batch", "batch, swoosh, iterblock or progressive")
		budget    = flag.Int64("budget", 0, "progressive comparison budget (0 = unlimited)")
		printAll  = flag.Bool("print-matches", false, "print matched URI pairs")
	)
	flag.Parse()
	if *kb0 == "" {
		fmt.Fprintln(os.Stderr, "erctl: -kb0 is required")
		os.Exit(2)
	}
	kind := er.Dirty
	if *kb1 != "" {
		kind = er.CleanClean
	}
	c := er.NewCollection(kind)
	if err := load(c, *kb0, 0); err != nil {
		fail(err)
	}
	if *kb1 != "" {
		if err := load(c, *kb1, 1); err != nil {
			fail(err)
		}
	}

	pipe := &er.Pipeline{
		Processors: []er.BlockProcessor{&er.SizePurge{}},
		Matcher:    &er.Matcher{Sim: &er.TokenJaccard{}, Threshold: *threshold},
	}
	switch strings.ToLower(*blockerNm) {
	case "token":
		pipe.Blocker = &er.TokenBlocking{}
	case "attrclustering":
		pipe.Blocker = &er.AttributeClustering{}
	case "standard":
		pipe.Blocker = &er.StandardBlocking{}
	case "qgrams":
		pipe.Blocker = &er.QGramsBlocking{}
	case "sortednbhd":
		pipe.Blocker = &er.SortedNeighborhood{}
	default:
		fail(fmt.Errorf("unknown blocker %q", *blockerNm))
	}
	if *weightNm != "" {
		w, err := parseWeight(*weightNm)
		if err != nil {
			fail(err)
		}
		p, err := parsePrune(*pruneNm)
		if err != nil {
			fail(err)
		}
		pipe.Meta = &er.MetaBlocker{Weight: w, Prune: p}
	}
	switch strings.ToLower(*mode) {
	case "batch":
		pipe.Mode = er.Batch
	case "swoosh":
		pipe.Mode = er.MergingIterative
		pipe.Matcher.Sim = &er.TokenContainment{}
	case "iterblock":
		pipe.Mode = er.IterativeBlocks
		pipe.Matcher.Sim = &er.TokenContainment{}
	case "progressive":
		pipe.Mode = er.ProgressiveMode
		pipe.Budget = *budget
	default:
		fail(fmt.Errorf("unknown mode %q", *mode))
	}

	res, err := pipe.Run(c)
	if err != nil {
		fail(err)
	}
	fmt.Printf("descriptions: %d, blocks: %d, comparisons: %d (exhaustive %d)\n",
		c.Len(), res.Blocks.Len(), res.Comparisons, c.TotalComparisons())
	fmt.Printf("matches: %d pairs, %d clusters\n", res.Matches.Len(), len(res.Clusters()))
	for _, ph := range res.Phases {
		fmt.Printf("phase %-16s %v\n", ph.Name, ph.Duration)
	}
	if *printAll {
		res.Matches.Each(func(p er.Pair) bool {
			fmt.Printf("%s\t%s\n", c.Get(p.A).URI, c.Get(p.B).URI)
			return true
		})
	}
	if *truth != "" {
		gt, err := loadTruth(c, *truth)
		if err != nil {
			fail(err)
		}
		fmt.Println("pair quality:   ", er.ComparePairs(res.Matches, gt))
		fmt.Println("cluster quality:", er.EvaluateClusters(c, res.Matches, gt))
	}
}

func load(c *er.Collection, path string, source int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return er.ReadNTriples(c, bufio.NewReader(f), source)
}

func loadTruth(c *er.Collection, path string) (*er.Matches, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return er.ReadTruthTSV(c, bufio.NewReader(f))
}

func parseWeight(s string) (er.WeightScheme, error) {
	switch strings.ToUpper(s) {
	case "CBS":
		return er.CBS, nil
	case "ECBS":
		return er.ECBS, nil
	case "JS":
		return er.JS, nil
	case "EJS":
		return er.EJS, nil
	case "ARCS":
		return er.ARCS, nil
	}
	return 0, fmt.Errorf("unknown weight scheme %q", s)
}

func parsePrune(s string) (er.PruneScheme, error) {
	switch strings.ToUpper(s) {
	case "WEP":
		return er.WEP, nil
	case "CEP":
		return er.CEP, nil
	case "WNP":
		return er.WNP, nil
	case "CNP":
		return er.CNP, nil
	}
	return 0, fmt.Errorf("unknown prune scheme %q", s)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "erctl:", err)
	os.Exit(1)
}
