// The serve and shard subcommands: the networked deployment's two process
// roles, plus the deployment flags every subcommand shares.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"entityres/er"
	"entityres/internal/serve"
)

// deployFlags is the pipeline configuration shared by watch, serve and
// shard: what to resolve and how, independent of where it runs.
type deployFlags struct {
	kind      *string
	blocker   *string
	threshold *float64
	workers   *int
	weight    *string
	prune     *string
	snapEvery *int
	noSync    *bool
	src0      *string
	src1      *string
	idcol     *string
}

func registerDeployFlags(fs *flag.FlagSet) *deployFlags {
	return &deployFlags{
		kind:      fs.String("kind", "dirty", "dirty or cleanclean"),
		blocker:   fs.String("blocker", "token", "streamable blocking method: token, standard or qgrams"),
		threshold: fs.Float64("threshold", 0.4, "match similarity threshold"),
		workers:   fs.Int("workers", 0, "delta-matching workers (0 = 1)"),
		weight:    fs.String("weight", "", "live meta-blocking weight scheme: CBS, ECBS or JS ('' disables)"),
		prune:     fs.String("prune", "WNP", "live meta-blocking prune scheme: WEP or WNP"),
		snapEvery: fs.Int("snapshot-every", 0, "ops between WAL snapshot compactions (0 = default; durable deployments only)"),
		noSync:    fs.Bool("wal-nosync", false, "skip the per-op fsync on the WAL (durable deployments only)"),
		src0:      fs.String("src0", "", "source file to preload as source 0: N-Triples, CSV or JSON-lines by extension"),
		src1:      fs.String("src1", "", "source file to preload as source 1 (requires -src0)"),
		idcol:     fs.String("idcol", "", "ID column of tabular source files ('' = \"id\")"),
	}
}

// config renders the flags as an er.Config; the caller fills in the
// deployment axes (Dir, Shards, Addrs).
func (d *deployFlags) config() (er.Config, error) {
	cfg := er.Config{
		Matcher: &er.Matcher{Sim: &er.TokenJaccard{}, Threshold: *d.threshold},
		Workers: *d.workers,
		Durable: er.StreamingDurable{SnapshotEvery: *d.snapEvery, NoSync: *d.noSync},
	}
	switch strings.ToLower(*d.kind) {
	case "dirty":
		cfg.Kind = er.Dirty
	case "cleanclean", "clean-clean":
		cfg.Kind = er.CleanClean
	default:
		return cfg, fmt.Errorf("unknown kind %q", *d.kind)
	}
	switch strings.ToLower(*d.blocker) {
	case "token":
		cfg.Blocker = &er.TokenBlocking{}
	case "standard":
		cfg.Blocker = &er.StandardBlocking{}
	case "qgrams":
		cfg.Blocker = &er.QGramsBlocking{}
	default:
		return cfg, fmt.Errorf("blocker %q cannot stream (need token, standard or qgrams)", *d.blocker)
	}
	if *d.weight != "" {
		w, err := parseWeight(*d.weight)
		if err != nil {
			return cfg, err
		}
		p, err := parsePrune(*d.prune)
		if err != nil {
			return cfg, err
		}
		// er.Open validates stream-safety (WEP/WNP × CBS/ECBS/JS) and
		// reports the specific reason a batch-only scheme cannot stream.
		cfg.Meta = &er.MetaBlocker{Weight: w, Prune: p}
	}
	if *d.src1 != "" && *d.src0 == "" {
		return cfg, fmt.Errorf("-src1 requires -src0")
	}
	if *d.src0 != "" {
		cfg.Sources = append(cfg.Sources, er.Source{
			Path: *d.src0, Tabular: er.TabularOptions{IDColumn: *d.idcol},
		})
	}
	if *d.src1 != "" {
		cfg.Sources = append(cfg.Sources, er.Source{
			Path: *d.src1, Index: 1, Tabular: er.TabularOptions{IDColumn: *d.idcol},
		})
	}
	return cfg, nil
}

// shardCmd runs one shard server of a networked deployment until
// SIGINT/SIGTERM.
func shardCmd(args []string) {
	fs := flag.NewFlagSet("erctl shard", flag.ExitOnError)
	df := registerDeployFlags(fs)
	var (
		addr   = fs.String("addr", "", "listen address, e.g. 127.0.0.1:7701 (required)")
		index  = fs.Int("index", 0, "this shard's index in the deployment")
		shards = fs.Int("shards", 0, "total shard count of the deployment (required)")
		dir    = fs.String("dir", "", "durable WAL directory for this shard ('' = in-memory)")
	)
	_ = fs.Parse(args)
	if *addr == "" || *shards < 1 {
		fmt.Fprintln(os.Stderr, "erctl shard: -addr and -shards are required")
		os.Exit(2)
	}
	cfg, err := df.config()
	if err != nil {
		fail(err)
	}
	cfg.Shards = *shards
	srv, err := er.NewShardServer(*dir, cfg, *index)
	if err != nil {
		fail(err)
	}
	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	fmt.Printf("shard %d/%d serving on %s (wal: %s)\n", *index, *shards, lis.Addr(), orMemory(*dir))
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()
	select {
	case <-ctx.Done():
		fmt.Println("shutting down")
		if err := srv.Close(); err != nil {
			fail(err)
		}
		<-done
	case err := <-done:
		if err != nil {
			fail(err)
		}
	}
}

// serveCmd opens a deployment, optionally preloads an ops log, and exposes
// it as the HTTP/JSON query service until SIGINT/SIGTERM, then drains.
func serveCmd(args []string) {
	fs := flag.NewFlagSet("erctl serve", flag.ExitOnError)
	df := registerDeployFlags(fs)
	var (
		addr       = fs.String("addr", "127.0.0.1:7700", "HTTP listen address")
		opsPath    = fs.String("ops", "", "JSON-lines operation log to preload before serving")
		shardsN    = fs.Int("stream-shards", 0, "in-process shards (0 or 1 = single-node)")
		shardAddrs = fs.String("shard-addrs", "", "comma-separated shard server addresses: drive a networked deployment (see erctl shard)")
		walDir     = fs.String("wal", "", "durable WAL directory (the coordinator journal with -shard-addrs)")
		maxInFl    = fs.Int("max-inflight", 0, "admission control: max concurrently admitted requests (0 = default 64)")
		reqTimeout = fs.Duration("request-timeout", 0, "admission control: per-request deadline (0 = default 5s)")
		drainTime  = fs.Duration("drain-timeout", 0, "graceful drain bound on shutdown (0 = default 10s)")
		maxBatch   = fs.Int("max-batch-ops", 0, "bulk ingest: max operations per POST /v1/ops request, larger batches get 413 (0 = default 4096)")
		maxQueued  = fs.Int("max-queued-ops", 0, "bulk ingest back-pressure: max admitted-but-unapplied operations before 429 + Retry-After (0 = default 8192)")
		coalWindow = fs.Duration("coalesce-window", 0, "ingest coalescing: time window singleton POST /v1/ops requests wait to merge into one server-formed batch (0 with -coalesce-max 0 = off; set either to enable, window defaults to 2ms)")
		coalMax    = fs.Int("coalesce-max", 0, "ingest coalescing: batch size that flushes the window early (0 with -coalesce-window 0 = off; defaults to 256 when enabled)")
	)
	_ = fs.Parse(args)
	cfg, err := df.config()
	if err != nil {
		fail(err)
	}
	cfg.Dir = *walDir
	cfg.Shards = *shardsN
	if *shardAddrs != "" {
		cfg.Addrs = strings.Split(*shardAddrs, ",")
		if cfg.Shards == 0 {
			cfg.Shards = len(cfg.Addrs)
		}
	}
	ctx := context.Background()
	r, err := er.Open(ctx, cfg)
	if err != nil {
		fail(err)
	}
	if *opsPath != "" {
		f, err := os.Open(*opsPath)
		if err != nil {
			fail(err)
		}
		ops, err := er.ReadStreamOps(bufio.NewReader(f))
		f.Close()
		if err != nil {
			fail(err)
		}
		st, err := r.Stats()
		if err != nil {
			fail(err)
		}
		// The -src0/-src1 records are the operation stream's fixed prefix:
		// what the deployment holds beyond them is replayed ops-log state.
		srcRecords := 0
		if len(cfg.Sources) > 0 {
			if srcRecords, err = er.SourceRecords(cfg.Sources); err != nil {
				fail(err)
			}
		}
		skip := int(st.Inserts+st.Updates+st.Deletes) - srcRecords
		if skip < 0 {
			skip = 0
		}
		if skip > len(ops) {
			fail(fmt.Errorf("deployment already holds %d ops but %s has only %d", skip, *opsPath, len(ops)))
		}
		for i, op := range ops[skip:] {
			if err := applyStreamOp(ctx, r, op); err != nil {
				fail(fmt.Errorf("preload op %d (%s %s): %w", skip+i+1, op.Kind, op.URI, err))
			}
		}
		if err := r.Flush(ctx); err != nil {
			fail(err)
		}
		loaded, err := r.Stats()
		if err != nil {
			fail(err)
		}
		fmt.Printf("preloaded %d ops: %s\n", len(ops)-skip, loaded)
	}

	srv := serve.NewServer(r, serve.Options{
		MaxInFlight:    *maxInFl,
		RequestTimeout: *reqTimeout,
		DrainTimeout:   *drainTime,
		MaxBatchOps:    *maxBatch,
		MaxQueuedOps:   *maxQueued,
		CoalesceWindow: *coalWindow,
		CoalesceMax:    *coalMax,
	})
	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	fmt.Printf("query service on http://%s (deployment: %s)\n", lis.Addr(), deploymentName(cfg))
	sctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()
	select {
	case <-sctx.Done():
		fmt.Println("draining")
		dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Drain(dctx); err != nil {
			fail(err)
		}
		<-done
	case err := <-done:
		if err != nil {
			fail(err)
		}
	}
	if err := r.Close(); err != nil {
		fail(err)
	}
}

func deploymentName(cfg er.Config) string {
	switch {
	case len(cfg.Addrs) > 0:
		return fmt.Sprintf("networked, %d shards", len(cfg.Addrs))
	case cfg.Shards > 1:
		return fmt.Sprintf("sharded, %d shards", cfg.Shards)
	case cfg.Dir != "":
		return "single-node, durable"
	}
	return "single-node"
}

func orMemory(dir string) string {
	if dir == "" {
		return "in-memory"
	}
	return dir
}
