package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"entityres/er"
)

func TestParseSchemes(t *testing.T) {
	for name, want := range map[string]er.WeightScheme{
		"cbs": er.CBS, "ECBS": er.ECBS, "js": er.JS, "EJS": er.EJS, "arcs": er.ARCS,
	} {
		got, err := parseWeight(name)
		if err != nil || got != want {
			t.Errorf("parseWeight(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := parseWeight("nope"); err == nil {
		t.Error("parseWeight accepted junk")
	}
	for name, want := range map[string]er.PruneScheme{
		"wep": er.WEP, "CEP": er.CEP, "wnp": er.WNP, "CNP": er.CNP,
	} {
		got, err := parsePrune(name)
		if err != nil || got != want {
			t.Errorf("parsePrune(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := parsePrune("nope"); err == nil {
		t.Error("parsePrune accepted junk")
	}
}

// TestWatchWithLivePruning replays an op log through the watch subcommand
// with live meta-blocking enabled.
func TestWatchWithLivePruning(t *testing.T) {
	ops := []er.StreamOp{
		{Kind: er.StreamInsert, URI: "u:a", Attrs: []er.Attribute{{Name: "name", Value: "alice smith"}}},
		{Kind: er.StreamInsert, URI: "u:b", Attrs: []er.Attribute{{Name: "name", Value: "alice smith"}}},
		{Kind: er.StreamInsert, URI: "u:c", Attrs: []er.Attribute{{Name: "name", Value: "carol jones"}}},
		{Kind: er.StreamDelete, URI: "u:c"},
	}
	var buf bytes.Buffer
	if err := er.WriteStreamOps(&buf, ops); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ops.jsonl")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	watch([]string{"-ops", path, "-weight", "CBS", "-prune", "WEP", "-stats-every", "2", "-print-matches"})
	watch([]string{"-ops", path}) // no pruning path
}

func TestStatsLine(t *testing.T) {
	var st er.StreamingStats
	st.KeptPairs, st.CandidatePairs = 3, 7
	if got := statsLine(st, false); got == "" {
		t.Fatal("empty stats line")
	}
	withMeta := statsLine(st, true)
	if withMeta == "" || withMeta == statsLine(st, false) {
		t.Fatalf("meta stats line %q not extended", withMeta)
	}
}

// TestLoadHelpers covers the KB and truth loading paths.
func TestLoadHelpers(t *testing.T) {
	dir := t.TempDir()
	kb := filepath.Join(dir, "kb.nt")
	nt := `<http://x/a> <http://x/name> "alice" .` + "\n" + `<http://x/b> <http://x/name> "alice" .` + "\n"
	if err := os.WriteFile(kb, []byte(nt), 0o644); err != nil {
		t.Fatal(err)
	}
	c := er.NewCollection(er.Dirty)
	if err := load(c, kb, 0, "", ""); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("loaded %d descriptions, want 2", c.Len())
	}
	truth := filepath.Join(dir, "truth.tsv")
	if err := os.WriteFile(truth, []byte("http://x/a\thttp://x/b\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	gt, err := loadTruth(c, truth)
	if err != nil {
		t.Fatal(err)
	}
	if gt.Len() != 1 {
		t.Fatalf("loaded %d truth pairs, want 1", gt.Len())
	}
	if err := load(c, filepath.Join(dir, "missing.nt"), 0, "", ""); err == nil {
		t.Fatal("missing KB accepted")
	}
	if _, err := loadTruth(c, filepath.Join(dir, "missing.tsv")); err == nil {
		t.Fatal("missing truth accepted")
	}
}

// TestWatchWalResume replays an op log with -wal twice: the first run
// journals everything, the second recovers from the directory and skips the
// already-applied prefix — the resume-after-restart workflow.
func TestWatchWalResume(t *testing.T) {
	ops := []er.StreamOp{
		{Kind: er.StreamInsert, URI: "u:a", Attrs: []er.Attribute{{Name: "name", Value: "alice smith"}}},
		{Kind: er.StreamInsert, URI: "u:b", Attrs: []er.Attribute{{Name: "name", Value: "alice smith"}}},
		{Kind: er.StreamInsert, URI: "u:c", Attrs: []er.Attribute{{Name: "name", Value: "carol jones"}}},
		{Kind: er.StreamUpdate, URI: "u:c", Attrs: []er.Attribute{{Name: "name", Value: "alice smith"}}},
	}
	var buf bytes.Buffer
	if err := er.WriteStreamOps(&buf, ops); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	opsPath := filepath.Join(dir, "ops.jsonl")
	if err := os.WriteFile(opsPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	walDir := filepath.Join(dir, "wal")
	// First run journals all 4 ops; the rerun resumes, skips them all, and
	// leaves the same final state. Runs exercise both the snapshot path
	// (cadence 2 ⇒ snapshots mid-stream) and plain tail replay.
	watch([]string{"-ops", opsPath, "-wal", walDir, "-snapshot-every", "2", "-wal-nosync", "-print-matches"})
	watch([]string{"-ops", opsPath, "-wal", walDir, "-snapshot-every", "2", "-wal-nosync", "-print-matches"})

	// The WAL directory holds the full state: reopening it directly shows
	// all four ops applied exactly once.
	r, err := er.PersistentResolver(walDir, er.StreamingConfig{
		Kind:    er.Dirty,
		Blocker: &er.TokenBlocking{},
		Matcher: &er.Matcher{Sim: &er.TokenJaccard{}, Threshold: 0.4},
		Durable: er.StreamingDurable{NoSync: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	st, err := r.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Inserts != 3 || st.Updates != 1 || st.Live != 3 {
		t.Fatalf("state after resume: %+v, want 3 inserts + 1 update applied once", st)
	}
}

// TestWatchStreamShards replays an op log through the sharded watch path —
// in-memory, then durable with a resume, exercising the per-shard WAL
// directories and the recovery summary.
func TestWatchStreamShards(t *testing.T) {
	ops := []er.StreamOp{
		{Kind: er.StreamInsert, URI: "u:a", Attrs: []er.Attribute{{Name: "name", Value: "alice smith"}}},
		{Kind: er.StreamInsert, URI: "u:b", Attrs: []er.Attribute{{Name: "name", Value: "alice smith"}}},
		{Kind: er.StreamInsert, URI: "u:c", Attrs: []er.Attribute{{Name: "name", Value: "carol jones"}}},
		{Kind: er.StreamUpdate, URI: "u:c", Attrs: []er.Attribute{{Name: "name", Value: "alice smith"}}},
		{Kind: er.StreamDelete, URI: "u:b"},
	}
	var buf bytes.Buffer
	if err := er.WriteStreamOps(&buf, ops); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	opsPath := filepath.Join(dir, "ops.jsonl")
	if err := os.WriteFile(opsPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	watch([]string{"-ops", opsPath, "-stream-shards", "3", "-stats-every", "2", "-print-matches"})
	watch([]string{"-ops", opsPath, "-stream-shards", "3", "-weight", "CBS", "-prune", "WEP"})

	walDir := filepath.Join(dir, "wal")
	watch([]string{"-ops", opsPath, "-stream-shards", "3", "-wal", walDir, "-snapshot-every", "2", "-wal-nosync"})
	// The rerun resumes from the per-shard WALs and skips the whole log.
	watch([]string{"-ops", opsPath, "-stream-shards", "3", "-wal", walDir, "-snapshot-every", "2", "-wal-nosync", "-print-matches"})

	r, err := er.PersistentShardedResolver(walDir, er.ShardedConfig{
		Kind:    er.Dirty,
		Blocker: &er.TokenBlocking{},
		Matcher: &er.Matcher{Sim: &er.TokenJaccard{}, Threshold: 0.4},
		Shards:  3,
		Durable: er.StreamingDurable{SnapshotEvery: 2, NoSync: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !r.Recovered() {
		t.Fatal("sharded wal directory holds no recovered state")
	}
	st2, err := r.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st := st2; st.Inserts != 3 || st.Updates != 1 || st.Deletes != 1 || st.Live != 2 || st.Matches != 1 {
		t.Fatalf("recovered sharded stats = %+v", st)
	}
}

// TestWatchBatch replays the op log through the amortized batch path —
// chunked ApplyBatch instead of per-op application — across the
// single-node, sharded and durable forms, and asserts the WAL state a
// batched replay leaves behind is the same state the per-op replay
// produces (the chunking is invisible to the result).
func TestWatchBatch(t *testing.T) {
	ops := []er.StreamOp{
		{Kind: er.StreamInsert, URI: "u:a", Attrs: []er.Attribute{{Name: "name", Value: "alice smith"}}},
		{Kind: er.StreamInsert, URI: "u:b", Attrs: []er.Attribute{{Name: "name", Value: "alice smith"}}},
		{Kind: er.StreamInsert, URI: "u:c", Attrs: []er.Attribute{{Name: "name", Value: "carol jones"}}},
		{Kind: er.StreamUpdate, URI: "u:c", Attrs: []er.Attribute{{Name: "name", Value: "alice smith"}}},
		{Kind: er.StreamDelete, URI: "u:b"},
	}
	var buf bytes.Buffer
	if err := er.WriteStreamOps(&buf, ops); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	opsPath := filepath.Join(dir, "ops.jsonl")
	if err := os.WriteFile(opsPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	watch([]string{"-ops", opsPath, "-batch", "2", "-stats-every", "2", "-print-matches"})
	// A chunk larger than the log is one whole-log batch; sharded replay
	// fans each chunk out once.
	watch([]string{"-ops", opsPath, "-batch", "64", "-stream-shards", "2"})

	walDir := filepath.Join(dir, "wal")
	watch([]string{"-ops", opsPath, "-batch", "3", "-wal", walDir, "-snapshot-every", "2", "-wal-nosync"})
	// The rerun resumes from the WAL and skips the already-applied log.
	watch([]string{"-ops", opsPath, "-batch", "3", "-wal", walDir, "-snapshot-every", "2", "-wal-nosync"})

	r, err := er.Open(context.Background(), er.Config{
		Kind:    er.Dirty,
		Blocker: &er.TokenBlocking{},
		Matcher: &er.Matcher{Sim: &er.TokenJaccard{}, Threshold: 0.4},
		Dir:     walDir,
		Durable: er.StreamingDurable{SnapshotEvery: 2, NoSync: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	st, err := r.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Inserts != 3 || st.Updates != 1 || st.Deletes != 1 || st.Live != 2 || st.Matches != 1 {
		t.Fatalf("batched replay left recovered stats %+v", st)
	}
}

// TestApplyStreamOp covers the op translation onto the v2 interface,
// including the refused paths: mutating a URI that was never inserted, and
// an op kind the log format does not define.
func TestApplyStreamOp(t *testing.T) {
	ctx := context.Background()
	r, err := er.Open(ctx, er.Config{
		Kind:    er.Dirty,
		Blocker: &er.TokenBlocking{},
		Matcher: &er.Matcher{Sim: &er.TokenJaccard{}, Threshold: 0.4},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	attrs := []er.Attribute{{Name: "name", Value: "alice"}}
	if err := applyStreamOp(ctx, r, er.StreamOp{Kind: er.StreamInsert, URI: "u:a", Attrs: attrs}); err != nil {
		t.Fatal(err)
	}
	if err := applyStreamOp(ctx, r, er.StreamOp{Kind: er.StreamUpdate, URI: "u:a", Attrs: attrs}); err != nil {
		t.Fatal(err)
	}
	if err := applyStreamOp(ctx, r, er.StreamOp{Kind: er.StreamUpdate, URI: "u:ghost", Attrs: attrs}); err == nil {
		t.Fatal("update of a never-inserted URI accepted")
	}
	if err := applyStreamOp(ctx, r, er.StreamOp{Kind: er.StreamDelete, URI: "u:ghost"}); err == nil {
		t.Fatal("delete of a never-inserted URI accepted")
	}
	if err := applyStreamOp(ctx, r, er.StreamOp{Kind: er.StreamOpKind(99), URI: "u:a"}); err == nil {
		t.Fatal("unknown op kind accepted")
	}
	if err := applyStreamOp(ctx, r, er.StreamOp{Kind: er.StreamDelete, URI: "u:a"}); err != nil {
		t.Fatal(err)
	}
}

// TestLoadTabular loads a CSV KB with a custom ID column through the
// format-inferring loader, plus an explicit-format override.
func TestLoadTabular(t *testing.T) {
	dir := t.TempDir()
	kb := filepath.Join(dir, "kb.csv")
	csv := "key,name\nu:a,alice smith\nu:b,alice smith\n"
	if err := os.WriteFile(kb, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	c := er.NewCollection(er.Dirty)
	if err := load(c, kb, 0, "", "key"); err != nil {
		t.Fatal(err)
	}
	name, _ := c.Get(0).Value("name")
	if c.Len() != 2 || c.Get(0).URI != "u:a" || name != "alice smith" {
		t.Fatalf("csv load: %d records, first %+v", c.Len(), c.Get(0))
	}
	// The same file parses as CSV under an explicit format despite a
	// misleading extension.
	odd := filepath.Join(dir, "kb.dat")
	if err := os.WriteFile(odd, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	c2 := er.NewCollection(er.Dirty)
	if err := load(c2, odd, 0, "CSV", "key"); err != nil {
		t.Fatal(err)
	}
	if c2.Len() != 2 {
		t.Fatalf("explicit-format load: %d records", c2.Len())
	}
}

// TestExportSourceMatches writes the per-source interlinking exports for a
// small clean-clean result and pins their contents.
func TestExportSourceMatches(t *testing.T) {
	c := er.NewCollection(er.CleanClean)
	a := c.MustAdd(er.NewDescription("u:a").Add("name", "alice"))
	b := c.MustAdd(func() *er.Description {
		d := er.NewDescription("u:b").Add("name", "alice")
		d.Source = 1
		return d
	}())
	m := er.NewMatches()
	m.Add(a, b)
	dir := filepath.Join(t.TempDir(), "exports")
	if err := exportSourceMatches(dir, c, m); err != nil {
		t.Fatal(err)
	}
	got0, err := os.ReadFile(filepath.Join(dir, "matches.source0.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	got1, err := os.ReadFile(filepath.Join(dir, "matches.source1.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got0) != "u:a\tu:b\n" || string(got1) != "u:b\tu:a\n" {
		t.Fatalf("exports = %q / %q", got0, got1)
	}
}

// TestWatchWithSources preloads a CSV source ahead of the ops log and
// resumes the combined stream from the WAL: the source records are the
// stream's fixed prefix, so the restart must skip them plus the applied
// ops — nothing is ingested twice.
func TestWatchWithSources(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "kb0.csv")
	if err := os.WriteFile(src, []byte("id,name\nu:a,alice smith\nu:b,alice smith\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ops := []er.StreamOp{
		{Kind: er.StreamInsert, URI: "u:c", Attrs: []er.Attribute{{Name: "name", Value: "carol jones"}}},
		{Kind: er.StreamUpdate, URI: "u:c", Attrs: []er.Attribute{{Name: "name", Value: "alice smith"}}},
	}
	var buf bytes.Buffer
	if err := er.WriteStreamOps(&buf, ops); err != nil {
		t.Fatal(err)
	}
	opsPath := filepath.Join(dir, "ops.jsonl")
	if err := os.WriteFile(opsPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	walDir := filepath.Join(dir, "wal")
	args := []string{"-ops", opsPath, "-src0", src, "-wal", walDir, "-wal-nosync", "-print-matches"}
	watch(args)
	watch(args) // resume: skips the 2 source records and both ops

	r, err := er.PersistentResolver(walDir, er.StreamingConfig{
		Kind:    er.Dirty,
		Blocker: &er.TokenBlocking{},
		Matcher: &er.Matcher{Sim: &er.TokenJaccard{}, Threshold: 0.4},
		Durable: er.StreamingDurable{NoSync: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	st, err := r.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Inserts != 3 || st.Updates != 1 || st.Live != 3 || st.Matches != 3 {
		t.Fatalf("state after sourced resume: %+v, want 2 source records + 1 insert + 1 update applied once", st)
	}
}
