// Package entityres hosts the benchmark harness that regenerates every
// experiment table of the reproduction (DESIGN.md §3, EXPERIMENTS.md): one
// benchmark per experiment, each reporting its headline metrics through
// testing.B.ReportMetric so `go test -bench=. -benchmem` reproduces the
// numbers recorded in EXPERIMENTS.md. The experiment implementations live
// in internal/experiments and are shared with cmd/erbench.
package entityres

import (
	"sort"
	"strings"
	"testing"

	"entityres/internal/experiments"
)

const benchSeed = 42

// runExperiment executes one experiment per iteration and reports its
// headline metrics (from the final iteration). The experiments are the
// slow part of the tree, so short mode skips them: `go test -short -bench
// ./...` stays a fast compile-and-smoke pass.
func runExperiment(b *testing.B, run func(experiments.Scale, int64) (*experiments.Result, error)) {
	b.Helper()
	if testing.Short() {
		b.Skip("experiment benchmarks are skipped in short mode")
	}
	var last *experiments.Result
	for i := 0; i < b.N; i++ {
		res, err := run(experiments.Small, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	// Deterministic metric order keeps -bench output diffable.
	names := make([]string, 0, len(last.Metrics))
	for name := range last.Metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b.ReportMetric(last.Metrics[name], metricUnit(name))
	}
}

// metricUnit turns a human-readable metric label into a ReportMetric unit,
// which must not contain whitespace.
func metricUnit(name string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case ' ', '\t', '+':
			return '_'
		default:
			return r
		}
	}, name)
}

// BenchmarkE01BlockingMethods regenerates E1: PC/PQ/RR of the blocking
// family on heterogeneous clean-clean KBs (§II, [13], [21]).
func BenchmarkE01BlockingMethods(b *testing.B) {
	runExperiment(b, experiments.E1BlockingMethods)
}

// BenchmarkE02BlockPurging regenerates E2: block purging and filtering
// (§II, [20]).
func BenchmarkE02BlockPurging(b *testing.B) {
	runExperiment(b, experiments.E2BlockPurging)
}

// BenchmarkE03MetaBlocking regenerates E3: weighting × pruning of
// meta-blocking (§II, [22]).
func BenchmarkE03MetaBlocking(b *testing.B) {
	runExperiment(b, experiments.E3MetaBlocking)
}

// BenchmarkE04ParallelMetaBlocking regenerates E4: strong scaling of
// parallel meta-blocking (§II, [10], [11]).
func BenchmarkE04ParallelMetaBlocking(b *testing.B) {
	runExperiment(b, experiments.E4ParallelMetaBlocking)
}

// BenchmarkE05SimilarityJoin regenerates E5: PPJoin candidates vs
// threshold (§II, [5], [28]).
func BenchmarkE05SimilarityJoin(b *testing.B) {
	runExperiment(b, experiments.E5SimilarityJoin)
}

// BenchmarkE06MapReduceBlocking regenerates E6: MapReduce token blocking
// throughput (§II, [18]).
func BenchmarkE06MapReduceBlocking(b *testing.B) {
	runExperiment(b, experiments.E6MapReduceBlocking)
}

// BenchmarkE07RSwoosh regenerates E7: comparisons saved by merging-based
// resolution (§III, [2]).
func BenchmarkE07RSwoosh(b *testing.B) {
	runExperiment(b, experiments.E7RSwoosh)
}

// BenchmarkE08CollectiveER regenerates E8: collective vs attribute-only
// resolution (§III, [3]).
func BenchmarkE08CollectiveER(b *testing.B) {
	runExperiment(b, experiments.E8CollectiveER)
}

// BenchmarkE09IterativeBlocking regenerates E9: iterative blocking vs
// one-pass (§III, [27]).
func BenchmarkE09IterativeBlocking(b *testing.B) {
	runExperiment(b, experiments.E9IterativeBlocking)
}

// BenchmarkE10Progressive regenerates E10: progressive recall curves and
// AUC (§IV, [23], [26]).
func BenchmarkE10Progressive(b *testing.B) {
	runExperiment(b, experiments.E10Progressive)
}

// BenchmarkE11BudgetWindows regenerates E11: benefit/cost window ablation
// (§IV, [1]).
func BenchmarkE11BudgetWindows(b *testing.B) {
	runExperiment(b, experiments.E11BudgetWindows)
}

// BenchmarkE12ScaleSweep regenerates E12: complexity-order fits of the
// blocking pipeline (§I).
func BenchmarkE12ScaleSweep(b *testing.B) {
	runExperiment(b, experiments.E12ScaleSweep)
}
