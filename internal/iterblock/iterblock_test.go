package iterblock

import (
	"testing"

	"entityres/internal/blocking"
	"entityres/internal/datagen"
	"entityres/internal/entity"
	"entityres/internal/evaluation"
	"entityres/internal/matching"
)

// chained builds a collection where matches in one block unlock matches in
// another only through merged profiles.
func chained(t *testing.T) (*entity.Collection, *blocking.Blocks) {
	t.Helper()
	c := entity.NewCollection(entity.Dirty)
	c.MustAdd(entity.NewDescription("").Add("name", "alice smith").Add("city", "paris"))  // 0
	c.MustAdd(entity.NewDescription("").Add("name", "alice smith").Add("job", "painter")) // 1
	c.MustAdd(entity.NewDescription("").Add("job", "painter").Add("city", "paris"))       // 2
	c.MustAdd(entity.NewDescription("").Add("name", "bob jones"))                         // 3
	bs := blocking.NewBlocks(entity.Dirty)
	bs.Add(&blocking.Block{Key: "k1", S0: []entity.ID{0, 1}})    // direct match
	bs.Add(&blocking.Block{Key: "k2", S0: []entity.ID{1, 2, 3}}) // 1-2 only after merge? (1,2) share painter
	bs.Add(&blocking.Block{Key: "k3", S0: []entity.ID{0, 2}})    // below threshold directly
	return c, bs
}

func TestIterativeBlockingFindsMoreThanOnePass(t *testing.T) {
	c, bs := chained(t)
	m := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.4}
	one := OnePass(c, bs, m)
	iter := Resolve(c, bs, m)
	if iter.Matches.Len() <= one.Matches.Len() {
		t.Fatalf("iterative should find more: %d vs %d", iter.Matches.Len(), one.Matches.Len())
	}
	if !iter.Matches.Contains(0, 2) {
		t.Fatal("merge-propagated match (0,2) missing")
	}
	if iter.Rounds <= bs.Len() {
		t.Fatalf("no block was re-processed: rounds = %d", iter.Rounds)
	}
}

func TestIterativeBlockingSavesRedundantComparisons(t *testing.T) {
	c := entity.NewCollection(entity.Dirty)
	c.MustAdd(entity.NewDescription("").Add("n", "same tokens here"))
	c.MustAdd(entity.NewDescription("").Add("n", "same tokens here"))
	bs := blocking.NewBlocks(entity.Dirty)
	// The pair co-occurs in three blocks; it must be compared only once.
	for _, k := range []string{"a", "b", "c"} {
		bs.Add(&blocking.Block{Key: k, S0: []entity.ID{0, 1}})
	}
	m := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
	res := Resolve(c, bs, m)
	if res.Comparisons != 1 {
		t.Fatalf("comparisons = %d, want 1", res.Comparisons)
	}
	if res.Matches.Len() != 1 {
		t.Fatalf("matches = %d", res.Matches.Len())
	}
}

func TestIterativeBlockingSkipsUnchangedNonMatches(t *testing.T) {
	c := entity.NewCollection(entity.Dirty)
	c.MustAdd(entity.NewDescription("").Add("n", "aaa bbb"))
	c.MustAdd(entity.NewDescription("").Add("n", "ccc ddd"))
	bs := blocking.NewBlocks(entity.Dirty)
	bs.Add(&blocking.Block{Key: "a", S0: []entity.ID{0, 1}})
	bs.Add(&blocking.Block{Key: "b", S0: []entity.ID{0, 1}})
	m := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
	res := Resolve(c, bs, m)
	if res.Comparisons != 1 {
		t.Fatalf("unchanged non-match recompared: %d", res.Comparisons)
	}
}

func TestIterativeBlockingProfiles(t *testing.T) {
	c, bs := chained(t)
	m := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.4}
	res := Resolve(c, bs, m)
	if len(res.Profiles) != 2 { // {0,1,2} merged + {3}
		t.Fatalf("profiles = %d", len(res.Profiles))
	}
	root, ok := res.Profiles[0]
	if !ok {
		// Root may be any cluster member depending on union order; find it.
		for id, p := range res.Profiles {
			if id != 3 {
				root = p
				ok = true
			}
		}
	}
	if !ok {
		t.Fatal("merged cluster profile missing")
	}
	for _, attr := range []string{"name", "city", "job"} {
		if _, has := root.Value(attr); !has {
			t.Fatalf("merged profile missing %q: %v", attr, root)
		}
	}
}

func TestIterativeBlockingOnGenerated(t *testing.T) {
	c, gt, err := datagen.GenerateDirty(datagen.Config{Seed: 31, Entities: 80, DupRatio: 0.8, MaxDuplicates: 2})
	if err != nil {
		t.Fatal(err)
	}
	bs, err := (&blocking.TokenBlocking{}).Block(c)
	if err != nil {
		t.Fatal(err)
	}
	// Merging-based resolution wants a merge-compatible similarity: the
	// attribute-union of a cluster must not dilute its similarity to the
	// remaining duplicates, so containment, not Jaccard.
	m := &matching.Matcher{Sim: &matching.TokenContainment{}, Threshold: 0.7}
	one := OnePass(c, bs, m)
	iter := Resolve(c, bs, m)
	prfOne := evaluation.ComparePairs(one.Matches.Closure(), gt)
	prfIter := evaluation.ComparePairs(iter.Matches, gt)
	if prfIter.Recall+1e-9 < prfOne.Recall {
		t.Fatalf("iterative recall %v below one-pass %v", prfIter.Recall, prfOne.Recall)
	}
	if prfIter.Precision+1e-9 < prfOne.Precision {
		t.Fatalf("iterative precision %v below one-pass %v", prfIter.Precision, prfOne.Precision)
	}
	if iter.Comparisons > one.Comparisons {
		t.Fatalf("iterative executed more comparisons: %d vs %d", iter.Comparisons, one.Comparisons)
	}
}
