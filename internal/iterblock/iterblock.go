// Package iterblock implements iterative blocking [27] (§III of the
// paper): blocks are processed one at a time; when two descriptions in a
// block match, their profiles merge and the merged profile replaces them
// in every other block, so (a) redundant comparisons of the unified pair
// elsewhere are saved, and (b) the accumulated attribute evidence can
// surface matches that neither original profile supported. Blocks
// containing merged descriptions are re-processed until no new match is
// found — the sequential fixpoint model of the original algorithm.
package iterblock

import (
	"entityres/internal/blocking"
	"entityres/internal/entity"
	"entityres/internal/matching"
)

// Result is the outcome of an iterative blocking run.
type Result struct {
	// Matches holds pairwise matches over original IDs, transitively
	// closed within merged clusters.
	Matches *entity.Matches
	// Comparisons counts matcher invocations (cluster-pair evaluations).
	Comparisons int64
	// Rounds counts block processings, including re-processings.
	Rounds int
	// Profiles maps each cluster root to its merged profile.
	Profiles map[entity.ID]*entity.Description
}

// Resolve runs iterative blocking over the collection's blocks with the
// given matcher.
func Resolve(c *entity.Collection, bs *blocking.Blocks, m *matching.Matcher) Result {
	uf := entity.NewUnionFind(c.Len())
	profiles := make(map[entity.ID]*entity.Description, c.Len())
	for _, d := range c.All() {
		profiles[d.ID] = d.Clone()
	}
	blocksOf := bs.BlocksOf()
	// comparedOf tracks, per cluster root, the roots it has been compared
	// with since its profile last changed; a merge invalidates the
	// survivor's entry because its profile grew.
	comparedOf := make(map[entity.ID]map[entity.ID]bool)
	markCompared := func(a, b entity.ID) {
		for _, pair := range [2][2]entity.ID{{a, b}, {b, a}} {
			mm, ok := comparedOf[pair[0]]
			if !ok {
				mm = make(map[entity.ID]bool)
				comparedOf[pair[0]] = mm
			}
			mm[pair[1]] = true
		}
	}

	res := Result{Matches: entity.NewMatches()}
	// FIFO queue of block indices with membership flags.
	queue := make([]int, bs.Len())
	inQueue := make([]bool, bs.Len())
	for i := range queue {
		queue[i] = i
		inQueue[i] = true
	}
	kind := bs.Kind()
	for len(queue) > 0 {
		idx := queue[0]
		queue = queue[1:]
		inQueue[idx] = false
		res.Rounds++
		b := bs.Get(idx)
		merges := 0
		b.EachComparison(kind, func(x, y entity.ID) bool {
			rx, ry := uf.Find(x), uf.Find(y)
			if rx == ry {
				return true // already unified: comparison saved
			}
			if comparedOf[rx][ry] {
				return true // unchanged profiles already compared
			}
			res.Comparisons++
			ok, _ := m.Match(profiles[rx], profiles[ry])
			if !ok {
				markCompared(rx, ry)
				return true
			}
			merged := entity.Merge(profiles[rx], profiles[ry])
			uf.Union(rx, ry)
			root := uf.Find(rx)
			profiles[root] = merged
			// The survivor's profile changed: previous comparisons with it
			// are stale.
			delete(comparedOf, rx)
			delete(comparedOf, ry)
			for _, mm := range comparedOf {
				delete(mm, rx)
				delete(mm, ry)
			}
			merges++
			// Re-enqueue every block containing either side's entities so
			// the merged evidence propagates.
			for _, member := range []entity.ID{x, y} {
				for _, bi := range blocksOf[member] {
					if !inQueue[bi] {
						inQueue[bi] = true
						queue = append(queue, bi)
					}
				}
			}
			return true
		})
		_ = merges
	}
	res.Matches = entity.FromClusters(uf.Clusters())
	// Expose only cluster-root profiles.
	for id := range profiles {
		if uf.Find(id) != id {
			delete(profiles, id)
		}
	}
	res.Profiles = profiles
	return res
}

// OnePass is the non-iterative baseline: each block is processed once and
// matches are not propagated across blocks. Used by experiment E9 to show
// the extra matches and saved comparisons of iteration.
func OnePass(c *entity.Collection, bs *blocking.Blocks, m *matching.Matcher) Result {
	res := Result{Matches: entity.NewMatches()}
	seen := entity.NewPairSet(0)
	kind := bs.Kind()
	for i := 0; i < bs.Len(); i++ {
		res.Rounds++
		bs.Get(i).EachComparison(kind, func(x, y entity.ID) bool {
			if !seen.Add(x, y) {
				return true
			}
			res.Comparisons++
			if ok, _ := m.Match(c.Get(x), c.Get(y)); ok {
				res.Matches.Add(x, y)
			}
			return true
		})
	}
	return res
}
