package pipeline

import (
	"context"
	"runtime"
	"sync"
	"testing"

	"entityres/internal/datagen"
	"entityres/internal/entity"
)

// The benchmark workload is matching-dominated (the phase the worker pool
// accelerates): a datagen people collection under token blocking produces
// tens of thousands of distinct comparisons, each costing a tokenization +
// Jaccard evaluation. On a single core the parallel engine pays only the
// streaming/channel overhead; at 4+ cores the worker pool yields the
// multi-× speedup the sharded design targets (the serial residue — the
// dedup producer — is a few percent of the per-pair match cost).

var (
	benchOnce sync.Once
	benchColl *entity.Collection
)

func benchCollection(b *testing.B) *entity.Collection {
	benchOnce.Do(func() {
		c, _, err := datagen.GenerateDirty(datagen.Config{
			Entities:      1200,
			Seed:          42,
			MaxDuplicates: 2,
		})
		if err != nil {
			panic(err)
		}
		benchColl = c
	})
	return benchColl
}

func BenchmarkPipelineSequential(b *testing.B) {
	if testing.Short() {
		b.Skip("pipeline benchmarks are skipped in short mode")
	}
	c := benchCollection(b)
	cfg := batchConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := cfg.Run(c)
		if err != nil {
			b.Fatal(err)
		}
		if res.Matches.Len() == 0 {
			b.Fatal("sequential pipeline found no matches")
		}
	}
}

func BenchmarkPipelineParallel(b *testing.B) {
	if testing.Short() {
		b.Skip("pipeline benchmarks are skipped in short mode")
	}
	c := benchCollection(b)
	// Untimed setup: the parallel result must be identical to the
	// sequential one — a speedup that changes the answer is no speedup.
	seqCfg := batchConfig()
	want, err := seqCfg.Run(c)
	if err != nil {
		b.Fatal(err)
	}
	eng := New(batchConfig(), Options{})
	first, err := eng.Run(context.Background(), c)
	if err != nil {
		b.Fatal(err)
	}
	wp, gp := sortedPairs(want.Matches), sortedPairs(first.Matches)
	if len(wp) != len(gp) {
		b.Fatalf("parallel found %d matches, sequential %d", len(gp), len(wp))
	}
	for i := range wp {
		if wp[i] != gp[i] {
			b.Fatalf("match %d: parallel %v, sequential %v", i, gp[i], wp[i])
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eng.Run(context.Background(), c)
		if err != nil {
			b.Fatal(err)
		}
		if res.Matches.Len() == 0 {
			b.Fatal("parallel pipeline found no matches")
		}
	}
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "cores")
}
