// Package pipeline is the concurrent execution engine for the ER framework
// of Fig. 1: the same phase configuration as core.Pipeline — blocking,
// block cleaning, meta-blocking, scheduling, matching — executed with
// sharded worker pools sized to the machine. Blocking shards the entity
// collection across workers into per-shard inverted indexes merged in ID
// order (blocking.BuildSharded); meta-blocking shards the edge-weight
// accumulation over the block list (metablocking.BuildGraphParallel);
// matching fans comparisons out to a worker pool fed by a streaming
// blocking.CompareIterator, so the distinct-pair list is never
// materialized; progressive runs execute wave-synchronously under an exact
// comparison budget (progressive.RunParallel).
//
// The engine is deterministic with respect to its parallelism knobs: for a
// fixed configuration and collection, any (Workers, Shards) setting
// produces the same match set as any other, and the same match set as the
// sequential core.Pipeline. Two documented exceptions: ARCS-weighted
// meta-blocking accumulates floating-point weights in a partition-dependent
// order, so its weights — and, on exact pruning-threshold ties, the
// surviving edges — can differ across worker counts and from the
// sequential build (see metablocking.BuildGraphParallel); and adaptive
// schedulers in Progressive mode observe wave-synchronous feedback, which
// is identical across worker counts but not to the strictly sequential
// runner (see progressive.RunParallel).
package pipeline

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"entityres/internal/blocking"
	"entityres/internal/blockproc"
	"entityres/internal/core"
	"entityres/internal/entity"
	"entityres/internal/iterative"
	"entityres/internal/iterblock"
	"entityres/internal/matching"
	"entityres/internal/progressive"
)

// Options sets the parallelism of an Engine.
type Options struct {
	// Workers sizes the worker pools of the matching, meta-blocking and
	// progressive phases; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Shards is the number of collection shards for the blocking build;
	// <= 0 means Workers. Shards only takes effect when the configured
	// Blocker implements blocking.KeyedBlocker; other blockers fall back
	// to their sequential build.
	Shards int
}

// Resolve returns the options with defaults filled in: Workers <= 0
// becomes runtime.GOMAXPROCS(0), Shards <= 0 becomes Workers. Exported so
// tooling that reports the parallelism of a run (erbench) prints exactly
// what the engine will use.
func (o Options) Resolve() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Shards <= 0 {
		o.Shards = o.Workers
	}
	return o
}

// Engine executes a core.Pipeline configuration concurrently.
type Engine struct {
	// Config is the phase configuration, identical to the sequential
	// pipeline's: Blocker, Processors, Meta, Matcher, Mode, Scheduler,
	// Budget, CollectiveConfig, GroundTruth.
	Config core.Pipeline
	// Options sets the parallelism.
	Options Options
}

// New returns an engine for the given configuration.
func New(cfg core.Pipeline, opt Options) *Engine {
	return &Engine{Config: cfg, Options: opt}
}

// Run executes the pipeline over the collection, honoring ctx: the run
// stops between phases — and, inside the streaming phases, between pair
// chunks — when ctx is cancelled, returning ctx.Err(). A nil ctx means
// context.Background().
func (e *Engine) Run(ctx context.Context, c *entity.Collection) (*core.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	p := &e.Config
	opt := e.Options.Resolve()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	res := &core.Result{}
	// phase times fn and attributes its error, so cancellations and phase
	// failures surface as "pipeline: <phase>: <cause>" wherever they occur.
	phase := func(name string, fn func() error) error {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("pipeline: %s: %w", name, err)
		}
		t0 := time.Now()
		err := fn()
		res.Phases = append(res.Phases, core.PhaseStat{Name: name, Duration: time.Since(t0)})
		if err != nil {
			return fmt.Errorf("pipeline: %s: %w", name, err)
		}
		return nil
	}

	// Streaming mode owns its whole phase sequence (the incremental
	// resolver blocks, schedules and matches each arriving description),
	// so the batch phases below never run; the delta matcher inside the
	// resolver gets the engine's worker pool.
	if p.Mode == core.Streaming {
		if err := phase("streaming", func() error {
			return p.ReplayStreaming(ctx, res, c, opt.Workers)
		}); err != nil {
			return nil, err
		}
		return res, nil
	}

	// Blocking phase: sharded when the blocker exposes a key function.
	var bs *blocking.Blocks
	if err := phase("blocking", func() error {
		var err error
		if kb, ok := p.Blocker.(blocking.KeyedBlocker); ok && opt.Shards > 1 {
			bs, err = blocking.BuildSharded(ctx, c, kb, opt.Shards)
		} else {
			bs, err = p.Blocker.Block(c)
		}
		return err
	}); err != nil {
		return nil, err
	}

	// Planning phase: block cleaning (cheap, sequential) + meta-blocking
	// (edge weighting sharded over the block list).
	if len(p.Processors) > 0 {
		if err := phase("block-cleaning", func() error {
			bs = blockproc.Chain(p.Processors).Process(bs)
			return nil
		}); err != nil {
			return nil, err
		}
	}
	if p.Meta != nil {
		if err := phase("meta-blocking", func() error {
			bs = p.Meta.RestructureParallel(c, bs, opt.Workers)
			return nil
		}); err != nil {
			return nil, err
		}
	}
	res.Blocks = bs

	// Scheduling + matching + update phases, by mode. Batch and
	// Progressive stream through worker pools; the inherently sequential
	// iterative modes (Swoosh-style merging mutates the profile set it is
	// iterating, collective resolution reorders on every merge) run their
	// sequential algorithms unchanged.
	err := phase(p.Mode.String(), func() error {
		switch p.Mode {
		case core.Batch:
			out, err := matching.ResolveBlocksParallel(ctx, c, bs, p.Matcher, opt.Workers)
			res.Matches, res.Comparisons = out.Matches, out.Comparisons
			return err
		case core.MergingIterative:
			out := iterative.RSwoosh(c, p.Matcher)
			res.Matches, res.Comparisons = out.Matches, out.Comparisons
		case core.IterativeBlocks:
			out := iterblock.Resolve(c, bs, p.Matcher)
			res.Matches, res.Comparisons = out.Matches, out.Comparisons
		case core.Collective:
			out := p.CollectiveSetup().Resolve(c, bs.DistinctPairs().Pairs())
			res.Matches, res.Comparisons = out.Matches, out.Comparisons
		case core.Progressive:
			factory, budget, gt := p.ProgressiveSetup()
			out, err := progressive.RunParallel(ctx, c, factory(c, bs), p.Matcher, gt, budget, opt.Workers)
			res.Matches, res.Comparisons, res.Curve = out.Matches, out.Comparisons, out.Curve
			return err
		default:
			return fmt.Errorf("unknown mode %v", p.Mode)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}
