package pipeline

import (
	"context"
	"sort"
	"testing"

	"entityres/internal/blocking"
	"entityres/internal/blockproc"
	"entityres/internal/core"
	"entityres/internal/datagen"
	"entityres/internal/entity"
	"entityres/internal/matching"
	"entityres/internal/metablocking"
	"entityres/internal/progressive"
)

func testCollection(t testing.TB, entities int, seed int64) (*entity.Collection, *entity.Matches) {
	t.Helper()
	c, gt, err := datagen.GenerateDirty(datagen.Config{Entities: entities, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return c, gt
}

func sortedPairs(m *entity.Matches) []entity.Pair {
	ps := m.Pairs()
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].A != ps[j].A {
			return ps[i].A < ps[j].A
		}
		return ps[i].B < ps[j].B
	})
	return ps
}

func assertSameMatches(t *testing.T, label string, want, got *entity.Matches) {
	t.Helper()
	wp, gp := sortedPairs(want), sortedPairs(got)
	if len(wp) != len(gp) {
		t.Fatalf("%s: %d matches, want %d", label, len(gp), len(wp))
	}
	for i := range wp {
		if wp[i] != gp[i] {
			t.Fatalf("%s: match %d is %v, want %v", label, i, gp[i], wp[i])
		}
	}
}

// batchConfig exercises every planning phase: blocking, cleaning and
// meta-blocking ahead of batch matching.
func batchConfig() core.Pipeline {
	return core.Pipeline{
		Blocker:    &blocking.TokenBlocking{},
		Processors: []blockproc.Processor{&blockproc.BlockFiltering{}},
		Meta:       &metablocking.MetaBlocker{Weight: metablocking.ECBS, Prune: metablocking.WEP},
		Matcher:    &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5},
		Mode:       core.Batch,
	}
}

// TestEngineShardDeterminism is the pipeline determinism contract: a
// parallel run with shards=1/workers=1 and shards=N/workers=N produce
// identical match sets on a fixed-seed datagen collection.
func TestEngineShardDeterminism(t *testing.T) {
	c, gt := testCollection(t, 250, 42)
	configs := map[string]core.Pipeline{
		"batch+meta": batchConfig(),
		"batch-plain": {
			Blocker: &blocking.TokenBlocking{},
			Matcher: &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5},
			Mode:    core.Batch,
		},
		"progressive": {
			Blocker:     &blocking.TokenBlocking{},
			Matcher:     &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5},
			Mode:        core.Progressive,
			Budget:      2000,
			GroundTruth: gt,
		},
	}
	for label, cfg := range configs {
		base, err := New(cfg, Options{Workers: 1, Shards: 1}).Run(context.Background(), c)
		if err != nil {
			t.Fatalf("%s shards=1: %v", label, err)
		}
		for _, par := range []Options{{Workers: 2, Shards: 2}, {Workers: 4, Shards: 4}, {Workers: 4, Shards: 13}, {}} {
			got, err := New(cfg, par).Run(context.Background(), c)
			if err != nil {
				t.Fatalf("%s %+v: %v", label, par, err)
			}
			assertSameMatches(t, label, base.Matches, got.Matches)
			if got.Comparisons != base.Comparisons {
				t.Fatalf("%s %+v: comparisons %d, want %d", label, par, got.Comparisons, base.Comparisons)
			}
		}
	}
}

// TestEngineMatchesSequentialPipeline: the parallel engine reproduces the
// sequential core.Pipeline result for batch and progressive modes.
func TestEngineMatchesSequentialPipeline(t *testing.T) {
	c, gt := testCollection(t, 250, 42)
	for label, cfg := range map[string]core.Pipeline{
		"batch+meta": batchConfig(),
		"progressive": {
			Blocker:     &blocking.TokenBlocking{},
			Matcher:     &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5},
			Mode:        core.Progressive,
			Budget:      2000,
			GroundTruth: gt,
		},
	} {
		seqCfg := cfg
		want, err := seqCfg.Run(c)
		if err != nil {
			t.Fatalf("%s sequential: %v", label, err)
		}
		got, err := New(cfg, Options{}).Run(context.Background(), c)
		if err != nil {
			t.Fatalf("%s parallel: %v", label, err)
		}
		assertSameMatches(t, label, want.Matches, got.Matches)
		if got.Comparisons != want.Comparisons {
			t.Fatalf("%s: comparisons %d, want %d", label, got.Comparisons, want.Comparisons)
		}
		if got.Blocks.Len() != want.Blocks.Len() {
			t.Fatalf("%s: %d final blocks, want %d", label, got.Blocks.Len(), want.Blocks.Len())
		}
	}
}

// TestEngineNonKeyedBlockerFallback: blockers without a key function run
// sequentially but the rest of the pipeline still parallelizes.
func TestEngineNonKeyedBlockerFallback(t *testing.T) {
	c, _ := testCollection(t, 150, 9)
	cfg := core.Pipeline{
		Blocker: &blocking.SortedNeighborhood{Window: 5},
		Matcher: &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5},
		Mode:    core.Batch,
	}
	seqCfg := cfg
	want, err := seqCfg.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	got, err := New(cfg, Options{Workers: 4, Shards: 4}).Run(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	assertSameMatches(t, "sorted-neighborhood", want.Matches, got.Matches)
}

// TestEngineIterativeModes: the sequential fallback modes still work under
// the engine and agree with core.
func TestEngineIterativeModes(t *testing.T) {
	c, _ := testCollection(t, 80, 9)
	for _, mode := range []core.Mode{core.MergingIterative, core.IterativeBlocks} {
		cfg := core.Pipeline{
			Blocker: &blocking.TokenBlocking{},
			Matcher: &matching.Matcher{Sim: &matching.TokenContainment{}, Threshold: 0.7},
			Mode:    mode,
		}
		seqCfg := cfg
		want, err := seqCfg.Run(c)
		if err != nil {
			t.Fatalf("%s sequential: %v", mode, err)
		}
		got, err := New(cfg, Options{}).Run(context.Background(), c)
		if err != nil {
			t.Fatalf("%s engine: %v", mode, err)
		}
		assertSameMatches(t, mode.String(), want.Matches, got.Matches)
	}
}

func TestEngineValidation(t *testing.T) {
	if _, err := New(core.Pipeline{}, Options{}).Run(context.Background(), entity.NewCollection(entity.Dirty)); err == nil {
		t.Fatal("engine without Blocker: want error")
	}
	cfg := core.Pipeline{Blocker: &blocking.TokenBlocking{}}
	if _, err := New(cfg, Options{}).Run(context.Background(), entity.NewCollection(entity.Dirty)); err == nil {
		t.Fatal("engine without Matcher: want error")
	}
}

func TestEngineCancellation(t *testing.T) {
	c, _ := testCollection(t, 250, 42)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := New(batchConfig(), Options{Workers: 4, Shards: 4}).Run(ctx, c); err == nil {
		t.Fatal("cancelled engine run: want error")
	}
}

// TestEngineProgressiveBudgetExact: the engine's progressive mode stops at
// exactly the configured comparison budget.
func TestEngineProgressiveBudgetExact(t *testing.T) {
	c, gt := testCollection(t, 250, 42)
	cfg := core.Pipeline{
		Blocker:     &blocking.TokenBlocking{},
		Matcher:     &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5},
		Mode:        core.Progressive,
		Budget:      777,
		GroundTruth: gt,
		Scheduler: func(c *entity.Collection, bs *blocking.Blocks) progressive.Scheduler {
			return progressive.NewStaticOrder(bs)
		},
	}
	got, err := New(cfg, Options{Workers: 4, Shards: 4}).Run(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if got.Comparisons != 777 {
		t.Fatalf("executed %d comparisons, want exactly 777", got.Comparisons)
	}
}
