package pipeline

import (
	"context"
	"testing"

	"entityres/internal/blocking"
	"entityres/internal/core"
	"entityres/internal/matching"
	"entityres/internal/metablocking"
)

// TestEngineStreamingEqualsBatch checks the engine's Streaming mode against
// the sequential batch pipeline across worker counts: the delta-matching
// worker pool must not change the result.
func TestEngineStreamingEqualsBatch(t *testing.T) {
	c, _ := testCollection(t, 200, 7)
	cfg := core.Pipeline{
		Blocker: &blocking.TokenBlocking{},
		Matcher: &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5},
		Mode:    core.Batch,
	}
	want, err := cfg.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		stream := cfg
		stream.Mode = core.Streaming
		res, err := New(stream, Options{Workers: workers}).Run(context.Background(), c)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		assertSameMatches(t, "streaming", want.Matches, res.Matches)
		if res.Comparisons != want.Comparisons {
			t.Fatalf("workers=%d: streaming comparisons = %d, batch = %d", workers, res.Comparisons, want.Comparisons)
		}
	}
}

// TestEngineStreamingCancellation checks a cancelled context stops the
// replay with an error.
func TestEngineStreamingCancellation(t *testing.T) {
	c, _ := testCollection(t, 200, 7)
	cfg := core.Pipeline{
		Blocker: &blocking.TokenBlocking{},
		Matcher: &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5},
		Mode:    core.Streaming,
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := New(cfg, Options{}).Run(ctx, c); err == nil {
		t.Fatal("cancelled streaming run succeeded")
	}
}

// TestEngineStreamingMetaEqualsBatch checks the engine's Streaming mode
// with live meta-blocking against the sequential batch meta pipeline
// across worker counts: the deferred reconcile runs under the engine's
// pool and context and must not change the result.
func TestEngineStreamingMetaEqualsBatch(t *testing.T) {
	c, _ := testCollection(t, 200, 7)
	cfg := core.Pipeline{
		Blocker: &blocking.TokenBlocking{},
		Meta:    &metablocking.MetaBlocker{Weight: metablocking.ECBS, Prune: metablocking.WNP},
		Matcher: &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5},
		Mode:    core.Batch,
	}
	want, err := cfg.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		stream := cfg
		stream.Mode = core.Streaming
		res, err := New(stream, Options{Workers: workers}).Run(context.Background(), c)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		assertSameMatches(t, "streaming-meta", want.Matches, res.Matches)
		if res.Comparisons != want.Comparisons {
			t.Fatalf("workers=%d: streaming comparisons = %d, batch = %d", workers, res.Comparisons, want.Comparisons)
		}
		if res.Blocks.Len() != want.Blocks.Len() {
			t.Fatalf("workers=%d: restructured blocks = %d, batch = %d", workers, res.Blocks.Len(), want.Blocks.Len())
		}
	}
}
