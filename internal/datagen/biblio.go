package datagen

import (
	"fmt"
	"math/rand"
	"strconv"

	"entityres/internal/entity"
)

// GenerateBibliographic builds the relationship-rich clean-clean dataset
// used by collective (relationship-based) resolution experiments: two
// sources containing author descriptions and paper descriptions, where each
// paper references its authors by URI through the "author" attribute.
//
// Papers are duplicated into source 1 with the configured (typically heavy)
// corruption on their titles, while their authors are duplicated with light
// corruption — so attribute evidence alone struggles on papers, but
// resolving the authors first makes the papers' relationship evidence
// decisive. The returned ground truth covers both author and paper pairs.
func GenerateBibliographic(cfg Config) (*entity.Collection, *entity.Matches, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	numPapers := cfg.Entities
	numAuthors := max(4, cfg.Entities/3)
	c := entity.NewCollection(entity.CleanClean)
	gt := entity.NewMatches()
	renames := attributeSynonyms[Bibliographic]
	authorCor := LightCorruption()

	// Source-0 authors.
	first := newZipfPicker(rng, len(firstNames), cfg.ZipfS)
	last := newZipfPicker(rng, len(lastNames), cfg.ZipfS)
	authorIDs := make([]entity.ID, numAuthors)
	authorURIs := make([]string, numAuthors)
	for i := 0; i < numAuthors; i++ {
		name := firstNames[first.pick()] + " " + lastNames[last.pick()]
		uri := fmt.Sprintf("http://kb0.example.org/author/%s_%d", sanitize(name), i)
		d := entity.NewDescription(uri).Add("name", name)
		id, err := c.Add(d)
		if err != nil {
			return nil, nil, err
		}
		authorIDs[i] = id
		authorURIs[i] = uri
	}

	// Source-0 papers referencing source-0 authors.
	topic := newZipfPicker(rng, len(paperTopics), cfg.ZipfS)
	venue := newZipfPicker(rng, len(venues), cfg.ZipfS)
	type paper struct {
		id      entity.ID
		authors []int
	}
	papers := make([]paper, numPapers)
	for i := 0; i < numPapers; i++ {
		nw := 3 + rng.Intn(3)
		title := ""
		for w := 0; w < nw; w++ {
			if w > 0 {
				title += " "
			}
			title += paperTopics[topic.pick()]
		}
		d := entity.NewDescription(fmt.Sprintf("http://kb0.example.org/paper/p%d", i)).
			Add("title", title).
			Add("venue", venues[venue.pick()]).
			Add("year", strconv.Itoa(1995+rng.Intn(25)))
		na := 1 + rng.Intn(3)
		seen := map[int]bool{}
		var refs []int
		for a := 0; a < na; a++ {
			ai := rng.Intn(numAuthors)
			if !seen[ai] {
				seen[ai] = true
				refs = append(refs, ai)
				d.Add("author", authorURIs[ai])
			}
		}
		id, err := c.Add(d)
		if err != nil {
			return nil, nil, err
		}
		papers[i] = paper{id: id, authors: refs}
	}

	// Source-1 copies. Duplicated papers drag their authors along, so the
	// relationship structure is mirrored.
	dupAuthor := make(map[int]entity.ID) // source-0 author index → source-1 id
	dupAuthorURI := make(map[int]string)
	ensureAuthor := func(ai int) (string, error) {
		if uri, ok := dupAuthorURI[ai]; ok {
			return uri, nil
		}
		src := c.Get(authorIDs[ai])
		dup := corruptCopy(rng, src, authorCor, renames, cfg.SchemaNoise)
		dup.Source = 1
		dup.URI = fmt.Sprintf("http://kb1.example.org/author/a%d", ai)
		id, err := c.Add(dup)
		if err != nil {
			return "", err
		}
		dupAuthor[ai] = id
		dupAuthorURI[ai] = dup.URI
		gt.Add(authorIDs[ai], id)
		return dup.URI, nil
	}
	for i, p := range papers {
		if rng.Float64() >= cfg.DupRatio {
			continue
		}
		src := c.Get(p.id)
		dup := entity.NewDescription(fmt.Sprintf("http://kb1.example.org/paper/p%d", i))
		dup.Source = 1
		for _, a := range src.Attrs {
			if a.Name == "author" {
				continue // re-linked below to source-1 authors
			}
			name := a.Name
			if alt, ok := renames[name]; ok && rng.Float64() < cfg.SchemaNoise {
				name = alt
			}
			value := a.Value
			if a.Name == "title" {
				value = corruptValue(rng, value, *cfg.Corruption)
			}
			dup.Add(name, value)
		}
		authorAttr := "author"
		if alt, ok := renames["author"]; ok && rng.Float64() < cfg.SchemaNoise {
			authorAttr = alt
		}
		for _, ai := range p.authors {
			uri, err := ensureAuthor(ai)
			if err != nil {
				return nil, nil, err
			}
			dup.Add(authorAttr, uri)
		}
		id, err := c.Add(dup)
		if err != nil {
			return nil, nil, err
		}
		gt.Add(p.id, id)
	}
	return c, gt, nil
}
