package datagen

// Seed vocabularies. Sizes are chosen so that realistic collisions occur
// (shared surnames, shared cities) without making every block enormous.

var firstNames = []string{
	"alice", "robert", "maria", "james", "elena", "david", "sophia", "michael",
	"laura", "daniel", "emma", "thomas", "julia", "peter", "anna", "george",
	"carol", "stephen", "nina", "victor", "irene", "hugo", "clara", "martin",
	"olivia", "felix", "diana", "oscar", "ruth", "henry", "ida", "walter",
	"paula", "simon", "vera", "arthur", "lydia", "edgar", "nora", "frank",
	"alicia", "roberto", "marie", "jim", "helena", "dave", "sofia", "mikhail",
}

var lastNames = []string{
	"smith", "johnson", "garcia", "mueller", "rossi", "tanaka", "kowalski",
	"ivanov", "nielsen", "dubois", "santos", "okafor", "yilmaz", "novak",
	"andersson", "papadopoulos", "fernandez", "schmidt", "brown", "lee",
	"wilson", "taylor", "moreau", "ricci", "sato", "nowak", "petrov",
	"jensen", "laurent", "silva", "adeyemi", "kaya", "horvat", "lindberg",
	"economou", "lopez", "weber", "davies", "kim", "clark",
}

var cities = []string{
	"paris", "london", "berlin", "madrid", "rome", "vienna", "prague",
	"athens", "lisbon", "dublin", "warsaw", "budapest", "helsinki", "oslo",
	"stockholm", "copenhagen", "amsterdam", "brussels", "zurich", "geneva",
	"munich", "hamburg", "lyon", "marseille", "naples", "milan", "porto",
	"seville", "valencia", "krakow", "gdansk", "tampere",
}

var occupations = []string{
	"painter", "composer", "engineer", "teacher", "physician", "architect",
	"journalist", "historian", "chemist", "biologist", "novelist", "poet",
	"sculptor", "violinist", "economist", "linguist", "astronomer",
	"photographer", "cartographer", "librarian", "geologist", "surgeon",
	"mathematician", "philosopher",
}

var titleAdjectives = []string{
	"silent", "crimson", "endless", "broken", "golden", "hidden", "savage",
	"electric", "frozen", "burning", "midnight", "scarlet", "hollow",
	"restless", "shattered", "luminous", "forgotten", "velvet", "iron",
	"paper",
}

var titleNouns = []string{
	"horizon", "empire", "garden", "river", "mirror", "shadow", "harvest",
	"voyage", "monument", "orchard", "labyrinth", "sanctuary", "avalanche",
	"carnival", "archive", "meridian", "pendulum", "lighthouse", "station",
	"cathedral",
}

var genres = []string{
	"drama", "comedy", "thriller", "documentary", "western", "noir",
	"musical", "adventure", "romance", "mystery",
}

var paperTopics = []string{
	"entity", "resolution", "blocking", "indexing", "parallel", "query",
	"graph", "stream", "schema", "matching", "linkage", "knowledge",
	"semantic", "distributed", "scalable", "adaptive", "incremental",
	"probabilistic", "crowdsourced", "progressive",
}

var venues = []string{
	"icde", "sigmod", "vldb", "edbt", "cikm", "wsdm", "kdd", "www",
	"iswc", "eswc",
}
