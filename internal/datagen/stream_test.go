package datagen

import (
	"reflect"
	"runtime"
	"strings"
	"testing"

	"entityres/internal/entity"
)

// drain materializes a stream for comparison purposes.
func drain(t *testing.T, st *Stream) []Record {
	t.Helper()
	var out []Record
	for {
		rec, ok := st.Next()
		if !ok {
			return out
		}
		out = append(out, rec)
	}
}

// TestStreamDirtyMatchesGenerate pins the contract everything downstream
// (bench baselines, golden fixtures) depends on: the stream emits exactly
// the records GenerateDirty materializes, in order, for several shapes.
func TestStreamDirtyMatchesGenerate(t *testing.T) {
	configs := []Config{
		{Seed: 42, Entities: 200},
		{Seed: 7, Entities: 150, Domain: Movies, MaxDuplicates: 3, DupRatio: 0.7},
		{Seed: 12345, Entities: 150, DupRatio: 0.6, MaxDuplicates: 2},
	}
	for _, cfg := range configs {
		c, gt, err := GenerateDirty(cfg)
		if err != nil {
			t.Fatalf("GenerateDirty: %v", err)
		}
		st, err := StreamDirty(cfg)
		if err != nil {
			t.Fatalf("StreamDirty: %v", err)
		}
		recs := drain(t, st)
		if len(recs) != c.Len() {
			t.Fatalf("cfg %+v: stream emitted %d records, collection has %d", cfg, len(recs), c.Len())
		}
		truthPairs := 0
		for i, rec := range recs {
			d := c.Get(entity.ID(i))
			if rec.URI != d.URI || rec.Source != d.Source || !reflect.DeepEqual(rec.Attrs, d.Attrs) {
				t.Fatalf("cfg %+v: record %d diverges:\nstream:   %s %v\ngenerate: %s %v", cfg, i, rec.URI, rec.Attrs, d.URI, d.Attrs)
			}
			if rec.MatchOf != "" {
				truthPairs++
			}
		}
		// Every duplicate names its original; the transitive closure can
		// only add pairs within a cluster, never drop the dup→orig edges.
		if truthPairs == 0 || gt.Len() < truthPairs {
			t.Fatalf("cfg %+v: %d MatchOf records vs %d truth pairs", cfg, truthPairs, gt.Len())
		}
	}
}

func TestStreamCleanCleanMatchesGenerate(t *testing.T) {
	configs := []Config{
		{Seed: 42, Entities: 200},
		{Seed: 9, Entities: 150, Domain: Movies, DupRatio: 0.8},
	}
	for _, cfg := range configs {
		c, gt, err := GenerateCleanClean(cfg)
		if err != nil {
			t.Fatalf("GenerateCleanClean: %v", err)
		}
		st, err := StreamCleanClean(cfg)
		if err != nil {
			t.Fatalf("StreamCleanClean: %v", err)
		}
		recs := drain(t, st)
		if len(recs) != c.Len() {
			t.Fatalf("cfg %+v: stream emitted %d records, collection has %d", cfg, len(recs), c.Len())
		}
		matchOf := 0
		for i, rec := range recs {
			d := c.Get(entity.ID(i))
			if rec.URI != d.URI || rec.Source != d.Source || !reflect.DeepEqual(rec.Attrs, d.Attrs) {
				t.Fatalf("cfg %+v: record %d diverges:\nstream:   %s src%d %v\ngenerate: %s src%d %v",
					cfg, i, rec.URI, rec.Source, rec.Attrs, d.URI, d.Source, d.Attrs)
			}
			if rec.MatchOf != "" {
				matchOf++
			}
		}
		if matchOf != gt.Len() {
			t.Fatalf("cfg %+v: %d MatchOf records vs %d truth pairs", cfg, matchOf, gt.Len())
		}
	}
}

func TestStreamRejectsBibliographic(t *testing.T) {
	if _, err := StreamDirty(Config{Domain: Bibliographic}); err == nil {
		t.Fatal("StreamDirty accepted the bibliographic domain")
	}
	if _, err := StreamCleanClean(Config{Domain: Bibliographic}); err == nil {
		t.Fatal("StreamCleanClean accepted the bibliographic domain")
	}
	if _, err := StreamColumns(Config{Domain: Bibliographic}, false); err == nil {
		t.Fatal("StreamColumns accepted the bibliographic domain")
	}
}

func TestVocabSuffix(t *testing.T) {
	cases := map[int]string{0: "", 1: "xb", 2: "xc", 25: "xz", 26: "xba", 27: "xbb", 702: "xbba"}
	for k, want := range cases {
		if got := vocabSuffix(k); got != want {
			t.Errorf("vocabSuffix(%d) = %q, want %q", k, got, want)
		}
	}
	for k := 0; k < 1000; k++ {
		for _, r := range vocabSuffix(k) {
			if r < 'a' || r > 'z' {
				t.Fatalf("vocabSuffix(%d) = %q contains non-letter %q", k, vocabSuffix(k), r)
			}
		}
	}
}

func TestScaleVocab(t *testing.T) {
	pool := []string{"paris", "london"}
	if got := scaleVocab(pool, 1); &got[0] != &pool[0] {
		t.Fatal("scale 1 must return the pool itself so unscaled draws stay bit-identical")
	}
	got := scaleVocab(pool, 3)
	want := []string{"paris", "london", "parisxb", "londonxb", "parisxc", "londonxc"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("scaleVocab = %v, want %v", got, want)
	}
	seen := map[string]bool{}
	for _, w := range scaleVocab(firstNames, 50) {
		if seen[w] {
			t.Fatalf("scaled vocab has duplicate %q", w)
		}
		seen[w] = true
	}
}

// TestVocabScaleOneIsIdentical proves VocabScale's default changes
// nothing: the committed bench baselines and golden fixtures all pin
// unscaled corpora.
func TestVocabScaleOneIsIdentical(t *testing.T) {
	base := Config{Seed: 42, Entities: 120}
	scaled := base
	scaled.VocabScale = 1
	a, _, err := GenerateDirty(base)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := GenerateDirty(scaled)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		da, db := a.Get(entity.ID(i)), b.Get(entity.ID(i))
		if da.URI != db.URI || !reflect.DeepEqual(da.Attrs, db.Attrs) {
			t.Fatalf("record %d differs with explicit VocabScale 1", i)
		}
	}
}

// TestVocabScaleSpreadsTokens checks the point of scaling: a larger
// vocabulary spreads values, so the biggest name-token block shrinks.
func TestVocabScaleSpreadsTokens(t *testing.T) {
	count := func(scale int) int {
		cfg := Config{Seed: 42, Entities: 500, VocabScale: scale}
		st, err := StreamDirty(cfg)
		if err != nil {
			t.Fatal(err)
		}
		freq := map[string]int{}
		max := 0
		for {
			rec, ok := st.Next()
			if !ok {
				return max
			}
			for _, a := range rec.Attrs {
				for _, tok := range strings.Fields(a.Value) {
					freq[tok]++
					if freq[tok] > max {
						max = freq[tok]
					}
				}
			}
		}
	}
	unscaled, scaled := count(1), count(8)
	if scaled >= unscaled {
		t.Fatalf("max token frequency did not shrink: scale 1 = %d, scale 8 = %d", unscaled, scaled)
	}
}

func TestStreamColumns(t *testing.T) {
	cols, err := StreamColumns(Config{}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cols, []string{"name", "city", "occupation", "born"}) {
		t.Fatalf("people canonical = %v", cols)
	}
	cols, err = StreamColumns(Config{Domain: Movies}, true)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"title", "director", "year", "genre", "label", "directedBy", "releaseDate", "category"}
	if !reflect.DeepEqual(cols, want) {
		t.Fatalf("movies renamed = %v, want %v", cols, want)
	}
	cols, err = StreamColumns(Config{SchemaNoise: -1}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 4 {
		t.Fatalf("SchemaNoise 0 should not add synonym columns: %v", cols)
	}
	// Every attribute a stream emits must be coverable by its column set.
	cfg := Config{Seed: 3, Entities: 300, Domain: Movies}
	allowed := map[string]bool{}
	cols, err = StreamColumns(cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cols {
		allowed[c] = true
	}
	st, err := StreamDirty(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for {
		rec, ok := st.Next()
		if !ok {
			break
		}
		for _, a := range rec.Attrs {
			if !allowed[a.Name] {
				t.Fatalf("stream emitted attribute %q outside StreamColumns %v", a.Name, cols)
			}
		}
	}
}

// peakLiveHeap drains the stream while sampling the live heap, returning
// the maximum observed. GC runs between samples so the figure tracks
// retained memory, not allocation rate.
func peakLiveHeap(t *testing.T, cfg Config) uint64 {
	t.Helper()
	st, err := StreamDirty(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ms runtime.MemStats
	var peak uint64
	n := 0
	for {
		_, ok := st.Next()
		if !ok {
			break
		}
		n++
		if n%2048 == 0 {
			runtime.GC()
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak {
				peak = ms.HeapAlloc
			}
		}
	}
	runtime.GC()
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > peak {
		peak = ms.HeapAlloc
	}
	return peak
}

// TestStreamDirtyFlatMemory is the regression test for the historical
// generator, which materialized every base up front: a 20x larger corpus
// must not grow the stream's live heap. (At 100k entities the old
// makeBases slice alone retained tens of megabytes; the 4MB margin is
// noise headroom, not a budget.)
func TestStreamDirtyFlatMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("memory profile pass is not -short material")
	}
	small := peakLiveHeap(t, Config{Seed: 42, Entities: 5_000})
	big := peakLiveHeap(t, Config{Seed: 42, Entities: 100_000})
	const margin = 4 << 20
	if big > small+margin {
		t.Fatalf("live heap grew with corpus size: 5k entities peaked at %d bytes, 100k at %d (margin %d)",
			small, big, margin)
	}
}
