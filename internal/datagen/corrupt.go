package datagen

import (
	"math/rand"
	"strings"

	"entityres/internal/entity"
)

// corruptValue applies token-level noise to one attribute value.
func corruptValue(rng *rand.Rand, value string, cor Corruption) string {
	tokens := strings.Fields(value)
	if len(tokens) == 0 {
		return value
	}
	var out []string
	for _, tok := range tokens {
		if len(tokens) > 1 && rng.Float64() < cor.TokenDrop {
			continue
		}
		switch {
		case rng.Float64() < cor.Abbreviate && len(tok) > 1:
			tok = tok[:1]
		case rng.Float64() < cor.Typo:
			tok = typo(rng, tok)
		}
		out = append(out, tok)
	}
	if len(out) == 0 {
		out = tokens[:1]
	}
	if len(out) > 1 && rng.Float64() < cor.TokenSwap {
		for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
			out[i], out[j] = out[j], out[i]
		}
	}
	return strings.Join(out, " ")
}

// typo applies one random character edit: substitution, deletion,
// insertion or adjacent transposition.
func typo(rng *rand.Rand, tok string) string {
	r := []rune(tok)
	if len(r) == 0 {
		return tok
	}
	pos := rng.Intn(len(r))
	switch rng.Intn(4) {
	case 0: // substitution
		r[pos] = 'a' + rune(rng.Intn(26))
	case 1: // deletion
		if len(r) > 1 {
			r = append(r[:pos], r[pos+1:]...)
		}
	case 2: // insertion
		r = append(r[:pos], append([]rune{'a' + rune(rng.Intn(26))}, r[pos:]...)...)
	default: // transposition
		if pos+1 < len(r) {
			r[pos], r[pos+1] = r[pos+1], r[pos]
		} else if pos > 0 {
			r[pos-1], r[pos] = r[pos], r[pos-1]
		}
	}
	return string(r)
}

// corruptCopy derives a noisy duplicate of d: attribute drops, value noise
// and optional attribute renaming into the synonym vocabulary.
func corruptCopy(rng *rand.Rand, d *entity.Description, cor Corruption, renames map[string]string, renameProb float64) *entity.Description {
	out := entity.NewDescription(d.URI)
	out.Source = d.Source
	for _, a := range d.Attrs {
		if len(d.Attrs) > 1 && rng.Float64() < cor.AttrDrop {
			continue
		}
		name := a.Name
		if alt, ok := renames[name]; ok && rng.Float64() < renameProb {
			name = alt
		}
		out.Add(name, corruptValue(rng, a.Value, cor))
	}
	if len(out.Attrs) == 0 {
		// Never emit an empty description: keep the first attribute.
		a := d.Attrs[0]
		out.Add(a.Name, corruptValue(rng, a.Value, cor))
	}
	return out
}
