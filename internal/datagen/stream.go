package datagen

import (
	"fmt"
	"math/rand"
	"strconv"

	"entityres/internal/entity"
)

// Record is one generated description, emitted by a Stream without ever
// materializing the corpus: URI, source index, attribute values, and — for
// duplicate copies — the URI of the KB0 original it matches, which is all
// a consumer needs to reconstruct the ground truth on the fly.
type Record struct {
	URI     string
	Source  int
	Attrs   []entity.Attribute
	MatchOf string
}

// Stream produces generated records one at a time in the exact order (and
// with the exact contents) the materializing generators use, holding O(1)
// generator state instead of the whole corpus. Million-record corpora
// stream through it in flat memory.
type Stream struct {
	next func() (Record, bool)
}

// Next returns the next record, or ok=false once the corpus is exhausted.
func (s *Stream) Next() (Record, bool) { return s.next() }

// vocabSet is the (possibly scaled) vocabulary a generation run draws
// from. All same-seed RNG phases of one stream share it.
type vocabSet struct {
	firstNames, lastNames, cities, occupations []string
	titleAdjectives, titleNouns, genres        []string
}

// vocabSuffix renders k as a letter-only suffix ("", "xb", "xc", ...,
// "xba", ...). Letters — never digits or punctuation — so a scaled word
// still normalizes to a single token and keeps its blocking behavior.
func vocabSuffix(k int) string {
	if k == 0 {
		return ""
	}
	var buf [8]byte
	i := len(buf)
	for k > 0 {
		i--
		buf[i] = byte('a' + k%26)
		k /= 26
	}
	i--
	buf[i] = 'x'
	return string(buf[i:])
}

// scaleVocab multiplies a seed pool by scale, suffixing each replica round
// so entries stay distinct. Scale 1 returns the pool itself: the Zipf
// domain, permutation size and every downstream draw are bit-identical to
// the unscaled generator.
func scaleVocab(pool []string, scale int) []string {
	if scale <= 1 {
		return pool
	}
	out := make([]string, 0, len(pool)*scale)
	for k := 0; k < scale; k++ {
		suffix := vocabSuffix(k)
		for _, w := range pool {
			out = append(out, w+suffix)
		}
	}
	return out
}

func newVocabSet(scale int) *vocabSet {
	return &vocabSet{
		firstNames:      scaleVocab(firstNames, scale),
		lastNames:       scaleVocab(lastNames, scale),
		cities:          scaleVocab(cities, scale),
		occupations:     scaleVocab(occupations, scale),
		titleAdjectives: scaleVocab(titleAdjectives, scale),
		titleNouns:      scaleVocab(titleNouns, scale),
		genres:          scaleVocab(genres, scale),
	}
}

// baseGen lazily generates the distinct real-world entities of a domain,
// one at a time, reproducing makeBases' RNG draw sequence exactly: picker
// construction order, per-entity pick order, and the conditional extra
// draw in the Movies domain. Several same-seed baseGens per stream let
// separate phases walk the base sequence independently without storing it.
type baseGen struct {
	cfg   Config
	vocab *vocabSet
	rng   *rand.Rand
	// People pickers.
	first, last, city, occ *zipfPicker
	// Movies pickers.
	adj, noun, genre *zipfPicker
}

func newBaseGen(cfg Config, vocab *vocabSet) *baseGen {
	g := &baseGen{cfg: cfg, vocab: vocab, rng: rand.New(rand.NewSource(cfg.Seed))}
	switch cfg.Domain {
	case Movies:
		g.adj = newZipfPicker(g.rng, len(vocab.titleAdjectives), cfg.ZipfS)
		g.noun = newZipfPicker(g.rng, len(vocab.titleNouns), cfg.ZipfS)
		g.first = newZipfPicker(g.rng, len(vocab.firstNames), cfg.ZipfS)
		g.last = newZipfPicker(g.rng, len(vocab.lastNames), cfg.ZipfS)
		g.genre = newZipfPicker(g.rng, len(vocab.genres), cfg.ZipfS)
	default: // People
		g.first = newZipfPicker(g.rng, len(vocab.firstNames), cfg.ZipfS)
		g.last = newZipfPicker(g.rng, len(vocab.lastNames), cfg.ZipfS)
		g.city = newZipfPicker(g.rng, len(vocab.cities), cfg.ZipfS)
		g.occ = newZipfPicker(g.rng, len(vocab.occupations), cfg.ZipfS)
	}
	return g
}

// gen produces base i. Callers must request indices sequentially from 0;
// i only feeds the URI suffix, the draws are positional.
func (g *baseGen) gen(i int) base {
	switch g.cfg.Domain {
	case Movies:
		title := "the " + g.vocab.titleAdjectives[g.adj.pick()] + " " + g.vocab.titleNouns[g.noun.pick()]
		if g.rng.Intn(3) == 0 {
			title += " " + g.vocab.titleNouns[g.noun.pick()]
		}
		return base{
			uriLocal: fmt.Sprintf("movie/%s_%d", sanitize(title), i),
			attrs: []entity.Attribute{
				{Name: "title", Value: title},
				{Name: "director", Value: g.vocab.firstNames[g.first.pick()] + " " + g.vocab.lastNames[g.last.pick()]},
				{Name: "year", Value: strconv.Itoa(1950 + g.rng.Intn(70))},
				{Name: "genre", Value: g.vocab.genres[g.genre.pick()]},
			},
		}
	default: // People
		name := g.vocab.firstNames[g.first.pick()] + " " + g.vocab.lastNames[g.last.pick()]
		return base{
			uriLocal: fmt.Sprintf("person/%s_%d", sanitize(name), i),
			attrs: []entity.Attribute{
				{Name: "name", Value: name},
				{Name: "city", Value: g.vocab.cities[g.city.pick()]},
				{Name: "occupation", Value: g.vocab.occupations[g.occ.pick()]},
				{Name: "born", Value: strconv.Itoa(1920 + g.rng.Intn(80))},
			},
		}
	}
}

// skip consumes exactly one base's worth of draws without building
// strings, used to fast-forward a same-seed RNG past the base phase.
func (g *baseGen) skip() {
	switch g.cfg.Domain {
	case Movies:
		g.adj.pick()
		g.noun.pick()
		if g.rng.Intn(3) == 0 {
			g.noun.pick()
		}
		g.first.pick()
		g.last.pick()
		g.rng.Intn(70)
		g.genre.pick()
	default: // People
		g.first.pick()
		g.last.pick()
		g.city.pick()
		g.occ.pick()
		g.rng.Intn(80)
	}
}

// skipAll fast-forwards past all n bases and returns the positioned RNG.
func skipBases(cfg Config, vocab *vocabSet) *rand.Rand {
	g := newBaseGen(cfg, vocab)
	for i := 0; i < cfg.Entities; i++ {
		g.skip()
	}
	return g.rng
}

func streamableConfig(cfg Config) (Config, error) {
	cfg = cfg.withDefaults()
	if cfg.Domain == Bibliographic {
		return cfg, fmt.Errorf("datagen: use GenerateBibliographic for the bibliographic domain")
	}
	return cfg, nil
}

func baseDescription(b base) *entity.Description {
	d := entity.NewDescription(fmt.Sprintf("http://kb0.example.org/%s", b.uriLocal))
	d.Attrs = append(d.Attrs, b.attrs...)
	return d
}

// StreamDirty streams the dirty corpus of cfg: each original immediately
// followed by its corrupted duplicates (MatchOf naming the original), in
// the exact record order and contents GenerateDirty materializes. Memory
// stays flat in cfg.Entities.
//
// The draw-order trick: the historical generator made every base draw,
// then every corruption draw, from one RNG. Here two same-seed RNGs split
// the phases — one regenerates base i lazily at emission, the other is
// fast-forwarded past the whole base phase at construction and serves the
// corruption draws — so the merged sequence each phase sees is unchanged.
func StreamDirty(cfg Config) (*Stream, error) {
	cfg, err := streamableConfig(cfg)
	if err != nil {
		return nil, err
	}
	vocab := newVocabSet(cfg.VocabScale)
	bases := newBaseGen(cfg, vocab)
	corruptRNG := skipBases(cfg, vocab)
	renames := attributeSynonyms[cfg.Domain]

	i := 0
	var pending []Record
	return &Stream{next: func() (Record, bool) {
		if len(pending) > 0 {
			rec := pending[0]
			pending = pending[1:]
			return rec, true
		}
		if i >= cfg.Entities {
			return Record{}, false
		}
		b := bases.gen(i)
		d := baseDescription(b)
		if corruptRNG.Float64() < cfg.DupRatio {
			copies := 1 + corruptRNG.Intn(cfg.MaxDuplicates)
			pending = pending[:0]
			for k := 0; k < copies; k++ {
				dup := corruptCopy(corruptRNG, d, *cfg.Corruption, renames, cfg.SchemaNoise)
				pending = append(pending, Record{
					URI:     fmt.Sprintf("http://kb0.example.org/%s_dup%d_%d", b.uriLocal, k, i),
					Attrs:   dup.Attrs,
					MatchOf: d.URI,
				})
			}
		}
		i++
		return Record{URI: d.URI, Attrs: d.Attrs}, true
	}}, nil
}

// StreamCleanClean streams the clean-clean corpus of cfg: every KB0
// description first, then the corrupted KB1 counterparts (MatchOf naming
// the KB0 original), in the exact order and contents GenerateCleanClean
// materializes. Two lazy base generators walk the base sequence once per
// source, so nothing is retained between the passes.
func StreamCleanClean(cfg Config) (*Stream, error) {
	cfg, err := streamableConfig(cfg)
	if err != nil {
		return nil, err
	}
	vocab := newVocabSet(cfg.VocabScale)
	kb0Bases := newBaseGen(cfg, vocab)
	kb1Bases := newBaseGen(cfg, vocab)
	corruptRNG := skipBases(cfg, vocab)
	renames := attributeSynonyms[cfg.Domain]

	i0, i1 := 0, 0
	return &Stream{next: func() (Record, bool) {
		if i0 < cfg.Entities {
			d := baseDescription(kb0Bases.gen(i0))
			i0++
			return Record{URI: d.URI, Attrs: d.Attrs}, true
		}
		for i1 < cfg.Entities {
			dup := corruptRNG.Float64() < cfg.DupRatio
			b := kb1Bases.gen(i1)
			i1++
			if !dup {
				continue
			}
			d := baseDescription(b)
			out := corruptCopy(corruptRNG, d, *cfg.Corruption, renames, cfg.SchemaNoise)
			return Record{
				URI:     fmt.Sprintf("http://kb1.example.org/%s", b.uriLocal),
				Source:  1,
				Attrs:   out.Attrs,
				MatchOf: d.URI,
			}, true
		}
		return Record{}, false
	}}, nil
}

// StreamColumns returns the attribute names a streamed corpus of cfg can
// carry, in canonical schema order — the column set for a CSV rendering.
// With renamed set (duplicate copies present in the file and SchemaNoise
// active), the proprietary synonyms follow the canonical names.
func StreamColumns(cfg Config, renamed bool) ([]string, error) {
	cfg, err := streamableConfig(cfg)
	if err != nil {
		return nil, err
	}
	var canonical []string
	switch cfg.Domain {
	case Movies:
		canonical = []string{"title", "director", "year", "genre"}
	default:
		canonical = []string{"name", "city", "occupation", "born"}
	}
	if !renamed || cfg.SchemaNoise <= 0 {
		return canonical, nil
	}
	renames := attributeSynonyms[cfg.Domain]
	out := append([]string(nil), canonical...)
	for _, name := range canonical {
		if alt, ok := renames[name]; ok {
			out = append(out, alt)
		}
	}
	return out, nil
}
