package datagen

import (
	"fmt"

	"entityres/internal/entity"
)

// base is one real-world entity before duplication.
type base struct {
	uriLocal string
	attrs    []entity.Attribute
}

func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' {
			out = append(out, '_')
		} else {
			out = append(out, s[i])
		}
	}
	return string(out)
}

// GenerateDirty builds a single collection in which DupRatio of the
// entities carry 1..MaxDuplicates corrupted duplicate descriptions, and
// returns the collection with its transitively-closed ground truth. It is
// a materializing wrapper over StreamDirty — record order and contents are
// identical; use the stream directly when the corpus must not fit in
// memory.
func GenerateDirty(cfg Config) (*entity.Collection, *entity.Matches, error) {
	st, err := StreamDirty(cfg)
	if err != nil {
		return nil, nil, err
	}
	c := entity.NewCollection(entity.Dirty)
	var clusters [][]entity.ID
	var cluster []entity.ID
	flush := func() {
		if len(cluster) > 1 {
			clusters = append(clusters, cluster)
		}
	}
	for {
		rec, ok := st.Next()
		if !ok {
			break
		}
		d := entity.NewDescription(rec.URI)
		d.Attrs = rec.Attrs
		id, err := c.Add(d)
		if err != nil {
			return nil, nil, err
		}
		if rec.MatchOf == "" {
			flush()
			cluster = []entity.ID{id}
		} else {
			cluster = append(cluster, id)
		}
	}
	flush()
	return c, entity.FromClusters(clusters), nil
}

// GenerateCleanClean builds two KBs over the same universe: KB0 holds every
// entity with canonical schema; KB1 holds DupRatio of them, corrupted and
// (with probability SchemaNoise per attribute) renamed into its proprietary
// vocabulary. The ground truth is the cross-KB pairs. Like GenerateDirty,
// this materializes StreamCleanClean.
func GenerateCleanClean(cfg Config) (*entity.Collection, *entity.Matches, error) {
	st, err := StreamCleanClean(cfg)
	if err != nil {
		return nil, nil, err
	}
	c := entity.NewCollection(entity.CleanClean)
	gt := entity.NewMatches()
	kb0 := make(map[string]entity.ID)
	for {
		rec, ok := st.Next()
		if !ok {
			break
		}
		d := entity.NewDescription(rec.URI)
		d.Source = rec.Source
		d.Attrs = rec.Attrs
		id, err := c.Add(d)
		if err != nil {
			return nil, nil, err
		}
		if rec.MatchOf == "" {
			kb0[rec.URI] = id
			continue
		}
		orig, ok := kb0[rec.MatchOf]
		if !ok {
			return nil, nil, fmt.Errorf("datagen: record %s matches unknown original %s", rec.URI, rec.MatchOf)
		}
		gt.Add(orig, id)
	}
	return c, gt, nil
}
