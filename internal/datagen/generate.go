package datagen

import (
	"fmt"
	"math/rand"
	"strconv"

	"entityres/internal/entity"
)

// base is one real-world entity before duplication.
type base struct {
	uriLocal string
	attrs    []entity.Attribute
}

// makeBases generates the distinct real-world entities of the configured
// domain with Zipf-skewed vocabulary sampling.
func makeBases(rng *rand.Rand, cfg Config) []base {
	n := cfg.Entities
	out := make([]base, 0, n)
	switch cfg.Domain {
	case Movies:
		adj := newZipfPicker(rng, len(titleAdjectives), cfg.ZipfS)
		noun := newZipfPicker(rng, len(titleNouns), cfg.ZipfS)
		first := newZipfPicker(rng, len(firstNames), cfg.ZipfS)
		last := newZipfPicker(rng, len(lastNames), cfg.ZipfS)
		genre := newZipfPicker(rng, len(genres), cfg.ZipfS)
		for i := 0; i < n; i++ {
			title := "the " + titleAdjectives[adj.pick()] + " " + titleNouns[noun.pick()]
			if rng.Intn(3) == 0 {
				title += " " + titleNouns[noun.pick()]
			}
			out = append(out, base{
				uriLocal: fmt.Sprintf("movie/%s_%d", sanitize(title), i),
				attrs: []entity.Attribute{
					{Name: "title", Value: title},
					{Name: "director", Value: firstNames[first.pick()] + " " + lastNames[last.pick()]},
					{Name: "year", Value: strconv.Itoa(1950 + rng.Intn(70))},
					{Name: "genre", Value: genres[genre.pick()]},
				},
			})
		}
	default: // People
		first := newZipfPicker(rng, len(firstNames), cfg.ZipfS)
		last := newZipfPicker(rng, len(lastNames), cfg.ZipfS)
		city := newZipfPicker(rng, len(cities), cfg.ZipfS)
		occ := newZipfPicker(rng, len(occupations), cfg.ZipfS)
		for i := 0; i < n; i++ {
			name := firstNames[first.pick()] + " " + lastNames[last.pick()]
			out = append(out, base{
				uriLocal: fmt.Sprintf("person/%s_%d", sanitize(name), i),
				attrs: []entity.Attribute{
					{Name: "name", Value: name},
					{Name: "city", Value: cities[city.pick()]},
					{Name: "occupation", Value: occupations[occ.pick()]},
					{Name: "born", Value: strconv.Itoa(1920 + rng.Intn(80))},
				},
			})
		}
	}
	return out
}

func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' {
			out = append(out, '_')
		} else {
			out = append(out, s[i])
		}
	}
	return string(out)
}

// GenerateDirty builds a single collection in which DupRatio of the
// entities carry 1..MaxDuplicates corrupted duplicate descriptions, and
// returns the collection with its transitively-closed ground truth.
func GenerateDirty(cfg Config) (*entity.Collection, *entity.Matches, error) {
	cfg = cfg.withDefaults()
	if cfg.Domain == Bibliographic {
		return nil, nil, fmt.Errorf("datagen: use GenerateBibliographic for the bibliographic domain")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	bases := makeBases(rng, cfg)
	c := entity.NewCollection(entity.Dirty)
	renames := attributeSynonyms[cfg.Domain]
	var clusters [][]entity.ID
	for i, b := range bases {
		d := entity.NewDescription(fmt.Sprintf("http://kb0.example.org/%s", b.uriLocal))
		d.Attrs = append(d.Attrs, b.attrs...)
		id, err := c.Add(d)
		if err != nil {
			return nil, nil, err
		}
		cluster := []entity.ID{id}
		if rng.Float64() < cfg.DupRatio {
			copies := 1 + rng.Intn(cfg.MaxDuplicates)
			for k := 0; k < copies; k++ {
				dup := corruptCopy(rng, d, *cfg.Corruption, renames, cfg.SchemaNoise)
				dup.URI = fmt.Sprintf("http://kb0.example.org/%s_dup%d_%d", b.uriLocal, k, i)
				dupID, err := c.Add(dup)
				if err != nil {
					return nil, nil, err
				}
				cluster = append(cluster, dupID)
			}
		}
		if len(cluster) > 1 {
			clusters = append(clusters, cluster)
		}
	}
	return c, entity.FromClusters(clusters), nil
}

// GenerateCleanClean builds two KBs over the same universe: KB0 holds every
// entity with canonical schema; KB1 holds DupRatio of them, corrupted and
// (with probability SchemaNoise per attribute) renamed into its proprietary
// vocabulary. The ground truth is the cross-KB pairs.
func GenerateCleanClean(cfg Config) (*entity.Collection, *entity.Matches, error) {
	cfg = cfg.withDefaults()
	if cfg.Domain == Bibliographic {
		return nil, nil, fmt.Errorf("datagen: use GenerateBibliographic for the bibliographic domain")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	bases := makeBases(rng, cfg)
	c := entity.NewCollection(entity.CleanClean)
	renames := attributeSynonyms[cfg.Domain]
	gt := entity.NewMatches()
	ids0 := make([]entity.ID, len(bases))
	for i, b := range bases {
		d := entity.NewDescription(fmt.Sprintf("http://kb0.example.org/%s", b.uriLocal))
		d.Attrs = append(d.Attrs, b.attrs...)
		id, err := c.Add(d)
		if err != nil {
			return nil, nil, err
		}
		ids0[i] = id
	}
	for i, b := range bases {
		if rng.Float64() >= cfg.DupRatio {
			continue
		}
		src := c.Get(ids0[i])
		dup := corruptCopy(rng, src, *cfg.Corruption, renames, cfg.SchemaNoise)
		dup.Source = 1
		dup.URI = fmt.Sprintf("http://kb1.example.org/%s", b.uriLocal)
		id, err := c.Add(dup)
		if err != nil {
			return nil, nil, err
		}
		gt.Add(ids0[i], id)
	}
	return c, gt, nil
}
