// Package datagen generates synthetic knowledge bases with exact ground
// truth, substituting for the LOD-cloud corpora (DBpedia, Freebase,
// GeoNames, ...) used by the systems the paper surveys. The generator
// controls precisely the statistical structure those algorithms are
// sensitive to: token overlap between matching descriptions (corruption
// knobs), schema overlap across sources (attribute-rename maps simulating
// proprietary vocabularies), popularity skew (Zipf vocabulary sampling, so
// blocks have the heavy-tailed size distribution of real KBs) and the
// dirty vs clean-clean setting.
package datagen

import (
	"fmt"
	"math/rand"
)

// Domain selects the vocabulary profile of generated entities, mirroring
// the benchmark families of [13].
type Domain int

const (
	// People is census-style person data (name, city, occupation, birth
	// year) — the classic deduplication profile.
	People Domain = iota
	// Movies is film data (title, director, year, genre) — the
	// IMDB-vs-DBpedia interlinking profile.
	Movies
	// Bibliographic is publication data with author relationships — the
	// collective-resolution profile (use GenerateBibliographic).
	Bibliographic
)

// String implements fmt.Stringer.
func (d Domain) String() string {
	switch d {
	case People:
		return "people"
	case Movies:
		return "movies"
	case Bibliographic:
		return "bibliographic"
	default:
		return fmt.Sprintf("Domain(%d)", int(d))
	}
}

// Corruption sets the per-copy noise applied to duplicated descriptions.
// All fields are probabilities in [0,1].
type Corruption struct {
	// Typo corrupts a token with a random character edit.
	Typo float64
	// TokenDrop removes a token from a value.
	TokenDrop float64
	// Abbreviate truncates a token to its initial ("alice" → "a").
	Abbreviate float64
	// AttrDrop removes an entire attribute from the copy.
	AttrDrop float64
	// TokenSwap reverses the token order of a value.
	TokenSwap float64
}

// LightCorruption mimics well-curated duplicate sources (center of the LOD
// cloud): highly similar descriptions.
func LightCorruption() Corruption {
	return Corruption{Typo: 0.05, TokenDrop: 0.05, Abbreviate: 0.03, AttrDrop: 0.05, TokenSwap: 0.1}
}

// HeavyCorruption mimics periphery sources: somehow similar descriptions
// with few common tokens.
func HeavyCorruption() Corruption {
	return Corruption{Typo: 0.2, TokenDrop: 0.25, Abbreviate: 0.1, AttrDrop: 0.25, TokenSwap: 0.3}
}

// Config parameterizes generation.
type Config struct {
	// Seed drives the deterministic PRNG (default 1).
	Seed int64
	// Entities is the number of distinct real-world entities (default
	// 100).
	Entities int
	// DupRatio is, for dirty collections, the fraction of entities that
	// receive duplicate descriptions; for clean-clean collections, the
	// fraction present in both KBs (default 0.5).
	DupRatio float64
	// MaxDuplicates bounds extra copies per duplicated entity in dirty
	// collections (default 1, i.e. pairs).
	MaxDuplicates int
	// Corruption is applied to every duplicate copy (default
	// LightCorruption).
	Corruption *Corruption
	// SchemaNoise is the probability that source 1 renames an attribute to
	// its proprietary synonym in clean-clean generation (default 0.5);
	// dirty generation applies it to duplicate copies.
	SchemaNoise float64
	// ZipfS is the Zipf skew parameter for vocabulary sampling (must be
	// > 1; default 1.2). Larger values concentrate tokens, producing more
	// heavily skewed block sizes.
	ZipfS float64
	// Domain selects the vocabulary profile (default People).
	Domain Domain
	// VocabScale multiplies the seed vocabulary pools (default 1, the
	// historical pools verbatim). Million-record corpora need it: with a
	// few dozen base words every description shares tokens with every
	// other, so block sizes — and comparison counts — grow quadratically.
	// Scaled entries carry letter-only suffixes ("paris" → "parisxb") so
	// they still normalize to single tokens.
	VocabScale int
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Entities <= 0 {
		c.Entities = 100
	}
	if c.DupRatio <= 0 {
		c.DupRatio = 0.5
	}
	if c.MaxDuplicates <= 0 {
		c.MaxDuplicates = 1
	}
	if c.Corruption == nil {
		lc := LightCorruption()
		c.Corruption = &lc
	}
	if c.SchemaNoise < 0 {
		c.SchemaNoise = 0
	} else if c.SchemaNoise == 0 {
		c.SchemaNoise = 0.5
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.2
	}
	if c.VocabScale <= 0 {
		c.VocabScale = 1
	}
	return c
}

// zipfPicker samples indices in [0, n) with Zipf-distributed popularity,
// shuffled so popularity is not correlated with lexicographic order.
type zipfPicker struct {
	z    *rand.Zipf
	perm []int
}

func newZipfPicker(rng *rand.Rand, n int, s float64) *zipfPicker {
	return &zipfPicker{
		z:    rand.NewZipf(rng, s, 1, uint64(n-1)),
		perm: rng.Perm(n),
	}
}

func (p *zipfPicker) pick() int { return p.perm[int(p.z.Uint64())] }

// attributeSynonyms maps canonical attribute names to the proprietary
// vocabulary of a second source, per domain.
var attributeSynonyms = map[Domain]map[string]string{
	People: {
		"name":       "label",
		"city":       "location",
		"occupation": "profession",
		"born":       "birthYear",
	},
	Movies: {
		"title":    "label",
		"director": "directedBy",
		"year":     "releaseDate",
		"genre":    "category",
	},
	Bibliographic: {
		"title":  "label",
		"venue":  "publishedIn",
		"year":   "date",
		"author": "creator",
	},
}
