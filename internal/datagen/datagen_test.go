package datagen

import (
	"math/rand"
	"strings"
	"testing"

	"entityres/internal/entity"
)

func TestGenerateDirtyDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, Entities: 50}
	c1, gt1, err := GenerateDirty(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c2, gt2, err := GenerateDirty(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Len() != c2.Len() || gt1.Len() != gt2.Len() {
		t.Fatalf("nondeterministic: %d/%d vs %d/%d", c1.Len(), gt1.Len(), c2.Len(), gt2.Len())
	}
	for i := 0; i < c1.Len(); i++ {
		if c1.Get(i).String() != c2.Get(i).String() {
			t.Fatalf("description %d differs", i)
		}
	}
}

func TestGenerateDirtyShape(t *testing.T) {
	c, gt, err := GenerateDirty(Config{Seed: 7, Entities: 100, DupRatio: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() <= 100 {
		t.Fatalf("no duplicates generated: %d", c.Len())
	}
	if gt.Len() == 0 {
		t.Fatal("empty ground truth")
	}
	if c.Kind() != entity.Dirty {
		t.Fatal("kind")
	}
	// Every ground-truth pair refers to valid ids.
	gt.Each(func(p entity.Pair) bool {
		if c.Get(p.A) == nil || c.Get(p.B) == nil {
			t.Fatalf("dangling gt pair %v", p)
		}
		return true
	})
	// No empty descriptions.
	for _, d := range c.All() {
		if len(d.Attrs) == 0 {
			t.Fatalf("empty description %d", d.ID)
		}
	}
}

func TestGenerateDirtyMaxDuplicates(t *testing.T) {
	c, gt, err := GenerateDirty(Config{Seed: 5, Entities: 40, DupRatio: 1, MaxDuplicates: 3})
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() < 80 {
		t.Fatalf("dup ratio 1 yielded %d descriptions", c.Len())
	}
	clusters := gt.Clusters()
	maxSize := 0
	for _, cl := range clusters {
		if len(cl) > maxSize {
			maxSize = len(cl)
		}
	}
	if maxSize < 3 || maxSize > 4 {
		t.Fatalf("max cluster size = %d, want in [3,4]", maxSize)
	}
}

func TestGenerateCleanCleanShape(t *testing.T) {
	c, gt, err := GenerateCleanClean(Config{Seed: 9, Entities: 80, DupRatio: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if c.Kind() != entity.CleanClean {
		t.Fatal("kind")
	}
	if c.SourceLen(0) != 80 {
		t.Fatalf("source0 = %d", c.SourceLen(0))
	}
	if c.SourceLen(1) == 0 || c.SourceLen(1) >= 80 {
		t.Fatalf("source1 = %d", c.SourceLen(1))
	}
	if gt.Len() != c.SourceLen(1) {
		t.Fatalf("gt = %d, source1 = %d", gt.Len(), c.SourceLen(1))
	}
	// Ground truth is strictly cross-source.
	gt.Each(func(p entity.Pair) bool {
		if c.Get(p.A).Source == c.Get(p.B).Source {
			t.Fatalf("same-source gt pair %v", p)
		}
		return true
	})
}

func TestCleanCleanSchemaNoiseRenamesAttributes(t *testing.T) {
	c, _, err := GenerateCleanClean(Config{Seed: 3, Entities: 60, DupRatio: 1, SchemaNoise: 1})
	if err != nil {
		t.Fatal(err)
	}
	sawAlt := false
	for _, d := range c.All() {
		if d.Source != 1 {
			continue
		}
		for _, a := range d.Attrs {
			if a.Name == "label" || a.Name == "location" || a.Name == "profession" || a.Name == "birthYear" {
				sawAlt = true
			}
			if a.Name == "name" || a.Name == "city" {
				t.Fatalf("schemaNoise=1 left canonical attr %q", a.Name)
			}
		}
	}
	if !sawAlt {
		t.Fatal("no renamed attributes found")
	}
}

func TestGenerateMoviesDomain(t *testing.T) {
	c, _, err := GenerateCleanClean(Config{Seed: 4, Entities: 30, Domain: Movies})
	if err != nil {
		t.Fatal(err)
	}
	d := c.Get(0)
	if _, ok := d.Value("title"); !ok {
		t.Fatalf("movie without title: %v", d)
	}
	if _, ok := d.Value("director"); !ok {
		t.Fatal("movie without director")
	}
}

func TestBibliographicRelationships(t *testing.T) {
	c, gt, err := GenerateBibliographic(Config{Seed: 6, Entities: 30, DupRatio: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	// Index URIs.
	byURI := map[string]*entity.Description{}
	for _, d := range c.All() {
		byURI[d.URI] = d
	}
	papers, authors, refs := 0, 0, 0
	for _, d := range c.All() {
		if strings.Contains(d.URI, "/paper/") {
			papers++
			for _, name := range []string{"author", "creator"} {
				for _, v := range d.Values(name) {
					refs++
					ref, ok := byURI[v]
					if !ok {
						t.Fatalf("dangling author ref %q", v)
					}
					if ref.Source != d.Source {
						t.Fatalf("cross-source author ref %q", v)
					}
				}
			}
		} else {
			authors++
		}
	}
	if papers == 0 || authors == 0 || refs == 0 {
		t.Fatalf("papers=%d authors=%d refs=%d", papers, authors, refs)
	}
	if gt.Len() == 0 {
		t.Fatal("empty ground truth")
	}
	// GT must include both paper and author pairs.
	paperPairs, authorPairs := 0, 0
	gt.Each(func(p entity.Pair) bool {
		if strings.Contains(c.Get(p.A).URI, "/paper/") {
			paperPairs++
		} else {
			authorPairs++
		}
		return true
	})
	if paperPairs == 0 || authorPairs == 0 {
		t.Fatalf("paperPairs=%d authorPairs=%d", paperPairs, authorPairs)
	}
}

func TestBibliographicRejectedByScalarGenerators(t *testing.T) {
	if _, _, err := GenerateDirty(Config{Domain: Bibliographic}); err == nil {
		t.Fatal("GenerateDirty must reject Bibliographic")
	}
	if _, _, err := GenerateCleanClean(Config{Domain: Bibliographic}); err == nil {
		t.Fatal("GenerateCleanClean must reject Bibliographic")
	}
}

func TestCorruptValueNeverEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cor := Corruption{TokenDrop: 1}
	for i := 0; i < 50; i++ {
		if got := corruptValue(rng, "alpha beta gamma", cor); got == "" {
			t.Fatal("corruption emptied value")
		}
	}
	if corruptValue(rng, "", cor) != "" {
		t.Fatal("empty value should stay empty")
	}
}

func TestTypoKeepsNonEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		got := typo(rng, "ab")
		if got == "" {
			t.Fatal("typo produced empty token")
		}
	}
	if typo(rng, "") != "" {
		t.Fatal("typo on empty should be no-op")
	}
}

func TestCorruptCopyKeepsAtLeastOneAttr(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := entity.NewDescription("u").Add("name", "alice smith")
	cor := Corruption{AttrDrop: 1}
	for i := 0; i < 20; i++ {
		cp := corruptCopy(rng, d, cor, nil, 0)
		if len(cp.Attrs) == 0 {
			t.Fatal("copy lost all attributes")
		}
	}
}

func TestDomainString(t *testing.T) {
	if People.String() != "people" || Movies.String() != "movies" || Bibliographic.String() != "bibliographic" {
		t.Fatal("domain strings")
	}
	if Domain(9).String() != "Domain(9)" {
		t.Fatal("unknown domain string")
	}
}

func TestCorruptionPresets(t *testing.T) {
	l, h := LightCorruption(), HeavyCorruption()
	if !(h.Typo > l.Typo && h.TokenDrop > l.TokenDrop && h.AttrDrop > l.AttrDrop) {
		t.Fatal("heavy corruption should dominate light")
	}
}
