package blocking

import (
	"fmt"
	"sort"

	"entityres/internal/entity"
)

// SortedNeighborhood implements (multi-pass) sorted neighborhood blocking:
// descriptions are sorted by a blocking key and a window of fixed size
// slides over the sorted order; each window position is a block. The method
// trades missed matches whose keys sort far apart for a comparison count
// linear in the collection size, and is also the substrate of the sorted
// list of pairs used by progressive resolution (§IV).
type SortedNeighborhood struct {
	// Window is the window size w ≥ 2 (default 4). Each block holds w
	// consecutive descriptions in key order.
	Window int
	// Keys lists one ScalarKeyFunc per pass; every pass contributes its own
	// windows. Empty defaults to a single schema-agnostic pass using
	// SortedTokensKey(nil).
	Keys []ScalarKeyFunc
}

// Name implements Blocker.
func (s *SortedNeighborhood) Name() string { return "sortednbhd" }

// Block implements Blocker.
func (s *SortedNeighborhood) Block(c *entity.Collection) (*Blocks, error) {
	w := s.Window
	if w < 2 {
		w = 4
	}
	keys := s.Keys
	if len(keys) == 0 {
		keys = []ScalarKeyFunc{SortedTokensKey(nil)}
	}
	bs := NewBlocks(c.Kind())
	for pass, kf := range keys {
		order := SortedOrder(c, kf)
		for i := 0; i+w <= len(order); i++ {
			blk := &Block{Key: fmt.Sprintf("p%d/w%d", pass, i)}
			for _, id := range order[i : i+w] {
				if c.Get(id).Source == 1 {
					blk.S1 = append(blk.S1, id)
				} else {
					blk.S0 = append(blk.S0, id)
				}
			}
			bs.Add(blk)
		}
	}
	return bs, nil
}

// SortedOrder returns the description IDs of c sorted by the scalar key
// (ties broken by ID). Exported because progressive sorted-neighborhood
// methods schedule comparisons directly over this order.
func SortedOrder(c *entity.Collection, kf ScalarKeyFunc) []entity.ID {
	type rec struct {
		key string
		id  entity.ID
	}
	recs := make([]rec, 0, c.Len())
	for _, d := range c.All() {
		recs = append(recs, rec{key: kf(d), id: d.ID})
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].key != recs[j].key {
			return recs[i].key < recs[j].key
		}
		return recs[i].id < recs[j].id
	})
	out := make([]entity.ID, len(recs))
	for i, r := range recs {
		out[i] = r.id
	}
	return out
}
