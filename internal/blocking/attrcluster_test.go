package blocking

import (
	"testing"

	"entityres/internal/token"
)

// Clean-clean KBs using disjoint schemas for the same values: attribute
// clustering must link name↔label and job↔occupation, then block within
// clusters.
func TestAttributeClusteringCrossSchema(t *testing.T) {
	c := ccCollection(t,
		[][]string{
			{"name", "alice smith", "job", "painter artist"},
			{"name", "bob jones", "job", "composer musician"},
		},
		[][]string{
			{"label", "alice m smith", "occupation", "painter and artist"},
			{"label", "robert jones", "occupation", "musician composer"},
		},
	)
	bs := blockWith(t, &AttributeClustering{}, c)
	if !sharesBlock(bs, 0, 2) {
		t.Fatal("matching descriptions must share a cluster-qualified block")
	}
}

// The precision win over token blocking: a value colliding across unrelated
// attributes must not create a block once attributes are clustered apart.
func TestAttributeClusteringSeparatesUnrelatedAttrs(t *testing.T) {
	c := ccCollection(t,
		[][]string{
			{"surname", "smith johnson baker", "profession", "welder turner cooper"},
			{"surname", "turner abbott", "profession", "glazier mason"},
		},
		[][]string{
			{"lastname", "smith johnson walker", "craft", "welder turner mason"},
			{"lastname", "turner yates", "craft", "plumber glazier"},
		},
	)
	tb := blockWith(t, &TokenBlocking{}, c)
	ac := blockWith(t, &AttributeClustering{}, c)
	// "turner" as a surname (entity 1) vs as a profession (entity 2 of
	// source 1): token blocking pairs them, attribute clustering must not.
	if !sharesBlock(tb, 1, 2) {
		t.Fatal("precondition: token blocking should suggest the spurious pair")
	}
	if ac.TotalComparisons() >= tb.TotalComparisons() {
		t.Fatalf("attribute clustering should reduce comparisons: %d vs %d",
			ac.TotalComparisons(), tb.TotalComparisons())
	}
}

func TestAttributeClusteringDirty(t *testing.T) {
	c := dirtyCollection(t,
		[]string{"name", "alice smith"},
		[]string{"fullName", "alice smith"},
	)
	bs := blockWith(t, &AttributeClustering{}, c)
	if !sharesBlock(bs, 0, 1) {
		t.Fatal("dirty attribute clustering must link name and fullName")
	}
}

func TestAttributeClusteringCustomProfiler(t *testing.T) {
	c := ccCollection(t,
		[][]string{{"name", "the alice"}},
		[][]string{{"label", "the alice"}},
	)
	p := &token.Profiler{Scheme: token.SchemaAgnostic, Stopwords: token.DefaultStopwords()}
	bs := blockWith(t, &AttributeClustering{Profiler: p}, c)
	for _, b := range bs.All() {
		if b.Key == "the" {
			t.Fatal("stopword key leaked")
		}
	}
	if !sharesBlock(bs, 0, 1) {
		t.Fatal("pair lost")
	}
}

func TestStringUF(t *testing.T) {
	u := newStringUF()
	u.union("b", "a")
	u.union("c", "b")
	if u.find("c") != "a" {
		t.Fatalf("find(c) = %q, want smallest root a", u.find("c"))
	}
	u.union("a", "c") // no-op
	if u.find("a") != "a" {
		t.Fatal("root changed by redundant union")
	}
}
