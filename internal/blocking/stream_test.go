package blocking

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"entityres/internal/datagen"
	"entityres/internal/entity"
)

// streamBlockers are the blockers that support incremental maintenance.
func streamBlockers() []StreamableBlocker {
	return []StreamableBlocker{
		&TokenBlocking{},
		&StandardBlocking{},
		&QGramsBlocking{Q: 3},
	}
}

// renderBlocks prints a block collection in its deterministic order so two
// collections can be compared byte-for-byte.
func renderBlocks(bs *Blocks) string {
	out := ""
	for _, b := range bs.All() {
		out += fmt.Sprintf("%q %v %v\n", b.Key, b.S0, b.S1)
	}
	return out
}

// TestBlockIndexMatchesBatchBuild maintains a BlockIndex under random
// add/remove/re-add churn and checks the materialized collection equals the
// batch build over the surviving descriptions at every checkpoint.
func TestBlockIndexMatchesBatchBuild(t *testing.T) {
	for _, kind := range []entity.Kind{entity.Dirty, entity.CleanClean} {
		for _, sb := range streamBlockers() {
			t.Run(fmt.Sprintf("%s/%s", kind, sb.Name()), func(t *testing.T) {
				var c *entity.Collection
				var err error
				if kind == entity.Dirty {
					c, _, err = datagen.GenerateDirty(datagen.Config{Seed: 11, Entities: 60})
				} else {
					c, _, err = datagen.GenerateCleanClean(datagen.Config{Seed: 11, Entities: 60})
				}
				if err != nil {
					t.Fatal(err)
				}
				keyer := sb.StreamKeyer()
				bi := NewBlockIndex(kind)
				live := map[entity.ID]bool{}
				rng := rand.New(rand.NewSource(99))

				check := func() {
					t.Helper()
					sub := entity.NewCollection(kind)
					remap := map[entity.ID]entity.ID{}
					for _, d := range c.All() {
						if !live[d.ID] {
							continue
						}
						cp := d.Clone()
						id := sub.MustAdd(cp)
						remap[id] = d.ID
					}
					want, err := sb.Block(sub)
					if err != nil {
						t.Fatal(err)
					}
					// Rewrite the batch members into the index's ID space.
					rewritten := NewBlocks(kind)
					for _, b := range want.All() {
						nb := &Block{Key: b.Key}
						for _, id := range b.S0 {
							nb.S0 = append(nb.S0, remap[id])
						}
						for _, id := range b.S1 {
							nb.S1 = append(nb.S1, remap[id])
						}
						sortIDs(nb.S0)
						sortIDs(nb.S1)
						rewritten.Add(nb)
					}
					got, want2 := renderBlocks(bi.Blocks()), renderBlocks(rewritten)
					if got != want2 {
						t.Fatalf("incremental blocks diverge from batch build:\nincremental:\n%s\nbatch:\n%s", got, want2)
					}
				}

				for step := 0; step < 200; step++ {
					id := entity.ID(rng.Intn(c.Len()))
					d := c.Get(id)
					if live[id] {
						bi.Remove(id)
						live[id] = false
					} else {
						if err := bi.Add(id, d.Source, keyer(d)); err != nil {
							t.Fatal(err)
						}
						live[id] = true
					}
					if step%50 == 49 {
						check()
					}
				}
				check()
			})
		}
	}
}

// TestBlockIndexDeltaBlocks checks the delta frontier of a description is
// exactly its comparable co-blocked candidates, each pair enumerated once.
func TestBlockIndexDeltaBlocks(t *testing.T) {
	bi := NewBlockIndex(entity.CleanClean)
	if err := bi.Add(0, 0, []string{"x", "y"}); err != nil {
		t.Fatal(err)
	}
	if err := bi.Add(1, 0, []string{"x"}); err != nil {
		t.Fatal(err)
	}
	if err := bi.Add(2, 1, []string{"x", "y"}); err != nil {
		t.Fatal(err)
	}
	if err := bi.Add(3, 1, []string{"y", "z"}); err != nil {
		t.Fatal(err)
	}

	// Description 0 (source 0) must see only source-1 members: 2 via x and
	// y, 3 via y — pair {0,2} deduplicated across keys by the iterator.
	delta := bi.DeltaBlocks(0)
	got := map[entity.Pair]int{}
	it := NewCompareIterator(delta)
	for {
		p, ok := it.Next()
		if !ok {
			break
		}
		got[p]++
	}
	want := map[entity.Pair]int{
		entity.NewPair(0, 2): 1,
		entity.NewPair(0, 3): 1,
	}
	if len(got) != len(want) {
		t.Fatalf("delta pairs = %v, want %v", got, want)
	}
	for p, n := range want {
		if got[p] != n {
			t.Fatalf("pair %v enumerated %d times, want %d", p, got[p], n)
		}
	}

	// Unknown descriptions have an empty frontier.
	if delta := bi.DeltaBlocks(42); delta.Len() != 0 {
		t.Fatalf("DeltaBlocks(42) has %d blocks, want 0", delta.Len())
	}

	// Accessor semantics.
	if bi.Kind() != entity.CleanClean {
		t.Fatalf("Kind = %v", bi.Kind())
	}
	if bi.Len() != 4 {
		t.Fatalf("Len = %d, want 4", bi.Len())
	}
	if bi.NumKeys() != 3 {
		t.Fatalf("NumKeys = %d, want 3 (x, y, z)", bi.NumKeys())
	}
	if bi.DF("y") != 3 || bi.DF("absent") != 0 {
		t.Fatalf("DF(y) = %d, DF(absent) = %d", bi.DF("y"), bi.DF("absent"))
	}
	if keys := bi.Keys(3); !reflect.DeepEqual(keys, []string{"y", "z"}) {
		t.Fatalf("Keys(3) = %v", keys)
	}
	if bi.Keys(42) != nil {
		t.Fatalf("Keys(42) = %v, want nil", bi.Keys(42))
	}
}

// TestBlockIndexAddValidation checks duplicate and source validation.
func TestBlockIndexAddValidation(t *testing.T) {
	bi := NewBlockIndex(entity.Dirty)
	if err := bi.Add(0, 0, []string{"k"}); err != nil {
		t.Fatal(err)
	}
	if err := bi.Add(0, 0, []string{"k"}); err == nil {
		t.Fatal("duplicate Add accepted")
	}
	if err := bi.Add(1, 1, []string{"k"}); err == nil {
		t.Fatal("dirty index accepted source 1")
	}
	cc := NewBlockIndex(entity.CleanClean)
	if err := cc.Add(0, 2, []string{"k"}); err == nil {
		t.Fatal("clean-clean index accepted source 2")
	}
}

// recordingObserver logs membership notifications and probes the index
// state at notification time, pinning the MembershipObserver contract:
// AddDocument sees the member already indexed, RemoveDocument sees it
// still indexed.
type recordingObserver struct {
	t   *testing.T
	log []string
}

func (o *recordingObserver) AddDocument(bi *BlockIndex, id entity.ID, source int, keys []string) {
	o.expectIndexed(bi, id, source, keys, "add")
}

func (o *recordingObserver) RemoveDocument(bi *BlockIndex, id entity.ID, source int, keys []string) {
	o.expectIndexed(bi, id, source, keys, "remove")
}

func (o *recordingObserver) expectIndexed(bi *BlockIndex, id entity.ID, source int, keys []string, kind string) {
	o.t.Helper()
	if s, ok := bi.SourceOf(id); !ok || s != source {
		o.t.Errorf("%s(%d): SourceOf = %d,%t, want %d,true", kind, id, s, ok, source)
	}
	for _, k := range keys {
		seen := false
		bi.EachMember(k, func(m entity.ID, ms int) bool {
			if m == id {
				seen = ms == source
			}
			return true
		})
		if !seen {
			o.t.Errorf("%s(%d): not listed under key %q at notification time", kind, id, k)
		}
	}
	o.log = append(o.log, fmt.Sprintf("%s %d %v", kind, id, keys))
}

// TestBlockIndexObserver checks notification order, payloads and the
// only-on-success rule.
func TestBlockIndexObserver(t *testing.T) {
	bi := NewBlockIndex(entity.Dirty)
	obs := &recordingObserver{t: t}
	bi.Observe(obs)
	bi.Observe(nil) // nil observers are dropped, not invoked

	if err := bi.Add(1, 0, []string{"b", "a", "a", ""}); err != nil {
		t.Fatal(err)
	}
	if err := bi.Add(2, 0, []string{"a"}); err != nil {
		t.Fatal(err)
	}
	// Failed adds notify nobody: duplicate ID, bad source.
	if err := bi.Add(1, 0, []string{"x"}); err == nil {
		t.Fatal("duplicate add accepted")
	}
	if err := bi.Add(3, 1, []string{"x"}); err == nil {
		t.Fatal("dirty index accepted source 1")
	}
	if !bi.Remove(2) {
		t.Fatal("Remove(2) = false")
	}
	if bi.Remove(2) { // second removal: no notification
		t.Fatal("second Remove(2) = true")
	}
	// Keys arrive deduplicated, empty-stripped and sorted — the indexed
	// form, not the raw argument.
	want := []string{"add 1 [a b]", "add 2 [a]", "remove 2 [a]"}
	if !reflect.DeepEqual(obs.log, want) {
		t.Fatalf("observer log = %v, want %v", obs.log, want)
	}
	// EachMember stops early when fn returns false.
	n := 0
	bi.EachMember("a", func(entity.ID, int) bool { n++; return false })
	if n != 1 {
		t.Fatalf("EachMember early stop visited %d members", n)
	}
	if _, ok := bi.SourceOf(99); ok {
		t.Fatal("SourceOf(99) reported indexed")
	}
}
