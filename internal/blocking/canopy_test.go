package blocking

import (
	"testing"
)

func TestCanopyGroupsSimilar(t *testing.T) {
	c := dirtyCollection(t,
		[]string{"name", "alice smith painter"},
		[]string{"name", "alice smith artist"},
		[]string{"name", "zzz qqq www"},
	)
	bs := blockWith(t, &Canopy{Loose: 0.1, Tight: 0.9}, c)
	if !sharesBlock(bs, 0, 1) {
		t.Fatal("similar descriptions must share a canopy")
	}
	if sharesBlock(bs, 0, 2) {
		t.Fatal("token-disjoint descriptions must not share a canopy")
	}
}

func TestCanopyTightRetiresSeeds(t *testing.T) {
	c := dirtyCollection(t,
		[]string{"name", "x y z"},
		[]string{"name", "x y z"},
		[]string{"name", "x y z"},
	)
	// With a low tight threshold every near-identical description is
	// retired after the first canopy: exactly one block.
	bs := blockWith(t, &Canopy{Loose: 0.1, Tight: 0.1}, c)
	if bs.Len() != 1 {
		t.Fatalf("blocks = %d, want 1", bs.Len())
	}
	// With tight = 1.0-ish semantics impossible to reach via distinct IDF
	// weights? identical docs reach cosine 1, so use disjoint docs to see
	// multiple canopies instead.
	c2 := dirtyCollection(t,
		[]string{"name", "aa bb"},
		[]string{"name", "aa bb"},
		[]string{"name", "cc dd"},
		[]string{"name", "cc dd"},
	)
	bs2 := blockWith(t, &Canopy{Loose: 0.1, Tight: 0.5}, c2)
	if bs2.Len() != 2 {
		t.Fatalf("blocks = %d, want 2 disjoint canopies", bs2.Len())
	}
}

func TestCanopyThresholdValidation(t *testing.T) {
	c := dirtyCollection(t, []string{"n", "a"}, []string{"n", "a"})
	if _, err := (&Canopy{Loose: 0.6, Tight: 0.2}).Block(c); err == nil {
		t.Fatal("tight < loose must be rejected")
	}
}

func TestCanopyCleanClean(t *testing.T) {
	c := ccCollection(t,
		[][]string{{"n", "matrix reloaded sci fi"}},
		[][]string{{"m", "matrix reloaded movie"}},
	)
	bs := blockWith(t, &Canopy{Loose: 0.1, Tight: 0.9}, c)
	if !sharesBlock(bs, 0, 1) {
		t.Fatal("cross-source canopy member lost")
	}
}

func TestPrefixInfixSuffixURIBlocks(t *testing.T) {
	c := ccCollection(t, nil, nil)
	_ = c
	cc := ccCollection(t,
		[][]string{{"type", "person"}},
		[][]string{{"kind", "human"}},
	)
	// Attach URIs embedding entity labels; values share nothing.
	cc.Get(0).URI = "http://kb1.org/resource/Alan_Turing"
	cc.Get(1).URI = "http://kb2.org/page/alan-turing"
	bs := blockWith(t, &PrefixInfixSuffix{}, cc)
	if !sharesBlock(bs, 0, 1) {
		t.Fatal("URI-token pair must be blocked")
	}
	tb := blockWith(t, &TokenBlocking{}, cc)
	if sharesBlock(tb, 0, 1) {
		t.Fatal("precondition: plain token blocking must miss URI-only pair")
	}
}

func TestCommonURIPrefixes(t *testing.T) {
	c := ccCollection(t,
		[][]string{{"a", "1"}, {"a", "2"}},
		[][]string{{"b", "3"}},
	)
	c.Get(0).URI = "http://kb1.org/resource/Alpha"
	c.Get(1).URI = "http://kb1.org/resource/Beta"
	c.Get(2).URI = "http://kb2.org/thing#Gamma"
	got := commonURIPrefixes(c)
	if got[0] != "http://kb1.org/resource/" {
		t.Fatalf("prefix0 = %q", got[0])
	}
	if got[1] != "http://kb2.org/thing#" {
		t.Fatalf("prefix1 = %q", got[1])
	}
}
