// Package blocking implements the blocking family surveyed in §II of the
// paper: grouping entity descriptions into (overlapping) blocks so that
// only descriptions sharing a block are ever compared. It provides the
// block data model plus the classic algorithms — standard (key-based)
// blocking, schema-agnostic token blocking, attribute-clustering blocking,
// prefix-infix-suffix(-style) URI blocking, sorted neighborhood, q-grams
// blocking, suffix-array blocking and canopy clustering.
//
// Post-processing of block collections (purging, filtering, redundancy
// removal) lives in package blockproc; meta-blocking in package
// metablocking.
package blocking

import (
	"fmt"
	"sort"

	"entityres/internal/entity"
)

// Block is one blocking unit: the descriptions that share one blocking key.
// For dirty collections every member is in S0 and every unordered pair of
// members is a suggested comparison. For clean-clean collections S0 and S1
// hold the members per source and the suggested comparisons are S0×S1.
type Block struct {
	// Key is the blocking key that produced the block (diagnostic; block
	// processing never interprets it).
	Key string
	S0  []entity.ID
	S1  []entity.ID
}

// Size returns the number of descriptions in the block.
func (b *Block) Size() int { return len(b.S0) + len(b.S1) }

// Comparisons returns the number of comparisons the block suggests,
// counting redundancy (the same pair may be suggested by other blocks too).
func (b *Block) Comparisons(kind entity.Kind) int64 {
	if kind == entity.CleanClean {
		return int64(len(b.S0)) * int64(len(b.S1))
	}
	n := int64(len(b.S0))
	return n * (n - 1) / 2
}

// EachComparison enumerates the suggested comparisons of the block in a
// deterministic order; enumeration stops early if fn returns false.
func (b *Block) EachComparison(kind entity.Kind, fn func(a, bID entity.ID) bool) {
	if kind == entity.CleanClean {
		for _, x := range b.S0 {
			for _, y := range b.S1 {
				if !fn(x, y) {
					return
				}
			}
		}
		return
	}
	for i := 0; i < len(b.S0); i++ {
		for j := i + 1; j < len(b.S0); j++ {
			if !fn(b.S0[i], b.S0[j]) {
				return
			}
		}
	}
}

// Members returns all description IDs of the block (S0 then S1).
func (b *Block) Members() []entity.ID {
	out := make([]entity.ID, 0, b.Size())
	out = append(out, b.S0...)
	out = append(out, b.S1...)
	return out
}

// Blocks is a blocking collection: the ordered list of blocks produced by a
// blocker over one entity collection.
type Blocks struct {
	kind entity.Kind
	list []*Block
}

// NewBlocks returns an empty block collection for the given setting.
func NewBlocks(kind entity.Kind) *Blocks { return &Blocks{kind: kind} }

// Kind returns the resolution setting of the collection.
func (bs *Blocks) Kind() entity.Kind { return bs.kind }

// Add appends a block. Blocks that suggest no comparison (fewer than two
// members; or an empty side in clean-clean) are dropped, since they can
// never contribute a match.
func (bs *Blocks) Add(b *Block) {
	if b == nil || b.Comparisons(bs.kind) == 0 {
		return
	}
	bs.list = append(bs.list, b)
}

// Len returns the number of blocks.
func (bs *Blocks) Len() int { return len(bs.list) }

// All returns the underlying block list ordered as produced. Callers must
// not mutate the list structure.
func (bs *Blocks) All() []*Block { return bs.list }

// Get returns the i-th block.
func (bs *Blocks) Get(i int) *Block { return bs.list[i] }

// TotalComparisons returns the aggregate comparisons of all blocks,
// counting redundant suggestions multiple times. This is the ||B|| measure
// used by blocking papers.
func (bs *Blocks) TotalComparisons() int64 {
	var n int64
	for _, b := range bs.list {
		n += b.Comparisons(bs.kind)
	}
	return n
}

// DistinctPairs materializes the deduplicated set of suggested comparisons.
// It costs O(||B||) and is meant for evaluation and for small-to-medium
// collections; streaming consumers should use EachDistinctComparison.
func (bs *Blocks) DistinctPairs() *entity.PairSet {
	ps := entity.NewPairSet(int(bs.TotalComparisons()))
	for _, b := range bs.list {
		b.EachComparison(bs.kind, func(x, y entity.ID) bool {
			ps.Add(x, y)
			return true
		})
	}
	return ps
}

// EachDistinctComparison enumerates each distinct suggested pair exactly
// once (first block wins), stopping early if fn returns false. It is a
// wrapper over CompareIterator so the push- and pull-based enumerations —
// which the sequential and parallel matchers respectively rely on — cannot
// drift apart.
func (bs *Blocks) EachDistinctComparison(fn func(p entity.Pair) bool) {
	it := NewCompareIterator(bs)
	for {
		p, ok := it.Next()
		if !ok {
			return
		}
		if !fn(p) {
			return
		}
	}
}

// SortBySize orders blocks by ascending comparison cardinality, breaking
// ties by key; the processing order assumed by block purging and by
// iterative blocking (cheap, high-precision blocks first).
func (bs *Blocks) SortBySize() {
	sort.SliceStable(bs.list, func(i, j int) bool {
		ci, cj := bs.list[i].Comparisons(bs.kind), bs.list[j].Comparisons(bs.kind)
		if ci != cj {
			return ci < cj
		}
		return bs.list[i].Key < bs.list[j].Key
	})
}

// BlocksOf returns, for every description ID, the indices of the blocks
// containing it. This is the entity-to-block index needed by meta-blocking
// weighting schemes and duplicate propagation.
func (bs *Blocks) BlocksOf() map[entity.ID][]int {
	m := make(map[entity.ID][]int)
	for i, b := range bs.list {
		for _, id := range b.S0 {
			m[id] = append(m[id], i)
		}
		for _, id := range b.S1 {
			m[id] = append(m[id], i)
		}
	}
	return m
}

// Stats summarizes a block collection for logs and experiment tables.
type Stats struct {
	NumBlocks          int
	TotalComparisons   int64
	MaxBlockSize       int
	AvgBlockSize       float64
	DistinctComparison int64
}

// ComputeStats returns summary statistics. When distinct is false the
// (costly) distinct-comparison count is skipped and reported as -1.
func (bs *Blocks) ComputeStats(distinct bool) Stats {
	st := Stats{NumBlocks: bs.Len(), TotalComparisons: bs.TotalComparisons(), DistinctComparison: -1}
	total := 0
	for _, b := range bs.list {
		s := b.Size()
		total += s
		if s > st.MaxBlockSize {
			st.MaxBlockSize = s
		}
	}
	if bs.Len() > 0 {
		st.AvgBlockSize = float64(total) / float64(bs.Len())
	}
	if distinct {
		st.DistinctComparison = int64(bs.DistinctPairs().Len())
	}
	return st
}

// String renders the stats compactly.
func (s Stats) String() string {
	return fmt.Sprintf("blocks=%d comparisons=%d distinct=%d maxSize=%d avgSize=%.2f",
		s.NumBlocks, s.TotalComparisons, s.DistinctComparison, s.MaxBlockSize, s.AvgBlockSize)
}

// Blocker is the common interface of all blocking algorithms.
type Blocker interface {
	// Name identifies the algorithm in experiment tables.
	Name() string
	// Block builds the blocking collection for c.
	Block(c *entity.Collection) (*Blocks, error)
}
