package blocking

import (
	"testing"

	"entityres/internal/entity"
)

// distinctComparisonSpec is the reference enumeration the iterator (and
// through it, EachDistinctComparison) must reproduce: blocks in order,
// each block's comparisons in EachComparison order, first block wins. It
// is written out independently here precisely because the production code
// has a single shared implementation.
func distinctComparisonSpec(bs *Blocks) []entity.Pair {
	seen := entity.NewPairSet(0)
	var out []entity.Pair
	for _, b := range bs.All() {
		b.EachComparison(bs.Kind(), func(x, y entity.ID) bool {
			if seen.Add(x, y) {
				out = append(out, entity.NewPair(x, y))
			}
			return true
		})
	}
	return out
}

// TestCompareIteratorMatchesEachDistinct verifies the pull-based iterator
// and the push-based EachDistinctComparison both emit exactly the
// reference sequence, for both resolution settings, including the
// first-block-wins deduplication.
func TestCompareIteratorMatchesEachDistinct(t *testing.T) {
	for _, kind := range []entity.Kind{entity.Dirty, entity.CleanClean} {
		c := shardTestCollection(t, kind)
		bs, err := (&TokenBlocking{}).Block(c)
		if err != nil {
			t.Fatal(err)
		}
		want := distinctComparisonSpec(bs)
		var pushed []entity.Pair
		bs.EachDistinctComparison(func(p entity.Pair) bool {
			pushed = append(pushed, p)
			return true
		})
		if len(pushed) != len(want) {
			t.Fatalf("%v: EachDistinctComparison pushed %d pairs, spec has %d", kind, len(pushed), len(want))
		}
		for i := range want {
			if pushed[i] != want[i] {
				t.Fatalf("%v: pushed pair %d is %v, spec says %v", kind, i, pushed[i], want[i])
			}
		}
		it := NewCompareIterator(bs)
		var got []entity.Pair
		for {
			p, ok := it.Next()
			if !ok {
				break
			}
			got = append(got, p)
		}
		if len(got) != len(want) {
			t.Fatalf("%v: iterator emitted %d pairs, EachDistinctComparison %d", kind, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v: pair %d: iterator %v, EachDistinctComparison %v", kind, i, got[i], want[i])
			}
		}
		if it.Seen() != len(want) {
			t.Fatalf("%v: Seen() = %d, want %d", kind, it.Seen(), len(want))
		}
		// Exhausted iterator keeps reporting ok=false.
		if _, ok := it.Next(); ok {
			t.Fatalf("%v: Next after exhaustion returned ok=true", kind)
		}
	}
}

func TestCompareIteratorEmpty(t *testing.T) {
	it := NewCompareIterator(NewBlocks(entity.Dirty))
	if _, ok := it.Next(); ok {
		t.Fatal("empty collection: want ok=false")
	}
}
