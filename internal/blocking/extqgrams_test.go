package blocking

import (
	"strings"
	"testing"
)

func TestExtendedQGramsTypoToleranceWithPrecision(t *testing.T) {
	c := dirtyCollection(t,
		[]string{"name", "katherine"},
		[]string{"name", "katherina"}, // one edit away
		[]string{"name", "kzthzrinz"}, // shares a few grams only
	)
	ext := blockWith(t, &ExtendedQGrams{Q: 2, T: 0.6}, c)
	if !sharesBlock(ext, 0, 1) {
		t.Fatal("near-identical tokens must share an extended-gram key")
	}
	if sharesBlock(ext, 0, 2) {
		t.Fatal("low-overlap tokens must not share a sixty-percent-gram key")
	}
	// Plain q-grams would pair them (precondition for the precision claim).
	plain := blockWith(t, &QGramsBlocking{Q: 2}, c)
	if !sharesBlock(plain, 0, 2) {
		t.Fatal("precondition: plain q-grams should pair low-overlap tokens")
	}
}

func TestExtendedQGramsFewerComparisonsThanPlain(t *testing.T) {
	var rows [][]string
	names := []string{"smith", "smyth", "smithe", "jones", "johns", "jonas", "baker", "barker"}
	for _, n := range names {
		rows = append(rows, []string{"name", n})
	}
	c := dirtyCollection(t, rows...)
	plain := blockWith(t, &QGramsBlocking{Q: 2}, c)
	ext := blockWith(t, &ExtendedQGrams{Q: 2, T: 0.8}, c)
	if ext.TotalComparisons() >= plain.TotalComparisons() {
		t.Fatalf("extended grams should cut comparisons: %d vs %d",
			ext.TotalComparisons(), plain.TotalComparisons())
	}
}

func TestExtendedKeysWholeTokenWhenTIsOne(t *testing.T) {
	keys := extendedKeys("abc", 2, 1.0, 32)
	if len(keys) != 1 {
		t.Fatalf("T=1 keys = %v", keys)
	}
	if !strings.Contains(keys[0], "ab") {
		t.Fatalf("key should concatenate grams: %v", keys)
	}
}

func TestExtendedKeysCombinationCount(t *testing.T) {
	// "abcd" with q=2 → grams #a ab bc cd d# (5). T=0.8 → k=4 → C(5,4)=5.
	keys := extendedKeys("abcd", 2, 0.8, 32)
	if len(keys) != 5 {
		t.Fatalf("keys = %d, want 5", len(keys))
	}
	seen := map[string]bool{}
	for _, k := range keys {
		if seen[k] {
			t.Fatalf("duplicate key %q", k)
		}
		seen[k] = true
	}
}

func TestExtendedKeysWindowFallback(t *testing.T) {
	// A long token with small T explodes combinatorially; the fallback
	// must emit n−k+1 contiguous windows instead.
	long := "abcdefghijklmnop"
	keys := extendedKeys(long, 2, 0.5, 8)
	grams := len([]rune(long)) + 1 // padded bigram count
	k := (grams + 1) / 2
	if len(keys) != grams-k+1 {
		t.Fatalf("window keys = %d, want %d", len(keys), grams-k+1)
	}
}

func TestExtendedKeysEmptyToken(t *testing.T) {
	if got := extendedKeys("", 2, 0.8, 32); got != nil {
		t.Fatalf("empty token keys = %v", got)
	}
}

func TestBinomial(t *testing.T) {
	cases := map[[2]int]int{
		{5, 2}: 10, {5, 0}: 1, {5, 5}: 1, {5, 6}: 0, {6, 3}: 20,
	}
	for in, want := range cases {
		if got := binomial(in[0], in[1]); got != want {
			t.Fatalf("binomial(%d,%d) = %d, want %d", in[0], in[1], got, want)
		}
	}
	if binomial(100, 50) <= 0 {
		t.Fatal("saturation should stay positive")
	}
}

func TestExtendedQGramsName(t *testing.T) {
	if (&ExtendedQGrams{}).Name() != "extqgrams" {
		t.Fatal("name")
	}
}
