package blocking

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"entityres/internal/entity"
)

// shardTestCollection builds a small dirty collection with overlapping
// token keys so blocks have several members.
func shardTestCollection(t *testing.T, kind entity.Kind) *entity.Collection {
	t.Helper()
	c := entity.NewCollection(kind)
	names := []string{
		"alice blue marine", "alice blue", "bob marine", "carol stone",
		"carol stone blue", "dave hill", "dave hill marine", "erin blue stone",
		"frank marine hill", "grace stone", "heidi blue hill", "ivan marine stone",
	}
	for i, n := range names {
		d := entity.NewDescription(fmt.Sprintf("http://kb%d.example.org/p/%d", i%2, i))
		if kind == entity.CleanClean {
			d.Source = i % 2
		}
		d.Attrs = append(d.Attrs, entity.Attribute{Name: "name", Value: n})
		c.MustAdd(d)
	}
	return c
}

func assertSameBlocks(t *testing.T, want, got *Blocks) {
	t.Helper()
	if want.Len() != got.Len() {
		t.Fatalf("block count: sequential %d, sharded %d", want.Len(), got.Len())
	}
	for i := 0; i < want.Len(); i++ {
		w, g := want.Get(i), got.Get(i)
		if w.Key != g.Key {
			t.Fatalf("block %d key: sequential %q, sharded %q", i, w.Key, g.Key)
		}
		if !reflect.DeepEqual(w.S0, g.S0) || !reflect.DeepEqual(w.S1, g.S1) {
			t.Fatalf("block %q members: sequential S0=%v S1=%v, sharded S0=%v S1=%v",
				w.Key, w.S0, w.S1, g.S0, g.S1)
		}
	}
}

// TestBuildShardedMatchesSequential verifies the sharded index build
// reproduces Block exactly — keys, member order, block order — for every
// keyed blocker, shard counts beyond the collection size included.
func TestBuildShardedMatchesSequential(t *testing.T) {
	blockers := []KeyedBlocker{
		&TokenBlocking{},
		&StandardBlocking{},
		&QGramsBlocking{Q: 3},
		&SuffixArrayBlocking{MinLen: 3, MaxBlockSize: 6},
		&PrefixInfixSuffix{},
	}
	for _, kind := range []entity.Kind{entity.Dirty, entity.CleanClean} {
		c := shardTestCollection(t, kind)
		for _, kb := range blockers {
			want, err := kb.Block(c)
			if err != nil {
				t.Fatalf("%s: sequential: %v", kb.Name(), err)
			}
			for _, shards := range []int{1, 2, 3, 4, 100} {
				got, err := BuildSharded(context.Background(), c, kb, shards)
				if err != nil {
					t.Fatalf("%s shards=%d: %v", kb.Name(), shards, err)
				}
				assertSameBlocks(t, want, got)
			}
		}
	}
}

func TestBuildShardedCancelled(t *testing.T) {
	c := shardTestCollection(t, entity.Dirty)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BuildSharded(ctx, c, &TokenBlocking{}, 4); err == nil {
		t.Fatal("BuildSharded with cancelled context: want error, got nil")
	}
}
