package blocking

import (
	"sort"

	"entityres/internal/entity"
)

// builder accumulates key → members and emits a deterministic block
// collection (blocks sorted by key, members in insertion order).
type builder struct {
	kind entity.Kind
	m    map[string]*Block
}

func newBuilder(kind entity.Kind) *builder {
	return &builder{kind: kind, m: make(map[string]*Block)}
}

// add records that the description id from the given source carries the
// blocking key. Duplicate (key, id) insertions are the caller's concern:
// every blocker deduplicates keys per description first, because a
// description must appear at most once per block.
func (bb *builder) add(key string, id entity.ID, source int) {
	b, ok := bb.m[key]
	if !ok {
		b = &Block{Key: key}
		bb.m[key] = b
	}
	if source == 1 {
		b.S1 = append(b.S1, id)
	} else {
		b.S0 = append(b.S0, id)
	}
}

// addDescription adds every distinct key of keys for the description.
func (bb *builder) addDescription(d *entity.Description, keys []string) {
	seen := make(map[string]struct{}, len(keys))
	for _, k := range keys {
		if k == "" {
			continue
		}
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		bb.add(k, d.ID, d.Source)
	}
}

// blocks finalizes the collection: keys sorted ascending, comparison-free
// blocks dropped by Blocks.Add.
func (bb *builder) blocks() *Blocks {
	keys := make([]string, 0, len(bb.m))
	for k := range bb.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	bs := NewBlocks(bb.kind)
	for _, k := range keys {
		bs.Add(bb.m[k])
	}
	return bs
}
