package blocking

import (
	"strings"
	"testing"

	"entityres/internal/entity"
)

func TestBlockComparisons(t *testing.T) {
	b := &Block{S0: []entity.ID{1, 2, 3}}
	if got := b.Comparisons(entity.Dirty); got != 3 {
		t.Fatalf("dirty comparisons = %d", got)
	}
	cc := &Block{S0: []entity.ID{1, 2}, S1: []entity.ID{3, 4, 5}}
	if got := cc.Comparisons(entity.CleanClean); got != 6 {
		t.Fatalf("clean-clean comparisons = %d", got)
	}
	if cc.Size() != 5 {
		t.Fatalf("Size = %d", cc.Size())
	}
}

func TestBlockEachComparison(t *testing.T) {
	b := &Block{S0: []entity.ID{1, 2, 3}}
	var got []entity.Pair
	b.EachComparison(entity.Dirty, func(x, y entity.ID) bool {
		got = append(got, entity.NewPair(x, y))
		return true
	})
	if len(got) != 3 {
		t.Fatalf("pairs = %v", got)
	}
	// Early stop.
	n := 0
	b.EachComparison(entity.Dirty, func(x, y entity.ID) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
	cc := &Block{S0: []entity.ID{1}, S1: []entity.ID{9, 8}}
	var cross []entity.Pair
	cc.EachComparison(entity.CleanClean, func(x, y entity.ID) bool {
		cross = append(cross, entity.NewPair(x, y))
		return true
	})
	if len(cross) != 2 {
		t.Fatalf("cross pairs = %v", cross)
	}
}

func TestBlocksAddDropsUseless(t *testing.T) {
	bs := NewBlocks(entity.Dirty)
	bs.Add(&Block{S0: []entity.ID{1}})      // 0 comparisons
	bs.Add(nil)                             // nil
	bs.Add(&Block{S0: []entity.ID{1, 2}})   // 1 comparison
	ccOnly := &Block{S0: []entity.ID{1, 2}} // would be 0 in clean-clean
	cs := NewBlocks(entity.CleanClean)
	cs.Add(ccOnly)
	if bs.Len() != 1 {
		t.Fatalf("dirty Len = %d", bs.Len())
	}
	if cs.Len() != 0 {
		t.Fatalf("clean-clean Len = %d", cs.Len())
	}
}

func TestBlocksDistinctPairs(t *testing.T) {
	bs := NewBlocks(entity.Dirty)
	bs.Add(&Block{Key: "a", S0: []entity.ID{1, 2, 3}})
	bs.Add(&Block{Key: "b", S0: []entity.ID{2, 3, 4}})
	if got := bs.TotalComparisons(); got != 6 {
		t.Fatalf("TotalComparisons = %d", got)
	}
	dp := bs.DistinctPairs()
	if dp.Len() != 5 { // {1,2},{1,3},{2,3},{2,4},{3,4}
		t.Fatalf("DistinctPairs = %d", dp.Len())
	}
	var seen []entity.Pair
	bs.EachDistinctComparison(func(p entity.Pair) bool {
		seen = append(seen, p)
		return true
	})
	if len(seen) != 5 {
		t.Fatalf("EachDistinctComparison yielded %d", len(seen))
	}
	n := 0
	bs.EachDistinctComparison(func(entity.Pair) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestBlocksSortBySize(t *testing.T) {
	bs := NewBlocks(entity.Dirty)
	bs.Add(&Block{Key: "big", S0: []entity.ID{1, 2, 3, 4}})
	bs.Add(&Block{Key: "small", S0: []entity.ID{5, 6}})
	bs.SortBySize()
	if bs.Get(0).Key != "small" || bs.Get(1).Key != "big" {
		t.Fatalf("SortBySize order = %v, %v", bs.Get(0).Key, bs.Get(1).Key)
	}
}

func TestBlocksOf(t *testing.T) {
	bs := NewBlocks(entity.Dirty)
	bs.Add(&Block{Key: "a", S0: []entity.ID{1, 2}})
	bs.Add(&Block{Key: "b", S0: []entity.ID{2, 3}})
	m := bs.BlocksOf()
	if len(m[2]) != 2 || len(m[1]) != 1 {
		t.Fatalf("BlocksOf = %v", m)
	}
}

func TestComputeStats(t *testing.T) {
	bs := NewBlocks(entity.Dirty)
	bs.Add(&Block{Key: "a", S0: []entity.ID{1, 2, 3}})
	bs.Add(&Block{Key: "b", S0: []entity.ID{2, 3}})
	st := bs.ComputeStats(true)
	if st.NumBlocks != 2 || st.TotalComparisons != 4 || st.MaxBlockSize != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if st.DistinctComparison != 3 { // {1,2},{1,3},{2,3}; the {2,3} suggestion is redundant
		t.Fatalf("distinct = %d", st.DistinctComparison)
	}
	if st.AvgBlockSize != 2.5 {
		t.Fatalf("avg = %v", st.AvgBlockSize)
	}
	st2 := bs.ComputeStats(false)
	if st2.DistinctComparison != -1 {
		t.Fatal("distinct should be skipped")
	}
	if !strings.Contains(st.String(), "blocks=2") {
		t.Fatalf("String = %q", st.String())
	}
}
