package blocking

import (
	"strings"

	"entityres/internal/entity"
	"entityres/internal/token"
)

// PrefixInfixSuffix approximates the prefix-infix-suffix URI blocking of
// [20]: LOD URIs share a per-source prefix (scheme + host + namespace) and
// often a suffix pattern, while the infix carries the entity-specific
// signal. The blocker strips the longest common URI prefix per source and
// blocks on (a) the full infix, (b) the infix tokens, and (c) the ordinary
// value tokens, so sparsely described periphery entities whose URIs embed
// their label are still blocked together.
type PrefixInfixSuffix struct {
	// Profiler controls value tokenization; nil means the default profiler.
	Profiler *token.Profiler
}

// Name implements Blocker.
func (ps *PrefixInfixSuffix) Name() string { return "prefixinfixsuffix" }

// Keyer implements KeyedBlocker. The longest-common-prefix scan is the
// only collection-wide pass; it happens here, once, so the returned
// KeyFunc is a pure per-description function safe for concurrent shards.
func (ps *PrefixInfixSuffix) Keyer(c *entity.Collection) KeyFunc {
	p := ps.Profiler
	if p == nil {
		p = token.DefaultProfiler()
	}
	prefixes := commonURIPrefixes(c)
	return func(d *entity.Description) []string {
		keys := p.Tokens(d)
		if d.URI != "" {
			infix := strings.TrimPrefix(d.URI, prefixes[d.Source])
			if norm := strings.Join(token.Tokenize(infix), " "); norm != "" {
				keys = append(keys, "uri:"+norm)
			}
			keys = append(keys, token.TokenizeFiltered(infix, p.Stopwords, p.MinTokenLen)...)
		}
		return keys
	}
}

// Block implements Blocker.
func (ps *PrefixInfixSuffix) Block(c *entity.Collection) (*Blocks, error) {
	return buildFromKeys(c, ps.Keyer(c)), nil
}

// commonURIPrefixes computes the longest common prefix of the URIs of each
// source (empty when a source has no URIs).
func commonURIPrefixes(c *entity.Collection) [2]string {
	var prefixes [2]string
	var seen [2]bool
	for _, d := range c.All() {
		if d.URI == "" {
			continue
		}
		s := d.Source
		if !seen[s] {
			prefixes[s] = d.URI
			seen[s] = true
			continue
		}
		prefixes[s] = commonPrefix(prefixes[s], d.URI)
	}
	// A useful prefix ends at a URI separator; trim back to the last one so
	// we never split inside an entity name.
	for s, pre := range prefixes {
		if i := strings.LastIndexAny(pre, "/#"); i >= 0 {
			prefixes[s] = pre[:i+1]
		} else {
			prefixes[s] = ""
		}
	}
	return prefixes
}

func commonPrefix(a, b string) string {
	n := min(len(a), len(b))
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return a[:i]
}
