package blocking

import (
	"testing"

	"entityres/internal/entity"
)

// dirtyCollection builds a dirty collection from (attr, value) rows, one
// description per row group.
func dirtyCollection(t *testing.T, rows ...[]string) *entity.Collection {
	t.Helper()
	c := entity.NewCollection(entity.Dirty)
	for _, row := range rows {
		d := entity.NewDescription("")
		for i := 0; i+1 < len(row); i += 2 {
			d.Add(row[i], row[i+1])
		}
		c.MustAdd(d)
	}
	return c
}

// ccCollection builds a clean-clean collection: rows0 go to source 0 and
// rows1 to source 1.
func ccCollection(t *testing.T, rows0, rows1 [][]string) *entity.Collection {
	t.Helper()
	c := entity.NewCollection(entity.CleanClean)
	add := func(rows [][]string, src int) {
		for _, row := range rows {
			d := entity.NewDescription("")
			d.Source = src
			for i := 0; i+1 < len(row); i += 2 {
				d.Add(row[i], row[i+1])
			}
			c.MustAdd(d)
		}
	}
	add(rows0, 0)
	add(rows1, 1)
	return c
}

// blockWith runs a blocker and fails the test on error.
func blockWith(t *testing.T, b Blocker, c *entity.Collection) *Blocks {
	t.Helper()
	bs, err := b.Block(c)
	if err != nil {
		t.Fatalf("%s.Block: %v", b.Name(), err)
	}
	return bs
}

// sharesBlock reports whether ids a and b co-occur in any block.
func sharesBlock(bs *Blocks, a, b entity.ID) bool {
	found := false
	bs.EachDistinctComparison(func(p entity.Pair) bool {
		if p == entity.NewPair(a, b) {
			found = true
			return false
		}
		return true
	})
	return found
}
