package blocking

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"entityres/internal/entity"
	"entityres/internal/token"
)

func TestTokenBlockingDirty(t *testing.T) {
	c := dirtyCollection(t,
		[]string{"name", "alice smith"},
		[]string{"fullName", "smith alice"},
		[]string{"name", "carol jones"},
	)
	bs := blockWith(t, &TokenBlocking{}, c)
	if !sharesBlock(bs, 0, 1) {
		t.Fatal("descriptions sharing tokens must share a block despite schema mismatch")
	}
	if sharesBlock(bs, 0, 2) {
		t.Fatal("token-disjoint descriptions must not share a block")
	}
}

func TestTokenBlockingCleanClean(t *testing.T) {
	c := ccCollection(t,
		[][]string{{"title", "matrix reloaded"}, {"title", "inception"}},
		[][]string{{"label", "the matrix reloaded"}, {"label", "dunkirk"}},
	)
	bs := blockWith(t, &TokenBlocking{}, c)
	if !sharesBlock(bs, 0, 2) {
		t.Fatal("cross-source token share must block")
	}
	// Same-source pairs are never suggested in clean-clean blocks.
	bs.EachDistinctComparison(func(p entity.Pair) bool {
		if (p.A < 2) == (p.B < 2) {
			t.Fatalf("same-source comparison suggested: %v", p)
		}
		return true
	})
}

// Property: under a stopword-free profiler, two descriptions share a block
// iff their token sets intersect.
func TestTokenBlockingSharedTokenProperty(t *testing.T) {
	prof := &token.Profiler{Scheme: token.SchemaAgnostic}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vocab := []string{"alpha", "beta", "gamma", "delta", "eps"}
		c := entity.NewCollection(entity.Dirty)
		sets := make([]token.Set, 6)
		for i := 0; i < 6; i++ {
			d := entity.NewDescription("")
			var toks []string
			for _, v := range vocab {
				if rng.Intn(2) == 0 {
					toks = append(toks, v)
				}
			}
			d.Add("v", strings.Join(toks, " "))
			c.MustAdd(d)
			sets[i] = token.NewSet(toks...)
		}
		bs, err := (&TokenBlocking{Profiler: prof}).Block(c)
		if err != nil {
			return false
		}
		for i := 0; i < 6; i++ {
			for j := i + 1; j < 6; j++ {
				want := sets[i].IntersectionSize(sets[j]) > 0
				if sharesBlock(bs, i, j) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestStandardBlockingRequiresExactKey(t *testing.T) {
	c := dirtyCollection(t,
		[]string{"name", "Alice Smith"},
		[]string{"name", "alice smith"},     // same normalized value
		[]string{"fullName", "alice smith"}, // different attribute
		[]string{"name", "alice smithe"},    // different value
	)
	bs := blockWith(t, &StandardBlocking{}, c)
	if !sharesBlock(bs, 0, 1) {
		t.Fatal("normalized-equal values must share a block")
	}
	if sharesBlock(bs, 0, 2) {
		t.Fatal("standard blocking must be schema-aware")
	}
	if sharesBlock(bs, 0, 3) {
		t.Fatal("near-equal values must not share a standard block")
	}
}

func TestStandardBlockingSelectedAttrs(t *testing.T) {
	c := dirtyCollection(t,
		[]string{"name", "x", "city", "paris"},
		[]string{"name", "y", "city", "paris"},
	)
	bs := blockWith(t, &StandardBlocking{Keys: WholeValueKeys("city")}, c)
	if !sharesBlock(bs, 0, 1) {
		t.Fatal("city key must block the pair")
	}
	bs = blockWith(t, &StandardBlocking{Keys: WholeValueKeys("name")}, c)
	if sharesBlock(bs, 0, 1) {
		t.Fatal("name key must not block the pair")
	}
}

func TestQGramsBlockingTypoTolerance(t *testing.T) {
	c := dirtyCollection(t,
		[]string{"name", "smith"},
		[]string{"name", "smyth"},
		[]string{"name", "qqqq"},
	)
	token3 := blockWith(t, &TokenBlocking{}, c)
	if sharesBlock(token3, 0, 1) {
		t.Fatal("token blocking should miss the typo pair (precondition)")
	}
	bs := blockWith(t, &QGramsBlocking{Q: 2}, c)
	if !sharesBlock(bs, 0, 1) {
		t.Fatal("q-grams blocking must tolerate the typo")
	}
	if sharesBlock(bs, 0, 2) {
		t.Fatal("gram-disjoint strings must not block")
	}
}

func TestQGramsDefaultQ(t *testing.T) {
	c := dirtyCollection(t, []string{"n", "abcd"}, []string{"n", "abcd"})
	bs := blockWith(t, &QGramsBlocking{}, c)
	if bs.Len() == 0 {
		t.Fatal("default-q blocking produced no blocks")
	}
}

func TestSuffixArrayBlocking(t *testing.T) {
	c := dirtyCollection(t,
		[]string{"name", "katherine"},
		[]string{"name", "catherine"}, // shares suffix "atherine"
		[]string{"name", "bob"},
	)
	bs := blockWith(t, &SuffixArrayBlocking{MinLen: 5}, c)
	if !sharesBlock(bs, 0, 1) {
		t.Fatal("suffix-sharing names must block")
	}
	if sharesBlock(bs, 0, 2) {
		t.Fatal("suffix-disjoint names must not block")
	}
}

func TestSuffixArrayMaxBlockSize(t *testing.T) {
	var rows [][]string
	for i := 0; i < 10; i++ {
		rows = append(rows, []string{"name", "suffixshared"})
	}
	c := dirtyCollection(t, rows...)
	bs := blockWith(t, &SuffixArrayBlocking{MinLen: 4, MaxBlockSize: 5}, c)
	for _, b := range bs.All() {
		if b.Size() > 5 {
			t.Fatalf("oversized block survived: %d", b.Size())
		}
	}
}

func TestBlockerNames(t *testing.T) {
	blockers := []Blocker{
		&TokenBlocking{}, &StandardBlocking{}, &QGramsBlocking{},
		&SuffixArrayBlocking{}, &SortedNeighborhood{}, &AttributeClustering{},
		&Canopy{}, &PrefixInfixSuffix{},
	}
	seen := map[string]bool{}
	for _, b := range blockers {
		n := b.Name()
		if n == "" || seen[n] {
			t.Fatalf("blocker name %q empty or duplicated", n)
		}
		seen[n] = true
	}
}
