package blocking

import "entityres/internal/entity"

// CompareIterator streams the distinct suggested comparisons of a block
// collection in the same deterministic order as EachDistinctComparison
// (block order, first block wins), without ever materializing the full
// pair list. It is the pull-based form that worker pools and budgeted
// progressive runs consume: each Next costs O(1) amortized plus the
// redundancy skipped, and memory stays bounded by the distinct-pair dedup
// set rather than by a pair slice.
//
// A CompareIterator is single-consumer: callers that fan comparisons out
// to concurrent workers pull from one iterator and distribute the pairs.
type CompareIterator struct {
	bs   *Blocks
	seen *entity.PairSet
	bi   int // current block index
	i, j int // intra-block cursor (next candidate is (i, j))
}

// NewCompareIterator returns an iterator positioned before the first
// distinct comparison of bs.
func NewCompareIterator(bs *Blocks) *CompareIterator {
	it := &CompareIterator{bs: bs, seen: entity.NewPairSet(0)}
	if bs.Kind() != entity.CleanClean {
		it.j = 1
	}
	return it
}

// Next returns the next distinct comparison, or ok=false when the
// collection is exhausted.
func (it *CompareIterator) Next() (entity.Pair, bool) {
	kind := it.bs.Kind()
	for it.bi < it.bs.Len() {
		b := it.bs.Get(it.bi)
		if kind == entity.CleanClean {
			for it.i < len(b.S0) {
				for it.j < len(b.S1) {
					x, y := b.S0[it.i], b.S1[it.j]
					it.j++
					if it.seen.Add(x, y) {
						return entity.NewPair(x, y), true
					}
				}
				it.i++
				it.j = 0
			}
		} else {
			for it.i < len(b.S0) {
				for it.j < len(b.S0) {
					x, y := b.S0[it.i], b.S0[it.j]
					it.j++
					if it.seen.Add(x, y) {
						return entity.NewPair(x, y), true
					}
				}
				it.i++
				it.j = it.i + 1
			}
		}
		it.bi++
		it.i = 0
		if kind == entity.CleanClean {
			it.j = 0
		} else {
			it.j = 1
		}
	}
	return entity.Pair{}, false
}

// Seen returns how many distinct comparisons have been emitted so far.
func (it *CompareIterator) Seen() int { return it.seen.Len() }
