package blocking

import (
	"sort"
	"strings"

	"entityres/internal/entity"
	"entityres/internal/token"
)

// KeyFunc derives the blocking keys of a description; the semantics of the
// keys (whole values, tokens, q-grams, ...) are the algorithm's choice.
type KeyFunc func(d *entity.Description) []string

// ScalarKeyFunc derives a single sortable key per description, as needed by
// sorted-neighborhood style methods.
type ScalarKeyFunc func(d *entity.Description) string

// WholeValueKeys returns a KeyFunc mapping each attribute value to one
// normalized key qualified by attribute name — the classic relational
// blocking key construction. If attrs is non-empty only those attributes
// contribute keys.
func WholeValueKeys(attrs ...string) KeyFunc {
	want := make(map[string]struct{}, len(attrs))
	for _, a := range attrs {
		want[a] = struct{}{}
	}
	return func(d *entity.Description) []string {
		var out []string
		for _, a := range d.Attrs {
			if len(want) > 0 {
				if _, ok := want[a.Name]; !ok {
					continue
				}
			}
			v := strings.Join(token.Tokenize(a.Value), " ")
			if v == "" {
				continue
			}
			out = append(out, a.Name+"="+v)
		}
		return out
	}
}

// AttributeValueKey returns a ScalarKeyFunc that concatenates the
// normalized values of the given attributes in order — the usual sorted
// neighborhood key (e.g. surname+zip).
func AttributeValueKey(attrs ...string) ScalarKeyFunc {
	return func(d *entity.Description) string {
		var parts []string
		for _, name := range attrs {
			for _, v := range d.Values(name) {
				parts = append(parts, token.Tokenize(v)...)
			}
		}
		return strings.Join(parts, " ")
	}
}

// SortedTokensKey is a schema-agnostic ScalarKeyFunc: all value tokens of
// the description, deduplicated and sorted, joined by spaces. Descriptions
// about the same entity sort near each other regardless of schema.
func SortedTokensKey(p *token.Profiler) ScalarKeyFunc {
	if p == nil {
		p = token.DefaultProfiler()
	}
	return func(d *entity.Description) string {
		ts := p.Set(d).Sorted()
		return strings.Join(ts, " ")
	}
}

// FirstTokenKey is a cheap ScalarKeyFunc: the alphabetically smallest value
// token. Useful as a second sorted-neighborhood pass.
func FirstTokenKey(p *token.Profiler) ScalarKeyFunc {
	if p == nil {
		p = token.DefaultProfiler()
	}
	return func(d *entity.Description) string {
		ts := p.Set(d).Sorted()
		if len(ts) == 0 {
			return ""
		}
		return ts[0]
	}
}

// sortIDs sorts a slice of IDs ascending, in place, returning it.
func sortIDs(ids []entity.ID) []entity.ID {
	sort.Ints(ids)
	return ids
}
