package blocking

import (
	"math"
	"sort"
	"strings"

	"entityres/internal/entity"
	"entityres/internal/token"
)

// ExtendedQGrams is extended q-grams blocking: instead of using individual
// q-grams as blocking keys (high recall, terrible precision), each token's
// q-gram set is combined into sub-keys of ⌈T·N⌉ grams, so two descriptions
// share a block only when a substantial portion of some token's grams
// agrees. T close to 1 approaches whole-token keys; small T approaches
// plain q-grams blocking.
type ExtendedQGrams struct {
	// Q is the gram length (< 2 defaults to 3).
	Q int
	// T is the combination threshold in (0,1] (outside defaults to 0.8):
	// sub-keys contain ⌈T·N⌉ of a token's N grams.
	T float64
	// MaxCombinations caps the per-token sub-key count (default 32); when
	// the binomial count would exceed it, contiguous gram windows are used
	// instead of all combinations, which preserves the key length
	// guarantee at a bounded cost.
	MaxCombinations int
	// Profiler controls tokenization; nil means token.DefaultProfiler.
	Profiler *token.Profiler
}

// Name implements Blocker.
func (e *ExtendedQGrams) Name() string { return "extqgrams" }

// Block implements Blocker.
func (e *ExtendedQGrams) Block(c *entity.Collection) (*Blocks, error) {
	p := e.Profiler
	if p == nil {
		p = token.DefaultProfiler()
	}
	q := e.Q
	if q < 2 {
		q = 3
	}
	t := e.T
	if t <= 0 || t > 1 {
		t = 0.8
	}
	maxCombos := e.MaxCombinations
	if maxCombos <= 0 {
		maxCombos = 32
	}
	b := newBuilder(c.Kind())
	for _, d := range c.All() {
		var keys []string
		for tok := range p.Set(d) {
			keys = append(keys, extendedKeys(tok, q, t, maxCombos)...)
		}
		b.addDescription(d, keys)
	}
	return b.blocks(), nil
}

// extendedKeys derives the sub-keys of one token.
func extendedKeys(tok string, q int, t float64, maxCombos int) []string {
	grams := token.QGrams(tok, q)
	n := len(grams)
	if n == 0 {
		return nil
	}
	k := int(math.Ceil(t * float64(n)))
	if k < 1 {
		k = 1
	}
	if k >= n {
		// Single key: all grams (equivalent to the whole padded token).
		return []string{strings.Join(grams, "")}
	}
	if binomial(n, k) > maxCombos {
		// Contiguous windows of k grams: n−k+1 keys, each still covering
		// T of the token.
		keys := make([]string, 0, n-k+1)
		for i := 0; i+k <= n; i++ {
			keys = append(keys, strings.Join(grams[i:i+k], ""))
		}
		return keys
	}
	// All k-combinations in lexicographic index order.
	var keys []string
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		parts := make([]string, k)
		for i, j := range idx {
			parts[i] = grams[j]
		}
		keys = append(keys, strings.Join(parts, ""))
		// Advance the combination.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			break
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
	sort.Strings(keys)
	return keys
}

// binomial returns C(n, k), saturating at math.MaxInt32 to avoid overflow.
func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	res := 1
	for i := 1; i <= k; i++ {
		res = res * (n - k + i) / i
		if res > math.MaxInt32 {
			return math.MaxInt32
		}
	}
	return res
}
