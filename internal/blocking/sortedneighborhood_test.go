package blocking

import (
	"testing"

	"entityres/internal/entity"
)

func TestSortedOrderDeterministic(t *testing.T) {
	c := dirtyCollection(t,
		[]string{"name", "zeta"},
		[]string{"name", "alpha"},
		[]string{"name", "midway"},
	)
	order := SortedOrder(c, SortedTokensKey(nil))
	want := []entity.ID{1, 2, 0} // alpha, midway, zeta
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSortedOrderTieBreakByID(t *testing.T) {
	c := dirtyCollection(t,
		[]string{"name", "same"},
		[]string{"name", "same"},
	)
	order := SortedOrder(c, SortedTokensKey(nil))
	if order[0] != 0 || order[1] != 1 {
		t.Fatalf("tie-break order = %v", order)
	}
}

func TestSortedNeighborhoodWindows(t *testing.T) {
	c := dirtyCollection(t,
		[]string{"name", "aaa"},
		[]string{"name", "aab"},
		[]string{"name", "aac"},
		[]string{"name", "zzz"},
	)
	bs := blockWith(t, &SortedNeighborhood{Window: 2}, c)
	// n=4, w=2 → 3 windows.
	if bs.Len() != 3 {
		t.Fatalf("windows = %d", bs.Len())
	}
	if !sharesBlock(bs, 0, 1) || !sharesBlock(bs, 1, 2) {
		t.Fatal("adjacent keys must share a window")
	}
	if sharesBlock(bs, 0, 3) {
		t.Fatal("distant keys must not share a window of size 2")
	}
}

func TestSortedNeighborhoodMultiPass(t *testing.T) {
	c := dirtyCollection(t,
		[]string{"a", "xx", "b", "11"},
		[]string{"a", "xy", "b", "99"},
		[]string{"a", "zz", "b", "12"},
	)
	passA := AttributeValueKey("a")
	passB := AttributeValueKey("b")
	single := blockWith(t, &SortedNeighborhood{Window: 2, Keys: []ScalarKeyFunc{passA}}, c)
	multi := blockWith(t, &SortedNeighborhood{Window: 2, Keys: []ScalarKeyFunc{passA, passB}}, c)
	if multi.Len() <= single.Len() {
		t.Fatal("second pass must add windows")
	}
	if !sharesBlock(multi, 0, 2) {
		t.Fatal("pass over attribute b must pair 11 with 12")
	}
}

func TestSortedNeighborhoodCleanClean(t *testing.T) {
	c := ccCollection(t,
		[][]string{{"n", "abc"}},
		[][]string{{"n", "abd"}},
	)
	bs := blockWith(t, &SortedNeighborhood{Window: 2}, c)
	if !sharesBlock(bs, 0, 1) {
		t.Fatal("cross-source neighbors must block")
	}
}

func TestSortedNeighborhoodDefaultWindow(t *testing.T) {
	var rows [][]string
	for i := 0; i < 6; i++ {
		rows = append(rows, []string{"n", string(rune('a' + i))})
	}
	c := dirtyCollection(t, rows...)
	bs := blockWith(t, &SortedNeighborhood{}, c)
	if bs.Len() != 3 { // n=6, default w=4 → 3 windows
		t.Fatalf("default window blocks = %d", bs.Len())
	}
}

func TestAttributeValueKeyAndFirstTokenKey(t *testing.T) {
	c := dirtyCollection(t, []string{"last", "Smith", "zip", "75"})
	d := c.Get(0)
	if got := AttributeValueKey("last", "zip")(d); got != "smith 75" {
		t.Fatalf("AttributeValueKey = %q", got)
	}
	if got := FirstTokenKey(nil)(d); got != "75" {
		t.Fatalf("FirstTokenKey = %q", got)
	}
	empty := entity.NewDescription("")
	if got := FirstTokenKey(nil)(empty); got != "" {
		t.Fatalf("FirstTokenKey(empty) = %q", got)
	}
}
