package blocking

import (
	"fmt"
	"testing"

	"entityres/internal/datagen"
	"entityres/internal/entity"
)

func benchCollection(b *testing.B, n int) *entity.Collection {
	b.Helper()
	c, _, err := datagen.GenerateDirty(datagen.Config{Seed: 9, Entities: n, DupRatio: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkBlockers measures block-construction throughput of each
// algorithm on the same 1000-entity collection.
func BenchmarkBlockers(b *testing.B) {
	c := benchCollection(b, 1000)
	for _, bl := range []Blocker{
		&TokenBlocking{},
		&StandardBlocking{},
		&AttributeClustering{},
		&SortedNeighborhood{Window: 8},
		&QGramsBlocking{Q: 3},
		&SuffixArrayBlocking{},
		&PrefixInfixSuffix{},
	} {
		b.Run(bl.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := bl.Block(c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTokenBlockingScale shows the near-linear growth of token
// blocking construction (the E12 claim at micro level).
func BenchmarkTokenBlockingScale(b *testing.B) {
	for _, n := range []int{500, 1000, 2000, 4000} {
		c := benchCollection(b, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := (&TokenBlocking{}).Block(c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDistinctPairs measures redundancy elimination over the
// overlapping token blocks.
func BenchmarkDistinctPairs(b *testing.B) {
	c := benchCollection(b, 1000)
	bs, err := (&TokenBlocking{}).Block(c)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bs.DistinctPairs()
	}
}
