package blocking

import (
	"fmt"

	"entityres/internal/entity"
	"entityres/internal/index"
	"entityres/internal/similarity"
	"entityres/internal/token"
)

// Canopy implements canopy clustering as a blocker: repeatedly take the
// first unprocessed description as a seed, gather into one canopy (block)
// every description whose cheap TF-IDF cosine similarity to the seed is at
// least Loose, and retire from seeding those at least Tight-similar. Tight
// ≥ Loose; a larger gap yields more overlapping canopies. The cheap
// similarity is evaluated only against descriptions sharing at least one
// token with the seed, found through the inverted index.
type Canopy struct {
	// Loose is the canopy-membership threshold in (0,1] (default 0.15).
	Loose float64
	// Tight is the retire-from-seeding threshold, ≥ Loose (default 0.5).
	Tight float64
	// Profiler controls tokenization; nil means the default profiler.
	Profiler *token.Profiler
}

// Name implements Blocker.
func (cp *Canopy) Name() string { return "canopy" }

// Block implements Blocker.
func (cp *Canopy) Block(c *entity.Collection) (*Blocks, error) {
	loose, tight := cp.Loose, cp.Tight
	if loose <= 0 {
		loose = 0.15
	}
	if tight <= 0 {
		tight = 0.5
	}
	if tight < loose {
		return nil, fmt.Errorf("blocking: canopy tight threshold %v < loose %v", tight, loose)
	}
	p := cp.Profiler
	if p == nil {
		p = token.DefaultProfiler()
	}
	ix := index.Build(c, p)
	// Cache token lists and TF-IDF vectors: canopy evaluates each
	// description against many seeds.
	tokens := make([][]string, c.Len())
	vectors := make([]similarity.Vector, c.Len())
	for _, d := range c.All() {
		tokens[d.ID] = p.Tokens(d)
		vectors[d.ID] = ix.TFIDFVector(tokens[d.ID])
	}
	active := make([]bool, c.Len()) // eligible as seed / not yet retired
	for i := range active {
		active[i] = true
	}
	bs := NewBlocks(c.Kind())
	for seed := 0; seed < c.Len(); seed++ {
		if !active[seed] {
			continue
		}
		active[seed] = false
		blk := &Block{Key: fmt.Sprintf("canopy/%d", seed)}
		addMember(blk, c, seed)
		// Candidates: descriptions sharing ≥1 token with the seed.
		cand := make(map[entity.ID]struct{})
		for _, t := range tokens[seed] {
			for _, post := range ix.Postings(t) {
				if post.Doc != seed {
					cand[post.Doc] = struct{}{}
				}
			}
		}
		for _, id := range sortIDs(idsOf(cand)) {
			sim := similarity.Cosine(vectors[seed], vectors[id])
			if sim >= loose {
				addMember(blk, c, id)
				if sim >= tight && active[id] {
					active[id] = false
				}
			}
		}
		bs.Add(blk)
	}
	return bs, nil
}

func addMember(b *Block, c *entity.Collection, id entity.ID) {
	if c.Get(id).Source == 1 {
		b.S1 = append(b.S1, id)
	} else {
		b.S0 = append(b.S0, id)
	}
}

func idsOf(m map[entity.ID]struct{}) []entity.ID {
	out := make([]entity.ID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	return out
}
