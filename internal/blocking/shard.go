package blocking

import (
	"context"
	"runtime"
	"sync"

	"entityres/internal/entity"
)

// KeyedBlocker is implemented by blockers whose block collection is fully
// determined by a per-description key function: every description carrying
// key k lands in block k, independently of every other description. That
// independence is what makes the index build shardable — disjoint slices of
// the collection can be keyed concurrently and the per-shard partial
// indexes merged without changing the result.
type KeyedBlocker interface {
	Blocker
	// Keyer returns the key function for c, with all collection-wide
	// precomputation (profiler defaults, URI prefixes, ...) resolved up
	// front. The returned function must be safe for concurrent use by
	// multiple goroutines on distinct descriptions.
	Keyer(c *entity.Collection) KeyFunc
}

// BlockRefiner is implemented by keyed blockers that post-process the
// built collection (e.g. suffix-array blocking drops oversized blocks).
// BuildSharded applies the refinement after the shard merge so that the
// sharded build reproduces Block exactly.
type BlockRefiner interface {
	RefineBlocks(bs *Blocks) *Blocks
}

// buildFromKeys runs the sequential index build shared by every keyed
// blocker's Block method: key each description in ID order, accumulate
// key → members, emit the sorted block collection.
func buildFromKeys(c *entity.Collection, keys KeyFunc) *Blocks {
	bb := newBuilder(c.Kind())
	for _, d := range c.All() {
		bb.addDescription(d, keys(d))
	}
	return bb.blocks()
}

// cancelCheckStride bounds how many descriptions a shard keys between
// context checks.
const cancelCheckStride = 1024

// BuildSharded builds kb's block collection over c with the collection
// sharded across concurrent workers: each shard keys a contiguous ID range
// into a partial inverted index, and the partials are merged in shard order
// so every block's member lists stay in ascending ID order. The result is
// identical to kb.Block(c) — same keys, same members, same order — for any
// shard count. shards <= 0 means runtime.GOMAXPROCS(0).
//
// mapreduce.ParallelTokenBlocking builds the token-blocking collection as
// an explicit MapReduce job with the same equals-sequential contract; this
// function is the in-process fast path the pipeline engine uses, and the
// one that generalizes over every KeyedBlocker.
func BuildSharded(ctx context.Context, c *entity.Collection, kb KeyedBlocker, shards int) (*Blocks, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := c.Len()
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards > n {
		shards = n
	}
	if shards <= 1 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return kb.Block(c)
	}
	keys := kb.Keyer(c)
	descs := c.All()
	partials := make([]map[string]*Block, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		lo, hi := s*n/shards, (s+1)*n/shards
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			bb := newBuilder(c.Kind())
			for i := lo; i < hi; i++ {
				if (i-lo)%cancelCheckStride == 0 && ctx.Err() != nil {
					return
				}
				bb.addDescription(descs[i], keys(descs[i]))
			}
			partials[s] = bb.m
		}(s, lo, hi)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Merge in ascending shard order: shard s holds IDs strictly below
	// shard s+1, so appending member lists shard-by-shard reproduces the
	// ID-ordered membership of the sequential build. The first shard's
	// partial index seeds the merge as-is.
	merged := partials[0]
	for _, pm := range partials[1:] {
		for k, b := range pm {
			mb, ok := merged[k]
			if !ok {
				merged[k] = b
				continue
			}
			mb.S0 = append(mb.S0, b.S0...)
			mb.S1 = append(mb.S1, b.S1...)
		}
	}
	// Finalize through the sequential builder so ordering and filtering
	// policy live in exactly one place.
	bs := (&builder{kind: c.Kind(), m: merged}).blocks()
	if r, ok := kb.(BlockRefiner); ok {
		bs = r.RefineBlocks(bs)
	}
	return bs, nil
}
