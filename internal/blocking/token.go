package blocking

import (
	"entityres/internal/entity"
	"entityres/internal/token"
)

// TokenBlocking is the schema-agnostic token blocking of Papadakis et al.
// ([21], [20] in the paper): one block per distinct token appearing in any
// attribute value, containing every description whose values mention the
// token. It is the robust default for the Web of data because it assumes
// nothing about schemas — at the cost of many redundant and superfluous
// comparisons, which block post-processing and meta-blocking then remove.
type TokenBlocking struct {
	// Profiler controls tokenization; nil means token.DefaultProfiler.
	Profiler *token.Profiler
}

// Name implements Blocker.
func (t *TokenBlocking) Name() string { return "token" }

// Keyer implements KeyedBlocker.
func (t *TokenBlocking) Keyer(*entity.Collection) KeyFunc {
	p := t.Profiler
	if p == nil {
		p = token.DefaultProfiler()
	}
	return p.Tokens
}

// Block implements Blocker.
func (t *TokenBlocking) Block(c *entity.Collection) (*Blocks, error) {
	return buildFromKeys(c, t.Keyer(c)), nil
}

// StandardBlocking is classic key-based blocking for (semi-)structured
// records: descriptions agreeing on a whole blocking-key value share a
// block. Under schema heterogeneity it collapses (matching descriptions
// rarely agree on attribute names), which experiment E1 demonstrates.
type StandardBlocking struct {
	// Keys derives the blocking keys; nil means WholeValueKeys() over all
	// attributes. A caller-supplied KeyFunc must be safe for concurrent
	// use on distinct descriptions when the blocker runs sharded.
	Keys KeyFunc
}

// Name implements Blocker.
func (s *StandardBlocking) Name() string { return "standard" }

// Keyer implements KeyedBlocker.
func (s *StandardBlocking) Keyer(*entity.Collection) KeyFunc {
	if s.Keys == nil {
		return WholeValueKeys()
	}
	return s.Keys
}

// Block implements Blocker.
func (s *StandardBlocking) Block(c *entity.Collection) (*Blocks, error) {
	return buildFromKeys(c, s.Keyer(c)), nil
}

// QGramsBlocking maps every blocking key to its padded character q-grams,
// so descriptions share a block when any key pair shares a q-gram —
// tolerant to typos at the cost of more, larger blocks.
type QGramsBlocking struct {
	// Q is the gram length; values < 2 default to 3.
	Q int
	// Profiler controls the underlying token extraction; nil means
	// token.DefaultProfiler.
	Profiler *token.Profiler
}

// Name implements Blocker.
func (q *QGramsBlocking) Name() string { return "qgrams" }

// Keyer implements KeyedBlocker.
func (q *QGramsBlocking) Keyer(*entity.Collection) KeyFunc {
	p := q.Profiler
	if p == nil {
		p = token.DefaultProfiler()
	}
	size := q.Q
	if size < 2 {
		size = 3
	}
	return func(d *entity.Description) []string {
		var keys []string
		for t := range p.Set(d) {
			keys = append(keys, token.QGrams(t, size)...)
		}
		return keys
	}
}

// Block implements Blocker.
func (q *QGramsBlocking) Block(c *entity.Collection) (*Blocks, error) {
	return buildFromKeys(c, q.Keyer(c)), nil
}

// SuffixArrayBlocking generates, for every blocking token, its suffixes of
// at least MinLen characters; descriptions sharing a sufficiently long
// suffix share a block. Oversized blocks (suffixes shared by more than
// MaxBlockSize descriptions) are dropped, following the original
// suffix-array method.
type SuffixArrayBlocking struct {
	// MinLen is the minimum suffix length (default 4).
	MinLen int
	// MaxBlockSize drops blocks larger than this (default 50).
	MaxBlockSize int
	// Profiler controls tokenization; nil means token.DefaultProfiler.
	Profiler *token.Profiler
}

// Name implements Blocker.
func (s *SuffixArrayBlocking) Name() string { return "suffix" }

// Keyer implements KeyedBlocker.
func (s *SuffixArrayBlocking) Keyer(*entity.Collection) KeyFunc {
	p := s.Profiler
	if p == nil {
		p = token.DefaultProfiler()
	}
	minLen := s.MinLen
	if minLen <= 0 {
		minLen = 4
	}
	return func(d *entity.Description) []string {
		var keys []string
		for t := range p.Set(d) {
			r := []rune(t)
			for i := 0; i+minLen <= len(r); i++ {
				keys = append(keys, string(r[i:]))
			}
		}
		return keys
	}
}

// RefineBlocks implements BlockRefiner: drop blocks above MaxBlockSize.
func (s *SuffixArrayBlocking) RefineBlocks(all *Blocks) *Blocks {
	maxSize := s.MaxBlockSize
	if maxSize <= 0 {
		maxSize = 50
	}
	out := NewBlocks(all.Kind())
	for _, blk := range all.All() {
		if blk.Size() <= maxSize {
			out.Add(blk)
		}
	}
	return out
}

// Block implements Blocker.
func (s *SuffixArrayBlocking) Block(c *entity.Collection) (*Blocks, error) {
	return s.RefineBlocks(buildFromKeys(c, s.Keyer(c))), nil
}
