package blocking

import (
	"fmt"
	"sort"

	"entityres/internal/entity"
	"entityres/internal/index"
)

// StreamableBlocker is a KeyedBlocker whose key function is independent of
// the collection: the blocking keys of a description depend only on the
// description itself, never on corpus-wide statistics. That independence is
// what makes the blocker's output maintainable under a stream of inserts,
// updates and deletes — a description entering or leaving the collection
// changes only the blocks named by its own keys. Token, standard and
// q-grams blocking qualify; attribute clustering and prefix-infix-suffix
// blocking (collection-wide precomputation) and suffix-array blocking
// (block refinement couples blocks through global size bounds) do not.
type StreamableBlocker interface {
	KeyedBlocker
	// StreamKeyer returns the collection-independent key function.
	StreamKeyer() KeyFunc
}

// StreamKeyer implements StreamableBlocker.
func (t *TokenBlocking) StreamKeyer() KeyFunc { return t.Keyer(nil) }

// StreamKeyer implements StreamableBlocker.
func (s *StandardBlocking) StreamKeyer() KeyFunc { return s.Keyer(nil) }

// StreamKeyer implements StreamableBlocker.
func (q *QGramsBlocking) StreamKeyer() KeyFunc { return q.Keyer(nil) }

// BlockIndex is the incremental form of a keyed blocker's output: the
// key → members mapping maintained under single-description Add and Remove,
// with the posting lists and key document frequencies kept by an
// index.Inverted underneath. Materializing it with Blocks yields exactly
// the collection the batch build (Blocker.Block) would produce for the
// same live descriptions; DeltaBlocks exposes, for one description, only
// the blocks its keys touch — the comparison frontier the streaming
// resolver feeds to the matcher.
//
// A BlockIndex is not safe for concurrent mutation; the streaming resolver
// serializes operations.
type BlockIndex struct {
	kind entity.Kind
	ix   *index.Inverted
	// source records each live member's source index (S0/S1 split).
	source map[entity.ID]int
	// keys records each live member's distinct sorted key set, so Remove
	// and re-keying on update need no access to the description.
	keys map[entity.ID][]string
	// observers are notified on every membership change (see Observe).
	observers []MembershipObserver
}

// MembershipObserver is notified as a BlockIndex's membership changes, so
// derived structures — the incrementally weighted blocking graph of
// metablocking.WeightedGraph above all — stay current without re-scanning
// the index. Keys are the description's distinct sorted key set, exactly
// as indexed.
type MembershipObserver interface {
	// AddDocument is invoked after the description has been indexed: the
	// index already lists id among the members of each key.
	AddDocument(bi *BlockIndex, id entity.ID, source int, keys []string)
	// RemoveDocument is invoked before the description is un-indexed: the
	// index still lists id among the members of each key, so the observer
	// can see the membership the departure dissolves.
	RemoveDocument(bi *BlockIndex, id entity.ID, source int, keys []string)
}

// Observe registers an observer for subsequent membership changes.
// Observers are invoked in registration order, only for successful Add and
// Remove calls, and must not mutate the index from within a notification.
func (bi *BlockIndex) Observe(o MembershipObserver) {
	if o != nil {
		bi.observers = append(bi.observers, o)
	}
}

// EachMember enumerates the live members of one key with their source
// index, in unspecified order, stopping early if fn returns false.
func (bi *BlockIndex) EachMember(key string, fn func(id entity.ID, source int) bool) {
	for _, p := range bi.ix.Postings(key) {
		if !fn(p.Doc, bi.source[p.Doc]) {
			return
		}
	}
}

// SourceOf returns the source index the description was indexed under and
// whether it is indexed.
func (bi *BlockIndex) SourceOf(id entity.ID) (int, bool) {
	s, ok := bi.source[id]
	return s, ok
}

// NewBlockIndex returns an empty incremental block index for the given
// resolution setting.
func NewBlockIndex(kind entity.Kind) *BlockIndex {
	return &BlockIndex{
		kind:   kind,
		ix:     index.New(),
		source: make(map[entity.ID]int),
		keys:   make(map[entity.ID][]string),
	}
}

// Kind returns the resolution setting of the index.
func (bi *BlockIndex) Kind() entity.Kind { return bi.kind }

// Len returns the number of indexed descriptions.
func (bi *BlockIndex) Len() int { return len(bi.keys) }

// NumKeys returns the number of distinct live blocking keys.
func (bi *BlockIndex) NumKeys() int { return bi.ix.NumTokens() }

// DF returns how many live descriptions carry the key.
func (bi *BlockIndex) DF(key string) int { return bi.ix.DF(key) }

// Keys returns the distinct sorted keys the description was indexed under
// (owned by the index; do not mutate), or nil when it is not indexed.
func (bi *BlockIndex) Keys(id entity.ID) []string { return bi.keys[id] }

// DistinctKeys normalizes a raw key slice exactly the way BlockIndex.Add
// indexes it: empty keys dropped, duplicates removed, the result sorted
// ascending. It is exported so layers that reason about a description's
// indexed key set without an index at hand — the sharded resolver's
// cross-shard pair-ownership rule above all — normalize identically.
func DistinctKeys(keys []string) []string {
	distinct := make([]string, 0, len(keys))
	seen := make(map[string]struct{}, len(keys))
	for _, k := range keys {
		if k == "" {
			continue
		}
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		distinct = append(distinct, k)
	}
	sort.Strings(distinct)
	return distinct
}

// Add indexes a description under its blocking keys. Keys are deduplicated
// and empty keys dropped, mirroring the batch builder. Adding an ID that is
// already indexed is an error: update is Remove followed by Add.
func (bi *BlockIndex) Add(id entity.ID, source int, keys []string) error {
	if _, dup := bi.keys[id]; dup {
		return fmt.Errorf("blocking: description %d already indexed", id)
	}
	switch bi.kind {
	case entity.CleanClean:
		if source != 0 && source != 1 {
			return fmt.Errorf("blocking: clean-clean index requires source 0 or 1, got %d", source)
		}
	default:
		if source != 0 {
			return fmt.Errorf("blocking: dirty index requires source 0, got %d", source)
		}
	}
	distinct := DistinctKeys(keys)
	bi.keys[id] = distinct
	bi.source[id] = source
	bi.ix.AddDocument(id, distinct)
	for _, o := range bi.observers {
		o.AddDocument(bi, id, source, distinct)
	}
	return nil
}

// Remove un-indexes a description, updating only the posting lists of its
// own keys. It reports whether the description was indexed.
func (bi *BlockIndex) Remove(id entity.ID) bool {
	keys, ok := bi.keys[id]
	if !ok {
		return false
	}
	for _, o := range bi.observers {
		o.RemoveDocument(bi, id, bi.source[id], keys)
	}
	bi.ix.RemoveDocument(id, keys)
	delete(bi.keys, id)
	delete(bi.source, id)
	return true
}

// DeltaBlocks returns the comparison frontier of one indexed description:
// for every key of id, a block pairing id (S0) against the other live
// members of that key that are comparable to it under the index's kind
// (S1, sorted ascending). The returned collection is always CleanClean-
// shaped — S0×S1 enumeration — regardless of the index kind, because the
// frontier is inherently bipartite: id against everyone else. Feeding it to
// a CompareIterator enumerates each candidate pair of id exactly once
// (first key wins), which is the delta comparison schedule of an insert or
// update.
func (bi *BlockIndex) DeltaBlocks(id entity.ID) *Blocks {
	out := NewBlocks(entity.CleanClean)
	keys, live := bi.keys[id]
	if !live {
		return out
	}
	src := bi.source[id]
	for _, k := range keys {
		var others []entity.ID
		for _, p := range bi.ix.Postings(k) {
			if p.Doc == id {
				continue
			}
			if bi.kind == entity.CleanClean && bi.source[p.Doc] == src {
				continue
			}
			others = append(others, p.Doc)
		}
		if len(others) == 0 {
			continue
		}
		sort.Ints(others)
		out.Add(&Block{Key: k, S0: []entity.ID{id}, S1: others})
	}
	return out
}

// Blocks materializes the full block collection of the live descriptions:
// keys ascending, members ascending by ID, comparison-free blocks dropped —
// byte-identical to the batch build of the same blocker over a collection
// holding the live descriptions with the same IDs.
func (bi *BlockIndex) Blocks() *Blocks {
	out := NewBlocks(bi.kind)
	for _, k := range bi.ix.Tokens() {
		b := &Block{Key: k}
		for _, p := range bi.ix.Postings(k) {
			if bi.source[p.Doc] == 1 {
				b.S1 = append(b.S1, p.Doc)
			} else {
				b.S0 = append(b.S0, p.Doc)
			}
		}
		sortIDs(b.S0)
		sortIDs(b.S1)
		out.Add(b)
	}
	return out
}
