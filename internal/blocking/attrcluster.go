package blocking

import (
	"sort"

	"entityres/internal/entity"
	"entityres/internal/similarity"
	"entityres/internal/token"
)

// AttributeClustering is the attribute-clustering blocking of [21]: it
// first clusters attribute names whose value distributions are similar
// (e.g. "name" in one KB with "label" in another), then runs token blocking
// with tokens qualified by the attribute cluster instead of the attribute
// name. Compared to plain token blocking this prevents collisions between
// semantically unrelated attributes ("smith" as a surname vs as a
// profession), raising precision with minimal recall loss.
type AttributeClustering struct {
	// Profiler controls value tokenization; nil means the default profiler.
	Profiler *token.Profiler
	// MinSim is the minimum trigram-set similarity for two attributes to be
	// linked (default 0.1, the permissive setting of the original method —
	// each attribute links only to its best partner anyway).
	MinSim float64
}

// Name implements Blocker.
func (a *AttributeClustering) Name() string { return "attrclustering" }

// Block implements Blocker.
func (a *AttributeClustering) Block(c *entity.Collection) (*Blocks, error) {
	p := a.Profiler
	if p == nil {
		p = token.DefaultProfiler()
	}
	minSim := a.MinSim
	if minSim <= 0 {
		minSim = 0.1
	}
	clusterOf := a.clusterAttributes(c, minSim)
	b := newBuilder(c.Kind())
	for _, d := range c.All() {
		var keys []string
		for _, at := range d.Attrs {
			cl, ok := clusterOf[attrRef{source: sourceOfAttr(c, d.Source), name: at.Name}]
			if !ok {
				cl = "~" // glue cluster for attributes never profiled
			}
			for _, t := range token.TokenizeFiltered(at.Value, p.Stopwords, p.MinTokenLen) {
				keys = append(keys, cl+"#"+t)
			}
		}
		b.addDescription(d, keys)
	}
	return b.blocks(), nil
}

// attrRef identifies an attribute within one source.
type attrRef struct {
	source int
	name   string
}

// sourceOfAttr collapses sources for dirty collections so that attribute
// statistics are shared.
func sourceOfAttr(c *entity.Collection, source int) int {
	if c.Kind() == entity.Dirty {
		return 0
	}
	return source
}

// clusterAttributes links every attribute to its most similar attribute of
// the other source (or of the same collection when dirty), using the
// trigram sets of the aggregated values as the attribute signature, and
// returns the connected-component labels.
func (a *AttributeClustering) clusterAttributes(c *entity.Collection, minSim float64) map[attrRef]string {
	// Aggregate a value-trigram signature per attribute.
	sigs := make(map[attrRef]token.Set)
	for _, d := range c.All() {
		src := sourceOfAttr(c, d.Source)
		for _, at := range d.Attrs {
			ref := attrRef{source: src, name: at.Name}
			s, ok := sigs[ref]
			if !ok {
				s = token.NewSet()
				sigs[ref] = s
			}
			for _, g := range token.QGrams(at.Value, 3) {
				s.Add(g)
			}
		}
	}
	refs := make([]attrRef, 0, len(sigs))
	for r := range sigs {
		refs = append(refs, r)
	}
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].source != refs[j].source {
			return refs[i].source < refs[j].source
		}
		return refs[i].name < refs[j].name
	})
	// Union best-match links. For clean-clean, only cross-source links are
	// considered (the bipartite construction of the original algorithm);
	// for dirty, any distinct attribute pair qualifies.
	uf := newStringUF()
	for _, r := range refs {
		best, bestSim := attrRef{}, 0.0
		for _, o := range refs {
			if o == r {
				continue
			}
			if c.Kind() == entity.CleanClean && o.source == r.source {
				continue
			}
			sim := similarity.Jaccard(sigs[r], sigs[o])
			if sim > bestSim {
				best, bestSim = o, sim
			}
		}
		if bestSim >= minSim {
			uf.union(attrKey(r), attrKey(best))
		}
	}
	out := make(map[attrRef]string, len(refs))
	for _, r := range refs {
		out[r] = uf.find(attrKey(r))
	}
	return out
}

func attrKey(r attrRef) string {
	return string(rune('0'+r.source)) + ":" + r.name
}

// stringUF is a tiny union-find over strings for attribute clustering.
type stringUF struct {
	parent map[string]string
}

func newStringUF() *stringUF { return &stringUF{parent: make(map[string]string)} }

func (u *stringUF) find(x string) string {
	p, ok := u.parent[x]
	if !ok {
		u.parent[x] = x
		return x
	}
	if p == x {
		return x
	}
	root := u.find(p)
	u.parent[x] = root
	return root
}

// union merges two sets, keeping the lexicographically smaller root so that
// cluster labels are deterministic.
func (u *stringUF) union(a, b string) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if rb < ra {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
}
