package core

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"entityres/internal/blocking"
	"entityres/internal/blockproc"
	"entityres/internal/entity"
	"entityres/internal/matching"
	"entityres/internal/metablocking"
)

// TestPipelineStreamingEqualsBatch is the mode-level differential contract:
// replaying a static collection through Streaming mode produces exactly the
// Batch result — same matches, same clusters, same distinct comparison
// count, same block collection.
func TestPipelineStreamingEqualsBatch(t *testing.T) {
	c, _ := testData(t)
	m := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
	batch := &Pipeline{Blocker: &blocking.TokenBlocking{}, Matcher: m, Mode: Batch}
	stream := &Pipeline{Blocker: &blocking.TokenBlocking{}, Matcher: m, Mode: Streaming}

	want, err := batch.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	got, err := stream.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	sorted := func(r *Result) []string {
		var out []string
		for _, p := range r.Matches.Pairs() {
			out = append(out, fmt.Sprintf("%d-%d", p.A, p.B))
		}
		sort.Strings(out)
		return out
	}
	if !reflect.DeepEqual(sorted(got), sorted(want)) {
		t.Fatalf("streaming matches diverge from batch:\nstreaming %v\nbatch     %v", sorted(got), sorted(want))
	}
	if got.Comparisons != want.Comparisons {
		t.Fatalf("streaming comparisons = %d, batch = %d", got.Comparisons, want.Comparisons)
	}
	if !reflect.DeepEqual(got.Clusters(), want.Clusters()) {
		t.Fatalf("streaming clusters diverge from batch")
	}
	if got.Blocks.Len() != want.Blocks.Len() {
		t.Fatalf("streaming blocks = %d, batch = %d", got.Blocks.Len(), want.Blocks.Len())
	}
	if len(got.Phases) != 1 || got.Phases[0].Name != "streaming" {
		t.Fatalf("phases = %v", got.Phases)
	}
}

// TestStreamingValidation checks the configurations streaming rejects.
func TestStreamingValidation(t *testing.T) {
	c, _ := testData(t)
	m := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
	cases := map[string]*Pipeline{
		"collection-dependent blocker": {
			Blocker: &blocking.AttributeClustering{}, Matcher: m, Mode: Streaming,
		},
		"refining blocker": {
			Blocker: &blocking.SuffixArrayBlocking{}, Matcher: m, Mode: Streaming,
		},
		"block cleaning": {
			Blocker:    &blocking.TokenBlocking{},
			Processors: []blockproc.Processor{&blockproc.SizePurge{}},
			Matcher:    m, Mode: Streaming,
		},
		"meta-blocking": {
			Blocker: &blocking.TokenBlocking{},
			Meta:    &metablocking.MetaBlocker{Weight: metablocking.CBS, Prune: metablocking.WEP},
			Matcher: m, Mode: Streaming,
		},
	}
	for name, p := range cases {
		if _, err := p.Run(c); err == nil {
			t.Errorf("%s: accepted by streaming mode", name)
		}
	}
}

// TestStreamingSetupErrors covers the construction error paths reachable
// when the engine calls StreamingSetup outside Run's validation.
func TestStreamingSetupErrors(t *testing.T) {
	m := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
	p := &Pipeline{Blocker: &blocking.AttributeClustering{}, Matcher: m}
	if _, err := p.StreamingSetup(0, 1); err == nil {
		t.Fatal("StreamingSetup accepted a collection-dependent blocker")
	}
}

// TestStreamingDuplicateURIs: streams address descriptions by URI, so a
// collection carrying the same URI twice cannot replay.
func TestStreamingDuplicateURIs(t *testing.T) {
	c := entity.NewCollection(entity.Dirty)
	for i := 0; i < 2; i++ {
		d := entity.NewDescription("http://dup.example.org/x")
		d.Add("name", "alice smith")
		c.MustAdd(d)
	}
	p := &Pipeline{
		Blocker: &blocking.TokenBlocking{},
		Matcher: &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5},
		Mode:    Streaming,
	}
	if _, err := p.Run(c); err == nil {
		t.Fatal("streaming replay accepted duplicate URIs")
	}
}

func TestStreamingModeString(t *testing.T) {
	if Streaming.String() != "streaming" {
		t.Fatalf("Streaming.String() = %q", Streaming.String())
	}
}
