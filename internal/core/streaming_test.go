package core

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"entityres/internal/blocking"
	"entityres/internal/blockproc"
	"entityres/internal/entity"
	"entityres/internal/incremental"
	"entityres/internal/matching"
	"entityres/internal/metablocking"
)

// TestPipelineStreamingEqualsBatch is the mode-level differential contract:
// replaying a static collection through Streaming mode produces exactly the
// Batch result — same matches, same clusters, same distinct comparison
// count, same block collection.
func TestPipelineStreamingEqualsBatch(t *testing.T) {
	c, _ := testData(t)
	m := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
	batch := &Pipeline{Blocker: &blocking.TokenBlocking{}, Matcher: m, Mode: Batch}
	stream := &Pipeline{Blocker: &blocking.TokenBlocking{}, Matcher: m, Mode: Streaming}

	want, err := batch.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	got, err := stream.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	sorted := func(r *Result) []string {
		var out []string
		for _, p := range r.Matches.Pairs() {
			out = append(out, fmt.Sprintf("%d-%d", p.A, p.B))
		}
		sort.Strings(out)
		return out
	}
	if !reflect.DeepEqual(sorted(got), sorted(want)) {
		t.Fatalf("streaming matches diverge from batch:\nstreaming %v\nbatch     %v", sorted(got), sorted(want))
	}
	if got.Comparisons != want.Comparisons {
		t.Fatalf("streaming comparisons = %d, batch = %d", got.Comparisons, want.Comparisons)
	}
	if !reflect.DeepEqual(got.Clusters(), want.Clusters()) {
		t.Fatalf("streaming clusters diverge from batch")
	}
	if got.Blocks.Len() != want.Blocks.Len() {
		t.Fatalf("streaming blocks = %d, batch = %d", got.Blocks.Len(), want.Blocks.Len())
	}
	if len(got.Phases) != 1 || got.Phases[0].Name != "streaming" {
		t.Fatalf("phases = %v", got.Phases)
	}
}

// TestPipelineStreamingMetaEqualsBatch is the incremental meta-blocking
// contract: replaying a static collection through Streaming mode with a
// stream-safe MetaBlocker reproduces the Batch result bit for bit — same
// matches, same clusters, same comparison count (the number of pruned-graph
// survivors), and the same restructured block collection in the same
// weight order.
func TestPipelineStreamingMetaEqualsBatch(t *testing.T) {
	c, _ := testData(t)
	m := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
	renderBlocks := func(bs *blocking.Blocks) []string {
		out := make([]string, 0, bs.Len())
		for _, b := range bs.All() {
			out = append(out, fmt.Sprintf("%s S0=%v S1=%v", b.Key, b.S0, b.S1))
		}
		return out
	}
	for _, w := range []metablocking.WeightScheme{metablocking.CBS, metablocking.ECBS, metablocking.JS} {
		for _, pr := range []metablocking.PruneScheme{metablocking.WEP, metablocking.WNP} {
			for _, rec := range []bool{false, true} {
				if rec && pr != metablocking.WNP {
					continue
				}
				meta := &metablocking.MetaBlocker{Weight: w, Prune: pr, Reciprocal: rec}
				t.Run(meta.Name(), func(t *testing.T) {
					batch := &Pipeline{Blocker: &blocking.TokenBlocking{}, Meta: meta, Matcher: m, Mode: Batch}
					stream := &Pipeline{Blocker: &blocking.TokenBlocking{}, Meta: meta, Matcher: m, Mode: Streaming}
					want, err := batch.Run(c)
					if err != nil {
						t.Fatal(err)
					}
					got, err := stream.Run(c)
					if err != nil {
						t.Fatal(err)
					}
					if got.Comparisons != want.Comparisons {
						t.Errorf("streaming comparisons = %d, batch = %d", got.Comparisons, want.Comparisons)
					}
					if gm, wm := sortedPairs(got.Matches), sortedPairs(want.Matches); !reflect.DeepEqual(gm, wm) {
						t.Errorf("streaming matches diverge from batch:\nstreaming %v\nbatch     %v", gm, wm)
					}
					if !reflect.DeepEqual(got.Clusters(), want.Clusters()) {
						t.Errorf("streaming clusters diverge from batch")
					}
					if gb, wb := renderBlocks(got.Blocks), renderBlocks(want.Blocks); !reflect.DeepEqual(gb, wb) {
						t.Errorf("streaming restructured blocks diverge from batch:\nstreaming %v\nbatch     %v", gb, wb)
					}
					// The batch run compared exactly the pruned-graph
					// survivors; a comparison saved is one the exhaustive
					// blocked run would have made.
					if want.Comparisons <= 0 {
						t.Fatalf("batch meta run made no comparisons")
					}
				})
			}
		}
	}
}

// sortedPairs renders a match set deterministically.
func sortedPairs(m *entity.Matches) []string {
	var out []string
	for _, p := range m.Pairs() {
		out = append(out, fmt.Sprintf("%d-%d", p.A, p.B))
	}
	sort.Strings(out)
	return out
}

// TestStreamingValidation checks the configurations streaming rejects —
// and that each batch-only meta-blocking scheme is refused with its
// specific reason, not a blanket error.
func TestStreamingValidation(t *testing.T) {
	c, _ := testData(t)
	m := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
	cases := map[string]struct {
		p    *Pipeline
		want string // substring the error must carry
	}{
		"collection-dependent blocker": {
			p:    &Pipeline{Blocker: &blocking.AttributeClustering{}, Matcher: m, Mode: Streaming},
			want: "StreamableBlocker",
		},
		"refining blocker": {
			p:    &Pipeline{Blocker: &blocking.SuffixArrayBlocking{}, Matcher: m, Mode: Streaming},
			want: "StreamableBlocker",
		},
		"block cleaning": {
			p: &Pipeline{
				Blocker:    &blocking.TokenBlocking{},
				Processors: []blockproc.Processor{&blockproc.SizePurge{}},
				Matcher:    m, Mode: Streaming,
			},
			want: "block cleaning",
		},
		"EJS weighting": {
			p: &Pipeline{
				Blocker: &blocking.TokenBlocking{},
				Meta:    &metablocking.MetaBlocker{Weight: metablocking.EJS, Prune: metablocking.WEP},
				Matcher: m, Mode: Streaming,
			},
			want: "EJS weighting cannot stream",
		},
		"ARCS weighting": {
			p: &Pipeline{
				Blocker: &blocking.TokenBlocking{},
				Meta:    &metablocking.MetaBlocker{Weight: metablocking.ARCS, Prune: metablocking.WNP},
				Matcher: m, Mode: Streaming,
			},
			want: "ARCS weighting cannot stream",
		},
		"CEP pruning": {
			p: &Pipeline{
				Blocker: &blocking.TokenBlocking{},
				Meta:    &metablocking.MetaBlocker{Weight: metablocking.CBS, Prune: metablocking.CEP},
				Matcher: m, Mode: Streaming,
			},
			want: "CEP pruning cannot stream",
		},
		"CNP pruning": {
			p: &Pipeline{
				Blocker: &blocking.TokenBlocking{},
				Meta:    &metablocking.MetaBlocker{Weight: metablocking.JS, Prune: metablocking.CNP},
				Matcher: m, Mode: Streaming,
			},
			want: "CNP pruning cannot stream",
		},
	}
	for name, tc := range cases {
		_, err := tc.p.Run(c)
		if err == nil {
			t.Errorf("%s: accepted by streaming mode", name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not carry %q", name, err, tc.want)
		}
	}
	// The stream-safe subset is accepted: every WEP/WNP × CBS/ECBS/JS
	// combination runs (Reciprocal included).
	for _, w := range []metablocking.WeightScheme{metablocking.CBS, metablocking.ECBS, metablocking.JS} {
		for _, pr := range []metablocking.PruneScheme{metablocking.WEP, metablocking.WNP} {
			p := &Pipeline{
				Blocker: &blocking.TokenBlocking{},
				Meta:    &metablocking.MetaBlocker{Weight: w, Prune: pr, Reciprocal: pr == metablocking.WNP},
				Matcher: m, Mode: Streaming,
			}
			if _, err := p.Run(c); err != nil {
				t.Errorf("meta(%s,%s) rejected by streaming mode: %v", w, pr, err)
			}
		}
	}
}

// TestStreamingSetupErrors covers the construction error paths reachable
// when the engine calls StreamingSetup outside Run's validation.
func TestStreamingSetupErrors(t *testing.T) {
	m := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
	p := &Pipeline{Blocker: &blocking.AttributeClustering{}, Matcher: m}
	if _, err := p.StreamingSetup(0, 1); err == nil {
		t.Fatal("StreamingSetup accepted a collection-dependent blocker")
	}
}

// TestStreamingDuplicateURIs: streams address descriptions by URI, so a
// collection carrying the same URI twice cannot replay.
func TestStreamingDuplicateURIs(t *testing.T) {
	c := entity.NewCollection(entity.Dirty)
	for i := 0; i < 2; i++ {
		d := entity.NewDescription("http://dup.example.org/x")
		d.Add("name", "alice smith")
		c.MustAdd(d)
	}
	p := &Pipeline{
		Blocker: &blocking.TokenBlocking{},
		Matcher: &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5},
		Mode:    Streaming,
	}
	if _, err := p.Run(c); err == nil {
		t.Fatal("streaming replay accepted duplicate URIs")
	}
}

func TestStreamingModeString(t *testing.T) {
	if Streaming.String() != "streaming" {
		t.Fatalf("Streaming.String() = %q", Streaming.String())
	}
}

// TestPipelineStreamingPersistence: a Streaming pipeline with StreamDir set
// journals its replay into a WAL directory and produces exactly the
// in-memory streaming (= batch) result; reopening the directory afterwards
// recovers the replayed state.
func TestPipelineStreamingPersistence(t *testing.T) {
	c, _ := testData(t)
	m := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
	dir := t.TempDir()
	mem := &Pipeline{Blocker: &blocking.TokenBlocking{}, Matcher: m, Mode: Streaming}
	dur := &Pipeline{Blocker: &blocking.TokenBlocking{}, Matcher: m, Mode: Streaming,
		StreamDir: dir, StreamDurable: incremental.DurableOptions{NoSync: true, SnapshotEvery: 8}}

	want, err := mem.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dur.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if want.Matches.Len() != got.Matches.Len() || want.Comparisons != got.Comparisons {
		t.Fatalf("durable streaming run diverges: %d/%d matches, %d/%d comparisons",
			got.Matches.Len(), want.Matches.Len(), got.Comparisons, want.Comparisons)
	}
	// The directory now holds the whole replay: reopening it recovers the
	// resolved state without the collection.
	r, err := incremental.OpenResolver(dir, incremental.Config{
		Kind: c.Kind(), Blocker: &blocking.TokenBlocking{}, Matcher: m,
		Durable: incremental.DurableOptions{NoSync: true, SnapshotEvery: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !r.Recovery().Recovered {
		t.Fatal("StreamDir left no recoverable state")
	}
	st, err := r.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Live != c.Len() || st.Matches != want.Matches.Len() || st.Comparisons != want.Comparisons {
		t.Fatalf("recovered state %+v diverges from the pipeline result (%d matches, %d comparisons)",
			st, want.Matches.Len(), want.Comparisons)
	}
	// A second durable run into the same directory collides with the live
	// URIs and fails instead of corrupting state.
	if _, err := dur.Run(c); err == nil {
		t.Fatal("re-running a persistent pipeline into a populated directory succeeded")
	}
}

// TestPipelineStreamDirValidation: durable streaming is a Streaming-mode
// option; every other mode rejects it.
func TestPipelineStreamDirValidation(t *testing.T) {
	m := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
	p := &Pipeline{Blocker: &blocking.TokenBlocking{}, Matcher: m, Mode: Batch, StreamDir: t.TempDir()}
	if err := p.Validate(); err == nil {
		t.Fatal("StreamDir accepted outside Streaming mode")
	}
	p.Mode = Streaming
	if err := p.Validate(); err != nil {
		t.Fatalf("StreamDir rejected in Streaming mode: %v", err)
	}
	// Durability tuning without a StreamDir would be silently ignored;
	// Validate refuses it instead.
	p.StreamDir = ""
	p.StreamDurable = incremental.DurableOptions{NoSync: true}
	if err := p.Validate(); err == nil {
		t.Fatal("StreamDurable accepted without StreamDir")
	}
}

// TestPipelineStreamShards: Streaming mode with StreamShards > 1 replays
// the collection through the sharded resolver and reproduces the batch —
// and therefore the single-node streaming — result bit for bit: matches,
// clusters, comparison count and blocks, for several shard counts, with
// and without live meta-blocking.
func TestPipelineStreamShards(t *testing.T) {
	c, _ := testData(t)
	m := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
	for _, meta := range []*metablocking.MetaBlocker{
		nil,
		{Weight: metablocking.CBS, Prune: metablocking.WEP},
	} {
		batch := &Pipeline{Blocker: &blocking.TokenBlocking{}, Meta: meta, Matcher: m, Mode: Batch}
		want, err := batch.Run(c)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{2, 5} {
			name := fmt.Sprintf("shards=%d", n)
			if meta != nil {
				name += "/" + meta.Name()
			}
			t.Run(name, func(t *testing.T) {
				stream := &Pipeline{Blocker: &blocking.TokenBlocking{}, Meta: meta, Matcher: m, Mode: Streaming, StreamShards: n}
				got, err := stream.Run(c)
				if err != nil {
					t.Fatal(err)
				}
				if gm, wm := sortedPairs(got.Matches), sortedPairs(want.Matches); !reflect.DeepEqual(gm, wm) {
					t.Errorf("sharded streaming matches diverge from batch:\nsharded %v\nbatch   %v", gm, wm)
				}
				if got.Comparisons != want.Comparisons {
					t.Errorf("sharded streaming comparisons = %d, batch = %d", got.Comparisons, want.Comparisons)
				}
				if !reflect.DeepEqual(got.Clusters(), want.Clusters()) {
					t.Errorf("sharded streaming clusters diverge from batch")
				}
				if got.Blocks.Len() != want.Blocks.Len() {
					t.Errorf("sharded streaming blocks = %d, batch = %d", got.Blocks.Len(), want.Blocks.Len())
				}
			})
		}
	}
}

// TestPipelineStreamShardsDurable: StreamShards + StreamDir journals each
// shard under shard-%03d and the directory recovers through sharded.Open.
func TestPipelineStreamShardsDurable(t *testing.T) {
	c, _ := testData(t)
	m := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
	dir := t.TempDir()
	p := &Pipeline{Blocker: &blocking.TokenBlocking{}, Matcher: m, Mode: Streaming,
		StreamShards: 3, StreamDir: dir,
		StreamDurable: incremental.DurableOptions{NoSync: true, SnapshotEvery: 8}}
	want, err := p.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.ShardedSetup(c.Kind(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !r.Recovered() {
		t.Fatal("StreamDir left no recoverable sharded state")
	}
	st, err := r.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Live != c.Len() || st.Matches != want.Matches.Len() || st.Comparisons != want.Comparisons {
		t.Fatalf("recovered sharded state %+v diverges from the pipeline result (%d matches, %d comparisons)",
			st, want.Matches.Len(), want.Comparisons)
	}
}

// TestPipelineStreamShardsValidation: sharded streaming is a
// Streaming-mode option with a sane shard count.
func TestPipelineStreamShardsValidation(t *testing.T) {
	m := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
	p := &Pipeline{Blocker: &blocking.TokenBlocking{}, Matcher: m, Mode: Batch, StreamShards: 4}
	if err := p.Validate(); err == nil {
		t.Fatal("StreamShards accepted outside Streaming mode")
	}
	p.Mode = Streaming
	if err := p.Validate(); err != nil {
		t.Fatalf("StreamShards rejected in Streaming mode: %v", err)
	}
	p.StreamShards = -1
	if err := p.Validate(); err == nil {
		t.Fatal("negative StreamShards accepted")
	}
	// StreamShards <= 1 is the single-node resolver in any mode's terms:
	// valid in Batch too, since it changes nothing.
	p.Mode, p.StreamShards = Batch, 1
	if err := p.Validate(); err != nil {
		t.Fatalf("StreamShards=1 rejected: %v", err)
	}
}
