// Package core implements the paper's central artifact: the ER framework
// of Fig. 1. A Pipeline wires the framework's phases — Blocking, block
// cleaning and Meta-blocking (the planning of comparisons), Scheduling,
// Matching, and the optional Update/iteration feeding results back — with
// pluggable implementations from the substrate packages, and runs them in
// one of the execution modes the tutorial organizes: batch, merging-based
// iterative (Swoosh), iterative blocking, relationship-based collective,
// budget-bounded progressive, and streaming (incremental resolution of
// arriving descriptions, package incremental).
package core

import (
	"context"
	"fmt"
	"time"

	"entityres/internal/blocking"
	"entityres/internal/blockproc"
	"entityres/internal/entity"
	"entityres/internal/evaluation"
	"entityres/internal/incremental"
	"entityres/internal/iterative"
	"entityres/internal/iterblock"
	"entityres/internal/matching"
	"entityres/internal/metablocking"
	"entityres/internal/progressive"
	"entityres/internal/sharded"
)

// Mode selects the execution strategy of the matching/update phases.
type Mode int

const (
	// Batch resolves every blocked comparison once, in block order.
	Batch Mode = iota
	// MergingIterative runs R-Swoosh over the collection: matches merge
	// and merged profiles re-enter resolution (blocking is still applied
	// first to report stats, but resolution is exhaustive over profiles,
	// per the Swoosh model).
	MergingIterative
	// IterativeBlocks runs iterative blocking: block-at-a-time resolution
	// with merge propagation across blocks until fixpoint.
	IterativeBlocks
	// Collective runs relationship-based iterative resolution over the
	// blocked candidates.
	Collective
	// Progressive resolves blocked candidates under a comparison budget
	// using a pluggable scheduler.
	Progressive
	// Streaming replays the collection through the incremental resolver
	// (package incremental): every description is inserted one at a time
	// and resolved against only the blocks its keys touch. On a static
	// collection the result is identical to Batch — same matches, same
	// comparison count — which is exactly the differential contract that
	// lets the same configuration serve live insert/update/delete traffic
	// through core.Pipeline.Streaming.
	Streaming
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Batch:
		return "batch"
	case MergingIterative:
		return "merging-iterative"
	case IterativeBlocks:
		return "iterative-blocking"
	case Collective:
		return "collective"
	case Progressive:
		return "progressive"
	case Streaming:
		return "streaming"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// SchedulerFactory builds the progressive scheduler once the blocking
// collection is known.
type SchedulerFactory func(c *entity.Collection, bs *blocking.Blocks) progressive.Scheduler

// Pipeline is the configurable ER framework.
type Pipeline struct {
	// Blocker is the blocking phase (required).
	Blocker blocking.Blocker
	// Processors clean the blocking collection (purging, filtering, ...)
	// in order.
	Processors []blockproc.Processor
	// Meta optionally restructures the collection through the weighted
	// blocking graph.
	Meta *metablocking.MetaBlocker
	// Matcher is the matching phase (required for every mode except
	// Collective, which carries its own similarity).
	Matcher *matching.Matcher
	// Mode selects the execution strategy (default Batch).
	Mode Mode
	// Scheduler builds the progressive schedule (Progressive mode;
	// defaults to the static block order).
	Scheduler SchedulerFactory
	// Budget caps comparisons in Progressive mode (0 = unlimited).
	Budget int64
	// CollectiveConfig configures Collective mode (nil = defaults with
	// the Matcher's similarity and threshold).
	CollectiveConfig *iterative.Collective
	// GroundTruth, when provided, annotates the progressive recall curve;
	// it never influences resolution.
	GroundTruth *entity.Matches
	// StreamDir, in Streaming mode, makes the resolver durable: every
	// operation is journaled to a write-ahead log in this directory and
	// periodically compacted into snapshots, and an existing directory is
	// crash-recovered (snapshot restore plus tail replay) before the
	// collection streams in — see incremental.OpenResolver. Empty means
	// in-memory streaming. Replaying a collection into a directory that
	// already holds its descriptions fails on the duplicate URIs; persistent
	// pipelines are for fresh directories or resumed streams whose
	// collections carry only the new arrivals.
	StreamDir string
	// StreamDurable tunes the StreamDir journal (segment size, snapshot
	// cadence, fsync policy).
	StreamDurable incremental.DurableOptions
	// StreamShards, in Streaming mode, replays the collection through the
	// sharded streaming resolver (package sharded) with this many key-hash
	// shards instead of the single-node resolver: each shard owns a slice
	// of the blocking-key space and the coordinator merges their match
	// edges, with results bit-exact for every shard count. 0 or 1 keeps the
	// single-node resolver. With StreamDir set, each shard journals to its
	// own WAL directory shard-%03d under StreamDir (group-commit fsync
	// batching).
	StreamShards int
}

// PhaseStat records one framework phase execution.
type PhaseStat struct {
	Name     string
	Duration time.Duration
}

// Result is the outcome of a pipeline run.
type Result struct {
	// Matches is the pairwise match output.
	Matches *entity.Matches
	// Comparisons counts matcher invocations.
	Comparisons int64
	// Blocks is the final blocking collection that fed matching.
	Blocks *blocking.Blocks
	// Curve is the progressive recall curve (Progressive mode with
	// GroundTruth set).
	Curve evaluation.Curve
	// Phases records per-phase wall time in execution order.
	Phases []PhaseStat
}

// Clusters returns the resolved entities as ID clusters (connected
// components of the match output).
func (r *Result) Clusters() [][]entity.ID { return r.Matches.Clusters() }

// Validate checks that the configuration is runnable. Both the sequential
// runner and the concurrent engine (package pipeline) call it, so the two
// cannot drift apart on what counts as a valid configuration.
func (p *Pipeline) Validate() error {
	if p.Blocker == nil {
		return fmt.Errorf("core: pipeline requires a Blocker")
	}
	if p.Matcher == nil && p.Mode != Collective {
		return fmt.Errorf("core: pipeline requires a Matcher in %s mode", p.Mode)
	}
	if p.Mode == Collective && p.CollectiveConfig == nil && p.Matcher == nil {
		return fmt.Errorf("core: collective mode requires CollectiveConfig or Matcher")
	}
	if p.StreamDir != "" && p.Mode != Streaming {
		return fmt.Errorf("core: StreamDir (durable streaming) requires %s mode, got %s", Streaming, p.Mode)
	}
	if p.StreamDurable != (incremental.DurableOptions{}) && p.StreamDir == "" {
		return fmt.Errorf("core: StreamDurable tunes the StreamDir journal and requires StreamDir to be set")
	}
	if p.StreamShards < 0 {
		return fmt.Errorf("core: StreamShards must be >= 0, got %d", p.StreamShards)
	}
	if p.StreamShards > 1 && p.Mode != Streaming {
		return fmt.Errorf("core: StreamShards (sharded streaming) requires %s mode, got %s", Streaming, p.Mode)
	}
	if p.Mode == Streaming {
		if _, ok := p.Blocker.(blocking.StreamableBlocker); !ok {
			return fmt.Errorf("core: streaming mode requires a collection-independent blocker (blocking.StreamableBlocker), got %q", p.Blocker.Name())
		}
		if len(p.Processors) > 0 {
			return fmt.Errorf("core: streaming mode does not support block cleaning (collection-global)")
		}
		if p.Meta != nil {
			// Meta-blocking streams for the stream-safe subset — WEP/WNP
			// pruning of CBS/ECBS/JS weights, maintained incrementally by
			// the resolver; the rest is rejected with a specific reason.
			if err := p.Meta.ValidateStreaming(); err != nil {
				return fmt.Errorf("core: streaming mode: %w", err)
			}
		}
	}
	return nil
}

// StreamingSetup builds the incremental resolver for a Streaming-mode
// pipeline over a collection of the given kind — durable (crash-recovered
// from StreamDir) when the pipeline sets one, in-memory otherwise. Shared
// by the sequential runner and the concurrent engine so both construct
// identical resolvers (the engine passes its worker count; the match output
// is worker-independent).
func (p *Pipeline) StreamingSetup(kind entity.Kind, workers int) (*incremental.Resolver, error) {
	sb, ok := p.Blocker.(blocking.StreamableBlocker)
	if !ok {
		return nil, fmt.Errorf("core: streaming mode requires a blocking.StreamableBlocker")
	}
	cfg := incremental.Config{
		Kind:    kind,
		Blocker: sb,
		Matcher: p.Matcher,
		Workers: workers,
		Meta:    p.Meta,
		Durable: p.StreamDurable,
	}
	if p.StreamDir != "" {
		return incremental.OpenResolver(p.StreamDir, cfg)
	}
	return incremental.New(cfg)
}

// ShardedSetup builds the sharded streaming resolver for a Streaming-mode
// pipeline with StreamShards > 1 — per-shard durable under StreamDir when
// the pipeline sets one, in-memory otherwise.
func (p *Pipeline) ShardedSetup(kind entity.Kind, workers int) (*sharded.Resolver, error) {
	sb, ok := p.Blocker.(blocking.StreamableBlocker)
	if !ok {
		return nil, fmt.Errorf("core: streaming mode requires a blocking.StreamableBlocker")
	}
	cfg := sharded.Config{
		Kind:    kind,
		Blocker: sb,
		Matcher: p.Matcher,
		Workers: workers,
		Meta:    p.Meta,
		Shards:  p.StreamShards,
		Durable: p.StreamDurable,
	}
	if p.StreamDir != "" {
		return sharded.Open(p.StreamDir, cfg)
	}
	return sharded.New(cfg)
}

// ReplayStreaming replays c through a fresh incremental resolver built
// from the pipeline configuration and shapes the outcome as a batch
// result (matches, comparison count, block collection). It is the single
// streaming-mode execution path, shared by the sequential runner (one
// worker, background context) and the concurrent engine (its worker pool
// and cancellable context) so the two cannot drift apart. With
// StreamShards > 1 the replay runs through the sharded resolver instead —
// the results are bit-exact either way.
func (p *Pipeline) ReplayStreaming(ctx context.Context, res *Result, c *entity.Collection, workers int) error {
	if p.StreamShards > 1 {
		return p.replayStreamingSharded(ctx, res, c, workers)
	}
	r, err := p.StreamingSetup(c.Kind(), workers)
	if err != nil {
		return err
	}
	// Close releases a durable resolver's journal once the results are
	// extracted (Close is idempotent and a cheap no-op for in-memory runs);
	// the deferred call covers the error paths.
	defer r.Close()
	for _, d := range c.All() {
		if _, err := r.Insert(ctx, d); err != nil {
			return err
		}
	}
	if p.Meta != nil {
		// Settle the deferred weighting/pruning under the caller's context,
		// and report the pruned pair blocks — the collection batch
		// meta-blocking would hand its matcher.
		if err := r.Flush(ctx); err != nil {
			return err
		}
		blocks, err := r.RestructuredBlocks()
		if err != nil {
			return err
		}
		res.Blocks = blocks
	} else {
		res.Blocks = r.Blocks()
	}
	matches, err := r.Matches()
	if err != nil {
		return err
	}
	res.Matches = matches
	st, err := r.Stats()
	if err != nil {
		return err
	}
	res.Comparisons = st.Comparisons
	return r.Close()
}

// replayStreamingSharded is ReplayStreaming over the sharded resolver; the
// extraction sequence mirrors the single-node path exactly.
func (p *Pipeline) replayStreamingSharded(ctx context.Context, res *Result, c *entity.Collection, workers int) error {
	r, err := p.ShardedSetup(c.Kind(), workers)
	if err != nil {
		return err
	}
	defer r.Close()
	for _, d := range c.All() {
		if _, err := r.Insert(ctx, d); err != nil {
			return err
		}
	}
	if p.Meta != nil {
		if err := r.Flush(ctx); err != nil {
			return err
		}
		blocks, err := r.RestructuredBlocks()
		if err != nil {
			return err
		}
		res.Blocks = blocks
	} else {
		res.Blocks = r.Blocks()
	}
	matches, err := r.Matches()
	if err != nil {
		return err
	}
	res.Matches = matches
	st, err := r.Stats()
	if err != nil {
		return err
	}
	res.Comparisons = st.Comparisons
	return r.Close()
}

// CollectiveSetup returns the collective-mode configuration with the
// default (the Matcher's similarity and threshold) applied.
func (p *Pipeline) CollectiveSetup() *iterative.Collective {
	if p.CollectiveConfig != nil {
		return p.CollectiveConfig
	}
	return &iterative.Collective{Base: p.Matcher.Sim, Threshold: p.Matcher.Threshold}
}

// ProgressiveSetup returns the progressive-mode scheduler factory,
// effective budget and ground truth with defaults applied: static block
// order, unlimited budget, empty ground truth. Shared with the concurrent
// engine so both runners execute the same effective configuration.
func (p *Pipeline) ProgressiveSetup() (SchedulerFactory, int64, *entity.Matches) {
	factory := p.Scheduler
	if factory == nil {
		factory = func(_ *entity.Collection, bs *blocking.Blocks) progressive.Scheduler {
			return progressive.NewStaticOrder(bs)
		}
	}
	budget := p.Budget
	if budget <= 0 {
		budget = 1 << 62
	}
	gt := p.GroundTruth
	if gt == nil {
		gt = entity.NewMatches()
	}
	return factory, budget, gt
}

// Run executes the pipeline over the collection.
func (p *Pipeline) Run(c *entity.Collection) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	res := &Result{}
	phase := func(name string, fn func() error) error {
		t0 := time.Now()
		err := fn()
		res.Phases = append(res.Phases, PhaseStat{Name: name, Duration: time.Since(t0)})
		return err
	}

	// Streaming mode owns its whole phase sequence: the incremental
	// resolver blocks, schedules and matches each arriving description in
	// one pass, so the batch blocking/planning phases below never run.
	if p.Mode == Streaming {
		if err := phase("streaming", func() error {
			return p.ReplayStreaming(context.Background(), res, c, 1)
		}); err != nil {
			return nil, fmt.Errorf("core: streaming: %w", err)
		}
		return res, nil
	}

	// Blocking phase.
	var bs *blocking.Blocks
	if err := phase("blocking", func() error {
		var err error
		bs, err = p.Blocker.Block(c)
		return err
	}); err != nil {
		return nil, fmt.Errorf("core: blocking: %w", err)
	}

	// Planning phase: block cleaning + meta-blocking.
	if len(p.Processors) > 0 {
		_ = phase("block-cleaning", func() error {
			bs = blockproc.Chain(p.Processors).Process(bs)
			return nil
		})
	}
	if p.Meta != nil {
		_ = phase("meta-blocking", func() error {
			bs = p.Meta.Restructure(c, bs)
			return nil
		})
	}
	res.Blocks = bs

	// Scheduling + matching + update phases, by mode.
	err := phase(p.Mode.String(), func() error {
		switch p.Mode {
		case Batch:
			out := matching.ResolveBlocks(c, bs, p.Matcher)
			res.Matches, res.Comparisons = out.Matches, out.Comparisons
		case MergingIterative:
			out := iterative.RSwoosh(c, p.Matcher)
			res.Matches, res.Comparisons = out.Matches, out.Comparisons
		case IterativeBlocks:
			out := iterblock.Resolve(c, bs, p.Matcher)
			res.Matches, res.Comparisons = out.Matches, out.Comparisons
		case Collective:
			out := p.CollectiveSetup().Resolve(c, bs.DistinctPairs().Pairs())
			res.Matches, res.Comparisons = out.Matches, out.Comparisons
		case Progressive:
			factory, budget, gt := p.ProgressiveSetup()
			out := progressive.Run(c, factory(c, bs), p.Matcher, gt, budget)
			res.Matches, res.Comparisons, res.Curve = out.Matches, out.Comparisons, out.Curve
		default:
			return fmt.Errorf("core: unknown mode %v", p.Mode)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}
