package core

import (
	"strings"
	"testing"

	"entityres/internal/blocking"
	"entityres/internal/blockproc"
	"entityres/internal/datagen"
	"entityres/internal/entity"
	"entityres/internal/evaluation"
	"entityres/internal/iterative"
	"entityres/internal/matching"
	"entityres/internal/metablocking"
	"entityres/internal/progressive"
	"entityres/internal/token"
)

func testData(t *testing.T) (*entity.Collection, *entity.Matches) {
	t.Helper()
	c, gt, err := datagen.GenerateDirty(datagen.Config{Seed: 8, Entities: 60, DupRatio: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	return c, gt
}

func TestPipelineValidation(t *testing.T) {
	if _, err := (&Pipeline{}).Run(entity.NewCollection(entity.Dirty)); err == nil {
		t.Fatal("missing blocker accepted")
	}
	p := &Pipeline{Blocker: &blocking.TokenBlocking{}}
	if _, err := p.Run(entity.NewCollection(entity.Dirty)); err == nil {
		t.Fatal("missing matcher accepted")
	}
}

func TestPipelineBatch(t *testing.T) {
	c, gt := testData(t)
	p := &Pipeline{
		Blocker: &blocking.TokenBlocking{},
		Matcher: &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5},
	}
	res, err := p.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	prf := evaluation.ComparePairs(res.Matches, gt)
	if prf.Recall < 0.6 {
		t.Fatalf("batch recall = %v", prf.Recall)
	}
	if res.Comparisons <= 0 || res.Blocks.Len() == 0 {
		t.Fatalf("stats missing: %+v", res)
	}
	if len(res.Phases) < 2 {
		t.Fatalf("phases = %v", res.Phases)
	}
	if res.Phases[0].Name != "blocking" {
		t.Fatalf("first phase = %q", res.Phases[0].Name)
	}
}

func TestPipelineWithPlanningPhases(t *testing.T) {
	c, _ := testData(t)
	m := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
	plain := &Pipeline{Blocker: &blocking.TokenBlocking{}, Matcher: m}
	planned := &Pipeline{
		Blocker:    &blocking.TokenBlocking{},
		Processors: []blockproc.Processor{&blockproc.AutoPurge{}, &blockproc.BlockFiltering{Ratio: 0.8}},
		Meta:       &metablocking.MetaBlocker{Weight: metablocking.ARCS, Prune: metablocking.WNP},
		Matcher:    m,
	}
	r0, err := plain.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := planned.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Comparisons >= r0.Comparisons {
		t.Fatalf("planning should cut comparisons: %d vs %d", r1.Comparisons, r0.Comparisons)
	}
	names := make([]string, 0, len(r1.Phases))
	for _, ph := range r1.Phases {
		names = append(names, ph.Name)
	}
	joined := strings.Join(names, ",")
	if !strings.Contains(joined, "block-cleaning") || !strings.Contains(joined, "meta-blocking") {
		t.Fatalf("phases = %v", names)
	}
}

func TestPipelineMergingIterative(t *testing.T) {
	c, gt := testData(t)
	p := &Pipeline{
		Blocker: &blocking.TokenBlocking{},
		Matcher: &matching.Matcher{Sim: &matching.TokenContainment{}, Threshold: 0.75},
		Mode:    MergingIterative,
	}
	res, err := p.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	prf := evaluation.ComparePairs(res.Matches, gt)
	if prf.Recall < 0.5 {
		t.Fatalf("swoosh recall = %v", prf.Recall)
	}
	if len(res.Clusters()) == 0 {
		t.Fatal("no clusters")
	}
}

func TestPipelineIterativeBlocks(t *testing.T) {
	c, gt := testData(t)
	p := &Pipeline{
		Blocker: &blocking.TokenBlocking{},
		Matcher: &matching.Matcher{Sim: &matching.TokenContainment{}, Threshold: 0.75},
		Mode:    IterativeBlocks,
	}
	res, err := p.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if evaluation.ComparePairs(res.Matches, gt).Recall < 0.5 {
		t.Fatal("iterative blocking recall too low")
	}
}

func TestPipelineCollective(t *testing.T) {
	c, gt, err := datagen.GenerateBibliographic(datagen.Config{Seed: 14, Entities: 30, DupRatio: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	prof := &token.Profiler{Scheme: token.SchemaAgnostic, Stopwords: token.DefaultStopwords(), SkipRefValues: true}
	p := &Pipeline{
		Blocker: &blocking.TokenBlocking{},
		Mode:    Collective,
		CollectiveConfig: &iterative.Collective{
			Base:      &matching.TokenJaccard{Profiler: prof},
			Alpha:     0.3,
			Threshold: 0.55,
		},
	}
	res, err := p.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if evaluation.ComparePairs(res.Matches, gt).Recall <= 0 {
		t.Fatal("collective found nothing")
	}
}

func TestPipelineProgressive(t *testing.T) {
	c, gt := testData(t)
	p := &Pipeline{
		Blocker: &blocking.TokenBlocking{},
		Matcher: &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5},
		Mode:    Progressive,
		Budget:  100,
		Scheduler: func(c *entity.Collection, bs *blocking.Blocks) progressive.Scheduler {
			return progressive.NewPSNM(c, blocking.SortedTokensKey(nil), true, 0)
		},
		GroundTruth: gt,
	}
	res, err := p.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Comparisons > 100 {
		t.Fatalf("budget violated: %d", res.Comparisons)
	}
	if err := res.Curve.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Curve.Final().Recall <= 0 {
		t.Fatal("no progressive recall within budget")
	}
}

func TestPipelineProgressiveDefaults(t *testing.T) {
	c, _ := testData(t)
	p := &Pipeline{
		Blocker: &blocking.TokenBlocking{},
		Matcher: &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5},
		Mode:    Progressive,
	}
	res, err := p.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Comparisons == 0 {
		t.Fatal("default progressive ran nothing")
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{
		Batch: "batch", MergingIterative: "merging-iterative",
		IterativeBlocks: "iterative-blocking", Collective: "collective",
		Progressive: "progressive", Mode(42): "Mode(42)",
	} {
		if m.String() != want {
			t.Fatalf("Mode %d = %q", int(m), m.String())
		}
	}
}
