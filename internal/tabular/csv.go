package tabular

import (
	"encoding/csv"
	"fmt"
	"io"
	"unicode/utf8"

	"entityres/internal/entity"
)

// CSVReader streams entity descriptions out of a CSV document: one row,
// one description. The header row (or Options.Columns for headerless
// files) names the attributes; the ID column supplies the URI; empty
// cells are skipped so sparse rows stay schema-agnostic.
type CSVReader struct {
	r     *csv.Reader
	opt   Options
	cols  []string // attribute name per column; "" for the ID column
	idIdx int
}

// NewCSVReader prepares a streaming CSV reader over r. The header is read
// (and validated) immediately so schema errors surface before the first
// Next call. Ragged rows, bare quotes and other structural defects are
// rejected by the underlying encoding/csv parser with line positions;
// this layer adds UTF-8 strictness and the ID-column contract.
func NewCSVReader(r io.Reader, opt Options) (*CSVReader, error) {
	opt = opt.withDefaults()
	cr := csv.NewReader(stripBOM(r))
	cr.Comma = opt.Comma
	cr.ReuseRecord = true

	header := opt.Columns
	if header == nil {
		rec, err := cr.Read()
		if err == io.EOF {
			return nil, fmt.Errorf("tabular: csv: missing header row")
		}
		if err != nil {
			return nil, fmt.Errorf("tabular: %w", err)
		}
		header = append([]string(nil), rec...)
	}

	idIdx := -1
	seen := make(map[string]int, len(header))
	cols := make([]string, len(header))
	for i, name := range header {
		if !utf8.ValidString(name) {
			return nil, fmt.Errorf("tabular: csv: header column %d is not valid UTF-8", i+1)
		}
		if name == "" {
			return nil, fmt.Errorf("tabular: csv: header column %d is empty", i+1)
		}
		if prev, dup := seen[name]; dup {
			return nil, fmt.Errorf("tabular: csv: duplicate header column %q (columns %d and %d)", name, prev+1, i+1)
		}
		seen[name] = i
		if name == opt.IDColumn {
			idIdx = i
			continue
		}
		cols[i] = opt.attrName(name)
	}
	if idIdx < 0 {
		return nil, fmt.Errorf("tabular: csv: header has no %q column", opt.IDColumn)
	}
	return &CSVReader{r: cr, opt: opt, cols: cols, idIdx: idIdx}, nil
}

// Next returns the next row as a description, or io.EOF at end of input.
func (c *CSVReader) Next() (*entity.Description, error) {
	rec, err := c.r.Read()
	if err == io.EOF {
		return nil, io.EOF
	}
	if err != nil {
		return nil, fmt.Errorf("tabular: %w", err)
	}
	if len(rec) != len(c.cols) {
		// encoding/csv enforces this via FieldsPerRecord, but Options.Columns
		// may disagree with the first data row's width.
		line, _ := c.r.FieldPos(0)
		return nil, fmt.Errorf("tabular: csv: line %d: row has %d fields, schema has %d columns", line, len(rec), len(c.cols))
	}
	for i, f := range rec {
		if !utf8.ValidString(f) {
			line, col := c.r.FieldPos(i)
			return nil, fmt.Errorf("tabular: csv: line %d, column %d: field is not valid UTF-8", line, col)
		}
	}
	if rec[c.idIdx] == "" {
		line, _ := c.r.FieldPos(c.idIdx)
		return nil, fmt.Errorf("tabular: csv: line %d: empty value in ID column %q", line, c.opt.IDColumn)
	}
	d := entity.NewDescription(rec[c.idIdx])
	for i, f := range rec {
		if i == c.idIdx || f == "" {
			continue
		}
		d.Add(c.cols[i], f)
	}
	return d, nil
}

// CSVWriter streams entity descriptions into CSV, the inverse of
// CSVReader: the ID column carries each description's URI and the given
// columns fix the attribute order. Multi-valued attributes do not fit a
// cell and are an error — use JSON-lines for those records.
type CSVWriter struct {
	w       *csv.Writer
	columns []string
	row     []string
	idx     map[string]int
}

// NewCSVWriter writes the header row [IDColumn, columns...] immediately
// and returns a writer whose Write emits one row per description. Call
// Flush once all records are written.
func NewCSVWriter(w io.Writer, columns []string, opt Options) (*CSVWriter, error) {
	opt = opt.withDefaults()
	cw := csv.NewWriter(w)
	cw.Comma = opt.Comma
	header := append([]string{opt.IDColumn}, columns...)
	if err := cw.Write(header); err != nil {
		return nil, fmt.Errorf("tabular: %w", err)
	}
	idx := make(map[string]int, len(columns))
	for i, name := range columns {
		if _, dup := idx[name]; dup {
			return nil, fmt.Errorf("tabular: csv: duplicate output column %q", name)
		}
		if name == opt.IDColumn {
			return nil, fmt.Errorf("tabular: csv: output column %q collides with the ID column", name)
		}
		idx[name] = i + 1
	}
	return &CSVWriter{w: cw, columns: columns, row: make([]string, len(header)), idx: idx}, nil
}

// Write emits one row for d. Attributes outside the declared columns, and
// attributes appearing more than once, are errors: CSV cannot represent
// them without inventing a quoting convention the reader would not undo.
func (c *CSVWriter) Write(d *entity.Description) error {
	for i := range c.row {
		c.row[i] = ""
	}
	c.row[0] = d.URI
	if c.row[0] == "" {
		return fmt.Errorf("tabular: csv: description %d has no URI for the ID column", d.ID)
	}
	for _, a := range d.Attrs {
		i, ok := c.idx[a.Name]
		if !ok {
			return fmt.Errorf("tabular: csv: attribute %q of %s is not a declared column", a.Name, d.URI)
		}
		if c.row[i] != "" {
			return fmt.Errorf("tabular: csv: attribute %q of %s is multi-valued; CSV cells hold one value (use jsonl)", a.Name, d.URI)
		}
		if a.Value == "" {
			return fmt.Errorf("tabular: csv: attribute %q of %s has an empty value, indistinguishable from an absent cell", a.Name, d.URI)
		}
		c.row[i] = a.Value
	}
	if err := c.w.Write(c.row); err != nil {
		return fmt.Errorf("tabular: %w", err)
	}
	return nil
}

// Flush drains buffered rows to the underlying writer.
func (c *CSVWriter) Flush() error {
	c.w.Flush()
	if err := c.w.Error(); err != nil {
		return fmt.Errorf("tabular: %w", err)
	}
	return nil
}

// WriteCSV writes descs as a headered CSV document. With opt.Columns
// unset the column order is the first-appearance attribute order across
// descs (see Columns).
func WriteCSV(w io.Writer, descs []*entity.Description, opt Options) error {
	columns := opt.Columns
	if columns == nil {
		columns = Columns(descs)
	}
	cw, err := NewCSVWriter(w, columns, opt)
	if err != nil {
		return err
	}
	for _, d := range descs {
		if err := cw.Write(d); err != nil {
			return err
		}
	}
	return cw.Flush()
}
