// Package tabular streams CSV and JSON-lines records into the same
// schema-agnostic entity descriptions the RDF path produces: one record
// becomes one Description, the configured ID column becomes its URI, and
// every remaining cell becomes an attribute-value pair in record order.
// Attribute-value flattening mirrors the N-Triples mapping (package rdf),
// so every blocker, matcher and meta-blocking scheme works on tabular
// sources unchanged — token blocking over a CSV row and over the
// equivalent triples sees the identical token profile.
//
// Both readers are streaming: they hold one record at a time, never the
// document, so million-record files ingest in bounded memory. Both are as
// strict as the RDF parser about encoding — invalid UTF-8 is an error, a
// leading byte-order mark is stripped — and report malformed input (ragged
// rows, unterminated quotes, nested JSON objects, trailing garbage) with
// the offending line number.
package tabular

import (
	"bufio"
	"fmt"
	"io"

	"entityres/internal/entity"
)

// DefaultIDColumn is the column/field consulted for the record identifier
// when Options.IDColumn is empty.
const DefaultIDColumn = "id"

// Options configures the mapping between tabular records and entity
// descriptions. The zero value reads a headered CSV (or JSON-lines) file
// whose "id" column names each record.
type Options struct {
	// IDColumn names the column (CSV) or key (JSON-lines) whose value
	// becomes the description URI instead of an attribute. Empty selects
	// DefaultIDColumn. Records with a missing or empty identifier are an
	// error: downstream streaming deployments address descriptions by URI.
	IDColumn string
	// Rename maps source column names to attribute names, modelling the
	// per-source schema mappings of real interlinking pipelines (e.g.
	// {"authors": "author", "venue_name": "venue"}). Columns absent from
	// the map keep their own name; the ID column is never renamed. Several
	// columns may map to one attribute name, yielding a multi-valued
	// attribute.
	Rename map[string]string
	// Columns, on read, declares the schema of a headerless CSV file: when
	// set, the first row is data, not a header. On write, it fixes the
	// emitted column order instead of deriving it from the records.
	Columns []string
	// Comma is the CSV field delimiter (default ',').
	Comma rune
}

func (o Options) withDefaults() Options {
	if o.IDColumn == "" {
		o.IDColumn = DefaultIDColumn
	}
	if o.Comma == 0 {
		o.Comma = ','
	}
	return o
}

// attrName maps a source column name to its attribute name.
func (o Options) attrName(col string) string {
	if alt, ok := o.Rename[col]; ok {
		return alt
	}
	return col
}

// Reader streams entity descriptions out of a tabular document. Next
// returns io.EOF once the document is exhausted; any other error is
// positioned (line-numbered) and terminal.
type Reader interface {
	Next() (*entity.Description, error)
}

// Add drains a record reader into the collection, tagging every
// description with the given source index — the tabular counterpart of
// rdf.AddToCollection. Each record is one description; records never merge
// (a duplicated identifier yields two descriptions, exactly as two CSV
// rows are two rows).
func Add(c *entity.Collection, rr Reader, source int) error {
	for {
		d, err := rr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		d.Source = source
		if _, err := c.Add(d); err != nil {
			return fmt.Errorf("tabular: %w", err)
		}
	}
}

// AddCSV parses a CSV document and appends one description per row to c,
// tagged with the given source.
func AddCSV(c *entity.Collection, r io.Reader, source int, opt Options) error {
	cr, err := NewCSVReader(r, opt)
	if err != nil {
		return err
	}
	return Add(c, cr, source)
}

// AddJSONL parses a JSON-lines document and appends one description per
// line to c, tagged with the given source.
func AddJSONL(c *entity.Collection, r io.Reader, source int, opt Options) error {
	return Add(c, NewJSONLReader(r, opt), source)
}

// Columns returns the distinct attribute names of descs in first-appearance
// order: the header a CSV writer derives when Options.Columns is not set.
func Columns(descs []*entity.Description) []string {
	seen := make(map[string]bool)
	var out []string
	for _, d := range descs {
		for _, a := range d.Attrs {
			if !seen[a.Name] {
				seen[a.Name] = true
				out = append(out, a.Name)
			}
		}
	}
	return out
}

// stripBOM returns r with a leading UTF-8 byte-order mark consumed, if
// present. Spreadsheet exports routinely prepend one; keeping it would
// corrupt the first column name.
func stripBOM(r io.Reader) *bufio.Reader {
	br := bufio.NewReaderSize(r, 64*1024)
	if b, err := br.Peek(3); err == nil && b[0] == 0xEF && b[1] == 0xBB && b[2] == 0xBF {
		_, _ = br.Discard(3)
	}
	return br
}
