package tabular

import (
	"bytes"
	"io"
	"testing"

	"entityres/internal/entity"
)

// parseCSVAll parses a whole CSV document, returning the records or the
// first error.
func parseCSVAll(data []byte, opt Options) ([]*entity.Description, error) {
	cr, err := NewCSVReader(bytes.NewReader(data), opt)
	if err != nil {
		return nil, err
	}
	var out []*entity.Description
	for {
		d, err := cr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
}

func parseJSONLAll(data []byte, opt Options) ([]*entity.Description, error) {
	jr := NewJSONLReader(bytes.NewReader(data), opt)
	var out []*entity.Description
	for {
		d, err := jr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
}

// stabilize runs one more write∘parse round and demands a fixed point:
// parse(out) must succeed with the same record count and re-serialize to
// the identical bytes. One round is allowed to normalize (the CSV reader
// folds quoted \r\n to \n; the JSONL writer groups duplicate keys into
// arrays), but the normal form must be stable or data is being corrupted.
func stabilize(t *testing.T, format string, out []byte, n int,
	parse func([]byte) ([]*entity.Description, error),
	write func([]*entity.Description) ([]byte, error)) ([]byte, int) {
	t.Helper()
	recs, err := parse(out)
	if err != nil {
		t.Fatalf("%s: re-parsing our own output failed: %v\noutput: %q", format, err, out)
	}
	if len(recs) != n {
		t.Fatalf("%s: record count changed on re-parse: %d -> %d\noutput: %q", format, n, len(recs), out)
	}
	out2, err := write(recs)
	if err != nil {
		t.Fatalf("%s: re-serializing parsed output failed: %v", format, err)
	}
	return out2, len(recs)
}

func fuzzRoundTrip(t *testing.T, format string, data []byte,
	parse func([]byte) ([]*entity.Description, error),
	write func([]*entity.Description) ([]byte, error)) {
	t.Helper()
	recs, err := parse(data)
	if err != nil {
		return // malformed input rejected with an error: fine
	}
	out1, err := write(recs)
	if err != nil {
		// The only writer rejections are shapes a reader cannot emit
		// (multi-valued CSV attrs, empty values, ID collisions).
		t.Fatalf("%s: serializing freshly parsed records failed: %v", format, err)
	}
	out2, n := stabilize(t, format, out1, len(recs), parse, write)
	out3, _ := stabilize(t, format, out2, n, parse, write)
	if !bytes.Equal(out3, out2) {
		t.Fatalf("%s: serialization is not a fixed point:\nfirst:  %q\nsecond: %q", format, out2, out3)
	}
}

// FuzzCSVRecords feeds arbitrary bytes to the CSV record parser: it must
// either reject them with a positioned error or produce records whose
// serialization reaches a byte-stable fixed point. BOMs, ragged rows,
// bare quotes and invalid UTF-8 are in the seed corpus.
func FuzzCSVRecords(f *testing.F) {
	f.Add([]byte("id,name,city\nu1,Alice,Paris\nu2,Bob,\n"))
	f.Add([]byte("\xEF\xBB\xBFid,name\nu1,\"Al\"\"ice\"\n"))
	f.Add([]byte("id,name\nu1,\"line\nbreak\"\n"))
	f.Add([]byte("id,name\nu1,\"cr\r\nlf\"\n"))
	f.Add([]byte("id,name\nu1,Alice,extra\n"))
	f.Add([]byte("id,name\nu1,\"bare\n"))
	f.Add([]byte("id,name\n,Alice\n"))
	f.Add([]byte("id,na\xffme\nu1,x\n"))
	f.Add([]byte("name,city\nAlice,Paris\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzRoundTrip(t, "csv", data,
			func(b []byte) ([]*entity.Description, error) { return parseCSVAll(b, Options{}) },
			func(recs []*entity.Description) ([]byte, error) {
				var buf bytes.Buffer
				if err := WriteCSV(&buf, recs, Options{}); err != nil {
					return nil, err
				}
				return buf.Bytes(), nil
			})
	})
}

// FuzzJSONLRecords is the JSON-lines counterpart: arbitrary bytes either
// error with a line position or parse to records whose serialization is a
// byte-stable fixed point. Duplicate keys, nested objects, truncated
// objects, trailing garbage and invalid UTF-8 are in the seed corpus.
func FuzzJSONLRecords(f *testing.F) {
	f.Add([]byte(`{"id":"u1","name":"Alice","city":"Paris"}` + "\n"))
	f.Add([]byte(`{"id":"u2","born":1912,"active":true,"gone":null}` + "\n"))
	f.Add([]byte(`{"id":"u3","author":["A","B"],"author":"C"}` + "\n"))
	f.Add([]byte(`{"id":"u4","name":{"nested":1}}` + "\n"))
	f.Add([]byte(`{"id":"u5"} trailing` + "\n"))
	f.Add([]byte(`{"id":"u6"`))
	f.Add([]byte("{\"id\":\"u\xff7\"}\n"))
	f.Add([]byte(`{"name":"no id"}` + "\n"))
	f.Add([]byte("\xEF\xBB\xBF" + `{"id":"u8"}` + "\n\n" + `{"id":"u9","x":"é"}` + "\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzRoundTrip(t, "jsonl", data,
			func(b []byte) ([]*entity.Description, error) { return parseJSONLAll(b, Options{}) },
			func(recs []*entity.Description) ([]byte, error) {
				var buf bytes.Buffer
				if err := WriteJSONL(&buf, recs, Options{}); err != nil {
					return nil, err
				}
				return buf.Bytes(), nil
			})
	})
}
