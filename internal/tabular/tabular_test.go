package tabular

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"

	"entityres/internal/entity"
)

func readAll(t *testing.T, r Reader) []*entity.Description {
	t.Helper()
	var out []*entity.Description
	for {
		d, err := r.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		out = append(out, d)
	}
}

func attrsOf(d *entity.Description) [][2]string {
	out := make([][2]string, 0, len(d.Attrs))
	for _, a := range d.Attrs {
		out = append(out, [2]string{a.Name, a.Value})
	}
	return out
}

func TestCSVReaderBasic(t *testing.T) {
	in := "id,name,city\nu1,Alice,Paris\nu2,Bob,\n"
	cr, err := NewCSVReader(strings.NewReader(in), Options{})
	if err != nil {
		t.Fatalf("NewCSVReader: %v", err)
	}
	descs := readAll(t, cr)
	if len(descs) != 2 {
		t.Fatalf("got %d records, want 2", len(descs))
	}
	if descs[0].URI != "u1" || descs[1].URI != "u2" {
		t.Fatalf("URIs = %q, %q", descs[0].URI, descs[1].URI)
	}
	want := [][2]string{{"name", "Alice"}, {"city", "Paris"}}
	if got := attrsOf(descs[0]); !reflect.DeepEqual(got, want) {
		t.Fatalf("attrs = %v, want %v", got, want)
	}
	// Empty city cell on u2 is skipped, not an empty-valued attribute.
	if got := attrsOf(descs[1]); !reflect.DeepEqual(got, [][2]string{{"name", "Bob"}}) {
		t.Fatalf("u2 attrs = %v", got)
	}
}

func TestCSVReaderRenameAndIDColumn(t *testing.T) {
	in := "uri;label;loc\np1;Ada;London\n"
	cr, err := NewCSVReader(strings.NewReader(in), Options{
		IDColumn: "uri",
		Rename:   map[string]string{"label": "name", "loc": "city"},
		Comma:    ';',
	})
	if err != nil {
		t.Fatalf("NewCSVReader: %v", err)
	}
	descs := readAll(t, cr)
	if descs[0].URI != "p1" {
		t.Fatalf("URI = %q", descs[0].URI)
	}
	want := [][2]string{{"name", "Ada"}, {"city", "London"}}
	if got := attrsOf(descs[0]); !reflect.DeepEqual(got, want) {
		t.Fatalf("attrs = %v, want %v", got, want)
	}
}

func TestCSVReaderHeaderless(t *testing.T) {
	in := "u1,Alice,Paris\n"
	cr, err := NewCSVReader(strings.NewReader(in), Options{Columns: []string{"id", "name", "city"}})
	if err != nil {
		t.Fatalf("NewCSVReader: %v", err)
	}
	descs := readAll(t, cr)
	if len(descs) != 1 || descs[0].URI != "u1" || len(descs[0].Attrs) != 2 {
		t.Fatalf("unexpected parse: %+v", descs)
	}
}

func TestCSVReaderBOM(t *testing.T) {
	in := "\xEF\xBB\xBFid,name\nu1,Alice\n"
	cr, err := NewCSVReader(strings.NewReader(in), Options{})
	if err != nil {
		t.Fatalf("NewCSVReader with BOM: %v", err)
	}
	descs := readAll(t, cr)
	if descs[0].URI != "u1" || descs[0].Attrs[0].Name != "name" {
		t.Fatalf("BOM not stripped: %+v", descs[0])
	}
}

func TestCSVReaderErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		opt  Options
		want string
	}{
		{"empty input", "", Options{}, "missing header"},
		{"no id column", "name,city\nAlice,Paris\n", Options{}, `no "id" column`},
		{"duplicate column", "id,name,name\nu1,a,b\n", Options{}, "duplicate header column"},
		{"empty column name", "id,,city\nu1,a,b\n", Options{}, "column 2 is empty"},
		{"header invalid utf8", "id,na\xffme\nu1,a\n", Options{}, "not valid UTF-8"},
		{"ragged row", "id,name\nu1,Alice,extra\n", Options{}, "wrong number of fields"},
		{"bare quote", "id,name\nu1,\"al\"ice\n", Options{}, "parse error"},
		{"empty id", "id,name\n,Alice\n", Options{}, "empty value in ID column"},
		{"field invalid utf8", "id,name\nu1,Al\xffice\n", Options{}, "not valid UTF-8"},
		{"schema width mismatch", "u1,Alice\n", Options{Columns: []string{"id", "name", "city"}}, "schema has 3 columns"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cr, err := NewCSVReader(strings.NewReader(tc.in), tc.opt)
			if err == nil {
				for err == nil {
					_, err = cr.Next()
				}
				if err == io.EOF {
					t.Fatalf("parse succeeded, want error containing %q", tc.want)
				}
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestJSONLReaderBasic(t *testing.T) {
	in := `{"id":"u1","name":"Alice","city":"Paris"}
{"id":"u2","born":1912,"active":true,"gone":null}

{"id":"u3","name":["Ada","Countess of Lovelace"]}
`
	jr := NewJSONLReader(strings.NewReader(in), Options{})
	descs := readAll(t, jr)
	if len(descs) != 3 {
		t.Fatalf("got %d records, want 3", len(descs))
	}
	if got := attrsOf(descs[0]); !reflect.DeepEqual(got, [][2]string{{"name", "Alice"}, {"city", "Paris"}}) {
		t.Fatalf("u1 attrs = %v", got)
	}
	// Numbers render verbatim, booleans as true/false, null is skipped.
	if got := attrsOf(descs[1]); !reflect.DeepEqual(got, [][2]string{{"born", "1912"}, {"active", "true"}}) {
		t.Fatalf("u2 attrs = %v", got)
	}
	// Arrays fan out to multi-valued attributes in order.
	if got := descs[2].Values("name"); !reflect.DeepEqual(got, []string{"Ada", "Countess of Lovelace"}) {
		t.Fatalf("u3 name values = %v", got)
	}
}

func TestJSONLReaderRename(t *testing.T) {
	in := `{"key":"u1","label":"Alice"}` + "\n"
	jr := NewJSONLReader(strings.NewReader(in), Options{IDColumn: "key", Rename: map[string]string{"label": "name"}})
	descs := readAll(t, jr)
	if descs[0].URI != "u1" || descs[0].Attrs[0].Name != "name" {
		t.Fatalf("rename not applied: %+v", descs[0])
	}
}

func TestJSONLReaderErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"not an object", `["u1"]` + "\n", "not a JSON object"},
		{"nested object", `{"id":"u1","name":{"first":"A"}}` + "\n", "nested objects"},
		{"nested in array", `{"id":"u1","name":[{"x":1}]}` + "\n", "nested values"},
		{"missing id", `{"name":"Alice"}` + "\n", `no "id" key`},
		{"empty id", `{"id":"","name":"Alice"}` + "\n", "empty value in ID key"},
		{"duplicate id", `{"id":"u1","id":"u2"}` + "\n", `duplicate "id" key`},
		{"array id", `{"id":["u1"]}` + "\n", "nested values"},
		{"trailing data", `{"id":"u1"} {"id":"u2"}` + "\n", "trailing data"},
		{"invalid utf8", "{\"id\":\"u\xff1\"}\n", "invalid UTF-8"},
		{"truncated", `{"id":"u1"`, "unexpected EOF"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			jr := NewJSONLReader(strings.NewReader(tc.in), Options{})
			var err error
			for err == nil {
				_, err = jr.Next()
			}
			if err == io.EOF {
				t.Fatalf("parse succeeded, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestCSVWriterRoundTrip(t *testing.T) {
	d1 := entity.NewDescription("u1").Add("name", "Ali\"ce,").Add("city", "Par\nis")
	d2 := entity.NewDescription("u2").Add("city", "Rome")
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []*entity.Description{d1, d2}, Options{}); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	cr, err := NewCSVReader(bytes.NewReader(buf.Bytes()), Options{})
	if err != nil {
		t.Fatalf("re-read: %v", err)
	}
	descs := readAll(t, cr)
	if len(descs) != 2 {
		t.Fatalf("round trip lost records: %d", len(descs))
	}
	if !reflect.DeepEqual(attrsOf(descs[0]), attrsOf(d1)) || descs[0].URI != "u1" {
		t.Fatalf("u1 round trip = %+v", descs[0])
	}
	if !reflect.DeepEqual(attrsOf(descs[1]), attrsOf(d2)) {
		t.Fatalf("u2 round trip = %+v", descs[1])
	}
}

func TestCSVWriterErrors(t *testing.T) {
	multi := entity.NewDescription("u1").Add("name", "a").Add("name", "b")
	if err := WriteCSV(io.Discard, []*entity.Description{multi}, Options{}); err == nil || !strings.Contains(err.Error(), "multi-valued") {
		t.Fatalf("multi-valued error = %v", err)
	}
	undeclared := entity.NewDescription("u1").Add("name", "a")
	if _, err := NewCSVWriter(io.Discard, []string{"name", "name"}, Options{}); err == nil || !strings.Contains(err.Error(), "duplicate output column") {
		t.Fatalf("duplicate column error = %v", err)
	}
	if _, err := NewCSVWriter(io.Discard, []string{"id"}, Options{}); err == nil || !strings.Contains(err.Error(), "collides with the ID column") {
		t.Fatalf("id collision error = %v", err)
	}
	cw, err := NewCSVWriter(io.Discard, []string{"city"}, Options{})
	if err != nil {
		t.Fatalf("NewCSVWriter: %v", err)
	}
	if err := cw.Write(undeclared); err == nil || !strings.Contains(err.Error(), "not a declared column") {
		t.Fatalf("undeclared column error = %v", err)
	}
	noURI := entity.NewDescription("")
	if err := cw.Write(noURI); err == nil || !strings.Contains(err.Error(), "no URI") {
		t.Fatalf("no-URI error = %v", err)
	}
	empty := entity.NewDescription("u2").Add("city", "")
	if err := cw.Write(empty); err == nil || !strings.Contains(err.Error(), "empty value") {
		t.Fatalf("empty-value error = %v", err)
	}
}

func TestJSONLWriterRoundTrip(t *testing.T) {
	d1 := entity.NewDescription("u1").
		Add("name", "Ali\"ce").Add("author", "A").Add("author", "B").Add("city", "Par\nis")
	d2 := entity.NewDescription("u2").Add("city", "Rome")
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, []*entity.Description{d1, d2}, Options{}); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	descs := readAll(t, NewJSONLReader(bytes.NewReader(buf.Bytes()), Options{}))
	if len(descs) != 2 {
		t.Fatalf("round trip lost records: %d", len(descs))
	}
	if !reflect.DeepEqual(attrsOf(descs[0]), attrsOf(d1)) || descs[0].URI != "u1" {
		t.Fatalf("u1 round trip = %+v, want %+v", attrsOf(descs[0]), attrsOf(d1))
	}
	if !reflect.DeepEqual(attrsOf(descs[1]), attrsOf(d2)) {
		t.Fatalf("u2 round trip = %+v", descs[1])
	}
}

func TestJSONLWriterErrors(t *testing.T) {
	noURI := entity.NewDescription("")
	if err := WriteJSONLRecord(io.Discard, noURI, Options{}); err == nil || !strings.Contains(err.Error(), "no URI") {
		t.Fatalf("no-URI error = %v", err)
	}
	collide := entity.NewDescription("u1").Add("id", "x")
	if err := WriteJSONLRecord(io.Discard, collide, Options{}); err == nil || !strings.Contains(err.Error(), "collides with the ID key") {
		t.Fatalf("collision error = %v", err)
	}
}

func TestColumnsFirstAppearance(t *testing.T) {
	descs := []*entity.Description{
		entity.NewDescription("a").Add("name", "x").Add("city", "y"),
		entity.NewDescription("b").Add("born", "1").Add("name", "z"),
	}
	if got := Columns(descs); !reflect.DeepEqual(got, []string{"name", "city", "born"}) {
		t.Fatalf("Columns = %v", got)
	}
}

func TestAddTagsSource(t *testing.T) {
	c := entity.NewCollection(entity.CleanClean)
	if err := AddCSV(c, strings.NewReader("id,name\nu1,Alice\n"), 0, Options{}); err != nil {
		t.Fatalf("AddCSV: %v", err)
	}
	if err := AddJSONL(c, strings.NewReader(`{"id":"v1","name":"Alicia"}`+"\n"), 1, Options{}); err != nil {
		t.Fatalf("AddJSONL: %v", err)
	}
	if c.Len() != 2 || c.SourceLen(0) != 1 || c.SourceLen(1) != 1 {
		t.Fatalf("collection shape: len=%d s0=%d s1=%d", c.Len(), c.SourceLen(0), c.SourceLen(1))
	}
	if c.Get(0).Source != 0 || c.Get(1).Source != 1 {
		t.Fatalf("sources not tagged: %d %d", c.Get(0).Source, c.Get(1).Source)
	}
}

// TestFormatsAgreeOnDescriptions pins the core parity contract at the
// description level: the same logical record rendered as CSV and as
// JSON-lines parses to the identical URI and attribute sequence.
func TestFormatsAgreeOnDescriptions(t *testing.T) {
	csvIn := "id,name,city,born\nu1,Alice Smith,Paris,1990\nu2,Bob Jones,,1985\n"
	jsonlIn := `{"id":"u1","name":"Alice Smith","city":"Paris","born":"1990"}
{"id":"u2","name":"Bob Jones","born":"1985"}
`
	cr, err := NewCSVReader(strings.NewReader(csvIn), Options{})
	if err != nil {
		t.Fatalf("NewCSVReader: %v", err)
	}
	fromCSV := readAll(t, cr)
	fromJSONL := readAll(t, NewJSONLReader(strings.NewReader(jsonlIn), Options{}))
	if len(fromCSV) != len(fromJSONL) {
		t.Fatalf("record counts differ: %d vs %d", len(fromCSV), len(fromJSONL))
	}
	for i := range fromCSV {
		if fromCSV[i].URI != fromJSONL[i].URI {
			t.Fatalf("record %d URI: %q vs %q", i, fromCSV[i].URI, fromJSONL[i].URI)
		}
		if !reflect.DeepEqual(attrsOf(fromCSV[i]), attrsOf(fromJSONL[i])) {
			t.Fatalf("record %d attrs: %v vs %v", i, attrsOf(fromCSV[i]), attrsOf(fromJSONL[i]))
		}
	}
}
