package tabular

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"unicode/utf8"

	"entityres/internal/entity"
)

// maxJSONLLine bounds a single JSON-lines record, mirroring the RDF
// parser's 16MB line ceiling.
const maxJSONLLine = 16 * 1024 * 1024

// JSONLReader streams entity descriptions out of a JSON-lines document:
// one object per line, one description per object. Keys become attribute
// names in document order; values may be strings, numbers, booleans
// (rendered "true"/"false"), null (skipped), or arrays of those scalars
// (multi-valued attributes). Nested objects have no tabular meaning and
// are rejected.
type JSONLReader struct {
	sc   *bufio.Scanner
	opt  Options
	line int
}

// NewJSONLReader prepares a streaming JSON-lines reader over r.
func NewJSONLReader(r io.Reader, opt Options) *JSONLReader {
	sc := bufio.NewScanner(stripBOM(r))
	sc.Buffer(make([]byte, 64*1024), maxJSONLLine)
	return &JSONLReader{sc: sc, opt: opt.withDefaults()}
}

// Next returns the next line's description, or io.EOF at end of input.
// Blank lines are skipped.
func (j *JSONLReader) Next() (*entity.Description, error) {
	for j.sc.Scan() {
		j.line++
		raw := j.sc.Bytes()
		if len(bytes.TrimSpace(raw)) == 0 {
			continue
		}
		d, err := j.parseLine(raw)
		if err != nil {
			return nil, fmt.Errorf("tabular: jsonl: line %d: %w", j.line, err)
		}
		return d, nil
	}
	if err := j.sc.Err(); err != nil {
		return nil, fmt.Errorf("tabular: jsonl: line %d: %w", j.line+1, err)
	}
	return nil, io.EOF
}

// parseLine walks one object with the streaming token API: unlike
// unmarshalling into a map, this preserves the document's key order, so
// JSON-lines and CSV renderings of the same record produce attributes in
// the same sequence.
func (j *JSONLReader) parseLine(raw []byte) (*entity.Description, error) {
	if !utf8.Valid(raw) {
		return nil, fmt.Errorf("invalid UTF-8")
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()

	tok, err := dec.Token()
	if err != nil {
		return nil, noEOF(err)
	}
	if delim, ok := tok.(json.Delim); !ok || delim != '{' {
		return nil, fmt.Errorf("record is not a JSON object")
	}

	d := entity.NewDescription("")
	sawID := false
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return nil, noEOF(err)
		}
		key := keyTok.(string)
		if key == j.opt.IDColumn {
			if sawID {
				return nil, fmt.Errorf("duplicate %q key", j.opt.IDColumn)
			}
			sawID = true
			id, err := scalarValue(dec, key)
			if err != nil {
				return nil, err
			}
			if id == "" {
				return nil, fmt.Errorf("empty value in ID key %q", j.opt.IDColumn)
			}
			d.URI = id
			continue
		}
		if err := j.addValues(dec, d, j.opt.attrName(key), key); err != nil {
			return nil, err
		}
	}
	if _, err := dec.Token(); err != nil { // consume '}'
		return nil, noEOF(err)
	}
	if dec.More() {
		return nil, fmt.Errorf("trailing data after record object")
	}
	if tok, err := dec.Token(); err != io.EOF {
		return nil, fmt.Errorf("trailing data after record object: %v", tok)
	}
	if !sawID {
		return nil, fmt.Errorf("record has no %q key", j.opt.IDColumn)
	}
	return d, nil
}

// addValues consumes the value for key and appends it to d under attr:
// a scalar appends one attribute, an array appends one per element.
func (j *JSONLReader) addValues(dec *json.Decoder, d *entity.Description, attr, key string) error {
	tok, err := dec.Token()
	if err != nil {
		return noEOF(err)
	}
	if delim, ok := tok.(json.Delim); ok {
		if delim != '[' {
			return fmt.Errorf("key %q: nested objects are not tabular values", key)
		}
		for dec.More() {
			v, err := scalarValue(dec, key)
			if err != nil {
				return err
			}
			if v != "" {
				d.Add(attr, v)
			}
		}
		_, err := dec.Token() // consume ']'
		return noEOF(err)
	}
	v, err := renderScalar(tok, key)
	if err != nil {
		return err
	}
	if v != "" {
		d.Add(attr, v)
	}
	return nil
}

// scalarValue reads one token and renders it as an attribute value.
func scalarValue(dec *json.Decoder, key string) (string, error) {
	tok, err := dec.Token()
	if err != nil {
		return "", noEOF(err)
	}
	if _, ok := tok.(json.Delim); ok {
		return "", fmt.Errorf("key %q: nested values are not tabular scalars", key)
	}
	return renderScalar(tok, key)
}

// noEOF turns the decoder's mid-object io.EOF into io.ErrUnexpectedEOF:
// a truncated record is malformed input, not end of stream.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// renderScalar maps a JSON scalar token to its attribute-value string.
// null renders "" (the caller skips it, matching an absent CSV cell).
func renderScalar(tok json.Token, key string) (string, error) {
	switch v := tok.(type) {
	case string:
		return v, nil
	case json.Number:
		return v.String(), nil
	case bool:
		if v {
			return "true", nil
		}
		return "false", nil
	case nil:
		return "", nil
	default:
		return "", fmt.Errorf("key %q: unsupported JSON value %v", key, tok)
	}
}

// WriteJSONLRecord writes one description as a single JSON-lines object.
// Attribute names keep their first-appearance order; a multi-valued
// attribute becomes an array in value order, so round-tripping through
// JSONLReader reproduces the original attribute sequence.
func WriteJSONLRecord(w io.Writer, d *entity.Description, opt Options) error {
	opt = opt.withDefaults()
	if d.URI == "" {
		return fmt.Errorf("tabular: jsonl: description %d has no URI for the ID key", d.ID)
	}
	var sb strings.Builder
	sb.WriteByte('{')
	if err := writeJSONString(&sb, opt.IDColumn); err != nil {
		return err
	}
	sb.WriteByte(':')
	if err := writeJSONString(&sb, d.URI); err != nil {
		return err
	}

	order := make([]string, 0, len(d.Attrs))
	values := make(map[string][]string, len(d.Attrs))
	for _, a := range d.Attrs {
		if a.Name == opt.IDColumn {
			return fmt.Errorf("tabular: jsonl: attribute %q of %s collides with the ID key", a.Name, d.URI)
		}
		if _, ok := values[a.Name]; !ok {
			order = append(order, a.Name)
		}
		values[a.Name] = append(values[a.Name], a.Value)
	}
	for _, name := range order {
		sb.WriteByte(',')
		if err := writeJSONString(&sb, name); err != nil {
			return err
		}
		sb.WriteByte(':')
		vs := values[name]
		if len(vs) == 1 {
			if err := writeJSONString(&sb, vs[0]); err != nil {
				return err
			}
			continue
		}
		sb.WriteByte('[')
		for i, v := range vs {
			if i > 0 {
				sb.WriteByte(',')
			}
			if err := writeJSONString(&sb, v); err != nil {
				return err
			}
		}
		sb.WriteByte(']')
	}
	sb.WriteByte('}')
	sb.WriteByte('\n')
	_, err := io.WriteString(w, sb.String())
	return err
}

func writeJSONString(sb *strings.Builder, s string) error {
	if !utf8.ValidString(s) {
		return fmt.Errorf("tabular: jsonl: string %q is not valid UTF-8", s)
	}
	b, err := json.Marshal(s)
	if err != nil {
		return fmt.Errorf("tabular: %w", err)
	}
	sb.Write(b)
	return nil
}

// WriteJSONL writes descs as a JSON-lines document, one object per line.
func WriteJSONL(w io.Writer, descs []*entity.Description, opt Options) error {
	bw := bufio.NewWriterSize(w, 64*1024)
	for _, d := range descs {
		if err := WriteJSONLRecord(bw, d, opt); err != nil {
			return err
		}
	}
	return bw.Flush()
}
