package mapreduce

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"entityres/internal/blocking"
	"entityres/internal/entity"
	"entityres/internal/metablocking"
)

// randomCollection builds a dirty collection with overlapping token values.
func randomCollection(seed int64, n int) *entity.Collection {
	rng := rand.New(rand.NewSource(seed))
	c := entity.NewCollection(entity.Dirty)
	vocab := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta"}
	for i := 0; i < n; i++ {
		d := entity.NewDescription("")
		val := ""
		for _, v := range vocab {
			if rng.Intn(3) == 0 {
				val += v + " "
			}
		}
		d.Add("v", val)
		c.MustAdd(d)
	}
	return c
}

func TestParallelTokenBlockingEqualsSequential(t *testing.T) {
	c := randomCollection(7, 40)
	seq, err := (&blocking.TokenBlocking{}).Block(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		par, err := ParallelTokenBlocking(c, nil, workers)
		if err != nil {
			t.Fatal(err)
		}
		if par.Len() != seq.Len() {
			t.Fatalf("workers=%d blocks %d vs %d", workers, par.Len(), seq.Len())
		}
		for i := 0; i < par.Len(); i++ {
			a, b := par.Get(i), seq.Get(i)
			if a.Key != b.Key || len(a.S0) != len(b.S0) {
				t.Fatalf("block %d differs: %q/%d vs %q/%d", i, a.Key, len(a.S0), b.Key, len(b.S0))
			}
		}
		if par.DistinctPairs().Len() != seq.DistinctPairs().Len() {
			t.Fatal("distinct pairs differ")
		}
	}
}

func TestParallelBuildGraphEqualsSequentialAllSchemes(t *testing.T) {
	c := randomCollection(11, 30)
	bs, err := (&blocking.TokenBlocking{}).Block(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range metablocking.WeightSchemes() {
		seq := metablocking.BuildGraph(bs, scheme)
		par, err := ParallelBuildGraph(bs, scheme, 4)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if par.NumEdges() != seq.NumEdges() {
			t.Fatalf("%v: edges %d vs %d", scheme, par.NumEdges(), seq.NumEdges())
		}
		seqEdges := seq.Edges()
		for _, e := range seqEdges {
			w, ok := par.Weight(e.A, e.B)
			if !ok || math.Abs(w-e.Weight) > 1e-9 {
				t.Fatalf("%v: edge (%d,%d) weight %v vs %v", scheme, e.A, e.B, w, e.Weight)
			}
		}
	}
}

func TestParallelMetaBlockingEqualsSequential(t *testing.T) {
	c := randomCollection(13, 30)
	bs, err := (&blocking.TokenBlocking{}).Block(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, prune := range metablocking.PruneSchemes() {
		m := &metablocking.MetaBlocker{Weight: metablocking.JS, Prune: prune}
		seq := m.Restructure(c, bs)
		par, err := ParallelMetaBlocking(c, bs, m, 4)
		if err != nil {
			t.Fatalf("%v: %v", prune, err)
		}
		seqPairs, parPairs := seq.DistinctPairs(), par.DistinctPairs()
		if seqPairs.Len() != parPairs.Len() {
			t.Fatalf("%v: pairs %d vs %d", prune, parPairs.Len(), seqPairs.Len())
		}
		seqPairs.Each(func(p entity.Pair) bool {
			if !parPairs.Contains(p.A, p.B) {
				t.Fatalf("%v: pair %v missing in parallel result", prune, p)
			}
			return true
		})
	}
}

func TestParsePairKey(t *testing.T) {
	p, err := parsePairKey("12:34")
	if err != nil || p.A != 12 || p.B != 34 {
		t.Fatalf("parsePairKey = %v, %v", p, err)
	}
	for _, bad := range []string{"12", "a:b", "1:b", ":"} {
		if _, err := parsePairKey(bad); err == nil {
			t.Fatalf("bad key %q accepted", bad)
		}
	}
	if got := pairKey(entity.Pair{A: 3, B: 9}); got != "3:9" {
		t.Fatalf("pairKey = %q", got)
	}
}

func TestParallelTokenBlockingCleanClean(t *testing.T) {
	c := entity.NewCollection(entity.CleanClean)
	c.MustAdd(entity.NewDescription("").Add("n", "shared token"))
	d := entity.NewDescription("").Add("m", "shared other")
	d.Source = 1
	c.MustAdd(d)
	bs, err := ParallelTokenBlocking(c, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if bs.Len() != 1 {
		t.Fatalf("blocks = %d", bs.Len())
	}
	b := bs.Get(0)
	if b.Key != "shared" || len(b.S0) != 1 || len(b.S1) != 1 {
		t.Fatalf("block = %+v", b)
	}
}

func BenchmarkParallelTokenBlocking(b *testing.B) {
	c := randomCollection(3, 2000)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ParallelTokenBlocking(c, nil, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
