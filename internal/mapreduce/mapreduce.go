// Package mapreduce provides an in-memory MapReduce engine over goroutines
// plus the parallel entity-resolution jobs the paper surveys in §II:
// Dedoop-style parallel blocking [18] and parallel meta-blocking [10],
// [11]. The engine reproduces the programming model — a map function
// emitting intermediate (key, value) pairs per input split and a reduce
// function processing the merged value list of each key — with hash
// partitioning of the intermediate key space across reduce workers, so the
// logical algorithms and their scaling behaviour carry over from cluster
// implementations to a multicore machine.
package mapreduce

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"sync"
)

// KV is an output key-value pair.
type KV struct {
	Key   string
	Value any
}

// MapFunc processes one input record and emits intermediate pairs.
type MapFunc func(input any, emit func(key string, value any))

// ReduceFunc processes the complete value list of one intermediate key and
// emits output pairs.
type ReduceFunc func(key string, values []any, emit func(key string, value any))

// Job configures one MapReduce execution.
type Job struct {
	// Name labels the job in errors.
	Name string
	// Map is required.
	Map MapFunc
	// Reduce is optional; nil applies the identity reduce (one output per
	// intermediate value).
	Reduce ReduceFunc
	// Workers bounds both map and reduce parallelism; values < 1 default
	// to GOMAXPROCS.
	Workers int
}

// Run executes the job over inputs and returns the outputs sorted by key
// (ties keep reduce emission order). The run is deterministic for a fixed
// input order regardless of Workers: inputs are sharded round-robin, and
// each key's value list is ordered by (mapper shard, emission order).
func Run(job Job, inputs []any) ([]KV, error) {
	if job.Map == nil {
		return nil, fmt.Errorf("mapreduce: job %q has no map function", job.Name)
	}
	workers := job.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	reduce := job.Reduce
	if reduce == nil {
		reduce = func(key string, values []any, emit func(string, any)) {
			for _, v := range values {
				emit(key, v)
			}
		}
	}

	// Map phase: each worker owns one input shard (round-robin) and one
	// local partition table — no shared state, no locks.
	type partition map[string][]any
	local := make([][]partition, workers) // local[mapper][reducer]
	var wg sync.WaitGroup
	for m := 0; m < workers; m++ {
		local[m] = make([]partition, workers)
		for r := range local[m] {
			local[m][r] = make(partition)
		}
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			emit := func(key string, value any) {
				r := int(hashKey(key) % uint32(workers))
				local[m][r][key] = append(local[m][r][key], value)
			}
			for i := m; i < len(inputs); i += workers {
				job.Map(inputs[i], emit)
			}
		}(m)
	}
	wg.Wait()

	// Shuffle + reduce phase: reducer r merges partition r of every mapper
	// in mapper order, then reduces its keys in sorted order.
	outs := make([][]KV, workers)
	for r := 0; r < workers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			merged := make(map[string][]any)
			for m := 0; m < workers; m++ {
				for k, vs := range local[m][r] {
					merged[k] = append(merged[k], vs...)
				}
			}
			keys := make([]string, 0, len(merged))
			for k := range merged {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			emit := func(key string, value any) {
				outs[r] = append(outs[r], KV{Key: key, Value: value})
			}
			for _, k := range keys {
				reduce(k, merged[k], emit)
			}
		}(r)
	}
	wg.Wait()

	var out []KV
	for r := 0; r < workers; r++ {
		out = append(out, outs[r]...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

func hashKey(key string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(key))
	return h.Sum32()
}

// Values extracts the values of a KV slice, preserving order — the
// convenience for chaining jobs.
func Values(kvs []KV) []any {
	out := make([]any, len(kvs))
	for i, kv := range kvs {
		out[i] = kv.Value
	}
	return out
}
