package mapreduce

import (
	"fmt"
	"math"
	"strconv"

	"entityres/internal/blocking"
	"entityres/internal/entity"
	"entityres/internal/graph"
	"entityres/internal/metablocking"
	"entityres/internal/token"
)

// ParallelTokenBlocking is token blocking as a MapReduce job (the Dedoop
// pattern of [18]): map emits (token, description) for every profile
// token; reduce materializes one block per token. The result equals the
// sequential blocking.TokenBlocking output. blocking.BuildSharded is the
// in-process counterpart the pipeline engine uses (shared-memory shard
// merge instead of shuffle, generalized over every KeyedBlocker).
func ParallelTokenBlocking(c *entity.Collection, p *token.Profiler, workers int) (*blocking.Blocks, error) {
	if p == nil {
		p = token.DefaultProfiler()
	}
	type member struct {
		id     entity.ID
		source int
	}
	job := Job{
		Name:    "token-blocking",
		Workers: workers,
		Map: func(input any, emit func(string, any)) {
			d := input.(*entity.Description)
			for t := range p.Set(d) {
				emit(t, member{id: d.ID, source: d.Source})
			}
		},
		Reduce: func(key string, values []any, emit func(string, any)) {
			b := &blocking.Block{Key: key}
			for _, v := range values {
				m := v.(member)
				if m.source == 1 {
					b.S1 = append(b.S1, m.id)
				} else {
					b.S0 = append(b.S0, m.id)
				}
			}
			emit(key, b)
		},
	}
	inputs := make([]any, 0, c.Len())
	for _, d := range c.All() {
		inputs = append(inputs, d)
	}
	kvs, err := Run(job, inputs)
	if err != nil {
		return nil, err
	}
	bs := blocking.NewBlocks(c.Kind())
	for _, kv := range kvs {
		bs.Add(kv.Value.(*blocking.Block))
	}
	return bs, nil
}

// pairKey renders a canonical pair as an intermediate key.
func pairKey(p entity.Pair) string {
	return strconv.Itoa(p.A) + ":" + strconv.Itoa(p.B)
}

// partial is the per-block contribution to one edge's statistics.
type partial struct {
	cbs  int
	arcs float64
}

// ParallelBuildGraph constructs the weighted blocking graph with the
// three-stage parallel meta-blocking strategy of [10], [11]:
//
//  1. a job counts, per description, the blocks containing it (the entity
//     index);
//  2. a job maps every block to its comparisons, emitting partial CBS/ARCS
//     contributions per pair, and reduces them into aggregate edge stats;
//  3. EJS only: a degree-counting job over the distinct edges.
//
// Weights are then computed per edge from the aggregates. The result
// equals metablocking.BuildGraph. metablocking.BuildGraphParallel is the
// in-process counterpart the pipeline engine uses; a weighting-semantics
// change in either place must be mirrored in the other.
func ParallelBuildGraph(bs *blocking.Blocks, scheme metablocking.WeightScheme, workers int) (*graph.Graph, error) {
	kind := bs.Kind()
	blockInputs := make([]any, 0, bs.Len())
	for _, b := range bs.All() {
		blockInputs = append(blockInputs, b)
	}

	// Stage 1: entity index (|B_e| per description).
	idxJob := Job{
		Name:    "entity-index",
		Workers: workers,
		Map: func(input any, emit func(string, any)) {
			b := input.(*blocking.Block)
			for _, id := range b.S0 {
				emit(strconv.Itoa(id), 1)
			}
			for _, id := range b.S1 {
				emit(strconv.Itoa(id), 1)
			}
		},
		Reduce: func(key string, values []any, emit func(string, any)) {
			emit(key, len(values))
		},
	}
	idxOut, err := Run(idxJob, blockInputs)
	if err != nil {
		return nil, err
	}
	blocksPer := make(map[entity.ID]int, len(idxOut))
	for _, kv := range idxOut {
		id, err := strconv.Atoi(kv.Key)
		if err != nil {
			return nil, fmt.Errorf("mapreduce: bad entity key %q: %w", kv.Key, err)
		}
		blocksPer[id] = kv.Value.(int)
	}

	// Stage 2: edge aggregation.
	edgeJob := Job{
		Name:    "edge-weights",
		Workers: workers,
		Map: func(input any, emit func(string, any)) {
			b := input.(*blocking.Block)
			comp := b.Comparisons(kind)
			b.EachComparison(kind, func(x, y entity.ID) bool {
				emit(pairKey(entity.NewPair(x, y)), partial{cbs: 1, arcs: 1 / float64(comp)})
				return true
			})
		},
		Reduce: func(key string, values []any, emit func(string, any)) {
			agg := partial{}
			for _, v := range values {
				pv := v.(partial)
				agg.cbs += pv.cbs
				agg.arcs += pv.arcs
			}
			emit(key, agg)
		},
	}
	edgeOut, err := Run(edgeJob, blockInputs)
	if err != nil {
		return nil, err
	}

	// Stage 3 (EJS only): node degrees over distinct edges.
	degree := make(map[entity.ID]int)
	if scheme == metablocking.EJS {
		degJob := Job{
			Name:    "degrees",
			Workers: workers,
			Map: func(input any, emit func(string, any)) {
				kv := input.(KV)
				p, err := parsePairKey(kv.Key)
				if err != nil {
					return
				}
				emit(strconv.Itoa(p.A), 1)
				emit(strconv.Itoa(p.B), 1)
			},
			Reduce: func(key string, values []any, emit func(string, any)) {
				emit(key, len(values))
			},
		}
		degInputs := make([]any, len(edgeOut))
		for i, kv := range edgeOut {
			degInputs[i] = kv
		}
		degOut, err := Run(degJob, degInputs)
		if err != nil {
			return nil, err
		}
		for _, kv := range degOut {
			id, err := strconv.Atoi(kv.Key)
			if err != nil {
				return nil, fmt.Errorf("mapreduce: bad degree key %q: %w", kv.Key, err)
			}
			degree[id] = kv.Value.(int)
		}
	}

	numBlocks := float64(bs.Len())
	numEdges := float64(len(edgeOut))
	g := graph.New()
	for _, kv := range edgeOut {
		p, err := parsePairKey(kv.Key)
		if err != nil {
			return nil, err
		}
		st := kv.Value.(partial)
		var w float64
		switch scheme {
		case metablocking.CBS:
			w = float64(st.cbs)
		case metablocking.ECBS:
			w = float64(st.cbs) *
				math.Log(numBlocks/float64(blocksPer[p.A])) *
				math.Log(numBlocks/float64(blocksPer[p.B]))
		case metablocking.JS:
			w = jsWeight(st.cbs, blocksPer[p.A], blocksPer[p.B])
		case metablocking.EJS:
			w = jsWeight(st.cbs, blocksPer[p.A], blocksPer[p.B]) *
				math.Log(numEdges/float64(degree[p.A])) *
				math.Log(numEdges/float64(degree[p.B]))
		case metablocking.ARCS:
			w = st.arcs
		default:
			return nil, fmt.Errorf("mapreduce: unsupported weight scheme %v", scheme)
		}
		g.SetWeight(p.A, p.B, w)
	}
	return g, nil
}

func jsWeight(cbs, ba, bb int) float64 {
	union := ba + bb - cbs
	if union == 0 {
		return 0
	}
	return float64(cbs) / float64(union)
}

func parsePairKey(key string) (entity.Pair, error) {
	for i := 0; i < len(key); i++ {
		if key[i] == ':' {
			a, err1 := strconv.Atoi(key[:i])
			b, err2 := strconv.Atoi(key[i+1:])
			if err1 != nil || err2 != nil {
				return entity.Pair{}, fmt.Errorf("mapreduce: bad pair key %q", key)
			}
			return entity.Pair{A: a, B: b}, nil
		}
	}
	return entity.Pair{}, fmt.Errorf("mapreduce: bad pair key %q", key)
}

// ParallelMetaBlocking builds the blocking graph in parallel and applies
// the configured pruning, returning the restructured block collection —
// the end-to-end parallel meta-blocking pipeline of [10], [11].
func ParallelMetaBlocking(c *entity.Collection, bs *blocking.Blocks, m *metablocking.MetaBlocker, workers int) (*blocking.Blocks, error) {
	g, err := ParallelBuildGraph(bs, m.Weight, workers)
	if err != nil {
		return nil, err
	}
	kept := m.PruneGraph(g, bs)
	out := blocking.NewBlocks(bs.Kind())
	for _, e := range kept {
		b := &blocking.Block{Key: "meta:" + pairKey(entity.Pair{A: e.A, B: e.B})}
		for _, id := range []entity.ID{e.A, e.B} {
			if c.Get(id) != nil && c.Get(id).Source == 1 {
				b.S1 = append(b.S1, id)
			} else {
				b.S0 = append(b.S0, id)
			}
		}
		out.Add(b)
	}
	return out, nil
}
