package mapreduce

import (
	"reflect"
	"strings"
	"testing"
)

func wordCountJob(workers int) Job {
	return Job{
		Name:    "wordcount",
		Workers: workers,
		Map: func(input any, emit func(string, any)) {
			for _, w := range strings.Fields(input.(string)) {
				emit(w, 1)
			}
		},
		Reduce: func(key string, values []any, emit func(string, any)) {
			emit(key, len(values))
		},
	}
}

func TestWordCount(t *testing.T) {
	inputs := []any{"a b a", "b c", "a"}
	got, err := Run(wordCountJob(4), inputs)
	if err != nil {
		t.Fatal(err)
	}
	want := []KV{{"a", 3}, {"b", 2}, {"c", 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("wordcount = %v", got)
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	inputs := make([]any, 50)
	for i := range inputs {
		inputs[i] = strings.Repeat("x ", i%7) + "y z"
	}
	base, err := Run(wordCountJob(1), inputs)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 3, 8} {
		got, err := Run(wordCountJob(w), inputs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("workers=%d output differs", w)
		}
	}
}

func TestIdentityReduce(t *testing.T) {
	job := Job{
		Name: "identity",
		Map: func(input any, emit func(string, any)) {
			emit("k", input)
		},
	}
	got, err := Run(job, []any{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("identity outputs = %v", got)
	}
	// Round-robin sharding with one key preserves per-mapper order; with
	// workers=1 the original order survives.
	got1, _ := Run(Job{Name: "id1", Workers: 1, Map: job.Map}, []any{1, 2, 3})
	vals := Values(got1)
	if !reflect.DeepEqual(vals, []any{1, 2, 3}) {
		t.Fatalf("values = %v", vals)
	}
}

func TestMissingMapIsError(t *testing.T) {
	if _, err := Run(Job{Name: "bad"}, nil); err == nil {
		t.Fatal("nil map accepted")
	}
}

func TestEmptyInputs(t *testing.T) {
	got, err := Run(wordCountJob(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("outputs = %v", got)
	}
}
