package wal_test

import (
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"entityres/internal/wal"
)

// collectRecords reopens dir and replays every record into a set.
func collectRecords(t *testing.T, dir string) map[string]int {
	t.Helper()
	l, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	got := map[string]int{}
	if _, err := l.Replay(0, func(p []byte) error {
		got[string(p)]++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return got
}

// hammer appends goroutines*perG distinct records concurrently and returns
// the expected record set.
func hammer(t *testing.T, l *wal.Log, goroutines, perG int) map[string]int {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if _, err := l.Append([]byte(fmt.Sprintf("g%02d-r%04d", g, i))); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("appender %d: %v", g, err)
		}
	}
	want := map[string]int{}
	for g := 0; g < goroutines; g++ {
		for i := 0; i < perG; i++ {
			want[fmt.Sprintf("g%02d-r%04d", g, i)] = 1
		}
	}
	return want
}

// TestGroupCommitDurability is the group-commit regression test: every
// record a concurrent appender was acknowledged for must survive reopen —
// durability >= the per-append fsync policy — while the append path issues
// no more syncs than appends (and, under contention, strictly fewer; the
// deterministic batching assertion lives in TestGroupCommitBatches).
func TestGroupCommitDurability(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.Open(dir, wal.Options{GroupCommit: true, SegmentBytes: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, perG = 8, 40
	want := hammer(t, l, goroutines, perG)
	appends := uint64(goroutines * perG)
	if s := l.Syncs(); s > appends {
		t.Fatalf("group commit issued %d syncs for %d appends (more than per-op fsync)", s, appends)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got := collectRecords(t, dir)
	if len(got) != len(want) {
		t.Fatalf("reopen found %d distinct records, want %d", len(got), len(want))
	}
	for rec, n := range want {
		if got[rec] != n {
			t.Fatalf("record %q appears %d times after reopen, want %d", rec, got[rec], n)
		}
	}
}

// TestGroupCommitBatches slows the fsync through the test hook so
// concurrent appenders deterministically pile into batches, and asserts
// that one sync covered many appends.
func TestGroupCommitBatches(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.Open(dir, wal.Options{GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	l.SetSyncFn(func(f *os.File) error {
		time.Sleep(2 * time.Millisecond)
		return f.Sync()
	})
	const goroutines, perG = 8, 25
	want := hammer(t, l, goroutines, perG)
	appends := uint64(goroutines * perG)
	syncs := l.Syncs()
	if syncs >= appends {
		t.Fatalf("slowed group commit issued %d syncs for %d appends — no batching happened", syncs, appends)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got := collectRecords(t, dir); len(got) != len(want) {
		t.Fatalf("reopen found %d distinct records, want %d", len(got), len(want))
	}
	t.Logf("group commit: %d appends, %d syncs (%.1f appends/sync)", appends, syncs, float64(appends)/float64(syncs))
}

// TestGroupCommitSingleAppender checks the degenerate batch: a lone
// appender still gets one durable sync per append and its records survive.
func TestGroupCommitSingleAppender(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.Open(dir, wal.Options{GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("solo-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if s := l.Syncs(); s == 0 || s > 10 {
		t.Fatalf("lone appender issued %d syncs for 10 appends", s)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got := collectRecords(t, dir); len(got) != 10 {
		t.Fatalf("reopen found %d records, want 10", len(got))
	}
}

// TestGroupCommitSyncFailure: when a group sync fails, the affected
// appenders get the error (their records were never acknowledged as
// durable) and the log seals rather than appending after maybe-lost bytes.
func TestGroupCommitSyncFailure(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.Open(dir, wal.Options{GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("before")); err != nil {
		t.Fatal(err)
	}
	l.SetSyncFn(func(*os.File) error { return fmt.Errorf("disk gone") })
	if _, err := l.Append([]byte("lost")); err == nil {
		t.Fatal("append whose group sync failed was acknowledged")
	}
	l.SetSyncFn(nil)
	if _, err := l.Append([]byte("after")); err == nil {
		t.Fatal("append after a failed group sync succeeded on a sealed log")
	}
	l.Close()
	// The pre-failure record is still replayable, and the failed record
	// must NOT be: its frame was truncated back out before sealing, so
	// recovery can never replay an operation its caller was told failed.
	got := collectRecords(t, dir)
	if got["before"] != 1 {
		t.Fatalf("durable pre-failure record missing after reopen: %v", got)
	}
	if got["lost"] != 0 {
		t.Fatalf("unacknowledged record survived the failed group sync: %v", got)
	}
	if got["after"] != 0 {
		t.Fatalf("record appended after seal reached the log: %v", got)
	}
}

// BenchmarkAppendFsync measures the per-append fsync baseline with
// parallel appenders contending on one log (each waits out its own sync).
func BenchmarkAppendFsync(b *testing.B) {
	benchmarkAppend(b, wal.Options{})
}

// BenchmarkAppendGroupCommit measures the same workload with group commit
// batching the syncs.
func BenchmarkAppendGroupCommit(b *testing.B) {
	benchmarkAppend(b, wal.Options{GroupCommit: true})
}

func benchmarkAppend(b *testing.B, opts wal.Options) {
	dir := b.TempDir()
	// The non-group log is not safe for concurrent use: serialize appends
	// through a mutex, which is exactly what a caller without group commit
	// must do — the contended fsync is the cost being measured.
	opts.SegmentBytes = 1 << 22
	l, err := wal.Open(dir, opts)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	var mu sync.Mutex
	payload := []byte("benchmark-record-of-plausible-journal-size-0123456789")
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if opts.GroupCommit {
				if _, err := l.Append(payload); err != nil {
					b.Error(err)
					return
				}
				continue
			}
			mu.Lock()
			_, err := l.Append(payload)
			mu.Unlock()
			if err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.ReportMetric(float64(l.Syncs()), "syncs")
}

// TestGroupCommitRotation: rotation under group commit seals (and thereby
// syncs) the outgoing segment and advances the group coverage, so every
// record around segment boundaries is acknowledged durable and replayable.
func TestGroupCommitRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.Open(dir, wal.Options{GroupCommit: true, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 24; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("rotating-record-%02d-padded-to-force-boundaries", i))); err != nil {
			t.Fatal(err)
		}
	}
	if seq, err := l.Rotate(); err != nil || seq < 2 {
		t.Fatalf("explicit rotate: seq=%d err=%v", seq, err)
	}
	if len(l.Segments()) < 3 {
		t.Fatalf("only %d segments after 24 oversized appends", len(l.Segments()))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got := collectRecords(t, dir); len(got) != 24 {
		t.Fatalf("reopen found %d records, want 24", len(got))
	}
}
