package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// scanSegmentRecords reads a segment's frames in order, invoking fn (when
// non-nil) with each intact payload, and returns the number of intact
// records, the byte offset right after the last intact frame, and whether
// the segment ends in a torn frame — a header or payload cut short by
// end-of-file, an implausible length field, or a checksum mismatch. Under
// the append-only, rotate-at-boundary discipline a bad frame can only be
// the tail a crash tore; everything before it is trustworthy. An error from
// fn aborts the scan and is returned as-is.
func scanSegmentRecords(path string, fn func(payload []byte) error) (records int, good int64, torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, false, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	header := make([]byte, headerBytes)
	var payload []byte
	for {
		if _, err := io.ReadFull(br, header); err != nil {
			if err == io.EOF {
				return records, good, false, nil // clean end
			}
			if err == io.ErrUnexpectedEOF {
				return records, good, true, nil // torn header
			}
			return records, good, false, fmt.Errorf("wal: reading %s: %w", filepath.Base(path), err)
		}
		length := binary.LittleEndian.Uint32(header[0:4])
		sum := binary.LittleEndian.Uint32(header[4:8])
		if length > MaxRecordBytes {
			return records, good, true, nil // garbage length: torn tail
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(br, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return records, good, true, nil // torn payload
			}
			return records, good, false, fmt.Errorf("wal: reading %s: %w", filepath.Base(path), err)
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			return records, good, true, nil // checksum mismatch: torn tail
		}
		if fn != nil {
			// Hand fn its own copy: the scan buffer is reused per frame.
			rec := make([]byte, length)
			copy(rec, payload)
			if err := fn(rec); err != nil {
				return records, good, false, err
			}
		}
		records++
		good += headerBytes + int64(length)
	}
}

// WriteFileAtomic durably writes payload to path as a single CRC-framed
// record, via a temporary file and an atomic rename — the snapshot write
// primitive. A crash leaves either the previous file (or none) or the
// complete new one, never a partial.
func WriteFileAtomic(path string, payload []byte) error {
	if len(payload) > MaxRecordBytes {
		return fmt.Errorf("wal: snapshot of %d bytes exceeds the %d-byte bound", len(payload), MaxRecordBytes)
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	buf := make([]byte, headerBytes+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	copy(buf[headerBytes:], payload)
	_, err = f.Write(buf)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: writing %s: %w", filepath.Base(path), err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	return syncDir(filepath.Dir(path))
}

// ReadFileFramed reads a file written by WriteFileAtomic, validating its
// checksum and rejecting trailing bytes.
func ReadFileFramed(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if len(raw) < headerBytes {
		return nil, fmt.Errorf("wal: %s: truncated frame header", filepath.Base(path))
	}
	length := binary.LittleEndian.Uint32(raw[0:4])
	sum := binary.LittleEndian.Uint32(raw[4:8])
	payload := raw[headerBytes:]
	if int(length) != len(payload) {
		return nil, fmt.Errorf("wal: %s: frame claims %d payload bytes, file holds %d", filepath.Base(path), length, len(payload))
	}
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, fmt.Errorf("wal: %s: checksum mismatch", filepath.Base(path))
	}
	return payload, nil
}
