//go:build unix

package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockDir takes the advisory per-directory lock (flock on wal.lock),
// failing immediately when another live process holds it. The kernel
// releases the lock when the holding process exits, so a crash never
// wedges the directory.
func lockDir(dir string) (*os.File, error) {
	lock, err := os.OpenFile(filepath.Join(dir, "wal.lock"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := syscall.Flock(int(lock.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		lock.Close()
		return nil, fmt.Errorf("wal: directory %s is locked by another process: %w", dir, err)
	}
	return lock, nil
}
