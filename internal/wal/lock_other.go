//go:build !unix

package wal

import (
	"fmt"
	"os"
	"path/filepath"
)

// lockDir on platforms without flock opens the lock file without taking an
// advisory lock: single-process discipline is the caller's responsibility
// there. The unix implementation rejects concurrent opens.
func lockDir(dir string) (*os.File, error) {
	lock, err := os.OpenFile(filepath.Join(dir, "wal.lock"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	return lock, nil
}
