package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// collect replays the whole log into a slice.
func collect(t *testing.T, l *Log) [][]byte {
	t.Helper()
	var out [][]byte
	n, err := l.Replay(0, func(p []byte) error {
		out = append(out, p)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if n != len(out) {
		t.Fatalf("replay reported %d records, delivered %d", n, len(out))
	}
	return out
}

func payloads(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("record-%04d-%s", i, string(bytes.Repeat([]byte{'x'}, i%37))))
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := payloads(100)
	for _, p := range want {
		if _, err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	got := collect(t, l)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d: got %q want %q", i, got[i], want[i])
		}
	}
	// The log accepts appends after replay.
	if _, err := l.Append([]byte("after-recovery")); err != nil {
		t.Fatal(err)
	}
}

func TestRotationSpreadsSegmentsAndPreservesOrder(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 128, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	want := payloads(50)
	for _, p := range want {
		if _, err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if len(l.Segments()) < 3 {
		t.Fatalf("expected several segments at a 128-byte threshold, got %v", l.Segments())
	}
	got := collect(t, l)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d out of order across rotation", i)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// activeSegmentPath returns the file of the highest segment.
func activeSegmentPath(t *testing.T, dir string) string {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in %s: %v", dir, err)
	}
	return filepath.Join(dir, fmt.Sprintf(segFormat, segs[len(segs)-1]))
}

func TestTornTailTruncation(t *testing.T) {
	// Every way a crash can tear the tail: mid-header, mid-payload, and a
	// full-length frame whose payload bytes were never all written (bad CRC).
	tears := []struct {
		name string
		tear func(valid []byte) []byte // bytes to append after intact records
	}{
		{"mid-header", func([]byte) []byte { return []byte{0x07, 0x00, 0x00} }},
		{"mid-payload", func(valid []byte) []byte {
			// Header announcing 1000 payload bytes, only 5 present.
			return append([]byte{0xe8, 0x03, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef}, "hello"...)
		}},
		{"bad-crc", func(valid []byte) []byte {
			// A complete frame of the right length with a wrong checksum.
			return []byte{0x02, 0x00, 0x00, 0x00, 0x01, 0x02, 0x03, 0x04, 'h', 'i'}
		}},
		{"garbage-length", func(valid []byte) []byte {
			// Length field far beyond MaxRecordBytes.
			return []byte{0xff, 0xff, 0xff, 0xff, 0x00, 0x00, 0x00, 0x00, 'x'}
		}},
	}
	for _, tc := range tears {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			want := payloads(10)
			for _, p := range want {
				if _, err := l.Append(p); err != nil {
					t.Fatal(err)
				}
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			// Simulate the crash: raw torn bytes after the intact records.
			path := activeSegmentPath(t, dir)
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(tc.tear(nil)); err != nil {
				t.Fatal(err)
			}
			f.Close()

			l, err = Open(dir, Options{})
			if err != nil {
				t.Fatalf("open with torn tail: %v", err)
			}
			got := collect(t, l)
			if len(got) != len(want) {
				t.Fatalf("recovered %d records, want the %d intact ones", len(got), len(want))
			}
			// The repair truncated the tear away, so appends resume cleanly
			// and survive another cycle.
			if _, err := l.Append([]byte("post-tear")); err != nil {
				t.Fatal(err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			l, err = Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			if got := collect(t, l); len(got) != len(want)+1 || string(got[len(want)]) != "post-tear" {
				t.Fatalf("append after repair not replayed: %d records", len(got))
			}
		})
	}
}

func TestTruncateToRollsBackLastAppend(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append([]byte("keep")); err != nil {
		t.Fatal(err)
	}
	pos, err := l.Append([]byte("retract-me"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.TruncateTo(pos); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, l); len(got) != 1 || string(got[0]) != "keep" {
		t.Fatalf("rollback left %q", got)
	}
	// The next append reuses the reclaimed space.
	if _, err := l.Append([]byte("next")); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, l); len(got) != 2 || string(got[1]) != "next" {
		t.Fatalf("append after rollback left %q", got)
	}
	// A stale position (wrong segment) is rejected.
	if err := l.TruncateTo(Position{Segment: l.ActiveSegment() + 1}); err == nil {
		t.Fatal("TruncateTo accepted a non-active segment")
	}
}

func TestRotateEmptyActiveIsNoop(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	first := l.ActiveSegment()
	seq, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if seq != first {
		t.Fatalf("empty rotate moved to segment %d", seq)
	}
	if _, err := l.Append([]byte("a")); err != nil {
		t.Fatal(err)
	}
	seq, err = l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if seq != first+1 {
		t.Fatalf("rotate after append returned %d, want %d", seq, first+1)
	}
}

func TestRemoveSegmentsBeforeBoundsReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 5; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("old-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	seq, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("new-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.RemoveSegmentsBefore(seq); err != nil {
		t.Fatal(err)
	}
	if len(l.Segments()) != 1 {
		t.Fatalf("segments after compaction: %v", l.Segments())
	}
	var tail []string
	n, err := l.Replay(seq, func(p []byte) error {
		tail = append(tail, string(p))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || tail[0] != "new-0" || tail[2] != "new-2" {
		t.Fatalf("tail replay = %v", tail)
	}
}

func TestSealedSegmentCorruptionIsAnError(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("sealed-record")); err != nil {
		t.Fatal(err)
	}
	sealedPath := filepath.Join(dir, fmt.Sprintf(segFormat, l.ActiveSegment()))
	if _, err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("active-record")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in the sealed segment.
	raw, err := os.ReadFile(sealedPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(sealedPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	l, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Replay(0, func([]byte) error { return nil }); err == nil {
		t.Fatal("replay silently skipped a corrupt sealed segment")
	}
}

func TestReplayPropagatesCallbackError(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 3; i++ {
		if _, err := l.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	calls := 0
	_, err = l.Replay(0, func(p []byte) error {
		calls++
		if calls == 2 {
			return fmt.Errorf("stop here")
		}
		return nil
	})
	if err == nil || calls != 2 {
		t.Fatalf("callback error not propagated (calls=%d err=%v)", calls, err)
	}
}

func TestAtomicFramedFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snapshot-0001.snap")
	payload := bytes.Repeat([]byte("snapshot state "), 100)
	if err := WriteFileAtomic(path, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFileFramed(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("snapshot round trip mismatch")
	}
	// Overwrite is atomic: the new content fully replaces the old.
	if err := WriteFileAtomic(path, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, err := ReadFileFramed(path); err != nil || string(got) != "v2" {
		t.Fatalf("overwrite: %q, %v", got, err)
	}
	// Corruption is detected.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFileFramed(path); err == nil {
		t.Fatal("ReadFileFramed accepted a corrupt file")
	}
	// Truncation is detected.
	if err := os.WriteFile(path, raw[:5], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFileFramed(path); err == nil {
		t.Fatal("ReadFileFramed accepted a truncated file")
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	l, err := Open(t.TempDir(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(make([]byte, MaxRecordBytes+1)); err == nil {
		t.Fatal("oversize record accepted")
	}
}

func TestForeignFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "wal-notanumber.seg"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "snapshot-0001.snap"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if len(l.Segments()) != 1 {
		t.Fatalf("foreign files leaked into the segment list: %v", l.Segments())
	}
}

func TestClosedLogOperationsFail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if l.Dir() != dir {
		t.Fatalf("Dir() = %q", l.Dir())
	}
	if _, err := l.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("y")); err == nil {
		t.Fatal("append on closed log succeeded")
	}
	if err := l.Sync(); err == nil {
		t.Fatal("sync on closed log succeeded")
	}
	if _, err := l.Rotate(); err == nil {
		t.Fatal("rotate on closed log succeeded")
	}
	if err := l.TruncateTo(Position{Segment: 1}); err == nil {
		t.Fatal("truncate on closed log succeeded")
	}
	if err := l.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

func TestTruncateToRejectsBadOffsets(t *testing.T) {
	l, err := Open(t.TempDir(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	pos, err := l.Append([]byte("abc"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.TruncateTo(Position{Segment: pos.Segment, Offset: -1}); err == nil {
		t.Fatal("negative offset accepted")
	}
	if err := l.TruncateTo(Position{Segment: pos.Segment, Offset: 1 << 20}); err == nil {
		t.Fatal("offset past the segment end accepted")
	}
}

func TestDoubleOpenIsRejected(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{NoSync: true}); err == nil {
		t.Fatal("second concurrent Open of the same directory succeeded")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Close releases the lock; the next Open succeeds.
	l, err = Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	l.Close()
}

func TestRemoveSegmentsBeforeKeepsListingOnError(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 3; i++ {
		if _, err := l.Append([]byte("x")); err != nil {
			t.Fatal(err)
		}
		if _, err := l.Rotate(); err != nil {
			t.Fatal(err)
		}
	}
	// Segments [1 2 3 4]; make removing segment 2 fail by replacing it
	// with a non-empty directory of the same name.
	seg2 := l.segmentPath(2)
	if err := os.Remove(seg2); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(seg2, "d"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := l.RemoveSegmentsBefore(4); err == nil {
		t.Fatal("RemoveSegmentsBefore ignored an unremovable segment")
	}
	// Segment 1 was removed, 2 failed, 3 and 4 were never visited — the
	// listing must still report everything that exists on disk.
	want := []uint64{2, 3, 4}
	if got := l.Segments(); len(got) != 3 || got[0] != 2 || got[1] != 3 || got[2] != 4 {
		t.Fatalf("Segments() after failed prune = %v, want %v", got, want)
	}
}

// TestFailedAppendLeavesNoTrace: an append whose write fails must leave the
// log either repaired (no bytes of the failed record) or sealed — never
// positioned after garbage, and never holding a record whose error was
// reported to the caller.
func TestFailedAppendLeavesNoTrace(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append([]byte("acknowledged")); err != nil {
		t.Fatal(err)
	}
	// Swap the active handle for a read-only one: the write fails, and the
	// repair (truncate on a read-only fd) fails too, so the log seals.
	good := l.f
	ro, err := os.Open(l.segmentPath(l.seq))
	if err != nil {
		t.Fatal(err)
	}
	l.f = ro
	if _, err := l.Append([]byte("doomed")); err == nil {
		t.Fatal("append through a read-only handle succeeded")
	}
	if l.f != nil {
		t.Fatal("log not sealed after an unrepairable append failure")
	}
	if _, err := l.Append([]byte("after")); err == nil {
		t.Fatal("sealed log accepted an append")
	}
	good.Close()
	// A sealed log still holds the directory lock until Close releases it.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// On disk: exactly the acknowledged record.
	l2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := collect(t, l2); len(got) != 1 || string(got[0]) != "acknowledged" {
		t.Fatalf("log holds %q after failed append", got)
	}
}
