package wal

import (
	"bytes"
	"strings"
	"testing"
)

// TestFramedSnapshotRoundTrip checks the wire form of a shipped snapshot:
// encode/decode round-trips, and every frame violation — truncated header,
// wrong length field, flipped payload bit, oversized payload — is refused.
func TestFramedSnapshotRoundTrip(t *testing.T) {
	payload := []byte("full shard state transfer")
	s, err := EncodeFramed(payload)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFramed(s)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("round trip = %q", got)
	}

	if _, err := DecodeFramed(s[:headerBytes-1]); err == nil {
		t.Fatal("truncated header accepted")
	}
	short := append(Snapshot(nil), s...)
	if _, err := DecodeFramed(short[:len(short)-1]); err == nil {
		t.Fatal("length mismatch accepted")
	}
	flipped := append(Snapshot(nil), s...)
	flipped[headerBytes] ^= 0x01
	if _, err := DecodeFramed(flipped); err == nil {
		t.Fatal("corrupted payload accepted")
	}
	if _, err := EncodeFramed(make([]byte, MaxRecordBytes+1)); err == nil ||
		!strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversized payload: %v", err)
	}
}
