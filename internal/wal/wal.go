// Package wal implements the durable storage substrate of the streaming
// resolver: an append-only write-ahead log of CRC-framed records stored in
// size-rotated segment files, fsync'd per append, with ordered replay and
// torn-tail recovery.
//
// Layout. A log directory holds numbered segment files ("wal-%016d.seg",
// sequence numbers ascending from 1). Appends go to the highest-numbered
// (active) segment; once it exceeds Options.SegmentBytes the log rotates to
// a fresh segment. Every record is framed as
//
//	[4-byte little-endian payload length][4-byte CRC32-C of payload][payload]
//
// so replay can detect exactly where a crash tore the tail: a frame whose
// header or payload runs past end-of-file, whose length field is implausible,
// or whose checksum fails marks the end of the intact prefix. Open truncates
// the active segment back to that prefix (torn-tail repair); the same
// condition inside a sealed (non-active) segment is data corruption and
// surfaces as an error from Replay, because sealed segments are only ever
// written through whole, synced appends.
//
// Compaction support. Callers that checkpoint their state into snapshot
// files (see WriteFileAtomic) rotate first, write the snapshot named after
// the new active segment, and then drop the older segments with
// RemoveSegmentsBefore — recovery then replays only the records appended
// after the snapshot, bounding recovery cost by the tail of the stream
// rather than its lifetime.
//
// A Log is not safe for concurrent use; the streaming resolver serializes
// operations.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

const (
	// headerBytes is the fixed frame header: payload length + CRC32-C.
	headerBytes = 8
	// MaxRecordBytes bounds a single record's payload. A length field above
	// it cannot be trusted (it would be read from a torn or corrupt frame)
	// and is treated as the end of the intact prefix.
	MaxRecordBytes = 64 << 20
	// DefaultSegmentBytes is the rotation threshold when Options.SegmentBytes
	// is zero.
	DefaultSegmentBytes = 4 << 20

	segFormat = "wal-%016d.seg"
)

// castagnoli is the CRC32-C polynomial table — hardware-accelerated on
// modern CPUs and the conventional WAL checksum.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options tunes a Log.
type Options struct {
	// SegmentBytes is the size threshold past which the active segment is
	// sealed and a new one started (default DefaultSegmentBytes). A record
	// always lands whole in one segment: rotation happens before the append.
	SegmentBytes int64
	// NoSync skips the fsync after each append. Throughput rises by orders
	// of magnitude, but records acknowledged since the last Sync may be lost
	// on a machine crash (a process crash loses nothing: writes are in the
	// page cache). Meant for tests, benchmarks and workloads that checkpoint
	// explicitly.
	NoSync bool
}

// Position addresses a byte offset within one segment — where a record
// begins, as reported by Append.
type Position struct {
	Segment uint64
	Offset  int64
}

// Log is an append-only segmented record log.
type Log struct {
	dir  string
	opts Options
	f    *os.File
	lock *os.File // flock'd wal.lock guarding the directory
	seq  uint64   // active segment sequence
	size int64    // active segment byte size
	segs []uint64
}

// Open opens (creating if necessary) the log directory, repairs a torn tail
// left in the active segment by a crash, and positions the log for
// appending. Replay the existing records with Replay before appending new
// ones.
//
// The directory is guarded by an advisory flock on a "wal.lock" file: a
// second concurrent Open of the same directory fails loudly instead of the
// two writers truncating and interleaving each other's acknowledged
// records. The kernel releases the lock when the holding process exits, so
// a crash never wedges the directory.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		lock.Close()
		return nil, err
	}
	l := &Log{dir: dir, opts: opts, lock: lock, segs: segs}
	fail := func(err error) (*Log, error) {
		lock.Close()
		return nil, err
	}
	if len(segs) == 0 {
		if err := l.createSegment(1); err != nil {
			return fail(err)
		}
		return l, nil
	}
	// Repair the active (highest) segment: truncate everything after the
	// last intact frame. Earlier segments were sealed by rotation and are
	// validated during Replay.
	active := segs[len(segs)-1]
	path := l.segmentPath(active)
	_, good, _, err := scanSegmentRecords(path, nil)
	if err != nil {
		return fail(err)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fail(fmt.Errorf("wal: %w", err))
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fail(fmt.Errorf("wal: %w", err))
	}
	if st.Size() > good {
		if err := truncateSync(f, good); err != nil {
			f.Close()
			return fail(err)
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return fail(fmt.Errorf("wal: %w", err))
	}
	l.f, l.seq, l.size = f, active, good
	return l, nil
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// ActiveSegment returns the sequence number of the segment appends go to.
func (l *Log) ActiveSegment() uint64 { return l.seq }

// Segments returns the sequence numbers of the on-disk segments, ascending.
func (l *Log) Segments() []uint64 {
	out := make([]uint64, len(l.segs))
	copy(out, l.segs)
	return out
}

// Append frames and durably appends one record, returning the position at
// which it begins (after any rotation). The payload is synced to disk
// before Append returns unless Options.NoSync is set.
func (l *Log) Append(payload []byte) (Position, error) {
	if l.f == nil {
		return Position{}, fmt.Errorf("wal: log is closed")
	}
	if len(payload) > MaxRecordBytes {
		return Position{}, fmt.Errorf("wal: record of %d bytes exceeds the %d-byte bound", len(payload), MaxRecordBytes)
	}
	frame := int64(headerBytes + len(payload))
	if l.size > 0 && l.size+frame > l.opts.SegmentBytes {
		if _, err := l.Rotate(); err != nil {
			return Position{}, err
		}
	}
	pos := Position{Segment: l.seq, Offset: l.size}
	buf := make([]byte, headerBytes+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	copy(buf[headerBytes:], payload)
	// A failed append must never leave unacknowledged bytes behind: a
	// partial frame would poison the torn-tail scan for every later record,
	// and a whole frame whose error was reported to the caller would replay
	// as an operation that was never acknowledged (for inserts, wedging
	// recovery on a duplicate handle). Repair by truncating back to the
	// record's start; if even that fails the log seals itself — every
	// further operation errors rather than writing after garbage.
	if _, err := l.f.Write(buf); err != nil {
		l.repairOrSeal(pos.Offset)
		return Position{}, fmt.Errorf("wal: append: %w", err)
	}
	l.size += frame
	if !l.opts.NoSync {
		if err := l.f.Sync(); err != nil {
			l.repairOrSeal(pos.Offset)
			return Position{}, fmt.Errorf("wal: sync: %w", err)
		}
	}
	return pos, nil
}

// repairOrSeal drops everything past off from the active segment after a
// failed append; when the repair itself fails the log is sealed (l.f nil),
// so subsequent operations fail loudly instead of appending after garbage.
func (l *Log) repairOrSeal(off int64) {
	err := l.f.Truncate(off)
	if err == nil {
		err = l.f.Sync()
	}
	if err == nil {
		_, err = l.f.Seek(off, io.SeekStart)
	}
	if err != nil {
		l.f.Close()
		l.f = nil
		return
	}
	l.size = off
}

// Sync flushes the active segment to disk — the explicit durability point
// for NoSync logs.
func (l *Log) Sync() error {
	if l.f == nil {
		return fmt.Errorf("wal: log is closed")
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	return nil
}

// TruncateTo retracts the active segment back to pos, erasing the most
// recent append(s). It is the journal's rollback primitive for an operation
// that was recorded but whose application failed: the position must lie in
// the active segment (Append never splits a record across segments, and the
// caller retracts only what it just appended).
func (l *Log) TruncateTo(pos Position) error {
	if l.f == nil {
		return fmt.Errorf("wal: log is closed")
	}
	if pos.Segment != l.seq {
		return fmt.Errorf("wal: truncate targets segment %d but segment %d is active", pos.Segment, l.seq)
	}
	if pos.Offset < 0 || pos.Offset > l.size {
		return fmt.Errorf("wal: truncate offset %d outside the active segment's %d bytes", pos.Offset, l.size)
	}
	if err := truncateSync(l.f, pos.Offset); err != nil {
		return err
	}
	if _, err := l.f.Seek(pos.Offset, io.SeekStart); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.size = pos.Offset
	return nil
}

// Rotate seals the active segment and starts the next one, returning the
// new active sequence. An empty active segment is reused rather than
// rotated away: the returned sequence then equals the current one, which
// keeps back-to-back checkpoints from leaking empty segment files.
func (l *Log) Rotate() (uint64, error) {
	if l.f == nil {
		return 0, fmt.Errorf("wal: log is closed")
	}
	if l.size == 0 {
		return l.seq, nil
	}
	if err := l.f.Sync(); err != nil {
		return 0, fmt.Errorf("wal: sealing segment %d: %w", l.seq, err)
	}
	if err := l.f.Close(); err != nil {
		return 0, fmt.Errorf("wal: sealing segment %d: %w", l.seq, err)
	}
	l.f = nil
	if err := l.createSegment(l.seq + 1); err != nil {
		return 0, err
	}
	return l.seq, nil
}

// RemoveSegmentsBefore deletes every segment with a sequence below seq —
// the compaction step once a snapshot covering them is durable.
func (l *Log) RemoveSegmentsBefore(seq uint64) error {
	kept := l.segs[:0]
	for i, s := range l.segs {
		if s >= seq {
			kept = append(kept, s)
			continue
		}
		if err := os.Remove(l.segmentPath(s)); err != nil && !os.IsNotExist(err) {
			// Keep the listing truthful: this segment and every not-yet
			// visited one (including the active segment) still exist.
			kept = append(kept, l.segs[i:]...)
			l.segs = kept
			return fmt.Errorf("wal: removing segment %d: %w", s, err)
		}
	}
	l.segs = kept
	return syncDir(l.dir)
}

// Replay streams every intact record of the segments with sequence >= from,
// in segment then append order, and returns how many records fn consumed.
// A torn or corrupt frame in a sealed segment is an error; the active
// segment was already repaired by Open, so its records are always intact.
func (l *Log) Replay(from uint64, fn func(payload []byte) error) (int, error) {
	n := 0
	for _, seq := range l.segs {
		if seq < from {
			continue
		}
		records, _, torn, err := scanSegmentRecords(l.segmentPath(seq), fn)
		n += records
		if err != nil {
			return n, err
		}
		if torn && seq != l.seq {
			return n, fmt.Errorf("wal: segment %d is sealed but ends in a torn record", seq)
		}
	}
	return n, nil
}

// Close seals the log and releases the directory lock. Records already
// appended stay durable.
func (l *Log) Close() error {
	var err error
	if l.f != nil {
		err = l.f.Sync()
		if cerr := l.f.Close(); err == nil {
			err = cerr
		}
		l.f = nil
	}
	if l.lock != nil {
		if cerr := l.lock.Close(); err == nil {
			err = cerr
		}
		l.lock = nil
	}
	if err != nil {
		return fmt.Errorf("wal: close: %w", err)
	}
	return nil
}

// createSegment makes seq the empty active segment.
func (l *Log) createSegment(seq uint64) error {
	path := l.segmentPath(seq)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment %d: %w", seq, err)
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f, l.seq, l.size = f, seq, 0
	l.segs = append(l.segs, seq)
	return nil
}

func (l *Log) segmentPath(seq uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf(segFormat, seq))
}

// ListNumberedFiles returns the sequence numbers of the "<prefix><seq
// digits><suffix>" files in dir, ascending. Files whose middle does not
// parse as a positive integer are ignored (foreign files that happen to
// match the shape). Both the log's segment files and the snapshot files of
// the layer above are named this way, so both listings share this routine.
func ListNumberedFiles(dir, prefix, suffix string) ([]uint64, error) {
	names, err := filepath.Glob(filepath.Join(dir, prefix+"*"+suffix))
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var seqs []uint64
	for _, name := range names {
		digits := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(name), prefix), suffix)
		seq, err := strconv.ParseUint(digits, 10, 64)
		if err != nil || seq == 0 {
			continue
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// listSegments returns the segment sequences present in dir, ascending.
func listSegments(dir string) ([]uint64, error) {
	return ListNumberedFiles(dir, "wal-", ".seg")
}

// truncateSync truncates the file and syncs the new length to disk.
func truncateSync(f *os.File, size int64) error {
	if err := f.Truncate(size); err != nil {
		return fmt.Errorf("wal: truncate: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: truncate: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory so entry creation/removal is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: syncing directory: %w", err)
	}
	return nil
}
