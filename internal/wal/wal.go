// Package wal implements the durable storage substrate of the streaming
// resolver: an append-only write-ahead log of CRC-framed records stored in
// size-rotated segment files, fsync'd per append, with ordered replay and
// torn-tail recovery.
//
// Layout. A log directory holds numbered segment files ("wal-%016d.seg",
// sequence numbers ascending from 1). Appends go to the highest-numbered
// (active) segment; once it exceeds Options.SegmentBytes the log rotates to
// a fresh segment. Every record is framed as
//
//	[4-byte little-endian payload length][4-byte CRC32-C of payload][payload]
//
// so replay can detect exactly where a crash tore the tail: a frame whose
// header or payload runs past end-of-file, whose length field is implausible,
// or whose checksum fails marks the end of the intact prefix. Open truncates
// the active segment back to that prefix (torn-tail repair); the same
// condition inside a sealed (non-active) segment is data corruption and
// surfaces as an error from Replay, because sealed segments are only ever
// written through whole, synced appends.
//
// Compaction support. Callers that checkpoint their state into snapshot
// files (see WriteFileAtomic) rotate first, write the snapshot named after
// the new active segment, and then drop the older segments with
// RemoveSegmentsBefore — recovery then replays only the records appended
// after the snapshot, bounding recovery cost by the tail of the stream
// rather than its lifetime.
//
// Group commit. With Options.GroupCommit set, Append is safe for
// concurrent use and the per-append fsyncs of concurrent appenders are
// batched: each appender still returns only after its record is durable —
// the same guarantee as per-append fsync — but one fsync can cover every
// record written before it, so durability stops serializing concurrent
// writers on disk latency. The first appender to need a sync becomes the
// leader, syncs everything written so far, and wakes the batch; appenders
// arriving during the sync form the next batch. See the ROADMAP's group
// commit item and the sharded streaming resolver, whose per-shard WALs
// run in this mode.
//
// Without GroupCommit a Log is not safe for concurrent use; the streaming
// resolver serializes operations.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

const (
	// headerBytes is the fixed frame header: payload length + CRC32-C.
	headerBytes = 8
	// MaxRecordBytes bounds a single record's payload. A length field above
	// it cannot be trusted (it would be read from a torn or corrupt frame)
	// and is treated as the end of the intact prefix.
	MaxRecordBytes = 64 << 20
	// DefaultSegmentBytes is the rotation threshold when Options.SegmentBytes
	// is zero.
	DefaultSegmentBytes = 4 << 20

	segFormat = "wal-%016d.seg"
)

// castagnoli is the CRC32-C polynomial table — hardware-accelerated on
// modern CPUs and the conventional WAL checksum.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options tunes a Log.
type Options struct {
	// SegmentBytes is the size threshold past which the active segment is
	// sealed and a new one started (default DefaultSegmentBytes). A record
	// always lands whole in one segment: rotation happens before the append.
	SegmentBytes int64
	// NoSync skips the fsync after each append. Throughput rises by orders
	// of magnitude, but records acknowledged since the last Sync may be lost
	// on a machine crash (a process crash loses nothing: writes are in the
	// page cache). Meant for tests, benchmarks and workloads that checkpoint
	// explicitly.
	NoSync bool
	// GroupCommit makes Append safe for concurrent use and batches the
	// fsyncs of concurrent appenders into group syncs: every Append still
	// returns only once its record is durable, but one fsync can cover many
	// appenders, so N concurrent writers cost far fewer than N syncs.
	// Durability is therefore >= the per-append-fsync policy at a fraction
	// of the syncs. Ignored when NoSync is set (there is nothing to batch).
	GroupCommit bool
}

// Position addresses a byte offset within one segment — where a record
// begins, as reported by Append.
type Position struct {
	Segment uint64
	Offset  int64
}

// Log is an append-only segmented record log.
type Log struct {
	dir  string
	opts Options

	// mu guards the write-path state below. Non-group-commit logs are
	// owned by one goroutine, so the lock is uncontended there; with
	// GroupCommit it serializes concurrent appenders' frame writes.
	mu   sync.Mutex
	f    *os.File
	lock *os.File // flock'd wal.lock guarding the directory
	seq  uint64   // active segment sequence
	size int64    // active segment byte size
	segs []uint64
	// writeGen numbers appended frames; gen g is durable once a sync that
	// observed writeGen >= g completes (or the frame landed in a segment
	// sealed by rotation, which syncs it).
	writeGen uint64
	// syncedSize is the prefix of the ACTIVE segment known durable — the
	// size a completed group sync observed (reset on rotation). When a
	// group sync fails, the segment is truncated back to it so recovery
	// can never replay a frame whose appender was told it failed.
	syncedSize int64
	// closedSynced marks a log sealed by a successful Close (which syncs
	// first): frames written before it ARE durable, so a group-sync leader
	// racing a concurrent Close must report its batch durable, not failed.
	closedSynced bool

	// Group-commit coordination: gmu guards the generations and the leader
	// flag, gcond wakes batches. groupErr, once set, marks records past
	// syncedGen as lost — the log seals and every waiter fails.
	gmu       sync.Mutex
	gcond     *sync.Cond
	syncedGen uint64
	syncing   bool
	groupErr  error

	// syncs counts the fsyncs the append path has issued — the measure the
	// group-commit regression test compares against the append count.
	syncs atomic.Uint64
	// syncFn, when non-nil, replaces the file fsync (test hook: a slowed
	// sync forces deterministic batching).
	syncFn func(*os.File) error
}

// Open opens (creating if necessary) the log directory, repairs a torn tail
// left in the active segment by a crash, and positions the log for
// appending. Replay the existing records with Replay before appending new
// ones.
//
// The directory is guarded by an advisory flock on a "wal.lock" file: a
// second concurrent Open of the same directory fails loudly instead of the
// two writers truncating and interleaving each other's acknowledged
// records. The kernel releases the lock when the holding process exits, so
// a crash never wedges the directory.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		lock.Close()
		return nil, err
	}
	l := &Log{dir: dir, opts: opts, lock: lock, segs: segs}
	l.gcond = sync.NewCond(&l.gmu)
	fail := func(err error) (*Log, error) {
		lock.Close()
		return nil, err
	}
	if len(segs) == 0 {
		if err := l.createSegment(1); err != nil {
			return fail(err)
		}
		return l, nil
	}
	// Repair the active (highest) segment: truncate everything after the
	// last intact frame. Earlier segments were sealed by rotation and are
	// validated during Replay.
	active := segs[len(segs)-1]
	path := l.segmentPath(active)
	_, good, _, err := scanSegmentRecords(path, nil)
	if err != nil {
		return fail(err)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fail(fmt.Errorf("wal: %w", err))
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fail(fmt.Errorf("wal: %w", err))
	}
	if st.Size() > good {
		if err := truncateSync(f, good); err != nil {
			f.Close()
			return fail(err)
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return fail(fmt.Errorf("wal: %w", err))
	}
	l.f, l.seq, l.size = f, active, good
	// Everything surviving the repair is on disk by construction.
	l.syncedSize = good
	return l, nil
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// ActiveSegment returns the sequence number of the segment appends go to.
func (l *Log) ActiveSegment() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Segments returns the sequence numbers of the on-disk segments, ascending.
func (l *Log) Segments() []uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]uint64, len(l.segs))
	copy(out, l.segs)
	return out
}

// Append frames and durably appends one record, returning the position at
// which it begins (after any rotation). The payload is synced to disk
// before Append returns unless Options.NoSync is set; with
// Options.GroupCommit the sync may be a group sync another appender
// performed, covering this record among others.
func (l *Log) Append(payload []byte) (Position, error) {
	l.mu.Lock()
	if l.f == nil {
		l.mu.Unlock()
		return Position{}, fmt.Errorf("wal: log is closed")
	}
	if len(payload) > MaxRecordBytes {
		l.mu.Unlock()
		return Position{}, fmt.Errorf("wal: record of %d bytes exceeds the %d-byte bound", len(payload), MaxRecordBytes)
	}
	frame := int64(headerBytes + len(payload))
	if l.size > 0 && l.size+frame > l.opts.SegmentBytes {
		if _, err := l.rotateLocked(); err != nil {
			l.mu.Unlock()
			return Position{}, err
		}
	}
	pos := Position{Segment: l.seq, Offset: l.size}
	buf := make([]byte, headerBytes+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	copy(buf[headerBytes:], payload)
	// A failed append must never leave unacknowledged bytes behind: a
	// partial frame would poison the torn-tail scan for every later record,
	// and a whole frame whose error was reported to the caller would replay
	// as an operation that was never acknowledged (for inserts, wedging
	// recovery on a duplicate handle). Repair by truncating back to the
	// record's start; if even that fails the log seals itself — every
	// further operation errors rather than writing after garbage.
	if _, err := l.f.Write(buf); err != nil {
		l.repairOrSeal(pos.Offset)
		l.mu.Unlock()
		return Position{}, fmt.Errorf("wal: append: %w", err)
	}
	l.size += frame
	l.writeGen++
	gen := l.writeGen
	if l.opts.NoSync {
		l.mu.Unlock()
		return pos, nil
	}
	if l.opts.GroupCommit {
		l.mu.Unlock()
		return pos, l.awaitDurable(gen)
	}
	if err := l.doSync(l.f); err != nil {
		l.repairOrSeal(pos.Offset)
		l.mu.Unlock()
		return Position{}, fmt.Errorf("wal: sync: %w", err)
	}
	l.mu.Unlock()
	return pos, nil
}

// awaitDurable blocks until a sync covering write generation gen has
// completed, electing this appender as the group leader when no sync is in
// flight. The leader syncs everything written so far in one fsync and
// wakes the whole batch; appenders that arrive while it runs form the next
// batch. A failed group sync loses every record past the last completed
// sync, so the log seals and all affected waiters fail.
func (l *Log) awaitDurable(gen uint64) error {
	l.gmu.Lock()
	defer l.gmu.Unlock()
	for {
		if l.syncedGen >= gen {
			return nil
		}
		if l.groupErr != nil {
			return l.groupErr
		}
		if l.syncing {
			l.gcond.Wait()
			continue
		}
		l.syncing = true
		l.gmu.Unlock()

		// Capture the active file, its size and the covered generation
		// under the write lock, but run the fsync OUTSIDE it, so the next
		// batch's appenders keep writing their frames while this one syncs
		// — that overlap is where group commit's throughput comes from.
		l.mu.Lock()
		top := l.writeGen
		f, seq, size := l.f, l.seq, l.size
		sealedDurable := l.closedSynced
		l.mu.Unlock()
		var err error
		if f == nil {
			if !sealedDurable {
				err = fmt.Errorf("wal: log is closed")
			}
			// A concurrent Close sealed the log AFTER syncing it, so every
			// frame written before the seal — the whole batch — is durable.
		} else if err = l.doSync(f); err != nil {
			l.mu.Lock()
			if l.seq != seq || (errors.Is(err, os.ErrClosed) && l.closedSynced) {
				// The captured segment was sealed under us — by a rotation
				// (which always syncs before closing) or by a Close whose
				// sync succeeded — so every byte in it, the whole batch,
				// is already durable. A Close whose sync FAILED leaves
				// closedSynced unset and the batch is reported failed.
				err = nil
			} else {
				// The batch's unsynced frames may or may not have reached
				// disk, and their appenders are about to be told they
				// failed: truncate the active segment back to the durable
				// prefix so recovery can never replay an unacknowledged
				// record, then seal the log.
				if l.f != nil {
					l.f.Truncate(l.syncedSize)
					l.f.Sync()
					l.f.Close()
					l.f = nil
					l.size = l.syncedSize
				}
				err = fmt.Errorf("wal: group sync: %w", err)
			}
			l.mu.Unlock()
		}
		if err == nil {
			l.mu.Lock()
			if l.seq == seq && l.syncedSize < size {
				l.syncedSize = size
			}
			l.mu.Unlock()
		}

		l.gmu.Lock()
		l.syncing = false
		if err != nil {
			l.groupErr = err
		} else if l.syncedGen < top {
			// Never regress: a rotation racing this sync may already have
			// advanced the coverage past top (it seals and syncs frames
			// this leader never saw).
			l.syncedGen = top
		}
		l.gcond.Broadcast()
	}
}

// doSync flushes f through the configured sync function, counting the
// append-path fsync.
func (l *Log) doSync(f *os.File) error {
	l.syncs.Add(1)
	if l.syncFn != nil {
		return l.syncFn(f)
	}
	return f.Sync()
}

// Syncs returns how many fsyncs the append path has issued so far — with
// group commit, the number of group syncs, which concurrent appenders keep
// well below the append count.
func (l *Log) Syncs() uint64 { return l.syncs.Load() }

// repairOrSeal drops everything past off from the active segment after a
// failed append; when the repair itself fails the log is sealed (l.f nil),
// so subsequent operations fail loudly instead of appending after garbage.
func (l *Log) repairOrSeal(off int64) {
	err := l.f.Truncate(off)
	if err == nil {
		err = l.f.Sync()
	}
	if err == nil {
		_, err = l.f.Seek(off, io.SeekStart)
	}
	if err != nil {
		l.f.Close()
		l.f = nil
		return
	}
	l.size = off
}

// Sync flushes the active segment to disk — the explicit durability point
// for NoSync logs.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("wal: log is closed")
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	return nil
}

// TruncateTo retracts the active segment back to pos, erasing the most
// recent append(s). It is the journal's rollback primitive for an operation
// that was recorded but whose application failed: the position must lie in
// the active segment (Append never splits a record across segments, and the
// caller retracts only what it just appended).
func (l *Log) TruncateTo(pos Position) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("wal: log is closed")
	}
	if pos.Segment != l.seq {
		return fmt.Errorf("wal: truncate targets segment %d but segment %d is active", pos.Segment, l.seq)
	}
	if pos.Offset < 0 || pos.Offset > l.size {
		return fmt.Errorf("wal: truncate offset %d outside the active segment's %d bytes", pos.Offset, l.size)
	}
	if err := truncateSync(l.f, pos.Offset); err != nil {
		return err
	}
	if _, err := l.f.Seek(pos.Offset, io.SeekStart); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.size = pos.Offset
	if l.syncedSize > pos.Offset {
		l.syncedSize = pos.Offset
	}
	return nil
}

// Rotate seals the active segment and starts the next one, returning the
// new active sequence. An empty active segment is reused rather than
// rotated away: the returned sequence then equals the current one, which
// keeps back-to-back checkpoints from leaking empty segment files.
func (l *Log) Rotate() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rotateLocked()
}

// rotateLocked is Rotate with l.mu held (Append rotates at the segment
// boundary from inside its critical section). Sealing syncs the outgoing
// segment, so every record it holds is durable regardless of sync policy —
// which is what lets a group-sync leader cover only the active segment.
func (l *Log) rotateLocked() (uint64, error) {
	if l.f == nil {
		return 0, fmt.Errorf("wal: log is closed")
	}
	if l.size == 0 {
		return l.seq, nil
	}
	if err := l.f.Sync(); err != nil {
		return 0, fmt.Errorf("wal: sealing segment %d: %w", l.seq, err)
	}
	if err := l.f.Close(); err != nil {
		return 0, fmt.Errorf("wal: sealing segment %d: %w", l.seq, err)
	}
	l.f = nil
	if err := l.createSegment(l.seq + 1); err != nil {
		return 0, err
	}
	// Every frame written so far now lives in a sealed, synced segment:
	// advance the group-sync coverage so a waiter whose frame rotated away
	// returns success even if a LATER sync on the new segment fails — its
	// record is durable and will replay, so it must never be reported
	// failed.
	if l.opts.GroupCommit {
		sealed := l.writeGen
		l.gmu.Lock()
		if l.syncedGen < sealed {
			l.syncedGen = sealed
			l.gcond.Broadcast()
		}
		l.gmu.Unlock()
	}
	return l.seq, nil
}

// RemoveSegmentsBefore deletes every segment with a sequence below seq —
// the compaction step once a snapshot covering them is durable.
func (l *Log) RemoveSegmentsBefore(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	kept := l.segs[:0]
	for i, s := range l.segs {
		if s >= seq {
			kept = append(kept, s)
			continue
		}
		if err := os.Remove(l.segmentPath(s)); err != nil && !os.IsNotExist(err) {
			// Keep the listing truthful: this segment and every not-yet
			// visited one (including the active segment) still exist.
			kept = append(kept, l.segs[i:]...)
			l.segs = kept
			return fmt.Errorf("wal: removing segment %d: %w", s, err)
		}
	}
	l.segs = kept
	return syncDir(l.dir)
}

// Replay streams every intact record of the segments with sequence >= from,
// in segment then append order, and returns how many records fn consumed.
// A torn or corrupt frame in a sealed segment is an error; the active
// segment was already repaired by Open, so its records are always intact.
func (l *Log) Replay(from uint64, fn func(payload []byte) error) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, seq := range l.segs {
		if seq < from {
			continue
		}
		records, _, torn, err := scanSegmentRecords(l.segmentPath(seq), fn)
		n += records
		if err != nil {
			return n, err
		}
		if torn && seq != l.seq {
			return n, fmt.Errorf("wal: segment %d is sealed but ends in a torn record", seq)
		}
	}
	return n, nil
}

// Close seals the log and releases the directory lock. Records already
// appended stay durable.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	var err error
	if l.f != nil {
		err = l.f.Sync()
		if err == nil {
			// The seal flushed everything: a group-commit appender racing
			// this Close finds its batch durable rather than failed.
			l.closedSynced = true
		} else if l.opts.GroupCommit && !l.opts.NoSync {
			// Close's sync failed, so in-flight group-commit appenders
			// will be told their records failed: truncate past the durable
			// prefix before sealing, mirroring the failed-group-sync path,
			// so reopen never replays an unacknowledged frame. (Fault
			// injection only — unreachable while appends and Close are
			// serialized by the resolver.)
			l.f.Truncate(l.syncedSize)
			l.f.Sync()
			l.size = l.syncedSize
		}
		if cerr := l.f.Close(); err == nil {
			err = cerr
		}
		l.f = nil
	}
	if l.lock != nil {
		if cerr := l.lock.Close(); err == nil {
			err = cerr
		}
		l.lock = nil
	}
	if err != nil {
		return fmt.Errorf("wal: close: %w", err)
	}
	return nil
}

// createSegment makes seq the empty active segment.
func (l *Log) createSegment(seq uint64) error {
	path := l.segmentPath(seq)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment %d: %w", seq, err)
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f, l.seq, l.size = f, seq, 0
	l.syncedSize = 0
	l.segs = append(l.segs, seq)
	return nil
}

func (l *Log) segmentPath(seq uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf(segFormat, seq))
}

// ListNumberedFiles returns the sequence numbers of the "<prefix><seq
// digits><suffix>" files in dir, ascending. Files whose middle does not
// parse as a positive integer are ignored (foreign files that happen to
// match the shape). Both the log's segment files and the snapshot files of
// the layer above are named this way, so both listings share this routine.
func ListNumberedFiles(dir, prefix, suffix string) ([]uint64, error) {
	names, err := filepath.Glob(filepath.Join(dir, prefix+"*"+suffix))
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var seqs []uint64
	for _, name := range names {
		digits := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(name), prefix), suffix)
		seq, err := strconv.ParseUint(digits, 10, 64)
		if err != nil || seq == 0 {
			continue
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// listSegments returns the segment sequences present in dir, ascending.
func listSegments(dir string) ([]uint64, error) {
	return ListNumberedFiles(dir, "wal-", ".seg")
}

// truncateSync truncates the file and syncs the new length to disk.
func truncateSync(f *os.File, size int64) error {
	if err := f.Truncate(size); err != nil {
		return fmt.Errorf("wal: truncate: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: truncate: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory so entry creation/removal is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: syncing directory: %w", err)
	}
	return nil
}
