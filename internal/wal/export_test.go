package wal

import "os"

// SetSyncFn replaces the append-path fsync — the group-commit tests slow
// it down so concurrent appenders deterministically pile into one batch,
// and fail it to exercise the seal-on-group-sync-failure path.
func (l *Log) SetSyncFn(fn func(*os.File) error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.syncFn = fn
}
