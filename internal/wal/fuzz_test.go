package wal_test

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"entityres/internal/wal"
)

// frame builds one valid CRC32-C frame around payload.
func frame(payload []byte) []byte {
	buf := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli)))
	copy(buf[8:], payload)
	return buf
}

// FuzzSegmentRecords feeds arbitrary bytes to the WAL as segment content.
// Whatever the corruption — torn headers, implausible length fields,
// checksum mismatches, garbage after valid frames — Open and Replay must
// never panic: an active segment is repaired back to its intact prefix
// (and must accept appends afterwards), a sealed segment surfaces a
// sealed-segment corruption error at worst.
func FuzzSegmentRecords(f *testing.F) {
	f.Add([]byte{})
	f.Add(frame([]byte("one record")))
	f.Add(append(frame([]byte("a")), frame([]byte("b"))...))
	// Torn header, torn payload, and a header announcing more than is there.
	f.Add([]byte{7, 0, 0})
	f.Add(append(frame([]byte("intact")), 100, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, '{', 'o'))
	f.Add([]byte{255, 255, 255, 255, 1, 2, 3, 4, 5})
	// Checksum mismatch: a valid-shaped frame with a flipped payload byte.
	bad := frame([]byte("flip me"))
	bad[len(bad)-1] ^= 0xff
	f.Add(bad)
	// A frame whose length field exceeds MaxRecordBytes.
	huge := make([]byte, 12)
	binary.LittleEndian.PutUint32(huge[0:4], uint32(wal.MaxRecordBytes+1))
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Case 1: the bytes are the ACTIVE (highest) segment. Open repairs
		// the torn tail; replay must list only intact records and appending
		// after repair must work.
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "wal-0000000000000001.seg"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := wal.Open(dir, wal.Options{NoSync: true})
		if err == nil {
			if _, err := l.Replay(0, func(p []byte) error { return nil }); err != nil {
				t.Errorf("replay of a repaired active segment failed: %v", err)
			}
			if _, err := l.Append([]byte("post-repair")); err != nil {
				t.Errorf("append after torn-tail repair failed: %v", err)
			}
			l.Close()
		}

		// Case 2: the bytes are a SEALED segment (a later segment exists).
		// Open must not panic; a torn or corrupt frame must surface as a
		// sealed-segment error from Replay, never a panic.
		dir2 := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir2, "wal-0000000000000001.seg"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir2, "wal-0000000000000002.seg"), frame([]byte("tail")), 0o644); err != nil {
			t.Fatal(err)
		}
		l2, err := wal.Open(dir2, wal.Options{NoSync: true})
		if err == nil {
			_, _ = l2.Replay(0, func(p []byte) error { return nil })
			l2.Close()
		}
	})
}
