package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Snapshot is a CRC-framed state blob in the WAL's single-record frame
// format — the same bytes WriteFileAtomic puts on disk, usable as an
// in-memory value. It is the exchange form of a full state transfer: a
// networked shard bootstraps from a Snapshot shipped over the wire instead
// of a snapshot file read from a shared filesystem, with the identical
// integrity check on arrival.
type Snapshot []byte

// EncodeFramed frames payload as a Snapshot: length, CRC32-C, payload —
// byte-for-byte the file content WriteFileAtomic would produce.
func EncodeFramed(payload []byte) (Snapshot, error) {
	if len(payload) > MaxRecordBytes {
		return nil, fmt.Errorf("wal: snapshot of %d bytes exceeds the %d-byte bound", len(payload), MaxRecordBytes)
	}
	buf := make([]byte, headerBytes+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	copy(buf[headerBytes:], payload)
	return Snapshot(buf), nil
}

// DecodeFramed validates a Snapshot's frame — length field, checksum, no
// trailing bytes — and returns its payload. The payload aliases the
// Snapshot's backing array.
func DecodeFramed(s Snapshot) ([]byte, error) {
	if len(s) < headerBytes {
		return nil, fmt.Errorf("wal: snapshot: truncated frame header")
	}
	length := binary.LittleEndian.Uint32(s[0:4])
	sum := binary.LittleEndian.Uint32(s[4:8])
	payload := []byte(s[headerBytes:])
	if int(length) != len(payload) {
		return nil, fmt.Errorf("wal: snapshot frame claims %d payload bytes, blob holds %d", length, len(payload))
	}
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, fmt.Errorf("wal: snapshot checksum mismatch")
	}
	return payload, nil
}
