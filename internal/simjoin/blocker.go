package simjoin

import (
	"fmt"

	"entityres/internal/blocking"
	"entityres/internal/entity"
	"entityres/internal/token"
)

// Blocking adapts the similarity join to the Blocker interface: every
// joined pair becomes a two-description block, so downstream matching only
// examines pairs whose token Jaccard already reaches the threshold. This is
// the "similarity join as blocking" usage described in §II of the paper.
type Blocking struct {
	// Threshold is the Jaccard join threshold in (0,1] (default 0.3 — low,
	// because blocking must preserve recall).
	Threshold float64
	// Positional enables the PPJoin positional filter.
	Positional bool
	// Profiler controls tokenization; nil means token.DefaultProfiler.
	Profiler *token.Profiler
}

// Name implements blocking.Blocker.
func (sb *Blocking) Name() string { return "simjoin" }

// Block implements blocking.Blocker.
func (sb *Blocking) Block(c *entity.Collection) (*blocking.Blocks, error) {
	th := sb.Threshold
	if th == 0 {
		th = 0.3
	}
	p := sb.Profiler
	if p == nil {
		p = token.DefaultProfiler()
	}
	inputs := make([]Input, 0, c.Len())
	for _, d := range c.All() {
		inputs = append(inputs, Input{ID: d.ID, Source: d.Source, Tokens: p.Tokens(d)})
	}
	results, err := Jaccard(inputs, th, Options{
		Positional: sb.Positional,
		CrossOnly:  c.Kind() == entity.CleanClean,
	})
	if err != nil {
		return nil, err
	}
	bs := blocking.NewBlocks(c.Kind())
	for _, r := range results {
		b := &blocking.Block{Key: fmt.Sprintf("sj:%d-%d", r.Pair.A, r.Pair.B)}
		for _, id := range []entity.ID{r.Pair.A, r.Pair.B} {
			if c.Get(id).Source == 1 {
				b.S1 = append(b.S1, id)
			} else {
				b.S0 = append(b.S0, id)
			}
		}
		bs.Add(b)
	}
	return bs, nil
}
