// Package simjoin implements string-similarity joins as a blocking device
// (§II of the paper, after [5] and [28]): find all pairs of token records
// whose Jaccard similarity reaches a threshold, without comparing all
// pairs. The implementation is the AllPairs/PPJoin family: tokens are
// canonically ordered by ascending document frequency, only the short
// prefix of each record is indexed and probed (prefix filter), candidates
// violating the length filter are skipped, and the optional positional
// filter (PPJoin proper) prunes candidates whose remaining suffixes cannot
// reach the required overlap.
package simjoin

import (
	"fmt"
	"math"
	"sort"

	"entityres/internal/entity"
)

// Input is one record to join: a description ID, its source (used when
// joining clean-clean collections) and its raw token set.
type Input struct {
	ID     entity.ID
	Source int
	Tokens []string
}

// Result is one joined pair with its exact Jaccard similarity (≥ the join
// threshold).
type Result struct {
	Pair entity.Pair
	Sim  float64
}

// Options tunes the join.
type Options struct {
	// Positional enables the PPJoin positional filter on top of the prefix
	// and length filters of AllPairs.
	Positional bool
	// CrossOnly keeps only pairs whose inputs have different Source values
	// (clean-clean joins).
	CrossOnly bool
}

// Jaccard runs the self-join: every pair of inputs with Jaccard similarity
// ≥ threshold is returned, sorted by (Pair.A, Pair.B). The threshold must
// be in (0, 1].
func Jaccard(inputs []Input, threshold float64, opts Options) ([]Result, error) {
	if threshold <= 0 || threshold > 1 {
		return nil, fmt.Errorf("simjoin: threshold %v outside (0,1]", threshold)
	}
	recs := canonicalize(inputs)
	// Ascending size order: when r probes the index, every indexed record
	// s satisfies |s| ≤ |r|, so the length filter is one-sided.
	sort.Slice(recs, func(i, j int) bool {
		if len(recs[i].tokens) != len(recs[j].tokens) {
			return len(recs[i].tokens) < len(recs[j].tokens)
		}
		return recs[i].id < recs[j].id
	})
	type post struct {
		rec int // index into recs
		pos int // token position within the record prefix
	}
	index := make(map[int][]post)
	var out []Result
	overlap := make(map[int]int) // candidate rec → accumulated prefix overlap
	pruned := make(map[int]bool)
	for ri, r := range recs {
		lr := len(r.tokens)
		if lr == 0 {
			continue
		}
		clear(overlap)
		clear(pruned)
		minLen := int(math.Ceil(threshold*float64(lr) - 1e-9))
		prefix := lr - int(math.Ceil(threshold*float64(lr)-1e-9)) + 1
		for i := 0; i < prefix; i++ {
			tok := r.tokens[i]
			for _, p := range index[tok] {
				s := recs[p.rec]
				ls := len(s.tokens)
				if ls < minLen {
					continue // length filter
				}
				if pruned[p.rec] {
					continue
				}
				if opts.Positional {
					// α is the overlap needed for Jaccard ≥ t.
					alpha := int(math.Ceil(threshold/(1+threshold)*float64(lr+ls) - 1e-9))
					ubound := 1 + min(lr-1-i, ls-1-p.pos)
					if overlap[p.rec]+ubound < alpha {
						pruned[p.rec] = true
						continue
					}
				}
				overlap[p.rec]++
			}
			index[tok] = append(index[tok], post{rec: ri, pos: i})
		}
		for cand := range overlap {
			if pruned[cand] {
				continue
			}
			s := recs[cand]
			if opts.CrossOnly && s.source == r.source {
				continue
			}
			sim := jaccardSortedInts(r.tokens, s.tokens)
			if sim+1e-12 >= threshold {
				out = append(out, Result{Pair: entity.NewPair(r.id, s.id), Sim: sim})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pair.A != out[j].Pair.A {
			return out[i].Pair.A < out[j].Pair.A
		}
		return out[i].Pair.B < out[j].Pair.B
	})
	return out, nil
}

// rec is a canonicalized record: distinct tokens as integer ranks sorted
// ascending, where rank order is (document frequency asc, token asc).
type rec struct {
	id     entity.ID
	source int
	tokens []int
}

// canonicalize computes global token ranks by ascending document frequency
// and rewrites every record as a sorted rank slice. Rare-first ordering
// makes prefixes maximally selective.
func canonicalize(inputs []Input) []rec {
	df := make(map[string]int)
	for _, in := range inputs {
		seen := make(map[string]struct{}, len(in.Tokens))
		for _, t := range in.Tokens {
			if _, dup := seen[t]; !dup {
				seen[t] = struct{}{}
				df[t]++
			}
		}
	}
	toks := make([]string, 0, len(df))
	for t := range df {
		toks = append(toks, t)
	}
	sort.Slice(toks, func(i, j int) bool {
		if df[toks[i]] != df[toks[j]] {
			return df[toks[i]] < df[toks[j]]
		}
		return toks[i] < toks[j]
	})
	rank := make(map[string]int, len(toks))
	for i, t := range toks {
		rank[t] = i
	}
	recs := make([]rec, 0, len(inputs))
	for _, in := range inputs {
		seen := make(map[string]struct{}, len(in.Tokens))
		r := rec{id: in.ID, source: in.Source}
		for _, t := range in.Tokens {
			if _, dup := seen[t]; !dup {
				seen[t] = struct{}{}
				r.tokens = append(r.tokens, rank[t])
			}
		}
		sort.Ints(r.tokens)
		recs = append(recs, r)
	}
	return recs
}

func jaccardSortedInts(a, b []int) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	i, j, inter := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// BruteForce computes the exact join by comparing all pairs; the oracle for
// tests and the baseline for experiment E5.
func BruteForce(inputs []Input, threshold float64, crossOnly bool) []Result {
	recs := canonicalize(inputs)
	var out []Result
	for i := 0; i < len(recs); i++ {
		for j := i + 1; j < len(recs); j++ {
			if crossOnly && recs[i].source == recs[j].source {
				continue
			}
			sim := jaccardSortedInts(recs[i].tokens, recs[j].tokens)
			if sim+1e-12 >= threshold {
				out = append(out, Result{Pair: entity.NewPair(recs[i].id, recs[j].id), Sim: sim})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pair.A != out[j].Pair.A {
			return out[i].Pair.A < out[j].Pair.A
		}
		return out[i].Pair.B < out[j].Pair.B
	})
	return out
}
