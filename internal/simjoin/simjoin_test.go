package simjoin

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"entityres/internal/entity"
)

func inputsFrom(tokenLists ...[]string) []Input {
	out := make([]Input, len(tokenLists))
	for i, ts := range tokenLists {
		out[i] = Input{ID: i, Tokens: ts}
	}
	return out
}

func TestJaccardJoinSimple(t *testing.T) {
	inputs := inputsFrom(
		[]string{"a", "b", "c"},
		[]string{"a", "b", "d"}, // sim 0.5 with rec 0
		[]string{"x", "y", "z"},
	)
	got, err := Jaccard(inputs, 0.5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Pair != entity.NewPair(0, 1) {
		t.Fatalf("join results = %v", got)
	}
	if got[0].Sim != 0.5 {
		t.Fatalf("sim = %v", got[0].Sim)
	}
}

func TestJaccardJoinThresholdValidation(t *testing.T) {
	for _, th := range []float64{0, -0.5, 1.5} {
		if _, err := Jaccard(nil, th, Options{}); err == nil {
			t.Fatalf("threshold %v accepted", th)
		}
	}
}

func TestJaccardJoinIdentical(t *testing.T) {
	inputs := inputsFrom([]string{"p", "q"}, []string{"q", "p", "p"})
	got, err := Jaccard(inputs, 1.0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Sim != 1 {
		t.Fatalf("identical join = %v", got)
	}
}

func TestJaccardJoinEmptyRecords(t *testing.T) {
	inputs := inputsFrom(nil, []string{"a"})
	got, err := Jaccard(inputs, 0.5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty record joined: %v", got)
	}
}

func TestCrossOnly(t *testing.T) {
	inputs := []Input{
		{ID: 0, Source: 0, Tokens: []string{"a", "b"}},
		{ID: 1, Source: 0, Tokens: []string{"a", "b"}},
		{ID: 2, Source: 1, Tokens: []string{"a", "b"}},
	}
	got, err := Jaccard(inputs, 0.9, Options{CrossOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range got {
		if (r.Pair.A == 0 && r.Pair.B == 1) || (r.Pair.A == 1 && r.Pair.B == 0) {
			t.Fatalf("same-source pair emitted: %v", r)
		}
	}
	if len(got) != 2 {
		t.Fatalf("cross pairs = %v", got)
	}
}

// randomInputs generates records over a small vocabulary so overlaps are
// frequent.
func randomInputs(rng *rand.Rand, n int) []Input {
	vocab := make([]string, 12)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("t%02d", i)
	}
	inputs := make([]Input, n)
	for i := range inputs {
		sz := 1 + rng.Intn(6)
		toks := make([]string, 0, sz)
		for j := 0; j < sz; j++ {
			toks = append(toks, vocab[rng.Intn(len(vocab))])
		}
		inputs[i] = Input{ID: i, Source: rng.Intn(2), Tokens: toks}
	}
	return inputs
}

// Property: the filtered join (with and without positional filter) returns
// exactly the brute-force result set at several thresholds.
func TestJoinMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inputs := randomInputs(rng, 25)
		for _, th := range []float64{0.3, 0.5, 0.8, 1.0} {
			want := BruteForce(inputs, th, false)
			for _, positional := range []bool{false, true} {
				got, err := Jaccard(inputs, th, Options{Positional: positional})
				if err != nil || !reflect.DeepEqual(got, want) {
					t.Logf("seed=%d th=%v pos=%v got=%v want=%v", seed, th, positional, got, want)
					return false
				}
			}
			// Cross-only agreement too.
			wantX := BruteForce(inputs, th, true)
			gotX, err := Jaccard(inputs, th, Options{CrossOnly: true})
			if err != nil || !reflect.DeepEqual(gotX, wantX) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockingAdapter(t *testing.T) {
	c := entity.NewCollection(entity.Dirty)
	c.MustAdd(entity.NewDescription("").Add("n", "alpha beta gamma"))
	c.MustAdd(entity.NewDescription("").Add("n", "alpha beta delta"))
	c.MustAdd(entity.NewDescription("").Add("n", "omega psi chi"))
	bs, err := (&Blocking{Threshold: 0.5}).Block(c)
	if err != nil {
		t.Fatal(err)
	}
	if bs.Len() != 1 {
		t.Fatalf("blocks = %d", bs.Len())
	}
	b := bs.Get(0)
	if len(b.S0) != 2 {
		t.Fatalf("block members = %v", b.S0)
	}
}

func TestBlockingAdapterCleanClean(t *testing.T) {
	c := entity.NewCollection(entity.CleanClean)
	c.MustAdd(entity.NewDescription("").Add("n", "alpha beta"))
	d := entity.NewDescription("").Add("n", "alpha beta")
	d.Source = 1
	c.MustAdd(d)
	e := entity.NewDescription("").Add("n", "alpha beta")
	c.MustAdd(e) // same source as first: must not pair
	bs, err := (&Blocking{Threshold: 0.9}).Block(c)
	if err != nil {
		t.Fatal(err)
	}
	pairs := bs.DistinctPairs()
	if pairs.Contains(0, 2) {
		t.Fatal("same-source pair blocked")
	}
	if !pairs.Contains(0, 1) || !pairs.Contains(1, 2) {
		t.Fatal("cross-source pairs missing")
	}
}

func TestBlockerName(t *testing.T) {
	if (&Blocking{}).Name() != "simjoin" {
		t.Fatal("name")
	}
}
