package evaluation

import (
	"math"
	"strings"
	"testing"

	"entityres/internal/blocking"
	"entityres/internal/entity"
)

func TestEvaluateBlocking(t *testing.T) {
	c := entity.NewCollection(entity.Dirty)
	for i := 0; i < 6; i++ {
		c.MustAdd(entity.NewDescription(""))
	}
	gt := entity.NewMatches()
	gt.Add(0, 1)
	gt.Add(2, 3)
	bs := blocking.NewBlocks(entity.Dirty)
	bs.Add(&blocking.Block{Key: "a", S0: []entity.ID{0, 1, 4}}) // finds (0,1), 3 comparisons
	bs.Add(&blocking.Block{Key: "b", S0: []entity.ID{0, 1}})    // redundant
	m := EvaluateBlocking(c, bs, gt)
	if m.PC != 0.5 {
		t.Fatalf("PC = %v", m.PC)
	}
	if m.Distinct != 3 || m.Total != 4 {
		t.Fatalf("distinct=%d total=%d", m.Distinct, m.Total)
	}
	if math.Abs(m.PQ-1.0/3.0) > 1e-12 {
		t.Fatalf("PQ = %v", m.PQ)
	}
	// RR = 1 - 3/15.
	if math.Abs(m.RR-0.8) > 1e-12 {
		t.Fatalf("RR = %v", m.RR)
	}
	if !strings.Contains(m.String(), "PC=0.5000") {
		t.Fatalf("String = %q", m.String())
	}
}

func TestEvaluateBlockingEmptyGT(t *testing.T) {
	c := entity.NewCollection(entity.Dirty)
	c.MustAdd(entity.NewDescription(""))
	c.MustAdd(entity.NewDescription(""))
	bs := blocking.NewBlocks(entity.Dirty)
	m := EvaluateBlocking(c, bs, entity.NewMatches())
	if m.PC != 0 || m.PQ != 0 || m.RR != 1 {
		t.Fatalf("empty metrics = %+v", m)
	}
}

func TestComparePairs(t *testing.T) {
	gt := entity.NewMatches()
	gt.Add(1, 2)
	gt.Add(3, 4)
	gt.Add(5, 6)
	found := entity.NewMatches()
	found.Add(1, 2) // tp
	found.Add(3, 4) // tp
	found.Add(7, 8) // fp
	prf := ComparePairs(found, gt)
	if prf.TruePositives != 2 || prf.FalsePositives != 1 || prf.FalseNegatives != 1 {
		t.Fatalf("counts = %+v", prf)
	}
	if math.Abs(prf.Precision-2.0/3.0) > 1e-12 || math.Abs(prf.Recall-2.0/3.0) > 1e-12 {
		t.Fatalf("P/R = %v/%v", prf.Precision, prf.Recall)
	}
	if math.Abs(prf.F1-2.0/3.0) > 1e-12 {
		t.Fatalf("F1 = %v", prf.F1)
	}
	if !strings.Contains(prf.String(), "tp=2") {
		t.Fatalf("String = %q", prf.String())
	}
	zero := ComparePairs(entity.NewMatches(), gt)
	if zero.Precision != 0 || zero.Recall != 0 || zero.F1 != 0 {
		t.Fatalf("zero = %+v", zero)
	}
}

func TestCurve(t *testing.T) {
	c := Curve{{10, 0.2}, {20, 0.5}, {40, 0.9}}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := c.RecallAt(25); got != 0.5 {
		t.Fatalf("RecallAt(25) = %v", got)
	}
	if got := c.RecallAt(5); got != 0 {
		t.Fatalf("RecallAt(5) = %v", got)
	}
	if got := c.RecallAt(100); got != 0.9 {
		t.Fatalf("RecallAt(100) = %v", got)
	}
	// AUC over [0,40]: 10*0 + 10*0.2 + 20*0.5 = 12 → /40 = 0.3.
	if got := c.AUC(40); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("AUC = %v", got)
	}
	if got := c.AUC(0); got != 0 {
		t.Fatal("AUC with no budget should be 0")
	}
	if c.Final().Recall != 0.9 {
		t.Fatalf("Final = %+v", c.Final())
	}
	if (Curve{}).Final() != (CurvePoint{}) {
		t.Fatal("empty Final")
	}
	bad := Curve{{10, 0.5}, {5, 0.6}}
	if bad.Validate() == nil {
		t.Fatal("non-monotone curve validated")
	}
	bad2 := Curve{{10, 0.5}, {20, 0.4}}
	if bad2.Validate() == nil {
		t.Fatal("recall regression validated")
	}
}

func TestHarmonicMean(t *testing.T) {
	if HarmonicMean(0, 0) != 0 {
		t.Fatal("hm(0,0)")
	}
	if got := HarmonicMean(1, 1); got != 1 {
		t.Fatalf("hm(1,1) = %v", got)
	}
	if got := HarmonicMean(0.2, 0.8); math.Abs(got-0.32) > 1e-12 {
		t.Fatalf("hm = %v", got)
	}
}

func TestFitSlope(t *testing.T) {
	// y = x² → slope 2 in log-log.
	xs := []float64{10, 100, 1000}
	ys := []float64{100, 10000, 1000000}
	if got := FitSlope(xs, ys); math.Abs(got-2) > 1e-9 {
		t.Fatalf("slope = %v", got)
	}
	// y = 3x → slope 1.
	ys2 := []float64{30, 300, 3000}
	if got := FitSlope(xs, ys2); math.Abs(got-1) > 1e-9 {
		t.Fatalf("slope = %v", got)
	}
	if FitSlope([]float64{1}, []float64{1}) != 0 {
		t.Fatal("underdetermined slope should be 0")
	}
	if FitSlope([]float64{0, 0}, []float64{1, 1}) != 0 {
		t.Fatal("non-positive xs should be ignored")
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("demo", "col1", "col2")
	tb.AddRow("x", 0.5)
	tb.AddRow(3, "y")
	var sb strings.Builder
	if err := tb.Fprint(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"== demo ==", "col1", "0.5000", "y"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}
