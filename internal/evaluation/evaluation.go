// Package evaluation implements the quality and efficiency metrics used
// throughout the blocking and entity-resolution literature the paper
// surveys: pair completeness (PC), pairs quality (PQ) and reduction ratio
// (RR) for blocking collections; precision/recall/F1 for match output; and
// progressive recall curves with normalized area-under-curve for
// budget-bounded (progressive) resolution.
package evaluation

import (
	"fmt"
	"math"

	"entityres/internal/blocking"
	"entityres/internal/entity"
)

// BlockingMetrics summarizes the quality of a blocking collection against
// ground truth.
type BlockingMetrics struct {
	// PC (pair completeness) is the fraction of ground-truth matches whose
	// pair is suggested by some block — the recall ceiling of any matcher
	// running after this blocking.
	PC float64
	// PQ (pairs quality) is the fraction of distinct suggested comparisons
	// that are matches — blocking precision.
	PQ float64
	// RR (reduction ratio) is 1 − distinct comparisons / exhaustive
	// comparisons.
	RR float64
	// Distinct is the number of distinct suggested comparisons.
	Distinct int64
	// Total is the number of suggested comparisons counting redundancy.
	Total int64
	// Blocks is the number of blocks.
	Blocks int
}

// String renders the metrics compactly for tables.
func (m BlockingMetrics) String() string {
	return fmt.Sprintf("PC=%.4f PQ=%.4f RR=%.4f comparisons=%d blocks=%d",
		m.PC, m.PQ, m.RR, m.Distinct, m.Blocks)
}

// EvaluateBlocking measures bs against the ground truth over collection c.
func EvaluateBlocking(c *entity.Collection, bs *blocking.Blocks, gt *entity.Matches) BlockingMetrics {
	m := BlockingMetrics{Blocks: bs.Len(), Total: bs.TotalComparisons()}
	found := 0
	var distinct int64
	bs.EachDistinctComparison(func(p entity.Pair) bool {
		distinct++
		if gt.Contains(p.A, p.B) {
			found++
		}
		return true
	})
	m.Distinct = distinct
	if gt.Len() > 0 {
		m.PC = float64(found) / float64(gt.Len())
	}
	if distinct > 0 {
		m.PQ = float64(found) / float64(distinct)
	}
	if total := c.TotalComparisons(); total > 0 {
		m.RR = 1 - float64(distinct)/float64(total)
		if m.RR < 0 {
			m.RR = 0
		}
	}
	return m
}

// PRF is precision / recall / F1 of a match output against ground truth.
type PRF struct {
	Precision float64
	Recall    float64
	F1        float64
	// TruePositives, FalsePositives, FalseNegatives are the raw counts.
	TruePositives  int
	FalsePositives int
	FalseNegatives int
}

// String renders the metrics compactly for tables.
func (p PRF) String() string {
	return fmt.Sprintf("P=%.4f R=%.4f F1=%.4f (tp=%d fp=%d fn=%d)",
		p.Precision, p.Recall, p.F1, p.TruePositives, p.FalsePositives, p.FalseNegatives)
}

// ComparePairs scores found pairs against ground-truth pairs. Both sides
// are compared as-is; callers that treat resolution output as an
// equivalence relation should pass found.Closure() explicitly.
func ComparePairs(found, gt *entity.Matches) PRF {
	var out PRF
	found.Each(func(p entity.Pair) bool {
		if gt.Contains(p.A, p.B) {
			out.TruePositives++
		} else {
			out.FalsePositives++
		}
		return true
	})
	out.FalseNegatives = gt.Len() - out.TruePositives
	if tp := float64(out.TruePositives); tp > 0 {
		out.Precision = tp / float64(out.TruePositives+out.FalsePositives)
		out.Recall = tp / float64(gt.Len())
		out.F1 = 2 * out.Precision * out.Recall / (out.Precision + out.Recall)
	}
	return out
}

// CurvePoint is one sample of a progressive recall curve.
type CurvePoint struct {
	// Comparisons executed so far.
	Comparisons int64
	// Recall achieved so far (fraction of ground truth found).
	Recall float64
}

// Curve is a progressive recall curve: recall as a function of executed
// comparisons, non-decreasing in both coordinates.
type Curve []CurvePoint

// RecallAt returns the recall achieved within the given comparison budget
// (the last sample at or below it).
func (c Curve) RecallAt(budget int64) float64 {
	r := 0.0
	for _, p := range c {
		if p.Comparisons > budget {
			break
		}
		r = p.Recall
	}
	return r
}

// AUC returns the normalized area under the curve over [0, maxComparisons]
// in [0, 1]: 1 means all matches found instantly, 0 means nothing found.
// The curve is treated as a right-continuous step function.
func (c Curve) AUC(maxComparisons int64) float64 {
	if maxComparisons <= 0 || len(c) == 0 {
		return 0
	}
	area := 0.0
	prevX := int64(0)
	prevY := 0.0
	for _, p := range c {
		if p.Comparisons > maxComparisons {
			break
		}
		area += float64(p.Comparisons-prevX) * prevY
		prevX, prevY = p.Comparisons, p.Recall
	}
	area += float64(maxComparisons-prevX) * prevY
	return area / float64(maxComparisons)
}

// Final returns the last point of the curve (zero value when empty).
func (c Curve) Final() CurvePoint {
	if len(c) == 0 {
		return CurvePoint{}
	}
	return c[len(c)-1]
}

// Validate reports an error if the curve is not monotone.
func (c Curve) Validate() error {
	for i := 1; i < len(c); i++ {
		if c[i].Comparisons < c[i-1].Comparisons || c[i].Recall+1e-12 < c[i-1].Recall {
			return fmt.Errorf("evaluation: curve not monotone at %d: %+v → %+v", i, c[i-1], c[i])
		}
	}
	return nil
}

// HarmonicMean is the F-measure combination used for PC/PQ trade-off
// summaries.
func HarmonicMean(a, b float64) float64 {
	if a+b == 0 {
		return 0
	}
	return 2 * a * b / (a + b)
}

// FitSlope returns the log-log slope of y against x (least squares),
// ignoring non-positive samples — the complexity-order estimate used by
// the scale-sweep experiment (slope ≈ 1 linear, ≈ 2 quadratic).
func FitSlope(xs, ys []float64) float64 {
	var lx, ly []float64
	for i := range xs {
		if i < len(ys) && xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	n := float64(len(lx))
	if n < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for i := range lx {
		sx += lx[i]
		sy += ly[i]
		sxx += lx[i] * lx[i]
		sxy += lx[i] * ly[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}
