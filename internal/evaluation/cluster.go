package evaluation

import (
	"fmt"
	"sort"

	"entityres/internal/entity"
)

// ClusterMetrics evaluates a resolution output at the entity (cluster)
// level rather than the pair level: pairwise F1 rewards partial credit
// inside big clusters, while downstream consumers of resolved entities
// care whether whole entities were reconstructed exactly.
type ClusterMetrics struct {
	// Precision is the fraction of output clusters that exactly equal a
	// ground-truth cluster.
	Precision float64
	// Recall is the fraction of ground-truth clusters reconstructed
	// exactly.
	Recall float64
	// F1 combines the two.
	F1 float64
	// RandIndex is the probability that a random description pair is
	// classified consistently (together/apart) by output and truth, in
	// [0,1], computed over the descriptions of the universe collection.
	RandIndex float64
}

// String renders the metrics compactly.
func (m ClusterMetrics) String() string {
	return fmt.Sprintf("clusterP=%.4f clusterR=%.4f clusterF1=%.4f rand=%.4f",
		m.Precision, m.Recall, m.F1, m.RandIndex)
}

// EvaluateClusters compares output matches against ground truth at the
// cluster level over the collection c (whose size fixes the Rand index
// denominator). Both sides are transitively closed by construction of
// Clusters(); singleton entities never count as clusters.
func EvaluateClusters(c *entity.Collection, found, gt *entity.Matches) ClusterMetrics {
	fc := found.Clusters()
	gc := gt.Clusters()
	var m ClusterMetrics
	exact := 0
	gset := make(map[string]struct{}, len(gc))
	for _, cl := range gc {
		gset[clusterKey(cl)] = struct{}{}
	}
	for _, cl := range fc {
		if _, ok := gset[clusterKey(cl)]; ok {
			exact++
		}
	}
	if len(fc) > 0 {
		m.Precision = float64(exact) / float64(len(fc))
	}
	if len(gc) > 0 {
		m.Recall = float64(exact) / float64(len(gc))
	}
	m.F1 = HarmonicMean(m.Precision, m.Recall)
	m.RandIndex = randIndex(c, found, gt)
	return m
}

func clusterKey(cl []entity.ID) string {
	sorted := append([]entity.ID(nil), cl...)
	sort.Ints(sorted)
	key := ""
	for _, id := range sorted {
		key += fmt.Sprintf("%d,", id)
	}
	return key
}

// randIndex computes (agreements) / (total pairs) where an agreement is a
// description pair that output and truth both link (transitively) or both
// separate. Closures are evaluated through union-find labels, so the cost
// is O(n²) over the collection — fine for evaluation-sized data.
func randIndex(c *entity.Collection, found, gt *entity.Matches) float64 {
	n := c.Len()
	if n < 2 {
		return 1
	}
	labelOf := func(m *entity.Matches) []int {
		uf := entity.NewUnionFind(n)
		m.Each(func(p entity.Pair) bool {
			uf.Union(p.A, p.B)
			return true
		})
		labels := make([]int, n)
		for i := 0; i < n; i++ {
			labels[i] = uf.Find(i)
		}
		return labels
	}
	lf, lg := labelOf(found), labelOf(gt)
	var agree, total int64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !c.Comparable(i, j) {
				continue
			}
			total++
			if (lf[i] == lf[j]) == (lg[i] == lg[j]) {
				agree++
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(agree) / float64(total)
}
