package evaluation

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// Table accumulates experiment rows and renders them aligned — the output
// device of cmd/erbench and the benchmark harness.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint renders the table to w.
func (t *Table) Fprint(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "== %s ==\n", t.Title); err != nil {
			return err
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	printRow := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := fmt.Fprint(tw, "\t"); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprint(tw, c); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintln(tw)
		return err
	}
	if len(t.Headers) > 0 {
		if err := printRow(t.Headers); err != nil {
			return err
		}
	}
	for _, r := range t.Rows {
		if err := printRow(r); err != nil {
			return err
		}
	}
	return tw.Flush()
}
