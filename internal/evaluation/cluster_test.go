package evaluation

import (
	"math"
	"strings"
	"testing"

	"entityres/internal/entity"
)

func clusterUniverse(n int) *entity.Collection {
	c := entity.NewCollection(entity.Dirty)
	for i := 0; i < n; i++ {
		c.MustAdd(entity.NewDescription(""))
	}
	return c
}

func TestEvaluateClustersExactMatch(t *testing.T) {
	c := clusterUniverse(6)
	gt := entity.FromClusters([][]entity.ID{{0, 1, 2}, {3, 4}})
	found := entity.FromClusters([][]entity.ID{{0, 1, 2}, {3, 4}})
	m := EvaluateClusters(c, found, gt)
	if m.Precision != 1 || m.Recall != 1 || m.F1 != 1 || m.RandIndex != 1 {
		t.Fatalf("perfect output metrics = %+v", m)
	}
}

func TestEvaluateClustersPartial(t *testing.T) {
	c := clusterUniverse(6)
	gt := entity.FromClusters([][]entity.ID{{0, 1, 2}, {3, 4}})
	// One cluster exact, one under-merged (split).
	found := entity.FromClusters([][]entity.ID{{0, 1}, {3, 4}})
	m := EvaluateClusters(c, found, gt)
	if m.Precision != 0.5 {
		t.Fatalf("precision = %v", m.Precision)
	}
	if m.Recall != 0.5 {
		t.Fatalf("recall = %v", m.Recall)
	}
	// Rand: disagreement only on pairs (0,2) and (1,2) of 15 → 13/15.
	if math.Abs(m.RandIndex-13.0/15.0) > 1e-12 {
		t.Fatalf("rand = %v", m.RandIndex)
	}
	if !strings.Contains(m.String(), "clusterF1=0.5000") {
		t.Fatalf("String = %q", m.String())
	}
}

func TestEvaluateClustersOverMerge(t *testing.T) {
	c := clusterUniverse(5)
	gt := entity.FromClusters([][]entity.ID{{0, 1}, {2, 3}})
	found := entity.FromClusters([][]entity.ID{{0, 1, 2, 3}})
	m := EvaluateClusters(c, found, gt)
	if m.Precision != 0 || m.Recall != 0 {
		t.Fatalf("over-merged clusters should score 0 exact: %+v", m)
	}
	if m.RandIndex >= 1 {
		t.Fatalf("rand = %v", m.RandIndex)
	}
}

func TestEvaluateClustersEmpty(t *testing.T) {
	c := clusterUniverse(3)
	m := EvaluateClusters(c, entity.NewMatches(), entity.NewMatches())
	if m.Precision != 0 || m.Recall != 0 || m.F1 != 0 {
		t.Fatalf("empty metrics = %+v", m)
	}
	if m.RandIndex != 1 {
		t.Fatalf("empty-vs-empty rand = %v", m.RandIndex)
	}
	tiny := clusterUniverse(1)
	if got := EvaluateClusters(tiny, entity.NewMatches(), entity.NewMatches()).RandIndex; got != 1 {
		t.Fatalf("singleton rand = %v", got)
	}
}

func TestRandIndexRespectsCleanClean(t *testing.T) {
	c := entity.NewCollection(entity.CleanClean)
	c.MustAdd(entity.NewDescription(""))
	c.MustAdd(entity.NewDescription(""))
	d := entity.NewDescription("")
	d.Source = 1
	c.MustAdd(d)
	// Only cross-source pairs count: (0,2) and (1,2).
	gt := entity.NewMatches()
	gt.Add(0, 2)
	found := entity.NewMatches()
	found.Add(0, 2)
	m := EvaluateClusters(c, found, gt)
	if m.RandIndex != 1 {
		t.Fatalf("rand = %v", m.RandIndex)
	}
}
