// Package graph provides the weighted undirected blocking-graph substrate
// of meta-blocking (§II of the paper): nodes are entity descriptions, edges
// connect descriptions that co-occur in at least one block, and edge
// weights estimate the likelihood that the endpoints match. Parallel edges
// are impossible by construction, which is exactly how meta-blocking
// discards redundant comparisons.
package graph

import (
	"sort"

	"entityres/internal/entity"
)

// Edge is one undirected weighted edge in canonical (A < B) form.
type Edge struct {
	A, B   entity.ID
	Weight float64
}

// Graph is a weighted undirected graph over description IDs.
type Graph struct {
	adj      map[entity.ID]map[entity.ID]float64
	numEdges int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{adj: make(map[entity.ID]map[entity.ID]float64)}
}

// SetWeight inserts or updates the undirected edge {a, b}. Self-loops are
// ignored: a description is never a matching candidate of itself.
func (g *Graph) SetWeight(a, b entity.ID, w float64) {
	if a == b {
		return
	}
	if _, exists := g.adj[a][b]; !exists {
		g.numEdges++
	}
	g.setDirected(a, b, w)
	g.setDirected(b, a, w)
}

func (g *Graph) setDirected(from, to entity.ID, w float64) {
	m, ok := g.adj[from]
	if !ok {
		m = make(map[entity.ID]float64)
		g.adj[from] = m
	}
	m[to] = w
}

// Weight returns the weight of edge {a, b} and whether it exists.
func (g *Graph) Weight(a, b entity.ID) (float64, bool) {
	w, ok := g.adj[a][b]
	return w, ok
}

// Degree returns the number of edges incident to id.
func (g *Graph) Degree(id entity.ID) int { return len(g.adj[id]) }

// NumNodes returns the number of nodes with at least one edge.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return g.numEdges }

// Neighbors returns the neighbors of id sorted ascending.
func (g *Graph) Neighbors(id entity.ID) []entity.ID {
	m := g.adj[id]
	out := make([]entity.ID, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// EachEdge calls fn once per undirected edge in unspecified order, stopping
// early if fn returns false.
func (g *Graph) EachEdge(fn func(e Edge) bool) {
	for a, m := range g.adj {
		for b, w := range m {
			if a < b {
				if !fn(Edge{A: a, B: b, Weight: w}) {
					return
				}
			}
		}
	}
}

// Edges returns all undirected edges sorted by (A, B) — the deterministic
// form used by tests and experiment output.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.numEdges)
	g.EachEdge(func(e Edge) bool {
		out = append(out, e)
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() float64 {
	s := 0.0
	g.EachEdge(func(e Edge) bool {
		s += e.Weight
		return true
	})
	return s
}
