package graph

import (
	"math"
	"reflect"
	"testing"

	"entityres/internal/entity"
)

func TestSetWeightAndLookup(t *testing.T) {
	g := New()
	g.SetWeight(1, 2, 0.5)
	if w, ok := g.Weight(2, 1); !ok || w != 0.5 {
		t.Fatalf("Weight(2,1) = %v, %v", w, ok)
	}
	if _, ok := g.Weight(1, 3); ok {
		t.Fatal("phantom edge")
	}
	g.SetWeight(1, 2, 0.9) // update, not new edge
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	if w, _ := g.Weight(1, 2); w != 0.9 {
		t.Fatal("update lost")
	}
}

func TestSelfLoopIgnored(t *testing.T) {
	g := New()
	g.SetWeight(3, 3, 1)
	if g.NumEdges() != 0 || g.NumNodes() != 0 {
		t.Fatal("self loop inserted")
	}
}

func TestDegreeAndNeighbors(t *testing.T) {
	g := New()
	g.SetWeight(1, 2, 1)
	g.SetWeight(1, 3, 1)
	g.SetWeight(2, 3, 1)
	if g.Degree(1) != 2 || g.Degree(3) != 2 {
		t.Fatalf("degrees = %d, %d", g.Degree(1), g.Degree(3))
	}
	if got := g.Neighbors(1); !reflect.DeepEqual(got, []entity.ID{2, 3}) {
		t.Fatalf("Neighbors = %v", got)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("nodes=%d edges=%d", g.NumNodes(), g.NumEdges())
	}
}

func TestEdgesDeterministic(t *testing.T) {
	g := New()
	g.SetWeight(5, 2, 0.1)
	g.SetWeight(1, 9, 0.2)
	g.SetWeight(1, 2, 0.3)
	got := g.Edges()
	want := []Edge{{1, 2, 0.3}, {1, 9, 0.2}, {2, 5, 0.1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Edges = %v", got)
	}
}

func TestEachEdgeEarlyStopAndTotalWeight(t *testing.T) {
	g := New()
	g.SetWeight(1, 2, 0.25)
	g.SetWeight(3, 4, 0.75)
	n := 0
	g.EachEdge(func(Edge) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
	if math.Abs(g.TotalWeight()-1.0) > 1e-12 {
		t.Fatalf("TotalWeight = %v", g.TotalWeight())
	}
}
