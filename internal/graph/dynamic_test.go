package graph

import (
	"math/rand"
	"reflect"
	"testing"

	"entityres/internal/entity"
)

func TestRemoveEdge(t *testing.T) {
	g := New()
	g.SetWeight(1, 2, 0.5)
	g.SetWeight(2, 3, 0.7)
	if !g.RemoveEdge(2, 1) {
		t.Fatal("RemoveEdge(2,1) = false, want true")
	}
	if g.RemoveEdge(1, 2) {
		t.Fatal("second RemoveEdge(1,2) = true, want false")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if _, ok := g.Weight(1, 2); ok {
		t.Fatal("edge {1,2} still present")
	}
	// Node 1 lost its last edge and must vanish from the node count.
	if g.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d, want 2", g.NumNodes())
	}
}

func TestRemoveNode(t *testing.T) {
	g := New()
	g.SetWeight(1, 2, 1)
	g.SetWeight(1, 3, 1)
	g.SetWeight(2, 3, 1)
	got := g.RemoveNode(1)
	if want := []entity.ID{2, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("RemoveNode(1) neighbors = %v, want %v", got, want)
	}
	if g.NumEdges() != 1 || g.NumNodes() != 2 {
		t.Fatalf("after removal: %d edges, %d nodes; want 1, 2", g.NumEdges(), g.NumNodes())
	}
	if got := g.RemoveNode(99); got != nil {
		t.Fatalf("RemoveNode(99) = %v, want nil", got)
	}
}

func TestDynamicUnionAndSplit(t *testing.T) {
	d := NewDynamic()
	d.AddEdge(1, 2, 1)
	d.AddEdge(3, 4, 1)
	if d.Same(1, 3) {
		t.Fatal("disjoint components reported same")
	}
	d.AddEdge(2, 3, 1) // bridge: one component {1,2,3,4}
	if !d.Same(1, 4) {
		t.Fatal("bridged components not merged")
	}
	want := [][]entity.ID{{1, 2, 3, 4}}
	if got := d.Clusters(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Clusters = %v, want %v", got, want)
	}
	// Removing the bridge node 2 splits {1} (singleton, dropped) from {3,4}.
	d.RemoveNode(2)
	want = [][]entity.ID{{3, 4}}
	if got := d.Clusters(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Clusters after split = %v, want %v", got, want)
	}
	if d.Same(1, 3) {
		t.Fatal("split components reported same")
	}
	// Re-adding an edge through a former singleton works.
	d.AddEdge(1, 3, 1)
	want = [][]entity.ID{{1, 3, 4}}
	if got := d.Clusters(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Clusters after re-add = %v, want %v", got, want)
	}
}

// TestDynamicRandomizedAgainstUnionFind churns a Dynamic with random edge
// insertions and node removals, checking its clusters against a from-scratch
// union-find over the surviving edges at every step.
func TestDynamicRandomizedAgainstUnionFind(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := NewDynamic()
	edges := map[entity.Pair]struct{}{}
	const nodes = 30
	for step := 0; step < 600; step++ {
		if rng.Intn(4) > 0 {
			a, b := rng.Intn(nodes), rng.Intn(nodes)
			if a == b {
				continue
			}
			d.AddEdge(a, b, 1)
			edges[entity.NewPair(a, b)] = struct{}{}
		} else {
			n := rng.Intn(nodes)
			d.RemoveNode(n)
			for p := range edges {
				if p.Contains(n) {
					delete(edges, p)
				}
			}
		}
		if step%20 != 19 {
			continue
		}
		uf := entity.NewUnionFind(nodes)
		for p := range edges {
			uf.Union(p.A, p.B)
		}
		if got, want := d.Clusters(), uf.Clusters(); !reflect.DeepEqual(got, want) {
			t.Fatalf("step %d: dynamic clusters %v, union-find %v", step, got, want)
		}
		if got, want := d.NumEdges(), len(edges); got != want {
			t.Fatalf("step %d: NumEdges = %d, want %d", step, got, want)
		}
	}
}

// TestDynamicMatches checks the edge materialization round-trips.
func TestDynamicMatches(t *testing.T) {
	d := NewDynamic()
	d.AddEdge(5, 1, 0.9)
	d.AddEdge(1, 2, 0.8)
	m := d.Matches()
	if m.Len() != 2 || !m.Contains(1, 5) || !m.Contains(1, 2) {
		t.Fatalf("Matches = %v", m.Pairs())
	}
	if g := d.Graph(); g.NumEdges() != 2 || g.NumNodes() != 3 {
		t.Fatalf("Graph() reports %d edges, %d nodes", g.NumEdges(), g.NumNodes())
	}
}

// TestDynamicRemoveEdge: deleting one match edge splits the component when
// the edge was a bridge and leaves it whole otherwise; both endpoints stay.
func TestDynamicRemoveEdge(t *testing.T) {
	d := NewDynamic()
	d.AddEdge(1, 2, 1)
	d.AddEdge(2, 3, 1)
	d.AddEdge(3, 1, 1) // triangle: removing one edge must NOT split
	if !d.RemoveEdge(1, 2) {
		t.Fatal("RemoveEdge(1,2) = false, want true")
	}
	if d.RemoveEdge(1, 2) {
		t.Fatal("second RemoveEdge(1,2) = true, want false")
	}
	if want := [][]entity.ID{{1, 2, 3}}; !reflect.DeepEqual(d.Clusters(), want) {
		t.Fatalf("triangle minus one edge: Clusters = %v, want %v", d.Clusters(), want)
	}
	// Now {1,2} hangs on the bridge 3-1 via 2-3 and 3-1: removing 2-3
	// isolates 2 (singleton, dropped from Clusters).
	if !d.RemoveEdge(2, 3) {
		t.Fatal("RemoveEdge(2,3) = false, want true")
	}
	if want := [][]entity.ID{{1, 3}}; !reflect.DeepEqual(d.Clusters(), want) {
		t.Fatalf("after bridge removal: Clusters = %v, want %v", d.Clusters(), want)
	}
	if d.Same(2, 3) {
		t.Fatal("split endpoints reported same")
	}
	// The isolated endpoint can rejoin through a later edge.
	d.AddEdge(2, 1, 1)
	if !d.Same(2, 3) {
		t.Fatal("rejoined endpoints not same")
	}
}

// TestDynamicRandomizedRemoveEdge churns edge insertions AND edge removals,
// checking clusters against a from-scratch union-find at every step — the
// RemoveEdge counterpart of TestDynamicRandomizedAgainstUnionFind.
func TestDynamicRandomizedRemoveEdge(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := NewDynamic()
	edges := map[entity.Pair]struct{}{}
	var list []entity.Pair
	const nodes = 25
	for step := 0; step < 600; step++ {
		if rng.Intn(3) > 0 || len(list) == 0 {
			a, b := rng.Intn(nodes), rng.Intn(nodes)
			if a == b {
				continue
			}
			p := entity.NewPair(a, b)
			if _, dup := edges[p]; !dup {
				edges[p] = struct{}{}
				list = append(list, p)
			}
			d.AddEdge(a, b, 1)
		} else {
			i := rng.Intn(len(list))
			p := list[i]
			list[i] = list[len(list)-1]
			list = list[:len(list)-1]
			delete(edges, p)
			if !d.RemoveEdge(p.A, p.B) {
				t.Fatalf("step %d: RemoveEdge(%v) = false", step, p)
			}
		}
		if step%20 != 19 {
			continue
		}
		uf := entity.NewUnionFind(nodes)
		for p := range edges {
			uf.Union(p.A, p.B)
		}
		if got, want := d.Clusters(), uf.Clusters(); !reflect.DeepEqual(got, want) {
			t.Fatalf("step %d: dynamic clusters %v, union-find %v", step, got, want)
		}
		if got, want := d.NumEdges(), len(edges); got != want {
			t.Fatalf("step %d: NumEdges = %d, want %d", step, got, want)
		}
	}
}

// TestDynamicRemoveEdgesBulk: a batch removal spanning several components
// (including duplicates and non-existent edges) equals edge-by-edge
// removal, with every affected component reassigned correctly.
func TestDynamicRemoveEdgesBulk(t *testing.T) {
	d := NewDynamic()
	// Two components: a path 1-2-3-4 and a triangle 5-6-7.
	for _, e := range [][2]entity.ID{{1, 2}, {2, 3}, {3, 4}, {5, 6}, {6, 7}, {7, 5}} {
		d.AddEdge(e[0], e[1], 1)
	}
	removed := d.RemoveEdges([]entity.Pair{
		entity.NewPair(2, 3), // splits the path
		entity.NewPair(5, 6), // triangle survives connected
		entity.NewPair(5, 6), // duplicate: already gone
		entity.NewPair(1, 9), // never existed
	})
	if removed != 2 {
		t.Fatalf("RemoveEdges removed %d, want 2", removed)
	}
	want := [][]entity.ID{{1, 2}, {3, 4}, {5, 6, 7}}
	if got := d.Clusters(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Clusters = %v, want %v", got, want)
	}
	if d.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", d.NumEdges())
	}
	if d.RemoveEdges(nil) != 0 {
		t.Fatal("empty batch removed something")
	}
}

// TestDynamicSnapshotRoundTrip: the edge set is the whole snapshot — a
// structure rebuilt from SnapshotEdges answers Matches, Clusters and Same
// identically and keeps maintaining correctly afterwards.
func TestDynamicSnapshotRoundTrip(t *testing.T) {
	d := NewDynamic()
	for _, e := range [][2]entity.ID{{1, 2}, {2, 3}, {5, 6}, {6, 7}, {7, 5}, {9, 10}} {
		d.AddEdge(e[0], e[1], 1)
	}
	d.RemoveNode(10) // leave a trace of node-removal history behind

	edges := d.SnapshotEdges()
	got := DynamicFromEdges(edges)
	if !reflect.DeepEqual(got.Clusters(), d.Clusters()) {
		t.Fatalf("Clusters after round trip = %v, want %v", got.Clusters(), d.Clusters())
	}
	if got.NumEdges() != d.NumEdges() {
		t.Fatalf("NumEdges after round trip = %d, want %d", got.NumEdges(), d.NumEdges())
	}
	if !reflect.DeepEqual(got.SnapshotEdges(), edges) {
		t.Fatal("snapshot of restored structure differs")
	}
	if got.Same(1, 3) != d.Same(1, 3) || got.Same(1, 5) != d.Same(1, 5) {
		t.Fatal("Same answers diverge after round trip")
	}
	// Post-restore maintenance stays equivalent.
	d.RemoveEdge(2, 3)
	got.RemoveEdge(2, 3)
	d.AddEdge(3, 5, 1)
	got.AddEdge(3, 5, 1)
	if !reflect.DeepEqual(got.Clusters(), d.Clusters()) {
		t.Fatalf("post-restore maintenance diverges: %v vs %v", got.Clusters(), d.Clusters())
	}
	// Empty snapshot round trip.
	if e := NewDynamic().SnapshotEdges(); len(e) != 0 {
		t.Fatalf("empty snapshot has %d edges", len(e))
	}
}
