package graph

import (
	"math/rand"
	"reflect"
	"testing"

	"entityres/internal/entity"
)

func TestRemoveEdge(t *testing.T) {
	g := New()
	g.SetWeight(1, 2, 0.5)
	g.SetWeight(2, 3, 0.7)
	if !g.RemoveEdge(2, 1) {
		t.Fatal("RemoveEdge(2,1) = false, want true")
	}
	if g.RemoveEdge(1, 2) {
		t.Fatal("second RemoveEdge(1,2) = true, want false")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if _, ok := g.Weight(1, 2); ok {
		t.Fatal("edge {1,2} still present")
	}
	// Node 1 lost its last edge and must vanish from the node count.
	if g.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d, want 2", g.NumNodes())
	}
}

func TestRemoveNode(t *testing.T) {
	g := New()
	g.SetWeight(1, 2, 1)
	g.SetWeight(1, 3, 1)
	g.SetWeight(2, 3, 1)
	got := g.RemoveNode(1)
	if want := []entity.ID{2, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("RemoveNode(1) neighbors = %v, want %v", got, want)
	}
	if g.NumEdges() != 1 || g.NumNodes() != 2 {
		t.Fatalf("after removal: %d edges, %d nodes; want 1, 2", g.NumEdges(), g.NumNodes())
	}
	if got := g.RemoveNode(99); got != nil {
		t.Fatalf("RemoveNode(99) = %v, want nil", got)
	}
}

func TestDynamicUnionAndSplit(t *testing.T) {
	d := NewDynamic()
	d.AddEdge(1, 2, 1)
	d.AddEdge(3, 4, 1)
	if d.Same(1, 3) {
		t.Fatal("disjoint components reported same")
	}
	d.AddEdge(2, 3, 1) // bridge: one component {1,2,3,4}
	if !d.Same(1, 4) {
		t.Fatal("bridged components not merged")
	}
	want := [][]entity.ID{{1, 2, 3, 4}}
	if got := d.Clusters(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Clusters = %v, want %v", got, want)
	}
	// Removing the bridge node 2 splits {1} (singleton, dropped) from {3,4}.
	d.RemoveNode(2)
	want = [][]entity.ID{{3, 4}}
	if got := d.Clusters(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Clusters after split = %v, want %v", got, want)
	}
	if d.Same(1, 3) {
		t.Fatal("split components reported same")
	}
	// Re-adding an edge through a former singleton works.
	d.AddEdge(1, 3, 1)
	want = [][]entity.ID{{1, 3, 4}}
	if got := d.Clusters(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Clusters after re-add = %v, want %v", got, want)
	}
}

// TestDynamicRandomizedAgainstUnionFind churns a Dynamic with random edge
// insertions and node removals, checking its clusters against a from-scratch
// union-find over the surviving edges at every step.
func TestDynamicRandomizedAgainstUnionFind(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := NewDynamic()
	edges := map[entity.Pair]struct{}{}
	const nodes = 30
	for step := 0; step < 600; step++ {
		if rng.Intn(4) > 0 {
			a, b := rng.Intn(nodes), rng.Intn(nodes)
			if a == b {
				continue
			}
			d.AddEdge(a, b, 1)
			edges[entity.NewPair(a, b)] = struct{}{}
		} else {
			n := rng.Intn(nodes)
			d.RemoveNode(n)
			for p := range edges {
				if p.Contains(n) {
					delete(edges, p)
				}
			}
		}
		if step%20 != 19 {
			continue
		}
		uf := entity.NewUnionFind(nodes)
		for p := range edges {
			uf.Union(p.A, p.B)
		}
		if got, want := d.Clusters(), uf.Clusters(); !reflect.DeepEqual(got, want) {
			t.Fatalf("step %d: dynamic clusters %v, union-find %v", step, got, want)
		}
		if got, want := d.NumEdges(), len(edges); got != want {
			t.Fatalf("step %d: NumEdges = %d, want %d", step, got, want)
		}
	}
}

// TestDynamicMatches checks the edge materialization round-trips.
func TestDynamicMatches(t *testing.T) {
	d := NewDynamic()
	d.AddEdge(5, 1, 0.9)
	d.AddEdge(1, 2, 0.8)
	m := d.Matches()
	if m.Len() != 2 || !m.Contains(1, 5) || !m.Contains(1, 2) {
		t.Fatalf("Matches = %v", m.Pairs())
	}
	if g := d.Graph(); g.NumEdges() != 2 || g.NumNodes() != 3 {
		t.Fatalf("Graph() reports %d edges, %d nodes", g.NumEdges(), g.NumNodes())
	}
}
