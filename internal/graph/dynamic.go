package graph

import (
	"sort"

	"entityres/internal/entity"
)

// RemoveEdge deletes the undirected edge {a, b}, reporting whether it
// existed. Nodes left without edges remain absent from NumNodes, matching
// the construction invariant that nodes exist through their edges.
func (g *Graph) RemoveEdge(a, b entity.ID) bool {
	if _, ok := g.adj[a][b]; !ok {
		return false
	}
	g.numEdges--
	g.removeDirected(a, b)
	g.removeDirected(b, a)
	return true
}

// RemoveNode deletes id and every incident edge, returning the neighbors it
// was connected to (sorted ascending; nil when the node had no edges). The
// cost is proportional to the node's degree — the targeted maintenance the
// streaming resolver relies on.
func (g *Graph) RemoveNode(id entity.ID) []entity.ID {
	m, ok := g.adj[id]
	if !ok {
		return nil
	}
	neighbors := make([]entity.ID, 0, len(m))
	for n := range m {
		neighbors = append(neighbors, n)
		g.removeDirected(n, id)
		g.numEdges--
	}
	delete(g.adj, id)
	sort.Ints(neighbors)
	return neighbors
}

func (g *Graph) removeDirected(from, to entity.ID) {
	m := g.adj[from]
	delete(m, to)
	if len(m) == 0 {
		delete(g.adj, from)
	}
}

// Dynamic maintains the connected components of a mutating match graph:
// union-by-size on edge insertion, targeted recomputation of the single
// affected component on node removal. It is the incremental counterpart of
// entity.Matches.Clusters — the resolved-entity view kept current while
// matches stream in and descriptions are deleted or updated, without ever
// recomputing components from scratch.
type Dynamic struct {
	g *Graph
	// comp maps every node that has (or ever had, while still live) an
	// edge to its component representative.
	comp map[entity.ID]entity.ID
	// members maps a representative to its component's member set.
	members map[entity.ID]map[entity.ID]struct{}
}

// NewDynamic returns an empty dynamic component structure.
func NewDynamic() *Dynamic {
	return &Dynamic{
		g:       New(),
		comp:    make(map[entity.ID]entity.ID),
		members: make(map[entity.ID]map[entity.ID]struct{}),
	}
}

// Graph returns the underlying match graph. Callers must mutate it only
// through AddEdge, RemoveEdge and RemoveNode, or the component index
// drifts.
func (d *Dynamic) Graph() *Graph { return d.g }

// NumEdges returns the number of match edges.
func (d *Dynamic) NumEdges() int { return d.g.NumEdges() }

// Same reports whether a and b currently belong to one component.
func (d *Dynamic) Same(a, b entity.ID) bool {
	ra, ok := d.comp[a]
	if !ok {
		return false
	}
	rb, ok := d.comp[b]
	return ok && ra == rb
}

// AddEdge inserts the match edge {a, b} with the given weight, merging the
// endpoints' components (smaller into larger). Self-loops are ignored.
func (d *Dynamic) AddEdge(a, b entity.ID, w float64) {
	if a == b {
		return
	}
	d.g.SetWeight(a, b, w)
	ra, rb := d.ensure(a), d.ensure(b)
	if ra == rb {
		return
	}
	if len(d.members[ra]) < len(d.members[rb]) {
		ra, rb = rb, ra
	}
	for id := range d.members[rb] {
		d.comp[id] = ra
		d.members[ra][id] = struct{}{}
	}
	delete(d.members, rb)
}

// ensure registers id as a singleton component if unseen and returns its
// representative.
func (d *Dynamic) ensure(id entity.ID) entity.ID {
	if r, ok := d.comp[id]; ok {
		return r
	}
	d.comp[id] = id
	d.members[id] = map[entity.ID]struct{}{id: {}}
	return id
}

// RemoveNode deletes id and its incident match edges, then recomputes the
// connectivity of (only) the component it belonged to: removing a node can
// split its component into several, and which nodes end up together is
// decided by breadth-first search over the surviving edges of the old
// component's members — every other component is untouched.
func (d *Dynamic) RemoveNode(id entity.ID) {
	rep, ok := d.comp[id]
	if !ok {
		return
	}
	old := d.members[rep]
	d.g.RemoveNode(id)
	delete(d.comp, id)
	delete(old, id)
	delete(d.members, rep)
	d.reassign(old)
}

// RemoveEdge deletes the match edge {a, b} — both endpoints stay — and
// recomputes the connectivity of (only) the component it belonged to,
// which the removal may have split in two. It reports whether the edge
// existed.
func (d *Dynamic) RemoveEdge(a, b entity.ID) bool {
	return d.RemoveEdges([]entity.Pair{entity.NewPair(a, b)}) == 1
}

// RemoveEdges deletes a batch of match edges — endpoints stay — and then
// recomputes the connectivity of every affected component in ONE pass,
// returning how many of the edges existed. Bulk removal is what the
// streaming resolver's live meta-blocking retires pruned-out matches
// with: m retirements inside one component cost a single reassignment of
// that component instead of m (which would be quadratic edge-by-edge).
func (d *Dynamic) RemoveEdges(pairs []entity.Pair) int {
	// Dissolve each affected component once, before any BFS: comp and
	// members are only rebuilt by the final reassign, so representatives
	// looked up mid-loop are still the pre-removal ones.
	dissolved := make(map[entity.ID]struct{})
	removed := 0
	for _, p := range pairs {
		if !d.g.RemoveEdge(p.A, p.B) {
			continue
		}
		removed++
		rep := d.comp[p.A]
		if old, ok := d.members[rep]; ok {
			for id := range old {
				dissolved[id] = struct{}{}
			}
			delete(d.members, rep)
		}
	}
	if removed > 0 {
		d.reassign(dissolved)
	}
	return removed
}

// reassign rebuilds the components of one dissolved member set by BFS over
// the surviving edges; each unvisited member seeds a new component
// represented by its seed. Members left edgeless become singleton
// components (invisible to Clusters).
func (d *Dynamic) reassign(old map[entity.ID]struct{}) {
	visited := make(map[entity.ID]struct{}, len(old))
	for seed := range old {
		if _, done := visited[seed]; done {
			continue
		}
		comp := map[entity.ID]struct{}{seed: {}}
		visited[seed] = struct{}{}
		queue := []entity.ID{seed}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			for nb := range d.g.adj[n] {
				if _, done := visited[nb]; done {
					continue
				}
				visited[nb] = struct{}{}
				comp[nb] = struct{}{}
				queue = append(queue, nb)
			}
		}
		d.members[seed] = comp
		for n := range comp {
			d.comp[n] = seed
		}
	}
}

// Clusters returns the non-singleton components, each sorted ascending,
// ordered by smallest member — the same deterministic shape as
// entity.UnionFind.Clusters, so dynamic and batch cluster output compare
// directly.
func (d *Dynamic) Clusters() [][]entity.ID {
	var out [][]entity.ID
	for _, m := range d.members {
		if len(m) < 2 {
			continue
		}
		cl := make([]entity.ID, 0, len(m))
		for id := range m {
			cl = append(cl, id)
		}
		sort.Ints(cl)
		out = append(out, cl)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// SnapshotEdges returns the dynamic graph's edges sorted by (A, B) — the
// serializable form of its state. The component index is derivable from the
// edge set, so edges are the whole snapshot: DynamicFromEdges rebuilds an
// equivalent structure (identical Matches, Clusters and Same answers) from
// them. This is the snapshot codec the durable streaming resolver persists
// the match graph through.
func (d *Dynamic) SnapshotEdges() []Edge { return d.g.Edges() }

// DynamicFromEdges rebuilds a dynamic component structure from a snapshot
// edge set, re-deriving the components by edge insertion.
func DynamicFromEdges(edges []Edge) *Dynamic {
	d := NewDynamic()
	for _, e := range edges {
		d.AddEdge(e.A, e.B, e.Weight)
	}
	return d
}

// Matches materializes the current match edges as an entity.Matches.
func (d *Dynamic) Matches() *entity.Matches {
	m := entity.NewMatches()
	d.g.EachEdge(func(e Edge) bool {
		m.Add(e.A, e.B)
		return true
	})
	return m
}
