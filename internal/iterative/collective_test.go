package iterative

import (
	"testing"

	"entityres/internal/blocking"
	"entityres/internal/datagen"
	"entityres/internal/entity"
	"entityres/internal/evaluation"
	"entityres/internal/matching"
	"entityres/internal/token"
)

// buildingsAndArchitects reproduces the paper's motivating example: a pair
// of building descriptions is matched once their architects match.
func buildingsAndArchitects(t *testing.T) (*entity.Collection, []entity.Pair) {
	t.Helper()
	c := entity.NewCollection(entity.CleanClean)
	arch0 := entity.NewDescription("http://kb0/arch/1").Add("name", "antoni gaudi cornet")
	b0 := entity.NewDescription("http://kb0/bldg/1").
		Add("label", "casa batllo barcelona").
		Add("architect", "http://kb0/arch/1")
	c.MustAdd(arch0)
	c.MustAdd(b0)
	arch1 := entity.NewDescription("http://kb1/arch/1").Add("label", "antoni gaudi")
	arch1.Source = 1
	b1 := entity.NewDescription("http://kb1/bldg/1").
		Add("name", "the batllo house").
		Add("designer", "http://kb1/arch/1")
	b1.Source = 1
	c.MustAdd(arch1)
	c.MustAdd(b1)
	candidates := []entity.Pair{
		entity.NewPair(0, 2), // architects
		entity.NewPair(1, 3), // buildings
	}
	return c, candidates
}

func TestCollectiveResolvesViaRelations(t *testing.T) {
	c, candidates := buildingsAndArchitects(t)
	// Reference values are relational evidence, not text: skip them in the
	// attribute similarity.
	prof := &token.Profiler{
		Scheme:        token.SchemaAgnostic,
		Stopwords:     token.DefaultStopwords(),
		SkipRefValues: true,
	}
	base := &matching.TokenJaccard{Profiler: prof}
	// The buildings share only "batllo": base sim 1/4. The architects
	// share 2 of 3 tokens: 2/3.
	co := &Collective{Base: base, Alpha: 0.5, Threshold: 0.3}
	res := co.Resolve(c, candidates)
	if !res.Matches.Contains(0, 2) {
		t.Fatal("architect pair must match on attributes")
	}
	if !res.Matches.Contains(1, 3) {
		t.Fatal("building pair must match via relational evidence")
	}
	// Attribute-only baseline misses the buildings.
	baseOnly := matching.ResolvePairs(c, candidates, &matching.Matcher{Sim: base, Threshold: 0.3})
	if baseOnly.Matches.Contains(1, 3) {
		t.Fatal("precondition: attribute-only should miss the building pair")
	}
}

func TestCollectiveWithoutRelationsEqualsBase(t *testing.T) {
	c := entity.NewCollection(entity.Dirty)
	c.MustAdd(entity.NewDescription("").Add("n", "alpha beta"))
	c.MustAdd(entity.NewDescription("").Add("n", "alpha beta"))
	c.MustAdd(entity.NewDescription("").Add("n", "gamma delta"))
	cands := []entity.Pair{entity.NewPair(0, 1), entity.NewPair(0, 2)}
	co := &Collective{Base: &matching.TokenJaccard{}, Alpha: 0.4, Threshold: 0.55}
	res := co.Resolve(c, cands)
	// (0,1): (1-0.4)*1 = 0.6 ≥ 0.55 → match; (0,2): 0 → no.
	if !res.Matches.Contains(0, 1) || res.Matches.Contains(0, 2) {
		t.Fatalf("matches = %v", res.Matches.Pairs())
	}
}

func TestCollectiveOnBibliographic(t *testing.T) {
	c, gt, err := datagen.GenerateBibliographic(datagen.Config{
		Seed: 17, Entities: 40, DupRatio: 0.8,
		Corruption: &datagen.Corruption{Typo: 0.3, TokenDrop: 0.4, TokenSwap: 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	bs, err := (&blocking.TokenBlocking{}).Block(c)
	if err != nil {
		t.Fatal(err)
	}
	candidates := bs.DistinctPairs().Pairs()
	prof := &token.Profiler{
		Scheme:        token.SchemaAgnostic,
		Stopwords:     token.DefaultStopwords(),
		SkipRefValues: true,
	}
	base := &matching.TokenJaccard{Profiler: prof}
	const threshold = 0.55
	baseline := matching.ResolvePairs(c, candidates, &matching.Matcher{Sim: base, Threshold: threshold})
	co := &Collective{Base: base, Alpha: 0.3, Threshold: threshold}
	collective := co.Resolve(c, candidates)
	prfBase := evaluation.ComparePairs(baseline.Matches, gt)
	prfColl := evaluation.ComparePairs(collective.Matches, gt)
	if prfColl.Recall <= prfBase.Recall {
		t.Fatalf("collective recall %v should beat attribute-only %v",
			prfColl.Recall, prfBase.Recall)
	}
	if prfColl.F1 < prfBase.F1 {
		t.Fatalf("collective F1 %v regressed vs %v", prfColl.F1, prfBase.F1)
	}
}

func TestRelationIndex(t *testing.T) {
	c := entity.NewCollection(entity.Dirty)
	a := entity.NewDescription("http://kb/a").Add("knows", "http://kb/b").Add("name", "x")
	b := entity.NewDescription("http://kb/b").Add("knows", "http://kb/missing")
	c.MustAdd(a)
	c.MustAdd(b)
	idx := RelationIndex(c)
	if len(idx[0]) != 1 || idx[0][0] != 1 {
		t.Fatalf("idx[0] = %v", idx[0])
	}
	if len(idx[1]) != 0 {
		t.Fatalf("dangling ref resolved: %v", idx[1])
	}
}

func TestRelationIndexIgnoresSelfAndDuplicates(t *testing.T) {
	c := entity.NewCollection(entity.Dirty)
	a := entity.NewDescription("urn:x").
		Add("r", "urn:x").
		Add("r", "urn:y").
		Add("r", "urn:y")
	b := entity.NewDescription("urn:y")
	b.Add("name", "y")
	c.MustAdd(a)
	c.MustAdd(b)
	idx := RelationIndex(c)
	if len(idx[0]) != 1 || idx[0][0] != 1 {
		t.Fatalf("idx[0] = %v", idx[0])
	}
}
