package iterative

import (
	"sort"
	"strings"

	"entityres/internal/entity"
	"entityres/internal/matching"
)

// Collective is relationship-based iterative resolution in the spirit of
// collective entity resolution [3]: the score of a candidate pair combines
// attribute similarity with relational evidence — the fraction of the
// pair's neighborhood covered by already-matched neighbor pairs — and
// every new match re-enqueues the influenced pairs with their raised
// scores. High-confidence pairs (typically the lightly corrupted related
// entities) resolve first and pull the ambiguous pairs that reference them
// over the threshold.
//
// The combination is an additive boost, score = min(1, base + Alpha·rel):
// pairs without relational evidence keep their attribute score untouched
// (descriptions with no relations — common in the Web of data — must not
// be penalized), and relational evidence can only promote.
type Collective struct {
	// Base is the attribute similarity (required).
	Base matching.ProfileSimilarity
	// Alpha is the weight of the relational boost, in (0,1) (default 0.3).
	Alpha float64
	// Threshold is the match decision threshold on the combined score.
	Threshold float64
}

// CollectiveResult is the outcome of a collective resolution run.
//
// Note on revision: the paper observes that iterative approaches may revise
// earlier matching decisions. With this implementation's exact priority
// maintenance — every match immediately re-scores the pairs it influences
// while they are still queued — pairs are always popped in true-score
// order, so a pair is never evaluated (and rejected) before the matches
// that would have raised its score. Queue updates preempt revision.
type CollectiveResult struct {
	Matches *entity.Matches
	// Comparisons counts pair evaluations, including re-evaluations
	// triggered by relational updates.
	Comparisons int64
}

// Resolve runs collective resolution over the candidate pairs.
func (co *Collective) Resolve(c *entity.Collection, candidates []entity.Pair) CollectiveResult {
	alpha := co.Alpha
	if alpha <= 0 || alpha >= 1 {
		alpha = 0.3
	}
	nbrs := RelationIndex(c)
	// inNbrOf[x] lists the descriptions whose neighborhood contains x —
	// the reverse edges along which match decisions propagate.
	inNbrOf := make(map[entity.ID][]entity.ID)
	for id, ns := range nbrs {
		for _, n := range ns {
			inNbrOf[n] = append(inNbrOf[n], id)
		}
	}
	candidate := make(map[entity.Pair]struct{}, len(candidates))
	for _, p := range candidates {
		candidate[p.Canonical()] = struct{}{}
	}
	res := CollectiveResult{Matches: entity.NewMatches()}
	baseScore := make(map[entity.Pair]float64, len(candidates))
	lastScore := make(map[entity.Pair]float64, len(candidates))
	q := NewPairQueue()

	// relSim is the fraction of the larger neighborhood covered by matched
	// neighbor pairs. The max denominator is deliberate: true duplicates
	// mirror each other's entire neighborhood, while two distinct papers
	// that merely share one author only cover a fraction of it — the
	// min-denominator variant scores both cases 1 and floods the output
	// with relational false positives.
	relSim := func(p entity.Pair) float64 {
		na, nb := nbrs[p.A], nbrs[p.B]
		if len(na) == 0 || len(nb) == 0 {
			return 0
		}
		matched := 0
		for _, x := range na {
			for _, y := range nb {
				if res.Matches.Contains(x, y) {
					matched++
				}
			}
		}
		den := len(na)
		if len(nb) > den {
			den = len(nb)
		}
		s := float64(matched) / float64(den)
		if s > 1 {
			s = 1
		}
		return s
	}

	combined := func(p entity.Pair) float64 {
		s := baseScore[p] + alpha*relSim(p)
		if s > 1 {
			s = 1
		}
		return s
	}

	// Initialization phase: seed the queue with attribute-only scores.
	for p := range candidate {
		s := co.Base.Sim(c.Get(p.A), c.Get(p.B))
		baseScore[p] = s
		q.Push(p, s)
	}

	// Iterative phase.
	for {
		p, _, ok := q.Pop()
		if !ok {
			break
		}
		if res.Matches.Contains(p.A, p.B) {
			continue
		}
		res.Comparisons++
		score := combined(p)
		lastScore[p] = score
		if score < co.Threshold {
			continue
		}
		res.Matches.Add(p.A, p.B)
		// Update phase: re-enqueue influenced candidate pairs whose
		// relational evidence just grew.
		for _, x := range inNbrOf[p.A] {
			for _, y := range inNbrOf[p.B] {
				ip := entity.NewPair(x, y)
				if _, isCand := candidate[ip]; !isCand || res.Matches.Contains(ip.A, ip.B) {
					continue
				}
				newScore := combined(ip)
				if old, seen := lastScore[ip]; !seen || newScore > old {
					q.Push(ip, newScore)
				}
			}
		}
	}
	return res
}

// RelationIndex extracts the relationship structure of a collection: for
// every description, the IDs it references through URI-valued attributes
// (resolved against the URIs of the same collection). This is how RDF
// object properties become resolution-relevant relations.
func RelationIndex(c *entity.Collection) map[entity.ID][]entity.ID {
	byURI := make(map[string]entity.ID, c.Len())
	for _, d := range c.All() {
		if d.URI != "" {
			byURI[d.URI] = d.ID
		}
	}
	out := make(map[entity.ID][]entity.ID)
	for _, d := range c.All() {
		seen := map[entity.ID]struct{}{}
		for _, a := range d.Attrs {
			if !strings.Contains(a.Value, "://") && !strings.HasPrefix(a.Value, "urn:") {
				continue
			}
			ref, ok := byURI[a.Value]
			if !ok || ref == d.ID {
				continue
			}
			if _, dup := seen[ref]; dup {
				continue
			}
			seen[ref] = struct{}{}
			out[d.ID] = append(out[d.ID], ref)
		}
		sort.Ints(out[d.ID])
	}
	return out
}
