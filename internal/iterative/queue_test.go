package iterative

import (
	"testing"

	"entityres/internal/entity"
)

func TestPairQueueOrder(t *testing.T) {
	q := NewPairQueue()
	q.Push(entity.NewPair(1, 2), 0.5)
	q.Push(entity.NewPair(3, 4), 0.9)
	q.Push(entity.NewPair(5, 6), 0.1)
	p, pr, ok := q.Pop()
	if !ok || p != entity.NewPair(3, 4) || pr != 0.9 {
		t.Fatalf("first pop = %v %v %v", p, pr, ok)
	}
	p, _, _ = q.Pop()
	if p != entity.NewPair(1, 2) {
		t.Fatalf("second pop = %v", p)
	}
	p, _, _ = q.Pop()
	if p != entity.NewPair(5, 6) {
		t.Fatalf("third pop = %v", p)
	}
	if _, _, ok := q.Pop(); ok {
		t.Fatal("empty queue popped")
	}
}

func TestPairQueueUpdateRaises(t *testing.T) {
	q := NewPairQueue()
	q.Push(entity.NewPair(1, 2), 0.2)
	q.Push(entity.NewPair(3, 4), 0.5)
	q.Push(entity.NewPair(1, 2), 0.8) // raise
	if q.Len() != 2 {
		t.Fatalf("Len = %d", q.Len())
	}
	p, pr, _ := q.Pop()
	if p != entity.NewPair(1, 2) || pr != 0.8 {
		t.Fatalf("raised pair not first: %v %v", p, pr)
	}
	// Lowering is ignored.
	q.Push(entity.NewPair(3, 4), 0.1)
	_, pr, _ = q.Pop()
	if pr != 0.5 {
		t.Fatalf("lowered priority applied: %v", pr)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d", q.Len())
	}
}

func TestPairQueueCanonicalizes(t *testing.T) {
	q := NewPairQueue()
	q.Push(entity.Pair{A: 9, B: 2}, 0.3)
	if !q.Contains(entity.NewPair(2, 9)) {
		t.Fatal("Contains should canonicalize")
	}
	q.Push(entity.Pair{A: 2, B: 9}, 0.3) // same pair
	if q.Len() != 1 {
		t.Fatalf("Len = %d", q.Len())
	}
}

func TestPairQueueFIFOTieBreak(t *testing.T) {
	q := NewPairQueue()
	q.Push(entity.NewPair(1, 2), 0.5)
	q.Push(entity.NewPair(3, 4), 0.5)
	p, _, _ := q.Pop()
	if p != entity.NewPair(1, 2) {
		t.Fatalf("tie-break violated FIFO: %v", p)
	}
}
