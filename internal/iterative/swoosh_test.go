package iterative

import (
	"testing"

	"entityres/internal/datagen"
	"entityres/internal/entity"
	"entityres/internal/evaluation"
	"entityres/internal/matching"
)

func swooshCollection(t *testing.T) *entity.Collection {
	t.Helper()
	c := entity.NewCollection(entity.Dirty)
	// Three descriptions of one entity forming a chain: a~b and b~c are
	// above threshold, a~c alone is not — only merging finds all three.
	c.MustAdd(entity.NewDescription("").Add("name", "alice smith").Add("city", "paris"))
	c.MustAdd(entity.NewDescription("").Add("name", "alice smith").Add("job", "painter"))
	c.MustAdd(entity.NewDescription("").Add("job", "painter").Add("city", "paris"))
	c.MustAdd(entity.NewDescription("").Add("name", "bob jones").Add("city", "rome"))
	return c
}

func TestRSwooshTransitiveViaMerge(t *testing.T) {
	c := swooshCollection(t)
	m := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.4}
	// Precondition: the direct pair (0,2) is below threshold.
	if ok, _ := m.Match(c.Get(0), c.Get(2)); ok {
		t.Fatal("precondition: (0,2) should not match directly")
	}
	res := RSwoosh(c, m)
	if !res.Matches.Contains(0, 2) {
		t.Fatal("merge-based iteration must unify the chain")
	}
	if len(res.Resolved) != 2 {
		t.Fatalf("resolved profiles = %d, want 2", len(res.Resolved))
	}
	// The merged profile accumulates all attributes of the cluster.
	prof := res.Resolved[0]
	for _, want := range []string{"name", "city", "job"} {
		if _, ok := prof.Value(want); !ok {
			t.Fatalf("merged profile missing %q: %v", want, prof)
		}
	}
}

func TestRSwooshNoDuplicates(t *testing.T) {
	c := entity.NewCollection(entity.Dirty)
	c.MustAdd(entity.NewDescription("").Add("n", "aaa"))
	c.MustAdd(entity.NewDescription("").Add("n", "bbb"))
	c.MustAdd(entity.NewDescription("").Add("n", "ccc"))
	m := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.9}
	res := RSwoosh(c, m)
	if res.Matches.Len() != 0 || len(res.Resolved) != 3 {
		t.Fatalf("clean input resolved wrongly: %d matches, %d profiles",
			res.Matches.Len(), len(res.Resolved))
	}
	// Worst case comparisons: n(n-1)/2.
	if res.Comparisons != 3 {
		t.Fatalf("comparisons = %d", res.Comparisons)
	}
}

func TestRSwooshSavesComparisonsOnDuplicates(t *testing.T) {
	c, gt, err := datagen.GenerateDirty(datagen.Config{
		Seed: 21, Entities: 60, DupRatio: 1, MaxDuplicates: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
	naive := NaivePairwise(c, m)
	sw := RSwoosh(c, m)
	if sw.Comparisons >= naive.Comparisons {
		t.Fatalf("R-Swoosh did not save comparisons: %d vs %d",
			sw.Comparisons, naive.Comparisons)
	}
	// Merge-based recall dominates pairwise recall (closure included).
	prfNaive := evaluation.ComparePairs(naive.Matches.Closure(), gt)
	prfSw := evaluation.ComparePairs(sw.Matches, gt)
	if prfSw.Recall+1e-9 < prfNaive.Recall {
		t.Fatalf("R-Swoosh recall %v below naive %v", prfSw.Recall, prfNaive.Recall)
	}
}

func TestNaivePairwiseRespectsKind(t *testing.T) {
	c := entity.NewCollection(entity.CleanClean)
	c.MustAdd(entity.NewDescription("").Add("n", "x y"))
	c.MustAdd(entity.NewDescription("").Add("n", "x y"))
	d := entity.NewDescription("").Add("n", "x y")
	d.Source = 1
	c.MustAdd(d)
	m := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.9}
	res := NaivePairwise(c, m)
	// Only the two cross-source pairs are comparable.
	if res.Comparisons != 2 {
		t.Fatalf("comparisons = %d", res.Comparisons)
	}
	if res.Matches.Contains(0, 1) {
		t.Fatal("same-source match emitted")
	}
}
