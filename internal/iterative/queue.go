// Package iterative implements the iterative entity-resolution approaches
// of §III of the paper: the general framework of an initialization phase
// that seeds a queue of description pairs and an iterative phase that pops
// pairs, decides them and updates the queue [16]; the merging-based
// R-Swoosh algorithm [2], where matched descriptions merge and the merged
// profile re-enters resolution; and relationship-based collective
// resolution [3], [24], where a match between related descriptions raises
// the matching likelihood of the pairs that reference them.
package iterative

import (
	"container/heap"

	"entityres/internal/entity"
)

// PairQueue is a max-priority queue of description pairs supporting
// priority updates (the "update the queue" step of the iterative
// framework). Updates are lazy: stale heap entries are skipped on Pop.
type PairQueue struct {
	h       pairHeap
	current map[entity.Pair]float64
	seq     int
}

// NewPairQueue returns an empty queue.
func NewPairQueue() *PairQueue {
	return &PairQueue{current: make(map[entity.Pair]float64)}
}

type pairItem struct {
	pair     entity.Pair
	priority float64
	seq      int // FIFO tie-break for equal priorities, keeps runs deterministic
}

type pairHeap []pairItem

func (h pairHeap) Len() int { return len(h) }
func (h pairHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	return h[i].seq < h[j].seq
}
func (h pairHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *pairHeap) Push(x any)   { *h = append(*h, x.(pairItem)) }
func (h *pairHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Push inserts the pair or raises its priority; pushes that lower an
// existing priority are ignored (scores in iterative resolution only
// grow).
func (q *PairQueue) Push(p entity.Pair, priority float64) {
	p = p.Canonical()
	if cur, ok := q.current[p]; ok && cur >= priority {
		return
	}
	q.current[p] = priority
	heap.Push(&q.h, pairItem{pair: p, priority: priority, seq: q.seq})
	q.seq++
}

// Pop removes and returns the highest-priority pair. ok is false when the
// queue is empty.
func (q *PairQueue) Pop() (p entity.Pair, priority float64, ok bool) {
	for q.h.Len() > 0 {
		it := heap.Pop(&q.h).(pairItem)
		cur, live := q.current[it.pair]
		if !live || cur != it.priority {
			continue // stale entry superseded by an update
		}
		delete(q.current, it.pair)
		return it.pair, it.priority, true
	}
	return entity.Pair{}, 0, false
}

// Len returns the number of live pairs in the queue.
func (q *PairQueue) Len() int { return len(q.current) }

// Contains reports whether the pair is queued.
func (q *PairQueue) Contains(p entity.Pair) bool {
	_, ok := q.current[p.Canonical()]
	return ok
}
