package iterative

import (
	"entityres/internal/entity"
	"entityres/internal/matching"
)

// SwooshResult is the outcome of a merging-based resolution run.
type SwooshResult struct {
	// Resolved holds the final entity profiles: one merged description per
	// discovered real-world entity (singletons included), ordered by their
	// smallest member ID.
	Resolved []*entity.Description
	// Matches holds the pairwise matches over original IDs, transitively
	// closed within each merged cluster.
	Matches *entity.Matches
	// Comparisons is the number of matcher invocations executed.
	Comparisons int64
}

// RSwoosh is the R-Swoosh algorithm of the Swoosh family [2]: descriptions
// are resolved against the growing set of already-resolved profiles; on a
// match the two profiles merge (attribute union) and the merged profile
// re-enters the input, so evidence accumulated by earlier matches is
// available to later comparisons. With ICAR-compliant match and merge
// functions the result is the unique maximal resolution; the practical
// payoff measured by experiment E7 is that merging spares the pairwise
// comparisons among already-unified duplicates.
func RSwoosh(c *entity.Collection, m *matching.Matcher) SwooshResult {
	// Working set I (to resolve) and resolved set I'.
	input := make([]*entity.Description, 0, c.Len())
	members := make(map[*entity.Description][]entity.ID, c.Len())
	for _, d := range c.All() {
		w := d.Clone()
		input = append(input, w)
		members[w] = []entity.ID{d.ID}
	}
	var resolved []*entity.Description
	var comparisons int64
	for len(input) > 0 {
		r := input[0]
		input = input[1:]
		matchedIdx := -1
		for i, r2 := range resolved {
			comparisons++
			if ok, _ := m.Match(r, r2); ok {
				matchedIdx = i
				break
			}
		}
		if matchedIdx < 0 {
			resolved = append(resolved, r)
			continue
		}
		r2 := resolved[matchedIdx]
		resolved = append(resolved[:matchedIdx], resolved[matchedIdx+1:]...)
		merged := entity.Merge(r, r2)
		members[merged] = append(append([]entity.ID{}, members[r]...), members[r2]...)
		delete(members, r)
		delete(members, r2)
		input = append(input, merged)
	}
	// Order profiles deterministically and derive pairwise matches.
	var clusters [][]entity.ID
	for _, d := range resolved {
		if len(members[d]) > 1 {
			clusters = append(clusters, members[d])
		}
	}
	sortProfiles(resolved)
	return SwooshResult{
		Resolved:    resolved,
		Matches:     entity.FromClusters(clusters),
		Comparisons: comparisons,
	}
}

func sortProfiles(ds []*entity.Description) {
	// Merged profiles carry their smallest member ID, so ordering by ID is
	// deterministic.
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j-1].ID > ds[j].ID; j-- {
			ds[j-1], ds[j] = ds[j], ds[j-1]
		}
	}
}

// NaivePairwise is the blocking-free, merging-free baseline: every
// comparable pair is matched independently. It is the comparison-count
// yardstick for R-Swoosh in experiment E7.
func NaivePairwise(c *entity.Collection, m *matching.Matcher) SwooshResult {
	out := SwooshResult{Matches: entity.NewMatches()}
	all := c.All()
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if !c.Comparable(all[i].ID, all[j].ID) {
				continue
			}
			out.Comparisons++
			if ok, _ := m.Match(all[i], all[j]); ok {
				out.Matches.Add(all[i].ID, all[j].ID)
			}
		}
	}
	return out
}
