// The key-partition contract, exported: the networked deployment
// (internal/transport) must agree with the in-process coordinator on
// every detail of the partition — which shard owns a blocking key, which
// shard owns a candidate pair, and exactly how a shard-local resolver is
// configured — or the two deployment forms would resolve differently.
// These helpers are that agreement, published from the package that
// defines it so it exists in exactly one place.
package sharded

import (
	"context"

	"entityres/internal/entity"
	"entityres/internal/incremental"
)

// KeyOwner maps a blocking key to its owning shard: FNV-1a over the key
// bytes, mod the shard count. Deterministic across processes, machines and
// runs — the key→shard directory a networked coordinator routes operations
// with is exactly this function over the operation's key set.
func KeyOwner(key string, shards int) int {
	if shards <= 1 {
		return 0
	}
	return keyOwner(key, shards)
}

// FirstSharedKey returns the smallest key present in both ascending
// distinct key slices, and whether one exists. The shard owning that key
// owns the pair: it is where the single-node resolver's seen-set dedup
// counts the pair, so exactly one shard evaluates it and the per-shard
// comparison counters sum to the single-node count bit for bit.
func FirstSharedKey(a, b []string) (string, bool) { return firstShared(a, b) }

// NodeConfig renders shard i's incremental.Config — the configuration a
// standalone shard process (transport.ShardServer) opens its resolver
// with. It is byte-for-byte the configuration the in-process coordinator
// builds for its shard i: the raw blocker wrapped in the owned-key lens,
// the first-shared-key delta filter, group-commit durability — so a shard
// journal written by either deployment form recovers under the other.
func (cfg Config) NodeConfig(i int) incremental.Config {
	c, _ := cfg.shardConfig(i)
	return c
}

// MatchedWith returns the handles currently matched to id — its direct
// neighbors in the global match graph, ascending — reconciling any
// deferred meta-blocking work first. Nil when id is not live or matches
// nothing. This is the read behind the serving layer's same-as query.
func (r *Resolver) MatchedWith(id entity.ID) ([]entity.ID, error) {
	if err := r.lockShared(context.Background()); err != nil {
		return nil, err
	}
	defer r.mu.RUnlock()
	if !r.isLive(id) {
		return nil, nil
	}
	return r.dyn.Graph().Neighbors(id), nil
}
