package sharded_test

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"entityres/internal/blocking"
	"entityres/internal/entity"
	"entityres/internal/incremental"
	"entityres/internal/matching"
	"entityres/internal/metablocking"
	"entityres/internal/sharded"
	"entityres/internal/wal"
)

// The shard-crash chaos property: a shard hard-stopped mid-stream — no
// Close, with a torn final record left in its WAL by the append a crash
// would interrupt — and rejoined through its own snapshot + WAL tail is
// indistinguishable from a shard that never crashed: the sharded
// resolver's final state is bit-exact vs the uninterrupted single-node
// resolver, and the rejoin replayed only the crashed shard's journal tail,
// never the stream's history and never another shard's log.

// tearShardTail appends a partial frame to the active WAL segment of one
// shard directory — the bytes a crash mid-append leaves behind.
func tearShardTail(t *testing.T, dir string, shardIdx int) {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, fmt.Sprintf("shard-%03d", shardIdx), "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments to tear for shard %d in %s: %v", shardIdx, dir, err)
	}
	active := segs[len(segs)-1] // zero-padded names: lexical max = highest seq
	f, err := os.OpenFile(active, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	torn := append([]byte{100, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef}, []byte(`{"op":"ins`)...)
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
}

// shardChaosConfig is one crash scenario.
type shardChaosConfig struct {
	shards    int
	seed      int64
	ops       int
	snapEvery int
	mix       opMix
	meta      *metablocking.MetaBlocker
}

func (cc shardChaosConfig) String() string {
	s := fmt.Sprintf("n%d/%s/seed%d/snap%d", cc.shards, cc.mix.name, cc.seed, cc.snapEvery)
	if cc.meta != nil {
		s += "/" + cc.meta.Name()
	}
	return s
}

// runShardCrash drives one scenario: stream to a random op boundary, crash
// one shard, tear its WAL tail, rejoin, finish the stream, and compare
// against an uninterrupted single-node run.
func runShardCrash(t *testing.T, cc shardChaosConfig) {
	matcher := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
	script := generateScript(t, entity.Dirty, cc.seed, cc.ops, cc.mix)
	rng := rand.New(rand.NewSource(cc.seed * 31337))
	k := 1 + rng.Intn(cc.ops-1)         // the op boundary the crash hits
	victim := rng.Intn(cc.shards)       // the shard that dies
	readAt := map[int]bool{k: true}     // lockstep read schedule (reads
	for i := 60; i <= cc.ops; i += 60 { // reconcile under meta-blocking)
		readAt[i] = true
	}

	cfg := sharded.Config{
		Kind: entity.Dirty, Blocker: &blocking.TokenBlocking{}, Matcher: matcher,
		Workers: 4, Meta: cc.meta, Shards: cc.shards,
		Durable: incremental.DurableOptions{
			SnapshotEvery: cc.snapEvery,
			SegmentBytes:  4096, // small segments exercise rotation
			NoSync:        true,
		},
	}
	dir := t.TempDir()
	sh, err := sharded.Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	single, err := incremental.New(incremental.Config{
		Kind: entity.Dirty, Blocker: &blocking.TokenBlocking{}, Matcher: matcher, Workers: 4, Meta: cc.meta,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	apply := func(r interface {
		Apply(context.Context, incremental.Op) error
	}, reads func(), from, to int) {
		t.Helper()
		for i := from; i < to; i++ {
			if err := r.Apply(ctx, script[i]); err != nil {
				t.Fatalf("op %d (%s %s): %v", i, script[i].Kind, script[i].URI, err)
			}
			if readAt[i+1] {
				reads()
			}
		}
	}

	// Stream to the crash point on both resolvers.
	apply(sh, func() { sh.Matches() }, 0, k)
	apply(single, func() { single.Matches() }, 0, k)

	// Hard-stop the victim and tear its WAL tail; ops must now fail while
	// reads keep serving from the coordinator.
	if err := sh.StopShard(victim); err != nil {
		t.Fatal(err)
	}
	tearShardTail(t, dir, victim)
	if err := sh.Apply(ctx, script[k]); err == nil {
		t.Fatalf("op accepted while shard %d is down", victim)
	}
	if g, w := renderState(mustMatches(t, sh)), renderState(mustMatches(t, single)); g != w {
		t.Fatalf("reads during the outage diverge:\nsharded\n%s\nsingle-node\n%s", g, w)
	}

	// Rejoin from the shard's own snapshot + tail: replay is bounded by
	// that shard's journal tail. Every shard journals every operation (plus
	// one record per reconciling read under meta-blocking), so the
	// non-meta tail is exactly k mod the snapshot cadence.
	rec, err := sh.RejoinShard(victim)
	if err != nil {
		t.Fatalf("rejoin at op %d: %v", k, err)
	}
	if !rec.Recovered {
		t.Fatalf("rejoin at op %d found no state", k)
	}
	if cc.meta == nil {
		if want := k % cc.snapEvery; rec.ReplayedRecords != want {
			t.Fatalf("crash at op %d, cadence %d: rejoin replayed %d records, want exactly the %d-record tail",
				k, cc.snapEvery, rec.ReplayedRecords, want)
		}
	} else if bound := 2*cc.snapEvery + 2; rec.ReplayedRecords > bound {
		t.Fatalf("crash at op %d, cadence %d: rejoin replayed %d records, beyond the %d-record tail bound",
			k, cc.snapEvery, rec.ReplayedRecords, bound)
	}
	if k >= cc.snapEvery && rec.SnapshotSegment == 0 {
		t.Fatalf("crash at op %d: rejoin replayed the whole stream instead of restoring a snapshot", k)
	}

	// The rejoined system equals the uninterrupted reference at the crash
	// point and stays bit-exact through the rest of the stream — matches,
	// stats, blocks and (under meta) restructured blocks.
	assertShardedEqualsSingle(t, sh, single, cc.meta != nil, k)
	apply(sh, func() { sh.Matches() }, k, cc.ops)
	apply(single, func() { single.Matches() }, k, cc.ops)
	assertShardedEqualsSingle(t, sh, single, cc.meta != nil, cc.ops)
	assertBatchEquivalence(t, sh, &blocking.TokenBlocking{}, cc.meta, matcher, cc.ops)
}

// TestShardCrashRejoin is the chaos acceptance matrix.
func TestShardCrashRejoin(t *testing.T) {
	configs := []shardChaosConfig{
		{shards: 4, seed: 201, ops: 180, snapEvery: 20, mix: opMixes[1]},
		{shards: 7, seed: 202, ops: 160, snapEvery: 15, mix: opMixes[0]},
		{shards: 2, seed: 203, ops: 160, snapEvery: 25, mix: opMixes[2]},
		{shards: 4, seed: 204, ops: 140, snapEvery: 20, mix: opMixes[1],
			meta: &metablocking.MetaBlocker{Weight: metablocking.CBS, Prune: metablocking.WEP}},
	}
	for _, cc := range configs {
		cc := cc
		t.Run(cc.String(), func(t *testing.T) {
			if testing.Short() && cc.seed > 202 {
				t.Skip("short mode runs the first two chaos scenarios only")
			}
			t.Parallel()
			runShardCrash(t, cc)
		})
	}
}

// TestShardedReopen: a cleanly closed — or wholly hard-stopped — sharded
// directory reopens with the coordinator replica rebuilt from the shards,
// and the resumed stream stays bit-exact vs an uninterrupted single-node
// run (non-meta; the coordinator's meta caches are memory-only).
func TestShardedReopen(t *testing.T) {
	matcher := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
	script := generateScript(t, entity.Dirty, 211, 150, opMixes[1])
	cfg := sharded.Config{
		Kind: entity.Dirty, Blocker: &blocking.TokenBlocking{}, Matcher: matcher,
		Workers: 2, Shards: 3,
		Durable: incremental.DurableOptions{SnapshotEvery: 20, SegmentBytes: 4096, NoSync: true},
	}
	single, err := incremental.New(incremental.Config{
		Kind: entity.Dirty, Blocker: &blocking.TokenBlocking{}, Matcher: matcher, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	dir := t.TempDir()
	const stop = 80
	sh, err := sharded.Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < stop; i++ {
		if err := sh.Apply(ctx, script[i]); err != nil {
			t.Fatal(err)
		}
		if err := single.Apply(ctx, script[i]); err != nil {
			t.Fatal(err)
		}
	}
	sh.Abandon() // whole-deployment hard stop: every shard at once

	re, err := sharded.Open(dir, cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if !re.Recovered() {
		t.Fatal("reopen found no state")
	}
	for i, rec := range re.Recovery() {
		if !rec.Recovered {
			t.Fatalf("shard %d reports no recovered state", i)
		}
	}
	assertShardedEqualsSingle(t, re, single, false, stop)
	for i := stop; i < len(script); i++ {
		if err := re.Apply(ctx, script[i]); err != nil {
			t.Fatal(err)
		}
		if err := single.Apply(ctx, script[i]); err != nil {
			t.Fatal(err)
		}
	}
	assertShardedEqualsSingle(t, re, single, false, len(script))

	// Reopening with a different shard count is refused by the manifest.
	re.Close()
	bad := cfg
	bad.Shards = 5
	if _, err := sharded.Open(dir, bad); err == nil {
		t.Fatal("reopen with a different shard count accepted")
	}
}

// appendShardRecord journals one raw operation record into a shard's WAL —
// the on-disk image of a whole-process crash that interrupted a fan-out
// after this shard's journal append (and, per journal-then-apply, possibly
// its apply) but before the remaining shards journaled theirs.
func appendShardRecord(t *testing.T, dir string, shardIdx int, record string) {
	t.Helper()
	l, err := wal.Open(filepath.Join(dir, fmt.Sprintf("shard-%03d", shardIdx)), wal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append([]byte(record)); err != nil {
		t.Fatal(err)
	}
}

// TestShardedCrashMidFanout: a whole-process crash between one shard's WAL
// append and another's leaves the journals one operation apart; Open must
// roll the behind shards forward with the donated record — completing the
// in-flight operation, never discarding it — and the result must be
// bit-exact with an uninterrupted run that includes that operation.
func TestShardedCrashMidFanout(t *testing.T) {
	matcher := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
	script := generateScript(t, entity.Dirty, 221, 60, opMixes[1])
	cfg := sharded.Config{
		Kind: entity.Dirty, Blocker: &blocking.TokenBlocking{}, Matcher: matcher,
		Workers: 2, Shards: 3,
		Durable: incremental.DurableOptions{SnapshotEvery: 100, SegmentBytes: 1 << 16, NoSync: true},
	}
	single, err := incremental.New(incremental.Config{
		Kind: entity.Dirty, Blocker: &blocking.TokenBlocking{}, Matcher: matcher, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	dir := t.TempDir()
	sh, err := sharded.Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const k = 40
	for i := 0; i < k; i++ {
		if err := sh.Apply(ctx, script[i]); err != nil {
			t.Fatal(err)
		}
		if err := single.Apply(ctx, script[i]); err != nil {
			t.Fatal(err)
		}
	}
	// The in-flight op the crash interrupts: a delete of a known live
	// handle, journaled on shard 2 only.
	victimURI := ""
	var victimID int
	for i := k - 1; i >= 0; i-- {
		if id, ok := sh.Lookup(script[i].URI); ok {
			victimURI, victimID = script[i].URI, id
			break
		}
	}
	if victimURI == "" {
		t.Fatal("no live description to delete")
	}
	sh.Abandon() // whole-process hard stop, mid-fanout
	appendShardRecord(t, dir, 2, fmt.Sprintf(`{"op":"delete","id":%d}`, victimID))

	re, err := sharded.Open(dir, cfg)
	if err != nil {
		t.Fatalf("reopen after a mid-fanout tear: %v", err)
	}
	defer re.Close()
	if got := re.RolledForward(); got != 2 {
		t.Fatalf("rolled %d shards forward, want 2", got)
	}
	// The in-flight delete was completed everywhere: the reference applies
	// it too, and both keep streaming in lockstep afterwards.
	if err := single.Apply(ctx, incremental.Op{Kind: incremental.OpDelete, URI: victimURI}); err != nil {
		t.Fatal(err)
	}
	if _, ok := re.Lookup(victimURI); ok {
		t.Fatalf("in-flight delete of %s was not completed on reopen", victimURI)
	}
	assertShardedEqualsSingle(t, re, single, false, k+1)
	for i := k; i < len(script); i++ {
		if script[i].URI == victimURI {
			continue // consumed by the in-flight delete on both sides
		}
		if err := re.Apply(ctx, script[i]); err != nil {
			// Ops targeting the deleted description are invalid on both.
			if serr := single.Apply(ctx, script[i]); serr == nil {
				t.Fatalf("op %d failed sharded (%v) but passed single-node", i, err)
			}
			continue
		}
		if err := single.Apply(ctx, script[i]); err != nil {
			t.Fatalf("op %d passed sharded but failed single-node: %v", i, err)
		}
	}
	assertShardedEqualsSingle(t, re, single, false, len(script))
}

// TestShardedCrashMidFanoutKinds covers the roll-forward of each donated
// record kind — insert and update (delete is TestShardedCrashMidFanout) —
// and the refusal when journals diverge beyond the single in-flight op.
func TestShardedCrashMidFanoutKinds(t *testing.T) {
	matcher := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
	cfg := sharded.Config{
		Kind: entity.Dirty, Blocker: &blocking.TokenBlocking{}, Matcher: matcher,
		Workers: 2, Shards: 3,
		Durable: incremental.DurableOptions{SnapshotEvery: 100, SegmentBytes: 1 << 16, NoSync: true},
	}
	ctx := context.Background()
	seed := func(t *testing.T, dir string) (*sharded.Resolver, *incremental.Resolver) {
		t.Helper()
		sh, err := sharded.Open(dir, cfg)
		if err != nil {
			t.Fatal(err)
		}
		single, err := incremental.New(incremental.Config{
			Kind: entity.Dirty, Blocker: &blocking.TokenBlocking{}, Matcher: matcher, Workers: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, name := range []string{"alice smith", "alice smith berlin", "carol jones"} {
			d := &entity.Description{ID: -1, URI: fmt.Sprintf("u:%d", i), Attrs: []entity.Attribute{{Name: "name", Value: name}}}
			if _, err := sh.Insert(ctx, d); err != nil {
				t.Fatal(err)
			}
			if _, err := single.Insert(ctx, d); err != nil {
				t.Fatal(err)
			}
		}
		return sh, single
	}

	t.Run("insert", func(t *testing.T) {
		dir := t.TempDir()
		sh, single := seed(t, dir)
		sh.Abandon()
		appendShardRecord(t, dir, 1, `{"op":"insert","id":3,"uri":"u:new","attrs":[{"name":"name","value":"alice smith"}]}`)
		re, err := sharded.Open(dir, cfg)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer re.Close()
		if re.RolledForward() != 2 {
			t.Fatalf("rolled %d shards forward, want 2", re.RolledForward())
		}
		d := &entity.Description{ID: -1, URI: "u:new", Attrs: []entity.Attribute{{Name: "name", Value: "alice smith"}}}
		if _, err := single.Insert(ctx, d); err != nil {
			t.Fatal(err)
		}
		assertShardedEqualsSingle(t, re, single, false, 4)
	})

	t.Run("update", func(t *testing.T) {
		dir := t.TempDir()
		sh, single := seed(t, dir)
		sh.Abandon()
		appendShardRecord(t, dir, 0, `{"op":"update","id":2,"attrs":[{"name":"name","value":"alice smith"}]}`)
		re, err := sharded.Open(dir, cfg)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer re.Close()
		if re.RolledForward() != 2 {
			t.Fatalf("rolled %d shards forward, want 2", re.RolledForward())
		}
		if err := single.Update(ctx, 2, []entity.Attribute{{Name: "name", Value: "alice smith"}}); err != nil {
			t.Fatal(err)
		}
		assertShardedEqualsSingle(t, re, single, false, 4)
	})

	t.Run("beyond-one-op-refused", func(t *testing.T) {
		dir := t.TempDir()
		sh, _ := seed(t, dir)
		sh.Abandon()
		appendShardRecord(t, dir, 1, `{"op":"delete","id":0}`)
		appendShardRecord(t, dir, 1, `{"op":"delete","id":1}`)
		if _, err := sharded.Open(dir, cfg); err == nil {
			t.Fatal("journals two ops apart accepted")
		}
	})
}

// TestShardedCrashOnCompactionBoundary: the worst-placed whole-process
// crash — one shard journaled the in-flight op AND folded it into a
// snapshot (emptying its WAL tail) before the others appended theirs. The
// donor record survives inside the snapshot (incremental.Resolver
// LastRecord), so Open still rolls the behind shards forward.
func TestShardedCrashOnCompactionBoundary(t *testing.T) {
	matcher := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
	// Cadence 1: every operation compacts, so every shard's WAL tail is
	// empty at every boundary — the donor can only come from a snapshot.
	cfg := sharded.Config{
		Kind: entity.Dirty, Blocker: &blocking.TokenBlocking{}, Matcher: matcher,
		Workers: 2, Shards: 3,
		Durable: incremental.DurableOptions{SnapshotEvery: 1, SegmentBytes: 1 << 16, NoSync: true},
	}
	ctx := context.Background()
	dir := t.TempDir()
	sh, err := sharded.Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	single, err := incremental.New(incremental.Config{
		Kind: entity.Dirty, Blocker: &blocking.TokenBlocking{}, Matcher: matcher, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range []string{"alice smith", "alice smith berlin", "carol jones"} {
		d := &entity.Description{ID: -1, URI: fmt.Sprintf("u:%d", i), Attrs: []entity.Attribute{{Name: "name", Value: name}}}
		if _, err := sh.Insert(ctx, d); err != nil {
			t.Fatal(err)
		}
		if _, err := single.Insert(ctx, d); err != nil {
			t.Fatal(err)
		}
	}
	sh.Abandon()

	// Re-enact shard 1 completing the in-flight delete through its own
	// journal-then-apply-then-compact sequence (a delete never runs the
	// keyer, so the shard's partitioned index is untouched by opening its
	// directory with the raw configuration), ending with an empty tail.
	shardCfg := incremental.Config{
		Kind: entity.Dirty, Blocker: &blocking.TokenBlocking{}, Matcher: matcher, Workers: 2,
		Durable: incremental.DurableOptions{SnapshotEvery: 1, SegmentBytes: 1 << 16, NoSync: true},
	}
	ahead, err := incremental.OpenResolver(filepath.Join(dir, "shard-001"), shardCfg)
	if err != nil {
		t.Fatal(err)
	}
	if rec := ahead.Recovery(); rec.ReplayedRecords != 0 {
		t.Fatalf("shard tail not empty at the boundary: %d records", rec.ReplayedRecords)
	}
	if err := ahead.Delete(2); err != nil {
		t.Fatal(err)
	}
	if err := ahead.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := sharded.Open(dir, cfg)
	if err != nil {
		t.Fatalf("reopen after a compaction-boundary tear: %v", err)
	}
	defer re.Close()
	if re.RolledForward() != 2 {
		t.Fatalf("rolled %d shards forward, want 2", re.RolledForward())
	}
	if err := single.Delete(2); err != nil {
		t.Fatal(err)
	}
	assertShardedEqualsSingle(t, re, single, false, 4)
}
