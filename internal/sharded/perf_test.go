package sharded_test

import (
	"context"
	"testing"

	"entityres/internal/incremental"
	"entityres/internal/metablocking"
	"entityres/internal/sharded"
)

// TestShardedPerfAggregates: the coordinator's Perf sums every shard's
// counters, so checkpoint work done anywhere in a durable deployment is
// visible in one place — and reading it never reconciles. (Reconcile
// counters stay shard-local zero here: with Meta set the coordinator
// reconciles globally, the shards only maintain statistics.)
func TestShardedPerfAggregates(t *testing.T) {
	cfg := apiConfig(3, &metablocking.MetaBlocker{Weight: metablocking.CBS, Prune: metablocking.WEP})
	cfg.Durable = incremental.DurableOptions{SnapshotEvery: 2, NoSync: true}
	r, err := sharded.Open(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// A fresh open checkpoints each empty shard once (the chain anchor)
	// and nothing else.
	fresh := r.Perf()
	if fresh.FullSnapshots != 3 || fresh.SnapshotSlots != 0 || fresh.Reconciles != 0 {
		t.Fatalf("fresh deployment reports unexpected work: %+v", fresh)
	}
	ctx := context.Background()
	for _, d := range []struct{ uri, name string }{
		{"u:a", "alice smith"}, {"u:b", "alice smith"}, {"u:c", "alice smith"},
		{"u:d", "carol jones"}, {"u:e", "carol jones"}, {"u:f", "carol jones"},
	} {
		if _, err := r.Insert(ctx, apiDesc(d.uri, d.name)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	p := r.Perf()
	if p.FullSnapshots+p.DeltaSnapshots <= fresh.FullSnapshots || p.SnapshotSlots <= 0 {
		t.Fatalf("durable deployment reports no checkpoint work: %+v", p)
	}
	if again := r.Perf(); again != p {
		t.Fatalf("Perf itself changed the counters: %+v then %+v", p, again)
	}
}
