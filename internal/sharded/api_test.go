package sharded_test

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"entityres/internal/blocking"
	"entityres/internal/entity"
	"entityres/internal/incremental"
	"entityres/internal/matching"
	"entityres/internal/metablocking"
	"entityres/internal/sharded"
)

// The coordinator's read/serving surface: Kind, Lookup, Get, Clusters,
// Flush, per-shard edge introspection, and the broken/down error paths the
// differential matrices never hit.

func apiConfig(shards int, meta *metablocking.MetaBlocker) sharded.Config {
	return sharded.Config{
		Kind:    entity.Dirty,
		Blocker: &blocking.TokenBlocking{},
		Matcher: &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5},
		Workers: 2,
		Meta:    meta,
		Shards:  shards,
	}
}

func apiDesc(uri, name string) *entity.Description {
	return &entity.Description{ID: -1, URI: uri, Attrs: []entity.Attribute{{Name: "name", Value: name}}}
}

// TestShardedReadSurface drives the serving accessors end to end.
func TestShardedReadSurface(t *testing.T) {
	r, err := sharded.New(apiConfig(3, nil))
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind() != entity.Dirty {
		t.Fatalf("Kind = %v", r.Kind())
	}
	ctx := context.Background()
	a, err := r.Insert(ctx, apiDesc("u:a", "alice smith"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Insert(ctx, apiDesc("u:b", "alice smith"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Insert(ctx, apiDesc("u:c", "carol jones")); err != nil {
		t.Fatal(err)
	}
	if id, ok := r.Lookup("u:b"); !ok || id != b {
		t.Fatalf("Lookup(u:b) = %d,%v", id, ok)
	}
	if _, ok := r.Lookup("u:zzz"); ok {
		t.Fatal("Lookup of unknown URI succeeded")
	}
	d, ok := r.Get(a)
	if !ok || d.URI != "u:a" {
		t.Fatalf("Get(%d) = %v,%v", a, d, ok)
	}
	if _, ok := r.Get(99); ok {
		t.Fatal("Get of unknown handle succeeded")
	}
	cl := mustClusters(t, r)
	if len(cl) != 1 || len(cl[0]) != 2 || cl[0][0] != a || cl[0][1] != b {
		t.Fatalf("Clusters = %v", cl)
	}
	// Flush is a no-op without meta-blocking.
	if err := r.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	// Every match edge lives in exactly the shards that evaluated it; the
	// per-shard views union to the global match set.
	total := 0
	for i := 0; i < r.Shards(); i++ {
		for _, e := range r.MatchEdgesOfShard(i) {
			if !mustMatches(t, r).Contains(e.A, e.B) {
				t.Fatalf("shard %d holds edge %v outside the global match set", i, e)
			}
			total++
		}
	}
	if total != mustMatches(t, r).Len() {
		t.Fatalf("shard-local edges sum to %d, global matches %d", total, mustMatches(t, r).Len())
	}
	if r.MatchEdgesOfShard(99) != nil {
		t.Fatal("MatchEdgesOfShard out of range returned edges")
	}
	// Duplicate URIs and unknown handles are rejected at the coordinator.
	if _, err := r.Insert(ctx, apiDesc("u:a", "imposter")); err == nil {
		t.Fatal("duplicate URI accepted")
	}
	if err := r.Update(ctx, 99, nil); err == nil {
		t.Fatal("update of unknown handle accepted")
	}
	if err := r.Delete(99); err == nil {
		t.Fatal("delete of unknown handle accepted")
	}
	if _, err := r.Insert(ctx, nil); err == nil {
		t.Fatal("nil insert accepted")
	}
	// Close disables mutation; reads keep serving.
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Insert(ctx, apiDesc("u:d", "dora")); err == nil {
		t.Fatal("insert after Close accepted")
	}
	if got := mustClusters(t, r); len(got) != 1 {
		t.Fatalf("reads after Close broke: %v", got)
	}
}

// TestShardedMetaFlush: Flush settles the deferred global reconcile, and a
// second Flush with nothing new is free.
func TestShardedMetaFlush(t *testing.T) {
	r, err := sharded.New(apiConfig(2, &metablocking.MetaBlocker{Weight: metablocking.CBS, Prune: metablocking.WEP}))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, d := range []*entity.Description{apiDesc("u:a", "alice smith"), apiDesc("u:b", "alice smith")} {
		if _, err := r.Insert(ctx, d); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	st := mustStats(t, r)
	if st.Matches != 1 || st.Comparisons != 1 || st.KeptPairs != 1 {
		t.Fatalf("stats after flush = %+v", st)
	}
	if err := r.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if st2 := mustStats(t, r); st2 != st {
		t.Fatalf("idle flush changed state: %+v vs %+v", st2, st)
	}
	if rb := mustRestructuredBlocks(t, r); rb == nil || rb.Len() != 1 {
		t.Fatalf("RestructuredBlocks = %v", rb)
	}
}

// TestShardedLifecycleErrors covers the stop/rejoin misuse paths.
func TestShardedLifecycleErrors(t *testing.T) {
	dir := t.TempDir()
	cfg := apiConfig(2, nil)
	cfg.Durable.NoSync = true
	r, err := sharded.Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Insert(context.Background(), apiDesc("u:a", "alice")); err != nil {
		t.Fatal(err)
	}
	if err := r.StopShard(7); err == nil {
		t.Fatal("StopShard out of range accepted")
	}
	if _, err := r.RejoinShard(7); err == nil {
		t.Fatal("RejoinShard out of range accepted")
	}
	if _, err := r.RejoinShard(0); err == nil {
		t.Fatal("RejoinShard of a running shard accepted")
	}
	if err := r.StopShard(0); err != nil {
		t.Fatal(err)
	}
	if err := r.StopShard(0); err == nil {
		t.Fatal("double StopShard accepted")
	}
	if _, err := r.RejoinShard(0); err != nil {
		t.Fatal(err)
	}
	// A fresh (never-recovered) resolver reports no recovery.
	if r.Recovered() {
		t.Fatal("fresh directory reported recovered state")
	}
}

// TestShardedOpenErrors covers the manifest and configuration guard paths.
func TestShardedOpenErrors(t *testing.T) {
	// A corrupt manifest refuses to open rather than guessing the layout.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "shards.manifest"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := sharded.Open(dir, apiConfig(2, nil)); err == nil {
		t.Fatal("corrupt manifest accepted")
	}
	// Invalid configurations fail before any directory is touched.
	if _, err := sharded.Open(t.TempDir(), sharded.Config{Shards: 2}); err == nil {
		t.Fatal("blocker-less config accepted")
	}
	// Unknown op kinds are rejected by Apply.
	r, err := sharded.New(apiConfig(2, nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Apply(context.Background(), incremental.Op{Kind: incremental.OpKind(99)}); err == nil {
		t.Fatal("unknown op kind accepted")
	}
	// RejoinShard on an in-memory resolver is refused like StopShard.
	if _, err := r.RejoinShard(0); err == nil {
		t.Fatal("RejoinShard on an in-memory resolver accepted")
	}
}

// TestShardedCancellationGatesAdmission: a done context fails the
// operation before anything is touched — it can never fire mid-fan-out
// and split the shard replicas (which would permanently disable the
// resolver). Once admitted, an operation completes everywhere.
func TestShardedCancellationGatesAdmission(t *testing.T) {
	r, err := sharded.New(apiConfig(3, nil))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := r.Insert(ctx, apiDesc("u:a", "alice smith")); err != nil {
		t.Fatal(err)
	}
	before := mustStats(t, r)
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := r.Insert(cancelled, apiDesc("u:b", "bob")); err == nil {
		t.Fatal("insert admitted under a done context")
	}
	if err := r.Update(cancelled, 0, nil); err == nil {
		t.Fatal("update admitted under a done context")
	}
	if st := mustStats(t, r); st != before {
		t.Fatalf("rejected ops mutated state: %+v vs %+v", st, before)
	}
	// The resolver is NOT broken: the next live-context op succeeds and
	// handles continue densely (no slot was burned anywhere).
	id, err := r.Insert(ctx, apiDesc("u:b", "alice smith"))
	if err != nil {
		t.Fatalf("resolver unusable after a rejected op: %v", err)
	}
	if id != 1 {
		t.Fatalf("handle %d after rejected ops, want 1", id)
	}
	if st := mustStats(t, r); st.Inserts != 2 || st.Matches != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestLayoutMixingRefused: a directory serving one deployment form cannot
// silently be opened as the other — both directions fail loudly instead of
// starting a fresh journal beside the real one.
func TestLayoutMixingRefused(t *testing.T) {
	ctx := context.Background()
	cfg := apiConfig(2, nil)
	cfg.Durable.NoSync = true

	// Single-node directory refused by sharded.Open.
	singleDir := t.TempDir()
	sr, err := incremental.OpenResolver(singleDir, incremental.Config{
		Kind:    entity.Dirty,
		Blocker: &blocking.TokenBlocking{},
		Matcher: &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5},
		Durable: incremental.DurableOptions{NoSync: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sr.Insert(ctx, apiDesc("u:a", "alice")); err != nil {
		t.Fatal(err)
	}
	if err := sr.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sharded.Open(singleDir, cfg); err == nil {
		t.Fatal("sharded.Open accepted a single-node journal directory")
	}

	// Sharded directory refused by the single-node OpenResolver.
	shardedDir := t.TempDir()
	r, err := sharded.Open(shardedDir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Insert(ctx, apiDesc("u:a", "alice")); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := incremental.OpenResolver(shardedDir, incremental.Config{
		Kind:    entity.Dirty,
		Blocker: &blocking.TokenBlocking{},
		Matcher: &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5},
		Durable: incremental.DurableOptions{NoSync: true},
	}); err == nil {
		t.Fatal("OpenResolver accepted a sharded directory root")
	}
}
