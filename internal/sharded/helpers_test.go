package sharded_test

import (
	"testing"

	"entityres/internal/blocking"
	"entityres/internal/entity"
	"entityres/internal/incremental"
)

// The error-returning read API makes every reconciling read two-valued on
// both the sharded coordinator and the single-node resolver; these
// interface-typed helpers keep test bodies on the happy path for either.

func mustStats(t testing.TB, r interface {
	Stats() (incremental.Stats, error)
}) incremental.Stats {
	t.Helper()
	st, err := r.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	return st
}

func mustMatches(t testing.TB, r interface {
	Matches() (*entity.Matches, error)
}) *entity.Matches {
	t.Helper()
	m, err := r.Matches()
	if err != nil {
		t.Fatalf("Matches: %v", err)
	}
	return m
}

func mustClusters(t testing.TB, r interface {
	Clusters() ([][]entity.ID, error)
}) [][]entity.ID {
	t.Helper()
	cl, err := r.Clusters()
	if err != nil {
		t.Fatalf("Clusters: %v", err)
	}
	return cl
}

func mustSnapshot(t testing.TB, r interface {
	Snapshot() (*entity.Collection, *entity.Matches, error)
}) (*entity.Collection, *entity.Matches) {
	t.Helper()
	coll, m, err := r.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	return coll, m
}

func mustMatchedWith(t testing.TB, r interface {
	MatchedWith(entity.ID) ([]entity.ID, error)
}, id entity.ID) []entity.ID {
	t.Helper()
	ids, err := r.MatchedWith(id)
	if err != nil {
		t.Fatalf("MatchedWith(%d): %v", id, err)
	}
	return ids
}

func mustRestructuredBlocks(t testing.TB, r interface {
	RestructuredBlocks() (*blocking.Blocks, error)
}) *blocking.Blocks {
	t.Helper()
	bl, err := r.RestructuredBlocks()
	if err != nil {
		t.Fatalf("RestructuredBlocks: %v", err)
	}
	return bl
}
