// Package sharded distributes the streaming resolver across the blocking-key
// space: a coordinator partitions keys by hash over N shard resolvers — each
// a full incremental.Resolver with its own blocking.BlockIndex, optional
// metablocking.WeightedGraph and optional per-shard WAL directory — fans
// every Insert, Update and Delete out to the shards in parallel, and merges
// the shard-local match edges into a coordinator-owned graph.Dynamic so
// every read (matches, clusters, stats, blocks, restructured blocks) is
// globally consistent.
//
// The partitioning is the paper's web-scale lever (key-partitioned blocking
// distributes exactly the quadratic part of the work) constrained by the
// repo's differential contract: for ANY shard count N >= 1 the sharded
// resolver's matches, comparison counts, blocks and restructured blocks are
// bit-exact with the single-node incremental.Resolver — and therefore with
// a from-scratch batch run — after any operation sequence. Three mechanisms
// carry that guarantee:
//
//   - Replicated stream, partitioned index. Every shard receives every
//     operation (keeping the handle space identical everywhere), but shard i
//     indexes a description only under the keys it owns
//     (hash(key) % N == i), so each candidate pair co-occurs exactly in the
//     shards owning its shared keys and the per-shard quadratic work shrinks
//     with N.
//
//   - Pair ownership by first shared key. The single-node resolver counts
//     each delta candidate pair once — under the pair's first (ascending)
//     shared blocking key, where the CompareIterator's seen-set first meets
//     it. Shards reproduce that rule locally through
//     incremental.Config.DeltaFilter: a pair is evaluated only by the shard
//     owning its first shared key, so no pair is evaluated twice, none is
//     missed, and the shard comparison counters sum to the single-node
//     count bit for bit.
//
//   - Coordinator-merged reads. Match edges merge idempotently into the
//     coordinator's graph.Dynamic as operations complete; with live
//     meta-blocking the shards instead maintain per-key-space weighted
//     blocking graphs whose statistics are strictly additive (every block
//     lives wholly in one shard), so the coordinator merges them at read
//     time and runs the exact batch pruning + evaluation of the single-node
//     deferred reconcile (see meta.go).
//
// Durability is per shard: Open journals every shard's operations to its
// own WAL directory (shard-%03d), and a shard that is hard-stopped
// mid-stream (StopShard — the in-process kill -9) rejoins by restoring its
// own snapshot plus WAL tail (RejoinShard, riding
// incremental.OpenResolver's bounded recovery) without any global replay.
// The shard logs run in group-commit mode (wal.Options.GroupCommit) so
// concurrent appenders share fsyncs; note that today's coordinator
// serializes operations, so each shard log sees one appender at a time and
// batching only materializes once ops pipeline into shards concurrently
// (the multi-process-transport follow-on) — with a single appender the
// mode is sync-for-sync identical to per-op fsync. See the README's
// "Sharded streaming" section for the topology.
package sharded

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync"

	"entityres/internal/blocking"
	"entityres/internal/entity"
	"entityres/internal/graph"
	"entityres/internal/incremental"
	"entityres/internal/matching"
	"entityres/internal/metablocking"
)

// Config parameterizes a sharded streaming resolver. Kind, Blocker,
// Matcher, Workers and Meta mean exactly what they mean on
// incremental.Config (Workers sizes each shard's delta-matching pool);
// validation is identical, so a configuration the single-node resolver
// rejects is rejected here with the same error.
type Config struct {
	// Kind is the resolution setting of the stream (default Dirty).
	Kind entity.Kind
	// Blocker derives the blocking keys (required, collection-independent).
	Blocker blocking.StreamableBlocker
	// Matcher is the thresholded match decision (required, corpus-free).
	Matcher *matching.Matcher
	// Workers sizes each shard's delta-matching worker pool; <= 0 means 1.
	Workers int
	// Meta, when set, prunes the comparison frontier through the live
	// weighted blocking graph (stream-safe subset only): the shards
	// maintain per-key-space statistics and the coordinator reconciles
	// globally at read time.
	Meta *metablocking.MetaBlocker
	// Shards is the number of key-space partitions (resolvers); <= 0 means
	// 1. Results are bit-exact for every value.
	Shards int
	// Durable tunes the per-shard WALs of a resolver opened with Open —
	// segment size, snapshot cadence, fsync policy. Open always enables
	// group commit on the shard logs (wal.Options.GroupCommit): identical
	// durability and sync count under today's one-appender-per-log
	// coordinator, automatic fsync batching once operations pipeline into
	// shards concurrently. New ignores the whole struct.
	Durable incremental.DurableOptions
}

// shard is one key-space partition: its resolver, its key lens and
// lifecycle state.
type shard struct {
	res  *incremental.Resolver
	lens *shardLens
	// down marks a hard-stopped shard: mutating operations fail until
	// RejoinShard restores it from its own snapshot + WAL tail.
	down bool
}

// Resolver is the sharded streaming resolver: the coordinator plus its
// shard resolvers. All methods are safe for concurrent use; operations are
// serialized by the coordinator and fanned out to the shards in parallel.
type Resolver struct {
	cfg Config
	// dir is the per-shard WAL root ("" for in-memory resolvers).
	dir string

	// mu is a reader/writer lock mirroring the single-node resolver's
	// discipline: mutations hold it exclusively, reads share it (reads that
	// must reconcile deferred meta-blocking work first go through
	// lockShared). Read-side shard aggregation fans across the shards
	// concurrently under the shared lock — see fanRead.
	mu     sync.RWMutex
	shards []*shard
	// broken, once set, fails every further mutating operation: the
	// resolver was closed, or a partial shard failure left the shards
	// disagreeing and the coordinator refuses to widen the divergence.
	broken error

	// The coordinator's replica of the stream's control plane: every slot
	// in handle order (dead slots as tombstones, mirroring the shards),
	// liveness, and the URI index. Shards hold the same slots; the replica
	// serves reads without touching a shard.
	coll      *entity.Collection
	live      []bool
	liveCount int
	byURI     map[string]entity.ID

	// dyn is the coordinator-owned global match graph: the idempotent union
	// of the shard-local match edges (non-meta), or the reconcile-maintained
	// {kept ∧ similar} edge set (meta; see meta.go).
	dyn *graph.Dynamic

	// Meta-blocking coordinator state (unused without cfg.Meta): the cached
	// pairwise matcher decisions, the result and weighted graph of the
	// latest reconcile, the deferred-work flag and the reconcile comparison
	// counter — the exact counterparts of the single-node resolver's
	// deferred-reconcile state, operating on the shard-merged statistics
	// through the shared incremental.ReconcileKept core.
	simCache        *incremental.DecisionCache
	lastKept        []graph.Edge
	merged          *metablocking.WeightedGraph
	metaDirty       bool
	metaComparisons int64
	// coordJ is the coordinator journal making the decision cache and
	// metaComparisons restart-exact (durable meta-blocking deployments
	// only; see coordjournal.go); coordOps counts the operations it has
	// journaled.
	coordJ   *coordJournal
	coordOps int64

	// stats holds the operation counters; comparison and graph-shaped
	// fields are derived at read time.
	stats incremental.Stats

	// perf holds the coordinator's own work counters — shard fan-outs and
	// coordinator-journal appends, work no shard sees; Perf sums them with
	// the per-shard counters.
	perf incremental.PerfCounters

	// recovery records what Open restored, one entry per shard;
	// rolledForward counts the shards Open rolled forward to complete an
	// operation a whole-process crash left on only some shard journals.
	recovery      []incremental.RecoveryInfo
	rolledForward int
}

// fanoutCtx is the context shard applies run under: never cancelled, so an
// admitted operation completes on every shard or fails on every shard for
// the same deterministic reason — a caller's timeout firing mid-fan-out
// can never leave the replicas split (see fanout).
var fanoutCtx = context.Background()

// keyOwner maps a blocking key to its owning shard: FNV-1a over the key
// bytes, mod the shard count. Deterministic across processes and runs, so
// a rejoining shard reconstructs exactly its own key space.
func keyOwner(key string, shards int) int {
	h := fnv.New64a()
	h.Write([]byte(key))
	return int(h.Sum64() % uint64(shards))
}

// shardLens is one shard's view of the blocking-key space: the filtered
// key function its resolver indexes with, the pair-ownership delta filter,
// and a memo of every indexed description's FULL distinct key set. The
// memo is what keeps the ownership rule cheap: every operation's
// description passes through the lens keyer (which refreshes its entry —
// including during WAL replay, so entries are always point-in-time
// correct for the shard's own state), and candidates are then looked up
// instead of re-tokenized. A lens belongs to exactly one
// incremental.Resolver instance, whose internal lock serializes every
// access; RejoinShard builds a fresh lens with the fresh resolver.
//
// The memos are deliberately NOT shared across shards even though steady
// state stores the same full key sets N times: a rejoining shard replays
// its WAL tail against its own historical state, where a candidate's keys
// are those of its attributes AS OF that replay point — reading a shared,
// current memo there would mis-assign pair ownership and silently break
// the bit-exactness contract. Deduplicating the derivation belongs to the
// routed-op transport follow-on (see ROADMAP), where ops ship with
// precomputed key sets.
type shardLens struct {
	raw           blocking.KeyFunc
	shards, index int
	memo          map[entity.ID][]string
}

func newShardLens(blocker blocking.StreamableBlocker, shards, index int) *shardLens {
	return &shardLens{
		raw:    blocker.StreamKeyer(),
		shards: shards,
		index:  index,
		memo:   make(map[entity.ID][]string),
	}
}

// refresh derives d's full normalized key set and memoizes it by handle.
func (l *shardLens) refresh(d *entity.Description) []string {
	full := blocking.DistinctKeys(l.raw(d))
	if d.ID >= 0 {
		l.memo[d.ID] = full
	}
	return full
}

// keysOf returns d's memoized full key set, deriving it on a miss (a
// description restored from a snapshot whose keyer has not run yet).
func (l *shardLens) keysOf(d *entity.Description) []string {
	if ks, ok := l.memo[d.ID]; ok {
		return ks
	}
	return l.refresh(d)
}

// evict drops a dead handle's memo entry; the coordinator calls it on
// delete so the memo tracks (roughly) the live set rather than the
// stream's whole history.
func (l *shardLens) evict(id entity.ID) { delete(l.memo, id) }

// keyer is the shard's blocking.KeyFunc: the owned slice of the full key
// set, refreshing the memo as a side effect — indexing always runs it, so
// the memo tracks every indexed description's current keys.
func (l *shardLens) keyer(d *entity.Description) []string {
	var owned []string
	for _, k := range l.refresh(d) {
		if keyOwner(k, l.shards) == l.index {
			owned = append(owned, k)
		}
	}
	return owned
}

// filter is the shard's incremental.Config.DeltaFilter: a candidate pair
// is claimed only under the pair's first shared blocking key — the key the
// single-node resolver's seen-set dedup counts it under — so every pair is
// evaluated by exactly one shard and the comparison counters sum exactly.
func (l *shardLens) filter(d *entity.Description) func(key string, other *entity.Description) bool {
	dKeys := l.keysOf(d)
	return func(key string, other *entity.Description) bool {
		first, shared := firstShared(dKeys, l.keysOf(other))
		return shared && first == key
	}
}

// shardBlocker wraps the raw blocker with a lens keyer. Name is forwarded
// unchanged: a shard snapshot fingerprints under the raw blocker, and the
// owned subset is re-derived from (blocker, shards, index) on every open.
type shardBlocker struct {
	blocking.StreamableBlocker
	lens *shardLens
}

// StreamKeyer implements blocking.StreamableBlocker with the owned subset.
func (b *shardBlocker) StreamKeyer() blocking.KeyFunc { return b.lens.keyer }

// firstShared returns the smallest string present in both ascending
// slices, and whether one exists.
func firstShared(a, b []string) (string, bool) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return a[i], true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return "", false
}

// singleConfig renders the configuration as the equivalent single-node
// incremental.Config — the validation probe and the reference the
// differential suite compares against.
func (cfg Config) singleConfig() incremental.Config {
	return incremental.Config{
		Kind:    cfg.Kind,
		Blocker: cfg.Blocker,
		Matcher: cfg.Matcher,
		Workers: cfg.Workers,
		Meta:    cfg.Meta,
	}
}

// shardConfig renders shard i's incremental.Config and the lens backing
// it — one fresh lens per resolver instance, returned so the coordinator
// can evict deleted handles from its memo.
func (cfg Config) shardConfig(i int) (incremental.Config, *shardLens) {
	c := cfg.singleConfig()
	lens := newShardLens(cfg.Blocker, cfg.normShards(), i)
	c.Blocker = &shardBlocker{StreamableBlocker: cfg.Blocker, lens: lens}
	c.DeltaFilter = lens.filter
	c.Durable = cfg.Durable
	c.Durable.GroupCommit = true
	return c, lens
}

// normShards returns the effective shard count.
func (cfg Config) normShards() int {
	if cfg.Shards <= 0 {
		return 1
	}
	return cfg.Shards
}

// New validates the configuration and returns an empty in-memory sharded
// resolver. Validation matches the single-node resolver exactly.
func New(cfg Config) (*Resolver, error) {
	r, err := newCoordinator(cfg)
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.normShards(); i++ {
		scfg, lens := cfg.shardConfig(i)
		sres, err := incremental.New(scfg)
		if err != nil {
			return nil, err
		}
		r.shards = append(r.shards, &shard{res: sres, lens: lens})
	}
	return r, nil
}

// newCoordinator validates cfg (by probing the equivalent single-node
// configuration, so the two cannot drift on what is valid) and builds the
// empty coordinator.
func newCoordinator(cfg Config) (*Resolver, error) {
	if _, err := incremental.New(cfg.singleConfig()); err != nil {
		return nil, fmt.Errorf("sharded: %w", err)
	}
	r := &Resolver{
		cfg:   cfg,
		coll:  entity.NewCollection(cfg.Kind),
		byURI: make(map[string]entity.ID),
		dyn:   graph.NewDynamic(),
	}
	if cfg.Meta != nil {
		r.simCache = incremental.NewDecisionCache()
	}
	return r, nil
}

// Kind returns the resolution setting of the stream.
func (r *Resolver) Kind() entity.Kind { return r.cfg.Kind }

// Shards returns the number of key-space partitions.
func (r *Resolver) Shards() int { return r.cfg.normShards() }

// ready reports whether every shard can accept the next operation.
// Callers hold r.mu.
func (r *Resolver) ready() error {
	if r.broken != nil {
		return r.broken
	}
	for i, sh := range r.shards {
		if sh.down {
			return fmt.Errorf("sharded: shard %d is stopped; rejoin it before streaming further operations", i)
		}
	}
	return nil
}

// fanout runs fn against every shard in parallel and reconciles the
// outcome: all-success applies, all-failure means every shard rolled the
// operation back (the incremental resolver's failed ops restore their
// pre-op state), and a partial failure leaves the shards disagreeing — the
// coordinator then refuses every further mutation rather than widen the
// divergence (for durable resolvers the journals would disagree too, so
// the partial-failure path is reserved for genuine faults like a dead
// shard disk). That is why operations are admitted, not interrupted: the
// caller's context is checked before the fan-out and deliberately NOT
// propagated into it — a cancellation observed by some shards and not
// others is exactly the split this design must never produce. Callers
// hold r.mu.
func (r *Resolver) fanout(fn func(sr *incremental.Resolver) error) (allFailed bool, err error) {
	r.perf.FanOuts++
	errs := make([]error, len(r.shards))
	var wg sync.WaitGroup
	for i := range r.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(r.shards[i].res)
		}(i)
	}
	wg.Wait()
	failed := 0
	var first error
	for _, e := range errs {
		if e != nil {
			failed++
			if first == nil {
				first = e
			}
		}
	}
	switch {
	case failed == 0:
		return false, nil
	case failed == len(r.shards):
		return true, first
	default:
		r.broken = fmt.Errorf("sharded: resolver disabled after a partial shard failure (%d of %d shards failed; first error: %v)", failed, len(r.shards), first)
		return false, r.broken
	}
}

// lockShared acquires the coordinator lock in shared mode with the
// reconcile-then-share discipline of the single-node resolver: on return
// the caller holds the read lock over clean state and must release with
// r.mu.RUnlock. A dirty graph is reconciled once under the write lock — a
// read stampede queues there, the first holder pays the one global
// reconcile, everyone behind it proceeds under the shared lock.
func (r *Resolver) lockShared(ctx context.Context) error {
	for {
		r.mu.RLock()
		if r.cfg.Meta == nil || !r.metaDirty {
			return nil
		}
		r.mu.RUnlock()
		r.mu.Lock()
		err := r.reconcile(ctx)
		r.mu.Unlock()
		if err != nil {
			return err
		}
	}
}

// fanRead runs fn against every shard concurrently and returns the results
// in shard order — the read-side counterpart of fanout. Each shard
// resolver serializes internally on its own lock, so concurrent
// coordinator readers contend per shard instead of on one global mutex.
// Callers hold r.mu in either mode.
func fanRead[T any](shards []*shard, fn func(sr *incremental.Resolver) T) []T {
	out := make([]T, len(shards))
	var wg sync.WaitGroup
	for i := range shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = fn(shards[i].res)
		}(i)
	}
	wg.Wait()
	return out
}

// Insert adds a new description to every shard and resolves it against the
// shard-partitioned delta frontier. It returns the internal handle, which
// is identical on the coordinator and every shard. The context gates
// admission only: a context that is already done fails the operation
// before anything is touched, but once admitted the operation runs to
// completion on every shard — see fanout.
func (r *Resolver) Insert(ctx context.Context, d *entity.Description) (entity.ID, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.ready(); err != nil {
		return -1, err
	}
	if err := ctx.Err(); err != nil {
		return -1, err
	}
	if d == nil {
		return -1, fmt.Errorf("sharded: insert of nil description")
	}
	if d.URI != "" {
		if _, taken := r.byURI[d.URI]; taken {
			return -1, fmt.Errorf("sharded: URI %q already live", d.URI)
		}
	}
	// Pre-validate what entity.Collection.Add would reject, so a bad
	// description fails here — before any shard sees it — with the same
	// reason everywhere.
	switch r.cfg.Kind {
	case entity.CleanClean:
		if d.Source != 0 && d.Source != 1 {
			return -1, fmt.Errorf("sharded: clean-clean collection requires source 0 or 1, got %d", d.Source)
		}
	default:
		if d.Source != 0 {
			return -1, fmt.Errorf("sharded: dirty collection requires source 0, got %d", d.Source)
		}
	}
	// The next slot is deterministic; the coordinator's replica slot is
	// only added once the fan-out succeeds. An all-shards failure can only
	// come from the journal refusing the record BEFORE anything applied
	// (the fan-out context never cancels, and validation already passed),
	// which burns no slot on any shard — so the coordinator must not burn
	// one either, keeping handles aligned for a retry.
	id := r.coll.Len()
	if _, err := r.fanout(func(sr *incremental.Resolver) error {
		sid, serr := sr.Insert(fanoutCtx, d)
		if serr != nil {
			return serr
		}
		if sid != id {
			return fmt.Errorf("sharded: shard assigned handle %d, coordinator expected %d", sid, id)
		}
		return nil
	}); err != nil {
		return -1, err
	}
	cp := d.Clone()
	r.coll.MustAdd(cp)
	r.live = append(r.live, true)
	if cp.URI != "" {
		r.byURI[cp.URI] = id
	}
	r.liveCount++
	r.stats.Inserts++
	r.noteMutation(id)
	r.afterMutation(id, true)
	return id, nil
}

// Update replaces the attributes of the live description with the given
// handle on every shard and re-resolves its shard-partitioned frontier.
// Like Insert, the context gates admission only.
func (r *Resolver) Update(ctx context.Context, id entity.ID, attrs []entity.Attribute) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.ready(); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if !r.isLive(id) {
		return fmt.Errorf("sharded: update of unknown description %d", id)
	}
	if _, err := r.fanout(func(sr *incremental.Resolver) error {
		return sr.Update(fanoutCtx, id, attrs)
	}); err != nil {
		return err
	}
	r.coll.Get(id).Attrs = append([]entity.Attribute(nil), attrs...)
	r.stats.Updates++
	r.noteMutation(id)
	r.dyn.RemoveNode(id)
	r.afterMutation(id, true)
	return nil
}

// Delete removes the live description with the given handle from every
// shard; its match edges disappear and its cluster is split.
func (r *Resolver) Delete(id entity.ID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.ready(); err != nil {
		return err
	}
	if !r.isLive(id) {
		return fmt.Errorf("sharded: delete of unknown description %d", id)
	}
	if _, err := r.fanout(func(sr *incremental.Resolver) error {
		return sr.Delete(id)
	}); err != nil {
		return err
	}
	d := r.coll.Get(id)
	if d.URI != "" {
		delete(r.byURI, d.URI)
	}
	r.live[id] = false
	r.liveCount--
	r.stats.Deletes++
	r.noteMutation(id)
	r.dyn.RemoveNode(id)
	// The handle is dead for good (slots are never reused), so every
	// shard lens can drop its memoized key set.
	for _, sh := range r.shards {
		sh.lens.evict(id)
	}
	r.afterMutation(id, false)
	return nil
}

// afterMutation folds an operation's effect into the coordinator's match
// state: without meta-blocking the shards matched eagerly, so id's new
// edges are the union of the shards' neighbors of id; with meta-blocking
// everything is deferred to the next read's reconcile. Callers hold r.mu.
func (r *Resolver) afterMutation(id entity.ID, indexed bool) {
	if r.cfg.Meta != nil {
		r.simCache.Invalidate(id)
		r.metaDirty = true
		return
	}
	if !indexed {
		return
	}
	for _, sh := range r.shards {
		for _, nb := range sh.res.MatchNeighbors(id) {
			r.dyn.AddEdge(id, nb, 1)
		}
	}
}

// isLive reports whether id is a live slot. Callers hold r.mu.
func (r *Resolver) isLive(id entity.ID) bool {
	return id >= 0 && id < len(r.live) && r.live[id]
}

// Lookup returns the handle of the live description with the given URI.
func (r *Resolver) Lookup(uri string) (entity.ID, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	id, ok := r.byURI[uri]
	return id, ok
}

// Get returns a copy of the live description with the given handle.
func (r *Resolver) Get(id entity.ID) (*entity.Description, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if !r.isLive(id) {
		return nil, false
	}
	return r.coll.Get(id).Clone(), true
}

// Apply executes one URI-addressed operation — the same op-log exchange
// form the single-node resolver accepts, so erctl watch can replay a log
// through either.
func (r *Resolver) Apply(ctx context.Context, op incremental.Op) error {
	switch op.Kind {
	case incremental.OpInsert:
		d := &entity.Description{ID: -1, URI: op.URI, Source: op.Source, Attrs: op.Attrs}
		_, err := r.Insert(ctx, d)
		return err
	case incremental.OpUpdate:
		id, ok := r.Lookup(op.URI)
		if !ok {
			return fmt.Errorf("sharded: update of unknown URI %q", op.URI)
		}
		return r.Update(ctx, id, op.Attrs)
	case incremental.OpDelete:
		id, ok := r.Lookup(op.URI)
		if !ok {
			return fmt.Errorf("sharded: delete of unknown URI %q", op.URI)
		}
		return r.Delete(id)
	default:
		return fmt.Errorf("sharded: unknown op kind %v", op.Kind)
	}
}

// ApplyBatch applies a batch of insert, update and delete records as one
// amortized operation: one admission check, ONE fan-out to the shards
// (each shard journals the whole batch as a single append through its own
// ApplyBatch — one fsync per shard instead of N), and one coordinator-
// journal record carrying every touched handle. The resolved state is
// bit-identical to applying the same records one at a time through Insert,
// Update and Delete.
//
// Validation mirrors the single-node batch path exactly (shared
// incremental.PlanBatch core): records are checked up front against the
// sequential state the batch builds over the coordinator's replica, so a
// bad batch fails here — before any shard sees it — and an admitted batch
// cannot fail mid-apply on a healthy shard. Updates and deletes address
// their target by handle, or by URI when ID is negative; resolved handles
// are written back into recs. Like every mutation, the context gates
// admission only. An empty batch is a no-op.
func (r *Resolver) ApplyBatch(ctx context.Context, recs []incremental.Record) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.ready(); err != nil {
		return err
	}
	if len(recs) == 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	err := incremental.PlanBatch(r.cfg.Kind, r.coll.Len(),
		func(uri string) (entity.ID, bool) { id, ok := r.byURI[uri]; return id, ok },
		r.isLive,
		func(id entity.ID) string { return r.coll.Get(id).URI },
		recs)
	if err != nil {
		return fmt.Errorf("sharded: %w", err)
	}
	// One fan-out for the whole batch. Each shard re-plans against its own
	// (identical) replica and writes the resolved handles back, so every
	// shard gets a private copy of the records; the handles must agree with
	// the coordinator's plan or the replicas have drifted. Shard-side
	// ApplyBatch journals atomically — a crash leaves a shard with the
	// whole batch or none of it, which is exactly the tear repairFanoutTear
	// knows how to roll forward.
	if _, err := r.fanout(func(sr *incremental.Resolver) error {
		cp := make([]incremental.Record, len(recs))
		copy(cp, recs)
		if serr := sr.ApplyBatch(fanoutCtx, cp); serr != nil {
			return serr
		}
		for i := range cp {
			if cp[i].ID != recs[i].ID {
				return fmt.Errorf("sharded: shard resolved batch record %d to handle %d, coordinator planned %d", i, cp[i].ID, recs[i].ID)
			}
		}
		return nil
	}); err != nil {
		return err
	}
	// Fold the batch into the replica in record order — the same mutations
	// the per-op path performs, minus the per-op fan-outs and journal
	// records.
	ids := make([]entity.ID, len(recs))
	for i := range recs {
		rec := &recs[i]
		ids[i] = rec.ID
		switch rec.Kind {
		case incremental.OpInsert:
			cp := &entity.Description{ID: -1, URI: rec.URI, Source: rec.Source, Attrs: append([]entity.Attribute(nil), rec.Attrs...)}
			r.coll.MustAdd(cp)
			r.live = append(r.live, true)
			if cp.URI != "" {
				r.byURI[cp.URI] = rec.ID
			}
			r.liveCount++
			r.stats.Inserts++
		case incremental.OpUpdate:
			r.coll.Get(rec.ID).Attrs = append([]entity.Attribute(nil), rec.Attrs...)
			r.stats.Updates++
			r.dyn.RemoveNode(rec.ID)
		case incremental.OpDelete:
			if d := r.coll.Get(rec.ID); d.URI != "" {
				delete(r.byURI, d.URI)
			}
			r.live[rec.ID] = false
			r.liveCount--
			r.stats.Deletes++
			r.dyn.RemoveNode(rec.ID)
			for _, sh := range r.shards {
				sh.lens.evict(rec.ID)
			}
		}
	}
	// One coordinator-journal append for the whole batch (meta-blocking
	// durability; no-op otherwise).
	r.noteBatch(ids)
	if r.cfg.Meta != nil {
		for _, id := range ids {
			r.simCache.Invalidate(id)
		}
		r.metaDirty = true
		return nil
	}
	// Patch the coordinator's match graph to the shards' post-batch truth.
	// Every touched handle's stale edges were removed above (updates and
	// deletes drop the node); re-adding each inserted or updated handle's
	// FINAL shard neighbors reproduces the per-op lockstep result: eager
	// matching only moves edges incident to the operated handle, so edges
	// between untouched handles were never stale, and a handle the batch
	// later deleted simply has no final neighbors to re-add.
	for i := range recs {
		if recs[i].Kind == incremental.OpDelete {
			continue
		}
		id := recs[i].ID
		for _, sh := range r.shards {
			for _, nb := range sh.res.MatchNeighbors(id) {
				r.dyn.AddEdge(id, nb, 1)
			}
		}
	}
	return nil
}

// Stats returns a globally consistent snapshot of the resolver's counters,
// reconciling deferred meta-blocking work first. Comparisons is the sum of
// the shards' matcher invocations (plus the coordinator's reconcile
// evaluations under meta-blocking) and equals the single-node resolver's
// count bit for bit.
func (r *Resolver) Stats() (incremental.Stats, error) {
	if err := r.lockShared(context.Background()); err != nil {
		return incremental.Stats{}, err
	}
	defer r.mu.RUnlock()
	st := r.stats
	st.Live = r.liveCount
	st.Matches = r.dyn.NumEdges()
	st.Clusters = len(r.dyn.Clusters())
	st.Comparisons = r.comparisonsLocked()
	if r.cfg.Meta != nil {
		if r.merged != nil {
			st.CandidatePairs = r.merged.NumPairs()
		}
		st.KeptPairs = len(r.lastKept)
	}
	return st, nil
}

// comparisonsLocked sums the matcher invocations across the system.
// Callers hold r.mu.
func (r *Resolver) comparisonsLocked() int64 {
	n := r.metaComparisons
	for _, c := range fanRead(r.shards, func(sr *incremental.Resolver) int64 {
		return sr.Counters().Comparisons
	}) {
		n += c
	}
	return n
}

// Matches returns the current global match pairs over internal handles,
// reconciling deferred meta-blocking work first.
func (r *Resolver) Matches() (*entity.Matches, error) {
	if err := r.lockShared(context.Background()); err != nil {
		return nil, err
	}
	defer r.mu.RUnlock()
	return r.dyn.Matches(), nil
}

// Clusters returns the current non-singleton entity clusters over internal
// handles, in the deterministic order of entity.UnionFind.Clusters.
func (r *Resolver) Clusters() ([][]entity.ID, error) {
	if err := r.lockShared(context.Background()); err != nil {
		return nil, err
	}
	defer r.mu.RUnlock()
	return r.dyn.Clusters(), nil
}

// Blocks materializes the global block collection: the union of the
// shards' owned-key blocks, keys ascending — identical to what the
// configured blocker would build over the live descriptions, and to the
// single-node resolver's Blocks.
func (r *Resolver) Blocks() *blocking.Blocks {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var all []*blocking.Block
	for _, bs := range fanRead(r.shards, func(sr *incremental.Resolver) []*blocking.Block {
		return sr.Blocks().All()
	}) {
		all = append(all, bs...)
	}
	// Keys are disjoint across shards (each key has one owner), so sorting
	// by key reproduces the single BlockIndex's ascending enumeration.
	sortBlocksByKey(all)
	out := blocking.NewBlocks(r.cfg.Kind)
	for _, b := range all {
		out.Add(b)
	}
	return out
}

// Snapshot materializes the global state as a fresh batch-shaped result —
// dense live descriptions plus the match set remapped into that ID space —
// with the same contract as the single-node resolver's Snapshot: a batch
// pipeline over the returned collection reproduces the returned matches.
func (r *Resolver) Snapshot() (*entity.Collection, *entity.Matches, error) {
	if err := r.lockShared(context.Background()); err != nil {
		return nil, nil, err
	}
	defer r.mu.RUnlock()
	out := entity.NewCollection(r.cfg.Kind)
	remap := make(map[entity.ID]entity.ID, r.liveCount)
	for _, d := range r.coll.All() {
		if !r.live[d.ID] {
			continue
		}
		remap[d.ID] = out.MustAdd(d.Clone())
	}
	matches := entity.NewMatches()
	r.dyn.Graph().EachEdge(func(e graph.Edge) bool {
		matches.Add(remap[e.A], remap[e.B])
		return true
	})
	return out, matches, nil
}
