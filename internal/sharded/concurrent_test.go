package sharded_test

import (
	"context"
	"sync"
	"testing"

	"entityres/internal/blocking"
	"entityres/internal/entity"
	"entityres/internal/incremental"
	"entityres/internal/matching"
	"entityres/internal/metablocking"
	"entityres/internal/sharded"
)

// The sharded concurrent differential: readers hammer the coordinator's
// fanned read surface (Stats aggregates across shards concurrently) while
// the writer streams ops, and the final state is bit-exact with the
// single-node sequential replay. Run under -race in CI, this exercises the
// coordinator's shared lock AND the per-shard goroutine fan-out at once.
func TestShardedConcurrentReads(t *testing.T) {
	t.Parallel()
	matcher := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
	blocker := &blocking.TokenBlocking{}
	meta := &metablocking.MetaBlocker{Weight: metablocking.ECBS, Prune: metablocking.WNP}
	sh, err := sharded.New(sharded.Config{
		Kind: entity.Dirty, Blocker: blocker, Matcher: matcher, Workers: 2, Meta: meta, Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	script := generateScript(t, entity.Dirty, 61, 200, opMixes[1])
	var uris []string
	for _, op := range script {
		if op.Kind == incremental.OpInsert {
			uris = append(uris, op.URI)
		}
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	const readers = 8
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var last incremental.Stats
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				switch i % 4 {
				case 0:
					st, err := sh.Stats()
					if err != nil {
						t.Errorf("reader %d: stats: %v", g, err)
						return
					}
					if int64(st.Live) != st.Inserts-st.Deletes {
						t.Errorf("reader %d: torn aggregate stats: %+v", g, st)
						return
					}
					if st.Inserts < last.Inserts || st.Deletes < last.Deletes {
						t.Errorf("reader %d: aggregate counters ran backwards: %+v then %+v", g, last, st)
						return
					}
					last = st
				case 1:
					snap, matches, err := sh.Snapshot()
					if err != nil {
						t.Errorf("reader %d: snapshot: %v", g, err)
						return
					}
					for _, p := range matches.Pairs() {
						if snap.Get(p.A) == nil || snap.Get(p.B) == nil {
							t.Errorf("reader %d: match %v-%v dangles outside its own snapshot", g, p.A, p.B)
							return
						}
					}
				case 2:
					if _, err := sh.Clusters(); err != nil {
						t.Errorf("reader %d: clusters: %v", g, err)
						return
					}
				default:
					if id, ok := sh.Lookup(uris[(i*7+g)%len(uris)]); ok {
						sh.Get(id)
					}
				}
			}
		}(g)
	}

	ctx := context.Background()
	const chunk = 6
	for i := 0; i < len(script); {
		end := min(i+chunk, len(script))
		if (i/chunk)%4 == 3 {
			recs := make([]incremental.Record, 0, end-i)
			for _, op := range script[i:end] {
				recs = append(recs, incremental.Record{Kind: op.Kind, ID: -1, URI: op.URI, Source: op.Source, Attrs: op.Attrs})
			}
			if err := sh.ApplyBatch(ctx, recs); err != nil {
				t.Errorf("batch at op %d: %v", i, err)
				break
			}
		} else {
			for j, op := range script[i:end] {
				if err := sh.Apply(ctx, op); err != nil {
					t.Errorf("op %d (%s %s): %v", i+j, op.Kind, op.URI, err)
					break
				}
			}
		}
		i = end
	}
	close(done)
	wg.Wait()
	if t.Failed() {
		return
	}

	// The storm changed nothing: the sharded state equals the single-node
	// sequential replay, every observable.
	single, err := incremental.New(incremental.Config{
		Kind: entity.Dirty, Blocker: blocker, Matcher: matcher, Workers: 2, Meta: meta,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, op := range script {
		if err := single.Apply(ctx, op); err != nil {
			t.Fatalf("replay op %d: %v", i, err)
		}
	}
	if g, w := renderState(mustMatches(t, sh)), renderState(mustMatches(t, single)); g != w {
		t.Fatalf("sharded state after read storm diverges from single-node replay:\nsharded:\n%s\nsingle:\n%s", g, w)
	}
	gs, ws := mustStats(t, sh), mustStats(t, single)
	// Comparison counts depend on the reconcile schedule the readers drove;
	// everything else must agree exactly.
	gs.Comparisons, ws.Comparisons = 0, 0
	if gs != ws {
		t.Fatalf("sharded stats after read storm diverge from single-node replay:\nsharded: %+v\nsingle:  %+v", gs, ws)
	}
	if p := sh.Perf(); p.SharedReads == 0 {
		t.Fatalf("read storm recorded no shared reads: %+v", p)
	}
}
