// The coordinator journal: the durable half of the coordinator's deferred
// meta-blocking state, closing the PR 5 gap where a reopened deployment's
// cumulative Comparisons counter restarted from the shard-side count.
//
// Under live meta-blocking the shards never run the matcher — the
// coordinator evaluates the kept pairs and caches the decisions — so
// nothing about those evaluations reaches the shard WALs. This journal
// (its own wal.Log under dir/coordinator) records exactly the two events
// that state depends on, in operation order:
//
//   - a mutation record per acknowledged operation (the handle it
//     touched), replayed as a decision-cache invalidation — an update or
//     delete makes every cached decision involving that handle stale;
//   - a reconcile record per effective reconcile: the matcher-invocation
//     count and the freshly evaluated decisions (incremental.Decision),
//     replayed as cache inserts and a counter increment.
//
// Replaying the journal therefore rebuilds the decision cache and the
// reconcile comparison counter exactly as an uninterrupted coordinator
// would hold them, and the next reconcile evaluates only never-evaluated
// pairs — Comparisons continues restart-exact.
//
// Crash windows. A reconcile that completed in memory but not in the
// journal loses its decisions AND its counter increment together; the
// reopened coordinator re-evaluates those pairs and re-earns the same
// increment — the total is unchanged. A mutation acknowledged by the
// shards whose journal record was lost is detected on reopen (the journal
// runs exactly one operation behind the shard count — operations are
// serialized) and repaired with the same donated record the fan-out-tear
// repair uses, so the stale invalidation is never missed. Larger
// divergence means the directory was modified outside the coordinator and
// is refused. A directory created before the coordinator journal existed
// (no journal state at all, operations on the shards) degrades to the old
// behavior: fresh cache, counter restarting from the shard-side count.
package sharded

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"entityres/internal/entity"
	"entityres/internal/incremental"
	"entityres/internal/wal"
)

// coordDirName is the coordinator journal's directory under the sharded
// root, beside the shard-%03d directories.
const coordDirName = "coordinator"

// coordSnapshotFormat versions the coordinator snapshot layout.
const coordSnapshotFormat = 1

// coordRecordJSON is one coordinator journal record: a mutation ("mut",
// invalidating ID's cached decisions), a batch ("batch", one append
// invalidating every touched handle of an ApplyBatch — the coordinator's
// half of the batch write-path amortization) or a reconcile ("rec", adding
// N comparisons and the fresh decisions).
type coordRecordJSON struct {
	Op        string         `json:"op"`
	ID        entity.ID      `json:"id,omitempty"`
	IDs       []entity.ID    `json:"ids,omitempty"`
	N         int64          `json:"n,omitempty"`
	Decisions []decisionJSON `json:"decisions,omitempty"`
}

type decisionJSON struct {
	A     entity.ID `json:"a"`
	B     entity.ID `json:"b"`
	Match bool      `json:"m,omitempty"`
}

// coordSnapshotJSON is the compacted form: the full decision cache and
// counters as of the snapshot, so replay only walks the tail.
type coordSnapshotJSON struct {
	Format int `json:"format"`
	// Ops counts the operations journaled up to the snapshot; reopen
	// compares it (plus the replayed tail) against the shard-acknowledged
	// count to detect the one-operation crash window.
	Ops int64 `json:"ops"`
	// Comparisons is the coordinator's reconcile comparison counter.
	Comparisons int64          `json:"comparisons"`
	Decisions   []decisionJSON `json:"decisions,omitempty"`
}

// coordJournal is the coordinator's write-ahead journal handle plus its
// compaction cadence.
type coordJournal struct {
	log       *wal.Log
	dir       string
	snapEvery int
	sinceSnap int
}

// appendCoord journals one coordinator record and advances the compaction
// cadence; on failure the resolver is poisoned by the caller. Callers hold
// r.mu.
func (r *Resolver) appendCoord(rec coordRecordJSON) error {
	if r.coordJ == nil {
		return nil
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("sharded: encoding coordinator record: %w", err)
	}
	if _, err := r.coordJ.log.Append(payload); err != nil {
		return fmt.Errorf("sharded: coordinator journal append: %w", err)
	}
	r.perf.JournalAppends++
	r.coordJ.sinceSnap++
	if r.coordJ.snapEvery > 0 && r.coordJ.sinceSnap >= r.coordJ.snapEvery {
		return r.compactCoord()
	}
	return nil
}

// noteMutation journals an acknowledged operation's handle. The record is
// appended after the shard fan-out succeeds, while the coordinator still
// holds the operation lock, so the journal and the shard logs agree on the
// operation order; a crash between the two leaves the journal exactly one
// operation behind, which reopen repairs. A journal failure poisons the
// resolver — the disk can no longer reproduce the cache. Callers hold
// r.mu.
func (r *Resolver) noteMutation(id entity.ID) {
	if r.coordJ == nil || r.broken != nil {
		return
	}
	r.coordOps++
	if err := r.appendCoord(coordRecordJSON{Op: "mut", ID: id}); err != nil {
		r.broken = fmt.Errorf("sharded: coordinator journal failed, resolver disabled: %v", err)
	}
}

// noteBatch journals an acknowledged batch's handles as ONE append — the
// coordinator-journal counterpart of the shards' single batch record, with
// the same ordering rule and crash window as noteMutation (reopen repairs a
// journal that is exactly one batch behind the shards; see
// openCoordJournal). Callers hold r.mu.
func (r *Resolver) noteBatch(ids []entity.ID) {
	if r.coordJ == nil || r.broken != nil {
		return
	}
	r.coordOps += int64(len(ids))
	if err := r.appendCoord(coordRecordJSON{Op: "batch", IDs: ids}); err != nil {
		r.broken = fmt.Errorf("sharded: coordinator journal failed, resolver disabled: %v", err)
	}
}

// noteReconcile journals an effective reconcile's comparison count and
// fresh decisions. Callers hold r.mu.
func (r *Resolver) noteReconcile(n int64, decided []incremental.Decision) {
	if r.coordJ == nil || r.broken != nil {
		return
	}
	rec := coordRecordJSON{Op: "rec", N: n}
	for _, d := range decided {
		rec.Decisions = append(rec.Decisions, decisionJSON{A: d.A, B: d.B, Match: d.Match})
	}
	if err := r.appendCoord(rec); err != nil {
		r.broken = fmt.Errorf("sharded: coordinator journal failed, resolver disabled: %v", err)
	}
}

// compactCoord checkpoints the coordinator journal: rotate, snapshot the
// full decision cache and counters, prune covered segments and superseded
// snapshots — the walJournal checkpoint dance over the coordinator's
// state. Callers hold r.mu.
func (r *Resolver) compactCoord() error {
	s := coordSnapshotJSON{Format: coordSnapshotFormat, Ops: r.coordOps, Comparisons: r.metaComparisons}
	r.simCache.Each(func(a, b entity.ID, sim bool) bool {
		s.Decisions = append(s.Decisions, decisionJSON{A: a, B: b, Match: sim})
		return true
	})
	sortDecisions(s.Decisions)
	payload, err := json.Marshal(&s)
	if err != nil {
		return fmt.Errorf("sharded: encoding coordinator snapshot: %w", err)
	}
	seq, err := r.coordJ.log.Rotate()
	if err != nil {
		return fmt.Errorf("sharded: coordinator checkpoint rotate: %w", err)
	}
	if err := wal.WriteFileAtomic(filepath.Join(r.coordJ.dir, coordSnapshotFile(seq)), payload); err != nil {
		return fmt.Errorf("sharded: writing coordinator snapshot: %w", err)
	}
	if err := r.coordJ.log.RemoveSegmentsBefore(seq); err != nil {
		return fmt.Errorf("sharded: pruning coordinator segments: %w", err)
	}
	if err := removeCoordSnapshotsBefore(r.coordJ.dir, seq); err != nil {
		return err
	}
	r.coordJ.sinceSnap = 0
	return nil
}

// sortDecisions orders a decision dump by (A, B) for a deterministic
// snapshot layout.
func sortDecisions(ds []decisionJSON) {
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].A != ds[j].A {
			return ds[i].A < ds[j].A
		}
		return ds[i].B < ds[j].B
	})
}

// coordSnapshotFile names the snapshot covering every record before
// segment seq, mirroring the shard journals' naming.
func coordSnapshotFile(seq uint64) string {
	return fmt.Sprintf("snapshot-%016d.snap", seq)
}

func removeCoordSnapshotsBefore(dir string, seq uint64) error {
	seqs, err := wal.ListNumberedFiles(dir, "snapshot-", ".snap")
	if err != nil {
		return fmt.Errorf("sharded: %w", err)
	}
	for _, s := range seqs {
		if s >= seq {
			break
		}
		if err := os.Remove(filepath.Join(dir, coordSnapshotFile(s))); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("sharded: pruning coordinator snapshot %d: %w", s, err)
		}
	}
	return nil
}

// openCoordJournal opens (or creates) the coordinator journal under the
// sharded root, restores the newest snapshot, replays the tail, and
// repairs the one-operation crash window against the shard-acknowledged
// operation count. Called by Open after the shard replica is rebuilt;
// meta-blocking only — without it the coordinator holds no undurable
// state. Callers hold no lock (the resolver is not yet published).
func (r *Resolver) openCoordJournal() error {
	dir := filepath.Join(r.dir, coordDirName)
	log, err := wal.Open(dir, wal.Options{
		SegmentBytes: r.cfg.Durable.SegmentBytes,
		NoSync:       r.cfg.Durable.NoSync,
	})
	if err != nil {
		return fmt.Errorf("sharded: opening coordinator journal: %w", err)
	}
	ok := false
	defer func() {
		if !ok {
			log.Close()
		}
	}()

	snapEvery := r.cfg.Durable.SnapshotEvery
	if snapEvery == 0 {
		snapEvery = incremental.DefaultSnapshotEvery
	}
	if snapEvery < 0 {
		snapEvery = 0
	}
	cj := &coordJournal{log: log, dir: dir, snapEvery: snapEvery}

	snaps, err := wal.ListNumberedFiles(dir, "snapshot-", ".snap")
	if err != nil {
		return fmt.Errorf("sharded: %w", err)
	}
	var from uint64
	if len(snaps) > 0 {
		seq := snaps[len(snaps)-1]
		payload, err := wal.ReadFileFramed(filepath.Join(dir, coordSnapshotFile(seq)))
		if err != nil {
			return fmt.Errorf("sharded: reading coordinator snapshot %d: %w", seq, err)
		}
		var s coordSnapshotJSON
		if err := json.Unmarshal(payload, &s); err != nil {
			return fmt.Errorf("sharded: decoding coordinator snapshot: %w", err)
		}
		if s.Format != coordSnapshotFormat {
			return fmt.Errorf("sharded: coordinator snapshot format %d is not supported (want %d)", s.Format, coordSnapshotFormat)
		}
		r.coordOps = s.Ops
		r.metaComparisons = s.Comparisons
		for _, d := range s.Decisions {
			r.simCache.Set(d.A, d.B, d.Match)
		}
		from = seq
	}
	replayed, err := log.Replay(from, func(payload []byte) error {
		var rec coordRecordJSON
		if err := json.Unmarshal(payload, &rec); err != nil {
			return fmt.Errorf("decoding record: %w", err)
		}
		switch rec.Op {
		case "mut":
			r.simCache.Invalidate(rec.ID)
			r.coordOps++
		case "batch":
			for _, id := range rec.IDs {
				r.simCache.Invalidate(id)
			}
			r.coordOps += int64(len(rec.IDs))
		case "rec":
			r.metaComparisons += rec.N
			for _, d := range rec.Decisions {
				r.simCache.Set(d.A, d.B, d.Match)
			}
		default:
			return fmt.Errorf("unknown op %q", rec.Op)
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("sharded: coordinator journal replay: %w", err)
	}
	cj.sinceSnap = replayed
	r.coordJ = cj

	// Reconcile the journal against the shard-acknowledged operation count.
	shardOps := r.stats.Inserts + r.stats.Updates + r.stats.Deletes
	switch {
	case r.coordOps == shardOps:
		// Exact: the restored cache and counter are what an uninterrupted
		// coordinator holds.
	case r.coordOps == 0 && len(snaps) == 0 && replayed == 0 && shardOps > 0:
		// A directory from before the coordinator journal existed: no state
		// to restore. The cache starts fresh and the Comparisons counter
		// restarts from the shard-side count — the pre-journal behavior.
	case r.coordOps < shardOps:
		// The crash window: one operation OR one batch acknowledged by every
		// shard whose coordinator-journal record was lost (operations are
		// serialized, and a batch is one append on both sides, so the gap is
		// at most one record's worth of operations). The touched handles come
		// from the same donated record the fan-out-tear repair relies on;
		// invalidating them now (and journaling the repair) reproduces what
		// the lost record would have done.
		last, okRec := r.shards[0].res.LastRecord()
		if !okRec {
			return fmt.Errorf("sharded: coordinator journal is %d operations behind the shards and no shard retains its record; cannot repair", shardOps-r.coordOps)
		}
		switch gap := shardOps - r.coordOps; {
		case last.Kind == incremental.OpBatch && gap == int64(len(last.Batch)):
			ids := make([]entity.ID, len(last.Batch))
			for i := range last.Batch {
				ids[i] = last.Batch[i].ID
				r.simCache.Invalidate(ids[i])
			}
			r.coordOps += gap
			if err := r.appendCoord(coordRecordJSON{Op: "batch", IDs: ids}); err != nil {
				return err
			}
		case last.Kind != incremental.OpBatch && gap == 1:
			r.simCache.Invalidate(last.ID)
			r.coordOps++
			if err := r.appendCoord(coordRecordJSON{Op: "mut", ID: last.ID}); err != nil {
				return err
			}
		default:
			return fmt.Errorf("sharded: coordinator journal is %d operations behind the shards but the last shard record spans %d — the directory was modified outside the coordinator", gap, last.SpanOps())
		}
	default:
		return fmt.Errorf("sharded: coordinator journal acknowledges %d operations, shards %d — the directory was modified outside the coordinator", r.coordOps, shardOps)
	}

	// Anchor fresh directories (and over-long tails) on a snapshot, like the
	// shard journals do.
	if len(snaps) == 0 || (cj.snapEvery > 0 && cj.sinceSnap >= cj.snapEvery) {
		if err := r.compactCoord(); err != nil {
			return err
		}
	}
	ok = true
	return nil
}
