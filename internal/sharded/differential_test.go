package sharded_test

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"entityres/internal/blocking"
	"entityres/internal/core"
	"entityres/internal/datagen"
	"entityres/internal/entity"
	"entityres/internal/incremental"
	"entityres/internal/matching"
	"entityres/internal/metablocking"
	"entityres/internal/sharded"
)

// The cross-shard differential property: after ANY operation sequence, the
// sharded resolver's matches, clusters, comparison counts, blocks and
// restructured blocks are bit-identical to the single-node streaming
// resolver — for every shard count — and therefore to a from-scratch batch
// pipeline over the surviving descriptions. The tests drive randomized
// URI-addressed op scripts (3 seeds × insert/update/delete mixes) through
// both resolvers in lockstep at shard counts {1, 2, 4, 7}, comparing every
// observable at checkpoints along the stream so mid-stream divergence
// cannot hide behind a convergent tail. The fan-out machinery runs real
// goroutines, so CI executes the suite under -race.

// opMix weights the generator's choice between inserts, updates, deletes.
type opMix struct {
	name                   string
	insert, update, delete int
}

var opMixes = []opMix{
	{name: "insert-heavy", insert: 7, update: 2, delete: 1},
	{name: "churn", insert: 4, update: 3, delete: 3},
	{name: "delete-heavy", insert: 5, update: 1, delete: 4},
}

// pool generates the description universe an op stream draws from.
func pool(t *testing.T, kind entity.Kind, seed int64) []*entity.Description {
	t.Helper()
	var c *entity.Collection
	var err error
	if kind == entity.CleanClean {
		c, _, err = datagen.GenerateCleanClean(datagen.Config{Seed: seed, Entities: 60, DupRatio: 0.7})
	} else {
		c, _, err = datagen.GenerateDirty(datagen.Config{Seed: seed, Entities: 60, DupRatio: 0.7, MaxDuplicates: 2})
	}
	if err != nil {
		t.Fatal(err)
	}
	return c.All()
}

// mutate derives a deterministic attribute rewrite for an update.
func mutate(rng *rand.Rand, own, donor []entity.Attribute) []entity.Attribute {
	out := make([]entity.Attribute, 0, len(own))
	for _, a := range own {
		if rng.Intn(3) == 0 && len(donor) > 0 {
			d := donor[rng.Intn(len(donor))]
			out = append(out, entity.Attribute{Name: a.Name, Value: d.Value})
		} else {
			out = append(out, a)
		}
	}
	if len(donor) > 0 && rng.Intn(2) == 0 {
		out = append(out, donor[rng.Intn(len(donor))])
	}
	return out
}

// generateScript derives a deterministic URI-addressed op script honoring
// the mix.
func generateScript(t *testing.T, kind entity.Kind, seed int64, n int, mix opMix) []incremental.Op {
	t.Helper()
	descs := pool(t, kind, seed)
	rng := rand.New(rand.NewSource(seed * 104729))
	liveIdx := map[int]bool{}
	var liveList []int
	removeLive := func(pos int) {
		liveList[pos] = liveList[len(liveList)-1]
		liveList = liveList[:len(liveList)-1]
	}
	chooseOp := func() incremental.OpKind {
		if len(liveList) == 0 {
			return incremental.OpInsert
		}
		weights := [3]int{mix.insert, mix.update, mix.delete}
		if len(liveList) == len(descs) {
			weights[0] = 0
		}
		roll := rng.Intn(weights[0] + weights[1] + weights[2])
		if roll < weights[0] {
			return incremental.OpInsert
		}
		if roll < weights[0]+weights[1] {
			return incremental.OpUpdate
		}
		return incremental.OpDelete
	}
	ops := make([]incremental.Op, 0, n)
	for len(ops) < n {
		switch chooseOp() {
		case incremental.OpInsert:
			pi := rng.Intn(len(descs))
			if liveIdx[pi] {
				continue
			}
			ops = append(ops, incremental.Op{
				Kind: incremental.OpInsert, URI: descs[pi].URI,
				Source: descs[pi].Source, Attrs: descs[pi].Attrs,
			})
			liveIdx[pi] = true
			liveList = append(liveList, pi)
		case incremental.OpUpdate:
			pos := rng.Intn(len(liveList))
			pi := liveList[pos]
			donor := descs[rng.Intn(len(descs))]
			ops = append(ops, incremental.Op{
				Kind: incremental.OpUpdate, URI: descs[pi].URI,
				Attrs: mutate(rng, descs[pi].Attrs, donor.Attrs),
			})
		default:
			pos := rng.Intn(len(liveList))
			pi := liveList[pos]
			ops = append(ops, incremental.Op{Kind: incremental.OpDelete, URI: descs[pi].URI})
			delete(liveIdx, pi)
			removeLive(pos)
		}
	}
	return ops
}

// renderState renders a match set and its clusters deterministically.
func renderState(m *entity.Matches) string {
	ps := m.Pairs()
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].A != ps[j].A {
			return ps[i].A < ps[j].A
		}
		return ps[i].B < ps[j].B
	})
	return fmt.Sprintf("matches=%v\nclusters=%v\n", ps, m.Clusters())
}

// renderBlocks renders a block collection byte-exactly.
func renderBlocks(bs *blocking.Blocks) string {
	if bs == nil {
		return "<nil>"
	}
	var b strings.Builder
	for _, bl := range bs.All() {
		fmt.Fprintf(&b, "%s|%v|%v\n", bl.Key, bl.S0, bl.S1)
	}
	return b.String()
}

// assertShardedEqualsSingle compares every observable of the sharded
// resolver against the single-node reference, bit for bit.
func assertShardedEqualsSingle(t *testing.T, sh *sharded.Resolver, single *incremental.Resolver, meta bool, step int) {
	t.Helper()
	gs, ws := mustStats(t, sh), mustStats(t, single)
	if gs != ws {
		t.Fatalf("step %d: stats diverge:\nsharded    %+v\nsingle-node %+v", step, gs, ws)
	}
	if g, w := renderState(mustMatches(t, sh)), renderState(mustMatches(t, single)); g != w {
		t.Fatalf("step %d: match state diverges:\nsharded\n%s\nsingle-node\n%s", step, g, w)
	}
	if g, w := renderBlocks(sh.Blocks()), renderBlocks(single.Blocks()); g != w {
		t.Fatalf("step %d: blocks diverge:\nsharded\n%s\nsingle-node\n%s", step, g, w)
	}
	if meta {
		if g, w := renderBlocks(mustRestructuredBlocks(t, sh)), renderBlocks(mustRestructuredBlocks(t, single)); g != w {
			t.Fatalf("step %d: restructured blocks diverge:\nsharded\n%s\nsingle-node\n%s", step, g, w)
		}
	}
}

// assertBatchEquivalence snapshots the sharded resolver and checks the
// batch pipeline over the snapshot reproduces its matches.
func assertBatchEquivalence(t *testing.T, sh *sharded.Resolver, blocker blocking.StreamableBlocker, meta *metablocking.MetaBlocker, m *matching.Matcher, step int) {
	t.Helper()
	snap, matches := mustSnapshot(t, sh)
	batch := &core.Pipeline{Blocker: blocker, Meta: meta, Matcher: m, Mode: core.Batch}
	res, err := batch.Run(snap)
	if err != nil {
		t.Fatalf("step %d: batch run: %v", step, err)
	}
	if g, w := renderState(matches), renderState(res.Matches); g != w {
		t.Fatalf("step %d: sharded state diverges from batch over %d live descriptions:\nsharded\n%s\nbatch\n%s",
			step, snap.Len(), g, w)
	}
}

// shardedDiffConfig is one cross-shard differential scenario.
type shardedDiffConfig struct {
	kind    entity.Kind
	blocker blocking.StreamableBlocker
	meta    *metablocking.MetaBlocker
	workers int
	shards  int
	seed    int64
	ops     int
	mix     opMix
}

func (dc shardedDiffConfig) String() string {
	s := fmt.Sprintf("%s/%s/n%d/w%d/%s/seed%d", dc.kind, dc.blocker.Name(), dc.shards, dc.workers, dc.mix.name, dc.seed)
	if dc.meta != nil {
		s += "/" + dc.meta.Name()
	}
	return s
}

// runShardedDifferential drives one scenario: the same op script through
// the single-node and the sharded resolver, with lockstep reads.
func runShardedDifferential(t *testing.T, dc shardedDiffConfig) {
	matcher := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
	script := generateScript(t, dc.kind, dc.seed, dc.ops, dc.mix)
	single, err := incremental.New(incremental.Config{
		Kind: dc.kind, Blocker: dc.blocker, Matcher: matcher, Workers: dc.workers, Meta: dc.meta,
	})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := sharded.New(sharded.Config{
		Kind: dc.kind, Blocker: dc.blocker, Matcher: matcher, Workers: dc.workers, Meta: dc.meta, Shards: dc.shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := sh.Shards(); got != dc.shards {
		t.Fatalf("resolver reports %d shards, configured %d", got, dc.shards)
	}
	ctx := context.Background()
	for i, op := range script {
		if err := single.Apply(ctx, op); err != nil {
			t.Fatalf("op %d (%s %s): single-node: %v", i, op.Kind, op.URI, err)
		}
		if err := sh.Apply(ctx, op); err != nil {
			t.Fatalf("op %d (%s %s): sharded: %v", i, op.Kind, op.URI, err)
		}
		// Reads reconcile under meta-blocking, so both resolvers follow the
		// same read schedule; checkpoints mid-stream and at the end.
		if (i+1)%50 == 0 || i+1 == len(script) {
			assertShardedEqualsSingle(t, sh, single, dc.meta != nil, i+1)
		}
	}
	assertBatchEquivalence(t, sh, dc.blocker, dc.meta, matcher, dc.ops)
}

// TestShardedDifferential is the acceptance matrix: 3 seeds × op mixes
// replayed at shard counts {1, 2, 4, 7}, plus clean-clean, alternate
// blocker and sequential-worker probes — all bit-exact vs the single-node
// resolver and vs batch.
func TestShardedDifferential(t *testing.T) {
	var configs []shardedDiffConfig
	seeds := []int64{101, 102, 103}
	for si, seed := range seeds {
		for _, n := range []int{1, 2, 4, 7} {
			configs = append(configs, shardedDiffConfig{
				kind: entity.Dirty, blocker: &blocking.TokenBlocking{},
				workers: 4, shards: n, seed: seed, ops: 200, mix: opMixes[si%len(opMixes)],
			})
		}
	}
	configs = append(configs,
		// Clean-clean streams: only cross-source pairs may match, and the
		// delta frontier is bipartite per shard.
		shardedDiffConfig{
			kind: entity.CleanClean, blocker: &blocking.TokenBlocking{},
			workers: 4, shards: 4, seed: 104, ops: 200, mix: opMixes[1],
		},
		// Alternate streamable blockers partition different key shapes.
		shardedDiffConfig{
			kind: entity.Dirty, blocker: &blocking.StandardBlocking{},
			workers: 2, shards: 3, seed: 105, ops: 160, mix: opMixes[2],
		},
		shardedDiffConfig{
			kind: entity.Dirty, blocker: &blocking.QGramsBlocking{Q: 3},
			workers: 1, shards: 5, seed: 106, ops: 140, mix: opMixes[0],
		},
	)
	for _, dc := range configs {
		dc := dc
		t.Run(dc.String(), func(t *testing.T) {
			if testing.Short() && (dc.seed > 101 || dc.shards > 4) {
				t.Skip("short mode runs the first seed at small shard counts only")
			}
			t.Parallel()
			runShardedDifferential(t, dc)
		})
	}
}

// TestShardedDifferentialMetaBlocking extends the matrix to live
// meta-blocking: the shards maintain per-key-space weighted graphs, the
// coordinator merges and prunes globally, and matches, comparison counts
// AND restructured blocks must equal the single-node resolver bit for bit
// at every checkpoint and shard count.
func TestShardedDifferentialMetaBlocking(t *testing.T) {
	var configs []shardedDiffConfig
	metas := []*metablocking.MetaBlocker{
		{Weight: metablocking.CBS, Prune: metablocking.WEP},
		{Weight: metablocking.ECBS, Prune: metablocking.WNP},
		{Weight: metablocking.JS, Prune: metablocking.WEP},
	}
	for mi, meta := range metas {
		for _, n := range []int{2, 4, 7} {
			configs = append(configs, shardedDiffConfig{
				kind: entity.Dirty, blocker: &blocking.TokenBlocking{}, meta: meta,
				workers: 4, shards: n, seed: int64(121 + mi), ops: 140, mix: opMixes[mi%len(opMixes)],
			})
		}
	}
	configs = append(configs, shardedDiffConfig{
		kind: entity.CleanClean, blocker: &blocking.TokenBlocking{},
		meta:    &metablocking.MetaBlocker{Weight: metablocking.ECBS, Prune: metablocking.WNP, Reciprocal: true},
		workers: 4, shards: 4, seed: 124, ops: 140, mix: opMixes[1],
	})
	for _, dc := range configs {
		dc := dc
		t.Run(dc.String(), func(t *testing.T) {
			if testing.Short() && (dc.seed != 121 || dc.shards > 2) {
				t.Skip("short mode runs the first meta scenario only")
			}
			t.Parallel()
			runShardedDifferential(t, dc)
		})
	}
}

// TestShardedValidation: the sharded resolver rejects exactly what the
// single-node resolver rejects, with the same reasons, plus its own
// shard-count pathologies handled.
func TestShardedValidation(t *testing.T) {
	matcher := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
	if _, err := sharded.New(sharded.Config{Blocker: &blocking.TokenBlocking{}, Shards: 2}); err == nil {
		t.Fatal("missing matcher accepted")
	}
	if _, err := sharded.New(sharded.Config{Matcher: matcher, Shards: 2}); err == nil {
		t.Fatal("missing blocker accepted")
	}
	if _, err := sharded.New(sharded.Config{
		Blocker: &blocking.TokenBlocking{}, Matcher: matcher, Shards: 2,
		Meta: &metablocking.MetaBlocker{Weight: metablocking.EJS, Prune: metablocking.WEP},
	}); err == nil {
		t.Fatal("batch-only meta scheme accepted")
	}
	// Shards <= 0 normalizes to 1 and still streams correctly.
	r, err := sharded.New(sharded.Config{Blocker: &blocking.TokenBlocking{}, Matcher: matcher, Shards: 0})
	if err != nil {
		t.Fatal(err)
	}
	if r.Shards() != 1 {
		t.Fatalf("Shards() = %d, want 1", r.Shards())
	}
	if _, err := r.Insert(context.Background(), entity.NewDescription("u:x").Add("name", "x")); err != nil {
		t.Fatal(err)
	}
	// Lifecycle on an in-memory resolver is refused.
	if err := r.StopShard(0); err == nil {
		t.Fatal("StopShard on an in-memory resolver accepted")
	}
}
