// The coordinator's deferred meta-blocking path: the sharded counterpart
// of the single-node resolver's reconcile (incremental/meta.go).
//
// With Config.Meta set, every shard maintains the weighted-blocking-graph
// statistics of its owned key space (its block index notifies its
// metablocking.WeightedGraph) and defers all matching. The pruning
// decision, however, is global — WEP's mean is over every edge, WNP's
// neighborhoods span whichever shards a description's keys hash into — so
// the coordinator reconciles at read time: merge the shard graphs (the
// statistics are strictly additive because each block lives wholly in one
// shard), prune with the exact batch pruners, evaluate the kept pairs that
// miss the coordinator's decision cache through the matcher pool, and diff
// the global match graph against {kept ∧ similar}. A static replay
// followed by one read therefore evaluates exactly the finally-kept pairs
// — matches AND comparison counts equal the single-node resolver and the
// batch pipeline bit for bit, for every shard count.
package sharded

import (
	"context"
	"fmt"
	"sort"

	"entityres/internal/blocking"
	"entityres/internal/graph"
	"entityres/internal/incremental"
	"entityres/internal/metablocking"
)

// Flush reconciles any deferred meta-blocking work under the caller's
// context. It is a no-op without a Meta configuration or when nothing
// changed since the last reconcile; on cancellation the match state is
// left untouched and the work stays pending.
func (r *Resolver) Flush(ctx context.Context) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.reconcile(ctx)
}

// RestructuredBlocks reconciles and renders the pruned global blocking
// graph the way batch meta-blocking emits it: one two-description block
// per kept edge, ordered by descending weight. Nil without a Meta
// configuration. The error is the reconcile's.
func (r *Resolver) RestructuredBlocks() (*blocking.Blocks, error) {
	if r.cfg.Meta == nil {
		return nil, nil
	}
	if err := r.lockShared(context.Background()); err != nil {
		return nil, err
	}
	defer r.mu.RUnlock()
	kept := make([]graph.Edge, len(r.lastKept))
	copy(kept, r.lastKept)
	return metablocking.EmitKept(r.coll, r.cfg.Kind, kept), nil
}

// reconcile settles the deferred global meta-blocking state. Callers hold
// r.mu.
func (r *Resolver) reconcile(ctx context.Context) error {
	if r.cfg.Meta == nil || !r.metaDirty {
		return nil
	}
	// Merge the shard statistics in ascending shard order. Every
	// contribution is an integer count (the stream-safe schemes carry no
	// ARCS mass), so the merged graph is identical to the one a single
	// resolver over the whole key space maintains.
	merged := metablocking.NewWeightedGraph(r.cfg.Kind)
	for _, sh := range r.shards {
		sh.res.MergeWeightedInto(merged)
	}
	g := merged.Graph(r.cfg.Meta.Weight)
	kept := r.cfg.Meta.PruneGraph(g, nil)

	// Evaluate the kept pairs against the coordinator's replica
	// (bit-identical attributes everywhere) through the SAME reconcile
	// core the single-node resolver runs — cache-miss matching, decision
	// caching, diffing the global match graph against {kept ∧ similar} —
	// so the two cannot drift apart (incremental.ReconcileKept). On
	// cancellation the work stays pending; a retry restores consistency.
	n, decided, err := incremental.ReconcileKept(ctx, r.coll, r.cfg.Matcher, r.cfg.Workers, r.simCache, r.dyn, kept)
	if err != nil {
		return fmt.Errorf("sharded: meta reconcile: %w", err)
	}
	r.metaComparisons += n
	// Journal the evaluation (durable deployments) so the decision cache
	// and the comparison counter survive a restart; a reconcile that
	// evaluated nothing new changed neither and needs no record.
	if n > 0 || len(decided) > 0 {
		r.noteReconcile(n, decided)
	}
	r.lastKept = kept
	r.merged = merged
	r.metaDirty = false
	return nil
}

// sortBlocksByKey orders a merged block list by ascending key — the single
// BlockIndex's enumeration order.
func sortBlocksByKey(blocks []*blocking.Block) {
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].Key < blocks[j].Key })
}
