package sharded_test

import (
	"context"
	"reflect"
	"testing"

	"entityres/internal/entity"
	"entityres/internal/sharded"
)

// The exported routing helpers a networked deployment shares with the
// in-process coordinator: the key→shard directory, the pair-ownership
// rule, the per-shard node configuration and the match-graph read.

func TestKeyOwnerDirectory(t *testing.T) {
	if got := sharded.KeyOwner("anything", 1); got != 0 {
		t.Fatalf("KeyOwner with one shard = %d", got)
	}
	owners := map[int]bool{}
	for _, key := range []string{"alice", "smith", "berlin", "carol", "jones"} {
		o := sharded.KeyOwner(key, 4)
		if o < 0 || o >= 4 {
			t.Fatalf("KeyOwner(%q, 4) = %d, out of range", key, o)
		}
		if again := sharded.KeyOwner(key, 4); again != o {
			t.Fatalf("KeyOwner(%q) unstable: %d then %d", key, o, again)
		}
		owners[o] = true
	}
	if len(owners) < 2 {
		t.Fatalf("five keys all landed on one shard: %v", owners)
	}
}

func TestFirstSharedKey(t *testing.T) {
	if key, ok := sharded.FirstSharedKey([]string{"a", "b", "d"}, []string{"b", "c", "d"}); !ok || key != "b" {
		t.Fatalf("FirstSharedKey = %q, %v, want b", key, ok)
	}
	if key, ok := sharded.FirstSharedKey([]string{"a"}, []string{"b"}); ok {
		t.Fatalf("disjoint sets share %q", key)
	}
}

func TestNodeConfig(t *testing.T) {
	cfg := apiConfig(3, nil)
	for i := 0; i < 3; i++ {
		nc := cfg.NodeConfig(i)
		if nc.Blocker == nil || nc.Matcher == nil || nc.DeltaFilter == nil {
			t.Fatalf("NodeConfig(%d) incomplete: %+v", i, nc)
		}
	}
}

func TestShardedMatchedWith(t *testing.T) {
	r, err := sharded.New(apiConfig(3, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ctx := context.Background()
	a, err := r.Insert(ctx, apiDesc("u:a", "alice smith"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Insert(ctx, apiDesc("u:b", "alice smith"))
	if err != nil {
		t.Fatal(err)
	}
	if got := mustMatchedWith(t, r, a); !reflect.DeepEqual(got, []entity.ID{b}) {
		t.Fatalf("MatchedWith(%d) = %v", a, got)
	}
	if got := mustMatchedWith(t, r, entity.ID(42)); got != nil {
		t.Fatalf("MatchedWith(dead) = %v", got)
	}
}
