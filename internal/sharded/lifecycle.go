// Shard lifecycle and per-shard durability: Open journals every shard to
// its own WAL directory, StopShard hard-stops one shard (the in-process
// kill -9), and RejoinShard bootstraps it back from its own snapshot plus
// WAL tail — no global replay, recovery cost bounded by that shard's tail.
package sharded

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"entityres/internal/entity"
	"entityres/internal/graph"
	"entityres/internal/incremental"
	"entityres/internal/wal"
)

// manifestFile guards a sharded directory's layout: reopening it with a
// different shard count would silently re-partition the key space, so the
// count is pinned on first open. The name is shared with the single-node
// resolver (incremental.ShardedManifestName) so each deployment form
// recognizes — and refuses — the other's directories.
const manifestFile = incremental.ShardedManifestName

// manifestFormat versions the manifest layout.
const manifestFormat = 1

type manifestJSON struct {
	Format int `json:"format"`
	Shards int `json:"shards"`
}

// errClosed marks a closed sharded resolver.
var errClosed = fmt.Errorf("sharded: resolver is closed")

// shardDirName names shard i's WAL directory under the sharded root.
func shardDirName(i int) string { return fmt.Sprintf("shard-%03d", i) }

// checkManifest pins the shard count in dir, creating the manifest on
// first use and refusing a mismatching reopen.
func checkManifest(dir string, shards int) error {
	path := filepath.Join(dir, manifestFile)
	payload, err := wal.ReadFileFramed(path)
	switch {
	case err == nil:
		var m manifestJSON
		if jerr := json.Unmarshal(payload, &m); jerr != nil {
			return fmt.Errorf("sharded: decoding %s: %w", manifestFile, jerr)
		}
		if m.Format != manifestFormat {
			return fmt.Errorf("sharded: manifest format %d is not supported (want %d)", m.Format, manifestFormat)
		}
		if m.Shards != shards {
			return fmt.Errorf("sharded: directory was created with %d shards, resolver configured with %d — the key partition would silently change", m.Shards, shards)
		}
		return nil
	case errors.Is(err, os.ErrNotExist):
		payload, merr := json.Marshal(manifestJSON{Format: manifestFormat, Shards: shards})
		if merr != nil {
			return fmt.Errorf("sharded: %w", merr)
		}
		if werr := wal.WriteFileAtomic(path, payload); werr != nil {
			return fmt.Errorf("sharded: writing %s: %w", manifestFile, werr)
		}
		return nil
	default:
		return fmt.Errorf("sharded: reading %s: %w", manifestFile, err)
	}
}

// Open opens a durable sharded resolver rooted at dir, creating the
// directory tree on first use: shard i journals every operation to its own
// write-ahead log under dir/shard-%03d (group-commit fsync batching,
// snapshot compaction per incremental.OpenResolver) so each shard can be
// crash-recovered — or rejoined after a hard stop — from its own snapshot
// plus WAL tail alone.
//
// An existing directory is recovered: every shard restores independently,
// a whole-process crash that interrupted a fan-out (the one in-flight
// operation journaled on some shards but not others) is repaired by
// rolling the behind shards forward with the donated record (see
// repairFanoutTear), the coordinator rebuilds its replica (slots,
// liveness, URIs, match graph, counters) from the recovered shards, and
// the shards are verified to agree on the acknowledged operation counts
// before any new operation is accepted. Reopening with a different shard
// count fails via the pinned
// manifest rather than silently re-partitioning the key space. With live
// meta-blocking, the coordinator's decision cache and reconcile comparison
// counter — state the shards never see, since they never run the matcher —
// are restored from the coordinator journal (dir/coordinator; see
// coordjournal.go), so the cumulative Comparisons counter continues
// restart-exact. Directories created before the coordinator journal
// existed reopen with a fresh cache and the counter restarting from the
// shard-side count, the old behavior.
func Open(dir string, cfg Config) (*Resolver, error) {
	r, err := newCoordinator(cfg)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sharded: %w", err)
	}
	// A root-level WAL means dir already serves a SINGLE-NODE resolver;
	// laying shard directories beside it would silently ignore that
	// journal and restart the stream from nothing.
	if segs, serr := wal.ListNumberedFiles(dir, "wal-", ".seg"); serr == nil && len(segs) > 0 {
		return nil, fmt.Errorf("sharded: %s holds a single-node resolver journal; open it with the single-node resolver or choose a fresh directory", dir)
	}
	n := cfg.normShards()
	if err := checkManifest(dir, n); err != nil {
		return nil, err
	}
	r.dir = dir
	ok := false
	defer func() {
		if !ok {
			for _, sh := range r.shards {
				sh.res.Close()
			}
		}
	}()
	for i := 0; i < n; i++ {
		scfg, lens := cfg.shardConfig(i)
		sres, err := incremental.OpenResolver(filepath.Join(dir, shardDirName(i)), scfg)
		if err != nil {
			return nil, fmt.Errorf("sharded: opening shard %d: %w", i, err)
		}
		r.shards = append(r.shards, &shard{res: sres, lens: lens})
		r.recovery = append(r.recovery, sres.Recovery())
	}
	if err := r.repairFanoutTear(); err != nil {
		return nil, err
	}
	if err := r.rebuildFromShards(); err != nil {
		return nil, err
	}
	if cfg.Meta != nil {
		if err := r.openCoordJournal(); err != nil {
			return nil, err
		}
	}
	ok = true
	return r, nil
}

// repairFanoutTear rolls the shards forward to a common point after a
// whole-process crash that interrupted a fan-out: the coordinator
// serializes operations and every shard journals each one before applying
// it, so a crash can leave the shard journals apart by AT MOST the single
// in-flight record — one operation, or one whole batch (shard-side
// ApplyBatch appends atomically, so a shard holds all of a batch or none
// of it) — durable on the shards whose appends completed, absent from the
// rest. Because journal records carry the operation's full payload, any
// ahead shard can donate its last applied record (preserved across
// snapshot compaction, so even a crash landing exactly on a compaction
// boundary keeps a donor) and the behind shards re-apply it through their
// normal journal-then-apply path, converging every journal on the
// acknowledged-plus-in-flight history (roll-forward: the record was
// durable somewhere, so it is completed, never discarded). Divergence
// wider than the donated record cannot come from a fan-out tear and is
// refused with the shards untouched.
func (r *Resolver) repairFanoutTear() error {
	totals := make([]int64, len(r.shards))
	var lo, hi int64
	for i, sh := range r.shards {
		c := sh.res.Counters()
		totals[i] = c.Inserts + c.Updates + c.Deletes
		if i == 0 || totals[i] < lo {
			lo = totals[i]
		}
		if totals[i] > hi {
			hi = totals[i]
		}
	}
	if hi == lo {
		return nil
	}
	var rec incremental.Record
	donor := -1
	for i, sh := range r.shards {
		if totals[i] != hi {
			continue
		}
		if last, okRec := sh.res.LastRecord(); okRec && last.Kind != incremental.OpReconcile {
			rec, donor = last, i
			break
		}
	}
	if donor < 0 {
		if hi-lo > 1 {
			return fmt.Errorf("sharded: shard journals diverge by %d operations; a fan-out tear is at most one in-flight record — the directory was modified outside the coordinator", hi-lo)
		}
		return fmt.Errorf("sharded: shard journals diverge by one operation but no ahead shard retains its record; cannot roll forward")
	}
	if hi-lo != rec.SpanOps() {
		return fmt.Errorf("sharded: shard journals diverge by %d operations but the in-flight record spans %d; a fan-out tear is exactly one record — the directory was modified outside the coordinator", hi-lo, rec.SpanOps())
	}
	for i, sh := range r.shards {
		if totals[i] == hi {
			continue
		}
		if totals[i] != lo {
			return fmt.Errorf("sharded: shard %d sits %d operations into the in-flight record; shard appends are atomic — the directory was modified outside the coordinator", i, totals[i]-lo)
		}
		if err := r.applyRecordTo(sh.res, rec); err != nil {
			return fmt.Errorf("sharded: rolling shard %d forward to the in-flight record: %w", i, err)
		}
		r.rolledForward++
	}
	return nil
}

// applyRecordTo re-applies a donated journal record through a shard's
// normal operation path, so the shard journals it too and the logs
// converge.
func (r *Resolver) applyRecordTo(sr *incremental.Resolver, rec incremental.Record) error {
	switch rec.Kind {
	case incremental.OpInsert:
		d := &entity.Description{ID: -1, URI: rec.URI, Source: rec.Source, Attrs: rec.Attrs}
		id, err := sr.Insert(fanoutCtx, d)
		if err != nil {
			return err
		}
		if id != rec.ID {
			return fmt.Errorf("insert landed at handle %d, the donated record says %d", id, rec.ID)
		}
		return nil
	case incremental.OpUpdate:
		return sr.Update(fanoutCtx, rec.ID, rec.Attrs)
	case incremental.OpDelete:
		return sr.Delete(rec.ID)
	case incremental.OpBatch:
		// The behind shard replans the donated batch against its own replica
		// (a private copy — planning writes handles back) and journals it as
		// one append, exactly like the interrupted fan-out would have.
		cp := make([]incremental.Record, len(rec.Batch))
		copy(cp, rec.Batch)
		if err := sr.ApplyBatch(fanoutCtx, cp); err != nil {
			return err
		}
		for i := range cp {
			if cp[i].ID != rec.Batch[i].ID {
				return fmt.Errorf("batch record %d landed at handle %d, the donated record says %d", i, cp[i].ID, rec.Batch[i].ID)
			}
		}
		return nil
	default:
		return fmt.Errorf("donated record has kind %v", rec.Kind)
	}
}

// RolledForward reports how many shards Open rolled forward to complete an
// operation a whole-process crash left applied on only some shards.
func (r *Resolver) RolledForward() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.rolledForward
}

// rebuildFromShards reconstructs the coordinator replica from the
// recovered shard state: slots and liveness from shard 0 (all shards hold
// identical replicas — verified through the operation counters), the
// global match graph as the union of the shard-local edges, and the
// deferred-reconcile flag under meta-blocking.
func (r *Resolver) rebuildFromShards() error {
	first := r.shards[0].res
	var rebuildErr error
	first.EachSlot(func(id entity.ID, live bool, d *entity.Description) bool {
		cp := &entity.Description{ID: -1}
		if live {
			cp = d.Clone()
			cp.ID = -1
		}
		slot, err := r.coll.Add(cp)
		if err != nil {
			rebuildErr = fmt.Errorf("sharded: rebuilding slot %d: %w", id, err)
			return false
		}
		if slot != id {
			rebuildErr = fmt.Errorf("sharded: slot %d rebuilt at handle %d", id, slot)
			return false
		}
		r.live = append(r.live, live)
		if !live {
			return true
		}
		r.liveCount++
		if cp.URI != "" {
			if _, dup := r.byURI[cp.URI]; dup {
				rebuildErr = fmt.Errorf("sharded: recovered state lists URI %q twice", cp.URI)
				return false
			}
			r.byURI[cp.URI] = id
		}
		return true
	})
	if rebuildErr != nil {
		return rebuildErr
	}
	c0 := first.Counters()
	r.stats.Inserts, r.stats.Updates, r.stats.Deletes = c0.Inserts, c0.Updates, c0.Deletes
	for i, sh := range r.shards[1:] {
		if c := sh.res.Counters(); c.Inserts != c0.Inserts || c.Updates != c0.Updates || c.Deletes != c0.Deletes || c.Live != c0.Live {
			return fmt.Errorf("sharded: shards diverged on reopen: shard 0 acknowledges %d/%d/%d ops (%d live), shard %d %d/%d/%d (%d live)",
				c0.Inserts, c0.Updates, c0.Deletes, c0.Live, i+1, c.Inserts, c.Updates, c.Deletes, c.Live)
		}
	}
	if r.cfg.Meta != nil {
		r.metaDirty = r.stats.Inserts > 0
		return nil
	}
	for _, sh := range r.shards {
		for _, e := range sh.res.MatchEdges() {
			r.dyn.AddEdge(e.A, e.B, e.Weight)
		}
	}
	return nil
}

// Recovery reports what Open restored, one entry per shard (nil for
// resolvers built with New or opened on a fresh directory tree).
func (r *Resolver) Recovery() []incremental.RecoveryInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]incremental.RecoveryInfo, len(r.recovery))
	copy(out, r.recovery)
	return out
}

// Perf sums the cumulative work counters over every shard plus the
// coordinator's own (fan-outs issued, coordinator-journal appends). Like
// the single-node accessor it never reconciles.
func (r *Resolver) Perf() incremental.PerfCounters {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := r.perf
	for _, p := range fanRead(r.shards, func(sr *incremental.Resolver) incremental.PerfCounters {
		return sr.Perf()
	}) {
		out.Add(p)
	}
	return out
}

// Recovered reports whether Open found existing state in any shard.
func (r *Resolver) Recovered() bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, rec := range r.recovery {
		if rec.Recovered {
			return true
		}
	}
	return false
}

// StopShard hard-stops shard i — the in-process stand-in for a shard
// process crash: the shard's journal file handles (and WAL directory lock)
// are dropped with no checkpoint and no graceful close, leaving its
// on-disk state exactly what the acknowledged operations journaled.
// Mutating operations fail while any shard is down; reads keep serving
// from the coordinator's replica. Only durable resolvers (Open) can stop
// shards: an in-memory shard would have nothing to rejoin from.
func (r *Resolver) StopShard(i int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.broken != nil {
		return r.broken
	}
	if r.dir == "" {
		return fmt.Errorf("sharded: only durable resolvers (Open) can stop and rejoin shards")
	}
	if i < 0 || i >= len(r.shards) {
		return fmt.Errorf("sharded: no shard %d (have %d)", i, len(r.shards))
	}
	if r.shards[i].down {
		return fmt.Errorf("sharded: shard %d is already stopped", i)
	}
	r.shards[i].res.Abandon()
	r.shards[i].down = true
	return nil
}

// RejoinShard bootstraps a stopped shard back into the resolver from its
// own snapshot plus WAL tail (incremental.OpenResolver): no other shard is
// touched and nothing is replayed globally — the recovery cost is bounded
// by the rejoining shard's journal tail, reported in the returned
// RecoveryInfo. The recovered shard must acknowledge exactly the
// operations the coordinator does, or the rejoin is refused.
func (r *Resolver) RejoinShard(i int) (incremental.RecoveryInfo, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.broken != nil {
		return incremental.RecoveryInfo{}, r.broken
	}
	if r.dir == "" {
		return incremental.RecoveryInfo{}, fmt.Errorf("sharded: only durable resolvers (Open) can stop and rejoin shards")
	}
	if i < 0 || i >= len(r.shards) {
		return incremental.RecoveryInfo{}, fmt.Errorf("sharded: no shard %d (have %d)", i, len(r.shards))
	}
	if !r.shards[i].down {
		return incremental.RecoveryInfo{}, fmt.Errorf("sharded: shard %d is not stopped", i)
	}
	scfg, lens := r.cfg.shardConfig(i)
	sres, err := incremental.OpenResolver(filepath.Join(r.dir, shardDirName(i)), scfg)
	if err != nil {
		return incremental.RecoveryInfo{}, fmt.Errorf("sharded: rejoining shard %d: %w", i, err)
	}
	if c := sres.Counters(); c.Inserts != r.stats.Inserts || c.Updates != r.stats.Updates || c.Deletes != r.stats.Deletes || c.Live != r.liveCount {
		sres.Close()
		return incremental.RecoveryInfo{}, fmt.Errorf("sharded: shard %d recovered %d/%d/%d ops (%d live), coordinator acknowledges %d/%d/%d (%d live)",
			i, c.Inserts, c.Updates, c.Deletes, c.Live, r.stats.Inserts, r.stats.Updates, r.stats.Deletes, r.liveCount)
	}
	r.shards[i].res = sres
	r.shards[i].lens = lens
	r.shards[i].down = false
	return sres.Recovery(), nil
}

// MatchEdgesOfShard returns shard i's local match edges — the slice of the
// global match graph that shard discovered. Diagnostic: the union over
// shards equals Matches.
func (r *Resolver) MatchEdgesOfShard(i int) []graph.Edge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i < 0 || i >= len(r.shards) {
		return nil
	}
	return r.shards[i].res.MatchEdges()
}

// Close seals every shard's journal. Reads keep working on the
// coordinator's in-memory state; mutating operations fail afterwards.
func (r *Resolver) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.broken == errClosed {
		return nil
	}
	r.broken = errClosed
	var first error
	for i, sh := range r.shards {
		if sh.down {
			continue
		}
		if err := sh.res.Close(); err != nil && first == nil {
			first = fmt.Errorf("sharded: closing shard %d: %w", i, err)
		}
	}
	if r.coordJ != nil {
		if err := r.coordJ.log.Close(); err != nil && first == nil {
			first = fmt.Errorf("sharded: closing coordinator journal: %w", err)
		}
	}
	return first
}

// Abandon hard-stops every shard at once — the in-process stand-in for a
// whole-deployment crash, for the recovery test suites: on-disk state is
// exactly what each shard's acknowledged operations journaled.
func (r *Resolver) Abandon() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, sh := range r.shards {
		if !sh.down {
			sh.res.Abandon()
			sh.down = true
		}
	}
	if r.coordJ != nil {
		// Like the shard journals, only the file handles are dropped — the
		// on-disk journal is exactly what the acknowledged records wrote.
		r.coordJ.log.Close()
	}
	r.broken = errClosed
}
