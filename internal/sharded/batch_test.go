package sharded_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"entityres/internal/blocking"
	"entityres/internal/entity"
	"entityres/internal/incremental"
	"entityres/internal/matching"
	"entityres/internal/metablocking"
	"entityres/internal/sharded"
)

// The sharded batched-ingestion property: a coordinator fed whole batches
// — one plan, one fan-out, one shard-journal append per shard per batch —
// is bit-identical to a single-node resolver fed the same stream one op at
// a time; and a durable deployment hard-stopped around a batch observes
// batch atomicity per shard, with a shard that lost the final batch record
// rolled forward whole from the coordinator journal on reopen.

// applyOpBatch converts a script chunk to batch records and applies it.
func applyOpBatch(ctx context.Context, r *sharded.Resolver, ops []incremental.Op) error {
	recs := make([]incremental.Record, len(ops))
	for i, op := range ops {
		recs[i] = incremental.Record{Kind: op.Kind, ID: -1, URI: op.URI, Source: op.Source, Attrs: op.Attrs}
	}
	return r.ApplyBatch(ctx, recs)
}

// shardedBatchConfig is one sharded batched-ingestion scenario.
type shardedBatchConfig struct {
	shards int
	size   int
	seed   int64
	ops    int
	meta   *metablocking.MetaBlocker
	mix    opMix
}

func (bc shardedBatchConfig) String() string {
	s := fmt.Sprintf("n%d/b%d/%s/seed%d", bc.shards, bc.size, bc.mix.name, bc.seed)
	if bc.meta != nil {
		s += "/" + bc.meta.Name()
	}
	return s
}

func runShardedBatchDifferential(t *testing.T, bc shardedBatchConfig) {
	matcher := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
	script := generateScript(t, entity.Dirty, bc.seed, bc.ops, bc.mix)
	cfg := sharded.Config{
		Kind: entity.Dirty, Blocker: &blocking.TokenBlocking{}, Matcher: matcher,
		Workers: 4, Meta: bc.meta, Shards: bc.shards,
	}
	sh, err := sharded.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	single, err := incremental.New(incremental.Config{
		Kind: entity.Dirty, Blocker: &blocking.TokenBlocking{}, Matcher: matcher, Workers: 4, Meta: bc.meta,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	chunks := 0
	for at := 0; at < bc.ops; at += bc.size {
		end := min(at+bc.size, bc.ops)
		if err := applyOpBatch(ctx, sh, script[at:end]); err != nil {
			t.Fatalf("batch at op %d: %v", at, err)
		}
		chunks++
		for i := at; i < end; i++ {
			if err := single.Apply(ctx, script[i]); err != nil {
				t.Fatalf("op %d (%s %s): %v", i, script[i].Kind, script[i].URI, err)
			}
		}
		if at/50 != end/50 || end == bc.ops {
			assertShardedEqualsSingle(t, sh, single, bc.meta != nil, end)
		}
	}
	// The whole point: one fan-out per batch instead of one per op, one
	// shard-journal append per shard per batch instead of one per op.
	perf := sh.Perf()
	if perf.FanOuts != int64(chunks) {
		t.Fatalf("%d fan-outs for %d batches", perf.FanOuts, chunks)
	}
	if bc.meta == nil && perf.JournalAppends != int64(chunks*bc.shards) {
		t.Fatalf("%d shard-journal appends for %d batches on %d shards", perf.JournalAppends, chunks, bc.shards)
	}
	assertBatchEquivalence(t, sh, cfg.Blocker, bc.meta, matcher, bc.ops)
}

// TestShardedDifferentialBatch is the sharded batched-ingestion acceptance
// matrix. Named to ride the sharded differential race job.
func TestShardedDifferentialBatch(t *testing.T) {
	configs := []shardedBatchConfig{
		{shards: 1, size: 16, seed: 421, ops: 160, mix: opMixes[0]},
		{shards: 2, size: 1, seed: 422, ops: 160, mix: opMixes[1]},
		{shards: 4, size: 16, seed: 423, ops: 200, mix: opMixes[1]},
		{shards: 4, size: 64, seed: 424, ops: 200, mix: opMixes[2]},
		{shards: 3, size: 16, seed: 425, ops: 140, mix: opMixes[1],
			meta: &metablocking.MetaBlocker{Weight: metablocking.CBS, Prune: metablocking.WEP}},
		{shards: 5, size: 7, seed: 426, ops: 140, mix: opMixes[0],
			meta: &metablocking.MetaBlocker{Weight: metablocking.ECBS, Prune: metablocking.WNP}},
	}
	for _, bc := range configs {
		bc := bc
		t.Run(bc.String(), func(t *testing.T) {
			if testing.Short() && bc.shards > 2 {
				t.Skip("short mode runs small shard counts only")
			}
			t.Parallel()
			runShardedBatchDifferential(t, bc)
		})
	}
}

// TestShardedReopenBatch: durable batched ingestion across a hard stop.
// The recovered leg reopens after an Abandon with a torn frame appended to
// one shard's WAL; the torn-fanout leg truncates the final batch record
// off one shard entirely, forcing the coordinator journal to roll the
// shard's whole batch forward on reopen.
func TestShardedReopenBatch(t *testing.T) {
	matcher := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
	ctx := context.Background()
	singleRef := func(t *testing.T, script []incremental.Op, k int) *incremental.Resolver {
		t.Helper()
		ref, err := incremental.New(incremental.Config{
			Kind: entity.Dirty, Blocker: &blocking.TokenBlocking{}, Matcher: matcher, Workers: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < k; i++ {
			if err := ref.Apply(ctx, script[i]); err != nil {
				t.Fatalf("reference op %d: %v", i, err)
			}
		}
		return ref
	}
	applyBatches := func(t *testing.T, sh *sharded.Resolver, script []incremental.Op, from, to, size int) {
		t.Helper()
		for at := from; at < to; at += size {
			if err := applyOpBatch(ctx, sh, script[at:min(at+size, to)]); err != nil {
				t.Fatalf("batch at op %d: %v", at, err)
			}
		}
	}

	t.Run("recovered", func(t *testing.T) {
		t.Parallel()
		const shards, ops, size, k = 3, 120, 8, 64
		script := generateScript(t, entity.Dirty, 431, ops, opMixes[1])
		cfg := sharded.Config{
			Kind: entity.Dirty, Blocker: &blocking.TokenBlocking{}, Matcher: matcher,
			Workers: 4, Shards: shards,
			Durable: incremental.DurableOptions{SnapshotEvery: 25, SegmentBytes: 4096, NoSync: true},
		}
		dir := t.TempDir()
		sh, err := sharded.Open(dir, cfg)
		if err != nil {
			t.Fatal(err)
		}
		applyBatches(t, sh, script, 0, k, size)
		sh.Abandon()
		tearShardTail(t, dir, 1)
		re, err := sharded.Open(dir, cfg)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer re.Close()
		if !re.Recovered() {
			t.Fatal("reopen found no state")
		}
		assertShardedEqualsSingle(t, re, singleRef(t, script, k), false, k)
		applyBatches(t, re, script, k, ops, size)
		assertShardedEqualsSingle(t, re, singleRef(t, script, ops), false, ops)
	})

	t.Run("durable-meta", func(t *testing.T) {
		t.Parallel()
		// Under live meta-blocking the coordinator itself holds durable
		// state: one coordinator-journal append per acknowledged batch,
		// one per effective reconcile, compacted into coordinator
		// snapshots on the shard cadence. A hard stop and reopen must
		// restore the newest coordinator snapshot and replay whole-batch
		// records into the similarity cache — comparison counters and
		// match state restart-exact against an uninterrupted single-node
		// run that read at the same batch boundaries.
		const shards, ops, size = 3, 96, 8
		meta := &metablocking.MetaBlocker{Weight: metablocking.CBS, Prune: metablocking.WEP}
		script := generateScript(t, entity.Dirty, 433, ops, opMixes[1])
		cfg := sharded.Config{
			Kind: entity.Dirty, Blocker: &blocking.TokenBlocking{}, Matcher: matcher,
			Workers: 4, Shards: shards, Meta: meta,
			Durable: incremental.DurableOptions{SnapshotEvery: 16, SegmentBytes: 4096, NoSync: true},
		}
		single, err := incremental.New(incremental.Config{
			Kind: entity.Dirty, Blocker: &blocking.TokenBlocking{}, Matcher: matcher, Workers: 4, Meta: meta,
		})
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		sh, err := sharded.Open(dir, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for at := 0; at < ops; at += size {
			end := min(at+size, ops)
			if err := applyOpBatch(ctx, sh, script[at:end]); err != nil {
				t.Fatalf("batch at op %d: %v", at, err)
			}
			for i := at; i < end; i++ {
				if err := single.Apply(ctx, script[i]); err != nil {
					t.Fatalf("reference op %d: %v", i, err)
				}
			}
			// Lockstep reads: reads reconcile deferred meta-blocking work,
			// so both legs reconcile at the same batch boundaries.
			mustMatches(t, sh)
			mustMatches(t, single)
		}
		assertShardedEqualsSingle(t, sh, single, true, ops)
		sh.Abandon()
		re, err := sharded.Open(dir, cfg)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer re.Close()
		if !re.Recovered() {
			t.Fatal("reopen found no state")
		}
		assertShardedEqualsSingle(t, re, single, true, ops)
		assertBatchEquivalence(t, re, cfg.Blocker, meta, matcher, ops)
	})

	t.Run("torn-fanout", func(t *testing.T) {
		t.Parallel()
		// Shard 0 loses the final batch record — its WAL is truncated into
		// that append, the crash shape of a fan-out torn mid-batch. Reopen
		// must roll the WHOLE batch forward on that shard from the
		// coordinator journal: batch atomicity per shard, then repair.
		const shards, ops, size = 3, 48, 6
		script := generateScript(t, entity.Dirty, 432, ops, opMixes[0])
		cfg := sharded.Config{
			Kind: entity.Dirty, Blocker: &blocking.TokenBlocking{}, Matcher: matcher,
			Workers: 4, Shards: shards,
			Durable: incremental.DurableOptions{SnapshotEvery: 1000, SegmentBytes: 1 << 20, NoSync: true},
		}
		dir := t.TempDir()
		sh, err := sharded.Open(dir, cfg)
		if err != nil {
			t.Fatal(err)
		}
		applyBatches(t, sh, script, 0, ops, size)
		sh.Abandon()
		segs, err := filepath.Glob(filepath.Join(dir, "shard-000", "wal-*.seg"))
		if err != nil || len(segs) == 0 {
			t.Fatalf("no WAL segments for shard 0: %v", err)
		}
		active := segs[len(segs)-1]
		fi, err := os.Stat(active)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(active, fi.Size()-3); err != nil {
			t.Fatal(err)
		}
		re, err := sharded.Open(dir, cfg)
		if err != nil {
			t.Fatalf("reopen after torn fan-out: %v", err)
		}
		defer re.Close()
		if re.RolledForward() == 0 {
			t.Fatal("reopen repaired nothing: the torn shard was not rolled forward")
		}
		assertShardedEqualsSingle(t, re, singleRef(t, script, ops), false, ops)
		assertBatchEquivalence(t, re, cfg.Blocker, nil, matcher, ops)
	})
}
