package token

import (
	"reflect"
	"testing"

	"entityres/internal/entity"
)

func TestIsRefValue(t *testing.T) {
	refs := []string{"http://x/1", "https://x/1", "urn:x:1"}
	for _, v := range refs {
		if !IsRefValue(v) {
			t.Fatalf("IsRefValue(%q) = false", v)
		}
	}
	for _, v := range []string{"", "alice", "http", "ftp://x", "URN:X"} {
		if IsRefValue(v) {
			t.Fatalf("IsRefValue(%q) = true", v)
		}
	}
}

func TestProfilerSkipRefValues(t *testing.T) {
	d := entity.NewDescription("").
		Add("name", "alice").
		Add("knows", "http://kb/bob").
		Add("id", "urn:x:9")
	with := &Profiler{Scheme: SchemaAgnostic, SkipRefValues: true}
	without := &Profiler{Scheme: SchemaAgnostic}
	if got := with.Tokens(d); !reflect.DeepEqual(got, []string{"alice"}) {
		t.Fatalf("ref-skipping tokens = %v", got)
	}
	if len(without.Tokens(d)) <= 1 {
		t.Fatal("default profiler should tokenize reference values")
	}
}
