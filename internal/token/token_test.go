package token

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Jean-Luc PICARD", "jean luc picard"},
		{"a.b,c;d", "a b c d"},
		{"", ""},
		{"123-ABC", "123 abc"},
		{"Ünïcode Straße", "ünïcode straße"},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("The  Quick-Brown fox! 42")
	want := []string{"the", "quick", "brown", "fox", "42"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
	if Tokenize("   ") != nil && len(Tokenize("   ")) != 0 {
		t.Fatal("blank input should yield no tokens")
	}
}

func TestTokenizeFiltered(t *testing.T) {
	stop := DefaultStopwords()
	got := TokenizeFiltered("The matrix of the rings", stop, 3)
	want := []string{"matrix", "rings"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TokenizeFiltered = %v, want %v", got, want)
	}
	// nil stopwords and minLen 0 keep everything.
	got = TokenizeFiltered("a bb", nil, 0)
	if !reflect.DeepEqual(got, []string{"a", "bb"}) {
		t.Fatalf("unfiltered = %v", got)
	}
}

func TestQGrams(t *testing.T) {
	got := QGrams("ab", 2)
	want := []string{"#a", "ab", "b#"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("QGrams(ab,2) = %v, want %v", got, want)
	}
	if QGrams("", 2) != nil {
		t.Fatal("QGrams on empty should be nil")
	}
	if QGrams("abc", 0) != nil {
		t.Fatal("QGrams with q<1 should be nil")
	}
	if got := QGrams("ab", 1); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("QGrams(ab,1) = %v", got)
	}
}

// Property: padded q-gram count equals len(norm)+q-1 for non-empty strings.
func TestQGramsCountProperty(t *testing.T) {
	f := func(s string) bool {
		const q = 3
		grams := QGrams(s, q)
		norm := Tokenize(s)
		if len(norm) == 0 {
			return grams == nil
		}
		joined := 0
		for i, tok := range norm {
			if i > 0 {
				joined++
			}
			joined += len([]rune(tok))
		}
		return len(grams) == joined+q-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQualified(t *testing.T) {
	got := Qualified("name", []string{"alice", "smith"})
	want := []string{"name#alice", "name#smith"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Qualified = %v", got)
	}
}

func TestStopwords(t *testing.T) {
	s := NewStopwords("The", "AND")
	if !s.Contains("the") || !s.Contains("and") {
		t.Fatal("stopwords should be normalized")
	}
	if s.Contains("fox") {
		t.Fatal("non-stopword reported")
	}
	var nilSet Stopwords
	if nilSet.Contains("the") {
		t.Fatal("nil stopwords should contain nothing")
	}
}
