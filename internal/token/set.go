package token

import "sort"

// Set is a set of tokens. It is the unit of set-based similarity (Jaccard,
// Dice, cosine) and of schema-agnostic description signatures.
type Set map[string]struct{}

// NewSet builds a set from the given tokens.
func NewSet(tokens ...string) Set {
	s := make(Set, len(tokens))
	for _, t := range tokens {
		s[t] = struct{}{}
	}
	return s
}

// Add inserts t and reports whether it was new.
func (s Set) Add(t string) bool {
	if _, ok := s[t]; ok {
		return false
	}
	s[t] = struct{}{}
	return true
}

// Contains reports membership.
func (s Set) Contains(t string) bool {
	_, ok := s[t]
	return ok
}

// Len returns the set cardinality.
func (s Set) Len() int { return len(s) }

// Sorted returns the tokens in ascending order. Sorted token lists are the
// input to prefix-filtered similarity joins, where a global total order on
// tokens is required.
func (s Set) Sorted() []string {
	out := make([]string, 0, len(s))
	for t := range s {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// IntersectionSize returns |s ∩ o| without materializing the intersection.
func (s Set) IntersectionSize(o Set) int {
	small, large := s, o
	if len(large) < len(small) {
		small, large = large, small
	}
	n := 0
	for t := range small {
		if _, ok := large[t]; ok {
			n++
		}
	}
	return n
}

// UnionSize returns |s ∪ o|.
func (s Set) UnionSize(o Set) int {
	return len(s) + len(o) - s.IntersectionSize(o)
}

// Union returns a new set s ∪ o.
func (s Set) Union(o Set) Set {
	out := make(Set, len(s)+len(o))
	for t := range s {
		out[t] = struct{}{}
	}
	for t := range o {
		out[t] = struct{}{}
	}
	return out
}

// Bag is a multiset of tokens with integer multiplicities; the basis of
// TF-weighted similarity.
type Bag map[string]int

// NewBag builds a bag from the given tokens.
func NewBag(tokens ...string) Bag {
	b := make(Bag, len(tokens))
	for _, t := range tokens {
		b[t]++
	}
	return b
}

// Add increments the multiplicity of t by n.
func (b Bag) Add(t string, n int) { b[t] += n }

// Total returns the total number of token occurrences.
func (b Bag) Total() int {
	n := 0
	for _, c := range b {
		n += c
	}
	return n
}

// ToSet forgets multiplicities.
func (b Bag) ToSet() Set {
	s := make(Set, len(b))
	for t := range b {
		s[t] = struct{}{}
	}
	return s
}
