// Package token provides the text normalization and tokenization substrate
// used throughout the entity-resolution pipeline: schema-agnostic token
// extraction for token blocking, q-gram extraction for q-grams blocking and
// edit-based similarity, attribute-qualified tokens for schema-aware keys,
// and token sets with the usual set algebra.
//
// Tokenization choices dominate blocking quality in the Web of data, where
// descriptions share tokens rather than whole values; every tokenizer here
// is deterministic and allocation-conscious because blocking tokenizes
// every value of every description.
package token

import (
	"strings"
	"unicode"
)

// Normalize lowercases s and maps every non-alphanumeric rune to a space.
// This is the canonical normalization applied before token extraction so
// that "Jean-Luc" and "jean luc" produce identical tokens.
func Normalize(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for _, r := range s {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
		default:
			b.WriteByte(' ')
		}
	}
	return b.String()
}

// Tokenize splits s into normalized alphanumeric tokens. Tokens of length
// one are kept: single-letter initials carry signal in person names.
func Tokenize(s string) []string {
	return strings.Fields(Normalize(s))
}

// TokenizeFiltered splits s into normalized tokens, dropping stopwords and
// tokens shorter than minLen.
func TokenizeFiltered(s string, stop Stopwords, minLen int) []string {
	raw := Tokenize(s)
	out := raw[:0]
	for _, t := range raw {
		if len(t) < minLen {
			continue
		}
		if stop != nil && stop.Contains(t) {
			continue
		}
		out = append(out, t)
	}
	return out
}

// QGrams returns the padded character q-grams of the normalized form of s.
// Padding with q−1 sentinel characters on both sides gives edge characters
// the same number of grams as interior ones, the standard construction for
// q-gram similarity and q-grams blocking. It returns nil for q < 1 or an
// empty normalized string.
func QGrams(s string, q int) []string {
	if q < 1 {
		return nil
	}
	norm := strings.Join(Tokenize(s), " ")
	if norm == "" {
		return nil
	}
	if q == 1 {
		out := make([]string, 0, len(norm))
		for _, r := range norm {
			out = append(out, string(r))
		}
		return out
	}
	pad := strings.Repeat("#", q-1)
	padded := []rune(pad + norm + pad)
	n := len(padded) - q + 1
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, string(padded[i:i+q]))
	}
	return out
}

// Qualified prefixes each token with an attribute name, producing the
// schema-aware tokens used by standard blocking and attribute-qualified
// token blocking: "name#smith" only collides with "name#smith", never with
// "city#smith".
func Qualified(attr string, tokens []string) []string {
	out := make([]string, len(tokens))
	for i, t := range tokens {
		out[i] = attr + "#" + t
	}
	return out
}

// Stopwords is a set of tokens excluded from blocking keys. Frequent
// function words produce enormous blocks with no discriminative power.
type Stopwords map[string]struct{}

// NewStopwords builds a stopword set from the given words (normalized).
func NewStopwords(words ...string) Stopwords {
	s := make(Stopwords, len(words))
	for _, w := range words {
		for _, t := range Tokenize(w) {
			s[t] = struct{}{}
		}
	}
	return s
}

// DefaultStopwords covers the high-frequency English function words that
// dominate attribute values in encyclopaedic KBs.
func DefaultStopwords() Stopwords {
	return NewStopwords(
		"a", "an", "and", "are", "as", "at", "be", "by", "for", "from",
		"has", "he", "in", "is", "it", "its", "of", "on", "or", "that",
		"the", "to", "was", "were", "will", "with",
	)
}

// Contains reports whether t is a stopword. A nil set contains nothing.
func (s Stopwords) Contains(t string) bool {
	if s == nil {
		return false
	}
	_, ok := s[t]
	return ok
}
