package token

import (
	"strings"

	"entityres/internal/entity"
)

// Scheme selects how description text is turned into blocking tokens.
type Scheme int

const (
	// SchemaAgnostic extracts tokens from every attribute value,
	// discarding attribute names — the robust choice for the Web of data,
	// where matching descriptions rarely agree on schema.
	SchemaAgnostic Scheme = iota
	// SchemaAware extracts attribute-qualified tokens (name#token), so
	// tokens only collide within the same attribute.
	SchemaAware
)

// Profiler converts descriptions to token sets under a fixed configuration,
// caching nothing: profiling is cheap relative to the downstream quadratic
// work and callers that need caching layer it themselves (see package
// index).
type Profiler struct {
	Scheme    Scheme
	Stopwords Stopwords
	// MinTokenLen drops tokens shorter than this (0 or 1 keeps all).
	MinTokenLen int
	// IncludeURITokens, when set, also extracts tokens from the local part
	// of the description URI, the signal exploited by prefix-infix-suffix
	// blocking for sparsely described periphery entities.
	IncludeURITokens bool
	// SkipRefValues, when set, ignores attribute values that look like
	// URIs (http://, https://, urn:). Reference values carry relational
	// evidence, consumed by relationship-based resolution — feeding them
	// to textual similarity conflates the two kinds of signal.
	SkipRefValues bool
}

// IsRefValue reports whether a value looks like an entity reference.
func IsRefValue(v string) bool {
	return strings.HasPrefix(v, "http://") ||
		strings.HasPrefix(v, "https://") ||
		strings.HasPrefix(v, "urn:")
}

// DefaultProfiler returns the schema-agnostic profiler with default
// stopwords used by the paper's token-blocking family.
func DefaultProfiler() *Profiler {
	return &Profiler{Scheme: SchemaAgnostic, Stopwords: DefaultStopwords()}
}

// Tokens returns the token list of d under the profiler's scheme, with
// duplicates preserved (multiplicity matters for TF weighting).
func (p *Profiler) Tokens(d *entity.Description) []string {
	var out []string
	for _, a := range d.Attrs {
		if p.SkipRefValues && IsRefValue(a.Value) {
			continue
		}
		ts := TokenizeFiltered(a.Value, p.Stopwords, p.MinTokenLen)
		if p.Scheme == SchemaAware {
			ts = Qualified(a.Name, ts)
		}
		out = append(out, ts...)
	}
	if p.IncludeURITokens && d.URI != "" {
		out = append(out, URITokens(d.URI, p.Stopwords, p.MinTokenLen)...)
	}
	return out
}

// Set returns the distinct tokens of d under the profiler's scheme.
func (p *Profiler) Set(d *entity.Description) Set {
	return NewSet(p.Tokens(d)...)
}

// URITokens extracts tokens from the local name of a URI (the part after
// the last '/' or '#'), which frequently encodes the entity label in LOD
// datasets.
func URITokens(uri string, stop Stopwords, minLen int) []string {
	local := uri
	for i := len(uri) - 1; i >= 0; i-- {
		if uri[i] == '/' || uri[i] == '#' {
			local = uri[i+1:]
			break
		}
	}
	return TokenizeFiltered(local, stop, minLen)
}
