package token

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestSetBasics(t *testing.T) {
	s := NewSet("a", "b", "a")
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if !s.Add("c") || s.Add("c") {
		t.Fatal("Add semantics wrong")
	}
	if !s.Contains("a") || s.Contains("z") {
		t.Fatal("Contains wrong")
	}
	if got := s.Sorted(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("Sorted = %v", got)
	}
}

func TestSetAlgebra(t *testing.T) {
	a := NewSet("x", "y", "z")
	b := NewSet("y", "z", "w")
	if a.IntersectionSize(b) != 2 {
		t.Fatalf("IntersectionSize = %d", a.IntersectionSize(b))
	}
	if a.UnionSize(b) != 4 {
		t.Fatalf("UnionSize = %d", a.UnionSize(b))
	}
	u := a.Union(b)
	if u.Len() != 4 || !u.Contains("w") || !u.Contains("x") {
		t.Fatalf("Union = %v", u)
	}
}

// Property: inclusion-exclusion holds for random sets.
func TestSetInclusionExclusion(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a, b := NewSet(), NewSet()
		for _, x := range xs {
			a.Add(string(rune('a' + x%16)))
		}
		for _, y := range ys {
			b.Add(string(rune('a' + y%16)))
		}
		return a.UnionSize(b) == a.Len()+b.Len()-a.IntersectionSize(b) &&
			a.IntersectionSize(b) == b.IntersectionSize(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBag(t *testing.T) {
	b := NewBag("a", "b", "a")
	if b["a"] != 2 || b["b"] != 1 {
		t.Fatalf("bag = %v", b)
	}
	if b.Total() != 3 {
		t.Fatalf("Total = %d", b.Total())
	}
	b.Add("c", 4)
	if b.Total() != 7 {
		t.Fatalf("Total after Add = %d", b.Total())
	}
	s := b.ToSet()
	if s.Len() != 3 {
		t.Fatalf("ToSet = %v", s)
	}
}
