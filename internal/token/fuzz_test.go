package token

import (
	"strings"
	"testing"
	"unicode"
)

// FuzzNormalize checks normalization never panics, is idempotent, and only
// emits ToLower-stable letters, digits and spaces — the invariant every
// downstream tokenizer assumes. (Some letters, e.g. the mathematical
// fraktur capitals, are uppercase by Unicode category yet have no
// lowercase mapping; ToLower-stability is the property Normalize actually
// guarantees.)
func FuzzNormalize(f *testing.F) {
	for _, s := range []string{
		"Jean-Luc Picard", "  ", "", "ÀÉÎÕÜ çñß", "日本語テキスト",
		"tabs\tand\nnewlines", "123-456", "\x00\xff invalid \xed\xa0\x80 utf8",
		"ⅣⅥ ½ ₂ 𝔘𝔫𝔦", "İstanbul DŽungla",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		n := Normalize(s)
		for _, r := range n {
			if r != ' ' && !unicode.IsLetter(r) && !unicode.IsDigit(r) {
				t.Fatalf("Normalize(%q) emitted %q", s, r)
			}
			if unicode.ToLower(r) != r {
				t.Fatalf("Normalize(%q) emitted lowerable %q", s, r)
			}
		}
		if n2 := Normalize(n); n2 != n {
			t.Fatalf("Normalize not idempotent on %q: %q -> %q", s, n, n2)
		}
	})
}

// FuzzTokenize checks tokenization never panics and that every token is a
// non-empty normalized word that re-tokenizes to itself.
func FuzzTokenize(f *testing.F) {
	for _, s := range []string{
		"alice smith", "", "a", "-- punct --", "mixed 'quotes' and №128",
		"über Äpfel", " nbsp separated",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		for _, tok := range Tokenize(s) {
			if tok == "" {
				t.Fatalf("Tokenize(%q) emitted an empty token", s)
			}
			if strings.ContainsAny(tok, " \t\n") {
				t.Fatalf("Tokenize(%q) emitted token with whitespace: %q", s, tok)
			}
			again := Tokenize(tok)
			if len(again) != 1 || again[0] != tok {
				t.Fatalf("token %q from %q is not tokenization-stable: %v", tok, s, again)
			}
		}
	})
}

// FuzzQGrams checks q-gram extraction never panics and that every gram of
// the normalized input has exactly q runes.
func FuzzQGrams(f *testing.F) {
	f.Add("smith", 3)
	f.Add("", 2)
	f.Add("a", 5)
	f.Add("é日本", 2)
	f.Add("two words", 4)
	f.Add("x", 0)
	f.Add("neg", -3)
	f.Fuzz(func(t *testing.T, s string, q int) {
		// Bound q: gram extraction allocates O(q) padding by design, so
		// astronomically large q only tests the allocator.
		if q > 16 {
			q = q%16 + 1
		}
		grams := QGrams(s, q)
		if q < 1 && grams != nil {
			t.Fatalf("QGrams(%q, %d) = %v, want nil", s, q, grams)
		}
		for _, g := range grams {
			if n := len([]rune(g)); n != q {
				t.Fatalf("QGrams(%q, %d) emitted %q with %d runes", s, q, g, n)
			}
		}
	})
}
