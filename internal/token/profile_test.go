package token

import (
	"reflect"
	"testing"

	"entityres/internal/entity"
)

func TestProfilerSchemaAgnostic(t *testing.T) {
	d := entity.NewDescription("").Add("name", "Alice Smith").Add("job", "Smith Forge")
	p := &Profiler{Scheme: SchemaAgnostic}
	got := p.Tokens(d)
	want := []string{"alice", "smith", "smith", "forge"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokens = %v, want %v", got, want)
	}
	set := p.Set(d)
	if set.Len() != 3 {
		t.Fatalf("Set = %v", set)
	}
}

func TestProfilerSchemaAware(t *testing.T) {
	d := entity.NewDescription("").Add("name", "smith").Add("city", "smith")
	p := &Profiler{Scheme: SchemaAware}
	set := p.Set(d)
	if !set.Contains("name#smith") || !set.Contains("city#smith") || set.Len() != 2 {
		t.Fatalf("schema-aware set = %v", set)
	}
}

func TestProfilerStopwordsAndMinLen(t *testing.T) {
	d := entity.NewDescription("").Add("t", "the of ab abc")
	p := &Profiler{Scheme: SchemaAgnostic, Stopwords: DefaultStopwords(), MinTokenLen: 3}
	got := p.Tokens(d)
	if !reflect.DeepEqual(got, []string{"abc"}) {
		t.Fatalf("Tokens = %v", got)
	}
}

func TestProfilerURITokens(t *testing.T) {
	d := entity.NewDescription("http://dbpedia.org/resource/Alan_Turing")
	p := &Profiler{Scheme: SchemaAgnostic, IncludeURITokens: true}
	got := p.Tokens(d)
	want := []string{"alan", "turing"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("URI tokens = %v, want %v", got, want)
	}
	p.IncludeURITokens = false
	if len(p.Tokens(d)) != 0 {
		t.Fatal("URI tokens leaked with flag off")
	}
}

func TestURITokensHashFragment(t *testing.T) {
	got := URITokens("http://ex.org/onto#Person_Name", nil, 0)
	want := []string{"person", "name"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("URITokens = %v", got)
	}
	if got := URITokens("nolocalpart", nil, 0); !reflect.DeepEqual(got, []string{"nolocalpart"}) {
		t.Fatalf("URITokens without separator = %v", got)
	}
}

func TestDefaultProfiler(t *testing.T) {
	p := DefaultProfiler()
	if p.Scheme != SchemaAgnostic || p.Stopwords == nil {
		t.Fatal("DefaultProfiler misconfigured")
	}
}
