package entity

import (
	"testing"
	"testing/quick"
)

func TestNewPairCanonical(t *testing.T) {
	p := NewPair(7, 3)
	if p.A != 3 || p.B != 7 {
		t.Fatalf("NewPair(7,3) = %+v", p)
	}
	if p != NewPair(3, 7) {
		t.Fatal("NewPair not order-independent")
	}
}

func TestPairCanonicalProperty(t *testing.T) {
	f := func(a, b int16) bool {
		p := NewPair(int(a), int(b))
		return p.A <= p.B && p == p.Canonical() && p == NewPair(int(b), int(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPairOtherAndContains(t *testing.T) {
	p := NewPair(2, 9)
	if p.Other(2) != 9 || p.Other(9) != 2 {
		t.Fatal("Other failed")
	}
	if p.Other(5) != -1 {
		t.Fatal("Other on non-member should be -1")
	}
	if !p.Contains(2) || !p.Contains(9) || p.Contains(5) {
		t.Fatal("Contains failed")
	}
}

func TestPairSetDedup(t *testing.T) {
	s := NewPairSet(4)
	if !s.Add(1, 2) {
		t.Fatal("first Add should be new")
	}
	if s.Add(2, 1) {
		t.Fatal("reversed Add should be duplicate")
	}
	if !s.Contains(2, 1) {
		t.Fatal("Contains should be order-independent")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	s.Add(3, 4)
	seen := 0
	s.Each(func(Pair) bool { seen++; return true })
	if seen != 2 {
		t.Fatalf("Each visited %d", seen)
	}
	seen = 0
	s.Each(func(Pair) bool { seen++; return false })
	if seen != 1 {
		t.Fatalf("Each early stop visited %d", seen)
	}
	if len(s.Pairs()) != 2 {
		t.Fatal("Pairs length mismatch")
	}
}
