package entity

import "fmt"

// Kind distinguishes the two resolution settings of the paper.
type Kind int

const (
	// Dirty is a single collection that may contain duplicates; every pair
	// of descriptions is a potential match (deduplication).
	Dirty Kind = iota
	// CleanClean is two individually duplicate-free collections; only
	// cross-source pairs are potential matches (record linkage / KB
	// interlinking).
	CleanClean
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Dirty:
		return "dirty"
	case CleanClean:
		return "clean-clean"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Collection is an ordered set of entity descriptions with dense IDs.
// For CleanClean collections the descriptions of both sources live in the
// same ID space, distinguished by Description.Source; this keeps every
// downstream structure (blocks, graphs, schedules) a flat array indexed by
// ID regardless of setting.
type Collection struct {
	kind  Kind
	descs []*Description
	// perSource counts descriptions per source index.
	perSource [2]int
}

// NewCollection returns an empty collection of the given kind.
func NewCollection(kind Kind) *Collection {
	return &Collection{kind: kind}
}

// Kind reports whether the collection is dirty or clean-clean.
func (c *Collection) Kind() Kind { return c.kind }

// Len returns the number of descriptions.
func (c *Collection) Len() int { return len(c.descs) }

// SourceLen returns the number of descriptions from the given source
// (0 or 1).
func (c *Collection) SourceLen(source int) int {
	if source < 0 || source >= len(c.perSource) {
		return 0
	}
	return c.perSource[source]
}

// Add inserts a description, assigns its dense ID, validates its source
// index against the collection kind, and returns the assigned ID.
func (c *Collection) Add(d *Description) (ID, error) {
	switch c.kind {
	case Dirty:
		if d.Source != 0 {
			return -1, fmt.Errorf("entity: dirty collection requires source 0, got %d", d.Source)
		}
	case CleanClean:
		if d.Source != 0 && d.Source != 1 {
			return -1, fmt.Errorf("entity: clean-clean collection requires source 0 or 1, got %d", d.Source)
		}
	}
	d.ID = len(c.descs)
	c.descs = append(c.descs, d)
	c.perSource[d.Source]++
	return d.ID, nil
}

// MustAdd is Add for construction code paths where the source index is
// statically correct; it panics on error.
func (c *Collection) MustAdd(d *Description) ID {
	id, err := c.Add(d)
	if err != nil {
		panic(err)
	}
	return id
}

// Get returns the description with the given ID, or nil when out of range.
func (c *Collection) Get(id ID) *Description {
	if id < 0 || id >= len(c.descs) {
		return nil
	}
	return c.descs[id]
}

// All returns the backing slice of descriptions ordered by ID. Callers must
// not mutate the slice structure (element fields other than ID may be read
// freely).
func (c *Collection) All() []*Description { return c.descs }

// Comparable reports whether two descriptions form a valid candidate pair
// under the collection's kind: distinct IDs always, and cross-source for
// clean-clean collections.
func (c *Collection) Comparable(a, b ID) bool {
	if a == b || a < 0 || b < 0 || a >= len(c.descs) || b >= len(c.descs) {
		return false
	}
	if c.kind == CleanClean {
		return c.descs[a].Source != c.descs[b].Source
	}
	return true
}

// TotalComparisons returns the number of distinct candidate pairs an
// exhaustive (blocking-free) resolution would execute: n·(n−1)/2 for dirty
// collections, |source0|·|source1| for clean-clean ones. This is the
// denominator of the reduction ratio.
func (c *Collection) TotalComparisons() int64 {
	if c.kind == CleanClean {
		return int64(c.perSource[0]) * int64(c.perSource[1])
	}
	n := int64(len(c.descs))
	return n * (n - 1) / 2
}
