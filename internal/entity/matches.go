package entity

// Matches is the ground truth (or the accumulating output) of an entity
// resolution task: the set of description pairs that refer to the same
// real-world entity. Matches are stored transitively closed when built via
// FromClusters; pairwise Add does not close them — use Closure for that.
type Matches struct {
	set *PairSet
	// byID indexes, for every description, the IDs it matches with.
	byID map[ID][]ID
}

// NewMatches returns an empty match set.
func NewMatches() *Matches {
	return &Matches{set: NewPairSet(0), byID: make(map[ID][]ID)}
}

// Add records that a and b match. It reports whether the pair was new.
func (m *Matches) Add(a, b ID) bool {
	if a == b {
		return false
	}
	if !m.set.Add(a, b) {
		return false
	}
	m.byID[a] = append(m.byID[a], b)
	m.byID[b] = append(m.byID[b], a)
	return true
}

// Contains reports whether {a, b} is a known match.
func (m *Matches) Contains(a, b ID) bool { return m.set.Contains(a, b) }

// Of returns the IDs known to match id. The returned slice is owned by the
// Matches and must not be mutated.
func (m *Matches) Of(id ID) []ID { return m.byID[id] }

// Len returns the number of matching pairs.
func (m *Matches) Len() int { return m.set.Len() }

// Each iterates over all matching pairs in unspecified order.
func (m *Matches) Each(fn func(Pair) bool) { m.set.Each(fn) }

// Pairs returns all matching pairs in unspecified order.
func (m *Matches) Pairs() []Pair { return m.set.Pairs() }

// FromClusters builds a transitively-closed match set from ground-truth
// clusters: every pair of IDs within one cluster is a match.
func FromClusters(clusters [][]ID) *Matches {
	m := NewMatches()
	for _, cl := range clusters {
		for i := 0; i < len(cl); i++ {
			for j := i + 1; j < len(cl); j++ {
				m.Add(cl[i], cl[j])
			}
		}
	}
	return m
}

// Closure returns a new match set that is the transitive closure of m:
// if {a,b} and {b,c} are matches then {a,c} is a match in the result.
// Entity resolution outputs are equivalence relations, so evaluation
// against a closed ground truth requires closing the system output too.
func (m *Matches) Closure() *Matches {
	uf := NewUnionFind(0)
	m.Each(func(p Pair) bool {
		uf.Union(p.A, p.B)
		return true
	})
	return FromClusters(uf.Clusters())
}

// Clusters groups the matched IDs into connected components. Singleton
// descriptions (those matching nothing) do not appear.
func (m *Matches) Clusters() [][]ID {
	uf := NewUnionFind(0)
	m.Each(func(p Pair) bool {
		uf.Union(p.A, p.B)
		return true
	})
	return uf.Clusters()
}
