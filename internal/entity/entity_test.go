package entity

import (
	"strings"
	"testing"
)

func TestDescriptionAddAndValues(t *testing.T) {
	d := NewDescription("http://ex.org/p1").
		Add("name", "Alice Smith").
		Add("name", "A. Smith").
		Add("city", "Paris")
	if got := d.Values("name"); len(got) != 2 || got[0] != "Alice Smith" || got[1] != "A. Smith" {
		t.Fatalf("Values(name) = %v", got)
	}
	if v, ok := d.Value("city"); !ok || v != "Paris" {
		t.Fatalf("Value(city) = %q, %v", v, ok)
	}
	if _, ok := d.Value("missing"); ok {
		t.Fatal("Value(missing) reported ok")
	}
}

func TestDescriptionAttributeNamesSortedDistinct(t *testing.T) {
	d := NewDescription("").Add("b", "1").Add("a", "2").Add("b", "3")
	got := d.AttributeNames()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("AttributeNames = %v", got)
	}
}

func TestDescriptionAllValuesOrder(t *testing.T) {
	d := NewDescription("").Add("x", "v1").Add("y", "v2").Add("x", "v3")
	got := d.AllValues()
	want := []string{"v1", "v2", "v3"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AllValues = %v, want %v", got, want)
		}
	}
}

func TestDescriptionCloneIsDeep(t *testing.T) {
	d := NewDescription("u").Add("a", "1")
	c := d.Clone()
	c.Attrs[0].Value = "changed"
	c.Add("b", "2")
	if d.Attrs[0].Value != "1" || len(d.Attrs) != 1 {
		t.Fatalf("clone mutation leaked into original: %v", d)
	}
}

func TestDescriptionString(t *testing.T) {
	d := NewDescription("u1").Add("a", "x")
	s := d.String()
	for _, want := range []string{"u1", "a=", `"x"`} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func TestCollectionAddAssignsDenseIDs(t *testing.T) {
	c := NewCollection(Dirty)
	for i := 0; i < 5; i++ {
		id, err := c.Add(NewDescription(""))
		if err != nil {
			t.Fatal(err)
		}
		if id != i {
			t.Fatalf("Add assigned ID %d, want %d", id, i)
		}
	}
	if c.Len() != 5 {
		t.Fatalf("Len = %d", c.Len())
	}
	if c.Get(3).ID != 3 {
		t.Fatalf("Get(3).ID = %d", c.Get(3).ID)
	}
	if c.Get(99) != nil || c.Get(-1) != nil {
		t.Fatal("Get out of range should return nil")
	}
}

func TestCollectionSourceValidation(t *testing.T) {
	dirty := NewCollection(Dirty)
	d := NewDescription("")
	d.Source = 1
	if _, err := dirty.Add(d); err == nil {
		t.Fatal("dirty collection accepted source 1")
	}
	cc := NewCollection(CleanClean)
	d2 := NewDescription("")
	d2.Source = 2
	if _, err := cc.Add(d2); err == nil {
		t.Fatal("clean-clean collection accepted source 2")
	}
}

func TestCollectionComparable(t *testing.T) {
	cc := NewCollection(CleanClean)
	a := NewDescription("")
	b := NewDescription("")
	b.Source = 1
	c := NewDescription("")
	cc.MustAdd(a) // id 0, source 0
	cc.MustAdd(b) // id 1, source 1
	cc.MustAdd(c) // id 2, source 0
	if !cc.Comparable(0, 1) {
		t.Fatal("cross-source pair should be comparable")
	}
	if cc.Comparable(0, 2) {
		t.Fatal("same-source pair comparable in clean-clean")
	}
	if cc.Comparable(0, 0) {
		t.Fatal("self pair comparable")
	}
	dirty := NewCollection(Dirty)
	dirty.MustAdd(NewDescription(""))
	dirty.MustAdd(NewDescription(""))
	if !dirty.Comparable(0, 1) {
		t.Fatal("dirty pair should be comparable")
	}
}

func TestCollectionTotalComparisons(t *testing.T) {
	dirty := NewCollection(Dirty)
	for i := 0; i < 10; i++ {
		dirty.MustAdd(NewDescription(""))
	}
	if got := dirty.TotalComparisons(); got != 45 {
		t.Fatalf("dirty TotalComparisons = %d, want 45", got)
	}
	cc := NewCollection(CleanClean)
	for i := 0; i < 4; i++ {
		cc.MustAdd(NewDescription(""))
	}
	for i := 0; i < 6; i++ {
		d := NewDescription("")
		d.Source = 1
		cc.MustAdd(d)
	}
	if got := cc.TotalComparisons(); got != 24 {
		t.Fatalf("clean-clean TotalComparisons = %d, want 24", got)
	}
}

func TestKindString(t *testing.T) {
	if Dirty.String() != "dirty" || CleanClean.String() != "clean-clean" {
		t.Fatal("Kind.String mismatch")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Fatalf("unknown kind string = %q", Kind(9).String())
	}
}
