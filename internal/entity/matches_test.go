package entity

import (
	"sort"
	"testing"
)

func TestMatchesAddContains(t *testing.T) {
	m := NewMatches()
	if !m.Add(1, 2) || m.Add(2, 1) {
		t.Fatal("Add dedup failed")
	}
	if m.Add(3, 3) {
		t.Fatal("self match should be rejected")
	}
	if !m.Contains(2, 1) || m.Contains(1, 3) {
		t.Fatal("Contains failed")
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestMatchesOf(t *testing.T) {
	m := NewMatches()
	m.Add(1, 2)
	m.Add(1, 5)
	got := append([]ID(nil), m.Of(1)...)
	sort.Ints(got)
	if len(got) != 2 || got[0] != 2 || got[1] != 5 {
		t.Fatalf("Of(1) = %v", got)
	}
	if len(m.Of(9)) != 0 {
		t.Fatal("Of(unknown) should be empty")
	}
}

func TestFromClustersClosed(t *testing.T) {
	m := FromClusters([][]ID{{1, 2, 3}, {7, 8}})
	wantPairs := [][2]ID{{1, 2}, {1, 3}, {2, 3}, {7, 8}}
	if m.Len() != len(wantPairs) {
		t.Fatalf("Len = %d, want %d", m.Len(), len(wantPairs))
	}
	for _, p := range wantPairs {
		if !m.Contains(p[0], p[1]) {
			t.Fatalf("missing pair %v", p)
		}
	}
}

func TestClosure(t *testing.T) {
	m := NewMatches()
	m.Add(1, 2)
	m.Add(2, 3)
	closed := m.Closure()
	if !closed.Contains(1, 3) {
		t.Fatal("closure missing transitive pair")
	}
	if closed.Len() != 3 {
		t.Fatalf("closure Len = %d, want 3", closed.Len())
	}
	// Closure must not mutate the original.
	if m.Contains(1, 3) {
		t.Fatal("Closure mutated receiver")
	}
}

func TestMatchesClusters(t *testing.T) {
	m := NewMatches()
	m.Add(5, 1)
	m.Add(1, 9)
	m.Add(20, 21)
	cl := m.Clusters()
	if len(cl) != 2 {
		t.Fatalf("Clusters = %v", cl)
	}
	if cl[0][0] != 1 || len(cl[0]) != 3 {
		t.Fatalf("first cluster = %v", cl[0])
	}
	if cl[1][0] != 20 || len(cl[1]) != 2 {
		t.Fatalf("second cluster = %v", cl[1])
	}
}
