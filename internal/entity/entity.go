// Package entity defines the core data model for entity resolution in the
// Web of data: entity descriptions with multi-valued, schema-free
// attributes, collections of descriptions (dirty or clean-clean), pairs,
// ground-truth match sets and merged profiles.
//
// A Description models what the paper calls an "entity description": a
// named set of attribute-value pairs published by some knowledge base.
// Descriptions are deliberately schema-free — two descriptions of the same
// real-world entity may share no attribute names at all, which is exactly
// the heterogeneity that schema-agnostic blocking (package blocking) and
// meta-blocking (package metablocking) are designed to survive.
package entity

import (
	"fmt"
	"sort"
	"strings"
)

// ID is the dense, collection-local identifier of a description. IDs are
// assigned consecutively from 0 by Collection.Add, so they can be used to
// index slices sized to Collection.Len.
type ID = int

// Attribute is a single attribute-value pair of a description. Descriptions
// may carry several attributes with the same name (multi-valued
// properties, as in RDF).
type Attribute struct {
	Name  string
	Value string
}

// Description is one entity description: a URI-identified set of
// attribute-value pairs originating from one source KB.
type Description struct {
	// ID is the dense identifier within the owning Collection. It is
	// assigned by Collection.Add and must not be modified afterwards.
	ID ID
	// URI is the global identifier of the description (may be empty for
	// non-RDF data).
	URI string
	// Source is the index of the KB this description comes from: always 0
	// for dirty collections; 0 or 1 for clean-clean collections.
	Source int
	// Attrs holds the attribute-value pairs in insertion order.
	Attrs []Attribute
}

// NewDescription returns a description with the given URI and no
// attributes. The ID is assigned when the description is added to a
// Collection.
func NewDescription(uri string) *Description {
	return &Description{ID: -1, URI: uri}
}

// Add appends an attribute-value pair and returns the description to allow
// chaining. Empty values are kept: emptiness is meaningful for coverage
// statistics.
func (d *Description) Add(name, value string) *Description {
	d.Attrs = append(d.Attrs, Attribute{Name: name, Value: value})
	return d
}

// Values returns all values of the named attribute, in insertion order.
func (d *Description) Values(name string) []string {
	var out []string
	for _, a := range d.Attrs {
		if a.Name == name {
			out = append(out, a.Value)
		}
	}
	return out
}

// Value returns the first value of the named attribute and whether it
// exists.
func (d *Description) Value(name string) (string, bool) {
	for _, a := range d.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// AttributeNames returns the distinct attribute names of the description in
// sorted order.
func (d *Description) AttributeNames() []string {
	seen := make(map[string]struct{}, len(d.Attrs))
	var names []string
	for _, a := range d.Attrs {
		if _, ok := seen[a.Name]; !ok {
			seen[a.Name] = struct{}{}
			names = append(names, a.Name)
		}
	}
	sort.Strings(names)
	return names
}

// AllValues returns every attribute value of the description, in insertion
// order. This is the raw material of schema-agnostic blocking.
func (d *Description) AllValues() []string {
	out := make([]string, 0, len(d.Attrs))
	for _, a := range d.Attrs {
		out = append(out, a.Value)
	}
	return out
}

// Clone returns a deep copy of the description.
func (d *Description) Clone() *Description {
	c := &Description{ID: d.ID, URI: d.URI, Source: d.Source}
	c.Attrs = make([]Attribute, len(d.Attrs))
	copy(c.Attrs, d.Attrs)
	return c
}

// String renders the description compactly for debugging and logs.
func (d *Description) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "<%d", d.ID)
	if d.URI != "" {
		fmt.Fprintf(&b, " %s", d.URI)
	}
	b.WriteString(">{")
	for i, a := range d.Attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%q", a.Name, a.Value)
	}
	b.WriteString("}")
	return b.String()
}
