package entity

import (
	"bytes"
	"strings"
	"testing"
)

func truthCollection(t *testing.T) *Collection {
	t.Helper()
	c := NewCollection(Dirty)
	for _, uri := range []string{"http://kb/a", "http://kb/b", "http://kb/c"} {
		c.MustAdd(NewDescription(uri))
	}
	c.MustAdd(NewDescription("")) // anonymous
	return c
}

func TestReadURIMatches(t *testing.T) {
	c := truthCollection(t)
	in := "# comment\n\nhttp://kb/a\thttp://kb/b\nhttp://kb/b\thttp://kb/c\n"
	m, err := ReadURIMatches(c, strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 2 || !m.Contains(0, 1) || !m.Contains(1, 2) {
		t.Fatalf("matches = %v", m.Pairs())
	}
}

func TestReadURIMatchesErrors(t *testing.T) {
	c := truthCollection(t)
	cases := []string{
		"http://kb/a\n",                     // one field
		"http://kb/a\thttp://kb/a\textra\n", // three fields
		"http://kb/a\thttp://kb/missing\n",  // unknown URI right
		"http://kb/missing\thttp://kb/a\n",  // unknown URI left
	}
	for _, in := range cases {
		if _, err := ReadURIMatches(c, strings.NewReader(in)); err == nil {
			t.Fatalf("accepted %q", in)
		}
	}
}

func TestWriteURIMatchesRoundTrip(t *testing.T) {
	c := truthCollection(t)
	m := NewMatches()
	m.Add(2, 0)
	m.Add(1, 2)
	var buf bytes.Buffer
	if err := WriteURIMatches(&buf, c, m); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Deterministic pair-sorted order.
	if !strings.HasPrefix(out, "http://kb/a\thttp://kb/c\n") {
		t.Fatalf("order wrong:\n%s", out)
	}
	back, err := ReadURIMatches(c, strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 || !back.Contains(0, 2) || !back.Contains(1, 2) {
		t.Fatalf("round trip = %v", back.Pairs())
	}
}

func TestWriteURIMatchesSyntheticURI(t *testing.T) {
	c := truthCollection(t)
	m := NewMatches()
	m.Add(0, 3) // description 3 has no URI
	var buf bytes.Buffer
	if err := WriteURIMatches(&buf, c, m); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "urn:entityres:3") {
		t.Fatalf("synthetic URI missing: %s", buf.String())
	}
}
