package entity

import (
	"bytes"
	"strings"
	"testing"
)

func truthCollection(t *testing.T) *Collection {
	t.Helper()
	c := NewCollection(Dirty)
	for _, uri := range []string{"http://kb/a", "http://kb/b", "http://kb/c"} {
		c.MustAdd(NewDescription(uri))
	}
	c.MustAdd(NewDescription("")) // anonymous
	return c
}

func TestReadURIMatches(t *testing.T) {
	c := truthCollection(t)
	in := "# comment\n\nhttp://kb/a\thttp://kb/b\nhttp://kb/b\thttp://kb/c\n"
	m, err := ReadURIMatches(c, strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 2 || !m.Contains(0, 1) || !m.Contains(1, 2) {
		t.Fatalf("matches = %v", m.Pairs())
	}
}

func TestReadURIMatchesErrors(t *testing.T) {
	c := truthCollection(t)
	cases := []string{
		"http://kb/a\n",                     // one field
		"http://kb/a\thttp://kb/a\textra\n", // three fields
		"http://kb/a\thttp://kb/missing\n",  // unknown URI right
		"http://kb/missing\thttp://kb/a\n",  // unknown URI left
	}
	for _, in := range cases {
		if _, err := ReadURIMatches(c, strings.NewReader(in)); err == nil {
			t.Fatalf("accepted %q", in)
		}
	}
}

func TestWriteURIMatchesRoundTrip(t *testing.T) {
	c := truthCollection(t)
	m := NewMatches()
	m.Add(2, 0)
	m.Add(1, 2)
	var buf bytes.Buffer
	if err := WriteURIMatches(&buf, c, m); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Deterministic pair-sorted order.
	if !strings.HasPrefix(out, "http://kb/a\thttp://kb/c\n") {
		t.Fatalf("order wrong:\n%s", out)
	}
	back, err := ReadURIMatches(c, strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 || !back.Contains(0, 2) || !back.Contains(1, 2) {
		t.Fatalf("round trip = %v", back.Pairs())
	}
}

func TestWriteURIMatchesSyntheticURI(t *testing.T) {
	c := truthCollection(t)
	m := NewMatches()
	m.Add(0, 3) // description 3 has no URI
	var buf bytes.Buffer
	if err := WriteURIMatches(&buf, c, m); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "urn:entityres:3") {
		t.Fatalf("synthetic URI missing: %s", buf.String())
	}
}

func TestWriteSourceMatches(t *testing.T) {
	c := NewCollection(CleanClean)
	a := MustID(t, c, NewDescription("http://kb0/a"))
	b := MustID(t, c, NewDescription("http://kb0/b"))
	MustID(t, c, NewDescription("http://kb0/lonely"))
	x := NewDescription("http://kb1/x")
	x.Source = 1
	y := NewDescription("http://kb1/y")
	y.Source = 1
	xid := MustID(t, c, x)
	yid := MustID(t, c, y)
	m := NewMatches()
	m.Add(a, xid)
	m.Add(a, yid)
	m.Add(b, xid)

	var buf bytes.Buffer
	if err := WriteSourceMatches(&buf, c, m, 0); err != nil {
		t.Fatal(err)
	}
	want0 := "http://kb0/a\thttp://kb1/x,http://kb1/y\nhttp://kb0/b\thttp://kb1/x\n"
	if buf.String() != want0 {
		t.Fatalf("source 0 export:\n%q\nwant:\n%q", buf.String(), want0)
	}
	buf.Reset()
	if err := WriteSourceMatches(&buf, c, m, 1); err != nil {
		t.Fatal(err)
	}
	want1 := "http://kb1/x\thttp://kb0/a,http://kb0/b\nhttp://kb1/y\thttp://kb0/a\n"
	if buf.String() != want1 {
		t.Fatalf("source 1 export:\n%q\nwant:\n%q", buf.String(), want1)
	}
}

func MustID(t *testing.T, c *Collection, d *Description) ID {
	t.Helper()
	id, err := c.Add(d)
	if err != nil {
		t.Fatal(err)
	}
	return id
}
