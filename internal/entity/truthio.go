package entity

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// ReadURIMatches parses a truth file of tab-separated URI pairs (one per
// line, blank lines and #-comments skipped) into a match set over c's IDs.
// Unknown URIs are an error: silently dropping ground truth corrupts every
// downstream metric.
func ReadURIMatches(c *Collection, r io.Reader) (*Matches, error) {
	byURI := make(map[string]ID, c.Len())
	for _, d := range c.All() {
		if d.URI != "" {
			byURI[d.URI] = d.ID
		}
	}
	out := NewMatches()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, "\t")
		if len(parts) != 2 {
			return nil, fmt.Errorf("entity: truth line %d: want two tab-separated URIs, got %d fields", line, len(parts))
		}
		a, okA := byURI[parts[0]]
		if !okA {
			return nil, fmt.Errorf("entity: truth line %d: unknown URI %q", line, parts[0])
		}
		b, okB := byURI[parts[1]]
		if !okB {
			return nil, fmt.Errorf("entity: truth line %d: unknown URI %q", line, parts[1])
		}
		out.Add(a, b)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("entity: truth: %w", err)
	}
	return out, nil
}

// WriteURIMatches serializes a match set as tab-separated URI pairs in
// deterministic (pair-sorted) order. Descriptions without URIs get their
// synthetic urn:entityres:<id> name, mirroring the N-Triples writer.
func WriteURIMatches(w io.Writer, c *Collection, m *Matches) error {
	pairs := m.Pairs()
	sortPairsByID(pairs)
	bw := bufio.NewWriter(w)
	for _, p := range pairs {
		ua, ub := uriOf(c, p.A), uriOf(c, p.B)
		if _, err := fmt.Fprintf(bw, "%s\t%s\n", ua, ub); err != nil {
			return fmt.Errorf("entity: truth write: %w", err)
		}
	}
	return bw.Flush()
}

// WriteSourceMatches serializes one source's view of a match set — the
// per-source export of a clean-clean interlinking run. Every description
// of the given source with at least one match produces one line, in ID
// order: its URI, a tab, and the comma-joined sorted URIs of its partners
// from the other source(s). Dedup consumers join on the first column;
// cross-checking the two sources' exports reconstructs the pair set.
func WriteSourceMatches(w io.Writer, c *Collection, m *Matches, source int) error {
	bw := bufio.NewWriter(w)
	for _, d := range c.All() {
		if d.Source != source {
			continue
		}
		partners := m.Of(d.ID)
		if len(partners) == 0 {
			continue
		}
		uris := make([]string, 0, len(partners))
		for _, p := range partners {
			uris = append(uris, uriOf(c, p))
		}
		sort.Strings(uris)
		if _, err := fmt.Fprintf(bw, "%s\t%s\n", uriOf(c, d.ID), strings.Join(uris, ",")); err != nil {
			return fmt.Errorf("entity: source match write: %w", err)
		}
	}
	return bw.Flush()
}

func uriOf(c *Collection, id ID) string {
	if d := c.Get(id); d != nil && d.URI != "" {
		return d.URI
	}
	return fmt.Sprintf("urn:entityres:%d", id)
}

func sortPairsByID(ps []Pair) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && less(ps[j], ps[j-1]); j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

func less(a, b Pair) bool {
	if a.A != b.A {
		return a.A < b.A
	}
	return a.B < b.B
}
