package entity

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUnionFindBasics(t *testing.T) {
	u := NewUnionFind(8)
	if u.Same(1, 2) {
		t.Fatal("fresh ids should not be same")
	}
	if !u.Union(1, 2) {
		t.Fatal("first union should merge")
	}
	if u.Union(2, 1) {
		t.Fatal("repeat union should be no-op")
	}
	u.Union(3, 4)
	u.Union(1, 4)
	if !u.Same(2, 3) {
		t.Fatal("transitively merged ids should be same")
	}
}

func TestUnionFindClustersDeterministic(t *testing.T) {
	u := NewUnionFind(0)
	u.Union(9, 7)
	u.Union(7, 8)
	u.Union(2, 1)
	u.Find(100) // singleton must not appear
	cl := u.Clusters()
	if len(cl) != 2 {
		t.Fatalf("Clusters = %v", cl)
	}
	if cl[0][0] != 1 || cl[1][0] != 7 {
		t.Fatalf("cluster ordering not by smallest member: %v", cl)
	}
	for _, g := range cl {
		for i := 1; i < len(g); i++ {
			if g[i-1] >= g[i] {
				t.Fatalf("cluster not sorted: %v", g)
			}
		}
	}
}

// Property: union-find equivalence matches a brute-force reference built
// from the same random union sequence.
func TestUnionFindMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 30
		u := NewUnionFind(n)
		ref := make([]int, n) // ref[i] = group label
		for i := range ref {
			ref[i] = i
		}
		relabel := func(from, to int) {
			for i := range ref {
				if ref[i] == from {
					ref[i] = to
				}
			}
		}
		for k := 0; k < 50; k++ {
			a, b := rng.Intn(n), rng.Intn(n)
			u.Union(a, b)
			relabel(ref[a], ref[b])
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if u.Same(i, j) != (ref[i] == ref[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
