package entity

// Merge combines several descriptions of the same real-world entity into a
// single merged profile, as done by merging-based iterative resolution
// (Swoosh-style) and iterative blocking. The merge is the attribute union:
// every distinct (name, value) pair of any input appears exactly once, in
// first-seen order, so Merge is idempotent, commutative up to ordering and
// associative — the algebraic properties the Swoosh family requires of its
// merge operator.
//
// The merged description carries the smallest input ID (its canonical
// representative), the first non-empty URI, and the source of the first
// input.
func Merge(descs ...*Description) *Description {
	if len(descs) == 0 {
		return nil
	}
	if len(descs) == 1 {
		return descs[0].Clone()
	}
	out := &Description{ID: descs[0].ID, Source: descs[0].Source}
	seen := make(map[Attribute]struct{})
	for _, d := range descs {
		if d == nil {
			continue
		}
		if d.ID < out.ID {
			out.ID = d.ID
		}
		if out.URI == "" && d.URI != "" {
			out.URI = d.URI
		}
		for _, a := range d.Attrs {
			if _, ok := seen[a]; ok {
				continue
			}
			seen[a] = struct{}{}
			out.Attrs = append(out.Attrs, a)
		}
	}
	return out
}
