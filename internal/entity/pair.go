package entity

// Pair is an unordered pair of description IDs. The canonical form keeps
// A < B so that a Pair can be used directly as a map key for
// redundancy-free comparison bookkeeping.
type Pair struct {
	A, B ID
}

// NewPair returns the canonical (A < B) form of the pair {a, b}.
func NewPair(a, b ID) Pair {
	if a > b {
		a, b = b, a
	}
	return Pair{A: a, B: b}
}

// Canonical returns the canonical form of p. It is a no-op when p is
// already canonical.
func (p Pair) Canonical() Pair { return NewPair(p.A, p.B) }

// Other returns the member of the pair that is not id. If id is not a
// member, it returns -1.
func (p Pair) Other(id ID) ID {
	switch id {
	case p.A:
		return p.B
	case p.B:
		return p.A
	default:
		return -1
	}
}

// Contains reports whether id is a member of the pair.
func (p Pair) Contains(id ID) bool { return p.A == id || p.B == id }

// PairSet is a set of canonical pairs with O(1) membership. The zero value
// is not usable; construct with NewPairSet.
type PairSet struct {
	m map[Pair]struct{}
}

// NewPairSet returns an empty pair set with capacity hint n.
func NewPairSet(n int) *PairSet {
	return &PairSet{m: make(map[Pair]struct{}, n)}
}

// Add inserts the pair {a, b}; it reports whether the pair was newly added.
func (s *PairSet) Add(a, b ID) bool {
	p := NewPair(a, b)
	if _, ok := s.m[p]; ok {
		return false
	}
	s.m[p] = struct{}{}
	return true
}

// Contains reports whether the pair {a, b} is in the set.
func (s *PairSet) Contains(a, b ID) bool {
	_, ok := s.m[NewPair(a, b)]
	return ok
}

// Len returns the number of pairs in the set.
func (s *PairSet) Len() int { return len(s.m) }

// Each calls fn for every pair in the set in unspecified order; iteration
// stops early if fn returns false.
func (s *PairSet) Each(fn func(Pair) bool) {
	for p := range s.m {
		if !fn(p) {
			return
		}
	}
}

// Pairs returns the pairs in the set in unspecified order.
func (s *PairSet) Pairs() []Pair {
	out := make([]Pair, 0, len(s.m))
	for p := range s.m {
		out = append(out, p)
	}
	return out
}
