package entity

import (
	"reflect"
	"testing"
)

func TestMergeUnionsAttributes(t *testing.T) {
	a := NewDescription("uriA").Add("name", "alice").Add("city", "paris")
	a.ID = 4
	b := NewDescription("").Add("name", "alice").Add("job", "cto")
	b.ID = 2
	m := Merge(a, b)
	if m.ID != 2 {
		t.Fatalf("merged ID = %d, want smallest input ID 2", m.ID)
	}
	if m.URI != "uriA" {
		t.Fatalf("merged URI = %q", m.URI)
	}
	want := []Attribute{{"name", "alice"}, {"city", "paris"}, {"job", "cto"}}
	if !reflect.DeepEqual(m.Attrs, want) {
		t.Fatalf("merged attrs = %v, want %v", m.Attrs, want)
	}
}

func TestMergeIdempotent(t *testing.T) {
	a := NewDescription("u").Add("x", "1").Add("y", "2")
	m := Merge(a, a)
	if len(m.Attrs) != 2 {
		t.Fatalf("idempotent merge duplicated attrs: %v", m.Attrs)
	}
}

func TestMergeAssociativeUpToSet(t *testing.T) {
	a := NewDescription("").Add("p", "1")
	b := NewDescription("").Add("q", "2")
	c := NewDescription("").Add("r", "3")
	left := Merge(Merge(a, b), c)
	right := Merge(a, Merge(b, c))
	toSet := func(d *Description) map[Attribute]bool {
		s := map[Attribute]bool{}
		for _, at := range d.Attrs {
			s[at] = true
		}
		return s
	}
	if !reflect.DeepEqual(toSet(left), toSet(right)) {
		t.Fatalf("merge not associative: %v vs %v", left, right)
	}
}

func TestMergeEdgeCases(t *testing.T) {
	if Merge() != nil {
		t.Fatal("Merge() should be nil")
	}
	a := NewDescription("u").Add("x", "1")
	single := Merge(a)
	single.Attrs[0].Value = "mut"
	if a.Attrs[0].Value != "1" {
		t.Fatal("single merge must clone")
	}
	if m := Merge(a, nil); len(m.Attrs) != 1 {
		t.Fatal("nil inputs should be skipped")
	}
}
