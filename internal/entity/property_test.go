package entity

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: FromClusters output is transitively closed (its own closure).
func TestFromClustersIsClosed(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var clusters [][]ID
		next := 0
		for k := 0; k < 4; k++ {
			size := 1 + rng.Intn(4)
			cl := make([]ID, size)
			for i := range cl {
				cl[i] = next
				next++
			}
			clusters = append(clusters, cl)
		}
		m := FromClusters(clusters)
		return m.Closure().Len() == m.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: closing twice equals closing once (idempotence), and the
// closure contains the original matches.
func TestClosureIdempotent(t *testing.T) {
	f := func(edges []uint8) bool {
		m := NewMatches()
		for i := 0; i+1 < len(edges); i += 2 {
			m.Add(int(edges[i]%12), int(edges[i+1]%12))
		}
		c1 := m.Closure()
		c2 := c1.Closure()
		if c1.Len() != c2.Len() {
			return false
		}
		ok := true
		m.Each(func(p Pair) bool {
			if !c1.Contains(p.A, p.B) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Merge covers every input attribute exactly once.
func TestMergeCoversInputs(t *testing.T) {
	f := func(vals []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		var descs []*Description
		want := map[Attribute]bool{}
		for i, v := range vals {
			d := NewDescription("")
			a := Attribute{Name: string(rune('a' + v%4)), Value: string(rune('0' + v%8))}
			d.Attrs = append(d.Attrs, a)
			want[a] = true
			descs = append(descs, d)
			_ = i
		}
		m := Merge(descs...)
		got := map[Attribute]int{}
		for _, a := range m.Attrs {
			got[a]++
		}
		if len(got) != len(want) {
			return false
		}
		for a, n := range got {
			if n != 1 || !want[a] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
