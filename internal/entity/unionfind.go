package entity

import "sort"

// UnionFind is a disjoint-set forest over description IDs with path
// compression and union by size. IDs need not be pre-registered: Union and
// Find grow the structure on demand, which suits match graphs discovered
// incrementally by iterative and progressive resolution.
type UnionFind struct {
	parent map[ID]ID
	size   map[ID]int
}

// NewUnionFind returns a union-find with capacity hint n.
func NewUnionFind(n int) *UnionFind {
	return &UnionFind{
		parent: make(map[ID]ID, n),
		size:   make(map[ID]int, n),
	}
}

// Find returns the representative of id's set, registering id as a
// singleton if unseen.
func (u *UnionFind) Find(id ID) ID {
	p, ok := u.parent[id]
	if !ok {
		u.parent[id] = id
		u.size[id] = 1
		return id
	}
	if p == id {
		return id
	}
	root := u.Find(p)
	u.parent[id] = root // path compression
	return root
}

// Union merges the sets of a and b and reports whether a merge happened
// (false when they were already in the same set).
func (u *UnionFind) Union(a, b ID) bool {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return false
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
	return true
}

// Same reports whether a and b are in the same set.
func (u *UnionFind) Same(a, b ID) bool { return u.Find(a) == u.Find(b) }

// Clusters returns the non-singleton sets, each sorted ascending, with the
// sets themselves ordered by their smallest member. The deterministic order
// makes cluster output directly comparable in tests.
func (u *UnionFind) Clusters() [][]ID {
	groups := make(map[ID][]ID)
	for id := range u.parent {
		root := u.Find(id)
		groups[root] = append(groups[root], id)
	}
	var out [][]ID
	for _, g := range groups {
		if len(g) < 2 {
			continue
		}
		sort.Ints(g)
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}
