package index

import (
	"math"
	"reflect"
	"testing"

	"entityres/internal/entity"
	"entityres/internal/similarity"
	"entityres/internal/token"
)

func buildSample(t *testing.T) (*entity.Collection, *Inverted) {
	t.Helper()
	c := entity.NewCollection(entity.Dirty)
	c.MustAdd(entity.NewDescription("").Add("name", "alice smith"))
	c.MustAdd(entity.NewDescription("").Add("name", "bob smith"))
	c.MustAdd(entity.NewDescription("").Add("name", "carol jones"))
	p := &token.Profiler{Scheme: token.SchemaAgnostic}
	return c, Build(c, p)
}

func TestBuildStatistics(t *testing.T) {
	_, ix := buildSample(t)
	if ix.NumDocs() != 3 {
		t.Fatalf("NumDocs = %d", ix.NumDocs())
	}
	if ix.DF("smith") != 2 || ix.DF("alice") != 1 || ix.DF("zz") != 0 {
		t.Fatalf("DF wrong: smith=%d alice=%d", ix.DF("smith"), ix.DF("alice"))
	}
	if ix.NumTokens() != 5 {
		t.Fatalf("NumTokens = %d", ix.NumTokens())
	}
	want := []string{"alice", "bob", "carol", "jones", "smith"}
	if got := ix.Tokens(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokens = %v", got)
	}
}

func TestPostingsAndDocLen(t *testing.T) {
	_, ix := buildSample(t)
	ps := ix.Postings("smith")
	if len(ps) != 2 || ps[0].Doc != 0 || ps[1].Doc != 1 {
		t.Fatalf("Postings(smith) = %v", ps)
	}
	if ix.DocLen(0) != 2 || ix.DocLen(99) != 0 {
		t.Fatalf("DocLen = %d", ix.DocLen(0))
	}
}

func TestIDFMonotone(t *testing.T) {
	_, ix := buildSample(t)
	if ix.IDF("zz") != 0 {
		t.Fatal("IDF of unseen token should be 0")
	}
	if !(ix.IDF("alice") > ix.IDF("smith")) {
		t.Fatalf("rarer token should have higher IDF: alice=%v smith=%v",
			ix.IDF("alice"), ix.IDF("smith"))
	}
	wantSmith := math.Log(1 + 3.0/2.0)
	if math.Abs(ix.IDF("smith")-wantSmith) > 1e-12 {
		t.Fatalf("IDF(smith) = %v, want %v", ix.IDF("smith"), wantSmith)
	}
}

func TestTFIDFVectorAndCosine(t *testing.T) {
	_, ix := buildSample(t)
	v0 := ix.TFIDFVector([]string{"alice", "smith"})
	v1 := ix.TFIDFVector([]string{"bob", "smith"})
	v2 := ix.TFIDFVector([]string{"carol", "jones"})
	if len(v0) != 2 {
		t.Fatalf("vector = %v", v0)
	}
	s01 := similarity.Cosine(v0, v1)
	s02 := similarity.Cosine(v0, v2)
	if !(s01 > s02) {
		t.Fatalf("shared-token cosine should dominate: %v vs %v", s01, s02)
	}
	if s02 != 0 {
		t.Fatalf("disjoint cosine = %v", s02)
	}
	// Unknown tokens contribute nothing.
	v := ix.TFIDFVector([]string{"unseen"})
	if len(v) != 0 {
		t.Fatalf("unseen tokens should vanish: %v", v)
	}
}

func TestTFCounts(t *testing.T) {
	ix := BuildFromTokens([]entity.ID{7}, [][]string{{"a", "a", "b"}})
	ps := ix.Postings("a")
	if len(ps) != 1 || ps[0].TF != 2 || ps[0].Doc != 7 {
		t.Fatalf("Postings(a) = %v", ps)
	}
	if ix.DocLen(7) != 3 {
		t.Fatalf("DocLen = %d", ix.DocLen(7))
	}
}

func TestEmptyDocumentCounts(t *testing.T) {
	ix := BuildFromTokens([]entity.ID{0, 1}, [][]string{{}, {"x"}})
	if ix.NumDocs() != 2 {
		t.Fatalf("NumDocs = %d", ix.NumDocs())
	}
	if ix.DF("x") != 1 {
		t.Fatalf("DF(x) = %d", ix.DF("x"))
	}
}

func TestEachTokenEarlyStop(t *testing.T) {
	_, ix := buildSample(t)
	n := 0
	ix.EachToken(func(string, []Posting) bool { n++; return false })
	if n != 1 {
		t.Fatalf("EachToken early stop visited %d", n)
	}
	n = 0
	ix.EachToken(func(string, []Posting) bool { n++; return true })
	if n != ix.NumTokens() {
		t.Fatalf("EachToken visited %d of %d", n, ix.NumTokens())
	}
}
