// Package index provides the inverted-index substrate that the paper's
// blocking family is built on: token → posting list over entity
// descriptions, with document-frequency statistics and TF-IDF weighting.
//
// Token blocking *is* this inverted index read block-wise; similarity joins
// use it with prefix filtering; canopy clustering and TF-IDF matchers use
// its weighted vectors. Centralizing it keeps corpus statistics consistent
// across all consumers.
package index

import (
	"math"
	"sort"

	"entityres/internal/entity"
	"entityres/internal/similarity"
	"entityres/internal/token"
)

// Posting is one document occurrence of a token.
type Posting struct {
	Doc entity.ID
	// TF is the number of occurrences of the token in the document.
	TF int
}

// Inverted is an inverted index over the token profiles of a collection.
type Inverted struct {
	postings map[string][]Posting
	docLen   map[entity.ID]int
	numDocs  int
}

// New returns an empty index, to be populated with AddDocument — the
// constructor for incrementally maintained indexes.
func New() *Inverted {
	return &Inverted{
		postings: make(map[string][]Posting),
		docLen:   make(map[entity.ID]int),
	}
}

// Build tokenizes every description of c with p and indexes it. Documents
// with no tokens still count toward the corpus size (they exist; they are
// simply unreachable through any posting list).
func Build(c *entity.Collection, p *token.Profiler) *Inverted {
	ix := &Inverted{
		postings: make(map[string][]Posting),
		docLen:   make(map[entity.ID]int, c.Len()),
	}
	for _, d := range c.All() {
		ix.AddDocument(d.ID, p.Tokens(d))
	}
	return ix
}

// BuildFromTokens indexes pre-tokenized documents: docs[i] is the token
// list of the description with ID ids[i].
func BuildFromTokens(ids []entity.ID, docs [][]string) *Inverted {
	ix := &Inverted{
		postings: make(map[string][]Posting),
		docLen:   make(map[entity.ID]int, len(ids)),
	}
	for i, id := range ids {
		ix.AddDocument(id, docs[i])
	}
	return ix
}

// AddDocument indexes one document given its token list (with duplicates
// preserved for TF). Adding the same document twice corrupts statistics;
// remove the old version first (RemoveDocument) when re-indexing.
func (ix *Inverted) AddDocument(id entity.ID, tokens []string) {
	ix.numDocs++
	ix.docLen[id] = len(tokens)
	if len(tokens) == 0 {
		return
	}
	tf := make(map[string]int, len(tokens))
	for _, t := range tokens {
		tf[t]++
	}
	for t, n := range tf {
		ix.postings[t] = append(ix.postings[t], Posting{Doc: id, TF: n})
	}
}

// RemoveDocument un-indexes one document given the same token list it was
// added with, splicing it out of every posting list (order of the remaining
// postings is preserved), deleting emptied lists, and updating the corpus
// statistics. It reports whether the document was indexed. This is the
// single-description maintenance path of the streaming resolver: only the
// posting lists of the document's own tokens are touched, never the whole
// index.
func (ix *Inverted) RemoveDocument(id entity.ID, tokens []string) bool {
	if _, ok := ix.docLen[id]; !ok {
		return false
	}
	ix.numDocs--
	delete(ix.docLen, id)
	seen := make(map[string]struct{}, len(tokens))
	for _, t := range tokens {
		if _, dup := seen[t]; dup {
			continue
		}
		seen[t] = struct{}{}
		ps := ix.postings[t]
		for i, p := range ps {
			if p.Doc == id {
				ps = append(ps[:i], ps[i+1:]...)
				break
			}
		}
		if len(ps) == 0 {
			delete(ix.postings, t)
		} else {
			ix.postings[t] = ps
		}
	}
	return true
}

// NumDocs returns the number of indexed documents.
func (ix *Inverted) NumDocs() int { return ix.numDocs }

// NumTokens returns the number of distinct tokens.
func (ix *Inverted) NumTokens() int { return len(ix.postings) }

// DF returns the document frequency of t.
func (ix *Inverted) DF(t string) int { return len(ix.postings[t]) }

// IDF returns the smoothed inverse document frequency
// ln(1 + N/df); 0 for unseen tokens.
func (ix *Inverted) IDF(t string) float64 {
	df := ix.DF(t)
	if df == 0 {
		return 0
	}
	return math.Log(1 + float64(ix.numDocs)/float64(df))
}

// Postings returns the posting list of t (owned by the index; do not
// mutate). The list is in document insertion order.
func (ix *Inverted) Postings(t string) []Posting { return ix.postings[t] }

// Tokens returns all indexed tokens in ascending order.
func (ix *Inverted) Tokens() []string {
	out := make([]string, 0, len(ix.postings))
	for t := range ix.postings {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// DocLen returns the token count of document id (0 if unknown).
func (ix *Inverted) DocLen(id entity.ID) int { return ix.docLen[id] }

// TFIDFVector returns the TF-IDF vector of the given token list under this
// index's corpus statistics. The vector is L2-unnormalized; use
// similarity.Cosine which normalizes internally.
func (ix *Inverted) TFIDFVector(tokens []string) similarity.Vector {
	tf := make(map[string]int, len(tokens))
	for _, t := range tokens {
		tf[t]++
	}
	v := make(similarity.Vector, len(tf))
	for t, n := range tf {
		if idf := ix.IDF(t); idf > 0 {
			v[t] = float64(n) * idf
		}
	}
	return v
}

// EachToken iterates tokens and posting lists in unspecified order;
// iteration stops if fn returns false. This is the streaming access path
// used by block builders, which must not materialize Tokens() for large
// corpora.
func (ix *Inverted) EachToken(fn func(t string, ps []Posting) bool) {
	for t, ps := range ix.postings {
		if !fn(t, ps) {
			return
		}
	}
}
