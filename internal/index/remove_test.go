package index

import (
	"math/rand"
	"reflect"
	"testing"

	"entityres/internal/entity"
)

// TestRemoveDocument checks that removing a document reverses AddDocument
// exactly: postings spliced in order, DF/IDF and corpus size updated,
// emptied posting lists deleted.
func TestRemoveDocument(t *testing.T) {
	ix := New()
	ix.AddDocument(0, []string{"alice", "smith", "smith"})
	ix.AddDocument(1, []string{"bob", "smith"})
	ix.AddDocument(2, []string{"alice", "jones"})

	if !ix.RemoveDocument(1, []string{"bob", "smith"}) {
		t.Fatal("RemoveDocument(1) = false, want true")
	}
	if ix.RemoveDocument(1, []string{"bob", "smith"}) {
		t.Fatal("second RemoveDocument(1) = true, want false")
	}
	if got := ix.NumDocs(); got != 2 {
		t.Fatalf("NumDocs = %d, want 2", got)
	}
	if got := ix.DF("bob"); got != 0 {
		t.Fatalf("DF(bob) = %d, want 0 (posting list deleted)", got)
	}
	if got := ix.IDF("bob"); got != 0 {
		t.Fatalf("IDF(bob) = %v, want 0", got)
	}
	if got := ix.DF("smith"); got != 1 {
		t.Fatalf("DF(smith) = %d, want 1", got)
	}
	if got := ix.Postings("smith"); len(got) != 1 || got[0].Doc != 0 || got[0].TF != 2 {
		t.Fatalf("Postings(smith) = %v, want [{0 2}]", got)
	}
	if got := ix.DocLen(1); got != 0 {
		t.Fatalf("DocLen(1) = %d, want 0", got)
	}
	if got := ix.Tokens(); !reflect.DeepEqual(got, []string{"alice", "jones", "smith"}) {
		t.Fatalf("Tokens = %v", got)
	}
}

// TestRemoveDocumentPreservesOrder checks the surviving postings keep their
// insertion order when a middle document is spliced out.
func TestRemoveDocumentPreservesOrder(t *testing.T) {
	ix := New()
	for id := 0; id < 5; id++ {
		ix.AddDocument(id, []string{"tok"})
	}
	ix.RemoveDocument(2, []string{"tok"})
	want := []entity.ID{0, 1, 3, 4}
	got := ix.Postings("tok")
	if len(got) != len(want) {
		t.Fatalf("got %d postings, want %d", len(got), len(want))
	}
	for i, p := range got {
		if p.Doc != want[i] {
			t.Fatalf("posting %d = doc %d, want %d", i, p.Doc, want[i])
		}
	}
}

// TestAddRemoveRandomized interleaves adds and removes and checks the final
// index equals a fresh build over the surviving documents.
func TestAddRemoveRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vocab := []string{"a", "b", "c", "d", "e", "f", "g"}
	docTokens := func(id int) []string {
		r := rand.New(rand.NewSource(int64(id) * 31))
		n := 1 + r.Intn(4)
		out := make([]string, n)
		for i := range out {
			out[i] = vocab[r.Intn(len(vocab))]
		}
		return out
	}

	ix := New()
	live := map[entity.ID]bool{}
	next := 0
	for step := 0; step < 500; step++ {
		if len(live) == 0 || rng.Intn(3) > 0 {
			ix.AddDocument(next, docTokens(next))
			live[next] = true
			next++
		} else {
			for id := range live {
				ix.RemoveDocument(id, docTokens(id))
				delete(live, id)
				break
			}
		}
	}

	var ids []entity.ID
	for id := range live {
		ids = append(ids, id)
	}
	fresh := New()
	for _, id := range ids {
		fresh.AddDocument(id, docTokens(id))
	}
	if ix.NumDocs() != fresh.NumDocs() {
		t.Fatalf("NumDocs: incremental %d, fresh %d", ix.NumDocs(), fresh.NumDocs())
	}
	if !reflect.DeepEqual(ix.Tokens(), fresh.Tokens()) {
		t.Fatalf("Tokens: incremental %v, fresh %v", ix.Tokens(), fresh.Tokens())
	}
	for _, tok := range fresh.Tokens() {
		if ix.DF(tok) != fresh.DF(tok) {
			t.Fatalf("DF(%s): incremental %d, fresh %d", tok, ix.DF(tok), fresh.DF(tok))
		}
		// Posting multisets must agree; order may differ (incremental
		// preserves original insertion order, fresh inserts ascending).
		gotTF := map[entity.ID]int{}
		for _, p := range ix.Postings(tok) {
			gotTF[p.Doc] = p.TF
		}
		wantTF := map[entity.ID]int{}
		for _, p := range fresh.Postings(tok) {
			wantTF[p.Doc] = p.TF
		}
		if !reflect.DeepEqual(gotTF, wantTF) {
			t.Fatalf("Postings(%s): incremental %v, fresh %v", tok, gotTF, wantTF)
		}
	}
}
