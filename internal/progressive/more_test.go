package progressive

import (
	"testing"

	"entityres/internal/blocking"
	"entityres/internal/entity"
	"entityres/internal/graph"
	"entityres/internal/matching"
)

func TestStaticOrderRemaining(t *testing.T) {
	_, bs := sampleBlocks(t)
	s := NewStaticOrder(bs)
	total := s.Remaining()
	if total == 0 {
		t.Fatal("empty schedule")
	}
	s.Next()
	if s.Remaining() != total-1 {
		t.Fatalf("Remaining = %d, want %d", s.Remaining(), total-1)
	}
}

func TestHierarchyDefaultLevels(t *testing.T) {
	c := entity.NewCollection(entity.Dirty)
	for _, v := range []string{"aaaa bbbb", "aaaa bbbc", "zzzz"} {
		c.MustAdd(entity.NewDescription("").Add("n", v))
	}
	h := NewHierarchy(c, blocking.SortedTokensKey(nil), nil)
	pairs := drain(h)
	// Default levels end at prefix 0 (root): all pairs eventually.
	if len(pairs) != 3 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	if pairs[0] != entity.NewPair(0, 1) {
		t.Fatalf("most similar pair must come first: %v", pairs[0])
	}
}

func TestSlidingWindowTinyInputs(t *testing.T) {
	c := entity.NewCollection(entity.Dirty)
	c.MustAdd(entity.NewDescription("").Add("n", "only"))
	s := NewSlidingWindow(c, blocking.SortedTokensKey(nil), 0)
	if _, ok := s.Next(); ok {
		t.Fatal("singleton collection emitted a pair")
	}
	empty := entity.NewCollection(entity.Dirty)
	s2 := NewSlidingWindow(empty, blocking.SortedTokensKey(nil), 0)
	if _, ok := s2.Next(); ok {
		t.Fatal("empty collection emitted a pair")
	}
}

func TestBenefitCostEmptyGraph(t *testing.T) {
	bc := NewBenefitCost(graph.New(), 0, 0)
	if _, ok := bc.Next(); ok {
		t.Fatal("empty graph emitted")
	}
	// Defaults applied.
	if bc.WindowSize != 64 || bc.Boost != 1.0 {
		t.Fatalf("defaults = %d, %v", bc.WindowSize, bc.Boost)
	}
}

func TestRunStopsWhenScheduleEnds(t *testing.T) {
	c := entity.NewCollection(entity.Dirty)
	c.MustAdd(entity.NewDescription("").Add("n", "a b"))
	c.MustAdd(entity.NewDescription("").Add("n", "a b"))
	bs, err := (&blocking.TokenBlocking{}).Block(c)
	if err != nil {
		t.Fatal(err)
	}
	m := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
	gt := entity.NewMatches()
	gt.Add(0, 1)
	res := Run(c, NewStaticOrder(bs), m, gt, 1<<40)
	if res.Comparisons != 1 {
		t.Fatalf("comparisons = %d", res.Comparisons)
	}
	if res.Curve.Final().Recall != 1 {
		t.Fatalf("recall = %v", res.Curve.Final().Recall)
	}
}

func TestRunEmptyGroundTruthCurve(t *testing.T) {
	c := entity.NewCollection(entity.Dirty)
	c.MustAdd(entity.NewDescription("").Add("n", "alpha"))
	c.MustAdd(entity.NewDescription("").Add("n", "alpha"))
	bs, err := (&blocking.TokenBlocking{}).Block(c)
	if err != nil {
		t.Fatal(err)
	}
	m := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
	res := Run(c, NewStaticOrder(bs), m, entity.NewMatches(), 10)
	if res.Curve.Final().Recall != 0 {
		t.Fatal("recall against empty gt must be 0")
	}
	if res.Matches.Len() != 1 {
		t.Fatal("matches must still be reported")
	}
}
