package progressive

import (
	"testing"

	"entityres/internal/blocking"
	"entityres/internal/datagen"
	"entityres/internal/entity"
	"entityres/internal/matching"
	"entityres/internal/metablocking"
)

func benchSetup(b *testing.B) (*entity.Collection, *blocking.Blocks, *entity.Matches) {
	b.Helper()
	c, gt, err := datagen.GenerateDirty(datagen.Config{Seed: 9, Entities: 600, DupRatio: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	bs, err := (&blocking.TokenBlocking{}).Block(c)
	if err != nil {
		b.Fatal(err)
	}
	return c, bs, gt
}

// BenchmarkSchedulers measures a 10%-budget progressive run per scheduler,
// reporting the recall each reaches (quality and cost in one table).
func BenchmarkSchedulers(b *testing.B) {
	c, bs, gt := benchSetup(b)
	budget := int64(bs.DistinctPairs().Len() / 10)
	m := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
	key := blocking.SortedTokensKey(nil)
	cases := []struct {
		name string
		make func() Scheduler
	}{
		{"static", func() Scheduler { return NewStaticOrder(bs) }},
		{"random", func() Scheduler { return NewRandomOrder(bs, 9) }},
		{"slidingwindow", func() Scheduler { return NewSlidingWindow(c, key, 0) }},
		{"hierarchy", func() Scheduler { return NewHierarchy(c, key, nil) }},
		{"psnm+lookahead", func() Scheduler { return NewPSNM(c, key, true, 0) }},
		{"benefitcost", func() Scheduler {
			return NewBenefitCost(metablocking.BuildGraph(bs, metablocking.ARCS), 64, 1)
		}},
	}
	for _, cs := range cases {
		b.Run(cs.name, func(b *testing.B) {
			var recall float64
			for i := 0; i < b.N; i++ {
				res := Run(c, cs.make(), m, gt, budget)
				recall = res.Curve.Final().Recall
			}
			b.ReportMetric(recall, "recall@10%")
		})
	}
}
