package progressive

import (
	"sort"

	"entityres/internal/entity"
	"entityres/internal/graph"
)

// BenefitCost is the windowed benefit/cost scheduler of [1]: candidate
// pairs are nodes whose resolution influences the nodes they share
// descriptions with; the comparison budget is divided into windows of
// equal cost (here, equal comparison count), and each window executes the
// pairs with the highest current expected benefit. After a window, the
// matches it produced propagate a benefit boost to the influenced pairs,
// raising their chances of selection in the next window.
type BenefitCost struct {
	// WindowSize is the number of comparisons per scheduling window
	// (default 64).
	WindowSize int
	// Boost is the relative benefit increase applied to a pair for each
	// matched pair sharing a description with it: priority ×= (1+Boost)
	// (default 1.0, i.e. doubling). The boost is multiplicative so that
	// influence promotes among plausible candidates without lifting the
	// mass of near-zero-weight neighbors above strong unseen pairs — an
	// additive boost on the weight scale floods later windows with the
	// matched entities' garbage neighbors.
	Boost float64

	queue    *pairQueue
	byEntity map[entity.ID][]entity.Pair
	window   []entity.Pair
	winNext  int
	pending  []entity.Pair // matches of the current window awaiting propagation
}

// NewBenefitCost builds the scheduler from a weighted blocking graph (the
// meta-blocking graph is the natural source of initial benefits).
func NewBenefitCost(g *graph.Graph, windowSize int, boost float64) *BenefitCost {
	if windowSize <= 0 {
		windowSize = 64
	}
	if boost <= 0 {
		boost = 1.0
	}
	bc := &BenefitCost{
		WindowSize: windowSize,
		Boost:      boost,
		queue:      newPairQueue(),
		byEntity:   make(map[entity.ID][]entity.Pair),
	}
	for _, e := range g.Edges() {
		p := entity.NewPair(e.A, e.B)
		bc.queue.push(p, e.Weight)
		bc.byEntity[p.A] = append(bc.byEntity[p.A], p)
		bc.byEntity[p.B] = append(bc.byEntity[p.B], p)
	}
	return bc
}

// Name implements Scheduler.
func (bc *BenefitCost) Name() string { return "benefitcost" }

// Next implements Scheduler.
func (bc *BenefitCost) Next() (entity.Pair, bool) {
	if bc.winNext >= len(bc.window) {
		bc.refill()
		if len(bc.window) == 0 {
			return entity.Pair{}, false
		}
	}
	p := bc.window[bc.winNext]
	bc.winNext++
	return p, true
}

// refill closes the current window — propagating the benefit of its
// matches to influenced queued pairs — and selects the next window.
func (bc *BenefitCost) refill() {
	for _, m := range bc.pending {
		for _, id := range []entity.ID{m.A, m.B} {
			for _, ip := range bc.byEntity[id] {
				if cur, ok := bc.queue.priority(ip); ok {
					bc.queue.push(ip, cur*(1+bc.Boost))
				}
			}
		}
	}
	bc.pending = bc.pending[:0]
	bc.window = bc.window[:0]
	bc.winNext = 0
	for len(bc.window) < bc.WindowSize {
		p, _, ok := bc.queue.pop()
		if !ok {
			break
		}
		bc.window = append(bc.window, p)
	}
}

// Feedback implements Scheduler: matches are buffered and propagated at
// the next window boundary, following the per-window update phase of [1].
func (bc *BenefitCost) Feedback(p entity.Pair, matched bool) {
	if matched {
		bc.pending = append(bc.pending, p)
	}
}

// pairQueue is a max-priority queue over pairs with raise-only updates and
// deterministic tie-breaking, specialized for the scheduler (it also
// supports priority lookup, which iterative.PairQueue does not expose).
type pairQueue struct {
	current map[entity.Pair]float64
	heap    []queueItem
	seq     int
}

type queueItem struct {
	pair     entity.Pair
	priority float64
	seq      int
}

func newPairQueue() *pairQueue {
	return &pairQueue{current: make(map[entity.Pair]float64)}
}

func (q *pairQueue) priority(p entity.Pair) (float64, bool) {
	w, ok := q.current[p]
	return w, ok
}

func (q *pairQueue) push(p entity.Pair, priority float64) {
	if cur, ok := q.current[p]; ok && cur >= priority {
		return
	}
	q.current[p] = priority
	q.heap = append(q.heap, queueItem{pair: p, priority: priority, seq: q.seq})
	q.seq++
	q.up(len(q.heap) - 1)
}

func (q *pairQueue) pop() (entity.Pair, float64, bool) {
	for len(q.heap) > 0 {
		top := q.heap[0]
		last := len(q.heap) - 1
		q.heap[0] = q.heap[last]
		q.heap = q.heap[:last]
		if len(q.heap) > 0 {
			q.down(0)
		}
		cur, live := q.current[top.pair]
		if !live || cur != top.priority {
			continue // stale
		}
		delete(q.current, top.pair)
		return top.pair, top.priority, true
	}
	return entity.Pair{}, 0, false
}

func (q *pairQueue) less(i, j int) bool {
	if q.heap[i].priority != q.heap[j].priority {
		return q.heap[i].priority > q.heap[j].priority
	}
	return q.heap[i].seq < q.heap[j].seq
}

func (q *pairQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		i = parent
	}
}

func (q *pairQueue) down(i int) {
	n := len(q.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.heap[i], q.heap[smallest] = q.heap[smallest], q.heap[i]
		i = smallest
	}
}

// sortPairs orders pairs canonically; a shared helper for deterministic
// test output.
func sortPairs(ps []entity.Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].A != ps[j].A {
			return ps[i].A < ps[j].A
		}
		return ps[i].B < ps[j].B
	})
}
