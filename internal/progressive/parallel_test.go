package progressive

import (
	"context"
	"sort"
	"testing"

	"entityres/internal/blocking"
	"entityres/internal/datagen"
	"entityres/internal/entity"
	"entityres/internal/matching"
)

func parallelRunFixture(t testing.TB) (*entity.Collection, *entity.Matches, *blocking.Blocks) {
	t.Helper()
	c, gt, err := datagen.GenerateDirty(datagen.Config{Entities: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	bs, err := (&blocking.TokenBlocking{}).Block(c)
	if err != nil {
		t.Fatal(err)
	}
	return c, gt, bs
}

func pairsSorted(m *entity.Matches) []entity.Pair {
	ps := m.Pairs()
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].A != ps[j].A {
			return ps[i].A < ps[j].A
		}
		return ps[i].B < ps[j].B
	})
	return ps
}

// TestRunParallelMatchesRunStatic: with a feedback-insensitive scheduler
// the wave-parallel runner must reproduce the sequential runner exactly —
// matches, comparison count and recall curve — for any worker count.
func TestRunParallelMatchesRunStatic(t *testing.T) {
	c, gt, bs := parallelRunFixture(t)
	m := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
	for _, budget := range []int64{100, 1000, 1 << 40} {
		want := Run(c, NewStaticOrder(bs), m, gt, budget)
		for _, workers := range []int{0, 1, 3, 8} {
			got, err := RunParallel(context.Background(), c, NewStaticOrder(bs), m, gt, budget, workers)
			if err != nil {
				t.Fatalf("budget=%d workers=%d: %v", budget, workers, err)
			}
			if got.Comparisons != want.Comparisons {
				t.Fatalf("budget=%d workers=%d: comparisons %d, want %d", budget, workers, got.Comparisons, want.Comparisons)
			}
			gp, wp := pairsSorted(got.Matches), pairsSorted(want.Matches)
			if len(gp) != len(wp) {
				t.Fatalf("budget=%d workers=%d: %d matches, want %d", budget, workers, len(gp), len(wp))
			}
			for i := range wp {
				if gp[i] != wp[i] {
					t.Fatalf("budget=%d workers=%d: match %d is %v, want %v", budget, workers, i, gp[i], wp[i])
				}
			}
			if len(got.Curve) != len(want.Curve) {
				t.Fatalf("budget=%d workers=%d: curve has %d points, want %d", budget, workers, len(got.Curve), len(want.Curve))
			}
			for i := range want.Curve {
				if got.Curve[i] != want.Curve[i] {
					t.Fatalf("budget=%d workers=%d: curve point %d is %+v, want %+v", budget, workers, i, got.Curve[i], want.Curve[i])
				}
			}
		}
	}
}

// TestRunParallelBudgetExact: the runner stops at exactly the budget when
// the schedule is longer.
func TestRunParallelBudgetExact(t *testing.T) {
	c, gt, bs := parallelRunFixture(t)
	m := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
	// Budgets straddling wave boundaries.
	for _, budget := range []int64{1, waveSize - 1, waveSize, waveSize + 1, 3*waveSize + 7} {
		got, err := RunParallel(context.Background(), c, NewStaticOrder(bs), m, gt, budget, 4)
		if err != nil {
			t.Fatal(err)
		}
		if got.Comparisons != budget {
			t.Fatalf("budget=%d: executed %d comparisons", budget, got.Comparisons)
		}
	}
}

// TestRunParallelAdaptiveIndependentOfWorkers: adaptive schedulers see
// wave-synchronous feedback, but the result must not depend on the worker
// count because the wave size is fixed.
func TestRunParallelAdaptiveIndependentOfWorkers(t *testing.T) {
	c, gt, _ := parallelRunFixture(t)
	m := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
	var base []entity.Pair
	var baseComp int64
	sched := func() Scheduler {
		return NewPSNM(c, blocking.SortedTokensKey(nil), true, 12)
	}
	for i, workers := range []int{1, 2, 8} {
		got, err := RunParallel(context.Background(), c, sched(), m, gt, 800, workers)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			base, baseComp = pairsSorted(got.Matches), got.Comparisons
			continue
		}
		if got.Comparisons != baseComp {
			t.Fatalf("workers=%d: comparisons %d, want %d", workers, got.Comparisons, baseComp)
		}
		gp := pairsSorted(got.Matches)
		if len(gp) != len(base) {
			t.Fatalf("workers=%d: %d matches, want %d", workers, len(gp), len(base))
		}
		for j := range base {
			if gp[j] != base[j] {
				t.Fatalf("workers=%d: match %d is %v, want %v", workers, j, gp[j], base[j])
			}
		}
	}
}

func TestRunParallelCancelled(t *testing.T) {
	c, gt, bs := parallelRunFixture(t)
	m := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	got, err := RunParallel(ctx, c, NewStaticOrder(bs), m, gt, 1<<40, 4)
	if err == nil {
		t.Fatal("want context error, got nil")
	}
	if got.Comparisons != 0 {
		t.Fatalf("pre-cancelled run executed %d comparisons", got.Comparisons)
	}
}
