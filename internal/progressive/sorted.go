package progressive

import (
	"sort"

	"entityres/internal/blocking"
	"entityres/internal/entity"
)

// SlidingWindow is the sorted-list heuristic of pay-as-you-go resolution
// [26]: descriptions are sorted by a blocking key and pairs are emitted in
// increasing key distance — all neighbors at distance 1 first, then
// distance 2, and so on. Descriptions with similar keys are compared long
// before dissimilar ones.
type SlidingWindow struct {
	c           *entity.Collection
	order       []entity.ID
	maxDistance int
	d, i        int // current distance and position
}

// NewSlidingWindow builds the schedule over the key-sorted order of c.
// maxDistance ≤ 0 means the full n−1 (every comparable pair is eventually
// emitted).
func NewSlidingWindow(c *entity.Collection, key blocking.ScalarKeyFunc, maxDistance int) *SlidingWindow {
	order := blocking.SortedOrder(c, key)
	if maxDistance <= 0 || maxDistance > len(order)-1 {
		maxDistance = len(order) - 1
	}
	return &SlidingWindow{c: c, order: order, maxDistance: maxDistance, d: 1}
}

// Name implements Scheduler.
func (s *SlidingWindow) Name() string { return "slidingwindow" }

// Next implements Scheduler.
func (s *SlidingWindow) Next() (entity.Pair, bool) {
	for s.d <= s.maxDistance {
		for s.i+s.d < len(s.order) {
			a, b := s.order[s.i], s.order[s.i+s.d]
			s.i++
			if s.c.Comparable(a, b) {
				return entity.NewPair(a, b), true
			}
		}
		s.d++
		s.i = 0
	}
	return entity.Pair{}, false
}

// Feedback implements Scheduler (no-op).
func (s *SlidingWindow) Feedback(entity.Pair, bool) {}

// Hierarchy is the hierarchy-of-partitions heuristic of [26]: descriptions
// are partitioned at several granularities — here by decreasing prefix
// length of the blocking key, the longest prefix giving the finest, most
// similar partitions — and the hierarchy is traversed bottom-up, emitting
// the pairs of each partition level by level. Highly similar descriptions
// (long shared prefixes) are therefore resolved first, and each level only
// emits pairs unseen at finer levels.
type Hierarchy struct {
	c       *entity.Collection
	keys    map[entity.ID]string
	order   []entity.ID
	levels  []int // prefix lengths, descending
	emitted *entity.PairSet

	level   int
	buffer  []entity.Pair
	bufNext int
}

// NewHierarchy builds the partition hierarchy. levels are key prefix
// lengths; they are sorted descending. Empty levels defaults to
// [8, 4, 2, 1, 0] — 0 being the root partition containing everything.
func NewHierarchy(c *entity.Collection, key blocking.ScalarKeyFunc, levels []int) *Hierarchy {
	if len(levels) == 0 {
		levels = []int{8, 4, 2, 1, 0}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(levels)))
	keys := make(map[entity.ID]string, c.Len())
	for _, d := range c.All() {
		keys[d.ID] = key(d)
	}
	return &Hierarchy{
		c:       c,
		keys:    keys,
		order:   blocking.SortedOrder(c, key),
		levels:  levels,
		emitted: entity.NewPairSet(0),
	}
}

// Name implements Scheduler.
func (h *Hierarchy) Name() string { return "hierarchy" }

// Next implements Scheduler.
func (h *Hierarchy) Next() (entity.Pair, bool) {
	for {
		if h.bufNext < len(h.buffer) {
			p := h.buffer[h.bufNext]
			h.bufNext++
			return p, true
		}
		if h.level >= len(h.levels) {
			return entity.Pair{}, false
		}
		h.fillLevel(h.levels[h.level])
		h.level++
	}
}

// fillLevel materializes the unseen pairs of all partitions at one prefix
// length, in sorted-order position.
func (h *Hierarchy) fillLevel(prefixLen int) {
	h.buffer = h.buffer[:0]
	h.bufNext = 0
	start := 0
	for start < len(h.order) {
		end := start + 1
		p0 := prefix(h.keys[h.order[start]], prefixLen)
		for end < len(h.order) && prefix(h.keys[h.order[end]], prefixLen) == p0 {
			end++
		}
		for i := start; i < end; i++ {
			for j := i + 1; j < end; j++ {
				a, b := h.order[i], h.order[j]
				if !h.c.Comparable(a, b) {
					continue
				}
				if h.emitted.Add(a, b) {
					h.buffer = append(h.buffer, entity.NewPair(a, b))
				}
			}
		}
		start = end
	}
}

func prefix(s string, n int) string {
	if n >= len(s) {
		return s
	}
	return s[:n]
}

// Feedback implements Scheduler (no-op).
func (h *Hierarchy) Feedback(entity.Pair, bool) {}

// PSNM is the progressive sorted neighborhood method of [23]: the base
// schedule is the sliding window over the key-sorted order, and the local
// lookahead exploits the cluster structure of real duplicates — when the
// descriptions at sorted positions (i, j) match, positions (i−1, j) and
// (i, j+1) are scheduled immediately, since duplicates concentrate in
// dense areas of the sorting.
type PSNM struct {
	window *SlidingWindow
	// Lookahead toggles the local lookahead (the ablation knob of E10).
	lookahead bool
	posOf     map[entity.ID]int
	order     []entity.ID
	pending   []entity.Pair
	emitted   *entity.PairSet
}

// NewPSNM builds the scheduler over the key-sorted order of c.
func NewPSNM(c *entity.Collection, key blocking.ScalarKeyFunc, lookahead bool, maxDistance int) *PSNM {
	w := NewSlidingWindow(c, key, maxDistance)
	posOf := make(map[entity.ID]int, len(w.order))
	for i, id := range w.order {
		posOf[id] = i
	}
	return &PSNM{
		window:    w,
		lookahead: lookahead,
		posOf:     posOf,
		order:     w.order,
		emitted:   entity.NewPairSet(0),
	}
}

// Name implements Scheduler.
func (p *PSNM) Name() string {
	if p.lookahead {
		return "psnm+lookahead"
	}
	return "psnm"
}

// Next implements Scheduler.
func (p *PSNM) Next() (entity.Pair, bool) {
	for len(p.pending) > 0 {
		pr := p.pending[len(p.pending)-1]
		p.pending = p.pending[:len(p.pending)-1]
		if p.emitted.Add(pr.A, pr.B) {
			return pr, true
		}
	}
	for {
		pr, ok := p.window.Next()
		if !ok {
			return entity.Pair{}, false
		}
		if p.emitted.Add(pr.A, pr.B) {
			return pr, true
		}
	}
}

// Feedback implements Scheduler: a match at sorted positions (i, j)
// schedules (i−1, j) and (i, j+1) next.
func (p *PSNM) Feedback(pr entity.Pair, matched bool) {
	if !matched || !p.lookahead {
		return
	}
	i, j := p.posOf[pr.A], p.posOf[pr.B]
	if i > j {
		i, j = j, i
	}
	if i-1 >= 0 {
		p.push(p.order[i-1], p.order[j])
	}
	if j+1 < len(p.order) {
		p.push(p.order[i], p.order[j+1])
	}
}

func (p *PSNM) push(a, b entity.ID) {
	if !p.window.c.Comparable(a, b) {
		return
	}
	if p.emitted.Contains(a, b) {
		return
	}
	p.pending = append(p.pending, entity.NewPair(a, b))
}
