package progressive

import (
	"testing"

	"entityres/internal/blocking"
	"entityres/internal/datagen"
	"entityres/internal/entity"
	"entityres/internal/graph"
	"entityres/internal/matching"
	"entityres/internal/metablocking"
)

func sampleBlocks(t *testing.T) (*entity.Collection, *blocking.Blocks) {
	t.Helper()
	c := entity.NewCollection(entity.Dirty)
	c.MustAdd(entity.NewDescription("").Add("n", "alpha beta"))  // 0
	c.MustAdd(entity.NewDescription("").Add("n", "alpha beta"))  // 1
	c.MustAdd(entity.NewDescription("").Add("n", "gamma delta")) // 2
	c.MustAdd(entity.NewDescription("").Add("n", "gamma delta")) // 3
	bs, err := (&blocking.TokenBlocking{}).Block(c)
	if err != nil {
		t.Fatal(err)
	}
	return c, bs
}

func drain(s Scheduler) []entity.Pair {
	var out []entity.Pair
	for {
		p, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, p)
	}
}

func TestStaticOrderEmitsDistinctPairs(t *testing.T) {
	_, bs := sampleBlocks(t)
	s := NewStaticOrder(bs)
	pairs := drain(s)
	want := bs.DistinctPairs()
	if len(pairs) != want.Len() {
		t.Fatalf("emitted %d, want %d", len(pairs), want.Len())
	}
	seen := entity.NewPairSet(0)
	for _, p := range pairs {
		if !seen.Add(p.A, p.B) {
			t.Fatalf("duplicate pair %v", p)
		}
	}
	if _, ok := s.Next(); ok {
		t.Fatal("exhausted scheduler emitted")
	}
}

func TestRandomOrderIsPermutation(t *testing.T) {
	_, bs := sampleBlocks(t)
	a := drain(NewRandomOrder(bs, 1))
	b := drain(NewRandomOrder(bs, 1))
	if len(a) != len(b) {
		t.Fatal("same seed different length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed different order")
		}
	}
	static := drain(NewStaticOrder(bs))
	if len(a) != len(static) {
		t.Fatalf("permutation size %d vs %d", len(a), len(static))
	}
	sortPairs(a)
	sortPairs(static)
	for i := range a {
		if a[i] != static[i] {
			t.Fatal("random order is not a permutation of static")
		}
	}
}

func TestSlidingWindowDistanceOrder(t *testing.T) {
	c := entity.NewCollection(entity.Dirty)
	for _, v := range []string{"aa", "ab", "ac", "ad"} {
		c.MustAdd(entity.NewDescription("").Add("n", v))
	}
	s := NewSlidingWindow(c, blocking.SortedTokensKey(nil), 0)
	pairs := drain(s)
	// n=4: distance 1 gives 3 pairs, distance 2 gives 2, distance 3 gives 1.
	if len(pairs) != 6 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	if pairs[0] != entity.NewPair(0, 1) || pairs[2] != entity.NewPair(2, 3) {
		t.Fatalf("distance-1 pairs wrong: %v", pairs[:3])
	}
	if pairs[3] != entity.NewPair(0, 2) {
		t.Fatalf("distance-2 should follow: %v", pairs[3])
	}
	if pairs[5] != entity.NewPair(0, 3) {
		t.Fatalf("distance-3 last: %v", pairs[5])
	}
}

func TestSlidingWindowMaxDistance(t *testing.T) {
	c := entity.NewCollection(entity.Dirty)
	for _, v := range []string{"aa", "ab", "ac", "ad"} {
		c.MustAdd(entity.NewDescription("").Add("n", v))
	}
	s := NewSlidingWindow(c, blocking.SortedTokensKey(nil), 1)
	if got := len(drain(s)); got != 3 {
		t.Fatalf("maxDistance=1 pairs = %d", got)
	}
}

func TestSlidingWindowCleanCleanSkipsSameSource(t *testing.T) {
	c := entity.NewCollection(entity.CleanClean)
	c.MustAdd(entity.NewDescription("").Add("n", "aa"))
	c.MustAdd(entity.NewDescription("").Add("n", "ab"))
	d := entity.NewDescription("").Add("n", "ac")
	d.Source = 1
	c.MustAdd(d)
	pairs := drain(NewSlidingWindow(c, blocking.SortedTokensKey(nil), 0))
	for _, p := range pairs {
		if c.Get(p.A).Source == c.Get(p.B).Source {
			t.Fatalf("same-source pair %v", p)
		}
	}
	if len(pairs) != 2 {
		t.Fatalf("pairs = %d", len(pairs))
	}
}

func TestHierarchyBottomUp(t *testing.T) {
	c := entity.NewCollection(entity.Dirty)
	// Keys: "aaaa", "aaab" share 3-prefix; "aazz" shares 2-prefix; "zzzz"
	// only the root.
	for _, v := range []string{"aaaa", "aaab", "aazz", "zzzz"} {
		c.MustAdd(entity.NewDescription("").Add("n", v))
	}
	h := NewHierarchy(c, blocking.SortedTokensKey(nil), []int{3, 2, 0})
	pairs := drain(h)
	if len(pairs) != 6 {
		t.Fatalf("pairs = %d (all pairs eventually)", len(pairs))
	}
	if pairs[0] != entity.NewPair(0, 1) {
		t.Fatalf("finest partition first: %v", pairs[0])
	}
	// Level 2 adds (0,2),(1,2); root adds the rest.
	second := map[entity.Pair]bool{pairs[1]: true, pairs[2]: true}
	if !second[entity.NewPair(0, 2)] || !second[entity.NewPair(1, 2)] {
		t.Fatalf("level-2 pairs wrong: %v", pairs[1:3])
	}
	// No duplicates.
	seen := entity.NewPairSet(0)
	for _, p := range pairs {
		if !seen.Add(p.A, p.B) {
			t.Fatalf("duplicate %v", p)
		}
	}
}

func TestPSNMLookaheadPrioritizesNeighbors(t *testing.T) {
	c := entity.NewCollection(entity.Dirty)
	// Sorted order: 0:"aaa a", 1:"aaa b", 2:"aaa c", 3:"zzz" — 0,1,2 are a
	// duplicate cluster.
	c.MustAdd(entity.NewDescription("").Add("n", "aaa a"))
	c.MustAdd(entity.NewDescription("").Add("n", "aaa b"))
	c.MustAdd(entity.NewDescription("").Add("n", "aaa c"))
	c.MustAdd(entity.NewDescription("").Add("n", "zzz"))
	m := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.3}
	s := NewPSNM(c, blocking.SortedTokensKey(nil), true, 0)
	p1, _ := s.Next() // (0,1) at distance 1
	if p1 != entity.NewPair(0, 1) {
		t.Fatalf("first pair = %v", p1)
	}
	ok, _ := m.Match(c.Get(p1.A), c.Get(p1.B))
	s.Feedback(p1, ok)
	// Lookahead jumps to (0+1, 1+1)-ish neighborhood: (1... wait, match at
	// positions (0,1) schedules (0,2) — position j+1 — before base (1,2).
	p2, _ := s.Next()
	if p2 != entity.NewPair(0, 2) {
		t.Fatalf("lookahead pair = %v, want (0,2)", p2)
	}
	// Without lookahead the base order continues at distance 1.
	s2 := NewPSNM(c, blocking.SortedTokensKey(nil), false, 0)
	q1, _ := s2.Next()
	s2.Feedback(q1, true)
	q2, _ := s2.Next()
	if q2 != entity.NewPair(1, 2) {
		t.Fatalf("base pair = %v, want (1,2)", q2)
	}
}

func TestPSNMNoDuplicateEmissions(t *testing.T) {
	c, _ := func() (*entity.Collection, *blocking.Blocks) {
		c := entity.NewCollection(entity.Dirty)
		for _, v := range []string{"aa x", "aa y", "aa z", "bb"} {
			c.MustAdd(entity.NewDescription("").Add("n", v))
		}
		return c, nil
	}()
	s := NewPSNM(c, blocking.SortedTokensKey(nil), true, 0)
	seen := entity.NewPairSet(0)
	for {
		p, ok := s.Next()
		if !ok {
			break
		}
		if !seen.Add(p.A, p.B) {
			t.Fatalf("duplicate emission %v", p)
		}
		s.Feedback(p, true) // aggressive lookahead everywhere
	}
	if seen.Len() != 6 {
		t.Fatalf("emitted %d of 6 pairs", seen.Len())
	}
}

func TestBenefitCostWindows(t *testing.T) {
	c, bs := sampleBlocks(t)
	g := metablocking.BuildGraph(bs, metablocking.CBS)
	bc := NewBenefitCost(g, 2, 1)
	if bc.Name() != "benefitcost" {
		t.Fatal("name")
	}
	seen := entity.NewPairSet(0)
	n := 0
	for {
		p, ok := bc.Next()
		if !ok {
			break
		}
		n++
		if !seen.Add(p.A, p.B) {
			t.Fatalf("duplicate %v", p)
		}
		bc.Feedback(p, p == entity.NewPair(0, 1))
	}
	if int64(n) != int64(g.NumEdges()) {
		t.Fatalf("emitted %d, want %d", n, g.NumEdges())
	}
	_ = c
}

func TestBenefitCostBoostReordersAfterWindow(t *testing.T) {
	// Graph: high-weight pair (0,1); two low-weight pairs (1,2) and (3,4),
	// with (1,2) sharing entity 1 with the match. Window size 1: after
	// matching (0,1), the boost must pull (1,2) ahead of (3,4) even though
	// their base weights tie.
	gr := graph.New()
	gr.SetWeight(0, 1, 5)
	gr.SetWeight(1, 2, 1)
	gr.SetWeight(3, 4, 1)
	bc := NewBenefitCost(gr, 1, 10)
	p1, _ := bc.Next()
	if p1 != entity.NewPair(0, 1) {
		t.Fatalf("first = %v", p1)
	}
	bc.Feedback(p1, true)
	p2, _ := bc.Next()
	if p2 != entity.NewPair(1, 2) {
		t.Fatalf("boosted pair should come next, got %v", p2)
	}
}

func TestRunBudgetAndCurve(t *testing.T) {
	c, gt, err := datagen.GenerateDirty(datagen.Config{Seed: 12, Entities: 60, DupRatio: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	bs, err := (&blocking.TokenBlocking{}).Block(c)
	if err != nil {
		t.Fatal(err)
	}
	m := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
	budget := int64(200)
	res := Run(c, NewStaticOrder(bs), m, gt, budget)
	if res.Comparisons > budget {
		t.Fatalf("budget exceeded: %d", res.Comparisons)
	}
	if err := res.Curve.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Curve.Final().Comparisons != res.Comparisons {
		t.Fatal("final curve point should record total comparisons")
	}
	// Unlimited budget reaches the blocking recall ceiling.
	all := Run(c, NewStaticOrder(bs), m, gt, 1<<40)
	if all.Curve.Final().Recall <= 0 {
		t.Fatal("no recall achieved with full budget")
	}
}

func TestProgressiveBeatsRandomEarly(t *testing.T) {
	c, gt, err := datagen.GenerateDirty(datagen.Config{Seed: 23, Entities: 150, DupRatio: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	bs, err := (&blocking.TokenBlocking{}).Block(c)
	if err != nil {
		t.Fatal(err)
	}
	m := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
	total := int64(bs.DistinctPairs().Len())
	budget := total / 10 // 10% of the work
	key := blocking.SortedTokensKey(nil)
	psnm := Run(c, NewPSNM(c, key, true, 0), m, gt, budget)
	random := Run(c, NewRandomOrder(bs, 3), m, gt, budget)
	if psnm.Curve.Final().Recall <= random.Curve.Final().Recall {
		t.Fatalf("PSNM@10%% recall %v should beat random %v",
			psnm.Curve.Final().Recall, random.Curve.Final().Recall)
	}
	if psnm.Curve.Final().Recall < 0.5 {
		t.Fatalf("PSNM@10%% recall too low: %v", psnm.Curve.Final().Recall)
	}
}
