package progressive

import (
	"entityres/internal/entity"
	"entityres/internal/evaluation"
	"entityres/internal/matching"
)

// RunResult is the outcome of a budgeted progressive run.
type RunResult struct {
	// Curve is the progressive recall curve: ground-truth recall as a
	// function of executed comparisons.
	Curve evaluation.Curve
	// Matches is everything the matcher reported within budget.
	Matches *entity.Matches
	// Comparisons is the number executed (≤ budget).
	Comparisons int64
}

// Run executes comparisons from the scheduler with the matcher until the
// budget is exhausted or the schedule ends. The ground truth is used only
// to annotate the recall curve — neither the scheduler nor the matcher
// sees it. Every comparison (match or not) is fed back to the scheduler.
func Run(c *entity.Collection, sched Scheduler, m *matching.Matcher, gt *entity.Matches, budget int64) RunResult {
	res := RunResult{Matches: entity.NewMatches()}
	foundGT := 0
	record := func() {
		recall := 0.0
		if gt.Len() > 0 {
			recall = float64(foundGT) / float64(gt.Len())
		}
		res.Curve = append(res.Curve, evaluation.CurvePoint{
			Comparisons: res.Comparisons,
			Recall:      recall,
		})
	}
	for res.Comparisons < budget {
		p, ok := sched.Next()
		if !ok {
			break
		}
		res.Comparisons++
		matched, _ := m.Match(c.Get(p.A), c.Get(p.B))
		sched.Feedback(p, matched)
		if matched {
			res.Matches.Add(p.A, p.B)
			if gt.Contains(p.A, p.B) {
				foundGT++
				record()
			}
		}
	}
	record()
	return res
}
