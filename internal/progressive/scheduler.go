// Package progressive implements progressive entity resolution (§IV of the
// paper): maximizing the matches reported within a limited comparison
// budget by scheduling promising comparisons first and exploiting the
// matches found so far. It provides the scheduling heuristics the paper
// surveys — static and random baselines, the sorted-list sliding window
// and hierarchy of partitions of pay-as-you-go resolution [26], progressive
// sorted neighborhood with local lookahead [23], and a benefit/cost
// windowed scheduler over an influence graph [1] — plus the budgeted
// runner that records progressive recall curves.
package progressive

import (
	"math/rand"

	"entityres/internal/blocking"
	"entityres/internal/entity"
)

// Scheduler emits candidate comparisons in its preferred order. After
// executing a comparison, the runner reports the outcome through Feedback,
// which adaptive schedulers (PSNM lookahead, benefit/cost) use to reorder
// upcoming work. Next returning ok=false ends the schedule.
type Scheduler interface {
	// Name identifies the scheduler in experiment tables.
	Name() string
	// Next returns the next comparison to execute.
	Next() (entity.Pair, bool)
	// Feedback reports the outcome of an executed comparison.
	Feedback(p entity.Pair, matched bool)
}

// StaticOrder replays the distinct comparisons of a blocking collection in
// block order — the non-progressive baseline: exactly what a batch
// resolution would do, truncated by the budget. When the collection is the
// output of meta-blocking, block order is descending edge weight, making
// this the "weight-static" schedule.
type StaticOrder struct {
	pairs []entity.Pair
	next  int
}

// NewStaticOrder builds the schedule from the blocks' distinct
// comparisons.
func NewStaticOrder(bs *blocking.Blocks) *StaticOrder {
	s := &StaticOrder{}
	bs.EachDistinctComparison(func(p entity.Pair) bool {
		s.pairs = append(s.pairs, p)
		return true
	})
	return s
}

// Name implements Scheduler.
func (s *StaticOrder) Name() string { return "static" }

// Next implements Scheduler.
func (s *StaticOrder) Next() (entity.Pair, bool) {
	if s.next >= len(s.pairs) {
		return entity.Pair{}, false
	}
	p := s.pairs[s.next]
	s.next++
	return p, true
}

// Feedback implements Scheduler (no-op).
func (s *StaticOrder) Feedback(entity.Pair, bool) {}

// Remaining returns how many comparisons are left in the schedule.
func (s *StaticOrder) Remaining() int { return len(s.pairs) - s.next }

// RandomOrder replays the distinct comparisons in a seeded random
// permutation — the floor every progressive heuristic must beat: its
// expected recall curve is the diagonal.
type RandomOrder struct {
	StaticOrder
}

// NewRandomOrder builds the shuffled schedule.
func NewRandomOrder(bs *blocking.Blocks, seed int64) *RandomOrder {
	s := &RandomOrder{StaticOrder: *NewStaticOrder(bs)}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(s.pairs), func(i, j int) {
		s.pairs[i], s.pairs[j] = s.pairs[j], s.pairs[i]
	})
	return s
}

// Name implements Scheduler.
func (s *RandomOrder) Name() string { return "random" }
