package progressive

import (
	"context"
	"runtime"

	"entityres/internal/entity"
	"entityres/internal/evaluation"
	"entityres/internal/matching"
)

// waveSize is the number of comparisons pulled from the scheduler per
// synchronization wave of RunParallel. It is a fixed constant — not derived
// from the worker count — so the executed schedule, and therefore the
// result, is identical for any degree of parallelism.
const waveSize = 64

// RunParallel is the budgeted progressive runner with matcher execution
// fanned out to a worker pool. It proceeds in waves: up to waveSize
// comparisons are pulled from the scheduler, matched concurrently, and the
// outcomes fed back to the scheduler in pull order before the next wave is
// scheduled. The run stops exactly at the comparison budget.
//
// Semantics versus Run: identical for feedback-insensitive schedulers
// (static, random, and any scheduler whose Feedback is a no-op), since the
// pull order and the per-pair decisions are unchanged. Adaptive schedulers
// (PSNM lookahead, benefit/cost) observe feedback wave-synchronously —
// outcomes within one wave cannot reorder that same wave — which is the
// standard trade a parallel progressive executor makes; because waveSize is
// fixed, the result still does not depend on the worker count.
//
// When ctx is cancelled between waves the partial result is returned with
// ctx.Err(). workers <= 0 means GOMAXPROCS.
func RunParallel(ctx context.Context, c *entity.Collection, sched Scheduler, m *matching.Matcher, gt *entity.Matches, budget int64, workers int) (RunResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > waveSize {
		workers = waveSize
	}
	res := RunResult{Matches: entity.NewMatches()}
	foundGT := 0
	record := func() {
		recall := 0.0
		if gt.Len() > 0 {
			recall = float64(foundGT) / float64(gt.Len())
		}
		res.Curve = append(res.Curve, evaluation.CurvePoint{
			Comparisons: res.Comparisons,
			Recall:      recall,
		})
	}
	// One persistent worker pool for the whole run: waves are small (64
	// comparisons) and a long budget executes many of them, so spawning
	// goroutines per wave would put scheduler churn on the hot path. The
	// buffers are fixed arrays shared with the workers; the jobs send
	// happens after the pair is written and the results receive happens
	// before the decision is read, so each slot is properly handed off.
	var waveBuf [waveSize]entity.Pair
	var matched [waveSize]bool
	var jobs chan int
	var done chan struct{}
	if workers > 1 {
		jobs = make(chan int, waveSize)
		done = make(chan struct{}, waveSize)
		defer close(jobs)
		for w := 0; w < workers; w++ {
			go func() {
				for i := range jobs {
					p := waveBuf[i]
					matched[i], _ = m.Match(c.Get(p.A), c.Get(p.B))
					done <- struct{}{}
				}
			}()
		}
	}
	for res.Comparisons < budget {
		if err := ctx.Err(); err != nil {
			record()
			return res, err
		}
		// Pull the next wave, clipped to the remaining budget.
		want := budget - res.Comparisons
		if want > waveSize {
			want = waveSize
		}
		n := 0
		for int64(n) < want {
			p, ok := sched.Next()
			if !ok {
				break
			}
			waveBuf[n] = p
			n++
		}
		if n == 0 {
			break
		}
		if workers > 1 {
			for i := 0; i < n; i++ {
				jobs <- i
			}
			for i := 0; i < n; i++ {
				<-done
			}
		} else {
			for i := 0; i < n; i++ {
				matched[i], _ = m.Match(c.Get(waveBuf[i].A), c.Get(waveBuf[i].B))
			}
		}
		// Sequential epilogue in pull order: count, feed back, collect.
		for i := 0; i < n; i++ {
			p := waveBuf[i]
			res.Comparisons++
			sched.Feedback(p, matched[i])
			if matched[i] {
				res.Matches.Add(p.A, p.B)
				if gt.Contains(p.A, p.B) {
					foundGT++
					record()
				}
			}
		}
	}
	record()
	return res, nil
}
