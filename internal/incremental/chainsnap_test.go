package incremental_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"entityres/internal/blocking"
	"entityres/internal/entity"
	"entityres/internal/incremental"
	"entityres/internal/matching"
	"entityres/internal/metablocking"
)

// Chained delta snapshots under crash chaos: a checkpoint usually writes
// only the state dirtied since the previous one (a delta link naming its
// parent), with periodic full rebases bounding the chain. Recovery anchors
// on the newest snapshot and replays its whole chain, so a hard stop — at
// a chain link, between links, right before or after a rebase, with a torn
// WAL tail — must restore exactly the state an uninterrupted run built.
// These tests drive the same randomized scripts as the crash-recovery
// suite across RebaseEvery variants, sweep every op boundary of a compact
// chain scenario, and pin the retention/pruning contract of the chain.

// TestChainedSnapshotCrashChaos is the chain-shape acceptance matrix:
// every chain bound (rebase after one link, after two, the default four,
// and deltas disabled) survives a random crash + torn tail, with and
// without live meta-blocking.
func TestChainedSnapshotCrashChaos(t *testing.T) {
	configs := []crashConfig{
		{kind: entity.Dirty, blocker: &blocking.TokenBlocking{}, workers: 4,
			seed: 41, ops: 160, snapEvery: 10, rebase: 1, mix: opMixes[1]},
		{kind: entity.Dirty, blocker: &blocking.TokenBlocking{}, workers: 4,
			seed: 42, ops: 160, snapEvery: 10, rebase: 2, mix: opMixes[2],
			meta: &metablocking.MetaBlocker{Weight: metablocking.JS, Prune: metablocking.WEP}},
		{kind: entity.CleanClean, blocker: &blocking.TokenBlocking{}, workers: 2,
			seed: 43, ops: 140, snapEvery: 8, rebase: 2, mix: opMixes[1]},
		{kind: entity.Dirty, blocker: &blocking.TokenBlocking{}, workers: 4,
			seed: 44, ops: 140, snapEvery: 12, rebase: -1, mix: opMixes[1],
			meta: &metablocking.MetaBlocker{Weight: metablocking.CBS, Prune: metablocking.WNP}},
	}
	for _, cc := range configs {
		cc := cc
		t.Run(cc.String(), func(t *testing.T) {
			if testing.Short() && cc.seed > 42 {
				t.Skip("short mode runs the first two chain scenarios only")
			}
			t.Parallel()
			runCrashRecovery(t, cc)
		})
	}
}

// TestChainedSnapshotBoundarySweep crashes at EVERY op boundary of a
// compact delta-chain scenario — snapshot cadence 5, rebase after two
// links — so every chain position (mid-link tail, exactly at a link,
// right before and after a rebase) recovers bit-exactly, with the WAL tail
// torn each time.
func TestChainedSnapshotBoundarySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("boundary sweep is long")
	}
	const ops, snapEvery, rebase = 40, 5, 2
	matcher := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
	script := generateScript(t, entity.Dirty, 88, ops, opMixes[1])
	cfg := incremental.Config{
		Kind: entity.Dirty, Blocker: &blocking.TokenBlocking{}, Matcher: matcher, Workers: 1,
		Durable: incremental.DurableOptions{SnapshotEvery: snapEvery, RebaseEvery: rebase,
			SegmentBytes: 1024, NoSync: true},
	}
	memCfg := cfg
	memCfg.Durable = incremental.DurableOptions{}
	ctx := context.Background()

	ref, err := incremental.New(memCfg)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= ops; k++ {
		dir := t.TempDir()
		crashed, err := incremental.OpenResolver(dir, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < k; i++ {
			if err := crashed.Apply(ctx, script[i]); err != nil {
				t.Fatalf("boundary %d, op %d: %v", k, i, err)
			}
		}
		crashed.Abandon()
		tearTail(t, dir)
		r, err := incremental.OpenResolver(dir, cfg)
		if err != nil {
			t.Fatalf("boundary %d: recovery: %v", k, err)
		}
		if err := ref.Apply(ctx, script[k-1]); err != nil {
			t.Fatalf("reference op %d: %v", k-1, err)
		}
		if want := k % snapEvery; r.Recovery().ReplayedRecords != want {
			t.Fatalf("boundary %d: replayed %d records, want %d — the chain restore must cover everything before the tip", k, r.Recovery().ReplayedRecords, want)
		}
		assertSameResolverState(t, r, ref)
		r.Close()
	}
}

// applyChainScript replays n scripted ops through a fresh durable resolver
// in dir and hard-stops it, returning its cumulative perf counters.
func applyChainScript(t *testing.T, dir string, cfg incremental.Config, script []incremental.Op) incremental.PerfCounters {
	t.Helper()
	r, err := incremental.OpenResolver(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i, op := range script {
		if err := r.Apply(ctx, op); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	perf := r.Perf()
	r.Abandon()
	return perf
}

// TestDeltaChainRetentionAndRebase pins the chain's disk contract: delta
// checkpoints happen and serialize less than full ones, the retained
// snapshot files never exceed the chain bound (full anchor + RebaseEvery
// links), rebases prune everything below the new anchor, and the retained
// chain recovers the same state a full-only configuration does.
func TestDeltaChainRetentionAndRebase(t *testing.T) {
	const ops, snapEvery, rebase = 60, 5, 3
	matcher := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
	script := generateScript(t, entity.Dirty, 99, ops, opMixes[1])
	cfg := incremental.Config{
		Kind: entity.Dirty, Blocker: &blocking.TokenBlocking{}, Matcher: matcher, Workers: 1,
		Durable: incremental.DurableOptions{SnapshotEvery: snapEvery, RebaseEvery: rebase, NoSync: true},
	}
	fullCfg := cfg
	fullCfg.Durable.RebaseEvery = -1

	chainDir, fullDir := t.TempDir(), t.TempDir()
	perf := applyChainScript(t, chainDir, cfg, script)
	fullPerf := applyChainScript(t, fullDir, fullCfg, script)

	// 60 ops at cadence 5 = 12 checkpoints plus the one at open; at most
	// every fourth is a rebase, so both kinds happened repeatedly.
	if perf.DeltaSnapshots < 4 || perf.FullSnapshots < 2 {
		t.Fatalf("chain run checkpointed %d deltas / %d fulls, want several of each", perf.DeltaSnapshots, perf.FullSnapshots)
	}
	if fullPerf.DeltaSnapshots != 0 {
		t.Fatalf("RebaseEvery<0 still wrote %d delta snapshots", fullPerf.DeltaSnapshots)
	}
	// The delta-proportional compaction claim: the same op stream
	// serialized strictly fewer collection slots with chaining than the
	// full-only configuration — deltas carry only the dirtied slots.
	if perf.SnapshotSlots >= fullPerf.SnapshotSlots {
		t.Fatalf("chained run serialized %d slots, full-only %d — deltas saved nothing", perf.SnapshotSlots, fullPerf.SnapshotSlots)
	}

	// Retention: the files on disk are one full anchor plus at most
	// RebaseEvery delta links, contiguous up to the tip.
	snaps, err := filepath.Glob(filepath.Join(chainDir, "snapshot-*.snap"))
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 || len(snaps) > rebase+1 {
		t.Fatalf("chain retained %d snapshot files, want 1..%d: %v", len(snaps), rebase+1, snaps)
	}
	fullSnaps, err := filepath.Glob(filepath.Join(fullDir, "snapshot-*.snap"))
	if err != nil || len(fullSnaps) != 1 {
		t.Fatalf("full-only run retained %v (%v), want exactly one snapshot", fullSnaps, err)
	}

	// Both directories recover to the same state.
	chained, err := incremental.OpenResolver(chainDir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer chained.Close()
	fullOnly, err := incremental.OpenResolver(fullDir, fullCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer fullOnly.Close()
	assertSameResolverState(t, chained, fullOnly)
}

// TestChainMissingLinkFailsLoudly: recovery walks the tip's parent chain;
// a missing link is a loud open error, never a silent partial restore.
func TestChainMissingLinkFailsLoudly(t *testing.T) {
	const ops, snapEvery = 30, 5
	matcher := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
	script := generateScript(t, entity.Dirty, 66, ops, opMixes[1])
	cfg := incremental.Config{
		Kind: entity.Dirty, Blocker: &blocking.TokenBlocking{}, Matcher: matcher, Workers: 1,
		Durable: incremental.DurableOptions{SnapshotEvery: snapEvery, RebaseEvery: 16, NoSync: true},
	}
	dir := t.TempDir()
	applyChainScript(t, dir, cfg, script)
	snaps, err := filepath.Glob(filepath.Join(dir, "snapshot-*.snap"))
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) < 3 {
		t.Fatalf("scenario built only %d snapshot files, need a chain of 3+: %v", len(snaps), snaps)
	}
	// Remove a middle link (globs sort lexically = numerically here).
	missing := snaps[len(snaps)/2]
	if err := os.Remove(missing); err != nil {
		t.Fatal(err)
	}
	if _, err := incremental.OpenResolver(dir, cfg); err == nil {
		t.Fatalf("recovery silently succeeded with chain link %s missing", filepath.Base(missing))
	} else if got := fmt.Sprint(err); got == "" {
		t.Fatal("empty error for a broken chain")
	}
}
