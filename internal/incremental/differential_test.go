package incremental_test

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"entityres/internal/blocking"
	"entityres/internal/core"
	"entityres/internal/datagen"
	"entityres/internal/entity"
	"entityres/internal/incremental"
	"entityres/internal/matching"
	"entityres/internal/metablocking"
)

// The differential property: after ANY sequence of insert/update/delete
// operations, the streaming resolver's match set and clusters are
// byte-identical to a from-scratch batch core.Pipeline run over the
// surviving descriptions. The tests below drive randomized op sequences
// (fixed seeds) across resolution kinds, blockers, worker counts and op
// mixes, and compare rendered state at checkpoints along the stream —
// not just at the end — so mid-stream divergence cannot hide behind a
// convergent tail.

// opMix weights the generator's choice between inserts, updates, deletes.
type opMix struct {
	name                   string
	insert, update, delete int // relative weights
}

var opMixes = []opMix{
	{name: "insert-heavy", insert: 7, update: 2, delete: 1},
	{name: "churn", insert: 4, update: 3, delete: 3},
	{name: "delete-heavy", insert: 5, update: 1, delete: 4},
}

// diffConfig is one differential scenario.
type diffConfig struct {
	kind    entity.Kind
	blocker blocking.StreamableBlocker
	workers int
	mix     opMix
	seed    int64
	ops     int
	// meta, when set, runs the scenario with live meta-blocking: the
	// resolver prunes its frontiers through the incrementally weighted
	// blocking graph, and the batch reference runs the same MetaBlocker.
	meta *metablocking.MetaBlocker
}

func (dc diffConfig) String() string {
	s := fmt.Sprintf("%s/%s/w%d/%s/seed%d", dc.kind, dc.blocker.Name(), dc.workers, dc.mix.name, dc.seed)
	if dc.meta != nil {
		s += "/" + dc.meta.Name()
	}
	return s
}

// pool generates the universe of descriptions the op stream draws from:
// a datagen collection with duplicates, so the stream contains genuine
// matches to discover, retire and rediscover.
func pool(t *testing.T, kind entity.Kind, seed int64) []*entity.Description {
	t.Helper()
	var c *entity.Collection
	var err error
	if kind == entity.CleanClean {
		c, _, err = datagen.GenerateCleanClean(datagen.Config{Seed: seed, Entities: 70, DupRatio: 0.7})
	} else {
		c, _, err = datagen.GenerateDirty(datagen.Config{Seed: seed, Entities: 70, DupRatio: 0.7, MaxDuplicates: 2})
	}
	if err != nil {
		t.Fatal(err)
	}
	return c.All()
}

// mutate derives a deterministic attribute rewrite for an update: a mix of
// the description's own attributes and a donor's, so updates move
// descriptions between blocks (and in and out of matches) realistically.
func mutate(rng *rand.Rand, own []entity.Attribute, donor []entity.Attribute) []entity.Attribute {
	out := make([]entity.Attribute, 0, len(own))
	for _, a := range own {
		if rng.Intn(3) == 0 && len(donor) > 0 {
			d := donor[rng.Intn(len(donor))]
			out = append(out, entity.Attribute{Name: a.Name, Value: d.Value})
		} else {
			out = append(out, a)
		}
	}
	if len(donor) > 0 && rng.Intn(2) == 0 {
		out = append(out, donor[rng.Intn(len(donor))])
	}
	return out
}

// renderState renders a match set and its clusters deterministically; two
// equal states render byte-identically.
func renderState(m *entity.Matches) string {
	ps := m.Pairs()
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].A != ps[j].A {
			return ps[i].A < ps[j].A
		}
		return ps[i].B < ps[j].B
	})
	return fmt.Sprintf("matches=%v\nclusters=%v\n", ps, m.Clusters())
}

// checkDifferential snapshots the resolver, runs the batch pipeline over
// the snapshot, and compares rendered matches and clusters byte for byte.
func checkDifferential(t *testing.T, r *incremental.Resolver, dc diffConfig, m *matching.Matcher, step int) {
	t.Helper()
	snap, matches := mustSnapshot(t, r)
	batch := &core.Pipeline{Blocker: dc.blocker, Meta: dc.meta, Matcher: m, Mode: core.Batch}
	res, err := batch.Run(snap)
	if err != nil {
		t.Fatalf("step %d: batch run: %v", step, err)
	}
	got, want := renderState(matches), renderState(res.Matches)
	if got != want {
		t.Fatalf("step %d: incremental state diverges from batch over %d live descriptions:\nincremental:\n%s\nbatch:\n%s",
			step, snap.Len(), got, want)
	}
}

// runDifferential drives one scenario.
func runDifferential(t *testing.T, dc diffConfig) {
	matcher := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
	r, err := incremental.New(incremental.Config{Kind: dc.kind, Blocker: dc.blocker, Matcher: matcher, Workers: dc.workers, Meta: dc.meta})
	if err != nil {
		t.Fatal(err)
	}
	descs := pool(t, dc.kind, dc.seed)
	rng := rand.New(rand.NewSource(dc.seed * 7919))
	ctx := context.Background()

	// liveIdx maps pool index → live handle.
	liveIdx := map[int]entity.ID{}
	var liveList []int // pool indices currently live, for random choice
	removeLive := func(pos int) {
		liveList[pos] = liveList[len(liveList)-1]
		liveList = liveList[:len(liveList)-1]
	}

	// chooseOp rolls an op kind honoring the mix, degrading gracefully at
	// the boundaries: with nothing live only insert is possible, with the
	// whole pool live insert is impossible.
	chooseOp := func() incremental.OpKind {
		if len(liveList) == 0 {
			return incremental.OpInsert
		}
		weights := [3]int{dc.mix.insert, dc.mix.update, dc.mix.delete}
		if len(liveList) == len(descs) {
			weights[0] = 0
		}
		roll := rng.Intn(weights[0] + weights[1] + weights[2])
		if roll < weights[0] {
			return incremental.OpInsert
		}
		if roll < weights[0]+weights[1] {
			return incremental.OpUpdate
		}
		return incremental.OpDelete
	}

	applied := 0
	for applied < dc.ops {
		switch chooseOp() {
		case incremental.OpInsert:
			// Insert a pool description that is not currently live.
			pi := rng.Intn(len(descs))
			if _, live := liveIdx[pi]; live {
				continue
			}
			id, err := r.Insert(ctx, descs[pi])
			if err != nil {
				t.Fatalf("op %d: insert: %v", applied, err)
			}
			liveIdx[pi] = id
			liveList = append(liveList, pi)
		case incremental.OpUpdate:
			pos := rng.Intn(len(liveList))
			pi := liveList[pos]
			donor := descs[rng.Intn(len(descs))]
			attrs := mutate(rng, descs[pi].Attrs, donor.Attrs)
			if err := r.Update(ctx, liveIdx[pi], attrs); err != nil {
				t.Fatalf("op %d: update: %v", applied, err)
			}
		default:
			pos := rng.Intn(len(liveList))
			pi := liveList[pos]
			if err := r.Delete(liveIdx[pi]); err != nil {
				t.Fatalf("op %d: delete: %v", applied, err)
			}
			delete(liveIdx, pi)
			removeLive(pos)
		}
		applied++
		// Checkpoints mid-stream and at the end.
		if applied%100 == 0 || applied == dc.ops {
			checkDifferential(t, r, dc, matcher, applied)
		}
	}

	st := mustStats(t, r)
	if st.Inserts+st.Updates+st.Deletes != int64(dc.ops) {
		t.Fatalf("applied %d ops, stats say %s", dc.ops, st)
	}
}

// TestDifferentialEquivalence is the acceptance matrix: ≥3 seeds ×
// ≥200-op sequences across op mixes, worker counts, kinds and blockers.
func TestDifferentialEquivalence(t *testing.T) {
	var configs []diffConfig
	// Seeds × mixes on the default configuration (dirty, token blocking,
	// pooled delta matching).
	for _, seed := range []int64{1, 2, 3} {
		for _, mix := range opMixes {
			configs = append(configs, diffConfig{
				kind: entity.Dirty, blocker: &blocking.TokenBlocking{},
				workers: 4, mix: mix, seed: seed, ops: 250,
			})
		}
	}
	// Sequential delta matching must agree with the pooled one.
	configs = append(configs, diffConfig{
		kind: entity.Dirty, blocker: &blocking.TokenBlocking{},
		workers: 1, mix: opMixes[1], seed: 4, ops: 250,
	})
	// Clean-clean streams: only cross-source pairs may match.
	configs = append(configs, diffConfig{
		kind: entity.CleanClean, blocker: &blocking.TokenBlocking{},
		workers: 4, mix: opMixes[1], seed: 5, ops: 250,
	})
	// Other streamable blockers.
	configs = append(configs, diffConfig{
		kind: entity.Dirty, blocker: &blocking.StandardBlocking{},
		workers: 4, mix: opMixes[1], seed: 6, ops: 200,
	})
	configs = append(configs, diffConfig{
		kind: entity.Dirty, blocker: &blocking.QGramsBlocking{Q: 3},
		workers: 4, mix: opMixes[0], seed: 7, ops: 200,
	})

	for _, dc := range configs {
		dc := dc
		t.Run(dc.String(), func(t *testing.T) {
			if testing.Short() && dc.seed > 3 {
				t.Skip("short mode runs the core seed matrix only")
			}
			t.Parallel()
			runDifferential(t, dc)
		})
	}
}

// TestDifferentialEquivalenceMetaBlocking extends the differential matrix
// to live meta-blocking: 3 seeds × {WEP, WNP} × {CBS, ECBS, JS} op streams
// (plus reciprocal-WNP, clean-clean and multi-worker probes), asserting
// after every checkpoint that the incrementally pruned-and-matched state
// equals a from-scratch batch run with the same MetaBlocker over the
// surviving descriptions. Weight thresholds (WEP's global mean, WNP's
// neighborhood means) shift with every insert, update and delete, so this
// is the test that catches any drift between the delta-maintained
// statistics and the batch accumulation.
func TestDifferentialEquivalenceMetaBlocking(t *testing.T) {
	var configs []diffConfig
	for si, seed := range []int64{21, 22, 23} {
		for _, w := range []metablocking.WeightScheme{metablocking.CBS, metablocking.ECBS, metablocking.JS} {
			for _, p := range []metablocking.PruneScheme{metablocking.WEP, metablocking.WNP} {
				configs = append(configs, diffConfig{
					kind: entity.Dirty, blocker: &blocking.TokenBlocking{},
					workers: 4, mix: opMixes[si%len(opMixes)], seed: seed, ops: 160,
					meta: &metablocking.MetaBlocker{Weight: w, Prune: p},
				})
			}
		}
	}
	// Reciprocal node pruning, clean-clean streams and the sequential
	// reconcile path each probe one extra dimension.
	configs = append(configs,
		diffConfig{
			kind: entity.Dirty, blocker: &blocking.TokenBlocking{},
			workers: 4, mix: opMixes[1], seed: 24, ops: 160,
			meta: &metablocking.MetaBlocker{Weight: metablocking.ECBS, Prune: metablocking.WNP, Reciprocal: true},
		},
		diffConfig{
			kind: entity.CleanClean, blocker: &blocking.TokenBlocking{},
			workers: 4, mix: opMixes[1], seed: 25, ops: 160,
			meta: &metablocking.MetaBlocker{Weight: metablocking.JS, Prune: metablocking.WEP},
		},
		diffConfig{
			kind: entity.Dirty, blocker: &blocking.StandardBlocking{},
			workers: 1, mix: opMixes[2], seed: 26, ops: 160,
			meta: &metablocking.MetaBlocker{Weight: metablocking.CBS, Prune: metablocking.WEP},
		},
	)
	for _, dc := range configs {
		dc := dc
		t.Run(dc.String(), func(t *testing.T) {
			if testing.Short() && dc.seed != 21 {
				t.Skip("short mode runs the first meta seed only")
			}
			t.Parallel()
			runDifferential(t, dc)
		})
	}
}
